// Developer-survey verification: percentage-heavy claims over a wide
// respondents table, in the style of the Stack Overflow survey articles the
// paper evaluates (including the documented "13% self-taught" rounding
// error, which was really 14%). Demonstrates Percentage and
// ConditionalProbability claims plus a data dictionary.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"strings"

	"aggchecker"
	"aggchecker/internal/db"
)

const article = `<h1>What Our Survey Says About Developers</h1>
<p>We heard from 1,200 developers this year.</p>
<h2>Education</h2>
<p>13% of respondents across the globe tell us they are only self-taught.
About 45 percent hold a bachelors degree.</p>
<h2>Remote work</h2>
<p>Roughly 30 percent of respondents work fully remote.
Given respondents working fully remote, the probability of being self-taught stood at 19 percent.</p>`

func main() {
	table := buildSurvey(1200)
	database := aggchecker.NewDatabase("survey")
	if err := database.AddTable(table); err != nil {
		log.Fatal(err)
	}
	database.ApplyDataDictionary(map[string]string{
		"education": "highest education level, self-taught means no formal schooling",
		"remote":    "working arrangement of the respondent",
	})

	checker := aggchecker.New(database, aggchecker.DefaultConfig())
	report, err := checker.Check(context.Background(), aggchecker.ParseHTML(article))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.RenderText(aggchecker.RenderOptions{Color: false, TopQueries: 2}))

	fmt.Println("\nThe first education claim reproduces the paper's Table 9 error:")
	for _, cr := range report.Claims() {
		if cr.Claim.Text() == "13%" {
			best := cr.Best()
			fmt.Printf("  claimed 13%%, most likely query %q evaluates to %.3g → flagged=%v\n",
				best.Query.Describe(), best.Result, cr.Erroneous)
		}
	}
}

// buildSurvey synthesizes the respondents table: exactly 14% self-taught
// (the claim of 13% is the documented rounding error), 45% bachelors, 30%
// fully remote, and 19% self-taught among the fully remote.
func buildSurvey(n int) *db.Table {
	rng := rand.New(rand.NewSource(3))
	edu := db.NewStringColumn("education")
	remote := db.NewStringColumn("remote")
	salary := db.NewFloatColumn("salary")

	nSelf := int(0.14 * float64(n))             // 168
	nBach := int(0.45 * float64(n))             // 540
	nRemote := int(0.30 * float64(n))           // 360
	nSelfRemote := int(0.19 * float64(nRemote)) // 68

	for i := 0; i < n; i++ {
		switch {
		case i < nSelf:
			edu.AppendString("self-taught")
		case i < nSelf+nBach:
			edu.AppendString("bachelors degree")
		default:
			if i%2 == 0 {
				edu.AppendString("masters degree")
			} else {
				edu.AppendString("some college")
			}
		}
		salary.AppendFloat(float64(40000 + rng.Intn(120000)))
	}
	// Remote assignment: nSelfRemote of the self-taught, rest spread over
	// the remainder so totals hit exactly 30%.
	remoteLeft := nRemote - nSelfRemote
	for i := 0; i < n; i++ {
		isSelf := i < nSelf
		switch {
		case isSelf && i < nSelfRemote:
			remote.AppendString("fully remote")
		case !isSelf && remoteLeft > 0:
			remote.AppendString("fully remote")
			remoteLeft--
		default:
			if i%3 == 0 {
				remote.AppendString("hybrid")
			} else {
				remote.AppendString("office based")
			}
		}
	}
	tbl, err := db.NewTable("respondents", edu, remote, salary)
	if err != nil {
		log.Fatal(err)
	}
	_ = strings.TrimSpace
	return tbl
}
