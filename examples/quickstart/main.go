// Quickstart: verify three claims about a tiny sales table using the
// public aggchecker API. This is the smallest end-to-end use of the
// library: build a database in memory, write an article, check it.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"aggchecker"
	"aggchecker/internal/db"
)

const salesCSV = `region,product,units,price
east,widget,10,5
east,gadget,3,12
west,widget,7,5
west,widget,2,6
south,gadget,8,11
south,widget,4,5
east,widget,6,5
`

const article = `<h1>Quarterly Sales Notes</h1>
<p>The ledger records 7 sales in total. Three of them came from east.</p>
<h2>Widget performance</h2>
<p>There were 5 widget sales. The average price of a widget was 9 dollars.</p>`

func main() {
	table, err := db.LoadCSV(strings.NewReader(salesCSV), "sales")
	if err != nil {
		log.Fatal(err)
	}
	database := aggchecker.NewDatabase("shop")
	if err := database.AddTable(table); err != nil {
		log.Fatal(err)
	}

	checker := aggchecker.New(database, aggchecker.DefaultConfig())
	report, err := checker.Check(context.Background(), aggchecker.ParseHTML(article))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(report.RenderText(aggchecker.RenderOptions{Color: false, TopQueries: 2}))
	fmt.Println("\nInline markup:")
	fmt.Print(report.Markup())

	// The article contains two deliberate mistakes: "7 sales" (there are
	// exactly 7 rows — correct), "Three … from east" (correct), "5 widget
	// sales" (correct), and "average price … 9 dollars" (wrong: the widget
	// average is about 5.2). Inspect the verdicts programmatically:
	for _, cr := range report.Claims() {
		if cr.Erroneous {
			best := cr.Best()
			fmt.Printf("\nflagged %q: most likely query %q evaluates to %.4g\n",
				cr.Claim.Text(), best.Query.Describe(), best.Result)
		}
	}
}
