// The paper's running example end to end: the FiveThirtyEight league
// suspensions article (Figure 2 / Table 9 of "Verifying Text Summaries of
// Relational Data Sets"). The article claims "four previous lifetime bans"
// and "three were for repeated substance abuse"; the data set records five
// and four — the documented data-update error. The example prints the claim
// markup, the most likely query translations with their evaluation results,
// and the learned document theme (the convergence of Table 2).
package main

import (
	"context"
	"fmt"
	"sort"

	"aggchecker"
	"aggchecker/internal/corpus"
	"aggchecker/internal/sqlexec"
)

func main() {
	tc := corpus.MustLoad().Cases[0] // the embedded NFL case
	checker := aggchecker.New(tc.DB, aggchecker.DefaultConfig())
	report, err := checker.Check(context.Background(), tc.Doc)
	if err != nil {
		panic(err)
	}

	fmt.Print(report.RenderText(aggchecker.RenderOptions{Color: false, TopQueries: 3}))

	// Ground truth comparison: where did the hand-built translation rank?
	fmt.Println("\nGround truth ranks (Definition 6):")
	for i, cr := range report.Claims() {
		truth := tc.Truth[i]
		rank := -1
		for j, rq := range cr.Ranked {
			if rq.Query.Key() == truth.Query.Key() {
				rank = j
				break
			}
		}
		status := "correct"
		if !truth.Correct {
			status = fmt.Sprintf("ERRONEOUS (correct value %.6g)", truth.CorrectValue)
		}
		fmt.Printf("  claim %q: rank %d, %s\n", cr.Claim.Text(), rank, status)
	}

	// The learned document theme (Table 2 of the paper): after EM the
	// priors concentrate on counting queries restricted on games/category.
	fmt.Println("\nLearned priors (document theme):")
	type fnp struct {
		fn sqlexec.AggFunc
		p  float64
	}
	var fns []fnp
	for i, p := range report.Result.Priors.Fn {
		fns = append(fns, fnp{sqlexec.AggFunc(i), p})
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].p > fns[j].p })
	for _, f := range fns[:4] {
		fmt.Printf("  P(%s) = %.3f\n", f.fn, f.p)
	}
	cat := checker.Catalog
	for i, col := range cat.PredColumns {
		fmt.Printf("  P(restrict %s) = %.3f\n", col.Column, report.Result.Priors.Restrict[i])
	}
}
