// Semi-automated verification (§2's Semi-Automatic Aggregate-Checking): the
// checker produces tentative verdicts and a ranked list of query
// translations per claim; a simulated lector then reviews each claim the
// way the paper's user study participants did — accept top-1, pick among
// top-5/top-10, or assemble a query — and the session ends with a corrected
// verdict sheet and the interaction cost in clicks.
package main

import (
	"context"
	"fmt"

	"aggchecker"
	"aggchecker/internal/core"
	"aggchecker/internal/corpus"
)

func main() {
	// A politics article from the reproduction corpus, with ground truth.
	var tc *corpus.TestCase
	for _, c := range corpus.MustLoad().Cases {
		if c.Source == "nyt" {
			tc = c
			break
		}
	}
	checker := aggchecker.New(tc.DB, aggchecker.DefaultConfig())
	report, err := checker.Check(context.Background(), tc.Doc)
	if err != nil {
		panic(err)
	}

	fmt.Printf("Article: %s (%d claims)\n\n", tc.Name, len(tc.Truth))

	clicks := 0
	correctVerdicts := 0
	for i, cr := range report.Claims() {
		truth := tc.Truth[i]
		rank := core.RankOf(cr, truth.Query)
		var action string
		switch {
		case rank == 0:
			action = "accepted top suggestion"
			clicks++
		case rank > 0 && rank < 5:
			action = fmt.Sprintf("picked #%d from top-5", rank+1)
			clicks += 2
		case rank >= 5 && rank < 10:
			action = fmt.Sprintf("picked #%d from top-10", rank+1)
			clicks += 3
		default:
			action = "assembled query from fragments"
			clicks += 6
		}
		// After selecting the right query the lector sees its result and
		// the verdict is exact.
		verdictRight := true
		correctVerdicts++
		status := "OK"
		if !truth.Correct {
			status = fmt.Sprintf("WRONG (correct: %.6g)", truth.CorrectValue)
		}
		agreement := "agreed with"
		if cr.Erroneous == truth.Correct { // tentative verdict was wrong
			agreement = "corrected"
		}
		fmt.Printf("claim %-8q %-28s — lector %s the tentative markup → %s\n",
			cr.Claim.Text(), action, agreement, status)
		_ = verdictRight
	}
	fmt.Printf("\nSession: %d claims verified with %d clicks (%.1f clicks/claim).\n",
		correctVerdicts, clicks, float64(clicks)/float64(correctVerdicts))
	fmt.Printf("Fully automated tentative verdicts: %d/%d claims flagged, ground truth has %d erroneous.\n",
		len(report.ErroneousClaims()), len(tc.Truth), countErrors(tc))
}

func countErrors(tc *corpus.TestCase) int {
	n := 0
	for _, t := range tc.Truth {
		if !t.Correct {
			n++
		}
	}
	return n
}
