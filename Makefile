GO ?= go

.PHONY: all build test race vet fmt bench bench-smoke bench-cube bench-delta serve-smoke ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt fails when any file is not gofmt-clean (CI gate); run `gofmt -w .` to fix.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# bench runs the full benchmark suite (Tables 3-6, Figures 8-13).
bench:
	$(GO) test -run='^$$' -bench=. -benchmem ./...

# bench-cube measures the cube execution kernels (vectorized vs scalar) and
# writes BENCH_cube.json: ns/op, B/op, rows/s and per-case speedups in a
# machine-readable perf record. CI uploads it as an artifact on every run.
bench-cube:
	$(GO) run ./cmd/benchcube -out BENCH_cube.json

# bench-delta measures incremental cube maintenance under an append-heavy
# workload (cached cube advanced through commits by delta scans vs full
# rescans) and writes BENCH_delta.json. The run hard-fails when the engine's
# delta accounting is off (wrong block counts, unexpected full rebuilds), so
# the CI artifact doubles as a regression gate for the delta path.
bench-delta:
	$(GO) run ./cmd/benchcube -delta -out BENCH_delta.json

# bench-smoke compiles and executes every benchmark exactly once so the
# Table 5/6 regeneration paths cannot silently rot, then records the cube
# kernel perf trajectory at reduced scale; used by CI (which uploads the
# smoke record as an artifact). Writes to a separate path so local ci runs
# never clobber the committed full-scale BENCH_cube.json seed.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...
	$(GO) run ./cmd/benchcube -out BENCH_cube.smoke.json -rows 30000

# serve-smoke exercises the deployable path end to end: build the real
# aggcheckd binary, start it on a random port with the embedded demo
# corpus, POST the NFL document to the check and stream endpoints, and
# SIGTERM it expecting a clean shutdown.
serve-smoke:
	$(GO) test -count=1 -run TestAggcheckdSmoke ./cmd/aggcheckd

ci: fmt vet build race bench-smoke bench-delta serve-smoke
