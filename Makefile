GO ?= go

.PHONY: all build test race vet fmt bench bench-smoke serve-smoke ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt fails when any file is not gofmt-clean (CI gate); run `gofmt -w .` to fix.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# bench runs the full benchmark suite (Tables 3-6, Figures 8-13).
bench:
	$(GO) test -run='^$$' -bench=. -benchmem ./...

# bench-smoke compiles and executes every benchmark exactly once so the
# Table 5/6 regeneration paths cannot silently rot; used by CI.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# serve-smoke exercises the deployable path end to end: build the real
# aggcheckd binary, start it on a random port with the embedded demo
# corpus, POST the NFL document to the check and stream endpoints, and
# SIGTERM it expecting a clean shutdown.
serve-smoke:
	$(GO) test -count=1 -run TestAggcheckdSmoke ./cmd/aggcheckd

ci: fmt vet build race bench-smoke serve-smoke
