GO ?= go

.PHONY: all build test test-noasm race vet fmt bench bench-smoke bench-cube bench-delta bench-scan bench-parallel bench-shard bench-kernel bench-store bench-audit bench-guard audit-smoke serve-smoke recovery-smoke ci

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# test-noasm runs the suite with the assembly kernels compiled out, so the
# pure-Go dispatch fallback (non-amd64 platforms, `-tags noasm` escape
# hatch) stays correct. internal/vec's property tests compare every
# primitive against its reference under whichever binding is live.
test-noasm:
	$(GO) test -tags noasm ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# fmt fails when any file is not gofmt-clean (CI gate); run `gofmt -w .` to fix.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# bench runs the full benchmark suite (Tables 3-6, Figures 8-13).
bench:
	$(GO) test -run='^$$' -bench=. -benchmem ./...

# bench-cube measures the cube execution kernels (vectorized vs scalar) and
# writes BENCH_cube.json: ns/op, B/op, rows/s and per-case speedups in a
# machine-readable perf record. CI uploads it as an artifact on every run.
bench-cube:
	$(GO) run ./cmd/benchcube -out BENCH_cube.json

# bench-delta measures incremental cube maintenance under an append-heavy
# workload (cached cube advanced through commits by delta scans vs full
# rescans) and writes BENCH_delta.json. The run hard-fails when the engine's
# delta accounting is off (wrong block counts, unexpected full rebuilds), so
# the CI artifact doubles as a regression gate for the delta path.
bench-delta:
	$(GO) run ./cmd/benchcube -delta -out BENCH_delta.json

# bench-scan measures direct scans (Table 6's naive row and the planner's
# small-group fallback): the retired closure-matcher baseline vs the
# vectorized selection-vector pipeline vs zone-map pruning, writing
# BENCH_scan.json. The run hard-fails when the three modes disagree on any
# answer or when a prunable case records zero pruned blocks.
bench-scan:
	$(GO) run ./cmd/benchcube -scan -out BENCH_scan.json

# bench-parallel measures morsel-scheduler scaling and writes
# BENCH_parallel.json: one representative cube pass at worker widths
# {1,2,4,NPROC} (deduplicated), its scaling efficiency at NPROC, and a
# mixed scenario (heavy cube-pass loop + light direct scans on one shared
# scheduler) recording the light scans' p95 latency under contention.
bench-parallel:
	$(GO) run ./cmd/benchcube -parallel -out BENCH_parallel.json

# bench-shard measures sharded scatter-gather scaling and writes
# BENCH_shard.json: one representative cube pass executed by a coordinator
# over {1,2,4,8} round-robin partitions with single-threaded in-process
# workers, recording rows/s, the 1->4 speedup, and merge overhead as a
# fraction of pass time (hard floor: <10% through 4 shards). The run
# first hard-fails unless 4-shard merged cubes answer the whole case
# matrix identically to the unsharded engine. Scatter-gather needs cores
# to win: regenerate the committed seed on a multi-core box (the record's
# go_max_procs says what the seed machine had).
bench-shard:
	$(GO) run ./cmd/benchcube -shard -out BENCH_shard.json

# bench-kernel measures the internal/vec micro-kernels (plain-Go reference
# vs hand-unrolled vs CPU-dispatched per primitive, ns/row and rows/s over
# one 4096-row block) plus end-to-end cube throughput and the selection-
# pushdown batch against its pushdown-off baseline, writing
# BENCH_kernel.json. The run hard-fails unless >= 2 primitives reach 1.5x
# dispatched-over-reference rows/s (skipped when dispatch resolved to the
# pure-Go impl) or the two batch plans disagree on any answer.
bench-kernel:
	$(GO) run ./cmd/benchcube -kernels -out BENCH_kernel.json

# bench-store measures the persistent columnar block store and writes
# BENCH_store.json: cold-open latency of a manifest restore vs a CSV
# re-parse of identical data (the restart-time saving), page-level
# residency of a fully zone-refuted scan over the mmapped columns, and
# scan throughput across a compaction reseal (blocks and zone granularity
# before/after). The run hard-fails when the pruned scan faults a single
# column page in or when zone maps fail to survive the restore, so the CI
# artifact doubles as a regression gate for the store's read path.
bench-store:
	$(GO) run ./cmd/benchcube -store -out BENCH_store.json

# bench-audit measures corpus-scale auditing and writes BENCH_audit.json:
# 50 generated documents over one shared bench-scale dataset, checked
# isolated (fresh engine per document — the no-sharing baseline) and then
# through the audit path (shared engine, cross-document planning window,
# cost-aware cube cache). Records docs/s both ways, the audit-over-isolated
# speedup, shared-pass and window counters, cache economics (hit rate,
# saved ns/bytes), and a hit-rate series at {10,25,50} documents. The
# run hard-fails when any audit verdict differs bit-for-bit from its
# isolated check, when no cross-document pass was shared, when the 50-doc
# speedup is below 2x, or when the series hit rate is not monotonically
# increasing. 300k fact rows keep the workload scan-bound (cube passes,
# not EM arithmetic, dominate — the regime corpus auditing optimizes);
# concurrency 50 keeps the whole corpus in flight so the planning window
# sees every co-traveller.
bench-audit:
	$(GO) run ./cmd/benchcube -audit -out BENCH_audit.json -rows 300000 -audit-concurrency 50

# bench-guard is the bench-regression gate: it re-runs the cube matrix at
# the committed record's scale and fails when any case's vectorized rows/s
# falls more than 30% below the committed BENCH_cube.json — measured as
# the vectorized/scalar ratio, so the gate is meaningful on hardware other
# than the machine that produced the seed (the scalar interpreter scans
# the same rows on both and serves as the per-machine yardstick).
# The second leg re-runs the parallel matrix and fails when the fresh
# NPROC scaling efficiency drops below 60% of the committed
# BENCH_parallel.json seed's (ratio-of-ratios, so absolute machine speed
# cancels out — but not core counts: when the seed's go_max_procs differs
# from the current machine's, the leg warns and skips instead of
# comparing, since efficiency at NPROC is meaningless across machine
# classes and trivially 1.0 on a single-core box. Regenerate the seed on
# the CI machine class with `make bench-parallel` and commit the result).
# The third leg re-runs the micro-kernel matrix and fails when any
# primitive's dispatched-over-reference rows/s ratio drops more than 30%
# below the committed BENCH_kernel.json seed's (skipped with a warning
# when the seed and this build resolved different dispatch impls, e.g. an
# avx2 seed checked under -tags noasm).
# The fourth leg re-runs the store workload at the committed seed's scale
# and fails when the cold-open restore-over-parse speedup drops more than
# 30% below the committed BENCH_store.json seed's (a same-run ratio, so
# absolute machine speed cancels out; skipped with a message when the
# fresh run's fact_rows differ from the seed's, since the speedup scales
# with data volume).
# The fifth leg re-runs the shard matrix and fails when the fresh 1->4
# shard speedup drops more than 40% below the committed BENCH_shard.json
# seed's (skipped with an actionable message when the seed's go_max_procs
# differs from this machine's, or when both are 1 — single-core shard
# "scaling" measures overhead, not scaling).
# The sixth leg re-runs the corpus audit at reduced document count and
# fails when the audit-over-isolated speedup drops more than 30% below the
# committed BENCH_audit.json seed's (same-run ratio, machine-portable;
# skipped with a message when the document counts differ). Its bit-for-bit
# verdict gate and monotone hit-rate gate always apply.
bench-guard:
	$(GO) run ./cmd/benchcube -out BENCH_cube.guard.json -against BENCH_cube.json -tolerance 0.30
	$(GO) run ./cmd/benchcube -parallel -out BENCH_parallel.guard.json -against BENCH_parallel.json
	$(GO) run ./cmd/benchcube -kernels -out BENCH_kernel.guard.json -against BENCH_kernel.json -tolerance 0.30
	$(GO) run ./cmd/benchcube -store -out BENCH_store.guard.json -against BENCH_store.json -tolerance 0.30
	$(GO) run ./cmd/benchcube -shard -out BENCH_shard.guard.json -against BENCH_shard.json
	$(GO) run ./cmd/benchcube -audit -out BENCH_audit.guard.json -against BENCH_audit.json -docs 12 -rows 30000 -tolerance 0.30

# bench-smoke compiles and executes every benchmark exactly once so the
# Table 5/6 regeneration paths cannot silently rot, then records the cube
# kernel and direct-scan perf trajectories at reduced scale; used by CI
# (which uploads the smoke records as artifacts). Writes to separate paths
# so local ci runs never clobber the committed full-scale seeds.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...
	$(GO) run ./cmd/benchcube -out BENCH_cube.smoke.json -rows 30000
	$(GO) run ./cmd/benchcube -scan -out BENCH_scan.smoke.json -rows 30000
	$(GO) run ./cmd/benchcube -parallel -out BENCH_parallel.smoke.json
	$(GO) run ./cmd/benchcube -shard -out BENCH_shard.smoke.json -rows 30000
	$(GO) run ./cmd/benchcube -kernels -out BENCH_kernel.smoke.json -rows 30000
	$(GO) run ./cmd/benchcube -store -out BENCH_store.smoke.json -rows 30000
	$(GO) run ./cmd/benchcube -audit -out BENCH_audit.smoke.json -docs 12 -rows 30000

# audit-smoke exercises corpus auditing end to end through the real CLI:
# build aggcheck, generate a small shared corpus on disk, run
# `aggcheck -audit dir/`, and check the NDJSON report plus the economics
# summary (shared passes, cache hit rate) against the per-document exit
# codes.
audit-smoke:
	$(GO) test -count=1 -run TestAggcheckAuditSmoke ./cmd/aggcheck

# serve-smoke exercises the deployable path end to end: build the real
# aggcheckd binary, start it on a random port with the embedded demo
# corpus, POST the NFL document to the check and stream endpoints, and
# SIGTERM it expecting a clean shutdown.
serve-smoke:
	$(GO) test -count=1 -run TestAggcheckdSmoke ./cmd/aggcheckd

# recovery-smoke exercises crash recovery end to end: build the real
# aggcheckd binary with -watch and -data-dir, SIGKILL it racing a refresh
# commit, replace the source CSV with garbage, and restart over the same
# data directory — the restored daemon must serve bit-for-bit identical
# reports from the block store at the last durably published version.
recovery-smoke:
	$(GO) test -count=1 -run TestAggcheckdCrashRecovery ./cmd/aggcheckd

ci: fmt vet build race test-noasm bench-smoke bench-guard bench-delta audit-smoke serve-smoke recovery-smoke
