// Package aggchecker verifies natural-language text summaries of relational
// data sets, reproducing the AggChecker system of Jo et al., "Verifying Text
// Summaries of Relational Data Sets" (SIGMOD 2019).
//
// AggChecker works like a spell checker for numbers: given a database and a
// document, it detects numeric claims, translates each claim into a
// probability distribution over SQL aggregate queries (without any
// database-specific training), evaluates tens of thousands of candidate
// queries through merged, cached cube queries, and marks up the claims
// whose most likely translation disagrees with the data.
//
// Quickstart:
//
//	tbl, _ := aggchecker.LoadCSVFile("nflsuspensions.csv", "")
//	db := aggchecker.NewDatabase("nfl")
//	db.MustAddTable(tbl)
//	checker := aggchecker.New(db, aggchecker.DefaultConfig())
//	report, err := checker.Check(ctx, aggchecker.ParseHTML(article))
//	if err != nil { ... } // ctx cancelled or deadline exceeded
//	fmt.Print(report.RenderText(aggchecker.RenderOptions{Color: true}))
//
// The API is context-first: Check honors cancellation end to end (EM
// iterations, claim batches, cube passes), Stream emits typed per-iteration
// events so callers can watch per-claim probabilities refine, and Service
// hosts many named databases with lazily built checkers behind singleflight
// and an LRU residency bound. Per-request tuning uses functional options
// (WithMode, WithWorkers, WithScanWorkers, WithZoneMaps, WithDeadline,
// WithTopK) instead of Config mutation. cmd/aggcheckd serves the same
// surface over HTTP.
//
// Scan execution is morsel-driven: cube passes and direct scans decompose
// into zone-aligned morsels executed on a Scheduler — one shared worker
// pool spanning every concurrent request, with per-request fair queuing.
// NewService(WithScheduler(NewScheduler(n))) installs one pool per
// process; engine-construction knobs (Config.Exec) use ExecOption
// constructors (ExecScanWorkers, ExecZoneMaps, ExecCaching,
// ExecScalarKernel, ExecScheduler).
//
// Storage is snapshot-versioned: databases are opened from pluggable
// Sources (CSV, JSONL, in-memory builders), rows appended between checks
// are sealed into immutable blocks by Database.Commit (or
// Service.Refresh), and the engine absorbs each new version by delta-
// scanning only the appended blocks into its cached cubes — readers
// mid-check keep the consistent snapshot they started with.
//
// The exported types are aliases into the implementation packages under
// internal/, so downstream code programs against one import path.
package aggchecker

import (
	"time"

	"aggchecker/internal/core"
	"aggchecker/internal/db"
	"aggchecker/internal/document"
	"aggchecker/internal/model"
	"aggchecker/internal/sqlexec"
)

// Database is an in-memory relational database (tables + PK-FK schema).
// It is the mutable head of a snapshot-versioned store: Append stages
// rows, Commit seals them into immutable blocks and publishes the next
// Snapshot, and readers mid-check keep a consistent view.
type Database = db.Database

// Table is one relational table with typed columns.
type Table = db.Table

// ForeignKey declares a PK-FK edge between two tables.
type ForeignKey = db.ForeignKey

// Source materializes a database on demand (pluggable openers: CSV files
// or directories, JSONL files, in-memory builders).
type Source = db.Source

// Refresher is implemented by sources that can refresh an open database
// incrementally, appending new rows as fresh blocks.
type Refresher = db.Refresher

// Snapshot is an immutable, monotonically versioned view of a Database.
type Snapshot = db.Snapshot

// Block is one sealed, immutable run of rows — the granularity of
// incremental cube maintenance.
type Block = db.Block

// CSVSource loads one table per CSV file and refreshes incrementally from
// grown files.
type CSVSource = db.CSVSource

// JSONLSource loads one table per JSON-lines file with the same
// incremental refresh contract as CSVSource.
type JSONLSource = db.JSONLSource

// MemSource wraps an already-built in-memory database; Refresh commits
// rows the owner staged with Database.Append.
type MemSource = db.MemSource

// CSVOptions tunes CSV parsing: configurable NULL tokens (e.g. "NA",
// "null") and field delimiter.
type CSVOptions = db.CSVOptions

// Status reports the storage state of a Service database: residency,
// snapshot version, and row counts.
type Status = core.Status

// Document is a parsed hierarchical text document with detected claims.
type Document = document.Document

// Claim is one check-worthy numeric mention.
type Claim = document.Claim

// Checker verifies documents against one database.
type Checker = core.Checker

// Config aggregates all pipeline tunables; see DefaultConfig.
type Config = core.Config

// Report is the verification outcome for one document.
type Report = core.Report

// RenderOptions controls Report rendering.
type RenderOptions = core.RenderOptions

// ClaimResult is the per-claim verdict with its ranked query translations.
type ClaimResult = model.ClaimResult

// RankedQuery is one entry of a claim's query distribution.
type RankedQuery = model.RankedQuery

// Query is a Simple Aggregate Query (Definition 2 of the paper).
type Query = sqlexec.Query

// Predicate is a unary equality predicate of a query's WHERE clause.
type Predicate = sqlexec.Predicate

// ColumnRef names a table column.
type ColumnRef = sqlexec.ColumnRef

// Service hosts many named databases behind one verification front end;
// checkers are built lazily (singleflight) and bounded by an LRU policy.
type Service = core.Service

// ServiceOption configures NewService.
type ServiceOption = core.ServiceOption

// RegisterOption configures one Service database registration.
type RegisterOption = core.RegisterOption

// OpenFunc lazily materializes a registered database on first use.
type OpenFunc = core.OpenFunc

// CheckOption customizes one Check or Stream call without mutating the
// checker's shared Config.
type CheckOption = core.CheckOption

// AuditDoc is one corpus document submitted to Checker.Audit or
// Service.Audit.
type AuditDoc = core.AuditDoc

// DocReport is one document's outcome within a corpus audit.
type DocReport = core.DocReport

// AuditReport aggregates a corpus audit: per-document reports in input
// order, corpus totals, and the run's shared-pass and cache economics.
type AuditReport = core.AuditReport

// AuditOption customizes one Audit call (concurrency, planning window,
// progress streaming, per-document check options).
type AuditOption = core.AuditOption

// CacheStats is the cube cache's residency and cost-aware economics
// snapshot, reported in Status and AuditReport.
type CacheStats = core.CacheStats

// WindowConfig tunes the cross-document planning window used by Audit:
// how many claim batches may park awaiting merge and the flush deadline.
type WindowConfig = sqlexec.WindowConfig

// Scheduler is a process-wide morsel scheduler: one worker pool shared by
// every cube pass and direct scan submitted through it, with round-robin
// fairness across concurrent requests. Create with NewScheduler, install
// with WithScheduler (services) or ExecScheduler (Config.Exec), and Close
// when the process is done with it.
type Scheduler = sqlexec.Scheduler

// ExecOption configures engine construction (Config.Exec): scan-worker
// bounds, zone maps, kernel selection, caching, and scheduler attachment.
type ExecOption = sqlexec.ExecOption

// Event is one element of a verification stream; concrete types are
// EventIteration, EventClaimUpdate, and EventDone.
type Event = core.Event

// EventIteration announces a completed EM iteration.
type EventIteration = core.EventIteration

// EventClaimUpdate carries one claim's refined top-k ranking and confidence
// after an EM iteration.
type EventClaimUpdate = core.EventClaimUpdate

// EventDone terminates a stream with the final Report or the run's error.
type EventDone = core.EventDone

// EvalMode selects the candidate evaluation strategy.
type EvalMode = core.EvalMode

// Evaluation strategies (the rows of the paper's Table 6).
const (
	EvalCached = core.EvalCached
	EvalMerged = core.EvalMerged
	EvalNaive  = core.EvalNaive
)

// Aggregation functions supported by the query model.
const (
	Count                  = sqlexec.Count
	CountDistinct          = sqlexec.CountDistinct
	Sum                    = sqlexec.Sum
	Avg                    = sqlexec.Avg
	Min                    = sqlexec.Min
	Max                    = sqlexec.Max
	Percentage             = sqlexec.Percentage
	ConditionalProbability = sqlexec.ConditionalProbability
)

// ErrUnknownDatabase is returned by Service methods naming an unregistered
// database.
var ErrUnknownDatabase = core.ErrUnknownDatabase

// New creates a Checker for the database, building the fragment catalog and
// keyword indexes.
func New(d *Database, cfg Config) *Checker { return core.NewChecker(d, cfg) }

// NewService creates an empty multi-database registry.
func NewService(opts ...ServiceOption) *Service { return core.NewService(opts...) }

// WithDefaultConfig sets the Config a Service uses for databases registered
// without their own.
func WithDefaultConfig(cfg Config) ServiceOption { return core.WithDefaultConfig(cfg) }

// WithMaxResident bounds how many built checkers a Service keeps in memory
// (LRU eviction; rebuilt lazily on next use).
func WithMaxResident(n int) ServiceOption { return core.WithMaxResident(n) }

// WithDatabaseConfig overrides the service default Config for one database.
func WithDatabaseConfig(cfg Config) RegisterOption { return core.WithDatabaseConfig(cfg) }

// WithShards sets the default shard count for every database a Service
// hosts: k > 1 partitions fact tables at checker build time and answers
// candidate queries by scatter-gather over per-shard workers, with results
// identical to unsharded execution.
func WithShards(k int) ServiceOption { return core.WithShards(k) }

// WithShardKeys sets the default shard-key mapping (fact-table name ->
// hash-placement column) used when sharding is enabled; tables without an
// entry are placed round-robin.
func WithShardKeys(keys map[string]string) ServiceOption { return core.WithShardKeys(keys) }

// WithDatabaseShards overrides the shard topology for one database.
func WithDatabaseShards(k int, keys map[string]string) RegisterOption {
	return core.WithDatabaseShards(k, keys)
}

// WithMode selects the evaluation strategy for one request.
func WithMode(m EvalMode) CheckOption { return core.WithMode(m) }

// WithWorkers bounds the engine-side worker pool for one request.
func WithWorkers(n int) CheckOption { return core.WithWorkers(n) }

// WithDeadline bounds one request's wall-clock time.
func WithDeadline(d time.Duration) CheckOption { return core.WithDeadline(d) }

// WithTopK sets how many ranked query translations are kept per claim for
// one request.
func WithTopK(k int) CheckOption { return core.WithTopK(k) }

// WithScanWorkers bounds, for one request, how many scheduler workers any
// single cube pass or direct scan of that request may occupy at once;
// n ≤ 0 restores the engine default.
func WithScanWorkers(n int) CheckOption { return core.WithScanWorkers(n) }

// WithZoneMaps toggles zone-map pruning for one request (results are
// identical either way).
func WithZoneMaps(on bool) CheckOption { return core.WithZoneMaps(on) }

// WithAuditConcurrency bounds how many documents one Audit call checks
// concurrently (default 8). More in-flight documents widen the shared-pass
// planning window.
func WithAuditConcurrency(n int) AuditOption { return core.WithAuditConcurrency(n) }

// WithAuditWindow tunes the cross-document planning window for one Audit
// call; zero fields keep the defaults.
func WithAuditWindow(cfg WindowConfig) AuditOption { return core.WithAuditWindow(cfg) }

// WithAuditProgress installs a per-document completion callback, invoked
// serially in completion order as the audit proceeds.
func WithAuditProgress(fn func(index int, dr DocReport)) AuditOption {
	return core.WithAuditProgress(fn)
}

// WithAuditCheckOptions forwards per-document check options to every
// member check of one Audit call.
func WithAuditCheckOptions(opts ...CheckOption) AuditOption {
	return core.WithAuditCheckOptions(opts...)
}

// NewScheduler creates a morsel scheduler with the given worker count
// (≤ 0 uses GOMAXPROCS). The calling goroutine of each scan always
// participates, so workers=1 spawns no helpers and executes scans exactly
// single-threaded.
func NewScheduler(workers int) *Scheduler { return sqlexec.NewScheduler(workers) }

// WithScheduler installs one shared morsel scheduler on every engine a
// Service builds — one worker pool per process, not per database.
func WithScheduler(s *Scheduler) ServiceOption { return core.WithScheduler(s) }

// ExecScanWorkers sets an engine's default per-scan worker bound.
func ExecScanWorkers(n int) ExecOption { return sqlexec.WithScanWorkers(n) }

// ExecZoneMaps sets an engine's default zone-map pruning toggle.
func ExecZoneMaps(on bool) ExecOption { return sqlexec.WithZoneMaps(on) }

// ExecScalarKernel forces the scalar (non-vectorized) kernel; the
// vectorized kernel is the default.
func ExecScalarKernel(on bool) ExecOption { return sqlexec.WithScalarKernel(on) }

// ExecCaching toggles cube-result caching (disabling also drops cached
// results).
func ExecCaching(on bool) ExecOption { return sqlexec.WithCaching(on) }

// ExecScheduler attaches a shared morsel scheduler to one engine.
func ExecScheduler(s *Scheduler) ExecOption { return sqlexec.WithScheduler(s) }

// ExecCubeCacheBudget bounds the cube cache's resident bytes: once
// exceeded, the cost-aware policy evicts cheap-to-rebuild, rarely-hit
// entries first (score = build cost x (1+hits) / bytes, ascending).
// n ≤ 0 disables the bound.
func ExecCubeCacheBudget(n int64) ExecOption { return sqlexec.WithCubeCacheBudget(n) }

// ParseEvalMode parses "cached", "merged", or "naive" (plus String() forms)
// into an EvalMode.
func ParseEvalMode(s string) (EvalMode, error) { return core.ParseEvalMode(s) }

// DefaultConfig returns the paper's main configuration.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewCSVSource returns a Source over an explicit CSV file list (one table
// per file).
func NewCSVSource(name string, files ...string) *CSVSource { return db.NewCSVSource(name, files...) }

// NewCSVDirSource returns a Source over every *.csv file in a directory.
func NewCSVDirSource(name, dir string) *CSVSource { return db.NewCSVDirSource(name, dir) }

// NewJSONLSource returns a Source over JSON-lines files (one table per
// file).
func NewJSONLSource(name string, files ...string) *JSONLSource {
	return db.NewJSONLSource(name, files...)
}

// NewMemSource returns a Source over an in-memory database.
func NewMemSource(d *Database) *MemSource { return db.NewMemSource(d) }

// NewDatabase creates an empty database.
//
// Deprecated: hand-built databases remain fully supported as the in-memory
// builder path, but prefer registering a Source (NewMemSource wraps a
// built Database) so services can Refresh it; use Append/Commit rather
// than direct column mutation once checking has started.
func NewDatabase(name string) *Database { return db.NewDatabase(name) }

// LoadCSVFile loads a table from a CSV file with type inference; the table
// name defaults to the file's base name.
//
// Deprecated: use NewCSVSource (or LoadCSVFileOptions for one table with
// explicit CSVOptions); sources open lazily and refresh incrementally.
func LoadCSVFile(path, tableName string) (*Table, error) {
	return db.LoadCSVFile(path, tableName)
}

// LoadCSVFileOptions loads a table from a CSV file with explicit parsing
// options (NULL tokens, delimiter).
func LoadCSVFileOptions(path, tableName string, opts CSVOptions) (*Table, error) {
	return db.LoadCSVFileOptions(path, tableName, opts)
}

// LoadJSONLFile loads a table from a JSON-lines file.
func LoadJSONLFile(path, tableName string) (*Table, error) {
	return db.LoadJSONLFile(path, tableName)
}

// ParseHTML parses HTML-lite markup into a Document and detects claims.
func ParseHTML(src string) *Document { return document.ParseHTML(src) }

// ParseText parses plain text with markdown-lite headings into a Document.
func ParseText(src string) *Document { return document.ParseText(src) }

// MatchesClaim reports whether a query result satisfies a claimed value
// under the paper's rounding semantics (Definition 1).
func MatchesClaim(result, claimed float64) bool { return model.Matches(result, claimed) }
