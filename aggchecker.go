// Package aggchecker verifies natural-language text summaries of relational
// data sets, reproducing the AggChecker system of Jo et al., "Verifying Text
// Summaries of Relational Data Sets" (SIGMOD 2019).
//
// AggChecker works like a spell checker for numbers: given a database and a
// document, it detects numeric claims, translates each claim into a
// probability distribution over SQL aggregate queries (without any
// database-specific training), evaluates tens of thousands of candidate
// queries through merged, cached cube queries, and marks up the claims
// whose most likely translation disagrees with the data.
//
// Quickstart:
//
//	tbl, _ := aggchecker.LoadCSVFile("nflsuspensions.csv", "")
//	db := aggchecker.NewDatabase("nfl")
//	db.MustAddTable(tbl)
//	checker := aggchecker.New(db, aggchecker.DefaultConfig())
//	report := checker.CheckHTML(article)
//	fmt.Print(report.RenderText(aggchecker.RenderOptions{Color: true}))
//
// The exported types are aliases into the implementation packages under
// internal/, so downstream code programs against one import path.
package aggchecker

import (
	"aggchecker/internal/core"
	"aggchecker/internal/db"
	"aggchecker/internal/document"
	"aggchecker/internal/model"
	"aggchecker/internal/sqlexec"
)

// Database is an in-memory relational database (tables + PK-FK schema).
type Database = db.Database

// Table is one relational table with typed columns.
type Table = db.Table

// ForeignKey declares a PK-FK edge between two tables.
type ForeignKey = db.ForeignKey

// Document is a parsed hierarchical text document with detected claims.
type Document = document.Document

// Claim is one check-worthy numeric mention.
type Claim = document.Claim

// Checker verifies documents against one database.
type Checker = core.Checker

// Config aggregates all pipeline tunables; see DefaultConfig.
type Config = core.Config

// Report is the verification outcome for one document.
type Report = core.Report

// RenderOptions controls Report rendering.
type RenderOptions = core.RenderOptions

// ClaimResult is the per-claim verdict with its ranked query translations.
type ClaimResult = model.ClaimResult

// RankedQuery is one entry of a claim's query distribution.
type RankedQuery = model.RankedQuery

// Query is a Simple Aggregate Query (Definition 2 of the paper).
type Query = sqlexec.Query

// Predicate is a unary equality predicate of a query's WHERE clause.
type Predicate = sqlexec.Predicate

// ColumnRef names a table column.
type ColumnRef = sqlexec.ColumnRef

// EvalMode selects the candidate evaluation strategy.
type EvalMode = core.EvalMode

// Evaluation strategies (the rows of the paper's Table 6).
const (
	EvalCached = core.EvalCached
	EvalMerged = core.EvalMerged
	EvalNaive  = core.EvalNaive
)

// Aggregation functions supported by the query model.
const (
	Count                  = sqlexec.Count
	CountDistinct          = sqlexec.CountDistinct
	Sum                    = sqlexec.Sum
	Avg                    = sqlexec.Avg
	Min                    = sqlexec.Min
	Max                    = sqlexec.Max
	Percentage             = sqlexec.Percentage
	ConditionalProbability = sqlexec.ConditionalProbability
)

// New creates a Checker for the database, building the fragment catalog and
// keyword indexes.
func New(d *Database, cfg Config) *Checker { return core.NewChecker(d, cfg) }

// DefaultConfig returns the paper's main configuration.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewDatabase creates an empty database.
func NewDatabase(name string) *Database { return db.NewDatabase(name) }

// LoadCSVFile loads a table from a CSV file with type inference; the table
// name defaults to the file's base name.
func LoadCSVFile(path, tableName string) (*Table, error) {
	return db.LoadCSVFile(path, tableName)
}

// ParseHTML parses HTML-lite markup into a Document and detects claims.
func ParseHTML(src string) *Document { return document.ParseHTML(src) }

// ParseText parses plain text with markdown-lite headings into a Document.
func ParseText(src string) *Document { return document.ParseText(src) }

// MatchesClaim reports whether a query result satisfies a claimed value
// under the paper's rounding semantics (Definition 1).
func MatchesClaim(result, claimed float64) bool { return model.Matches(result, claimed) }
