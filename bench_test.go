// Benchmarks regenerating the paper's tables and figures. Each benchmark
// runs the corresponding experiment on a corpus subset sized for benchmark
// iteration and reports the headline quality metrics alongside wall-clock
// time via b.ReportMetric, so `go test -bench=. -benchmem` doubles as a
// compact reproduction run. cmd/experiments produces the full paper-scale
// rows.
package aggchecker_test

import (
	"context"
	"testing"

	"aggchecker/internal/baselines"
	"aggchecker/internal/core"
	"aggchecker/internal/corpus"
	"aggchecker/internal/experiments"
	"aggchecker/internal/study"
)

// benchOptions returns a reduced-scale experiment setup: the first n corpus
// cases with a lowered evaluation budget.
func benchOptions(n int) experiments.Options {
	c := corpus.MustLoad()
	if n > len(c.Cases) {
		n = len(c.Cases)
	}
	return experiments.Options{Cases: c.Cases[:n], Quick: true, Seed: 7}
}

// BenchmarkTable5Baselines compares AggChecker's automated checking against
// the ClaimBuster baselines (Table 5's bottom block).
func BenchmarkTable5Baselines(b *testing.B) {
	o := benchOptions(10)
	for i := 0; i < b.N; i++ {
		main := experiments.RunAutomated(o.Cases, o.BaseConfig())
		fm := experiments.RunClaimBusterFM(o, baselines.MaxSimilarity)
		kb := experiments.RunClaimBusterKB(o)
		if i == b.N-1 {
			b.ReportMetric(100*main.Confusion.F1(), "aggchecker-F1")
			b.ReportMetric(100*fm.Confusion.F1(), "claimbusterFM-F1")
			b.ReportMetric(100*kb.Confusion.F1(), "claimbusterKB-F1")
		}
	}
}

// BenchmarkTable6Naive, ...Merged and ...Cached time the three execution
// strategies of Table 6 on the same workload.
func BenchmarkTable6Naive(b *testing.B)  { benchTable6(b, core.EvalNaive) }
func BenchmarkTable6Merged(b *testing.B) { benchTable6(b, core.EvalMerged) }
func BenchmarkTable6Cached(b *testing.B) { benchTable6(b, core.EvalCached) }

func benchTable6(b *testing.B, mode core.EvalMode) {
	o := benchOptions(8)
	cfg := o.BaseConfig()
	cfg.Mode = mode
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := experiments.RunAutomated(o.Cases, cfg)
		if i == b.N-1 {
			b.ReportMetric(float64(res.EvaluatedQueries), "queries")
		}
	}
}

// BenchmarkTable10ModelAblation reports top-1 coverage for the three model
// variants (Table 10 / Figure 10's driver).
func BenchmarkTable10ModelAblation(b *testing.B) {
	o := benchOptions(8)
	for i := 0; i < b.N; i++ {
		rows := experiments.RunModelAblation(o)
		if i == b.N-1 {
			b.ReportMetric(rows[0].Result.TopK(1), "top1-scores")
			b.ReportMetric(rows[1].Result.TopK(1), "top1-eval")
			b.ReportMetric(rows[2].Result.TopK(1), "top1-priors")
		}
	}
}

// BenchmarkTable3UserFeatures and BenchmarkTable4UserStudy simulate the
// on-site user study.
func BenchmarkTable3UserFeatures(b *testing.B) {
	o := benchOptions(53)
	inputs := study.PrepareInputs(o.Corpus().StudyCases(), o.BaseConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := study.RunOnsiteStudy(inputs, 8, o.Seed)
		if i == b.N-1 {
			shares := res.FeatureShares()
			b.ReportMetric(100*shares[study.ActionTop1], "top1-pct")
			b.ReportMetric(100*shares[study.ActionTop5], "top5-pct")
		}
	}
}

func BenchmarkTable4UserStudy(b *testing.B) {
	o := benchOptions(53)
	inputs := study.PrepareInputs(o.Corpus().StudyCases(), o.BaseConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := study.RunOnsiteStudy(inputs, 8, o.Seed)
		if i == b.N-1 {
			agg, sql := res.ToolConfusions()
			b.ReportMetric(100*agg.Recall(), "agg-recall")
			b.ReportMetric(100*sql.Recall(), "sql-recall")
			b.ReportMetric(res.Speedup(), "speedup-x")
		}
	}
}

// BenchmarkFigure8CandidateSpace measures fragment-catalog construction and
// candidate-space counting over the corpus data sets.
func BenchmarkFigure8CandidateSpace(b *testing.B) {
	o := benchOptions(53)
	for i := 0; i < b.N; i++ {
		rows := experiments.RunFigure8(o)
		if i == b.N-1 {
			max := 0.0
			for _, r := range rows {
				if r.Log10 > max {
					max = r.Log10
				}
			}
			b.ReportMetric(max, "max-log10-candidates")
		}
	}
}

// BenchmarkFigure10Coverage reports the headline top-k coverage numbers.
func BenchmarkFigure10Coverage(b *testing.B) {
	o := benchOptions(10)
	cfg := o.BaseConfig()
	for i := 0; i < b.N; i++ {
		res := experiments.RunAutomated(o.Cases, cfg)
		if i == b.N-1 {
			b.ReportMetric(res.TopK(1), "top1-pct")
			b.ReportMetric(res.TopK(5), "top5-pct")
			b.ReportMetric(res.TopK(10), "top10-pct")
		}
	}
}

// BenchmarkFigure11Context reports the coverage delta from the full keyword
// context versus the claim sentence alone.
func BenchmarkFigure11Context(b *testing.B) {
	o := benchOptions(8)
	for i := 0; i < b.N; i++ {
		rows := experiments.RunContextAblation(o)
		if i == b.N-1 {
			b.ReportMetric(rows[0].Result.TopK(5), "top5-sentence-only")
			b.ReportMetric(rows[len(rows)-1].Result.TopK(5), "top5-full-context")
		}
	}
}

// BenchmarkFigure12PT sweeps the true-claim prior.
func BenchmarkFigure12PT(b *testing.B) {
	o := benchOptions(8)
	for i := 0; i < b.N; i++ {
		rows := experiments.RunFigure12(o, []float64{0.9, 0.999})
		if i == b.N-1 {
			b.ReportMetric(100*rows[0].Recall, "recall-pt0.9")
			b.ReportMetric(100*rows[1].Recall, "recall-pt0.999")
			b.ReportMetric(100*rows[0].Precision, "precision-pt0.9")
			b.ReportMetric(100*rows[1].Precision, "precision-pt0.999")
		}
	}
}

// BenchmarkFigure13Budget sweeps the IR-hit budget.
func BenchmarkFigure13Budget(b *testing.B) {
	o := benchOptions(8)
	for i := 0; i < b.N; i++ {
		rows := experiments.RunHitsSweep(o, []int{1, 20})
		if i == b.N-1 {
			b.ReportMetric(rows[0].Result.TopK(10), "top10-hits1")
			b.ReportMetric(rows[1].Result.TopK(10), "top10-hits20")
		}
	}
}

// BenchmarkCheckSingleArticle is the end-to-end unit cost: one article
// through the whole pipeline (catalog construction excluded, as in the
// paper's per-article timings).
func BenchmarkCheckSingleArticle(b *testing.B) {
	tc := corpus.MustLoad().Cases[0]
	cfg := core.DefaultConfig()
	checker := core.NewChecker(tc.DB, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		checker.Check(context.Background(), tc.Doc)
	}
}

// BenchmarkCatalogConstruction measures per-dataset preprocessing (§4.2).
func BenchmarkCatalogConstruction(b *testing.B) {
	tc := corpus.MustLoad().Cases[3]
	for i := 0; i < b.N; i++ {
		core.NewChecker(tc.DB, core.DefaultConfig())
	}
}

// BenchmarkDesignAblations measures the reproduction's own design choices
// (DESIGN.md §4): restriction-prior formulation, EM flavour, score scaling.
func BenchmarkDesignAblations(b *testing.B) {
	o := benchOptions(8)
	for i := 0; i < b.N; i++ {
		rows := experiments.RunDesignAblations(o)
		if i == b.N-1 {
			b.ReportMetric(rows[0].Result.TopK(1), "top1-current")
			b.ReportMetric(rows[1].Result.TopK(1), "top1-paperliteral")
			b.ReportMetric(rows[2].Result.TopK(1), "top1-softem")
			b.ReportMetric(rows[3].Result.TopK(1), "top1-noscale")
		}
	}
}
