package aggchecker_test

import (
	"context"
	"fmt"
	"strings"
	"time"

	"aggchecker"
	"aggchecker/internal/db"
)

const salesCSV = `region,product,units
east,widget,5
east,gadget,3
west,widget,2
west,gadget,4
north,widget,6
`

const article = `<h1>Quarterly sales</h1>
<p>Our database records 5 sales rows in the east region... no wait, 2.
We sold widgets in 3 regions.</p>`

func exampleDatabase() *aggchecker.Database {
	tbl, err := db.LoadCSV(strings.NewReader(salesCSV), "sales")
	if err != nil {
		panic(err)
	}
	d := aggchecker.NewDatabase("shop")
	d.MustAddTable(tbl)
	return d
}

// The context-first API: parse, check, render. Cancellation and deadlines
// propagate through the EM loop down to the cube scans.
func ExampleChecker_Check() {
	checker := aggchecker.New(exampleDatabase(), aggchecker.DefaultConfig())
	doc := aggchecker.ParseHTML(article)

	report, err := checker.Check(context.Background(), doc,
		aggchecker.WithTopK(3),
		aggchecker.WithDeadline(time.Minute),
	)
	if err != nil {
		fmt.Println("check aborted:", err)
		return
	}
	fmt.Printf("claims=%d iterations>=1=%v\n", len(report.Claims()), report.Result.Iterations >= 1)
	// Output: claims=3 iterations>=1=true
}

// Stream delivers typed events after every EM iteration; consuming the
// channel to exhaustion always ends with EventDone.
func ExampleChecker_Stream() {
	checker := aggchecker.New(exampleDatabase(), aggchecker.DefaultConfig())
	doc := aggchecker.ParseHTML(article)

	events, err := checker.Stream(context.Background(), doc, aggchecker.WithTopK(2))
	if err != nil {
		fmt.Println("stream failed:", err)
		return
	}
	iterations := 0
	for ev := range events {
		switch e := ev.(type) {
		case aggchecker.EventIteration:
			iterations++
		case aggchecker.EventDone:
			fmt.Printf("done: err=%v iterations>=1=%v\n", e.Err, iterations >= 1)
		}
	}
	// Output: done: err=<nil> iterations>=1=true
}

// Service hosts many named databases; checkers are built lazily on first
// use and bounded by an LRU policy.
func ExampleService() {
	svc := aggchecker.NewService(aggchecker.WithMaxResident(8))
	if err := svc.RegisterDatabase("shop", exampleDatabase()); err != nil {
		panic(err)
	}

	report, err := svc.Check(context.Background(), "shop", aggchecker.ParseHTML(article))
	if err != nil {
		panic(err)
	}
	fmt.Printf("databases=%v claims=%d\n", svc.Names(), len(report.Claims()))

	_, err = svc.Check(context.Background(), "missing", aggchecker.ParseHTML(article))
	fmt.Println("unknown database:", err != nil)
	// Output:
	// databases=[shop] claims=3
	// unknown database: true
}

// Per-request options replace ad-hoc Config mutation: the same Checker can
// serve different strategies concurrently.
func ExampleWithMode() {
	checker := aggchecker.New(exampleDatabase(), aggchecker.DefaultConfig())
	doc := aggchecker.ParseHTML(article)

	for _, mode := range []aggchecker.EvalMode{aggchecker.EvalCached, aggchecker.EvalNaive} {
		report, err := checker.Check(context.Background(), doc, aggchecker.WithMode(mode))
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s: claims=%d\n", mode, len(report.Claims()))
	}
	// Output:
	// merged+cached: claims=3
	// naive: claims=3
}
