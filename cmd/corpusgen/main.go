// Command corpusgen writes the reproduction corpus to disk for inspection:
// one directory per test case containing the article (article.html), the
// data set (one CSV per table), and the ground truth (truth.tsv).
//
// Usage:
//
//	corpusgen -out ./corpus
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"aggchecker/internal/corpus"
	"aggchecker/internal/db"
)

func main() {
	out := flag.String("out", "corpus-out", "output directory")
	flag.Parse()

	c := corpus.MustLoad()
	for _, tc := range c.Cases {
		dir := filepath.Join(*out, tc.Name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "article.html"), []byte(tc.HTML), 0o644); err != nil {
			fatal(err)
		}
		for _, tbl := range tc.DB.Tables() {
			if err := writeCSV(filepath.Join(dir, tbl.Name+".csv"), tbl); err != nil {
				fatal(err)
			}
		}
		if err := writeTruth(filepath.Join(dir, "truth.tsv"), tc); err != nil {
			fatal(err)
		}
	}
	stats := c.ComputeStats()
	fmt.Printf("wrote %d cases (%d claims, %d erroneous) to %s\n",
		stats.Articles, stats.Claims, stats.Erroneous, *out)
}

func writeCSV(path string, tbl *db.Table) error {
	var sb strings.Builder
	for i, col := range tbl.Columns {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(col.Name)
	}
	sb.WriteByte('\n')
	for r := 0; r < tbl.NumRows(); r++ {
		for i, col := range tbl.Columns {
			if i > 0 {
				sb.WriteByte(',')
			}
			cell := col.StringAt(r)
			if strings.ContainsAny(cell, ",\"\n") {
				cell = `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
			}
			sb.WriteString(cell)
		}
		sb.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}

func writeTruth(path string, tc *corpus.TestCase) error {
	var sb strings.Builder
	sb.WriteString("claim\tclaimed\tcorrect_value\tis_correct\tsql\n")
	defaultTable := tc.DB.Tables()[0].Name
	for i, t := range tc.Truth {
		fmt.Fprintf(&sb, "%d\t%s\t%.6g\t%v\t%s\n",
			i, t.ClaimedText, t.CorrectValue, t.Correct, t.Query.SQL(defaultTable))
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "corpusgen:", err)
	os.Exit(1)
}
