// Command aggcheckd is the verification daemon: it hosts many named
// databases behind an HTTP API so documents can be checked (and watched
// converging, via streaming) without linking the library.
//
// Usage:
//
//	aggcheckd -demo -addr :8080
//	aggcheckd -db sales=sales.csv,stores.csv -db hr=people.csv
//
// Endpoints:
//
//	GET  /healthz
//	GET  /v1/databases
//	POST /v1/databases/{name}/check         body = document, returns JSON report
//	POST /v1/databases/{name}/check/stream  returns NDJSON of EM-iteration events
//
// Query parameters on the check endpoints: mode=cached|merged|naive,
// topk=N, workers=N, timeout=DURATION. -demo registers the embedded
// reproduction corpus (the paper's NFL running example as "nfl" plus the
// generated articles), which doubles as the CI smoke target.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"aggchecker/internal/core"
	"aggchecker/internal/corpus"
	"aggchecker/internal/db"
	"aggchecker/internal/httpapi"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	demo := flag.Bool("demo", false, "register the embedded reproduction corpus databases")
	mode := flag.String("mode", "cached", "default evaluation mode: cached, merged, or naive")
	workers := flag.Int("workers", 0, "default engine worker bound per request (0 = GOMAXPROCS)")
	reqTimeout := flag.Duration("timeout", 2*time.Minute, "per-request verification timeout (0 = none)")
	maxConcurrent := flag.Int("max-concurrent", 16, "max simultaneous verification requests (0 = unlimited)")
	maxResident := flag.Int("max-resident", 8, "max resident database catalogs, LRU-evicted (0 = unlimited)")
	shutdownGrace := flag.Duration("shutdown-grace", 10*time.Second, "graceful shutdown window after SIGINT/SIGTERM")
	var dbFlags multiFlag
	flag.Var(&dbFlags, "db", "register a database: name=file.csv[,file2.csv...] (repeatable)")
	flag.Parse()

	logger := log.New(os.Stderr, "aggcheckd: ", log.LstdFlags)

	evalMode, err := core.ParseEvalMode(*mode)
	if err != nil {
		logger.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Mode = evalMode
	cfg.Workers = *workers

	svc := core.NewService(
		core.WithDefaultConfig(cfg),
		core.WithMaxResident(*maxResident),
	)
	registered := 0
	for _, spec := range dbFlags {
		name, files, ok := strings.Cut(spec, "=")
		if !ok || name == "" || files == "" {
			logger.Fatalf("bad -db %q (want name=file.csv[,file2.csv...])", spec)
		}
		if err := svc.Register(name, csvOpener(strings.Split(files, ","))); err != nil {
			logger.Fatal(err)
		}
		registered++
	}
	if *demo {
		n, err := registerDemo(svc)
		if err != nil {
			logger.Fatal(err)
		}
		registered += n
	}
	if registered == 0 {
		logger.Fatal("no databases registered (use -db or -demo)")
	}

	handler := httpapi.New(svc, httpapi.Options{
		RequestTimeout: *reqTimeout,
		MaxConcurrent:  *maxConcurrent,
		Log:            logger,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	server := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// The listening line goes to stdout so scripts (make serve-smoke) can
	// discover the bound port when -addr ends in :0.
	fmt.Printf("aggcheckd: listening on %s (%d databases)\n", ln.Addr(), registered)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(ln) }()

	select {
	case err := <-serveErr:
		logger.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}
	stop()
	logger.Printf("shutting down (grace %s)", *shutdownGrace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	if err := server.Shutdown(shutdownCtx); err != nil {
		logger.Printf("forced shutdown: %v", err)
		_ = server.Close()
		os.Exit(1)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Fatalf("serve: %v", err)
	}
	logger.Printf("bye")
}

// multiFlag collects repeated -db flags.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, " ") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// csvOpener loads the given CSV files into one database on first use.
func csvOpener(files []string) core.OpenFunc {
	return func(ctx context.Context) (*db.Database, error) {
		d := db.NewDatabase("userdb")
		for _, f := range files {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			tbl, err := db.LoadCSVFile(strings.TrimSpace(f), "")
			if err != nil {
				return nil, err
			}
			if err := d.AddTable(tbl); err != nil {
				return nil, err
			}
		}
		return d, nil
	}
}

// registerDemo registers every corpus case under its name, with the NFL
// running example (case 0) registered as "nfl" — one name per dataset, so
// no catalog is ever built twice for the same data. The corpus is built
// once here; the per-case OpenFuncs just hand out the prebuilt databases.
func registerDemo(svc *core.Service) (int, error) {
	c, err := corpus.Load()
	if err != nil {
		return 0, err
	}
	n := 0
	for i, tc := range c.Cases {
		name := tc.Name
		if i == 0 {
			name = "nfl"
		}
		d := tc.DB
		if err := svc.Register(name, func(context.Context) (*db.Database, error) { return d, nil }); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}
