// Command aggcheckd is the verification daemon: it hosts many named
// databases behind an HTTP API so documents can be checked (and watched
// converging, via streaming) without linking the library.
//
// Usage:
//
//	aggcheckd -demo -addr :8080
//	aggcheckd -db sales=sales.csv,stores.csv -db hr=people.csv
//
// Endpoints:
//
//	GET  /healthz
//	GET  /v1/databases
//	POST /v1/databases/{name}/check         body = document, returns JSON report
//	POST /v1/databases/{name}/check/stream  returns NDJSON of EM-iteration events
//
// Query parameters on the check endpoints: mode=cached|merged|naive,
// topk=N, workers=N, scan_workers=N, zone_maps=BOOL, timeout=DURATION.
// Scans execute on one shared morsel scheduler spanning every request
// (-scan-workers sizes it); scan_workers bounds how much of that pool a
// single request's scans may occupy. -demo registers the embedded
// reproduction corpus (the paper's NFL running example as "nfl" plus the
// generated articles), which doubles as the CI smoke target.
//
// -db databases are registered as refreshable CSV sources: POST
// /v1/databases/{name}/refresh appends rows that grew onto the backing
// files as fresh storage blocks (the engine delta-scans them into cached
// cubes), and -watch POLLINTERVAL polls the files' mtimes and triggers the
// same refresh automatically when they change.
//
// -data-dir DIR backs every hosted database with a persistent columnar
// block store under DIR/<name>: bootstrap loads, refreshes, and
// compactions are recorded durably (data fsynced before the manifest
// publishes it), and a restarted daemon restores the last published
// version straight from the store — bit-for-bit identical reports — with
// no source re-parse. -compact-after N reseals a database's blocks in the
// background once N accumulate, re-chunking zone maps adaptively.
//
// -shards K partitions every hosted database's fact tables into K shards
// (hash-placed by -shard-keys, round-robin otherwise) and answers candidate
// queries by scatter-gather over in-process shard workers; refreshes route
// appended rows into the partitions automatically. The daemon also serves
// the shard worker protocol (POST /v1/shard/databases/{name}/cube and
// /scan), so a coordinator on another machine can use this instance's
// databases as remote shards via consistent-hash placement.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"aggchecker/internal/core"
	"aggchecker/internal/corpus"
	"aggchecker/internal/db"
	"aggchecker/internal/httpapi"
	"aggchecker/internal/sqlexec"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
	demo := flag.Bool("demo", false, "register the embedded reproduction corpus databases")
	mode := flag.String("mode", "cached", "default evaluation mode: cached, merged, or naive")
	workers := flag.Int("workers", 0, "default engine worker bound per request (0 = GOMAXPROCS)")
	scanWorkers := flag.Int("scan-workers", 0, "size of the shared scan scheduler pool spanning all requests (0 = GOMAXPROCS)")
	reqTimeout := flag.Duration("timeout", 2*time.Minute, "per-request verification timeout (0 = none)")
	maxConcurrent := flag.Int("max-concurrent", 16, "max simultaneous verification requests (0 = unlimited)")
	maxResident := flag.Int("max-resident", 8, "max resident database catalogs, LRU-evicted (0 = unlimited)")
	shutdownGrace := flag.Duration("shutdown-grace", 10*time.Second, "graceful shutdown window after SIGINT/SIGTERM")
	watch := flag.Duration("watch", 0, "poll interval for -db CSV files; on mtime/size change the database is refreshed (0 = off)")
	shards := flag.Int("shards", 0, "partition each database's fact tables into K shards and evaluate by scatter-gather (0/1 = unsharded)")
	shardKeys := flag.String("shard-keys", "", "hash-placement columns for sharding: table=column[,table2=column2...] (unlisted tables are round-robin)")
	dataDir := flag.String("data-dir", "", "back each hosted database with a persistent columnar block store under DIR/<name>; on restart the last durably published version is restored without re-parsing sources")
	compactAfter := flag.Int("compact-after", 0, "reseal a persistent database's blocks in the background once it accumulates this many (0 = never compact)")
	var dbFlags multiFlag
	flag.Var(&dbFlags, "db", "register a database: name=file.csv[,file2.csv...] (repeatable)")
	flag.Parse()

	logger := log.New(os.Stderr, "aggcheckd: ", log.LstdFlags)

	evalMode, err := core.ParseEvalMode(*mode)
	if err != nil {
		logger.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Mode = evalMode
	cfg.Workers = *workers
	cfg.DataDir = *dataDir
	cfg.CompactAfter = *compactAfter

	// One morsel scheduler for the whole process: every database's cube
	// passes and direct scans share this pool, so concurrent requests
	// contend fairly instead of oversubscribing private pools.
	sched := sqlexec.NewScheduler(*scanWorkers)
	defer sched.Close()

	keys, err := parseShardKeys(*shardKeys)
	if err != nil {
		logger.Fatal(err)
	}
	svc := core.NewService(
		core.WithDefaultConfig(cfg),
		core.WithMaxResident(*maxResident),
		core.WithScheduler(sched),
		core.WithShards(*shards),
		core.WithShardKeys(keys),
	)
	registered := 0
	watched := make(map[string][]string) // database name -> backing files
	for _, spec := range dbFlags {
		name, files, ok := strings.Cut(spec, "=")
		if !ok || name == "" || files == "" {
			logger.Fatalf("bad -db %q (want name=file.csv[,file2.csv...])", spec)
		}
		list := strings.Split(files, ",")
		for i := range list {
			list[i] = strings.TrimSpace(list[i])
		}
		if err := svc.RegisterSource(name, db.NewCSVSource(name, list...)); err != nil {
			logger.Fatal(err)
		}
		watched[name] = list
		registered++
	}
	if *demo {
		n, err := registerDemo(svc)
		if err != nil {
			logger.Fatal(err)
		}
		registered += n
	}
	if registered == 0 {
		logger.Fatal("no databases registered (use -db or -demo)")
	}

	handler := httpapi.New(svc, httpapi.Options{
		RequestTimeout: *reqTimeout,
		MaxConcurrent:  *maxConcurrent,
		Log:            logger,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatal(err)
	}
	server := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	// The listening line goes to stdout so scripts (make serve-smoke) can
	// discover the bound port when -addr ends in :0.
	fmt.Printf("aggcheckd: listening on %s (%d databases)\n", ln.Addr(), registered)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *watch > 0 && len(watched) > 0 {
		go watchSources(ctx, svc, logger, *watch, watched)
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(ln) }()

	select {
	case err := <-serveErr:
		logger.Fatalf("serve: %v", err)
	case <-ctx.Done():
	}
	stop()
	logger.Printf("shutting down (grace %s)", *shutdownGrace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	if err := server.Shutdown(shutdownCtx); err != nil {
		logger.Printf("forced shutdown: %v", err)
		_ = server.Close()
		os.Exit(1)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Fatalf("serve: %v", err)
	}
	logger.Printf("bye")
}

// parseShardKeys parses "table=column[,table2=column2...]" into the
// shard-key mapping; empty input means round-robin everywhere.
func parseShardKeys(spec string) (map[string]string, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	keys := make(map[string]string)
	for _, pair := range strings.Split(spec, ",") {
		table, col, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || table == "" || col == "" {
			return nil, fmt.Errorf("bad -shard-keys entry %q (want table=column)", pair)
		}
		keys[table] = col
	}
	return keys, nil
}

// multiFlag collects repeated -db flags.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, " ") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// watchSources polls the registered CSV files and triggers Service.Refresh
// for a database whenever any of its files changes mtime or size. Refresh
// is cheap when nothing is resident, and for resident databases it appends
// the new rows as fresh blocks the engine delta-scans on the next check.
func watchSources(ctx context.Context, svc *core.Service, logger *log.Logger, every time.Duration, watched map[string][]string) {
	type stamp struct {
		mtime time.Time
		size  int64
	}
	last := make(map[string]stamp)
	observe := func(file string) (stamp, bool) {
		fi, err := os.Stat(file)
		if err != nil {
			return stamp{}, false
		}
		return stamp{mtime: fi.ModTime(), size: fi.Size()}, true
	}
	for _, files := range watched {
		for _, f := range files {
			if st, ok := observe(f); ok {
				last[f] = st
			}
		}
	}
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		for name, files := range watched {
			changed := false
			for _, f := range files {
				st, ok := observe(f)
				if !ok {
					continue
				}
				if prev, seen := last[f]; !seen || prev != st {
					last[f] = st
					changed = true
				}
			}
			if !changed {
				continue
			}
			st, err := svc.Refresh(ctx, name)
			switch {
			case err != nil:
				logger.Printf("watch: refresh %s: %v", name, err)
			case st.Appended > 0:
				logger.Printf("watch: refreshed %s: +%d rows, version %d", name, st.Appended, st.Version)
			default:
				logger.Printf("watch: %s changed (not resident or nothing appended)", name)
			}
		}
	}
}

// registerDemo registers every corpus case under its name, with the NFL
// running example (case 0) registered as "nfl" — one name per dataset, so
// no catalog is ever built twice for the same data. The corpus is built
// once here; the per-case OpenFuncs just hand out the prebuilt databases.
func registerDemo(svc *core.Service) (int, error) {
	c, err := corpus.Load()
	if err != nil {
		return 0, err
	}
	n := 0
	for i, tc := range c.Cases {
		name := tc.Name
		if i == 0 {
			name = "nfl"
		}
		d := tc.DB
		if err := svc.Register(name, func(context.Context) (*db.Database, error) { return d, nil }); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}
