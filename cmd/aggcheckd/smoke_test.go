package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"aggchecker/internal/corpus"
)

// TestAggcheckdSmoke is the deployable-path smoke test (make serve-smoke):
// build the real binary, start it on a random port, POST the embedded NFL
// demo document, assert a non-empty JSON report and a streamed NDJSON run,
// then SIGTERM and require a clean exit.
func TestAggcheckdSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping exec smoke test in -short mode")
	}
	if raceEnabled {
		t.Skip("skipping under -race: make serve-smoke owns the end-to-end daemon run")
	}
	bin := filepath.Join(t.TempDir(), "aggcheckd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("go build: %v", err)
	}

	cmd := exec.Command(bin, "-demo", "-addr", "127.0.0.1:0", "-timeout", "60s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
		}
	}()

	// The daemon prints "aggcheckd: listening on <addr> (...)" once ready.
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if strings.Contains(line, "listening on ") {
				fields := strings.Fields(line)
				for i, f := range fields {
					if f == "on" && i+1 < len(fields) {
						addrCh <- fields[i+1]
						return
					}
				}
			}
		}
		close(addrCh)
	}()
	var base string
	select {
	case addr, ok := <-addrCh:
		if !ok {
			t.Fatalf("daemon exited before listening; stderr:\n%s", stderr.String())
		}
		base = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatalf("timeout waiting for listen line; stderr:\n%s", stderr.String())
	}

	doc := corpus.MustLoad().Cases[0].HTML

	// Blocking check: non-empty JSON report.
	resp, err := http.Post(base+"/v1/databases/nfl/check", "text/html", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Claims []struct {
			Queries []json.RawMessage `json:"queries"`
		} `json:"claims"`
		EvaluatedQueries int `json:"evaluated_queries"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("check status = %d", resp.StatusCode)
	}
	if len(rep.Claims) == 0 || rep.EvaluatedQueries == 0 {
		t.Fatalf("empty report: %+v", rep)
	}
	for i, c := range rep.Claims {
		if len(c.Queries) == 0 {
			t.Fatalf("claim %d has no ranked queries", i)
		}
	}

	// Streaming check: NDJSON with iteration events and a final done.
	resp, err = http.Post(base+"/v1/databases/nfl/check/stream", "text/html", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var kinds []string
	for sc.Scan() {
		var ev struct {
			Event string `json:"event"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON: %v", err)
		}
		kinds = append(kinds, ev.Event)
	}
	resp.Body.Close()
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, k := range kinds {
		counts[k]++
	}
	if counts["iteration"] == 0 || counts["claim_update"] == 0 {
		t.Fatalf("stream event counts = %v", counts)
	}
	if len(kinds) == 0 || kinds[len(kinds)-1] != "done" {
		t.Fatalf("stream did not end with done: %v", kinds)
	}

	// Graceful shutdown on SIGTERM.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("daemon exit: %v; stderr:\n%s", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not exit after SIGTERM; stderr:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "shutting down") {
		t.Errorf("expected graceful shutdown log, got:\n%s", stderr.String())
	}
}
