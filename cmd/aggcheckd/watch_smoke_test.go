package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startDaemon builds the real binary, starts it with args, and returns the
// base URL once the listening line is printed.
func startDaemon(t *testing.T, args ...string) (*exec.Cmd, string, *bytes.Buffer) {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "aggcheckd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("go build: %v", err)
	}
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
		}
	})
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if strings.Contains(line, "listening on ") {
				fields := strings.Fields(line)
				for i, f := range fields {
					if f == "on" && i+1 < len(fields) {
						addrCh <- fields[i+1]
						return
					}
				}
			}
		}
		close(addrCh)
	}()
	select {
	case addr, ok := <-addrCh:
		if !ok {
			t.Fatalf("daemon exited before listening; stderr:\n%s", stderr.String())
		}
		return cmd, "http://" + addr, &stderr
	case <-time.After(30 * time.Second):
		t.Fatalf("timeout waiting for listen line; stderr:\n%s", stderr.String())
		return nil, "", nil
	}
}

// TestAggcheckdWatchSmoke exercises the live-corpus path end to end: a CSV
// database registered with -watch, one check to make it resident, a file
// append, and the watcher refreshing the snapshot version behind the
// running daemon — observed through the status endpoint.
func TestAggcheckdWatchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping exec smoke test in -short mode")
	}
	if raceEnabled {
		t.Skip("skipping under -race: make serve-smoke owns the end-to-end daemon run")
	}
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "fines.csv")
	if err := os.WriteFile(csvPath, []byte("player,amount\nAlice,100\nBob,200\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd, base, stderr := startDaemon(t,
		"-db", "fines="+csvPath, "-watch", "150ms", "-addr", "127.0.0.1:0", "-timeout", "60s")

	status := func() (int, map[string]any) {
		resp, err := http.Get(base + "/v1/databases/fines/status")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, st
	}

	// A check makes the database resident (watch refreshes only touch
	// loaded catalogs; unloaded ones reload fresh anyway).
	resp, err := http.Post(base+"/v1/databases/fines/check", "text/plain",
		strings.NewReader("There are 2 players."))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("check status = %d; stderr:\n%s", resp.StatusCode, stderr.String())
	}
	if code, st := status(); code != http.StatusOK || st["resident"] != true || st["version"].(float64) != 1 {
		t.Fatalf("resident status = %d %v", code, st)
	}

	// Grow the file; the watcher must refresh to version 2 with 3 rows.
	f, err := os.OpenFile(csvPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("Zed,300\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	deadline := time.Now().Add(15 * time.Second)
	for {
		_, st := status()
		if v, _ := st["version"].(float64); v >= 2 {
			rows := st["rows"].(map[string]any)
			if rows["fines"].(float64) != 3 {
				t.Fatalf("refreshed rows = %v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("watcher never refreshed; last status %v; stderr:\n%s", st, stderr.String())
		}
		time.Sleep(100 * time.Millisecond)
	}

	// Clean shutdown.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("daemon exit: %v; stderr:\n%s", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not exit after SIGTERM; stderr:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "watch: refreshed fines") {
		t.Errorf("expected watch refresh log, got:\n%s", stderr.String())
	}
}
