package main

import (
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const crashCSVBase = "player,amount\n" +
	"Alice,100\nBob,200\nCara,300\nDrew,400\nEvan,500\nFay,600\nGus,700\nHope,800\n"

const crashDoc = "There are 8 players. The average fine is 450 dollars."

// claimsFingerprint POSTs a check and returns the raw JSON of the report's
// claims array — every deterministic field (verdicts, posteriors, ranked
// SQL, evaluated results) and none of the volatile ones (timings, engine
// counters). encoding/json is deterministic, so equal claims encode to
// identical bytes.
func claimsFingerprint(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/databases/fines/check", "text/plain", strings.NewReader(crashDoc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("check status = %d", resp.StatusCode)
	}
	var rep struct {
		Claims json.RawMessage `json:"claims"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Claims) == 0 {
		t.Fatal("report has no claims")
	}
	return string(rep.Claims)
}

func getStatusMap(t *testing.T, base string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + "/v1/databases/fines/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// TestAggcheckdCrashRecovery kills a -watch daemon with SIGKILL right
// after staging a refresh — sometimes before, sometimes during, sometimes
// after the commit that publishes it — then restarts over the same data
// directory with the source CSV replaced by garbage. The restarted daemon
// must reopen at the last durably published version (2 or 3, never a torn
// in-between state), serve straight from the store without touching the
// unparseable source, and report claims bit-for-bit identical to a clean
// daemon over equivalent data.
func TestAggcheckdCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping exec crash test in -short mode")
	}
	if raceEnabled {
		t.Skip("skipping under -race: exec-based daemon runs are covered unraced")
	}
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "fines.csv")
	if err := os.WriteFile(csvPath, []byte(crashCSVBase), 0o644); err != nil {
		t.Fatal(err)
	}
	dataDir := filepath.Join(dir, "blocks")

	cmd1, base, stderr1 := startDaemon(t,
		"-db", "fines="+csvPath, "-watch", "100ms", "-data-dir", dataDir,
		"-addr", "127.0.0.1:0", "-timeout", "60s")

	// Make it resident at version 1 (8 rows, durably recorded).
	if fp := claimsFingerprint(t, base); fp == "" {
		t.Fatal("empty fingerprint")
	}

	// Row 9 → watcher refresh → version 2; wait until it is published.
	appendRow := func(row string) {
		f, err := os.OpenFile(csvPath, os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString(row); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	appendRow("Iris,900\n")
	deadline := time.Now().Add(15 * time.Second)
	for {
		st := getStatusMap(t, base)
		if v, _ := st["version"].(float64); v >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("watcher never published version 2; stderr:\n%s", stderr1.String())
		}
		time.Sleep(50 * time.Millisecond)
	}
	fp2 := claimsFingerprint(t, base)

	// Row 10, then SIGKILL immediately: the kill races the watcher's
	// commit, landing before, during, or after the version-3 publish.
	appendRow("Jude,1000\n")
	if err := cmd1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = cmd1.Process.Wait()

	// The source "dies" too: garbage where the CSV was. A restart that
	// tried to re-parse it would fail its first check.
	if err := os.WriteFile(csvPath, []byte("\x00\xff this is not a csv \x00"), 0o644); err != nil {
		t.Fatal(err)
	}

	_, base2, stderr2 := startDaemon(t,
		"-db", "fines="+csvPath, "-data-dir", dataDir,
		"-addr", "127.0.0.1:0", "-timeout", "60s")
	got := claimsFingerprint(t, base2)
	st := getStatusMap(t, base2)
	v, _ := st["version"].(float64)
	if v != 2 && v != 3 {
		t.Fatalf("restored version = %v, want 2 or 3 (last durable publish); stderr:\n%s", v, stderr2.String())
	}
	rows := st["rows"].(map[string]any)["fines"].(float64)
	if int(rows) != 7+int(v) {
		t.Fatalf("restored rows = %v at version %v, want %d", rows, v, 7+int(v))
	}
	if st["store"] == nil {
		t.Fatalf("restored status has no store section: %v", st)
	}

	// Reference fingerprint for the restored version: version 2 was
	// fingerprinted live; version 3 compares against a clean store-less
	// daemon over the equivalent 10-row CSV.
	want := fp2
	if v == 3 {
		refCSV := filepath.Join(dir, "ref.csv")
		if err := os.WriteFile(refCSV, []byte(crashCSVBase+"Iris,900\nJude,1000\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		_, base3, _ := startDaemon(t,
			"-db", "fines="+refCSV, "-addr", "127.0.0.1:0", "-timeout", "60s")
		want = claimsFingerprint(t, base3)
	}
	if got != want {
		t.Errorf("restored claims diverge from reference at version %v:\n got %s\nwant %s", v, got, want)
	}
}
