//go:build !race

package main

// raceEnabled mirrors the race build tag; the exec smoke test skips under
// the race detector so `make race` and `make serve-smoke` don't both pay
// the end-to-end daemon cost (serve-smoke is the single owner).
const raceEnabled = false
