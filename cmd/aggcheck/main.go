// Command aggcheck verifies a text document against a relational data set,
// printing spell-checker-style markup for claims that disagree with the
// data.
//
// Usage:
//
//	aggcheck -data sales.csv[,stores.csv...] [-dict dictionary.txt] article.html
//	aggcheck -data sales.csv -audit articles/
//	aggcheck -demo
//
// Each CSV becomes one table (named after the file). The optional data
// dictionary maps column names to descriptions ("column: description" lines)
// and improves keyword matching. -demo runs the embedded NFL example from
// the paper. -audit checks every document in a directory as one corpus:
// documents are verified concurrently with cross-document shared-pass
// planning, so N documents about the same tables pay roughly one
// document's worth of scans.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"aggchecker"
	"aggchecker/internal/corpus"
	"aggchecker/internal/sqlexec"
	"aggchecker/internal/sqlparse"
)

func main() {
	data := flag.String("data", "", "comma-separated CSV files forming the database")
	dict := flag.String("dict", "", "optional data dictionary file")
	color := flag.Bool("color", true, "ANSI color output")
	top := flag.Int("top", 3, "query translations to print per claim")
	demo := flag.Bool("demo", false, "run the embedded NFL example")
	markup := flag.Bool("markup", false, "print the article with inline verdict markup")
	mode := flag.String("mode", "cached", "evaluation strategy: cached, merged, or naive (Table 6 rows)")
	scanWorkers := flag.Int("scan-workers", 0, "scan scheduler worker pool size (0 = GOMAXPROCS, 1 = single-threaded scans)")
	shards := flag.Int("shards", 0, "partition fact tables into K shards and evaluate by scatter-gather (0/1 = unsharded)")
	shardKeys := flag.String("shard-keys", "", "hash-placement columns for sharding: table=column[,table2=column2...]")
	timeout := flag.Duration("timeout", 0, "abort the check after this long (0 = no limit)")
	query := flag.String("query", "", "evaluate one Simple Aggregate Query instead of checking a document")
	claimed := flag.Float64("claimed", 0, "with -query: the claimed value to verify (Definition 1 rounding)")
	audit := flag.String("audit", "", "audit a directory of documents as one corpus (with -data or -demo)")
	auditConc := flag.Int("audit-concurrency", 0, "documents checked concurrently in -audit mode (0 = default)")
	flag.Parse()

	evalMode, err := aggchecker.ParseEvalMode(*mode)
	if err != nil {
		fatal(err)
	}

	// Ctrl-C / SIGTERM cancels the in-flight check mid-EM instead of
	// leaving the process to be killed mid-scan.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The CLI is one-shot, so the process owns a single scheduler for its
	// lifetime; every engine the check builds shares it.
	sched := aggchecker.NewScheduler(*scanWorkers)
	defer sched.Close()
	cfg := aggchecker.DefaultConfig()
	cfg.Exec = append(cfg.Exec, aggchecker.ExecScheduler(sched))
	cfg.Shards = *shards
	if strings.TrimSpace(*shardKeys) != "" {
		cfg.ShardKeys = map[string]string{}
		for _, pair := range strings.Split(*shardKeys, ",") {
			table, col, ok := strings.Cut(strings.TrimSpace(pair), "=")
			if !ok || table == "" || col == "" {
				fatal(fmt.Errorf("bad -shard-keys entry %q (want table=column)", pair))
			}
			cfg.ShardKeys[table] = col
		}
	}

	var checkOpts []aggchecker.CheckOption
	checkOpts = append(checkOpts, aggchecker.WithMode(evalMode))
	if *timeout > 0 {
		checkOpts = append(checkOpts, aggchecker.WithDeadline(*timeout))
	}

	if *demo {
		if *audit != "" {
			tc := corpus.MustLoad().Cases[0]
			runAudit(ctx, aggchecker.New(tc.DB, cfg), *audit, *auditConc, *top, *timeout, checkOpts)
			return
		}
		runDemo(ctx, cfg, *color, *top, *markup, *timeout, checkOpts)
		return
	}
	if *data == "" || (*query == "" && *audit == "" && flag.NArg() != 1) {
		fmt.Fprintln(os.Stderr, "usage: aggcheck -data file.csv[,file2.csv...] [-dict dict.txt] article.html")
		fmt.Fprintln(os.Stderr, "       aggcheck -data file.csv -audit articles/")
		fmt.Fprintln(os.Stderr, "       aggcheck -data file.csv -query \"SELECT Count(*) FROM t WHERE c = 'v'\" [-claimed 42]")
		os.Exit(2)
	}

	db := aggchecker.NewDatabase("userdb")
	for _, path := range strings.Split(*data, ",") {
		tbl, err := aggchecker.LoadCSVFile(strings.TrimSpace(path), "")
		if err != nil {
			fatal(err)
		}
		if err := db.AddTable(tbl); err != nil {
			fatal(err)
		}
	}
	if *query != "" {
		runQuery(db, sched, *query, *claimed, isFlagSet("claimed"))
		return
	}
	if *dict != "" {
		f, err := os.Open(*dict)
		if err != nil {
			fatal(err)
		}
		parsed, err := parseDict(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		db.ApplyDataDictionary(parsed)
	}
	if *audit != "" {
		runAudit(ctx, aggchecker.New(db, cfg), *audit, *auditConc, *top, *timeout, checkOpts)
		return
	}

	raw, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	checker := aggchecker.New(db, cfg)
	var doc *aggchecker.Document
	if strings.Contains(string(raw), "<") {
		doc = aggchecker.ParseHTML(string(raw))
	} else {
		doc = aggchecker.ParseText(string(raw))
	}
	report, err := checker.Check(ctx, doc, checkOpts...)
	if err != nil {
		fatalCheck(err, *timeout)
	}
	printReport(report, *color, *top, *markup)
}

// fatalCheck explains cancellation errors in CLI terms.
func fatalCheck(err error, timeout time.Duration) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		fatal(fmt.Errorf("check aborted: -timeout %s exceeded", timeout))
	case errors.Is(err, context.Canceled):
		fatal(errors.New("check aborted: interrupted"))
	default:
		fatal(err)
	}
}

// runQuery is the manual verification path (the "SQL + User" condition of
// the paper's study): parse, evaluate, and optionally compare against a
// claimed value under Definition 1 rounding.
func runQuery(database *aggchecker.Database, sched *aggchecker.Scheduler, input string, claimed float64, haveClaim bool) {
	q, err := sqlparse.Parse(input, database)
	if err != nil {
		fatal(err)
	}
	v, err := sqlexec.NewEngine(database, sqlexec.WithScheduler(sched)).Evaluate(q)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s = %.6g\n", q.SQL(database.Tables()[0].Name), v)
	if haveClaim {
		if aggchecker.MatchesClaim(v, claimed) {
			fmt.Printf("claimed %.6g: CORRECT (some rounding of %.6g yields it)\n", claimed, v)
		} else {
			fmt.Printf("claimed %.6g: WRONG (no admissible rounding of %.6g yields it)\n", claimed, v)
		}
	}
}

func isFlagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func runDemo(ctx context.Context, cfg aggchecker.Config, color bool, top int, markup bool, timeout time.Duration, opts []aggchecker.CheckOption) {
	tc := corpus.MustLoad().Cases[0]
	checker := aggchecker.New(tc.DB, cfg)
	report, err := checker.Check(ctx, aggchecker.ParseHTML(tc.HTML), opts...)
	if err != nil {
		fatalCheck(err, timeout)
	}
	printReport(report, color, top, markup)
}

func printReport(report *aggchecker.Report, color bool, top int, markup bool) {
	fmt.Print(report.RenderText(aggchecker.RenderOptions{Color: color, TopQueries: top}))
	if markup {
		fmt.Println("\n--- marked-up article ---")
		fmt.Print(report.Markup())
	}
}

func parseDict(f *os.File) (map[string]string, error) {
	out := map[string]string{}
	var sb strings.Builder
	buf := make([]byte, 1<<16)
	for {
		n, err := f.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	for i, line := range strings.Split(sb.String(), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, desc, ok := strings.Cut(line, ":")
		if !ok {
			return nil, fmt.Errorf("dictionary line %d: missing ':'", i+1)
		}
		out[strings.TrimSpace(name)] = strings.TrimSpace(desc)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "aggcheck:", err)
	os.Exit(1)
}
