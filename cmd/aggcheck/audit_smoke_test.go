package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"aggchecker/internal/corpus"
)

// TestAggcheckAuditSmoke is the corpus-audit smoke test (make audit-smoke):
// build the real binary, write a directory of demo documents, audit it, and
// require per-document progress, a summary, and a NON-ZERO shared-pass
// count — the proof that concurrent documents actually merged cube passes.
func TestAggcheckAuditSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping exec smoke test in -short mode")
	}
	if raceEnabled {
		t.Skip("skipping under -race: make audit-smoke owns the end-to-end binary run")
	}
	bin := filepath.Join(t.TempDir(), "aggcheck")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("go build: %v", err)
	}

	dir := t.TempDir()
	html := corpus.MustLoad().Cases[0].HTML
	names := []string{"one.html", "two.html", "three.html", "four.html"}
	for _, name := range names {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(html), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	out, err := exec.Command(bin, "-demo", "-color=false", "-audit", dir).CombinedOutput()
	if err != nil {
		t.Fatalf("aggcheck -audit: %v\n%s", err, out)
	}
	text := string(out)

	for _, name := range names {
		if !strings.Contains(text, name) {
			t.Errorf("no progress line for %s:\n%s", name, text)
		}
	}
	if !strings.Contains(text, "summary:") {
		t.Fatalf("no summary section:\n%s", text)
	}
	m := regexp.MustCompile(`shared passes:\s+(\d+)`).FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("no shared-pass count in summary:\n%s", text)
	}
	if n, _ := strconv.Atoi(m[1]); n == 0 {
		t.Errorf("shared passes = 0 across %d identical documents:\n%s", len(names), text)
	}
	if !strings.Contains(text, "cube cache:") {
		t.Errorf("no cache economics in summary:\n%s", text)
	}
	if !regexp.MustCompile(`documents:\s+4 checked, 0 failed`).MatchString(text) {
		t.Errorf("unexpected document totals:\n%s", text)
	}
}
