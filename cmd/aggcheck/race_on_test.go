//go:build race

package main

// See race_off_test.go.
const raceEnabled = true
