package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"aggchecker"
)

// auditExts are the document types -audit picks up from the corpus
// directory, matching what the single-document path accepts.
var auditExts = map[string]bool{".html": true, ".htm": true, ".txt": true, ".md": true}

// loadCorpusDir reads every recognized document under dir (sorted by name)
// as one audit corpus.
func loadCorpusDir(dir string) ([]aggchecker.AuditDoc, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var docs []aggchecker.AuditDoc
	for _, e := range entries {
		if e.IsDir() || !auditExts[strings.ToLower(filepath.Ext(e.Name()))] {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		text := string(raw)
		if strings.TrimSpace(text) == "" {
			continue
		}
		var doc *aggchecker.Document
		if strings.Contains(text, "<") {
			doc = aggchecker.ParseHTML(text)
		} else {
			doc = aggchecker.ParseText(text)
		}
		docs = append(docs, aggchecker.AuditDoc{Name: e.Name(), Doc: doc})
	}
	sort.Slice(docs, func(i, j int) bool { return docs[i].Name < docs[j].Name })
	if len(docs) == 0 {
		return nil, fmt.Errorf("no documents (*.html, *.htm, *.txt, *.md) in %s", dir)
	}
	return docs, nil
}

// runAudit checks a directory of documents as one corpus: documents are
// verified concurrently with cross-document shared-pass planning, progress
// streams in completion order, and the summary reports corpus totals plus
// the run's shared-pass and cube-cache economics.
func runAudit(ctx context.Context, checker *aggchecker.Checker, dir string, concurrency, top int, timeout time.Duration, checkOpts []aggchecker.CheckOption) {
	docs, err := loadCorpusDir(dir)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("auditing %d documents from %s\n\n", len(docs), dir)

	width := 0
	for _, d := range docs {
		if len(d.Name) > width {
			width = len(d.Name)
		}
	}

	auditOpts := []aggchecker.AuditOption{
		aggchecker.WithAuditCheckOptions(checkOpts...),
		aggchecker.WithAuditProgress(func(_ int, dr aggchecker.DocReport) {
			if dr.Err != nil {
				fmt.Printf("  %-*s  ERROR: %v\n", width, dr.Name, dr.Err)
				return
			}
			errs := len(dr.Report.ErroneousClaims())
			verdict := "ok"
			if errs > 0 {
				verdict = fmt.Sprintf("%d erroneous", errs)
			}
			fmt.Printf("  %-*s  %3d claims  %-12s %7.1f ms\n",
				width, dr.Name, len(dr.Report.Claims()), verdict,
				float64(dr.Report.TotalTime.Microseconds())/1e3)
		}),
	}
	if concurrency > 0 {
		auditOpts = append(auditOpts, aggchecker.WithAuditConcurrency(concurrency))
	}

	rep, err := checker.Audit(ctx, docs, auditOpts...)
	if err != nil {
		fatalCheck(err, timeout)
	}

	defTable := checker.Engine.DefaultTable()
	printed := false
	for _, dr := range rep.Docs {
		if dr.Report == nil {
			continue
		}
		errs := dr.Report.ErroneousClaims()
		if len(errs) == 0 {
			continue
		}
		if !printed {
			fmt.Printf("\nerroneous claims:\n")
			printed = true
		}
		for _, cr := range errs {
			fmt.Printf("  %s: %q (claimed %.6g, p=%.2f)\n", dr.Name, cr.Claim.Text(), cr.Claim.Claimed.Value, cr.PCorrect)
			for i, rq := range cr.Ranked {
				if i >= top {
					break
				}
				fmt.Printf("      %.2f  %s = %.6g\n", rq.Prob, rq.Query.SQL(defTable), rq.Result)
			}
		}
	}

	secs := rep.TotalTime.Seconds()
	fmt.Printf("\nsummary:\n")
	fmt.Printf("  documents:     %d checked, %d failed\n", rep.Checked, rep.Failed)
	fmt.Printf("  claims:        %d total, %d erroneous\n", rep.Claims, rep.Erroneous)
	if secs > 0 {
		fmt.Printf("  time:          %.2fs (%.1f docs/s)\n", secs, float64(rep.Checked)/secs)
	}
	fmt.Printf("  shared passes: %d (window flushes: %d over %d batches)\n",
		rep.SharedPasses(), rep.Stats["window_flushes"], rep.Stats["window_batches"])
	if c := rep.Cache; c != nil {
		fmt.Printf("  cube cache:    %.1f%% hit rate, %d entries, %s resident",
			rep.CacheHitRate()*100, c.Entries, fmtBytes(c.Bytes))
		if c.Budget > 0 {
			fmt.Printf(" (budget %s)", fmtBytes(c.Budget))
		}
		fmt.Printf("\n                 saved %s build time, %s rebuilt allocations",
			time.Duration(c.NsSaved).Round(time.Millisecond), fmtBytes(c.BytesSaved))
		if c.Evictions > 0 {
			fmt.Printf("; evicted %d entries (%s)", c.Evictions, fmtBytes(c.EvictedBytes))
		}
		fmt.Println()
	}
	if rep.Failed > 0 {
		os.Exit(1)
	}
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
