//go:build !race

package main

// raceEnabled mirrors the race build tag; the exec smoke test skips under
// the race detector so `make race` and `make audit-smoke` don't both pay
// the end-to-end binary cost (audit-smoke is the single owner).
const raceEnabled = false
