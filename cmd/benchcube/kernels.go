package main

// benchcube -kernels: the micro-kernel record. Each internal/vec primitive
// is measured over one kernel block (4096 rows) in its three variants —
// plain-Go reference, hand-unrolled, and whatever the CPU dispatcher bound
// (AVX2 assembly where detected, the unrolled form otherwise) — plus two
// end-to-end numbers: a representative vectorized cube pass and a
// selection-pushdown batch against its pushdown-off baseline. The run
// hard-fails unless at least two primitives reach 1.5x dispatched-over-
// reference rows/s (skipped with a warning under -tags noasm / non-AVX2
// hardware, where "dispatched" is just the unrolled Go).

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"aggchecker/internal/benchdata"
	"aggchecker/internal/sqlexec"
	"aggchecker/internal/vec"
)

// kernelBlock is the per-op row count: one kernel block, the unit the
// sqlexec scan loop feeds these primitives.
const kernelBlock = 4096

// kernelSpeedupFloor and kernelSpeedupMinPrims gate the record: at least
// MinPrims primitives must reach Floor x rows/s over the plain-Go
// reference, or the dispatch layer is not paying for itself.
const (
	kernelSpeedupFloor    = 1.5
	kernelSpeedupMinPrims = 2
)

type kernelEntry struct {
	Primitive  string  `json:"primitive"`
	Variant    string  `json:"variant"` // "ref" | "unrolled" | "dispatched"
	NsPerOp    float64 `json:"ns_per_op"`
	NsPerRow   float64 `json:"ns_per_row"`
	RowsPerSec float64 `json:"rows_per_sec"`
}

type kernelEndToEnd struct {
	FactRows       int     `json:"fact_rows"`
	Case           string  `json:"case"`
	CubeRowsPerSec float64 `json:"cube_rows_per_sec"`
	// The pushdown batch: queries sharing one selective equality predicate
	// over a 4-column predicate union — too wide for one unfiltered cube,
	// so without pushdown they fall to per-query scans.
	BatchQueries        int     `json:"pushdown_batch_queries"`
	PushdownBatchNs     float64 `json:"pushdown_batch_ns"`
	NoPushdownBatchNs   float64 `json:"no_pushdown_batch_ns"`
	PushdownSpeedup     float64 `json:"pushdown_speedup"`
	PushdownCubes       int64   `json:"pushdown_cubes_per_batch"`
	PushdownRowsSkipped int64   `json:"pushdown_rows_skipped_per_batch"`
}

type kernelFile struct {
	Schema     string        `json:"schema"`
	GoVersion  string        `json:"go_version"`
	GoMaxProcs int           `json:"go_max_procs"`
	Impl       string        `json:"impl"` // vec.Impl(): "avx2" | "go"
	BlockRows  int           `json:"block_rows"`
	Primitives []kernelEntry `json:"primitives"`
	// SpeedupDispatchedOverRef maps primitive name to dispatched rows/s
	// divided by reference rows/s — the machine-portable ratio the bench
	// guard compares (same-impl runs only).
	SpeedupDispatchedOverRef map[string]float64 `json:"speedups_dispatched_over_ref"`
	EndToEnd                 kernelEndToEnd     `json:"end_to_end"`
}

// Sinks defeat dead-code elimination of pure-result primitives.
var (
	kernelSinkInt int
	kernelSinkF64 float64
)

// runKernels measures the primitive matrix and the end-to-end numbers and
// writes the BENCH_kernel.json record.
func runKernels(out string, rows int, against string, tol float64) {
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "benchcube -kernels: "+format+"\n", args...)
		os.Exit(1)
	}

	// One block of data shaped like the scan loop's: small-domain values so
	// equality compares hit ~1/8 of rows, dictionary codes with NULLs
	// (negative), a selection vector compacted from a real mask.
	rng := rand.New(rand.NewSource(7))
	n := kernelBlock
	fvals := make([]float64, n)
	codes := make([]int32, n)
	for i := 0; i < n; i++ {
		fvals[i] = float64(rng.Intn(8))
		codes[i] = int32(rng.Intn(9)) - 1
	}
	mask := make([]uint64, vec.MaskWords(n))
	mask2 := make([]uint64, vec.MaskWords(n))
	vec.CmpEqF64Unrolled(fvals, 3, mask)
	vec.CmpEqI32Unrolled(codes, 3, mask2)
	sel := make([]int32, n)
	selN := vec.SelFromMaskUnrolled(mask, n, sel)
	gidx := sel[:selN]
	gdst := make([]float64, n)
	ldst := make([]int32, n)
	lut := make([]int32, 8)
	offs := make([]int32, n)
	for i := range lut {
		lut[i] = int32(rng.Intn(64))
	}
	for i := range offs {
		offs[i] = int32(rng.Intn(64))
	}
	nonNull := make([]int64, 64)
	sums := make([]float64, 64)
	minv := make([]float64, 64)
	maxv := make([]float64, 64)

	type prim struct {
		name string
		rows int // rows consumed per op (selN for gather)
		fns  []struct {
			variant string
			fn      func()
		}
	}
	mk := func(name string, rows int, ref, unrolled, dispatched func()) prim {
		return prim{name: name, rows: rows, fns: []struct {
			variant string
			fn      func()
		}{{"ref", ref}, {"unrolled", unrolled}, {"dispatched", dispatched}}}
	}
	prims := []prim{
		mk("cmp_eq_f64", n,
			func() { vec.CmpEqF64Ref(fvals, 3, mask) },
			func() { vec.CmpEqF64Unrolled(fvals, 3, mask) },
			func() { vec.CmpEqF64(fvals, 3, mask) }),
		mk("cmp_eq_i32", n,
			func() { vec.CmpEqI32Ref(codes, 3, mask2) },
			func() { vec.CmpEqI32Unrolled(codes, 3, mask2) },
			func() { vec.CmpEqI32(codes, 3, mask2) }),
		mk("sel_from_mask", n,
			func() { kernelSinkInt = vec.SelFromMaskRef(mask, n, sel) },
			func() { kernelSinkInt = vec.SelFromMaskUnrolled(mask, n, sel) },
			func() { kernelSinkInt = vec.SelFromMask(mask, n, sel) }),
		mk("gather_f64", selN,
			func() { vec.GatherF64Ref(gdst[:selN], fvals, gidx) },
			func() { vec.GatherF64Unrolled(gdst[:selN], fvals, gidx) },
			func() { vec.GatherF64(gdst[:selN], fvals, gidx) }),
		mk("lookup_codes", n,
			func() { vec.LookupCodesRef(ldst, codes, lut, -1) },
			func() { vec.LookupCodesUnrolled(ldst, codes, lut, -1) },
			func() { vec.LookupCodes(ldst, codes, lut, -1) }),
		mk("and_popcount", n,
			func() { kernelSinkInt = vec.AndPopcountRef(mask, mask2) },
			func() { kernelSinkInt = vec.AndPopcountUnrolled(mask, mask2) },
			func() { kernelSinkInt = vec.AndPopcount(mask, mask2) }),
		mk("min_max_f64", n,
			func() { kernelSinkF64, _ = vec.MinMaxF64Ref(fvals) },
			func() { kernelSinkF64, _ = vec.MinMaxF64Unrolled(fvals) },
			func() { kernelSinkF64, _ = vec.MinMaxF64(fvals) }),
		mk("count_nonneg_i32", n,
			func() { kernelSinkInt = vec.CountNonNegI32Ref(codes) },
			func() { kernelSinkInt = vec.CountNonNegI32Unrolled(codes) },
			func() { kernelSinkInt = vec.CountNonNegI32(codes) }),
		mk("accumulate_f64", n,
			func() { vec.AccumulateF64Ref(offs, fvals, nonNull, sums, minv, maxv) },
			func() { vec.AccumulateF64Unrolled(offs, fvals, nonNull, sums, minv, maxv) },
			func() { vec.AccumulateF64(offs, fvals, nonNull, sums, minv, maxv) }),
	}

	file := kernelFile{
		Schema:                   "aggchecker-micro-kernel-bench/v1",
		GoVersion:                runtime.Version(),
		GoMaxProcs:               runtime.GOMAXPROCS(0),
		Impl:                     vec.Impl(),
		BlockRows:                kernelBlock,
		SpeedupDispatchedOverRef: map[string]float64{},
	}

	for _, p := range prims {
		perVariant := map[string]float64{}
		for _, v := range p.fns {
			fn := v.fn
			res := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					fn()
				}
			})
			nsPerOp := float64(res.T.Nanoseconds()) / float64(res.N)
			rps := float64(p.rows) / (nsPerOp * 1e-9)
			perVariant[v.variant] = rps
			file.Primitives = append(file.Primitives, kernelEntry{
				Primitive:  p.name,
				Variant:    v.variant,
				NsPerOp:    nsPerOp,
				NsPerRow:   nsPerOp / float64(p.rows),
				RowsPerSec: rps,
			})
			fmt.Printf("%-18s %-11s %9.1f ns/op %8.4f ns/row %14.0f rows/s\n",
				p.name, v.variant, nsPerOp, nsPerOp/float64(p.rows), rps)
		}
		sp := perVariant["dispatched"] / perVariant["ref"]
		file.SpeedupDispatchedOverRef[p.name] = sp
		fmt.Printf("%-18s dispatched/ref x%.2f (%s)\n", p.name, sp, file.Impl)
	}

	fast := 0
	for _, sp := range file.SpeedupDispatchedOverRef {
		if sp >= kernelSpeedupFloor {
			fast++
		}
	}
	if fast < kernelSpeedupMinPrims {
		if file.Impl == "go" {
			fmt.Printf("note: only %d primitives reached x%.1f over reference — pure-O dispatch (impl=go), gate skipped\n",
				fast, kernelSpeedupFloor)
		} else {
			fail("only %d primitives reached x%.1f rows/s over the plain-Go reference (need >= %d)",
				fast, kernelSpeedupFloor, kernelSpeedupMinPrims)
		}
	} else {
		fmt.Printf("gate: %d primitives >= x%.1f over reference ok\n", fast, kernelSpeedupFloor)
	}

	file.EndToEnd = runKernelEndToEnd(rows, fail)
	writeJSON(out, &file)
	if against != "" {
		guardKernels(against, &file, tol)
	}
}

// runKernelEndToEnd measures a representative vectorized cube pass and the
// selection-pushdown batch against its pushdown-off baseline, checking the
// two plans agree on every answer before timing them.
func runKernelEndToEnd(rows int, fail func(string, ...any)) kernelEndToEnd {
	ctx := context.Background()
	d := benchdata.BuildDB(rows)
	e2e := kernelEndToEnd{FactRows: rows, Case: "3dim-string-single"}

	// Representative cube pass (same case as -parallel/-shard records).
	for _, bc := range benchdata.Cases() {
		if bc.Name != e2e.Case {
			continue
		}
		e := sqlexec.NewEngine(d, sqlexec.WithCaching(false), sqlexec.WithScanWorkers(1))
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.CubeForContext(ctx, bc.Tables, bc.Dims, bc.Reqs); err != nil {
					b.Fatal(err)
				}
			}
		})
		nsPerOp := float64(res.T.Nanoseconds()) / float64(res.N)
		e2e.CubeRowsPerSec = float64(rows) / (nsPerOp * 1e-9)
		fmt.Printf("end-to-end %-18s %14.0f rows/s (vectorized cube pass)\n", bc.Name, e2e.CubeRowsPerSec)
	}

	// The pushdown batch: every query carries fact.a='p' (~1/4 of rows)
	// plus residual predicates over b, c, d1 — a 4-column union, so the
	// planner without pushdown answers each query with its own scan.
	col := func(c string) sqlexec.ColumnRef { return sqlexec.ColumnRef{Table: "fact", Column: c} }
	filter := sqlexec.Predicate{Col: col("a"), Value: "p"}
	bvals := []string{"u", "v", "w"}
	cvals := []string{"c0", "c1", "c2", "c3", "c4", "c5"}
	dvals := []string{"0", "1", "2", "3", "4", "5"}
	fns := []sqlexec.AggFunc{sqlexec.Count, sqlexec.Sum, sqlexec.Avg}
	var batch []sqlexec.Query
	for i := 0; i < 36; i++ {
		q := sqlexec.Query{
			Agg: fns[i%len(fns)],
			Preds: []sqlexec.Predicate{
				filter,
				{Col: col("b"), Value: bvals[i%len(bvals)]},
				{Col: col("c"), Value: cvals[i%len(cvals)]},
				{Col: col("d1"), Value: dvals[(i/3)%len(dvals)]},
			},
		}
		if q.Agg != sqlexec.Count {
			q.AggCol = col("x")
		}
		batch = append(batch, q)
	}
	e2e.BatchQueries = len(batch)

	newEng := func(pushdown bool) *sqlexec.Engine {
		return sqlexec.NewEngine(d,
			sqlexec.WithCaching(false), // every batch re-plans and re-scans
			sqlexec.WithScanWorkers(1),
			sqlexec.WithSelectionPushdown(pushdown))
	}
	eOn, eOff := newEng(true), newEng(false)
	opts := sqlexec.BatchOptions{Workers: 1}

	// Correctness gate before timing: both plans answer identically.
	on := eOn.EvaluateBatch(ctx, batch, opts)
	off := eOff.EvaluateBatch(ctx, batch, opts)
	for i := range batch {
		if !approxEq(on[i], off[i]) {
			fail("pushdown answer mismatch on %s: %v with, %v without", batch[i].Key(), on[i], off[i])
		}
	}
	e2e.PushdownCubes = eOn.Stats.PushdownCubes.Load()
	e2e.PushdownRowsSkipped = eOn.Stats.PushdownRowsSkipped.Load()
	if e2e.PushdownCubes == 0 {
		fail("pushdown batch planned no filtered passes")
	}
	if eOff.Stats.PushdownCubes.Load() != 0 {
		fail("baseline engine planned filtered passes")
	}

	timeBatch := func(e *sqlexec.Engine) float64 {
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e.EvaluateBatch(ctx, batch, opts)
			}
		})
		return float64(res.T.Nanoseconds()) / float64(res.N)
	}
	start := time.Now()
	e2e.PushdownBatchNs = timeBatch(eOn)
	e2e.NoPushdownBatchNs = timeBatch(eOff)
	e2e.PushdownSpeedup = e2e.NoPushdownBatchNs / e2e.PushdownBatchNs
	fmt.Printf("end-to-end pushdown batch (%d queries): %12.0f ns with, %12.0f ns without, speedup x%.2f (measured in %s)\n",
		len(batch), e2e.PushdownBatchNs, e2e.NoPushdownBatchNs, e2e.PushdownSpeedup, time.Since(start).Round(time.Millisecond))
	return e2e
}

// guardKernels is the -kernels regression gate: per primitive, the fresh
// dispatched-over-reference rows/s ratio must reach (1-tol) of the
// committed record's. The ratio is machine-portable within one dispatch
// level; when the record and this machine resolved different impls (an
// avx2 seed checked on a noasm build, or vice versa) the ratios are not
// comparable and the guard warns and skips.
func guardKernels(path string, fresh *kernelFile, tol float64) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcube: reading record %s: %v\n", path, err)
		os.Exit(1)
	}
	var old kernelFile
	if err := json.Unmarshal(data, &old); err != nil {
		fmt.Fprintf(os.Stderr, "benchcube: parsing record %s: %v\n", path, err)
		os.Exit(1)
	}
	if old.Impl != fresh.Impl {
		fmt.Printf("guard kernels: SKIPPED - seed measured impl=%s, this build resolved impl=%s; "+
			"dispatched/ref ratios do not compare across dispatch levels (regenerate with `make bench-kernel`)\n",
			old.Impl, fresh.Impl)
		return
	}
	failed := false
	for name, freshSp := range fresh.SpeedupDispatchedOverRef {
		recorded, ok := old.SpeedupDispatchedOverRef[name]
		if !ok || recorded <= 0 {
			continue // new primitive, no baseline yet
		}
		// Near-1.0 ratios (primitives where dispatch adds nothing, like the
		// strict-order accumulate) jitter both ways; only guard real wins.
		if recorded < kernelSpeedupFloor {
			continue
		}
		floor := recorded * (1 - tol)
		if freshSp < floor {
			failed = true
			fmt.Fprintf(os.Stderr, "benchcube: REGRESSION %s: dispatched/ref x%.2f < floor x%.2f (record x%.2f, tolerance %.0f%%)\n",
				name, freshSp, floor, recorded, 100*tol)
		} else {
			fmt.Printf("guard %-18s dispatched/ref x%.2f >= floor x%.2f ok\n", name, freshSp, floor)
		}
	}
	if failed {
		os.Exit(1)
	}
}
