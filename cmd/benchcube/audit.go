package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"aggchecker/internal/core"
	"aggchecker/internal/corpus"
	"aggchecker/internal/sqlexec"
)

// auditFile is the machine-readable record of the corpus-audit workload
// (make bench-audit): a generated N-document corpus over one shared
// database checked twice — once in audit mode (cross-document planning
// window + shared cost-aware cube cache) and once one-document-at-a-time
// with a cold engine per document — plus, at full scale (>= 50
// documents), a corpus-size series recording how the cross-document
// cache-hit rate grows with the corpus. The run hard-fails when any
// audit verdict differs from its isolated-check verdict, when the
// recorded hit-rate series is not monotonically increasing, or (at full
// scale) when audit throughput falls below auditSpeedupFloor times the
// isolated baseline.
type auditFile struct {
	Schema       string `json:"schema"`
	GoVersion    string `json:"go_version"`
	GoMaxProcs   int    `json:"go_max_procs"`
	Domain       string `json:"domain"`
	FactRows     int    `json:"fact_rows"`
	Docs         int    `json:"docs"`
	Claims       int    `json:"claims"`
	ClaimsPerDoc int    `json:"claims_per_doc"`
	Concurrency  int    `json:"audit_concurrency"`

	AuditDocsPerSec    float64 `json:"audit_docs_per_sec"`
	IsolatedDocsPerSec float64 `json:"isolated_docs_per_sec"`
	// Speedup is audit docs/s over isolated docs/s — a same-run ratio, so
	// it compares across machines of different absolute speed. The
	// acceptance floor at >= 50 documents is auditSpeedupFloor.
	Speedup float64 `json:"speedup_audit_over_isolated"`

	SharedPasses    int64   `json:"shared_passes"`
	WindowBatches   int64   `json:"window_batches"`
	WindowFlushes   int64   `json:"window_flushes"`
	CacheHitRate    float64 `json:"cache_hit_rate"`
	CacheNsSaved    int64   `json:"cache_ns_saved"`
	CacheBytesSaved int64   `json:"cache_bytes_saved"`

	// Series records one fresh audit per corpus-size point: the
	// cross-document cache-hit rate must increase monotonically with the
	// corpus, the structural claim of the audit design (documents about
	// the same tables converge on shared cube shapes).
	Series []auditSeriesEntry `json:"series"`
}

type auditSeriesEntry struct {
	Docs         int     `json:"docs"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	SharedPasses int64   `json:"shared_passes"`
	DocsPerSec   float64 `json:"docs_per_sec"`
}

// auditSpeedupFloor is the full-scale acceptance gate: on a >= 50-document
// corpus, audit mode must check at least this many times more docs/s than
// isolated per-document checking. Below 50 documents (smoke scale) the
// ratio is recorded but not gated — the window has too few co-travellers
// to amortize reliably.
const auditSpeedupFloor = 2.0

// auditBenchSeed pins the generated corpus so the committed record and
// every guard re-run measure the same documents.
const auditBenchSeed = 424242

const auditClaimsPerDoc = 6

// auditWindow is the benchmark's planning-window tuning: over benchmark-
// scale tables a cube pass costs hundreds of milliseconds, so the flush
// deadline is raised well above the 10ms interactive default — patient
// windows collect every in-flight document's batch before planning, which
// is where the shared passes come from.
func auditWindow(concurrency int) sqlexec.WindowConfig {
	return sqlexec.WindowConfig{FlushDelay: 100 * time.Millisecond, MaxPending: concurrency}
}

// runAuditBench measures corpus auditing against one-document-at-a-time
// checking over a deterministically generated shared-database corpus.
func runAuditBench(out string, nDocs, concurrency, rows int, against string, tol float64) {
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "benchcube -audit: "+format+"\n", args...)
		os.Exit(1)
	}
	if nDocs < 2 {
		fail("-docs %d: need at least 2 documents", nDocs)
	}
	ctx := context.Background()
	const domain = "sports"
	sc, err := corpus.GenerateSharedCorpusRows(domain, auditBenchSeed, nDocs, auditClaimsPerDoc, 1, rows)
	if err != nil {
		fail("generate corpus: %v", err)
	}
	docs := make([]core.AuditDoc, len(sc.Docs))
	claims := 0
	for i, d := range sc.Docs {
		docs[i] = core.AuditDoc{Name: d.Name, Doc: d.Doc}
		claims += len(d.Doc.Claims)
	}
	cfg := core.DefaultConfig()

	// Isolated baseline: the catalog (per-database preprocessing, §4.2) is
	// built once — both modes amortize it — but every document gets a cold
	// engine, so nothing is reused across documents: no shared passes, no
	// cross-document cache hits. This is exactly what checking each
	// document in its own process or request pays.
	iso := core.NewChecker(sc.DB, cfg)
	isoReports := make([]*core.Report, len(docs))
	isoStart := time.Now()
	for i, d := range docs {
		iso.Engine = sqlexec.NewEngine(sc.DB)
		rep, err := iso.Check(ctx, d.Doc)
		if err != nil {
			fail("isolated check %s: %v", d.Name, err)
		}
		isoReports[i] = rep
	}
	isolatedNs := time.Since(isoStart).Nanoseconds()

	// Audit mode: one fresh checker (cold cache at start), all documents
	// through the cross-document planning window.
	auditor := core.NewChecker(sc.DB, cfg)
	auditStart := time.Now()
	rep, err := auditor.Audit(ctx, docs, core.WithAuditConcurrency(concurrency),
		core.WithAuditWindow(auditWindow(concurrency)))
	if err != nil {
		fail("audit: %v", err)
	}
	auditNs := time.Since(auditStart).Nanoseconds()
	if rep.Checked != len(docs) || rep.Failed != 0 {
		fail("audit checked %d / failed %d of %d documents", rep.Checked, rep.Failed, len(docs))
	}

	// Correctness gate: every audit verdict bit-for-bit identical to its
	// isolated check — same flags, same confidences, same ranked
	// translations with the same query results.
	for i, dr := range rep.Docs {
		if dr.Err != nil {
			fail("audit %s: %v", dr.Name, dr.Err)
		}
		if err := reportsIdentical(isoReports[i], dr.Report); err != nil {
			fail("VERDICT MISMATCH %s: %v (audit mode must be bit-for-bit identical to isolated checking)", dr.Name, err)
		}
	}
	fmt.Printf("correctness: %d audit verdicts identical to isolated checks (%d claims)\n", len(docs), claims)

	file := auditFile{
		Schema:             "aggchecker-corpus-audit-bench/v1",
		GoVersion:          runtime.Version(),
		GoMaxProcs:         runtime.GOMAXPROCS(0),
		Domain:             domain,
		FactRows:           rows,
		Docs:               nDocs,
		Claims:             claims,
		ClaimsPerDoc:       auditClaimsPerDoc,
		Concurrency:        concurrency,
		AuditDocsPerSec:    float64(len(docs)) / (float64(auditNs) * 1e-9),
		IsolatedDocsPerSec: float64(len(docs)) / (float64(isolatedNs) * 1e-9),
		SharedPasses:       rep.SharedPasses(),
		WindowBatches:      rep.Stats["window_batches"],
		WindowFlushes:      rep.Stats["window_flushes"],
		CacheHitRate:       rep.CacheHitRate(),
		CacheNsSaved:       rep.Stats["cube_cache_ns_saved"],
		CacheBytesSaved:    rep.Stats["cube_cache_bytes_saved"],
	}
	file.Speedup = file.AuditDocsPerSec / file.IsolatedDocsPerSec
	fmt.Printf("audit    %6.1f docs/s   %d shared passes, %.0f%% cache hits, saved %.0fms build time\n",
		file.AuditDocsPerSec, file.SharedPasses, 100*file.CacheHitRate, float64(file.CacheNsSaved)/1e6)
	fmt.Printf("isolated %6.1f docs/s   (cold engine per document)\n", file.IsolatedDocsPerSec)
	fmt.Printf("speedup audit over isolated: x%.2f\n", file.Speedup)
	if file.SharedPasses == 0 {
		fail("no shared passes across %d concurrent documents over one database", nDocs)
	}
	if nDocs >= 50 && file.Speedup < auditSpeedupFloor {
		fail("speedup x%.2f < floor x%.1f at %d documents", file.Speedup, auditSpeedupFloor, nDocs)
	}

	// Corpus-size series, recorded at full bench scale only: a fresh
	// checker per point, so each hit rate is that corpus size's own
	// cold-start economics. Smoke-scale runs (CI) skip it — below the
	// first rung the marginal rate over a handful of documents is corpus-
	// composition noise, not a structural signal.
	if nDocs >= 50 {
		for _, n := range seriesPoints(nDocs) {
			ck := core.NewChecker(sc.DB, cfg)
			start := time.Now()
			srep, err := ck.Audit(ctx, docs[:n], core.WithAuditConcurrency(concurrency),
				core.WithAuditWindow(auditWindow(concurrency)))
			if err != nil || srep.Failed != 0 {
				fail("series audit %d docs: failed=%d err=%v", n, srep.Failed, err)
			}
			entry := auditSeriesEntry{
				Docs:         n,
				CacheHitRate: srep.CacheHitRate(),
				SharedPasses: srep.SharedPasses(),
				DocsPerSec:   float64(n) / (float64(time.Since(start).Nanoseconds()) * 1e-9),
			}
			file.Series = append(file.Series, entry)
			fmt.Printf("series docs=%-3d cache hit rate %5.1f%%   %4d shared passes %8.1f docs/s\n",
				n, 100*entry.CacheHitRate, entry.SharedPasses, entry.DocsPerSec)
		}
		for i := 1; i < len(file.Series); i++ {
			prev, cur := file.Series[i-1], file.Series[i]
			if cur.CacheHitRate < prev.CacheHitRate {
				fail("cache hit rate fell with corpus size: %.4f at %d docs, %.4f at %d docs",
					prev.CacheHitRate, prev.Docs, cur.CacheHitRate, cur.Docs)
			}
		}
		if n := len(file.Series); n > 1 && file.Series[n-1].CacheHitRate <= file.Series[0].CacheHitRate {
			fail("cache hit rate did not increase across the series: %.4f at %d docs vs %.4f at %d docs",
				file.Series[0].CacheHitRate, file.Series[0].Docs,
				file.Series[n-1].CacheHitRate, file.Series[n-1].Docs)
		}
	}

	writeJSON(out, &file)
	if against != "" {
		guardAudit(against, &file, tol)
	}
}

// seriesPoints is the recorded corpus-size ladder {10, 25, 50},
// truncated to the corpus and extended with the full corpus when it is
// larger than the last rung. The ladder starts at 10 documents: a
// cold-start hit rate over fewer lookups than that reflects which claim
// shapes the first handful of generated articles happened to draw, not
// how reuse scales with the corpus.
func seriesPoints(nDocs int) []int {
	var pts []int
	for _, n := range []int{10, 25, 50} {
		if n <= nDocs {
			pts = append(pts, n)
		}
	}
	if len(pts) == 0 || pts[len(pts)-1] < nDocs {
		pts = append(pts, nDocs)
	}
	return pts
}

// reportsIdentical requires bit-for-bit identical verdicts (the
// differential contract the randomized suite in internal/core pins):
// exact float equality on confidences and query results, NaN matching NaN.
func reportsIdentical(want, got *core.Report) error {
	if got == nil {
		return fmt.Errorf("no report")
	}
	if len(want.Claims()) != len(got.Claims()) {
		return fmt.Errorf("claims = %d, want %d", len(got.Claims()), len(want.Claims()))
	}
	for i := range want.Claims() {
		w, g := want.Claims()[i], got.Claims()[i]
		if g.Erroneous != w.Erroneous {
			return fmt.Errorf("claim %d: erroneous = %v, want %v", i, g.Erroneous, w.Erroneous)
		}
		if g.PCorrect != w.PCorrect {
			return fmt.Errorf("claim %d: p = %v, want %v", i, g.PCorrect, w.PCorrect)
		}
		if len(g.Ranked) != len(w.Ranked) {
			return fmt.Errorf("claim %d: ranked = %d, want %d", i, len(g.Ranked), len(w.Ranked))
		}
		for j := range w.Ranked {
			wr, gr := w.Ranked[j], g.Ranked[j]
			if gr.Query.Key() != wr.Query.Key() {
				return fmt.Errorf("claim %d rank %d: query %s, want %s", i, j, gr.Query.Key(), wr.Query.Key())
			}
			if gr.Prob != wr.Prob || gr.Matches != wr.Matches {
				return fmt.Errorf("claim %d rank %d: prob/match %v/%v, want %v/%v",
					i, j, gr.Prob, gr.Matches, wr.Prob, wr.Matches)
			}
			if gr.Result != wr.Result && !(math.IsNaN(gr.Result) && math.IsNaN(wr.Result)) {
				return fmt.Errorf("claim %d rank %d: result %v, want %v", i, j, gr.Result, wr.Result)
			}
		}
	}
	return nil
}

// guardAudit is the -audit regression gate: the fresh audit-over-isolated
// speedup must reach (1-tol) of the committed seed's. Both sides are
// same-run ratios, so absolute machine speed cancels out; corpus size must
// match for the window economics to compare.
func guardAudit(path string, fresh *auditFile, tol float64) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcube: reading record %s: %v\n", path, err)
		os.Exit(1)
	}
	var old auditFile
	if err := json.Unmarshal(data, &old); err != nil {
		fmt.Fprintf(os.Stderr, "benchcube: parsing record %s: %v\n", path, err)
		os.Exit(1)
	}
	if old.Speedup <= 0 {
		fmt.Printf("guard audit: no recorded speedup, skipping\n")
		return
	}
	if old.Docs != fresh.Docs {
		fmt.Printf("guard audit: SKIPPED - seed measured %d documents, this run %d; "+
			"window amortization scales with corpus size (re-run with -docs %d to compare)\n",
			old.Docs, fresh.Docs, old.Docs)
		return
	}
	floor := old.Speedup * (1 - tol)
	if fresh.Speedup < floor {
		fmt.Fprintf(os.Stderr, "benchcube: REGRESSION audit speedup x%.2f < floor x%.2f (seed x%.2f, tolerance %.0f%%)\n",
			fresh.Speedup, floor, old.Speedup, 100*tol)
		os.Exit(1)
	}
	fmt.Printf("guard audit: speedup x%.2f >= floor x%.2f ok (seed x%.2f)\n", fresh.Speedup, floor, old.Speedup)
}
