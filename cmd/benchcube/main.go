// Command benchcube measures the cube execution kernels (vectorized vs the
// legacy scalar interpreter) and writes a machine-readable perf record,
// BENCH_cube.json: ns/op, B/op, allocs/op, and rows/s per case, plus the
// vectorized-over-scalar speedup per case. The schema and case matrix come
// from internal/benchdata, shared with BenchmarkCubeKernel so the record
// and the in-repo benchmark always measure the same workload. CI records a
// smoke-scale run as an artifact on every push (seeding the performance
// trajectory of the hot path); `make bench-cube` regenerates the committed
// full-scale seed.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aggchecker/internal/benchdata"
	"aggchecker/internal/db"
	"aggchecker/internal/shard"
	"aggchecker/internal/sqlexec"
)

type benchEntry struct {
	Name        string  `json:"name"`
	Kernel      string  `json:"kernel"` // "vectorized" | "scalar"
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	RowsPerSec  float64 `json:"rows_per_sec"`
	ViewRows    int     `json:"view_rows"`
}

type benchFile struct {
	Schema     string       `json:"schema"`
	GoVersion  string       `json:"go_version"`
	GoMaxProcs int          `json:"go_max_procs"`
	FactRows   int          `json:"fact_rows"`
	Workers    int          `json:"scan_workers"`
	Benchmarks []benchEntry `json:"benchmarks"`
	// Speedups maps case name to vectorized rows/s divided by scalar
	// rows/s. The acceptance floor for the 3dim-joined case is 2.0.
	Speedups map[string]float64 `json:"speedups_vectorized_over_scalar"`
}

// deltaFile is the machine-readable record of the append-heavy incremental
// maintenance workload (make bench-delta): a cached cube is advanced
// through a series of commits, once by delta-scanning only the appended
// blocks and once by full recomputation, per case.
type deltaFile struct {
	Schema     string           `json:"schema"`
	GoVersion  string           `json:"go_version"`
	GoMaxProcs int              `json:"go_max_procs"`
	FactRows   int              `json:"fact_rows"`
	Batches    int              `json:"append_batches"`
	BatchRows  int              `json:"batch_rows"`
	Cases      []deltaCaseEntry `json:"cases"`
}

type deltaCaseEntry struct {
	Name             string  `json:"name"`
	DeltaNsPerCheck  float64 `json:"delta_ns_per_recheck"`
	RescanNsPerCheck float64 `json:"rescan_ns_per_recheck"`
	Speedup          float64 `json:"speedup_delta_over_rescan"`
	DeltaScans       int64   `json:"delta_scans"`
	BlocksDelta      int64   `json:"blocks_delta"`
	FullRebuilds     int64   `json:"full_rebuilds"`
	RowsPerDeltaSec  float64 `json:"appended_rows_per_sec"`
}

func main() {
	out := flag.String("out", "BENCH_cube.json", "output path for the JSON perf record")
	rows := flag.Int("rows", 120000, "fact table rows")
	workers := flag.Int("workers", 1, "cube-pass scan workers (1 isolates kernel throughput)")
	delta := flag.Bool("delta", false, "measure the append-heavy incremental-maintenance workload instead of the kernel matrix")
	batches := flag.Int("batches", 24, "append batches (commits) per case in -delta mode")
	batchRows := flag.Int("batch-rows", 2000, "rows per append batch in -delta mode")
	scan := flag.Bool("scan", false, "measure direct scans (closure baseline vs vectorized vs zone-pruned) instead of the kernel matrix")
	parallel := flag.Bool("parallel", false, "measure morsel-scheduler scaling (worker matrix + mixed heavy/light scenario) instead of the kernel matrix")
	shardMode := flag.Bool("shard", false, "measure sharded scatter-gather scaling (1/2/4/8 shards + merge overhead) instead of the kernel matrix")
	kernels := flag.Bool("kernels", false, "measure the internal/vec micro-kernels (ref vs unrolled vs CPU-dispatched) plus end-to-end cube and selection-pushdown throughput")
	storeMode := flag.Bool("store", false, "measure the persistent block store (cold-open restore vs CSV re-parse, pruned-scan page residency, compaction reseal) instead of the kernel matrix")
	auditMode := flag.Bool("audit", false, "measure corpus auditing (cross-document planning window + shared cube cache) vs one-document-at-a-time checking")
	docs := flag.Int("docs", 50, "corpus size (documents) in -audit mode")
	auditConc := flag.Int("audit-concurrency", 8, "documents in flight at once in -audit mode")
	against := flag.String("against", "", "committed record to guard against: kernel matrix compares per-case vectorized/scalar ratios, -parallel compares NPROC scaling efficiency, -shard the 1->4 shard speedup, -audit the audit-over-isolated docs/s speedup")
	tolerance := flag.Float64("tolerance", 0.30, "allowed fractional rows/s regression for -against")
	flag.Parse()

	if *delta {
		runDelta(*out, *rows, *batches, *batchRows)
		return
	}
	if *scan {
		runScan(*out, *rows)
		return
	}
	if *parallel {
		if *out == "BENCH_cube.json" {
			*out = "BENCH_parallel.json"
		}
		runParallel(*out, *rows, *against)
		return
	}
	if *shardMode {
		if *out == "BENCH_cube.json" {
			*out = "BENCH_shard.json"
		}
		runShard(*out, *rows, *against)
		return
	}
	if *auditMode {
		if *out == "BENCH_cube.json" {
			*out = "BENCH_audit.json"
		}
		runAuditBench(*out, *docs, *auditConc, *rows, *against, *tolerance)
		return
	}
	if *storeMode {
		if *out == "BENCH_cube.json" {
			*out = "BENCH_store.json"
		}
		runStore(*out, *rows, *against, *tolerance)
		return
	}
	if *kernels {
		if *out == "BENCH_cube.json" {
			*out = "BENCH_kernel.json"
		}
		runKernels(*out, *rows, *against, *tolerance)
		return
	}

	d := benchdata.BuildDB(*rows)
	ctx := context.Background()

	// Record the effective (resolved) worker count, not the raw flag: 0
	// resolves to the engine default, so the committed record states what
	// actually ran.
	probe := sqlexec.NewEngine(d, sqlexec.WithScanWorkers(*workers))
	file := benchFile{
		Schema:     "aggchecker-cube-kernel-bench/v1",
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		FactRows:   *rows,
		Workers:    probe.ScanWorkers(),
		Speedups:   map[string]float64{},
	}

	for _, bc := range benchdata.Cases() {
		view, err := db.BuildJoinView(d, bc.Tables)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcube: %v\n", err)
			os.Exit(1)
		}
		viewRows := view.NumRows()
		rowsPerSec := map[string]float64{}
		for _, kernel := range []string{"vectorized", "scalar"} {
			e := sqlexec.NewEngine(d)
			e.Tune(sqlexec.WithCaching(false)) // every CubeFor is a full pass
			e.Tune(sqlexec.WithScanWorkers(*workers))
			e.Tune(sqlexec.WithScalarKernel(kernel == "scalar"))
			res := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := e.CubeForContext(ctx, bc.Tables, bc.Dims, bc.Reqs); err != nil {
						b.Fatal(err)
					}
				}
			})
			nsPerOp := float64(res.T.Nanoseconds()) / float64(res.N)
			rps := float64(viewRows) / (nsPerOp * 1e-9)
			rowsPerSec[kernel] = rps
			file.Benchmarks = append(file.Benchmarks, benchEntry{
				Name:        bc.Name,
				Kernel:      kernel,
				NsPerOp:     nsPerOp,
				BPerOp:      res.AllocedBytesPerOp(),
				AllocsPerOp: res.AllocsPerOp(),
				RowsPerSec:  rps,
				ViewRows:    viewRows,
			})
			fmt.Printf("%-22s %-10s %12.0f ns/op %14.0f rows/s %10d B/op\n",
				bc.Name, kernel, nsPerOp, rps, res.AllocedBytesPerOp())
		}
		file.Speedups[bc.Name] = rowsPerSec["vectorized"] / rowsPerSec["scalar"]
		fmt.Printf("%-22s speedup x%.2f\n", bc.Name, file.Speedups[bc.Name])
	}

	writeJSON(*out, &file)
	if *against != "" {
		guardAgainst(*against, &file, *tolerance)
	}
}

// guardAgainst is the bench-regression gate: per case, the fresh run's
// vectorized rows/s — normalized by the scalar interpreter's rows/s from
// the SAME run — must reach at least (1-tol) of the committed record's
// normalized value. Comparing the vectorized/scalar ratio instead of raw
// rows/s makes the gate hold across machines: the committed seed and the
// CI runner differ in absolute throughput, but the scalar kernel scans
// the same rows on both, so it serves as the per-machine yardstick. (A
// regression that slows both kernels equally escapes this gate; the raw
// numbers are still recorded in the uploaded artifact for trend review.)
// CI runs it against the committed seed so a kernel regression fails the
// build instead of silently rewriting the trajectory.
func guardAgainst(path string, fresh *benchFile, tol float64) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcube: reading record %s: %v\n", path, err)
		os.Exit(1)
	}
	var old benchFile
	if err := json.Unmarshal(data, &old); err != nil {
		fmt.Fprintf(os.Stderr, "benchcube: parsing record %s: %v\n", path, err)
		os.Exit(1)
	}
	failed := false
	for name, freshSpeedup := range fresh.Speedups {
		recorded, ok := old.Speedups[name]
		if !ok || recorded <= 0 {
			continue // new case, no baseline yet
		}
		floor := recorded * (1 - tol)
		if freshSpeedup < floor {
			failed = true
			fmt.Fprintf(os.Stderr, "benchcube: REGRESSION %s: vectorized/scalar x%.2f < floor x%.2f (record x%.2f, tolerance %.0f%%)\n",
				name, freshSpeedup, floor, recorded, 100*tol)
		} else {
			fmt.Printf("guard %-22s vectorized/scalar x%.2f >= floor x%.2f ok\n", name, freshSpeedup, floor)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// runDelta measures incremental cube maintenance: for each single-table
// case, warm a cached cube, then drive `batches` append+commit cycles. The
// delta engine re-checks after every commit (delta-scanning only the new
// block); the rescan baseline disables caching so every re-check is a full
// pass over all rows. The run sanity-checks the engine's own accounting —
// one delta scan covering exactly one block per commit, zero full rebuilds
// — and exits non-zero on violation, so the CI artifact doubles as a
// regression gate for the delta path.
func runDelta(out string, rows, batches, batchRows int) {
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "benchcube -delta: "+format+"\n", args...)
		os.Exit(1)
	}
	ctx := context.Background()
	file := deltaFile{
		Schema:     "aggchecker-cube-delta-bench/v1",
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		FactRows:   rows,
		Batches:    batches,
		BatchRows:  batchRows,
	}
	for _, bc := range benchdata.Cases() {
		if len(bc.Tables) != 1 {
			continue // joined scopes take the full-rebuild path by design
		}
		// Separate database copies so the two strategies see identical,
		// independent append schedules.
		deltaDB := benchdata.BuildDB(rows)
		rescanDB := benchdata.BuildDB(rows)
		deltaEng := sqlexec.NewEngine(deltaDB)
		rescanEng := sqlexec.NewEngine(rescanDB)
		rescanEng.Tune(sqlexec.WithCaching(false))
		if _, err := deltaEng.CubeForContext(ctx, bc.Tables, bc.Dims, bc.Reqs); err != nil {
			fail("warm %s: %v", bc.Name, err)
		}

		var deltaNs, rescanNs int64
		for b := 0; b < batches; b++ {
			seed := int64(1000 + b)
			if err := benchdata.AppendFactRows(deltaDB, batchRows, seed); err != nil {
				fail("append %s: %v", bc.Name, err)
			}
			if err := benchdata.AppendFactRows(rescanDB, batchRows, seed); err != nil {
				fail("append %s: %v", bc.Name, err)
			}
			start := time.Now()
			if _, err := deltaEng.CubeForContext(ctx, bc.Tables, bc.Dims, bc.Reqs); err != nil {
				fail("delta recheck %s: %v", bc.Name, err)
			}
			deltaNs += time.Since(start).Nanoseconds()
			start = time.Now()
			if _, err := rescanEng.CubeForContext(ctx, bc.Tables, bc.Dims, bc.Reqs); err != nil {
				fail("rescan recheck %s: %v", bc.Name, err)
			}
			rescanNs += time.Since(start).Nanoseconds()
		}

		s := deltaEng.Stats.Snapshot()
		if s["delta_scans"] != int64(batches) {
			fail("%s: delta_scans = %d, want %d", bc.Name, s["delta_scans"], batches)
		}
		if s["blocks_delta"] != int64(batches) {
			fail("%s: blocks_delta = %d, want %d (one block per commit)", bc.Name, s["blocks_delta"], batches)
		}
		if s["full_rebuilds"] != 0 {
			fail("%s: full_rebuilds = %d, want 0", bc.Name, s["full_rebuilds"])
		}
		entry := deltaCaseEntry{
			Name:             bc.Name,
			DeltaNsPerCheck:  float64(deltaNs) / float64(batches),
			RescanNsPerCheck: float64(rescanNs) / float64(batches),
			Speedup:          float64(rescanNs) / float64(deltaNs),
			DeltaScans:       s["delta_scans"],
			BlocksDelta:      s["blocks_delta"],
			FullRebuilds:     s["full_rebuilds"],
			RowsPerDeltaSec:  float64(batchRows) / (float64(deltaNs) / float64(batches) * 1e-9),
		}
		file.Cases = append(file.Cases, entry)
		fmt.Printf("%-22s delta %10.0f ns/recheck   rescan %12.0f ns/recheck   speedup x%.1f\n",
			bc.Name, entry.DeltaNsPerCheck, entry.RescanNsPerCheck, entry.Speedup)
	}
	writeJSON(out, &file)
}

// scanFile is the machine-readable record of the direct-scan workload
// (make bench-scan): each case evaluated by the retired closure-matcher
// baseline (reimplemented here, since the production path deleted it), the
// vectorized pipeline with zone maps off, and the full pipeline with
// zone-map pruning.
type scanFile struct {
	Schema     string          `json:"schema"`
	GoVersion  string          `json:"go_version"`
	GoMaxProcs int             `json:"go_max_procs"`
	FactRows   int             `json:"fact_rows"`
	Entries    []scanCaseEntry `json:"entries"`
	// Speedups map case name to vectorized-over-closure and
	// pruned-over-closure rows/s ratios.
	SpeedupVectorOverClosure map[string]float64 `json:"speedups_vector_over_closure"`
	SpeedupPrunedOverClosure map[string]float64 `json:"speedups_pruned_over_closure"`
}

type scanCaseEntry struct {
	Name         string  `json:"name"`
	Mode         string  `json:"mode"` // "closure" | "vector" | "vector+zones"
	NsPerOp      float64 `json:"ns_per_op"`
	RowsPerSec   float64 `json:"rows_per_sec"`
	BlocksPruned int64   `json:"blocks_pruned,omitempty"`
}

// closureScan is the retired row-at-a-time direct scan, preserved as the
// benchmark baseline: per-row heap-allocated closure matchers, one
// row at a time, exactly the code shape Engine.EvaluateContext had before
// the vectorized pipeline replaced it. It supports the aggregate subset
// the scan cases use (Count, Sum, Percentage).
func closureScan(view *db.JoinView, q sqlexec.Query) (float64, error) {
	matchers := make([]func(int) bool, 0, len(q.Preds))
	for _, p := range q.Preds {
		acc, err := view.Accessor(p.Col.Table, p.Col.Column)
		if err != nil {
			return math.NaN(), err
		}
		if acc.Column().Kind == db.KindString {
			code := acc.Column().CodeOf(p.Value)
			a := acc
			matchers = append(matchers, func(row int) bool { return a.Code(row) == code && code >= 0 })
		} else {
			want, err := strconv.ParseFloat(strings.TrimSpace(p.Value), 64)
			if err != nil {
				matchers = append(matchers, func(int) bool { return false })
				continue
			}
			a := acc
			matchers = append(matchers, func(row int) bool { return a.Float(row) == want })
		}
	}
	star := q.AggCol.IsStar()
	var aggAcc db.ColumnAccessor
	if !star {
		var err error
		aggAcc, err = view.Accessor(q.AggCol.Table, q.AggCol.Column)
		if err != nil {
			return math.NaN(), err
		}
	}
	var matched, total, nonNull int64
	var sum float64
	n := view.NumRows()
	for row := 0; row < n; row++ {
		total++
		all := true
		for i := range matchers {
			if !matchers[i](row) {
				all = false
				break
			}
		}
		if !all {
			continue
		}
		matched++
		if !star {
			if v := aggAcc.Float(row); !math.IsNaN(v) {
				nonNull++
				sum += v
			}
		}
	}
	switch q.Agg {
	case sqlexec.Count:
		if star {
			return float64(matched), nil
		}
		return float64(nonNull), nil
	case sqlexec.Sum:
		if nonNull == 0 {
			return math.NaN(), nil
		}
		return sum, nil
	case sqlexec.Percentage:
		if total == 0 {
			return math.NaN(), nil
		}
		return 100 * float64(matched) / float64(total), nil
	}
	return math.NaN(), fmt.Errorf("closureScan: unsupported aggregate %v", q.Agg)
}

// runScan measures the direct-scan pipeline: closure baseline vs
// vectorized selection vectors vs zone-pruned, per case. All three modes
// must agree on every answer, and prunable cases must actually record
// pruned blocks — the run hard-fails otherwise, so the CI artifact
// doubles as a regression gate for the scan pipeline.
func runScan(out string, rows int) {
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "benchcube -scan: "+format+"\n", args...)
		os.Exit(1)
	}
	d := benchdata.BuildDB(rows)
	view, err := db.BuildJoinView(d, []string{"fact"})
	if err != nil {
		fail("%v", err)
	}
	viewRows := view.NumRows()

	flatEng := sqlexec.NewEngine(d)
	flatEng.Tune(sqlexec.WithZoneMaps(false))
	zoneEng := sqlexec.NewEngine(d)

	file := scanFile{
		Schema:                   "aggchecker-direct-scan-bench/v1",
		GoVersion:                runtime.Version(),
		GoMaxProcs:               runtime.GOMAXPROCS(0),
		FactRows:                 rows,
		SpeedupVectorOverClosure: map[string]float64{},
		SpeedupPrunedOverClosure: map[string]float64{},
	}

	eq := func(a, b float64) bool {
		if math.IsNaN(a) && math.IsNaN(b) {
			return true
		}
		return math.Abs(a-b) < 1e-9
	}
	for _, sc := range benchdata.ScanCases(rows) {
		want, err := closureScan(view, sc.Query)
		if err != nil {
			fail("%s: closure: %v", sc.Name, err)
		}
		for _, mode := range []string{"vector", "vector+zones"} {
			e := flatEng
			if mode == "vector+zones" {
				e = zoneEng
			}
			got, err := e.Evaluate(sc.Query)
			if err != nil {
				fail("%s: %s: %v", sc.Name, mode, err)
			}
			if !eq(want, got) {
				fail("%s: %s answered %v, closure baseline %v", sc.Name, mode, got, want)
			}
		}
		prunedBefore := zoneEng.Stats.BlocksPruned.Load()
		if _, err := zoneEng.Evaluate(sc.Query); err != nil {
			fail("%s: %v", sc.Name, err)
		}
		prunedPerScan := zoneEng.Stats.BlocksPruned.Load() - prunedBefore
		if sc.Prunable && prunedPerScan == 0 {
			fail("%s: marked prunable but zone maps pruned no blocks", sc.Name)
		}

		rowsPerSec := map[string]float64{}
		for _, mode := range []string{"closure", "vector", "vector+zones"} {
			run := func() {
				switch mode {
				case "closure":
					_, err = closureScan(view, sc.Query)
				case "vector":
					_, err = flatEng.Evaluate(sc.Query)
				default:
					_, err = zoneEng.Evaluate(sc.Query)
				}
				if err != nil {
					fail("%s: %s: %v", sc.Name, mode, err)
				}
			}
			res := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					run()
				}
			})
			nsPerOp := float64(res.T.Nanoseconds()) / float64(res.N)
			rps := float64(viewRows) / (nsPerOp * 1e-9)
			rowsPerSec[mode] = rps
			entry := scanCaseEntry{Name: sc.Name, Mode: mode, NsPerOp: nsPerOp, RowsPerSec: rps}
			if mode == "vector+zones" {
				entry.BlocksPruned = prunedPerScan
			}
			file.Entries = append(file.Entries, entry)
			fmt.Printf("%-20s %-13s %12.0f ns/op %14.0f rows/s\n", sc.Name, mode, nsPerOp, rps)
		}
		file.SpeedupVectorOverClosure[sc.Name] = rowsPerSec["vector"] / rowsPerSec["closure"]
		file.SpeedupPrunedOverClosure[sc.Name] = rowsPerSec["vector+zones"] / rowsPerSec["closure"]
		fmt.Printf("%-20s speedup vector x%.2f   pruned x%.2f\n",
			sc.Name, file.SpeedupVectorOverClosure[sc.Name], file.SpeedupPrunedOverClosure[sc.Name])
	}
	writeJSON(out, &file)
}

// parallelFile is the machine-readable record of the morsel-scheduler
// scaling workload (make bench-parallel): one representative cube pass
// measured at a deduplicated worker matrix {1, 2, 4, NPROC}, plus a mixed
// scenario interleaving a heavy cube-pass loop with light direct scans on
// one shared scheduler. Absolute rows/s depends on the machine;
// scaling_efficiency_nproc (speedup at NPROC divided by NPROC) is the
// machine-portable number the bench guard compares. On a single-core
// runner (go_max_procs 1) the matrix still exercises widths 2 and 4 — the
// scheduler machinery runs, but wall-clock speedup is capped at ~1.0 and
// efficiency at NPROC=1 is trivially 1.0; the committed seed records
// whatever its machine honestly measured.
type parallelFile struct {
	Schema            string          `json:"schema"`
	GoVersion         string          `json:"go_version"`
	GoMaxProcs        int             `json:"go_max_procs"`
	FactRows          int             `json:"fact_rows"`
	Case              string          `json:"case"`
	Entries           []parallelEntry `json:"entries"`
	ScalingEfficiency float64         `json:"scaling_efficiency_nproc"`
	Mixed             mixedEntry      `json:"mixed"`
}

type parallelEntry struct {
	Workers        int     `json:"scan_workers"` // effective (resolved), not the raw flag
	NsPerOp        float64 `json:"ns_per_op"`
	RowsPerSec     float64 `json:"rows_per_sec"`
	Speedup        float64 `json:"speedup_over_1_worker"`
	MorselsPerPass float64 `json:"morsels_per_pass"`
	StealsPerPass  float64 `json:"steals_per_pass"`
}

type mixedEntry struct {
	SchedWorkers     int     `json:"scan_workers"`
	LightQuery       string  `json:"light_query"`
	UncontendedP95Ns float64 `json:"light_p95_uncontended_ns"`
	ContendedP95Ns   float64 `json:"light_p95_contended_ns"`
	ContentionRatio  float64 `json:"light_p95_ratio"`
	HeavyPasses      int64   `json:"heavy_passes_completed"`
	QueueWaits       int64   `json:"queue_waits"`
	Steals           int64   `json:"steal_count"`
}

// parallelGuardFloor is the -parallel regression gate: a fresh run's NPROC
// scaling efficiency must reach at least this fraction of the committed
// seed's. Ratio-of-ratios, so it holds across machines of different
// absolute speed (though not different core counts — the artifact's
// go_max_procs says which machine class the seed came from).
const parallelGuardFloor = 0.60

// runParallel measures how cube passes scale across morsel-scheduler
// widths, and how light direct scans behave while a heavy pass saturates
// the shared pool.
func runParallel(out string, rows int, against string) {
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "benchcube -parallel: "+format+"\n", args...)
		os.Exit(1)
	}
	// Scans below the engine's parallel threshold (64Ki joined rows) run
	// single-threaded by design and would never reach the scheduler, so a
	// smoke-scale -rows is raised to the smallest size that measures it.
	if rows < 1<<16 {
		fmt.Printf("benchcube -parallel: raising -rows %d to %d (engine parallel threshold)\n", rows, 1<<16)
		rows = 1 << 17
	}
	d := benchdata.BuildDB(rows)
	ctx := context.Background()

	// The heaviest single-table case keeps the measurement about scan
	// scheduling rather than join materialization.
	var bc benchdata.Case
	found := false
	for _, c := range benchdata.Cases() {
		if c.Name == "3dim-string-single" {
			bc, found = c, true
		}
	}
	if !found {
		fail("case 3dim-string-single missing from benchdata")
	}
	view, err := db.BuildJoinView(d, bc.Tables)
	if err != nil {
		fail("%v", err)
	}
	viewRows := view.NumRows()

	nproc := runtime.GOMAXPROCS(0)
	file := parallelFile{
		Schema:     "aggchecker-parallel-scan-bench/v1",
		GoVersion:  runtime.Version(),
		GoMaxProcs: nproc,
		FactRows:   rows,
		Case:       bc.Name,
	}

	widths := []int{1, 2, 4, nproc}
	seen := map[int]bool{}
	var base float64
	for _, w := range widths {
		if seen[w] {
			continue
		}
		seen[w] = true
		sched := sqlexec.NewScheduler(w)
		e := sqlexec.NewEngine(d,
			sqlexec.WithScheduler(sched),
			sqlexec.WithCaching(false), // every CubeFor is a full pass
			sqlexec.WithScanWorkers(w))
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := e.CubeForContext(ctx, bc.Tables, bc.Dims, bc.Reqs); err != nil {
					b.Fatal(err)
				}
			}
		})
		sched.Close()
		nsPerOp := float64(res.T.Nanoseconds()) / float64(res.N)
		rps := float64(viewRows) / (nsPerOp * 1e-9)
		passes := e.Stats.CubePasses.Load()
		entry := parallelEntry{
			Workers:        e.ScanWorkers(),
			NsPerOp:        nsPerOp,
			RowsPerSec:     rps,
			MorselsPerPass: float64(e.Stats.MorselsDispatched.Load()) / float64(passes),
			StealsPerPass:  float64(e.Stats.StealCount.Load()) / float64(passes),
		}
		if base == 0 {
			base = rps
		}
		entry.Speedup = rps / base
		if w > 1 && entry.MorselsPerPass == 0 {
			fail("width %d dispatched no morsels: the pass never reached the scheduler", w)
		}
		file.Entries = append(file.Entries, entry)
		fmt.Printf("workers=%-3d %12.0f ns/op %14.0f rows/s   speedup x%.2f   %.1f morsels/pass (%.1f stolen)\n",
			entry.Workers, nsPerOp, rps, entry.Speedup, entry.MorselsPerPass, entry.StealsPerPass)
		if w == nproc {
			file.ScalingEfficiency = entry.Speedup / float64(nproc)
		}
	}
	fmt.Printf("scaling efficiency at NPROC=%d: %.2f\n", nproc, file.ScalingEfficiency)

	file.Mixed = runMixed(d, viewRows, bc, rows)
	writeJSON(out, &file)
	if against != "" {
		guardParallel(against, &file)
	}
}

// runMixed interleaves a heavy cube-pass loop with light direct scans on
// one shared scheduler and reports the light scans' p95 latency against
// their uncontended baseline — the fairness number of the morsel design
// (owner participation plus one-morsel round-robin picks).
func runMixed(d *db.Database, viewRows int, bc benchdata.Case, rows int) mixedEntry {
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "benchcube -parallel: "+format+"\n", args...)
		os.Exit(1)
	}
	// Width 2 floor so the shared pool (publish/steal) is active even on a
	// single-core runner.
	w := runtime.GOMAXPROCS(0)
	if w < 2 {
		w = 2
	}
	sched := sqlexec.NewScheduler(w)
	defer sched.Close()
	heavyEng := sqlexec.NewEngine(d, sqlexec.WithScheduler(sched), sqlexec.WithCaching(false), sqlexec.WithScanWorkers(w))
	lightEng := sqlexec.NewEngine(d, sqlexec.WithScheduler(sched), sqlexec.WithCaching(false), sqlexec.WithScanWorkers(w))

	scans := benchdata.ScanCases(rows)
	light := scans[0]
	for _, sc := range scans {
		if sc.Name == "sum-1pred-hot" {
			light = sc
		}
	}

	const lights = 60
	p95 := func() float64 {
		lat := make([]time.Duration, lights)
		for i := range lat {
			start := time.Now()
			if _, err := lightEng.Evaluate(light.Query); err != nil {
				fail("light scan: %v", err)
			}
			lat[i] = time.Since(start)
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return float64(lat[lights*95/100].Nanoseconds())
	}

	uncontended := p95()

	heavyCtx, stopHeavy := context.WithCancel(context.Background())
	var heavyPasses atomic.Int64
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for heavyCtx.Err() == nil {
			if _, err := heavyEng.CubeForContext(heavyCtx, bc.Tables, bc.Dims, bc.Reqs); err != nil {
				return // cancellation
			}
			heavyPasses.Add(1)
		}
	}()
	// Let the heavy loop occupy the pool before measuring.
	time.Sleep(50 * time.Millisecond)
	contended := p95()
	stopHeavy()
	wg.Wait()

	m := mixedEntry{
		SchedWorkers:     w,
		LightQuery:       light.Name,
		UncontendedP95Ns: uncontended,
		ContendedP95Ns:   contended,
		ContentionRatio:  contended / uncontended,
		HeavyPasses:      heavyPasses.Load(),
		QueueWaits:       lightEng.Stats.QueueWaits.Load() + heavyEng.Stats.QueueWaits.Load(),
		Steals:           lightEng.Stats.StealCount.Load() + heavyEng.Stats.StealCount.Load(),
	}
	fmt.Printf("mixed: light %s p95 %.0f ns uncontended, %.0f ns under heavy load (x%.2f), %d heavy passes\n",
		m.LightQuery, m.UncontendedP95Ns, m.ContendedP95Ns, m.ContentionRatio, m.HeavyPasses)
	return m
}

// guardParallel is the -parallel regression gate: the fresh NPROC scaling
// efficiency must reach parallelGuardFloor of the committed seed's.
func guardParallel(path string, fresh *parallelFile) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcube: reading record %s: %v\n", path, err)
		os.Exit(1)
	}
	var old parallelFile
	if err := json.Unmarshal(data, &old); err != nil {
		fmt.Fprintf(os.Stderr, "benchcube: parsing record %s: %v\n", path, err)
		os.Exit(1)
	}
	if old.ScalingEfficiency <= 0 {
		fmt.Printf("guard parallel: no recorded scaling efficiency, skipping\n")
		return
	}
	// Efficiency is speedup-at-NPROC over NPROC: it only compares across
	// runs whose NPROC matches. On a different machine class — above all a
	// single-core box, where speedup is capped at ~1.0 and efficiency at
	// NPROC=1 is trivially 1.0 — the ratio is meaningless in both
	// directions (trivial pass or guaranteed false alarm), so the guard
	// warns and skips instead of comparing. Regenerate the seed on the
	// hardware class CI runs on: `make bench-parallel` on a multi-core box,
	// then commit BENCH_parallel.json.
	if old.GoMaxProcs != fresh.GoMaxProcs {
		fmt.Printf("guard parallel: SKIPPED - seed measured at go_max_procs=%d, this machine has %d; "+
			"scaling efficiency does not compare across core counts (regenerate the seed with "+
			"`make bench-parallel` on the CI machine class)\n",
			old.GoMaxProcs, fresh.GoMaxProcs)
		return
	}
	// Matching counts of 1 are no better: efficiency at NPROC=1 is speedup
	// over itself, trivially 1.0 on both sides, so a "pass" here gates
	// nothing. Skip with the numbers in hand instead of printing a vacuous
	// comparison.
	if old.GoMaxProcs == 1 {
		fmt.Printf("guard parallel: SKIPPED - seed go_max_procs=%d, this machine go_max_procs=%d: "+
			"scaling efficiency at NPROC=1 is trivially 1.0 and cannot regress; regenerate the seed "+
			"on a multi-core box (`make bench-parallel`, commit BENCH_parallel.json) to arm this leg\n",
			old.GoMaxProcs, fresh.GoMaxProcs)
		return
	}
	floor := old.ScalingEfficiency * parallelGuardFloor
	if fresh.ScalingEfficiency < floor {
		fmt.Fprintf(os.Stderr, "benchcube: REGRESSION parallel scaling efficiency %.2f < floor %.2f (seed %.2f at go_max_procs=%d, floor %.0f%%)\n",
			fresh.ScalingEfficiency, floor, old.ScalingEfficiency, old.GoMaxProcs, 100*parallelGuardFloor)
		os.Exit(1)
	}
	fmt.Printf("guard parallel: scaling efficiency %.2f >= floor %.2f ok (seed %.2f)\n",
		fresh.ScalingEfficiency, floor, old.ScalingEfficiency)
}

// shardFile is the machine-readable record of the sharded scatter-gather
// workload (make bench-shard): one representative cube pass executed by a
// coordinator over K single-threaded in-process shard workers, K in
// {1, 2, 4, 8}. Scatter-gather wins come from running the K partition
// passes concurrently, so absolute speedup needs cores: on a single-core
// runner (go_max_procs 1) the fan-out machinery runs but wall-clock speedup
// is capped at ~1.0, and speedup_1_to_4 records whatever the machine
// honestly measured (the acceptance floor of 1.5x presumes >= 4 cores,
// same machine-class caveat as BENCH_parallel.json). merge_fraction — the
// share of a pass spent merging partials, the coordinator's sequential
// overhead — is machine-portable and must stay under 0.10.
type shardFile struct {
	Schema      string       `json:"schema"`
	GoVersion   string       `json:"go_version"`
	GoMaxProcs  int          `json:"go_max_procs"`
	FactRows    int          `json:"fact_rows"`
	Case        string       `json:"case"`
	Entries     []shardEntry `json:"entries"`
	Speedup1To4 float64      `json:"speedup_1_to_4"`
}

type shardEntry struct {
	Shards          int     `json:"shards"`
	NsPerOp         float64 `json:"ns_per_op"`
	RowsPerSec      float64 `json:"rows_per_sec"`
	Speedup         float64 `json:"speedup_over_1_shard"`
	MergeNsPerOp    float64 `json:"merge_ns_per_op"`
	MergeFraction   float64 `json:"merge_fraction"`
	StragglersPerOp float64 `json:"stragglers_per_op"`
}

// runShard measures coordinator scatter-gather over 1/2/4/8 round-robin
// partitions of the benchmark fact table. Before timing anything it
// hard-fails unless the 4-shard merged cube answers every probe query of
// every case identically to the unsharded engine (Avg over the non-integral
// y column is compared with a relative tolerance, since per-shard subtotals
// legitimately round differently than one sequential sum).
func runShard(out string, rows int, against string) {
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "benchcube -shard: "+format+"\n", args...)
		os.Exit(1)
	}
	d := benchdata.BuildDB(rows)
	ctx := context.Background()

	buildCoord := func(k int) (*shard.Coordinator, *sqlexec.Stats) {
		sh, err := db.NewSharder(d, k, db.ShardOptions{})
		if err != nil {
			fail("shard k=%d: %v", k, err)
		}
		workers := make([]shard.Worker, 0, k)
		for _, p := range sh.Partitions() {
			e := sqlexec.NewEngine(p, sqlexec.WithScanWorkers(1))
			e.Tune(sqlexec.WithCaching(false)) // every partial is a full partition pass
			workers = append(workers, &shard.LocalWorker{Engine: e})
		}
		st := &sqlexec.Stats{}
		return shard.NewCoordinator(workers, st), st
	}

	// Correctness gate: 4-shard merged cubes vs the unsharded engine across
	// the whole case matrix, probing every per-dimension literal slice and
	// the full-grid cells.
	probeCoord, _ := buildCoord(4)
	probeEng := sqlexec.NewEngine(d)
	probeEng.Tune(sqlexec.WithCaching(false))
	for _, bc := range benchdata.Cases() {
		want, err := probeEng.CubeForContext(ctx, bc.Tables, bc.Dims, bc.Reqs)
		if err != nil {
			fail("probe %s: unsharded: %v", bc.Name, err)
		}
		got, err := probeCoord.Cube(ctx, sqlexec.CubeRequest{Tables: bc.Tables, Dims: bc.Dims, Reqs: bc.Reqs})
		if err != nil {
			fail("probe %s: sharded: %v", bc.Name, err)
		}
		for _, q := range probeQueries(bc) {
			wv, wok := want.Value(q)
			gv, gok := got.Value(q)
			if wok != gok {
				fail("probe %s: %s answerable=%v sharded, %v unsharded", bc.Name, q.Key(), gok, wok)
			}
			if wok && !approxEq(wv, gv) {
				fail("probe %s: %s = %v sharded, %v unsharded", bc.Name, q.Key(), gv, wv)
			}
		}
	}
	fmt.Printf("correctness: 4-shard merged cubes match unsharded on all %d cases\n", len(benchdata.Cases()))

	// The same representative case as -parallel, so the two records profile
	// intra-pass vs inter-partition parallelism on one workload.
	var bc benchdata.Case
	for _, c := range benchdata.Cases() {
		if c.Name == "3dim-string-single" {
			bc = c
		}
	}
	view, err := db.BuildJoinView(d, bc.Tables)
	if err != nil {
		fail("%v", err)
	}
	viewRows := view.NumRows()

	file := shardFile{
		Schema:     "aggchecker-shard-scaling-bench/v1",
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		FactRows:   rows,
		Case:       bc.Name,
	}
	creq := sqlexec.CubeRequest{Tables: bc.Tables, Dims: bc.Dims, Reqs: bc.Reqs}
	var base float64
	for _, k := range []int{1, 2, 4, 8} {
		coord, st := buildCoord(k)
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := coord.Cube(ctx, creq); err != nil {
					b.Fatal(err)
				}
			}
		})
		nsPerOp := float64(res.T.Nanoseconds()) / float64(res.N)
		rps := float64(viewRows) / (nsPerOp * 1e-9)
		// Stats accumulate across the benchmark's calibration rounds too, so
		// normalize by the coordinator's own fan-out count, not res.N.
		ops := float64(st.ShardFanouts.Load())
		entry := shardEntry{
			Shards:          k,
			NsPerOp:         nsPerOp,
			RowsPerSec:      rps,
			MergeNsPerOp:    float64(st.ShardMergeNanos.Load()) / ops,
			StragglersPerOp: float64(st.ShardStragglers.Load()) / ops,
		}
		entry.MergeFraction = entry.MergeNsPerOp / nsPerOp
		if base == 0 {
			base = rps
		}
		entry.Speedup = rps / base
		file.Entries = append(file.Entries, entry)
		fmt.Printf("shards=%-3d %12.0f ns/op %14.0f rows/s   speedup x%.2f   merge %.1f%% of pass   %.2f stragglers/op\n",
			k, nsPerOp, rps, entry.Speedup, 100*entry.MergeFraction, entry.StragglersPerOp)
		if k == 4 {
			file.Speedup1To4 = entry.Speedup
		}
		// The <10% merge-overhead gate covers the 1->4 scaling claim; the
		// k=8 row is recorded for trend review only (at smoke scale its
		// partitions are small enough that constant per-cell merge work
		// legitimately crosses the line).
		if k <= 4 && entry.MergeFraction > 0.10 {
			fail("shards=%d: merge consumed %.1f%% of the pass (floor: <10%%)", k, 100*entry.MergeFraction)
		}
	}
	fmt.Printf("speedup 1->4 shards: x%.2f (go_max_procs=%d)\n", file.Speedup1To4, file.GoMaxProcs)
	writeJSON(out, &file)
	if against != "" {
		guardShard(against, &file)
	}
}

// shardGuardFloor is the -shard regression gate: a fresh run's 1->4 shard
// speedup must reach at least this fraction of the committed seed's. Like
// the parallel leg it is a ratio of same-run ratios, portable across
// machine speeds but not core counts.
const shardGuardFloor = 0.60

// guardShard compares the fresh 1->4 shard speedup against the committed
// seed's. Scatter-gather needs cores to win, so the comparison is only
// armed when the seed and this machine share a multi-core go_max_procs;
// otherwise it skips with both numbers printed and the regeneration
// command, never a vacuous pass.
func guardShard(path string, fresh *shardFile) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcube: reading record %s: %v\n", path, err)
		os.Exit(1)
	}
	var old shardFile
	if err := json.Unmarshal(data, &old); err != nil {
		fmt.Fprintf(os.Stderr, "benchcube: parsing record %s: %v\n", path, err)
		os.Exit(1)
	}
	if old.Speedup1To4 <= 0 {
		fmt.Printf("guard shard: no recorded 1->4 speedup, skipping\n")
		return
	}
	if old.GoMaxProcs != fresh.GoMaxProcs {
		fmt.Printf("guard shard: SKIPPED - seed measured at go_max_procs=%d, this machine has %d; "+
			"1->4 shard speedup does not compare across core counts (regenerate the seed with "+
			"`make bench-shard` on the CI machine class, commit BENCH_shard.json)\n",
			old.GoMaxProcs, fresh.GoMaxProcs)
		return
	}
	if old.GoMaxProcs == 1 {
		fmt.Printf("guard shard: SKIPPED - seed go_max_procs=%d, this machine go_max_procs=%d: "+
			"the 4 partition passes serialize on one core, so the speedup (seed x%.2f, fresh x%.2f) "+
			"measures overhead, not scaling; regenerate the seed on a multi-core box "+
			"(`make bench-shard`, commit BENCH_shard.json) to arm this leg\n",
			old.GoMaxProcs, fresh.GoMaxProcs, old.Speedup1To4, fresh.Speedup1To4)
		return
	}
	floor := old.Speedup1To4 * shardGuardFloor
	if fresh.Speedup1To4 < floor {
		fmt.Fprintf(os.Stderr, "benchcube: REGRESSION shard 1->4 speedup x%.2f < floor x%.2f (seed x%.2f at go_max_procs=%d, floor %.0f%%)\n",
			fresh.Speedup1To4, floor, old.Speedup1To4, old.GoMaxProcs, 100*shardGuardFloor)
		os.Exit(1)
	}
	fmt.Printf("guard shard: 1->4 speedup x%.2f >= floor x%.2f ok (seed x%.2f)\n",
		fresh.Speedup1To4, floor, old.Speedup1To4)
}

// probeQueries enumerates verification queries for a cube case: for every
// aggregation request, the unrestricted query, every single-literal slice,
// and the full-grid cells (one literal from every dimension).
func probeQueries(bc benchdata.Case) []sqlexec.Query {
	var out []sqlexec.Query
	for _, req := range bc.Reqs {
		q := sqlexec.Query{Agg: req.Fn, AggCol: req.Col}
		out = append(out, q)
		for _, dim := range bc.Dims {
			for _, lit := range dim.Literals {
				s := q
				s.Preds = []sqlexec.Predicate{{Col: dim.Col, Value: lit}}
				out = append(out, s)
			}
		}
		grid := []sqlexec.Query{q}
		for _, dim := range bc.Dims {
			var next []sqlexec.Query
			for _, g := range grid {
				for _, lit := range dim.Literals {
					s := g
					s.Preds = append(append([]sqlexec.Predicate(nil), g.Preds...), sqlexec.Predicate{Col: dim.Col, Value: lit})
					next = append(next, s)
				}
			}
			grid = next
		}
		out = append(out, grid...)
	}
	return out
}

// approxEq compares an unsharded answer with a merged scatter-gather
// answer: NaN matches NaN, and floats match within a relative epsilon
// (partition subtotals of the non-integral y column legitimately round
// differently than one sequential sum).
func approxEq(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= 1e-9*scale
}

func writeJSON(out string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcube: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchcube: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", out)
}
