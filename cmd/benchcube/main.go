// Command benchcube measures the cube execution kernels (vectorized vs the
// legacy scalar interpreter) and writes a machine-readable perf record,
// BENCH_cube.json: ns/op, B/op, allocs/op, and rows/s per case, plus the
// vectorized-over-scalar speedup per case. The schema and case matrix come
// from internal/benchdata, shared with BenchmarkCubeKernel so the record
// and the in-repo benchmark always measure the same workload. CI records a
// smoke-scale run as an artifact on every push (seeding the performance
// trajectory of the hot path); `make bench-cube` regenerates the committed
// full-scale seed.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"aggchecker/internal/benchdata"
	"aggchecker/internal/db"
	"aggchecker/internal/sqlexec"
)

type benchEntry struct {
	Name        string  `json:"name"`
	Kernel      string  `json:"kernel"` // "vectorized" | "scalar"
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	RowsPerSec  float64 `json:"rows_per_sec"`
	ViewRows    int     `json:"view_rows"`
}

type benchFile struct {
	Schema     string       `json:"schema"`
	GoVersion  string       `json:"go_version"`
	GoMaxProcs int          `json:"go_max_procs"`
	FactRows   int          `json:"fact_rows"`
	Workers    int          `json:"scan_workers"`
	Benchmarks []benchEntry `json:"benchmarks"`
	// Speedups maps case name to vectorized rows/s divided by scalar
	// rows/s. The acceptance floor for the 3dim-joined case is 2.0.
	Speedups map[string]float64 `json:"speedups_vectorized_over_scalar"`
}

func main() {
	out := flag.String("out", "BENCH_cube.json", "output path for the JSON perf record")
	rows := flag.Int("rows", 120000, "fact table rows")
	workers := flag.Int("workers", 1, "cube-pass scan workers (1 isolates kernel throughput)")
	flag.Parse()

	d := benchdata.BuildDB(*rows)
	ctx := context.Background()

	file := benchFile{
		Schema:     "aggchecker-cube-kernel-bench/v1",
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		FactRows:   *rows,
		Workers:    *workers,
		Speedups:   map[string]float64{},
	}

	for _, bc := range benchdata.Cases() {
		view, err := db.BuildJoinView(d, bc.Tables)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchcube: %v\n", err)
			os.Exit(1)
		}
		viewRows := view.NumRows()
		rowsPerSec := map[string]float64{}
		for _, kernel := range []string{"vectorized", "scalar"} {
			e := sqlexec.NewEngine(d)
			e.SetCaching(false) // every CubeFor is a full pass
			e.SetScanWorkers(*workers)
			e.SetScalarKernel(kernel == "scalar")
			res := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := e.CubeForContext(ctx, bc.Tables, bc.Dims, bc.Reqs); err != nil {
						b.Fatal(err)
					}
				}
			})
			nsPerOp := float64(res.T.Nanoseconds()) / float64(res.N)
			rps := float64(viewRows) / (nsPerOp * 1e-9)
			rowsPerSec[kernel] = rps
			file.Benchmarks = append(file.Benchmarks, benchEntry{
				Name:        bc.Name,
				Kernel:      kernel,
				NsPerOp:     nsPerOp,
				BPerOp:      res.AllocedBytesPerOp(),
				AllocsPerOp: res.AllocsPerOp(),
				RowsPerSec:  rps,
				ViewRows:    viewRows,
			})
			fmt.Printf("%-22s %-10s %12.0f ns/op %14.0f rows/s %10d B/op\n",
				bc.Name, kernel, nsPerOp, rps, res.AllocedBytesPerOp())
		}
		file.Speedups[bc.Name] = rowsPerSec["vectorized"] / rowsPerSec["scalar"]
		fmt.Printf("%-22s speedup x%.2f\n", bc.Name, file.Speedups[bc.Name])
	}

	data, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcube: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchcube: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
