package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"aggchecker/internal/benchdata"
	"aggchecker/internal/colstore"
	"aggchecker/internal/db"
	"aggchecker/internal/sqlexec"
)

// storeFile is the machine-readable record of the persistent block-store
// workload (make bench-store): cold-open latency of a store restore vs a
// CSV re-parse of the same data, page-level residency of a zone-pruned
// scan over the mmapped columns, and scan throughput before/after the
// background compactor reseals the block layout. The zero-page-read gate
// hard-fails inside the run (pruned scans must not fault a single column
// page in), so the CI artifact doubles as a regression gate for the
// store's read path.
type storeFile struct {
	Schema     string          `json:"schema"`
	GoVersion  string          `json:"go_version"`
	GoMaxProcs int             `json:"go_max_procs"`
	FactRows   int             `json:"fact_rows"`
	Blocks     int             `json:"blocks_sealed"`
	ColdOpen   storeColdOpen   `json:"cold_open"`
	Pruning    storePruning    `json:"pruned_scan"`
	Compaction storeCompaction `json:"compaction"`
}

type storeColdOpen struct {
	// CSVParseNs re-parses the dumped fact+dims CSVs; RestoreNs reopens
	// the manifest and mmaps the columns. Speedup is the ratio — the
	// number a restart saves per database.
	CSVParseNs    float64 `json:"csv_parse_ns"`
	RestoreNs     float64 `json:"store_restore_ns"`
	Speedup       float64 `json:"speedup_restore_over_parse"`
	DataBytes     int64   `json:"data_bytes"`
	ManifestBytes int64   `json:"manifest_bytes"`
}

type storePruning struct {
	// Supported is false where /proc/self/smaps is unavailable; the
	// resident numbers are -1 there and the zero-page-read gate is skipped.
	Supported           bool  `json:"resident_tracking_supported"`
	ResidentAfterOpen   int64 `json:"resident_bytes_after_open"`
	ResidentAfterPruned int64 `json:"resident_bytes_after_pruned_scan"`
	ResidentAfterFull   int64 `json:"resident_bytes_after_full_scan"`
	// PrunedPageBytes is the pages the fully-refuted scan faulted in; the
	// run fails unless it is exactly 0.
	PrunedPageBytes int64 `json:"pruned_scan_page_bytes"`
	BlocksPruned    int64 `json:"blocks_pruned"`
}

type storeCompaction struct {
	BlocksBefore         int     `json:"blocks_before"`
	BlocksAfter          int     `json:"blocks_after"`
	ZoneRowsBefore       int     `json:"zone_rows_before"`
	ZoneRowsAfter        int     `json:"zone_rows_after"`
	ScanRowsPerSecBefore float64 `json:"scan_rows_per_sec_before"`
	ScanRowsPerSecAfter  float64 `json:"scan_rows_per_sec_after"`
	Resets               int64   `json:"resets"`
}

// runStore builds the benchmark database, persists it through the
// colstore Persister across a series of commits, and measures the three
// storage claims: restore beats re-parse, pruned scans touch no pages,
// and compaction's resealed layout keeps scan throughput.
func runStore(out string, rows int, against string, tol float64) {
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "benchcube -store: "+format+"\n", args...)
		os.Exit(1)
	}
	ctx := context.Background()
	dir, err := os.MkdirTemp("", "benchstore")
	if err != nil {
		fail("%v", err)
	}
	defer os.RemoveAll(dir)
	storeDir := filepath.Join(dir, "bench")

	// Build and persist: the seed commit plus a dozen appended blocks, the
	// shape a -watch daemon leaves behind after a day of refreshes.
	d := benchdata.BuildDB(rows)
	st, _, err := colstore.Open(storeDir)
	if err != nil {
		fail("open store: %v", err)
	}
	if err := d.SetPersister(st); err != nil {
		fail("set persister: %v", err)
	}
	const batches = 12
	batchRows := rows / batches
	if batchRows == 0 {
		batchRows = 1
	}
	for b := 0; b < batches; b++ {
		if err := benchdata.AppendFactRows(d, batchRows, int64(4000+b)); err != nil {
			fail("append: %v", err)
		}
	}
	totalRows := d.Snapshot().Table("fact").NumRows()
	blocksSealed := len(d.Snapshot().Table("fact").Blocks())
	stats := st.Stats()
	st.Close()

	file := storeFile{
		Schema:     "aggchecker-store-bench/v1",
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		FactRows:   rows,
		Blocks:     blocksSealed,
	}

	// Cold open: store restore vs CSV re-parse of identical data.
	csvDir := filepath.Join(dir, "csv")
	if err := os.MkdirAll(csvDir, 0o755); err != nil {
		fail("%v", err)
	}
	snap := d.Snapshot()
	csvFiles := make([]string, 0, len(snap.Tables()))
	for _, tv := range snap.Tables() {
		path := filepath.Join(csvDir, tv.Name+".csv")
		if err := dumpCSV(path, tv); err != nil {
			fail("dump %s: %v", tv.Name, err)
		}
		csvFiles = append(csvFiles, path)
	}
	parseRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			src := db.NewCSVSource("bench", csvFiles...)
			if _, err := src.Open(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	restoreRes := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			s2, pdb, err := colstore.Open(storeDir)
			if err != nil {
				b.Fatal(err)
			}
			if pdb == nil {
				b.Fatal("store did not restore")
			}
			if _, err := db.RestoreDatabase(pdb); err != nil {
				b.Fatal(err)
			}
			s2.Close()
		}
	})
	file.ColdOpen = storeColdOpen{
		CSVParseNs:    float64(parseRes.T.Nanoseconds()) / float64(parseRes.N),
		RestoreNs:     float64(restoreRes.T.Nanoseconds()) / float64(restoreRes.N),
		DataBytes:     stats.DataBytes,
		ManifestBytes: stats.ManifestBytes,
	}
	file.ColdOpen.Speedup = file.ColdOpen.CSVParseNs / file.ColdOpen.RestoreNs
	fmt.Printf("cold open: csv parse %12.0f ns   store restore %12.0f ns   speedup x%.1f (%d blocks, %d rows)\n",
		file.ColdOpen.CSVParseNs, file.ColdOpen.RestoreNs, file.ColdOpen.Speedup, blocksSealed, totalRows)

	// Pruned-scan residency over a fresh mmapped restore: a fully
	// zone-refuted scan must fault zero column pages in.
	st2, pdb, err := colstore.Open(storeDir)
	if err != nil {
		fail("reopen: %v", err)
	}
	defer st2.Close()
	rdb, err := db.RestoreDatabase(pdb)
	if err != nil {
		fail("restore: %v", err)
	}
	if err := rdb.SetPersister(st2); err != nil {
		fail("set persister: %v", err)
	}
	if got := rdb.Snapshot().Table("fact").NumRows(); got != totalRows {
		fail("restored %d rows, want %d", got, totalRows)
	}
	e := sqlexec.NewEngine(rdb)
	factCol := func(c string) sqlexec.ColumnRef { return sqlexec.ColumnRef{Table: "fact", Column: c} }
	prunedQ := sqlexec.Query{Agg: sqlexec.Count, AggCol: sqlexec.ColumnRef{Table: "fact"},
		Preds: []sqlexec.Predicate{{Col: factCol("t"), Value: "-5"}}}
	fullQ := sqlexec.Query{Agg: sqlexec.Sum, AggCol: factCol("y")}

	resident0 := st2.Stats().ResidentBytes
	if _, err := e.Evaluate(prunedQ); err != nil {
		fail("pruned scan: %v", err)
	}
	residentPruned := st2.Stats().ResidentBytes
	pruned := e.Stats.BlocksPruned.Load()
	if pruned == 0 {
		fail("the refuted scan pruned no blocks — zone maps did not survive the restore")
	}
	if _, err := e.Evaluate(fullQ); err != nil {
		fail("full scan: %v", err)
	}
	residentFull := st2.Stats().ResidentBytes

	file.Pruning = storePruning{
		Supported:           resident0 >= 0,
		ResidentAfterOpen:   resident0,
		ResidentAfterPruned: residentPruned,
		ResidentAfterFull:   residentFull,
		BlocksPruned:        pruned,
	}
	if file.Pruning.Supported {
		file.Pruning.PrunedPageBytes = residentPruned - resident0
		if file.Pruning.PrunedPageBytes != 0 {
			fail("pruned scan faulted %d bytes of column pages in (want 0: refuted blocks must never be read)",
				file.Pruning.PrunedPageBytes)
		}
		if residentFull <= residentPruned {
			fail("full scan faulted no pages (%d -> %d): residency tracking is broken", residentPruned, residentFull)
		}
		fmt.Printf("pruned scan: %d blocks pruned, 0 pages faulted (full scan faults %d KiB)\n",
			pruned, (residentFull-residentPruned)/1024)
	} else {
		fmt.Printf("pruned scan: %d blocks pruned (page residency not measurable on %s)\n", pruned, runtime.GOOS)
	}

	// Compaction: reseal the restored database's blocks and compare a
	// clustered-band scan before and after.
	scanQ := sqlexec.Query{Agg: sqlexec.Sum, AggCol: factCol("x"),
		Preds: []sqlexec.Predicate{{Col: factCol("z"), Value: "z3"}}}
	beforeSnap := rdb.Snapshot()
	file.Compaction.BlocksBefore = len(beforeSnap.Table("fact").Blocks())
	file.Compaction.ZoneRowsBefore = beforeSnap.Table("fact").ZoneGranularity()
	file.Compaction.ScanRowsPerSecBefore = scanRowsPerSec(e, scanQ, totalRows, fail)

	if _, err := rdb.Compact(); err != nil {
		fail("compact: %v", err)
	}
	afterSnap := rdb.Snapshot()
	file.Compaction.BlocksAfter = len(afterSnap.Table("fact").Blocks())
	file.Compaction.ZoneRowsAfter = afterSnap.Table("fact").ZoneGranularity()
	if file.Compaction.BlocksAfter != 1 {
		fail("compaction left %d blocks, want 1", file.Compaction.BlocksAfter)
	}
	e2 := sqlexec.NewEngine(rdb)
	file.Compaction.ScanRowsPerSecAfter = scanRowsPerSec(e2, scanQ, totalRows, fail)
	file.Compaction.Resets = st2.Stats().Resets
	fmt.Printf("compaction: %d blocks -> %d (zone rows %d -> %d), scan %14.0f -> %14.0f rows/s\n",
		file.Compaction.BlocksBefore, file.Compaction.BlocksAfter,
		file.Compaction.ZoneRowsBefore, file.Compaction.ZoneRowsAfter,
		file.Compaction.ScanRowsPerSecBefore, file.Compaction.ScanRowsPerSecAfter)

	writeJSON(out, &file)
	if against != "" {
		guardStore(against, &file, tol)
	}
}

// scanRowsPerSec benchmarks one direct scan and normalizes by table rows.
func scanRowsPerSec(e *sqlexec.Engine, q sqlexec.Query, rows int, fail func(string, ...any)) float64 {
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := e.Evaluate(q); err != nil {
				b.Fatal(err)
			}
		}
	})
	nsPerOp := float64(res.T.Nanoseconds()) / float64(res.N)
	if nsPerOp <= 0 {
		fail("degenerate scan timing")
	}
	return float64(rows) / (nsPerOp * 1e-9)
}

// dumpCSV writes one table view as a CSV file. Benchmark values carry no
// commas or quotes, so plain joining round-trips exactly.
func dumpCSV(path string, tv *db.TableView) error {
	var sb strings.Builder
	cols := tv.Columns()
	for i, c := range cols {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(c.Name)
	}
	sb.WriteByte('\n')
	for row := 0; row < tv.NumRows(); row++ {
		for i, c := range cols {
			if i > 0 {
				sb.WriteByte(',')
			}
			if c.IsNull(row) {
				continue
			}
			if c.Kind == db.KindString {
				sb.WriteString(c.StringAt(row))
			} else {
				sb.WriteString(strconv.FormatFloat(c.Float(row), 'g', -1, 64))
			}
		}
		sb.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}

// guardStore is the -store regression gate: the restore-over-parse
// speedup is a same-run ratio (machine-portable), but it scales with row
// count, so the guard only compares records measured at the same
// fact_rows and skips otherwise (CI's smoke run regenerates at smoke
// scale; the committed seed is full scale).
func guardStore(path string, fresh *storeFile, tol float64) {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchcube: reading record %s: %v\n", path, err)
		os.Exit(1)
	}
	var old storeFile
	if err := json.Unmarshal(data, &old); err != nil {
		fmt.Fprintf(os.Stderr, "benchcube: parsing record %s: %v\n", path, err)
		os.Exit(1)
	}
	if old.FactRows != fresh.FactRows {
		fmt.Printf("guard store: SKIPPED - seed measured at fact_rows=%d, this run used %d; "+
			"cold-open speedup does not compare across scales\n", old.FactRows, fresh.FactRows)
		return
	}
	if old.ColdOpen.Speedup <= 0 {
		fmt.Printf("guard store: no recorded cold-open speedup, skipping\n")
		return
	}
	floor := old.ColdOpen.Speedup * (1 - tol)
	if fresh.ColdOpen.Speedup < floor {
		fmt.Fprintf(os.Stderr, "benchcube: REGRESSION store cold-open speedup x%.1f < floor x%.1f (seed x%.1f, tolerance %.0f%%)\n",
			fresh.ColdOpen.Speedup, floor, old.ColdOpen.Speedup, 100*tol)
		os.Exit(1)
	}
	fmt.Printf("guard store: cold-open speedup x%.1f >= floor x%.1f ok (seed x%.1f)\n",
		fresh.ColdOpen.Speedup, floor, old.ColdOpen.Speedup)
}
