// Command experiments regenerates the tables and figures of "Verifying
// Text Summaries of Relational Data Sets" (SIGMOD 2019) over the
// reproduction corpus.
//
// Usage:
//
//	experiments [-quick] <id>...
//	experiments all
//
// where <id> is one of: table3 table4 table5 table6 table8 table9 table10
// table11 figure6 figure7 figure8 figure9 figure10 figure11 figure12
// figure13. The -quick flag runs a reduced corpus with smaller evaluation
// budgets (for smoke testing).
package main

import (
	"flag"
	"fmt"
	"os"

	"aggchecker/internal/baselines"
	"aggchecker/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "reduced corpus and budgets")
	flag.Parse()
	ids := flag.Args()
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "usage: experiments [-quick] <table3|...|figure13|all>")
		os.Exit(2)
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = []string{
			"figure8", "figure9", "table5", "table6", "table9", "table10",
			"figure10", "figure11", "figure12", "figure13",
			"table3", "table4", "table8", "table11", "figure6", "figure7", "ablations",
		}
	}
	o := experiments.NewOptions(*quick)
	var studyBundle *experiments.StudyBundle
	study := func() *experiments.StudyBundle {
		if studyBundle == nil {
			studyBundle = experiments.RunStudy(o)
		}
		return studyBundle
	}
	w := os.Stdout
	for _, id := range ids {
		switch id {
		case "table3":
			experiments.PrintTable3(w, study())
		case "table4":
			experiments.PrintTable4(w, study())
		case "table5":
			context := experiments.RunContextAblation(o)
			modelRows := experiments.RunModelAblation(o)
			hits := experiments.RunHitsSweep(o, []int{1, 10, 20, 30})
			fm1 := experiments.RunClaimBusterFM(o, baselines.MaxSimilarity)
			fm2 := experiments.RunClaimBusterFM(o, baselines.MajorityVote)
			kb := experiments.RunClaimBusterKB(o)
			main := context[len(context)-1]
			main.Name = "AggChecker Automatic"
			experiments.PrintTable5(w, context, modelRows, hits, fm1, fm2, kb, main)
		case "table6":
			experiments.PrintTable6(w, experiments.RunTable6(o))
		case "table8":
			experiments.PrintTable8(w, study())
		case "table9":
			experiments.PrintTable9(w, experiments.RunTable9(o, 12))
		case "table10":
			experiments.PrintTable10(w, experiments.RunModelAblation(o))
		case "table11":
			experiments.PrintTable11(w, o, study())
		case "figure6":
			experiments.PrintFigure6(w, study())
		case "figure7":
			experiments.PrintFigure7(w, study())
		case "figure8":
			experiments.PrintFigure8(w, experiments.RunFigure8(o))
		case "figure9":
			experiments.PrintFigure9(w, experiments.RunFigure9(o))
		case "figure10":
			experiments.PrintFigure10(w, experiments.RunFigure10(o))
		case "figure11":
			experiments.PrintFigure11(w, experiments.RunContextAblation(o))
		case "figure12":
			experiments.PrintFigure12(w, experiments.RunFigure12(o,
				[]float64{0.5, 0.75, 0.9, 0.99, 0.999, 0.9999}))
		case "ablations":
			experiments.PrintDesignAblations(w, experiments.RunDesignAblations(o))
		case "figure13":
			hits := experiments.RunHitsSweep(o, []int{1, 10, 20, 30})
			aggs := experiments.RunAggColsSweep(o, []int{1, 2, 4, 8})
			experiments.PrintFigure13(w, hits, aggs)
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
			os.Exit(2)
		}
		fmt.Fprintln(w)
	}
}
