module aggchecker

go 1.24
