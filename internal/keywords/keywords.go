// Package keywords implements Algorithms 1 and 2 of the paper: extracting a
// weighted keyword context for each claim from the document structure, and
// matching it against the fragment indexes to obtain per-category relevance
// scores. The keyword sources beyond the claim sentence (previous sentence,
// paragraph start, synonyms, headlines) are individually toggleable — they
// are the ablation axes of Figure 11 and the first block of Table 5.
package keywords

import (
	"aggchecker/internal/document"
	"aggchecker/internal/fragments"
	"aggchecker/internal/ir"
	"aggchecker/internal/nlp"
	"aggchecker/internal/wordnet"
)

// ContextConfig selects the keyword sources of Algorithm 2.
type ContextConfig struct {
	UsePrevSentence   bool
	UseParagraphStart bool
	UseSynonyms       bool
	UseHeadlines      bool

	// NeighborWeight scales keywords from the previous sentence and the
	// paragraph's first sentence (0.4·m in Algorithm 2, m the minimum
	// same-sentence weight).
	NeighborWeight float64
	// HeadlineWeight scales headline keywords (0.7·m in Algorithm 2).
	HeadlineWeight float64
	// SynonymFactor scales a synonym relative to its source keyword.
	SynonymFactor float64
}

// DefaultContext returns the paper's configuration (all sources on).
func DefaultContext() ContextConfig {
	return ContextConfig{
		UsePrevSentence:   true,
		UseParagraphStart: true,
		UseSynonyms:       true,
		UseHeadlines:      true,
		NeighborWeight:    0.4,
		HeadlineWeight:    0.7,
		SynonymFactor:     0.5,
	}
}

// ClaimKeywords implements Algorithm 2: it assigns every context keyword of
// claim c a weight from the claim-sentence phrase tree and the document
// hierarchy. Returned terms are stemmed and deduplicated keeping the
// maximum weight.
func ClaimKeywords(c *document.Claim, cfg ContextConfig) []ir.WeightedTerm {
	set := newWeightSet()

	// Keywords in the claim sentence, weighted by inverse tree distance to
	// the claimed number.
	sent := c.Sentence
	tree := sent.Tree()
	minWeight := 1.0
	for _, tok := range sent.Tokens {
		if tok.Kind != nlp.Word || tok.IsStop() {
			continue
		}
		if tok.Pos >= c.TokenIndex && tok.Pos < c.TokenIndex+c.TokenSpan {
			continue // the claimed value itself
		}
		if _, isNum := nlp.NumberWordValue(tok.Lower); isNum {
			continue // other claims' number words are not context keywords
		}
		d := tree.Distance(tok.Pos, c.TokenIndex)
		if d == 0 {
			d = 1
		}
		w := 1.0 / float64(d)
		if w < minWeight {
			minWeight = w
		}
		set.add(tok.Stem, w)
	}
	m := minWeight

	// Previous sentence and paragraph start at 0.4·m.
	if cfg.UsePrevSentence {
		if prev := sent.Prev(); prev != nil {
			addSentence(set, prev, cfg.NeighborWeight*m)
		}
	}
	if cfg.UseParagraphStart {
		if first := sent.First(); first != nil && first != sent {
			// Skip when the paragraph start is also the previous sentence
			// and that source already contributed.
			if !(cfg.UsePrevSentence && first == sent.Prev()) {
				addSentence(set, first, cfg.NeighborWeight*m)
			}
		}
	}

	// Preceding headlines at 0.7·m, walking up the section hierarchy.
	if cfg.UseHeadlines {
		for _, sec := range sent.Paragraph.Section.Ancestors() {
			if sec.Headline == "" {
				continue
			}
			for _, tok := range sec.HeadlineTokens() {
				if tok.Kind == nlp.Word && !tok.IsStop() {
					set.add(tok.Stem, cfg.HeadlineWeight*m)
				}
			}
		}
	}

	// Claim-side synonym expansion (the "+Synonyms" ablation source).
	if cfg.UseSynonyms {
		base := set.items() // snapshot before expansion
		for _, it := range base {
			for _, syn := range wordnet.Synonyms(it.word) {
				set.add(nlp.Stem(syn), it.weight*cfg.SynonymFactor)
			}
		}
	}

	return set.terms()
}

func addSentence(set *weightSet, s *document.Sentence, weight float64) {
	for _, tok := range s.Tokens {
		if tok.Kind != nlp.Word || tok.IsStop() {
			continue
		}
		if _, isNum := nlp.NumberWordValue(tok.Lower); isNum {
			continue
		}
		set.add(tok.Stem, weight)
	}
}

// Scores holds the per-category relevance scores of one claim: fragment ID
// → score, for the fragments retrieved within the top-k budget.
type Scores struct {
	Funcs map[int]float64
	Cols  map[int]float64
	Preds map[int]float64
	// Keywords preserves the claim's keyword context for diagnostics.
	Keywords []ir.WeightedTerm
}

// Match implements Algorithm 1 for a single claim: it extracts the keyword
// context and queries the three fragment indexes. topK bounds the number of
// hits per category ("# Hits" in Table 5 / Figure 13); functions are always
// retrieved exhaustively — there are only eight.
func Match(cat *fragments.Catalog, claim *document.Claim, cfg ContextConfig, topK int) Scores {
	kw := ClaimKeywords(claim, cfg)
	s := Scores{
		Funcs:    hitsToMap(cat.FuncIndex.Search(kw, 0)),
		Cols:     hitsToMap(cat.ColIndex.Search(kw, topK)),
		Preds:    hitsToMap(cat.PredIndex.Search(kw, topK)),
		Keywords: kw,
	}
	return s
}

// MatchAll runs Match for every claim of a document.
func MatchAll(cat *fragments.Catalog, doc *document.Document, cfg ContextConfig, topK int) []Scores {
	out := make([]Scores, len(doc.Claims))
	for i, c := range doc.Claims {
		out[i] = Match(cat, c, cfg, topK)
	}
	return out
}

func hitsToMap(hits []ir.Hit) map[int]float64 {
	m := make(map[int]float64, len(hits))
	for _, h := range hits {
		m[h.ID] = h.Score
	}
	return m
}

// weightSet accumulates stem → max weight preserving insertion order.
type weightSet struct {
	weights map[string]float64
	order   []string
}

type weightItem struct {
	word   string
	weight float64
}

func newWeightSet() *weightSet {
	return &weightSet{weights: make(map[string]float64)}
}

func (s *weightSet) add(stem string, weight float64) {
	if stem == "" || weight <= 0 {
		return
	}
	if old, ok := s.weights[stem]; ok {
		if weight > old {
			s.weights[stem] = weight
		}
		return
	}
	s.weights[stem] = weight
	s.order = append(s.order, stem)
}

func (s *weightSet) items() []weightItem {
	out := make([]weightItem, 0, len(s.order))
	for _, w := range s.order {
		out = append(out, weightItem{word: w, weight: s.weights[w]})
	}
	return out
}

func (s *weightSet) terms() []ir.WeightedTerm {
	out := make([]ir.WeightedTerm, 0, len(s.order))
	for _, w := range s.order {
		out = append(out, ir.WeightedTerm{Term: w, Weight: s.weights[w]})
	}
	return out
}
