package keywords

import (
	"strings"
	"testing"

	"aggchecker/internal/db"
	"aggchecker/internal/document"
	"aggchecker/internal/fragments"
	"aggchecker/internal/nlp"
)

const nflHTML = `<h1>The NFL's Uneven History Of Punishing Domestic Violence</h1>
<h2>Lifetime bans</h2>
<p>There were only four previous lifetime bans in my database.
Three were for repeated substance abuse, one was for gambling.</p>`

func parseNFL(t *testing.T) *document.Document {
	t.Helper()
	doc := document.ParseHTML(nflHTML)
	if len(doc.Claims) != 3 {
		t.Fatalf("claims = %d, want 3", len(doc.Claims))
	}
	return doc
}

func TestClaimKeywordsTreeWeights(t *testing.T) {
	doc := parseNFL(t)
	// Claim "one" (value 1): "gambling" must outweigh "substance"/"abuse".
	claimOne := doc.Claims[2]
	kw := ClaimKeywords(claimOne, DefaultContext())
	var wGamble, wSubstance float64
	for _, term := range kw {
		switch term.Term {
		case nlp.Stem("gambling"):
			wGamble = term.Weight
		case nlp.Stem("substance"):
			wSubstance = term.Weight
		}
	}
	if wGamble == 0 || wSubstance == 0 {
		t.Fatalf("keywords missing: gambling=%v substance=%v (%v)", wGamble, wSubstance, kw)
	}
	if wGamble <= wSubstance {
		t.Errorf("gambling (%v) should outweigh substance (%v) for claim 'one'", wGamble, wSubstance)
	}
	// And the reverse for claim "three".
	claimThree := doc.Claims[1]
	kw3 := ClaimKeywords(claimThree, DefaultContext())
	wGamble, wSubstance = 0, 0
	for _, term := range kw3 {
		switch term.Term {
		case nlp.Stem("gambling"):
			wGamble = term.Weight
		case nlp.Stem("substance"):
			wSubstance = term.Weight
		}
	}
	if wSubstance <= wGamble {
		t.Errorf("substance (%v) should outweigh gambling (%v) for claim 'three'", wSubstance, wGamble)
	}
}

func TestClaimKeywordsContextSources(t *testing.T) {
	doc := parseNFL(t)
	claimOne := doc.Claims[2] // second sentence: context must supply "lifetime"
	full := ClaimKeywords(claimOne, DefaultContext())
	hasLifetime := false
	hasHeadlineWord := false
	for _, term := range full {
		if term.Term == nlp.Stem("lifetime") {
			hasLifetime = true
		}
		if term.Term == nlp.Stem("punishing") {
			hasHeadlineWord = true
		}
	}
	if !hasLifetime {
		t.Error("previous-sentence keyword 'lifetime' missing from context")
	}
	if !hasHeadlineWord {
		t.Error("headline keyword 'punishing' missing from context")
	}

	// Sentence-only configuration loses both.
	bare := ClaimKeywords(claimOne, ContextConfig{})
	for _, term := range bare {
		if term.Term == nlp.Stem("lifetime") {
			t.Error("sentence-only context should not include 'lifetime'")
		}
		if term.Term == nlp.Stem("punishing") {
			t.Error("sentence-only context should not include headline words")
		}
	}
}

func TestClaimKeywordsNeighborWeightScaling(t *testing.T) {
	doc := parseNFL(t)
	claimOne := doc.Claims[2]
	cfg := DefaultContext()
	kw := ClaimKeywords(claimOne, cfg)
	// Context keywords are scaled by m (the minimum in-sentence weight), so
	// they must be strictly below the maximum same-sentence weight.
	var maxSent, lifetime float64
	for _, term := range kw {
		if term.Term == nlp.Stem("gambling") && term.Weight > maxSent {
			maxSent = term.Weight
		}
		if term.Term == nlp.Stem("lifetime") {
			lifetime = term.Weight
		}
	}
	if lifetime >= maxSent {
		t.Errorf("context keyword weight %v should be below in-sentence max %v", lifetime, maxSent)
	}
}

func TestClaimKeywordsExcludesNumbers(t *testing.T) {
	doc := parseNFL(t)
	for _, c := range doc.Claims {
		for _, term := range ClaimKeywords(c, DefaultContext()) {
			if term.Term == "three" || term.Term == "four" || term.Term == "one" {
				t.Errorf("claim %d context contains number word %q", c.ID, term.Term)
			}
		}
	}
}

func TestClaimKeywordsSynonyms(t *testing.T) {
	doc := parseNFL(t)
	claimFour := doc.Claims[0] // "four previous lifetime bans"
	cfg := DefaultContext()
	kw := ClaimKeywords(claimFour, cfg)
	hasSuspension := false
	for _, term := range kw {
		if term.Term == nlp.Stem("suspension") {
			hasSuspension = true
		}
	}
	if !hasSuspension {
		t.Error("synonym 'suspension' of 'bans' missing")
	}
	cfg.UseSynonyms = false
	for _, term := range ClaimKeywords(claimFour, cfg) {
		if term.Term == nlp.Stem("suspension") {
			t.Error("synonyms disabled but synonym term present")
		}
	}
}

func TestMatchScoresGroundTruthFragments(t *testing.T) {
	csvData := `name,team,games,category,year
Art Schlichter,IND,indef,gambling,1983
Josh Gordon,CLE,indef,substance abuse repeated offense,2014
Stanley Wilson,CIN,indef,substance abuse repeated offense,1989
Leon Lett,DAL,4,substance abuse,1995
`
	tbl, err := db.LoadCSV(strings.NewReader(csvData), "nflsuspensions")
	if err != nil {
		t.Fatal(err)
	}
	d := db.NewDatabase("nfl")
	d.MustAddTable(tbl)
	cat := fragments.BuildCatalog(d, fragments.DefaultOptions())
	doc := parseNFL(t)
	claimOne := doc.Claims[2]
	s := Match(cat, claimOne, DefaultContext(), 20)
	// The gambling predicate fragment must be retrieved with a positive
	// score.
	found := false
	for id, score := range s.Preds {
		f := cat.Fragment(id)
		if f.Value == "gambling" && score > 0 {
			found = true
		}
	}
	if !found {
		t.Error("gambling predicate not retrieved for claim 'one'")
	}
	// The claim sentence never names an aggregation function — the paper
	// reports 30% of claims are implicit like this — so function scores may
	// legitimately be empty; the probabilistic model smooths over them.
	doc2 := document.ParseText("The total number of suspensions is 4.")
	s2 := Match(cat, doc2.Claims[0], DefaultContext(), 20)
	if len(s2.Funcs) == 0 {
		t.Error("explicit 'total number' should retrieve function fragments")
	}
}

func TestMatchAllLength(t *testing.T) {
	csvData := "a,b\nx,1\ny,2\n"
	tbl, err := db.LoadCSV(strings.NewReader(csvData), "t")
	if err != nil {
		t.Fatal(err)
	}
	d := db.NewDatabase("d")
	d.MustAddTable(tbl)
	cat := fragments.BuildCatalog(d, fragments.DefaultOptions())
	doc := document.ParseText("There are 2 rows. The average b is 1.5.")
	ss := MatchAll(cat, doc, DefaultContext(), 10)
	if len(ss) != len(doc.Claims) {
		t.Errorf("MatchAll returned %d scores for %d claims", len(ss), len(doc.Claims))
	}
}

func TestTopKBudget(t *testing.T) {
	// With topK=1 at most one predicate fragment is retrieved per claim.
	csvData := `games,category
indef,gambling
4,substance abuse
2,personal conduct
`
	tbl, err := db.LoadCSV(strings.NewReader(csvData), "nflsuspensions")
	if err != nil {
		t.Fatal(err)
	}
	d := db.NewDatabase("nfl")
	d.MustAddTable(tbl)
	cat := fragments.BuildCatalog(d, fragments.DefaultOptions())
	doc := parseNFL(t)
	s := Match(cat, doc.Claims[2], DefaultContext(), 1)
	if len(s.Preds) > 1 {
		t.Errorf("topK=1 returned %d predicate scores", len(s.Preds))
	}
}
