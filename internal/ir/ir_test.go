package ir

import (
	"math/rand"
	"testing"
)

func wt(pairs ...interface{}) []WeightedTerm {
	var out []WeightedTerm
	for i := 0; i < len(pairs); i += 2 {
		out = append(out, WeightedTerm{Term: pairs[i].(string), Weight: pairs[i+1].(float64)})
	}
	return out
}

func buildSample() *Index {
	ix := NewIndex()
	ix.Add(1, wt("game", 1.0, "suspens", 1.0, "indef", 1.0))
	ix.Add(2, wt("categori", 1.0, "gambl", 1.0, "suspens", 0.5))
	ix.Add(3, wt("categori", 1.0, "substanc", 1.0, "abus", 1.0, "suspens", 0.5))
	ix.Add(4, wt("player", 1.0, "name", 1.0))
	ix.Build()
	return ix
}

func TestSearchRanking(t *testing.T) {
	ix := buildSample()
	hits := ix.Search(wt("gambl", 1.0), 10)
	if len(hits) != 1 || hits[0].ID != 2 {
		t.Fatalf("Search(gambl) = %v, want doc 2 only", hits)
	}
	hits = ix.Search(wt("suspens", 1.0, "indef", 1.0), 10)
	if len(hits) == 0 || hits[0].ID != 1 {
		t.Fatalf("Search(suspens indef) top hit = %v, want doc 1", hits)
	}
}

func TestSearchQueryWeights(t *testing.T) {
	ix := buildSample()
	// Heavier weight on "gambl" should rank doc 2 above doc 3 even though
	// both match "categori".
	hits := ix.Search(wt("categori", 0.2, "gambl", 1.0), 10)
	if len(hits) < 2 || hits[0].ID != 2 {
		t.Fatalf("weighted search = %v, want doc 2 first", hits)
	}
	// Flip the emphasized term.
	hits = ix.Search(wt("categori", 0.2, "substanc", 1.0), 10)
	if len(hits) < 2 || hits[0].ID != 3 {
		t.Fatalf("weighted search = %v, want doc 3 first", hits)
	}
}

func TestSearchTopK(t *testing.T) {
	ix := buildSample()
	hits := ix.Search(wt("suspens", 1.0), 2)
	if len(hits) != 2 {
		t.Fatalf("top-2 returned %d hits", len(hits))
	}
}

func TestSearchNoMatch(t *testing.T) {
	ix := buildSample()
	if hits := ix.Search(wt("zzz", 1.0), 5); len(hits) != 0 {
		t.Fatalf("unexpected hits %v", hits)
	}
	if hits := ix.Search(nil, 5); len(hits) != 0 {
		t.Fatalf("nil query returned hits %v", hits)
	}
}

func TestIDFPrefersRareTerms(t *testing.T) {
	ix := NewIndex()
	for i := 0; i < 50; i++ {
		ix.Add(i, wt("common", 1.0))
	}
	ix.Add(100, wt("common", 1.0, "rare", 1.0))
	ix.Add(101, wt("rare", 1.0))
	ix.Build()
	hits := ix.Search(wt("common", 1.0, "rare", 1.0), 3)
	// The two docs containing the rare term must beat every common-only doc
	// (BM25 length normalization decides their relative order).
	top := map[int]bool{hits[0].ID: true, hits[1].ID: true}
	if !top[100] || !top[101] {
		t.Fatalf("docs with the rare term should occupy the top two ranks: %v", hits)
	}
	if hits[2].Score >= hits[1].Score {
		t.Fatalf("common-only doc should score below rare-term docs: %v", hits)
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	ix := NewIndex()
	ix.Add(9, wt("x", 1.0))
	ix.Add(3, wt("x", 1.0))
	ix.Add(7, wt("x", 1.0))
	ix.Build()
	hits := ix.Search(wt("x", 1.0), 10)
	if hits[0].ID != 3 || hits[1].ID != 7 || hits[2].ID != 9 {
		t.Fatalf("ties not broken by id: %v", hits)
	}
}

func TestDuplicateTermsAccumulate(t *testing.T) {
	ix := NewIndex()
	ix.Add(1, wt("a", 1.0, "a", 1.0, "b", 1.0))
	ix.Add(2, wt("a", 1.0, "b", 1.0))
	ix.Build()
	hits := ix.Search(wt("a", 1.0), 2)
	if len(hits) != 2 || hits[0].ID != 1 {
		t.Fatalf("higher tf should score higher: %v", hits)
	}
}

func TestSearchScoresMonotoneInWeight(t *testing.T) {
	ix := buildSample()
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		w := rng.Float64() + 0.01
		lo := ix.Search(wt("gambl", w), 1)
		hi := ix.Search(wt("gambl", w*2), 1)
		if len(lo) != 1 || len(hi) != 1 {
			t.Fatal("expected hits")
		}
		if hi[0].Score <= lo[0].Score {
			t.Fatalf("score not monotone in query weight: %v vs %v", hi[0], lo[0])
		}
	}
}

func TestLazyBuild(t *testing.T) {
	ix := NewIndex()
	ix.Add(1, wt("a", 1.0))
	// Search without an explicit Build call must still work.
	if hits := ix.Search(wt("a", 1.0), 1); len(hits) != 1 {
		t.Fatalf("lazy build failed: %v", hits)
	}
	// Adding after Build then searching again re-finalizes.
	ix.Add(2, wt("a", 1.0))
	if hits := ix.Search(wt("a", 1.0), 5); len(hits) != 2 {
		t.Fatalf("re-build after Add failed: %v", hits)
	}
}
