// Package ir implements the information-retrieval engine AggChecker uses to
// rank query fragments by claim keywords. It substitutes for Apache Lucene
// (§4 of the paper): documents are the keyword sets of query fragments,
// queries are the weighted claim keyword sets of Algorithm 2, and scores are
// a BM25-flavoured TF-IDF. AggChecker consumes the scores only after
// per-category normalization inside the probabilistic model, so any
// well-behaved ranking function reproduces the paper's signal; BM25 is the
// modern default of the engine the paper used.
package ir

import (
	"math"
	"sort"
)

// BM25 constants (Lucene defaults).
const (
	k1 = 1.2
	b  = 0.75
)

// WeightedTerm is a term with a weight. For documents the weight acts as a
// fractional term frequency (fragment keywords derived from a literal value
// weigh more than ones derived from the containing table name); for queries
// it is the claim-keyword weight of Algorithm 2.
type WeightedTerm struct {
	Term   string
	Weight float64
}

// Hit is one retrieval result.
type Hit struct {
	ID    int
	Score float64
}

type posting struct {
	doc int // index into docLens
	tf  float64
}

// Index is an in-memory inverted index. Add all documents, then call Build
// before searching. The zero value is not usable; use NewIndex.
type Index struct {
	postings map[string][]posting
	docIDs   []int
	docLens  []float64
	avgLen   float64
	idf      map[string]float64
	built    bool
}

// NewIndex returns an empty index.
func NewIndex() *Index {
	return &Index{postings: make(map[string][]posting)}
}

// Add indexes a document under the caller-assigned id. Terms should already
// be normalized (lowercased, stemmed). Duplicate terms accumulate weight.
func (ix *Index) Add(id int, terms []WeightedTerm) {
	doc := len(ix.docIDs)
	ix.docIDs = append(ix.docIDs, id)
	var length float64
	agg := make(map[string]float64, len(terms))
	for _, t := range terms {
		if t.Term == "" || t.Weight <= 0 {
			continue
		}
		agg[t.Term] += t.Weight
		length += t.Weight
	}
	for term, tf := range agg {
		ix.postings[term] = append(ix.postings[term], posting{doc: doc, tf: tf})
	}
	ix.docLens = append(ix.docLens, length)
	ix.built = false
}

// Build finalizes statistics (document frequencies, average length). It must
// be called after the last Add and before the first Search; Search calls it
// lazily as a convenience.
func (ix *Index) Build() {
	n := len(ix.docIDs)
	ix.idf = make(map[string]float64, len(ix.postings))
	var total float64
	for _, l := range ix.docLens {
		total += l
	}
	if n > 0 {
		ix.avgLen = total / float64(n)
	}
	if ix.avgLen == 0 {
		ix.avgLen = 1
	}
	for term, plist := range ix.postings {
		df := float64(len(plist))
		ix.idf[term] = math.Log(1 + (float64(n)-df+0.5)/(df+0.5))
	}
	ix.built = true
}

// Len returns the number of indexed documents.
func (ix *Index) Len() int { return len(ix.docIDs) }

// Search scores all documents against the weighted query and returns the
// top k hits by score (ties broken by ascending id for determinism). k <= 0
// returns all matching documents.
func (ix *Index) Search(query []WeightedTerm, k int) []Hit {
	if !ix.built {
		ix.Build()
	}
	scores := make(map[int]float64)
	for _, qt := range query {
		if qt.Weight <= 0 {
			continue
		}
		plist, ok := ix.postings[qt.Term]
		if !ok {
			continue
		}
		idf := ix.idf[qt.Term]
		for _, p := range plist {
			norm := k1 * (1 - b + b*ix.docLens[p.doc]/ix.avgLen)
			sat := p.tf * (k1 + 1) / (p.tf + norm)
			scores[p.doc] += qt.Weight * idf * sat
		}
	}
	hits := make([]Hit, 0, len(scores))
	for doc, s := range scores {
		hits = append(hits, Hit{ID: ix.docIDs[doc], Score: s})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].ID < hits[j].ID
	})
	if k > 0 && len(hits) > k {
		hits = hits[:k]
	}
	return hits
}
