package core

import (
	"context"
	"sync"
	"testing"

	"aggchecker/internal/corpus"
	"aggchecker/internal/db"
)

// TestServiceEvictionRacesCheckAndAudit stresses the Service LRU under
// -race: with MaxResident(1), every request for a different database
// evicts the previously resident checker while Check and Audit calls are
// mid-flight on it. In-flight work must keep its checker (and its engine
// cache) alive and correct; Status must tolerate concurrent eviction.
func TestServiceEvictionRacesCheckAndAudit(t *testing.T) {
	cfg := quickCfg()
	cfg.Model.EvalBudget = 150
	cfg.Model.MaxEMIters = 2

	type fixture struct {
		name string
		sc   *corpus.SharedCorpus
	}
	var fixtures []fixture
	for i, domain := range []string{"sports", "politics"} {
		sc, err := corpus.GenerateSharedCorpus(domain, int64(50+i), 2, 4, 1)
		if err != nil {
			t.Fatal(err)
		}
		fixtures = append(fixtures, fixture{domain, sc})
	}

	svc := NewService(WithDefaultConfig(cfg), WithMaxResident(1))
	for _, f := range fixtures {
		f := f
		if err := svc.Register(f.name, func(context.Context) (*db.Database, error) { return f.sc.DB, nil }); err != nil {
			t.Fatal(err)
		}
	}

	const rounds = 3
	var wg sync.WaitGroup
	ctx := context.Background()
	for _, f := range fixtures {
		f := f
		// One auditor and one checker per database, all racing the LRU.
		wg.Add(2)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				rep, err := svc.Audit(ctx, f.name, auditDocsOf(f.sc), WithAuditConcurrency(2))
				if err != nil {
					t.Errorf("audit %s: %v", f.name, err)
					return
				}
				if rep.Failed != 0 {
					t.Errorf("audit %s: %d failed docs", f.name, rep.Failed)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if _, err := svc.Check(ctx, f.name, f.sc.Docs[0].Doc); err != nil {
					t.Errorf("check %s: %v", f.name, err)
					return
				}
			}
		}()
	}
	// Status reader racing evictions (it snapshots engine cache usage).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds*4; r++ {
			for _, f := range fixtures {
				if _, err := svc.Status(f.name); err != nil {
					t.Errorf("status %s: %v", f.name, err)
					return
				}
			}
		}
	}()
	wg.Wait()
}
