package core

import (
	"fmt"
	"strings"

	"aggchecker/internal/model"
)

// ANSI escape codes for terminal markup; RenderOptions can disable them.
const (
	ansiGreen  = "\x1b[32m"
	ansiRed    = "\x1b[31m"
	ansiYellow = "\x1b[33m"
	ansiReset  = "\x1b[0m"
)

// RenderOptions controls report rendering.
type RenderOptions struct {
	Color bool
	// TopQueries is how many query translations to print per claim.
	TopQueries int
}

// RenderText formats the report in the spirit of the AggChecker interface
// (Figure 3): each claim with its verdict, the most likely query
// translation, its result, and the runner-up translations.
func (r *Report) RenderText(opts RenderOptions) string {
	var sb strings.Builder
	paint := func(color, s string) string {
		if !opts.Color {
			return s
		}
		return color + s + ansiReset
	}
	if r.Document.Title != "" {
		fmt.Fprintf(&sb, "%s\n%s\n", r.Document.Title, strings.Repeat("=", len(r.Document.Title)))
	}
	errs := 0
	for _, cr := range r.Result.Claims {
		verdict := paint(ansiGreen, "OK    ")
		if cr.Erroneous {
			verdict = paint(ansiRed, "WRONG ")
			errs++
		} else if cr.PCorrect < 0.5 {
			verdict = paint(ansiYellow, "CHECK ")
		}
		fmt.Fprintf(&sb, "%s claim %q in: %s\n", verdict, cr.Claim.Text(), ellipsis(cr.Claim.Sentence.Text, 90))
		n := opts.TopQueries
		if n <= 0 {
			n = 3
		}
		if n > len(cr.Ranked) {
			n = len(cr.Ranked)
		}
		for i := 0; i < n; i++ {
			rq := cr.Ranked[i]
			mark := "≠"
			if rq.Matches {
				mark = "="
			}
			fmt.Fprintf(&sb, "        %d. p=%.3f  %s  → %.6g %s %s\n",
				i+1, rq.Prob, rq.Query.Describe(), rq.Result, mark, cr.Claim.Text())
		}
	}
	fmt.Fprintf(&sb, "\n%d claims, %d tentatively marked erroneous, total %v (query %v)\n",
		len(r.Result.Claims), errs, r.TotalTime.Round(1000000), r.QueryTime.Round(1000000))
	return sb.String()
}

// Markup re-renders the document text with inline claim annotations, the
// textual analogue of the color markup of Figure 3(a).
func (r *Report) Markup() string {
	byID := make(map[int]model.ClaimResult, len(r.Result.Claims))
	for _, cr := range r.Result.Claims {
		byID[cr.Claim.ID] = cr
	}
	var sb strings.Builder
	for _, sent := range r.Document.Sentences {
		text := sent.Text
		// Annotate claims right-to-left so earlier offsets stay valid.
		for i := len(r.Result.Claims) - 1; i >= 0; i-- {
			cr := r.Result.Claims[i]
			if cr.Claim.Sentence != sent {
				continue
			}
			tag := "[OK]"
			if cr.Erroneous {
				if best := cr.Best(); best != nil {
					tag = fmt.Sprintf("[WRONG→%.6g]", best.Result)
				} else {
					tag = "[WRONG]"
				}
			}
			needle := cr.Claim.Text()
			if idx := strings.Index(text, needle); idx >= 0 {
				text = text[:idx+len(needle)] + tag + text[idx+len(needle):]
			}
		}
		sb.WriteString(text)
		sb.WriteString("\n")
	}
	return sb.String()
}

func ellipsis(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
