package core

import (
	"context"
	"math"
	"sync/atomic"
	"testing"

	"aggchecker/internal/corpus"
	"aggchecker/internal/db"
)

func auditDocsOf(sc *corpus.SharedCorpus) []AuditDoc {
	docs := make([]AuditDoc, len(sc.Docs))
	for i, d := range sc.Docs {
		docs[i] = AuditDoc{Name: d.Name, Doc: d.Doc}
	}
	return docs
}

// assertReportsIdentical requires bit-for-bit identical verdicts: same
// erroneous flags, same confidences, and the same ranked translations with
// the same query results. Exact float equality is deliberate — audit mode
// promises the same numbers as isolated checking, not close ones.
func assertReportsIdentical(t *testing.T, label string, want, got *Report) {
	t.Helper()
	if got == nil {
		t.Fatalf("%s: no report", label)
	}
	if len(want.Claims()) != len(got.Claims()) {
		t.Fatalf("%s: claims = %d, want %d", label, len(got.Claims()), len(want.Claims()))
	}
	for i := range want.Claims() {
		w, g := want.Claims()[i], got.Claims()[i]
		if g.Erroneous != w.Erroneous {
			t.Errorf("%s claim %d: erroneous = %v, want %v", label, i, g.Erroneous, w.Erroneous)
		}
		if g.PCorrect != w.PCorrect {
			t.Errorf("%s claim %d: p = %v, want %v", label, i, g.PCorrect, w.PCorrect)
		}
		if len(g.Ranked) != len(w.Ranked) {
			t.Fatalf("%s claim %d: ranked = %d, want %d", label, i, len(g.Ranked), len(w.Ranked))
		}
		for j := range w.Ranked {
			wr, gr := w.Ranked[j], g.Ranked[j]
			if gr.Query.Key() != wr.Query.Key() {
				t.Errorf("%s claim %d rank %d: query %s, want %s", label, i, j, gr.Query.Key(), wr.Query.Key())
			}
			if gr.Prob != wr.Prob || gr.Matches != wr.Matches {
				t.Errorf("%s claim %d rank %d: prob/match %v/%v, want %v/%v",
					label, i, j, gr.Prob, gr.Matches, wr.Prob, wr.Matches)
			}
			if gr.Result != wr.Result && !(math.IsNaN(gr.Result) && math.IsNaN(wr.Result)) {
				t.Errorf("%s claim %d rank %d: result %v, want %v", label, i, j, gr.Result, wr.Result)
			}
		}
	}
}

// TestAuditMatchesIsolatedChecks is the differential suite pinning the
// tentpole invariant: audit-mode verdicts are bit-for-bit identical to
// checking each document in isolation, across randomized corpora whose
// documents mix overlapping and disjoint predicate scopes (each document
// picks its own theme column and sections over the shared tables).
func TestAuditMatchesIsolatedChecks(t *testing.T) {
	for _, tt := range []struct {
		domain string
		seed   int64
		nDocs  int
	}{
		{"sports", 42, 8},
		{"politics", 7, 6},
		{"survey", 99, 10},
	} {
		sc, err := corpus.GenerateSharedCorpus(tt.domain, tt.seed, tt.nDocs, 5, 1)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := NewChecker(sc.DB, quickCfg()).Audit(context.Background(), auditDocsOf(sc))
		if err != nil {
			t.Fatalf("%s: audit: %v", tt.domain, err)
		}
		if rep.Checked != tt.nDocs || rep.Failed != 0 {
			t.Fatalf("%s: checked %d failed %d, want %d/0", tt.domain, rep.Checked, rep.Failed, tt.nDocs)
		}
		if rep.SharedPasses() == 0 {
			t.Errorf("%s: no shared passes across %d concurrent documents", tt.domain, tt.nDocs)
		}
		if rep.Stats["window_flushes"] == 0 || rep.Stats["window_batches"] == 0 {
			t.Errorf("%s: window never engaged: %+v", tt.domain, rep.Stats)
		}
		// Isolated baseline: a fresh checker (fresh engine, cold cache) per
		// corpus, each document checked alone.
		iso := NewChecker(sc.DB, quickCfg())
		for i, d := range sc.Docs {
			want, err := iso.Check(context.Background(), d.Doc)
			if err != nil {
				t.Fatal(err)
			}
			assertReportsIdentical(t, tt.domain+"/"+d.Name, want, rep.Docs[i].Report)
			if rep.Docs[i].Name != d.Name {
				t.Errorf("doc %d: name %q, want %q", i, rep.Docs[i].Name, d.Name)
			}
		}
	}
}

// copyRows duplicates n existing rows of the table as Append payloads, so
// append tests grow the data without changing its value distribution shape.
func copyRows(tbl *db.Table, from, n int) [][]any {
	var rows [][]any
	for r := from; r < from+n && r < tbl.NumRows(); r++ {
		row := make([]any, len(tbl.Columns))
		for ci, col := range tbl.Columns {
			if col.Kind == db.KindString {
				row[ci] = col.StringAt(r)
			} else {
				row[ci] = col.Float(r)
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// TestAuditMatchesIsolatedWithAppends pins the snapshot-version grouping:
// rows committed between documents must not leak across the planning
// window. The audit runs with concurrency 1 (progress fires strictly
// between documents), appending rows mid-corpus; the isolated baseline
// replays the same append schedule against an identically generated
// database.
func TestAuditMatchesIsolatedWithAppends(t *testing.T) {
	const nDocs, appendAt = 6, 2
	mk := func() *corpus.SharedCorpus {
		sc, err := corpus.GenerateSharedCorpus("economy", 123, nDocs, 5, 1)
		if err != nil {
			t.Fatal(err)
		}
		return sc
	}
	auditSC, isoSC := mk(), mk()

	appendAndCommit := func(d *db.Database) {
		tbl := d.Tables()[0]
		if err := d.Append(tbl.Name, copyRows(tbl, 0, 12)...); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Commit(); err != nil {
			t.Fatal(err)
		}
	}

	rep, err := NewChecker(auditSC.DB, quickCfg()).Audit(context.Background(), auditDocsOf(auditSC),
		WithAuditConcurrency(1),
		WithAuditProgress(func(i int, _ DocReport) {
			if i == appendAt {
				appendAndCommit(auditSC.DB)
			}
		}))
	if err != nil {
		t.Fatal(err)
	}

	iso := NewChecker(isoSC.DB, quickCfg())
	for i, d := range isoSC.Docs {
		want, err := iso.Check(context.Background(), d.Doc)
		if err != nil {
			t.Fatal(err)
		}
		assertReportsIdentical(t, d.Name, want, rep.Docs[i].Report)
		if i == appendAt {
			appendAndCommit(isoSC.DB)
		}
	}
}

// TestAuditCancellation: cancelling mid-audit stops feeding documents,
// reports per-document errors for the unfed remainder, and surfaces the
// context error.
func TestAuditCancellation(t *testing.T) {
	sc, err := corpus.GenerateSharedCorpus("sports", 5, 6, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var fired atomic.Bool
	rep, err := NewChecker(sc.DB, quickCfg()).Audit(ctx, auditDocsOf(sc),
		WithAuditConcurrency(1),
		WithAuditProgress(func(i int, _ DocReport) {
			if !fired.Swap(true) {
				cancel()
			}
		}))
	if err == nil {
		t.Fatal("audit returned nil error after cancellation")
	}
	if rep.Checked+rep.Failed != len(sc.Docs) {
		t.Fatalf("checked %d + failed %d != %d docs", rep.Checked, rep.Failed, len(sc.Docs))
	}
	if rep.Failed == 0 {
		t.Error("cancellation failed no documents")
	}
	for _, dr := range rep.Docs {
		if dr.Report == nil && dr.Err == nil {
			t.Errorf("doc %s: neither report nor error", dr.Name)
		}
	}
}

// TestAuditReportTotals: corpus totals agree with the per-document reports
// and the cache snapshot is populated.
func TestAuditReportTotals(t *testing.T) {
	sc, err := corpus.GenerateSharedCorpus("reference", 11, 5, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := NewChecker(sc.DB, quickCfg()).Audit(context.Background(), auditDocsOf(sc))
	if err != nil {
		t.Fatal(err)
	}
	claims, errs := 0, 0
	for _, dr := range rep.Docs {
		claims += len(dr.Report.Claims())
		errs += len(dr.Report.ErroneousClaims())
	}
	if rep.Claims != claims || rep.Erroneous != errs {
		t.Errorf("totals %d/%d, want %d/%d", rep.Claims, rep.Erroneous, claims, errs)
	}
	if rep.Cache == nil {
		t.Fatal("no cache stats")
	}
	if rep.Cache.Entries <= 0 || rep.Cache.Bytes <= 0 {
		t.Errorf("cache residency empty: %+v", rep.Cache)
	}
	if rep.Cache.Hits == 0 {
		t.Error("corpus audit recorded no cache hits")
	}
	if rep.Cache.NsSaved <= 0 || rep.Cache.BytesSaved <= 0 {
		t.Errorf("cache economics empty: ns=%d bytes=%d", rep.Cache.NsSaved, rep.Cache.BytesSaved)
	}
}

// TestStatusReportsCacheStats: cube-cache residency shows up in Status for
// an ordinary resident database, outside audit mode (satellite of the
// corpus-audit change).
func TestStatusReportsCacheStats(t *testing.T) {
	tc := corpus.MustLoad().Cases[0]
	svc := NewService(WithDefaultConfig(quickCfg()))
	if err := svc.Register("nfl", OpenFunc(func(context.Context) (*db.Database, error) { return tc.DB, nil })); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Check(context.Background(), "nfl", tc.Doc); err != nil {
		t.Fatal(err)
	}
	st, err := svc.Status("nfl")
	if err != nil {
		t.Fatal(err)
	}
	if st.Cache == nil {
		t.Fatal("Status.Cache nil for resident database")
	}
	if st.Cache.Entries <= 0 || st.Cache.Bytes <= 0 {
		t.Errorf("cache empty after a check: %+v", st.Cache)
	}
	if st.Cache.Misses == 0 {
		t.Error("no cache misses recorded after a cold check")
	}
}
