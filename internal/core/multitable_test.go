package core

import (
	"strings"
	"testing"

	"aggchecker/internal/db"
	"aggchecker/internal/sqlexec"
)

// multiTableDB builds a two-table schema joined by a PK-FK edge, in the
// spirit of the paper's Wikipedia test cases ("the three Wikipedia articles
// reference a total of six tables"): players referencing their teams.
func multiTableDB(t *testing.T) *db.Database {
	t.Helper()
	players, err := db.LoadCSV(strings.NewReader(`player,team_id,goals,salary
Jordan Whitfield,1,12,90000
Casey Okafor,1,7,80000
Morgan Delgado,1,3,60000
Avery Petrov,2,15,120000
Riley Nakamura,2,9,95000
Quinn Haugen,2,1,40000
Hayden Brandt,3,22,150000
Parker Marchetti,3,4,55000
Rowan Kowalski,3,6,70000
Skyler Abernathy,3,2,45000
`), "players")
	if err != nil {
		t.Fatal(err)
	}
	teams, err := db.LoadCSV(strings.NewReader(`team_id,team_name,division
1,rockets,east
2,comets,west
3,pioneers,east
`), "teams")
	if err != nil {
		t.Fatal(err)
	}
	teams.PrimaryKey = "team_id"
	d := db.NewDatabase("league")
	d.MustAddTable(players)
	d.MustAddTable(teams)
	d.MustAddForeignKey(db.ForeignKey{
		FromTable: "players", FromColumn: "team_id",
		ToTable: "teams", ToColumn: "team_id",
	})
	return d
}

// The article's claims anchor the fact table through aggregation columns
// (goals, salary) while restricting the dimension table (teams.division):
// exactly the query shape that requires the PK-FK join. The counting claim
// restricts teams alone — under the paper's FROM-inference rule (§4.4: the
// FROM clause contains the tables of the referenced columns) it counts
// team rows.
const multiTableArticle = `<h1>A Season of Goals Across the League</h1>
<p>The league fields 10 players in all.</p>
<h2>East division teams</h2>
<p>There were 2 teams in the east division.
Their combined goals reached 56.</p>
<h2>West division players</h2>
<p>The highest goals figure in the west division was 15.</p>`

// TestMultiTableGroundTruthSemantics pins the paper's FROM-inference rule:
// a query's join scope is the set of tables its columns reference, so a
// predicate-only query on the dimension table counts dimension rows, while
// an aggregate over the fact table joins through the foreign key.
func TestMultiTableGroundTruthSemantics(t *testing.T) {
	d := multiTableDB(t)
	eng := sqlexec.NewEngine(d)
	division := sqlexec.ColumnRef{Table: "teams", Column: "division"}
	goals := sqlexec.ColumnRef{Table: "players", Column: "goals"}

	cases := []struct {
		q    sqlexec.Query
		want float64
	}{
		// Count(*) with a teams-only predicate counts team rows (2 east teams).
		{sqlexec.Query{Agg: sqlexec.Count, Preds: []sqlexec.Predicate{{Col: division, Value: "east"}}}, 2},
		// An aggregate over players restricted on teams joins: 7 east players'
		// goals sum to 56, the west maximum is 15.
		{sqlexec.Query{Agg: sqlexec.Sum, AggCol: goals, Preds: []sqlexec.Predicate{{Col: division, Value: "east"}}}, 56},
		{sqlexec.Query{Agg: sqlexec.Max, AggCol: goals, Preds: []sqlexec.Predicate{{Col: division, Value: "west"}}}, 15},
		// Count over a players column restricted on teams also joins.
		{sqlexec.Query{Agg: sqlexec.CountDistinct, AggCol: sqlexec.ColumnRef{Table: "players", Column: "player"},
			Preds: []sqlexec.Predicate{{Col: division, Value: "east"}}}, 7},
	}
	for i, c := range cases {
		v, err := eng.Evaluate(c.q)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if v != c.want {
			t.Errorf("case %d (%s): got %v, want %v", i, c.q.Key(), v, c.want)
		}
	}
}

// TestMultiTableEndToEnd verifies the whole pipeline over a joined schema.
func TestMultiTableEndToEnd(t *testing.T) {
	d := multiTableDB(t)
	checker := NewChecker(d, quickCfg())
	report := checker.CheckHTML(multiTableArticle)
	claims := report.Claims()
	if len(claims) != 4 {
		t.Fatalf("claims = %d, want 4", len(claims))
	}
	division := sqlexec.ColumnRef{Table: "teams", Column: "division"}
	goals := sqlexec.ColumnRef{Table: "players", Column: "goals"}
	truth := []sqlexec.Query{
		{Agg: sqlexec.Count}, // 10 players (default table anchors the scope)
		{Agg: sqlexec.Count, Preds: []sqlexec.Predicate{{Col: division, Value: "east"}}},              // 2 teams
		{Agg: sqlexec.Sum, AggCol: goals, Preds: []sqlexec.Predicate{{Col: division, Value: "east"}}}, // 56
		{Agg: sqlexec.Max, AggCol: goals, Preds: []sqlexec.Predicate{{Col: division, Value: "west"}}}, // 15
	}
	for i, cr := range claims {
		if cr.Erroneous {
			best := cr.Best()
			t.Errorf("claim %d (%q) flagged erroneous; best=%s -> %v",
				i, cr.Claim.Text(), best.Query.Key(), best.Result)
		}
		// The join-dependent claims (2 and 3) must surface the joined
		// ground truth among the likely candidates.
		if i >= 2 {
			if r := RankOf(cr, truth[i]); r < 0 || r >= 10 {
				t.Errorf("claim %d (%q): joined ground truth rank = %d, want top-10",
					i, cr.Claim.Text(), r)
			}
		}
	}
}

// TestMultiTableCubeMatchesDirect verifies cube evaluation over a join view
// against direct evaluation. The compared queries anchor the fact table via
// their aggregation column, so their inferred join scope equals the cube's
// scope — the invariant the cube evaluator's batch grouping maintains.
func TestMultiTableCubeMatchesDirect(t *testing.T) {
	d := multiTableDB(t)
	e := sqlexec.NewEngine(d)
	division := sqlexec.ColumnRef{Table: "teams", Column: "division"}
	teamName := sqlexec.ColumnRef{Table: "teams", Column: "team_name"}
	goals := sqlexec.ColumnRef{Table: "players", Column: "goals"}
	dims := []sqlexec.DimSpec{
		{Col: division, Literals: []string{"east", "west"}},
		{Col: teamName, Literals: []string{"rockets", "comets"}},
	}
	reqs := []sqlexec.AggRequest{
		{Fn: sqlexec.Sum, Col: goals},
		{Fn: sqlexec.Max, Col: goals},
		{Fn: sqlexec.Avg, Col: goals},
	}
	cube, err := e.CubeFor([]string{"players", "teams"}, dims, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, preds := range [][]sqlexec.Predicate{
		nil,
		{{Col: division, Value: "east"}},
		{{Col: division, Value: "west"}},
		{{Col: division, Value: "east"}, {Col: teamName, Value: "rockets"}},
	} {
		for _, q := range []sqlexec.Query{
			{Agg: sqlexec.Sum, AggCol: goals, Preds: preds},
			{Agg: sqlexec.Max, AggCol: goals, Preds: preds},
			{Agg: sqlexec.Avg, AggCol: goals, Preds: preds},
		} {
			cv, ok := cube.Value(q)
			if !ok {
				t.Fatalf("cube cannot answer %s", q.Key())
			}
			dv, err := e.Evaluate(q)
			if err != nil {
				t.Fatal(err)
			}
			if !(cv == dv || (cv != cv && dv != dv)) { // NaN-tolerant compare
				t.Errorf("%s: cube=%v direct=%v", q.Key(), cv, dv)
			}
		}
	}
}
