package core

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"aggchecker/internal/corpus"
	"aggchecker/internal/db"
	"aggchecker/internal/document"
)

// writeCSV writes (or overwrites) a CSV fixture and returns its path.
func writeCSV(t *testing.T, dir, name, data string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestServiceStatusAndRefreshUnknown(t *testing.T) {
	svc := NewService()
	if _, err := svc.Status("ghost"); !errors.Is(err, ErrUnknownDatabase) {
		t.Errorf("Status err = %v, want ErrUnknownDatabase", err)
	}
	if _, err := svc.Refresh(context.Background(), "ghost"); !errors.Is(err, ErrUnknownDatabase) {
		t.Errorf("Refresh err = %v, want ErrUnknownDatabase", err)
	}
}

func TestServiceRefreshCSVSource(t *testing.T) {
	dir := t.TempDir()
	path := writeCSV(t, dir, "fines.csv", "player,amount\nAlice,100\nBob,200\n")
	svc := NewService(WithDefaultConfig(quickCfg()))
	if err := svc.RegisterSource("fines", db.NewCSVSource("fines", path)); err != nil {
		t.Fatal(err)
	}

	// Not resident yet: status says so and refresh is a cheap no-op (the
	// source opens fresh data on demand anyway).
	st, err := svc.Status("fines")
	if err != nil || st.Resident {
		t.Fatalf("pre-load status = %+v (%v), want not resident", st, err)
	}
	if st, err = svc.Refresh(context.Background(), "fines"); err != nil || st.Resident {
		t.Fatalf("pre-load refresh = %+v (%v), want not resident", st, err)
	}

	ctx := context.Background()
	ck, err := svc.Checker(ctx, "fines")
	if err != nil {
		t.Fatal(err)
	}
	st, err = svc.Status("fines")
	if err != nil || !st.Resident || st.Rows["fines"] != 2 || st.Version != 1 {
		t.Fatalf("resident status = %+v (%v)", st, err)
	}

	// Grow the file; refresh must append exactly the new rows, bump the
	// version, and rebuild the catalog so the new literal matches.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("Zed,300\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	st, err = svc.Refresh(ctx, "fines")
	if err != nil {
		t.Fatal(err)
	}
	if st.Appended != 1 || st.Rows["fines"] != 3 || st.Version != 2 {
		t.Fatalf("refresh status = %+v", st)
	}

	// The swapped checker shares DB and engine with the old one, so cached
	// cubes delta-advance instead of rebuilding.
	ck2, err := svc.Checker(ctx, "fines")
	if err != nil {
		t.Fatal(err)
	}
	if ck2 == ck {
		t.Error("refresh with appends should swap in a rebuilt-catalog checker")
	}
	if ck2.DB != ck.DB || ck2.Engine != ck.Engine {
		t.Error("refreshed checker must keep the database head and engine")
	}

	// A verification against the refreshed database sees the appended row.
	doc := document.ParseText("There are 3 players.")
	rep, err := svc.Check(ctx, "fines", doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Claims()) == 0 {
		t.Fatal("no claims detected")
	}

	// A rewrite the append-only contract cannot express fails the refresh
	// AND evicts the checker, so the next request re-opens the file as it
	// now is instead of serving pre-rewrite data forever.
	writeCSV(t, dir, "fines.csv", "player,amount\nOnly,1\n")
	if _, err := svc.Refresh(ctx, "fines"); err == nil {
		t.Fatal("refresh over rewritten file should fail")
	}
	if res := svc.Resident(); len(res) != 0 {
		t.Fatalf("Resident() after failed refresh = %v, want empty (fall back to re-open)", res)
	}
	st, err = svc.Status("fines")
	if err != nil || st.Resident {
		t.Fatalf("status after failed refresh = %+v (%v)", st, err)
	}
	if _, err := svc.Checker(ctx, "fines"); err != nil {
		t.Fatal(err)
	}
	if st, err = svc.Status("fines"); err != nil || st.Rows["fines"] != 1 {
		t.Fatalf("re-opened status = %+v (%v), want the rewritten 1-row file", st, err)
	}
}

func TestServiceRefreshSingleflight(t *testing.T) {
	dir := t.TempDir()
	path := writeCSV(t, dir, "t.csv", "v\n1\n2\n")
	svc := NewService(WithDefaultConfig(quickCfg()))
	if err := svc.RegisterSource("t", db.NewCSVSource("t", path)); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := svc.Checker(ctx, "t"); err != nil {
		t.Fatal(err)
	}
	writeCSV(t, dir, "t.csv", "v\n1\n2\n3\n4\n")

	const callers = 8
	var wg sync.WaitGroup
	stats := make([]Status, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			stats[i], errs[i] = svc.Refresh(ctx, "t")
		}(i)
	}
	wg.Wait()
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		// Every caller lands on a consistent post-refresh state; the file
		// grew by 2 rows exactly once.
		if stats[i].Rows["t"] != 4 {
			t.Fatalf("caller %d rows = %+v", i, stats[i])
		}
	}
	st, err := svc.Status("t")
	if err != nil || st.Version != 2 {
		t.Fatalf("post-refresh status = %+v (%v): concurrent refreshes must coalesce", st, err)
	}
}

func TestServiceRefreshOpaqueSourceEvicts(t *testing.T) {
	tc := corpus.MustLoad().Cases[0]
	svc := NewService(WithDefaultConfig(quickCfg()))
	if err := svc.Register("nfl", func(context.Context) (*db.Database, error) { return tc.DB, nil }); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := svc.Checker(ctx, "nfl"); err != nil {
		t.Fatal(err)
	}
	st, err := svc.Refresh(ctx, "nfl")
	if err != nil {
		t.Fatal(err)
	}
	if st.Resident {
		t.Errorf("opaque refresh status = %+v, want evicted", st)
	}
	if res := svc.Resident(); len(res) != 0 {
		t.Errorf("Resident() after opaque refresh = %v, want empty", res)
	}
	// Still registered: next use rebuilds lazily.
	if _, err := svc.Checker(ctx, "nfl"); err != nil {
		t.Fatal(err)
	}
}
