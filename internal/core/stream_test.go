package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"aggchecker/internal/corpus"
	"aggchecker/internal/model"
)

// slowCfg forces every EM iteration to run (no convergence break) so tests
// can cancel deterministically mid-run.
func slowCfg() Config {
	cfg := quickCfg()
	cfg.Model.MaxEMIters = 4
	cfg.Model.ConvergeEps = 0
	return cfg
}

// requireGoroutines waits for the goroutine count to return to the
// baseline, failing the test if streaming leaked workers.
func requireGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d running, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCheckCancelledBeforeStart(t *testing.T) {
	tc := corpus.MustLoad().Cases[0]
	checker := NewChecker(tc.DB, quickCfg())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := checker.Check(ctx, tc.Doc)
	if rep != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("Check = (%v, %v), want (nil, context.Canceled)", rep, err)
	}
}

// TestCheckCancelledMidEM cancels from inside the EM loop (after the first
// iteration's expectation step) and requires Check to return promptly with
// ctx.Err() instead of a report.
func TestCheckCancelledMidEM(t *testing.T) {
	tc := corpus.MustLoad().Cases[0]
	checker := NewChecker(tc.DB, slowCfg())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	iterations := 0
	start := time.Now()
	rep, err := checker.Check(ctx, tc.Doc, withObserver(func(u model.IterationUpdate) {
		iterations++
		cancel()
	}))
	if rep != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("Check = (%v, %v), want (nil, context.Canceled)", rep, err)
	}
	if iterations != 1 {
		t.Errorf("observer saw %d iterations after cancellation, want 1", iterations)
	}
	// "Promptly": nothing near the 4-iteration full run; generous bound so
	// race-instrumented CI machines pass.
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("cancelled Check took %s", elapsed)
	}
}

func TestCheckDeadlineOption(t *testing.T) {
	tc := corpus.MustLoad().Cases[0]
	checker := NewChecker(tc.DB, slowCfg())
	rep, err := checker.Check(context.Background(), tc.Doc, WithDeadline(time.Nanosecond))
	if rep != nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Check = (%v, %v), want (nil, DeadlineExceeded)", rep, err)
	}
}

func TestStreamEmitsPerIterationEvents(t *testing.T) {
	tc := corpus.MustLoad().Cases[0]
	checker := NewChecker(tc.DB, slowCfg())
	baseline := runtime.NumGoroutine()

	events, err := checker.Stream(context.Background(), tc.Doc, WithTopK(3))
	if err != nil {
		t.Fatal(err)
	}
	var iters, updates int
	var done *EventDone
	for ev := range events {
		switch e := ev.(type) {
		case EventIteration:
			iters++
			if e.Claims != len(tc.Doc.Claims) {
				t.Errorf("iteration %d announces %d claims, want %d", e.Iteration, e.Claims, len(tc.Doc.Claims))
			}
		case EventClaimUpdate:
			updates++
			if len(e.Result.Ranked) == 0 {
				t.Errorf("claim %d update has empty ranking", e.ClaimIndex)
			}
			if len(e.Result.Ranked) > 3 {
				t.Errorf("claim %d update has %d ranked queries, want ≤ 3 (WithTopK)", e.ClaimIndex, len(e.Result.Ranked))
			}
		case EventDone:
			d := e
			done = &d
		}
	}
	if done == nil || done.Err != nil || done.Report == nil {
		t.Fatalf("stream did not end with a successful EventDone: %+v", done)
	}
	// slowCfg runs 4 iterations plus the final pass; at least one
	// EventClaimUpdate per claim per iteration is the tentpole guarantee.
	if iters < 2 {
		t.Fatalf("iterations seen = %d, want ≥ 2", iters)
	}
	if want := iters * len(tc.Doc.Claims); updates != want {
		t.Fatalf("claim updates = %d, want %d (%d iterations × %d claims)", updates, want, iters, len(tc.Doc.Claims))
	}
	if got := len(done.Report.Claims()); got != len(tc.Doc.Claims) {
		t.Fatalf("final report claims = %d", got)
	}
	requireGoroutines(t, baseline)
}

// TestStreamConsumerCancels abandons a stream mid-run: the EM loop must
// stop, the channel must terminate, and no goroutine may leak.
func TestStreamConsumerCancels(t *testing.T) {
	tc := corpus.MustLoad().Cases[0]
	checker := NewChecker(tc.DB, slowCfg())
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	events, err := checker.Stream(ctx, tc.Doc)
	if err != nil {
		t.Fatal(err)
	}
	// Read exactly one event, then walk away.
	if _, ok := <-events; !ok {
		t.Fatal("stream closed before first event")
	}
	cancel()
	// The channel must terminate even though we stopped consuming
	// mid-iteration, and — since we keep draining — the terminal
	// EventDone must still arrive carrying the cancellation.
	var last Event
	for ev := range events {
		last = ev
	}
	d, ok := last.(EventDone)
	if !ok {
		t.Fatalf("last event = %T, want EventDone", last)
	}
	if !errors.Is(d.Err, context.Canceled) {
		t.Fatalf("EventDone.Err = %v, want context.Canceled", d.Err)
	}
	requireGoroutines(t, baseline)
}

// TestStreamUnreadConsumer cancels without draining at all: the stream
// goroutine must still exit (the leak check is the assertion).
func TestStreamUnreadConsumer(t *testing.T) {
	tc := corpus.MustLoad().Cases[0]
	checker := NewChecker(tc.DB, slowCfg())
	baseline := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	if _, err := checker.Stream(ctx, tc.Doc); err != nil {
		t.Fatal(err)
	}
	cancel()
	requireGoroutines(t, baseline)
}

// TestStreamDeadlineUnblocksStalledConsumer starts a stream whose consumer
// never reads and never cancels, relying on WithDeadline alone: the
// deadline must unblock event delivery and let the goroutine exit.
func TestStreamDeadlineUnblocksStalledConsumer(t *testing.T) {
	tc := corpus.MustLoad().Cases[0]
	checker := NewChecker(tc.DB, slowCfg())
	baseline := runtime.NumGoroutine()

	if _, err := checker.Stream(context.Background(), tc.Doc, WithDeadline(50*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	requireGoroutines(t, baseline)
}

func TestPerCallStatsAreIndependent(t *testing.T) {
	tc := corpus.MustLoad().Cases[0]
	checker := NewChecker(tc.DB, quickCfg())
	r1, err := checker.Check(context.Background(), tc.Doc)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := checker.Check(context.Background(), tc.Doc)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats["batch_queries"] == 0 || r2.Stats["batch_queries"] == 0 {
		t.Fatalf("per-call stats empty: %v / %v", r1.Stats, r2.Stats)
	}
	// In cached mode the second document reuses the first's cubes: its
	// per-call counters must reflect only its own work, not engine life-
	// time totals (the old behavior reported cumulative counters).
	if r2.Stats["cube_passes"] > r1.Stats["cube_passes"] {
		t.Errorf("second check reports more cube passes (%d) than first (%d); stats look cumulative",
			r2.Stats["cube_passes"], r1.Stats["cube_passes"])
	}
	if r2.Stats["batch_queries"] >= 2*r1.Stats["batch_queries"] {
		t.Errorf("second check batch_queries = %d vs first %d; stats look cumulative",
			r2.Stats["batch_queries"], r1.Stats["batch_queries"])
	}
}

func TestParseEvalMode(t *testing.T) {
	for _, c := range []struct {
		in   string
		want EvalMode
		ok   bool
	}{
		{"cached", EvalCached, true},
		{"merged+cached", EvalCached, true},
		{"Merged", EvalMerged, true},
		{" naive ", EvalNaive, true},
		{"", EvalCached, false},
		{"turbo", EvalCached, false},
	} {
		got, err := ParseEvalMode(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseEvalMode(%q) = (%v, %v), want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseEvalMode(%q) succeeded, want error", c.in)
		}
	}
}
