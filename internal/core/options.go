package core

import (
	"time"

	"aggchecker/internal/evaluate"
	"aggchecker/internal/model"
	"aggchecker/internal/sqlexec"
)

// CheckOption customizes one Check or Stream call. Options are applied to a
// copy of the checker's Config, so they never mutate shared state and two
// concurrent requests can use different modes, budgets, or deadlines
// against the same Checker.
type CheckOption func(*checkSettings)

// checkSettings is the resolved per-request configuration.
type checkSettings struct {
	cfg      Config
	deadline time.Duration
	observer model.Observer
	// exec carries per-request engine overrides (scan workers, zone maps)
	// into the request context via sqlexec.ContextWithOptions.
	exec []sqlexec.ExecOption
	// runner, when non-nil, replaces direct engine batch execution for this
	// request's claim batches (unsharded cached mode only): Audit installs
	// a sqlexec.Window here so concurrently-checked documents share passes.
	runner evaluate.BatchRunner
}

func newCheckSettings(base Config, opts []CheckOption) checkSettings {
	set := checkSettings{cfg: base}
	for _, o := range opts {
		if o != nil {
			o(&set)
		}
	}
	return set
}

// WithMode selects the candidate evaluation strategy for this request only
// (Table 6 rows: EvalCached, EvalMerged, EvalNaive).
func WithMode(m EvalMode) CheckOption {
	return func(s *checkSettings) { s.cfg.Mode = m }
}

// WithWorkers bounds the engine-side worker pool for this request; n ≤ 0
// uses GOMAXPROCS.
func WithWorkers(n int) CheckOption {
	return func(s *checkSettings) { s.cfg.Workers = n }
}

// WithScanWorkers bounds, for this request only, how many workers any one
// of its cube passes or direct scans may occupy at once on the engine's
// scheduler (or private pool); n ≤ 0 restores the engine default. The
// shared engine is not retuned — the bound rides the request context.
func WithScanWorkers(n int) CheckOption {
	return func(s *checkSettings) { s.exec = append(s.exec, sqlexec.WithScanWorkers(n)) }
}

// WithZoneMaps toggles zone-map pruning for this request only. Results are
// identical either way; pruning off is the benchmark baseline and an
// operational escape hatch.
func WithZoneMaps(on bool) CheckOption {
	return func(s *checkSettings) { s.exec = append(s.exec, sqlexec.WithZoneMaps(on)) }
}

// WithDeadline bounds the request's wall-clock time: the check is cancelled
// with context.DeadlineExceeded once d elapses. d ≤ 0 means no deadline.
func WithDeadline(d time.Duration) CheckOption {
	return func(s *checkSettings) { s.deadline = d }
}

// WithTopK sets how many ranked query translations are kept per claim (the
// Report ranking and the per-iteration EventClaimUpdate payloads).
func WithTopK(k int) CheckOption {
	return func(s *checkSettings) {
		if k > 0 {
			s.cfg.Model.TopQueries = k
		}
	}
}

// withObserver installs an EM-loop observer; Stream uses it to emit events
// and tests use it to cancel runs mid-EM deterministically.
func withObserver(obs model.Observer) CheckOption {
	return func(s *checkSettings) { s.observer = obs }
}

// withBatchRunner routes the request's claim batches through a pooling
// runner (a sqlexec.Window). Audit installs it on every member check; it
// only takes effect in unsharded cached mode, where documents share one
// engine whose cache the pooled passes feed.
func withBatchRunner(r evaluate.BatchRunner) CheckOption {
	return func(s *checkSettings) { s.runner = r }
}
