package core

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"aggchecker/internal/colstore"
	"aggchecker/internal/db"
	"aggchecker/internal/document"
	"aggchecker/internal/sqlexec"
)

// ErrUnknownDatabase is returned (wrapped, with the name) when a Service
// request names a database that was never registered.
var ErrUnknownDatabase = errors.New("unknown database")

// OpenFunc materializes a registered database on first use: loading CSVs,
// building tables, wiring foreign keys. It runs outside the service lock
// and should honor ctx for slow sources.
type OpenFunc func(ctx context.Context) (*db.Database, error)

// Service hosts many named databases behind one verification front end —
// the multi-tenant face of the package. Databases are registered cheaply
// (an OpenFunc, no data loaded); the per-database Checker, whose fragment
// catalog and keyword indexes are the expensive per-dataset preprocessing
// of §4.2, is built lazily on first request. Concurrent first requests for
// the same database are coalesced onto a single build (singleflight), and
// the number of resident catalogs is bounded by an LRU policy so a service
// hosting hundreds of registered databases keeps only the hot ones in
// memory. All methods are safe for concurrent use.
type Service struct {
	defaultCfg  Config
	maxResident int
	// sched, when set, is the process-wide morsel scheduler every checker
	// engine of this service shares: one pool spans all databases and all
	// concurrent requests, instead of each engine sizing private pools.
	sched *sqlexec.Scheduler

	mu      sync.Mutex
	sources map[string]*source
	// lru orders resident sources, most recently used at the front.
	lru *list.List
}

// source is one registered database.
type source struct {
	name string
	src  db.Source
	cfg  *Config // per-database override; nil uses the service default
	// shardsSet applies a per-database shard topology on top of whichever
	// config (default or per-database) is in effect.
	shardsSet bool
	shards    int
	shardKeys map[string]string

	// building is the in-flight singleflight build, nil when idle.
	building *buildCall
	// refreshing is the in-flight singleflight refresh, nil when idle.
	refreshing *refreshCall
	// checker is non-nil while resident; elem is its lru position.
	checker *Checker
	elem    *list.Element
}

// buildCall coalesces concurrent lazy builds of one checker.
type buildCall struct {
	done    chan struct{}
	checker *Checker
	err     error
}

// refreshCall coalesces concurrent refreshes of one source.
type refreshCall struct {
	done chan struct{}
	st   Status
	err  error
}

// Status reports the storage state of one registered database.
type Status struct {
	// Name is the registered database name.
	Name string `json:"name"`
	// Resident reports whether the database's checker (catalog + engine)
	// is currently in memory. Non-resident databases load fresh from their
	// Source on the next request, so they never need an explicit refresh.
	Resident bool `json:"resident"`
	// Version is the database's current snapshot version (0 when not
	// resident).
	Version uint64 `json:"version"`
	// Rows maps table name to visible row count (nil when not resident).
	Rows map[string]int `json:"rows,omitempty"`
	// TotalRows sums Rows.
	TotalRows int `json:"total_rows"`
	// Appended is the number of rows the last Refresh sealed (only set on
	// Refresh results).
	Appended int `json:"appended,omitempty"`
	// Scan reports the resident checker's scan-pipeline counters (nil when
	// not resident), so watch-mode operators can see how effectively zone
	// maps prune re-checks per database.
	Scan *ScanStats `json:"scan,omitempty"`
	// Shard reports sharded-execution state (nil when the database runs
	// unsharded or is not resident).
	Shard *ShardStatus `json:"shard,omitempty"`
	// Store reports the persistent block store backing the database (nil
	// when memory-only or not resident).
	Store *StoreStatus `json:"store,omitempty"`
	// Cache reports the cube cache's residency and cost-aware economics
	// (nil when not resident). Populated in and outside audit mode alike.
	Cache *CacheStats `json:"cache,omitempty"`
}

// StoreStatus is the persistent-storage slice of a resident checker's
// state: the durable version lineage plus byte-level accounting of what is
// on disk, mapped, and actually paged in.
type StoreStatus struct {
	// Dir is the store's root directory.
	Dir string `json:"dir"`
	// Version and Epoch are the last durably published snapshot lineage.
	Version uint64 `json:"version"`
	Epoch   uint64 `json:"epoch"`
	// Publishes and Resets count delta and wholesale manifest records
	// written by this process (a reset covers bootstrap and compaction).
	Publishes int64 `json:"publishes"`
	Resets    int64 `json:"resets"`
	// DataBytes is the durable column + dictionary payload; ManifestBytes
	// the metadata journal.
	DataBytes     int64 `json:"data_bytes"`
	ManifestBytes int64 `json:"manifest_bytes"`
	// MappedBytes is how much column data is memory-mapped;
	// ResidentBytes how much of that has actually been paged in by reads
	// (-1 when the platform cannot tell). The gap is what zone pruning
	// never touched.
	MappedBytes   int64 `json:"mapped_bytes"`
	ResidentBytes int64 `json:"resident_bytes"`
}

// ShardStatus is the sharded-execution slice of a resident checker's state:
// the partition topology plus the coordinator counters accumulated over the
// checker's lifetime.
type ShardStatus struct {
	// Shards is the partition count K.
	Shards int `json:"shards"`
	// Rows holds each partition's visible row total, in shard order.
	Rows []int `json:"rows,omitempty"`
	// Fanouts counts scatter-gather passes (cube or scan); Partials the
	// per-shard partial results collected; Stragglers the workers whose
	// response lagged far behind a fan-out's median.
	Fanouts    int64 `json:"fanouts"`
	Partials   int64 `json:"partials"`
	Stragglers int64 `json:"stragglers"`
	// MergeNanos is the cumulative time spent folding partials.
	MergeNanos int64 `json:"merge_ns"`
}

// ScanStats is the zone-map/scan-pipeline slice of the engine counters,
// accumulated over the lifetime of the resident checker's cached-mode
// engine.
type ScanStats struct {
	// BlocksScanned and BlocksPruned count scan segments processed versus
	// skipped by zone maps (cube passes, delta scans, and vectorized
	// direct scans alike); PruneRate is pruned/(pruned+scanned).
	BlocksScanned int64   `json:"blocks_scanned"`
	BlocksPruned  int64   `json:"blocks_pruned"`
	PruneRate     float64 `json:"prune_rate"`
	// DirectVectorScans counts direct queries run through the vectorized
	// pipeline; SelvecReuses the segments that filtered through a reused
	// selection-vector buffer; DeltaScans the cached cubes advanced by
	// scanning only appended blocks.
	DirectVectorScans int64 `json:"direct_vector_scans"`
	SelvecReuses      int64 `json:"selvec_reuses"`
	DeltaScans        int64 `json:"delta_scans"`
	// MorselsDispatched counts morsels this engine's scans executed on the
	// shared scheduler; StealCount the subset run by shared-pool helpers
	// rather than the submitting goroutine; QueueWaits the submissions that
	// found every helper busy and queued fairly behind other requests. All
	// zero when the service runs without a scheduler.
	MorselsDispatched int64 `json:"morsels_dispatched"`
	QueueWaits        int64 `json:"queue_waits"`
	StealCount        int64 `json:"steal_count"`
}

func statusOf(name string, ck *Checker) Status {
	st := Status{Name: name}
	if ck == nil {
		return st
	}
	snap := ck.DB.Snapshot()
	st.Resident = true
	st.Version = snap.Version()
	st.Rows = make(map[string]int, len(snap.Tables()))
	for _, t := range snap.Tables() {
		st.Rows[t.Name] = t.NumRows()
		st.TotalRows += t.NumRows()
	}
	s := ck.Engine.Stats.Snapshot()
	scan := &ScanStats{
		BlocksScanned:     s["blocks_scanned"],
		BlocksPruned:      s["blocks_pruned"],
		DirectVectorScans: s["direct_vector_scans"],
		SelvecReuses:      s["selvec_reuses"],
		DeltaScans:        s["delta_scans"],
		MorselsDispatched: s["morsels_dispatched"],
		QueueWaits:        s["queue_waits"],
		StealCount:        s["steal_count"],
	}
	if tot := scan.BlocksScanned + scan.BlocksPruned; tot > 0 {
		scan.PruneRate = float64(scan.BlocksPruned) / float64(tot)
	}
	st.Scan = scan
	st.Cache = cacheStatsOf(ck.Engine)
	if sh := ck.Sharder(); sh != nil {
		st.Shard = &ShardStatus{
			Shards:     sh.NumShards(),
			Rows:       sh.Rows(),
			Fanouts:    s["shard_fanouts"],
			Partials:   s["shard_partials"],
			Stragglers: s["shard_stragglers"],
			MergeNanos: s["shard_merge_ns"],
		}
	}
	if store := ck.Store(); store != nil {
		ss := store.Stats()
		st.Store = &StoreStatus{
			Dir:           ss.Dir,
			Version:       ss.Version,
			Epoch:         ss.Epoch,
			Publishes:     ss.Publishes,
			Resets:        ss.Resets,
			DataBytes:     ss.DataBytes,
			ManifestBytes: ss.ManifestBytes,
			MappedBytes:   ss.MappedBytes,
			ResidentBytes: ss.ResidentBytes,
		}
	}
	return st
}

// ServiceOption configures a Service at construction.
type ServiceOption func(*Service)

// WithDefaultConfig sets the Config used for databases registered without
// their own config.
func WithDefaultConfig(cfg Config) ServiceOption {
	return func(s *Service) { s.defaultCfg = cfg }
}

// WithMaxResident bounds how many built checkers (fragment catalogs plus
// engine caches) stay in memory; the least recently used is evicted and
// rebuilt lazily on its next request. n ≤ 0 means unbounded.
func WithMaxResident(n int) ServiceOption {
	return func(s *Service) { s.maxResident = n }
}

// WithScheduler installs one shared morsel scheduler for every database the
// service hosts: cube passes and large direct scans of all concurrent
// requests decompose into zone-aligned morsels dispatched fairly from the
// scheduler's pool — one pool per process, not per database. The service
// does not own the scheduler; whoever created it calls Close after the
// service is done.
func WithScheduler(sched *sqlexec.Scheduler) ServiceOption {
	return func(s *Service) { s.sched = sched }
}

// WithShards sets the default shard count for every database the service
// hosts: k > 1 partitions each database's fact tables at checker build time
// and answers candidate queries by scatter-gather over per-shard workers.
// Results are identical to unsharded execution; k ≤ 1 runs unsharded.
func WithShards(k int) ServiceOption {
	return func(s *Service) { s.defaultCfg.Shards = k }
}

// WithShardKeys sets the default shard-key mapping (fact-table name →
// hash-placement column) used when sharding is enabled. Tables without an
// entry fall back to round-robin placement.
func WithShardKeys(keys map[string]string) ServiceOption {
	return func(s *Service) { s.defaultCfg.ShardKeys = keys }
}

// NewService creates an empty registry with the paper's default Config.
func NewService(opts ...ServiceOption) *Service {
	s := &Service{
		defaultCfg: DefaultConfig(),
		sources:    make(map[string]*source),
		lru:        list.New(),
	}
	for _, o := range opts {
		if o != nil {
			o(s)
		}
	}
	return s
}

// RegisterOption configures one registered database.
type RegisterOption func(*source)

// WithDatabaseConfig overrides the service default Config for one database.
func WithDatabaseConfig(cfg Config) RegisterOption {
	return func(src *source) { src.cfg = &cfg }
}

// WithDatabaseShards overrides the shard topology for one database: k > 1
// partitions its fact tables (hash-placed by keys, round-robin without an
// entry), k ≤ 1 forces unsharded execution even under a WithShards default.
func WithDatabaseShards(k int, keys map[string]string) RegisterOption {
	return func(src *source) {
		src.shardsSet = true
		src.shards = k
		src.shardKeys = keys
	}
}

// RegisterSource adds a named database materialized from a db.Source on
// first use. Sources that also implement db.Refresher (CSV, JSONL, and
// in-memory sources do) get incremental Refresh: new rows are appended and
// committed as fresh blocks, the keyword catalog is rebuilt, and the
// engine's snapshot-versioned caches absorb the appends by delta scans.
// Registering an already-registered name fails.
func (s *Service) RegisterSource(name string, dsrc db.Source, opts ...RegisterOption) error {
	if dsrc == nil {
		return fmt.Errorf("aggchecker: register %q: nil source", name)
	}
	src := &source{name: name, src: dsrc}
	for _, o := range opts {
		if o != nil {
			o(src)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.sources[name]; ok {
		return fmt.Errorf("aggchecker: database %q already registered", name)
	}
	s.sources[name] = src
	return nil
}

// Register adds a named database whose data is materialized by open on
// first use.
//
// Deprecated: use RegisterSource with a db.Source; plain OpenFuncs cannot
// refresh incrementally (Refresh falls back to evicting the catalog).
func (s *Service) Register(name string, open OpenFunc, opts ...RegisterOption) error {
	if open == nil {
		return fmt.Errorf("aggchecker: register %q: nil OpenFunc", name)
	}
	return s.RegisterSource(name, db.SourceFunc(open), opts...)
}

// RegisterDatabase adds an already-loaded in-memory database (a
// db.MemSource): Refresh commits rows the owner staged with Append.
func (s *Service) RegisterDatabase(name string, d *db.Database, opts ...RegisterOption) error {
	if d == nil {
		return fmt.Errorf("aggchecker: register %q: nil database", name)
	}
	return s.RegisterSource(name, db.NewMemSource(d), opts...)
}

// Names returns the registered database names, sorted.
func (s *Service) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.sources))
	for name := range s.sources {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Resident returns the names of databases whose checkers are currently in
// memory, most recently used first.
func (s *Service) Resident() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, s.lru.Len())
	for e := s.lru.Front(); e != nil; e = e.Next() {
		out = append(out, e.Value.(*source).name)
	}
	return out
}

// Checker returns the (lazily built) checker for a registered database.
// Concurrent calls during the first build share one build; waiting callers
// honor ctx while the winning builder's open runs under its own ctx. A
// waiter whose shared build failed with the *winner's* context error — the
// winning client hung up mid-build — retries the build under its own
// still-live context instead of inheriting a cancellation it never issued.
func (s *Service) Checker(ctx context.Context, name string) (*Checker, error) {
	for {
		ck, err, waited := s.checkerOnce(ctx, name)
		// Only a shared build's failure is retried: the next attempt
		// either finds the checker resident, becomes the builder itself
		// (whose result is final), or waits on a fresh build.
		if err != nil && waited && ctx.Err() == nil &&
			(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
			continue
		}
		return ck, err
	}
}

// checkerOnce is one resolve-or-build attempt (see Checker); waited
// reports that the result came from another goroutine's in-flight build.
func (s *Service) checkerOnce(ctx context.Context, name string) (ck *Checker, err error, waited bool) {
	if err := ctx.Err(); err != nil {
		return nil, err, false
	}
	s.mu.Lock()
	src, ok := s.sources[name]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("aggchecker: %w: %q", ErrUnknownDatabase, name), false
	}
	if src.checker != nil {
		ck := src.checker
		s.touchLocked(src)
		s.mu.Unlock()
		return ck, nil, false
	}
	if call := src.building; call != nil {
		s.mu.Unlock()
		select {
		case <-call.done:
			return call.checker, call.err, true
		case <-ctx.Done():
			return nil, ctx.Err(), false
		}
	}
	call := &buildCall{done: make(chan struct{})}
	src.building = call
	s.mu.Unlock()

	// The expensive part — loading data and building the fragment catalog —
	// runs outside the service lock so other databases stay available.
	cfg := s.defaultCfg
	if src.cfg != nil {
		cfg = *src.cfg
	}
	if src.shardsSet {
		cfg.Shards, cfg.ShardKeys = src.shards, src.shardKeys
	}
	if s.sched != nil {
		// Append onto a copy: the shared default config's option slice
		// must not grow a backing-array write from a lazy build.
		cfg.Exec = append(append([]sqlexec.ExecOption{}, cfg.Exec...), sqlexec.WithScheduler(s.sched))
	}
	var d *db.Database
	var store *colstore.Store
	if cfg.DataDir != "" {
		d, store, err = openPersistent(ctx, src.name, src.src, cfg.DataDir)
	} else {
		d, err = src.src.Open(ctx)
	}
	if err == nil {
		ck = NewChecker(d, cfg)
		ck.store = store
	}

	s.mu.Lock()
	src.building = nil
	if err == nil {
		src.checker = ck
		s.touchLocked(src)
		s.evictLocked()
	}
	s.mu.Unlock()
	call.checker, call.err = ck, err
	close(call.done)
	return ck, err, false
}

// openPersistent materializes a database backed by a block store under
// dataDir/<name>. A reopenable store restores the last durably published
// snapshot without calling the source at all — cold restarts serve
// identical reports with zero source re-parsing. An empty (or
// unrecoverable) store bootstraps from the source and records everything;
// a corrupt store directory is moved aside to <dir>.bad rather than
// blocking the database.
func openPersistent(ctx context.Context, name string, dsrc db.Source, dataDir string) (*db.Database, *colstore.Store, error) {
	dir := filepath.Join(dataDir, name)
	st, pdb, err := colstore.Open(dir)
	if err != nil {
		if renameErr := os.Rename(dir, dir+".bad"); renameErr != nil {
			return nil, nil, fmt.Errorf("aggchecker: open store %s: %w", dir, err)
		}
		if st, pdb, err = colstore.Open(dir); err != nil {
			return nil, nil, fmt.Errorf("aggchecker: open store %s: %w", dir, err)
		}
	}
	if pdb != nil {
		d, rerr := db.RestoreDatabase(pdb)
		if rerr == nil {
			if perr := d.SetPersister(st); perr != nil {
				st.Close()
				return nil, nil, perr
			}
			return d, st, nil
		}
		// Restored metadata the database rejects: quarantine and bootstrap.
		st.Close()
		if renameErr := os.Rename(dir, dir+".bad"); renameErr != nil {
			return nil, nil, rerr
		}
		if st, _, err = colstore.Open(dir); err != nil {
			return nil, nil, fmt.Errorf("aggchecker: open store %s: %w", dir, err)
		}
	}
	d, err := dsrc.Open(ctx)
	if err != nil {
		st.Close()
		return nil, nil, err
	}
	if err := d.SetPersister(st); err != nil {
		st.Close()
		return nil, nil, err
	}
	return d, st, nil
}

// touchLocked moves a resident source to the LRU front (inserting it when
// new). Callers hold s.mu.
func (s *Service) touchLocked(src *source) {
	if src.elem != nil {
		s.lru.MoveToFront(src.elem)
		return
	}
	src.elem = s.lru.PushFront(src)
}

// evictLocked drops least-recently-used checkers beyond the residency
// bound. An evicted database stays registered and rebuilds on next use.
// Callers hold s.mu.
func (s *Service) evictLocked() {
	if s.maxResident <= 0 {
		return
	}
	for s.lru.Len() > s.maxResident {
		e := s.lru.Back()
		victim := e.Value.(*source)
		s.lru.Remove(e)
		victim.elem = nil
		if victim.checker != nil {
			victim.checker.detachStore()
		}
		victim.checker = nil
	}
}

// Status reports the storage state of a registered database without
// loading it: version and row counts when resident, Resident=false
// otherwise (a non-resident database always opens fresh, so there is
// nothing to refresh).
func (s *Service) Status(name string) (Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	src, ok := s.sources[name]
	if !ok {
		return Status{}, fmt.Errorf("aggchecker: %w: %q", ErrUnknownDatabase, name)
	}
	return statusOf(name, src.checker), nil
}

// Refresh brings a registered database up to date with its source.
// Concurrent refreshes of the same database are coalesced onto one run
// (singleflight). Three outcomes:
//
//   - Not resident: nothing to do — the source re-opens with current data
//     on the next request.
//   - Resident with a refreshable source (db.Refresher): new rows are
//     appended and committed, publishing snapshot version N+1 behind the
//     engine's back-compatible caches (delta-scanned on the next check),
//     and the keyword catalog is rebuilt so appended values match.
//   - Resident with an opaque source: the checker is evicted and rebuilt
//     lazily from fresh data on the next request.
func (s *Service) Refresh(ctx context.Context, name string) (Status, error) {
	s.mu.Lock()
	src, ok := s.sources[name]
	if !ok {
		s.mu.Unlock()
		return Status{}, fmt.Errorf("aggchecker: %w: %q", ErrUnknownDatabase, name)
	}
	if call := src.refreshing; call != nil {
		s.mu.Unlock()
		select {
		case <-call.done:
			return call.st, call.err
		case <-ctx.Done():
			return Status{}, ctx.Err()
		}
	}
	call := &refreshCall{done: make(chan struct{})}
	src.refreshing = call
	ck := src.checker
	s.mu.Unlock()

	st, err := s.refresh(ctx, src, ck)

	s.mu.Lock()
	src.refreshing = nil
	s.mu.Unlock()
	call.st, call.err = st, err
	close(call.done)
	return st, err
}

// refresh performs one refresh outside the singleflight bookkeeping.
func (s *Service) refresh(ctx context.Context, src *source, ck *Checker) (Status, error) {
	if ck == nil {
		return Status{Name: src.name}, nil
	}
	r, ok := src.src.(db.Refresher)
	if !ok {
		// Opaque source: evict so the next request reloads fresh data.
		s.evictChecker(src, ck)
		return Status{Name: src.name}, nil
	}
	appended, err := r.Refresh(ctx, ck.DB)
	if err != nil && ctx.Err() == nil {
		// The source changed in a way the incremental contract cannot
		// express (a rewritten or shrunken file, a type flip): fall back
		// to a full re-open by evicting the checker, so the next request
		// loads the file as it now is instead of serving pre-rewrite data
		// forever. Cancellation is not a source problem and evicts nothing.
		s.evictChecker(src, ck)
		return Status{Name: src.name}, err
	}
	if err != nil {
		return statusOf(src.name, ck), err
	}
	if appended > 0 {
		// Sharded checkers route the freshly committed rows into their
		// partitions first (each sealing per-shard delta blocks), so the
		// next check's fan-out sees the refreshed data. An absorb failure
		// is a state conflict like a refresh failure: evict and rebuild.
		if _, err := ck.AbsorbShards(); err != nil {
			s.evictChecker(src, ck)
			return Status{Name: src.name}, err
		}
		// The engine keeps its snapshot-versioned caches (appends are
		// absorbed by delta scans); only the keyword catalog, which indexes
		// column values, needs maintenance so freshly appended literals
		// match — Extend grafts just the new dictionary and numeric entries
		// instead of rebuilding from scratch. The swapped checker shares DB
		// and Engine, so readers mid-check on the old struct stay consistent.
		cat, _ := ck.Catalog.Extend()
		fresh := &Checker{
			DB:      ck.DB,
			Catalog: cat,
			Engine:  ck.Engine,
			Config:  ck.Config,
			shards:  ck.shards,
			coord:   ck.coord,
			store:   ck.store,
		}
		s.mu.Lock()
		if src.checker == ck {
			src.checker = fresh
		}
		s.mu.Unlock()
		ck = fresh
		ck.maybeCompactAsync(ck.Config.CompactAfter)
	}
	st := statusOf(src.name, ck)
	st.Appended = appended
	return st, nil
}

// evictChecker drops a resident checker (if still the given one) so the
// next request rebuilds from a fresh source open.
func (s *Service) evictChecker(src *source, ck *Checker) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if src.checker != ck {
		return
	}
	ck.detachStore()
	src.checker = nil
	if src.elem != nil {
		s.lru.Remove(src.elem)
		src.elem = nil
	}
}

// Check verifies a document against a named database; see Checker.Check
// for option and cancellation semantics.
func (s *Service) Check(ctx context.Context, name string, doc *document.Document, opts ...CheckOption) (*Report, error) {
	ck, err := s.Checker(ctx, name)
	if err != nil {
		return nil, err
	}
	return ck.Check(ctx, doc, opts...)
}

// Stream verifies a document against a named database, emitting per-EM-
// iteration events; see Checker.Stream.
func (s *Service) Stream(ctx context.Context, name string, doc *document.Document, opts ...CheckOption) (<-chan Event, error) {
	ck, err := s.Checker(ctx, name)
	if err != nil {
		return nil, err
	}
	return ck.Stream(ctx, doc, opts...)
}
