package core

import (
	"context"
	"time"

	"aggchecker/internal/document"
	"aggchecker/internal/model"
)

// Event is one element of a Stream: progress of an in-flight verification.
// The concrete types are EventIteration, EventClaimUpdate, and EventDone.
type Event interface {
	// Kind returns the wire name of the event ("iteration",
	// "claim_update", "done").
	Kind() string
}

// EventIteration announces that one EM iteration's expectation step (and,
// unless Final, its prior maximization) completed. It precedes the
// iteration's EventClaimUpdate events.
type EventIteration struct {
	// Iteration is 1-based. Final marks the concluding expectation pass
	// under converged priors; its claim updates equal the final report.
	Iteration int
	Final     bool
	// Delta is the maximum prior movement of the maximization step
	// (0 when priors are disabled or Final).
	Delta float64
	// EvaluatedQueries is the running count of distinct candidate queries
	// evaluated so far.
	EvaluatedQueries int
	// Claims is the number of claim updates that follow.
	Claims int
}

func (EventIteration) Kind() string { return "iteration" }

// EventClaimUpdate carries one claim's refined verdict after an EM
// iteration: its current top-k query ranking and correctness confidence.
// Watching these events across iterations shows per-claim probabilities
// converge, which is what the paper's interactive interface visualizes.
type EventClaimUpdate struct {
	Iteration int
	// ClaimIndex is the claim's position in Document.Claims.
	ClaimIndex int
	Claim      *document.Claim
	// Result is the claim's current verdict snapshot; Result.Ranked is the
	// top-k ranking under the iteration's priors and evaluation results.
	Result model.ClaimResult
}

func (EventClaimUpdate) Kind() string { return "claim_update" }

// EventDone terminates every stream: either the final Report or the error
// that ended the run (ctx.Err() after cancellation). It is the last event
// before the channel closes.
type EventDone struct {
	Report *Report
	Err    error
}

func (EventDone) Kind() string { return "done" }

// Stream runs the verification pipeline like Check but emits typed events
// after every EM iteration: one EventIteration, one EventClaimUpdate per
// claim, and a concluding EventDone. The events come from an observer hook
// inside the EM loop — the streamed claim snapshots are the same states a
// blocking Check would pass through, not a parallel code path.
//
// The returned channel is unbuffered and always closed after EventDone, so
// `for ev := range events` terminates. Event delivery applies back-pressure
// to the EM loop; a consumer that stops reading must cancel ctx, which both
// unblocks delivery and aborts the run (EventDone then carries ctx.Err()).
func (c *Checker) Stream(ctx context.Context, doc *document.Document, opts ...CheckOption) (<-chan Event, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	set := newCheckSettings(c.Config, opts)
	// Apply WithDeadline here rather than inside check: emit selects on
	// this ctx, so the deadline must also unblock a stalled delivery or
	// the EM goroutine could outlive the request.
	cancel := context.CancelFunc(func() {})
	if set.deadline > 0 {
		ctx, cancel = context.WithTimeout(ctx, set.deadline)
		set.deadline = 0
	}
	ch := make(chan Event)
	// emit delivers one event unless the consumer is gone; cancellation
	// also makes the EM loop exit at its next ctx check, so a false return
	// only needs to stop further sends.
	emit := func(ev Event) bool {
		select {
		case ch <- ev:
			return true
		case <-ctx.Done():
			return false
		}
	}
	prev := set.observer
	set.observer = func(u model.IterationUpdate) {
		if prev != nil {
			prev(u)
		}
		if !emit(EventIteration{
			Iteration:        u.Iteration,
			Final:            u.Final,
			Delta:            u.Delta,
			EvaluatedQueries: u.EvaluatedQueries,
			Claims:           len(u.Claims),
		}) {
			return
		}
		for i := range u.Claims {
			if !emit(EventClaimUpdate{
				Iteration:  u.Iteration,
				ClaimIndex: i,
				Claim:      doc.Claims[i],
				Result:     u.Claims[i],
			}) {
				return
			}
		}
	}
	go func() {
		defer close(ch)
		defer cancel()
		rep, err := c.check(ctx, doc, set)
		done := EventDone{Report: rep, Err: err}
		// The terminal event must reach a consumer that is still reading
		// even after cancellation — when both the send and ctx.Done() are
		// ready, select picks randomly, so a plain emit would drop the
		// done event about half the time. Prefer the send, then give a
		// reading-but-slow consumer a grace window. The window bounds how
		// long an abandoned stream pins this goroutine; a consumer stalled
		// past it forfeits EventDone (any finite grace has that edge — the
		// alternative is leaking the goroutine forever).
		select {
		case ch <- done:
			return
		case <-ctx.Done():
			select {
			case ch <- done:
			case <-time.After(time.Second):
			}
		}
	}()
	return ch, nil
}
