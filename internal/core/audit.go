package core

import (
	"context"
	"sync"
	"time"

	"aggchecker/internal/document"
	"aggchecker/internal/sqlexec"
)

// This file is the corpus-scale batch auditing mode (ROADMAP item 4): a
// directory or request body of documents streams through one checker with
// cross-document shared-pass planning. Concurrently-checked documents park
// their per-iteration claim batches in a sqlexec.Window, which merges them
// into wider shared cube passes — N documents about the same tables pay
// roughly one document's worth of scans — while the engine's cost-aware
// cube cache carries results across the whole corpus. Verdicts are
// bit-for-bit identical to checking each document in isolation (pinned by
// the differential suite in audit_test.go): a merged pass still answers
// each query from the cell keyed by that query's own predicates, and
// documents pinned to different snapshot versions never share passes.

// AuditDoc is one corpus document submitted to Audit.
type AuditDoc struct {
	// Name identifies the document in the report (a file name, a URL, an
	// index — Audit does not interpret it).
	Name string
	Doc  *document.Document
}

// DocReport is one document's outcome within an audit.
type DocReport struct {
	Name   string
	Report *Report // nil when Err is set
	Err    error
}

// CacheStats is the cube cache's residency and economics snapshot: what is
// resident, what the budget is, and what the cost-aware policy has saved
// and spent over the engine's lifetime.
type CacheStats struct {
	// Entries and Bytes are the resident cube entries and their estimated
	// heap bytes; Budget is the configured byte bound (<= 0: unbounded).
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	Budget  int64 `json:"budget_bytes,omitempty"`
	// Hits/Misses count cube cache lookups; HitRate is hits/(hits+misses).
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hit_rate"`
	// NsSaved and BytesSaved accumulate, over every hit, the build time and
	// allocation the hit avoided re-spending — the cache's earnings.
	NsSaved    int64 `json:"ns_saved"`
	BytesSaved int64 `json:"bytes_saved"`
	// Evictions/EvictedBytes count entries dropped by the budget sweep;
	// AdmitRejects the fresh results too large to cache at all.
	Evictions    int64 `json:"evictions"`
	EvictedBytes int64 `json:"evicted_bytes"`
	AdmitRejects int64 `json:"admit_rejects"`
}

// cacheStatsOf snapshots an engine's cube-cache economics.
func cacheStatsOf(e *sqlexec.Engine) *CacheStats {
	entries, bytes := e.CacheUsage()
	cs := &CacheStats{
		Entries:      entries,
		Bytes:        bytes,
		Budget:       e.CubeCacheBudget(),
		Hits:         e.Stats.CacheHits.Load(),
		Misses:       e.Stats.CacheMisses.Load(),
		NsSaved:      e.Stats.CubeCacheNsSaved.Load(),
		BytesSaved:   e.Stats.CubeCacheBytesSaved.Load(),
		Evictions:    e.Stats.CubeCacheEvictions.Load(),
		EvictedBytes: e.Stats.CubeCacheEvictedBytes.Load(),
		AdmitRejects: e.Stats.CubeCacheAdmitRejects.Load(),
	}
	if tot := cs.Hits + cs.Misses; tot > 0 {
		cs.HitRate = float64(cs.Hits) / float64(tot)
	}
	return cs
}

// AuditReport aggregates a corpus audit: per-document reports in input
// order plus corpus-level totals and the engine economics of the run.
type AuditReport struct {
	// Docs is index-aligned with the submitted documents.
	Docs []DocReport
	// Checked counts documents that completed; Failed those that returned
	// an error. Claims/Erroneous total the completed documents' claims.
	Checked   int
	Failed    int
	Claims    int
	Erroneous int
	TotalTime time.Duration
	// Stats is the engine counter diff over the whole audit — including
	// window_batches, window_flushes, shared_passes, and the cube-cache
	// economics counters accumulated by the run.
	Stats map[string]int64
	// Cache is the engine's cube-cache state after the audit.
	Cache *CacheStats
}

// SharedPasses returns how many merged cube passes served queries from
// more than one document.
func (r *AuditReport) SharedPasses() int64 { return r.Stats["shared_passes"] }

// CacheHitRate returns the run's cube-cache hit rate (cross-document reuse
// included), or 0 when the run performed no cube lookups.
func (r *AuditReport) CacheHitRate() float64 {
	h, m := r.Stats["cache_hits"], r.Stats["cache_misses"]
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// AuditOption configures one Audit call.
type AuditOption func(*auditSettings)

type auditSettings struct {
	concurrency int
	window      sqlexec.WindowConfig
	onDoc       func(index int, dr DocReport)
	checkOpts   []CheckOption
}

// defaultAuditConcurrency is how many documents are checked concurrently
// when WithAuditConcurrency is not given. Sharing needs concurrency even
// on one core — parked batches from interleaved documents merge into
// shared passes regardless of parallel execution.
const defaultAuditConcurrency = 8

// WithAuditConcurrency bounds how many documents are in flight at once
// (default 8). Higher values widen the planning window's sharing
// opportunities at the price of memory for in-flight EM state.
func WithAuditConcurrency(n int) AuditOption {
	return func(s *auditSettings) { s.concurrency = n }
}

// WithAuditWindow tunes the cross-document planning window (flush
// deadline, max parked batches); zero fields keep the defaults.
func WithAuditWindow(cfg sqlexec.WindowConfig) AuditOption {
	return func(s *auditSettings) { s.window = cfg }
}

// WithAuditProgress installs a per-document completion callback, invoked
// serially (never concurrently) as documents finish — completion order,
// not input order. The CLI and the bulk endpoint stream progress from it.
func WithAuditProgress(fn func(index int, dr DocReport)) AuditOption {
	return func(s *auditSettings) { s.onDoc = fn }
}

// WithAuditCheckOptions forwards per-document check options (deadline,
// top-k, scan tuning) to every member check of the audit.
func WithAuditCheckOptions(opts ...CheckOption) AuditOption {
	return func(s *auditSettings) { s.checkOpts = append(s.checkOpts, opts...) }
}

// Audit checks a corpus of documents against the checker's database with
// cross-document shared-pass planning: documents are checked concurrently,
// their per-iteration claim batches pooled into one planning window and
// merged into shared cube passes over the checker's cached engine.
// Verdicts are bit-for-bit identical to checking each document alone.
//
// The window applies in unsharded cached mode (the default); merged,
// naive, and sharded configurations still audit concurrently but evaluate
// per their own strategy, without pooled passes. Cancellation stops
// feeding new documents and aborts in-flight checks; the report covers
// whatever completed, and ctx.Err() is returned alongside it.
func (c *Checker) Audit(ctx context.Context, docs []AuditDoc, opts ...AuditOption) (*AuditReport, error) {
	var set auditSettings
	for _, o := range opts {
		if o != nil {
			o(&set)
		}
	}
	workers := set.concurrency
	if workers <= 0 {
		workers = defaultAuditConcurrency
	}
	if workers > len(docs) {
		workers = len(docs)
	}

	start := time.Now()
	before := c.Engine.Stats.Snapshot()
	rep := &AuditReport{Docs: make([]DocReport, len(docs))}

	win := sqlexec.NewWindow(c.Engine, set.window)
	checkOpts := append([]CheckOption{withBatchRunner(win)}, set.checkOpts...)

	var progressMu sync.Mutex
	var wg sync.WaitGroup
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				d := docs[i]
				r, err := c.Check(ctx, d.Doc, checkOpts...)
				dr := DocReport{Name: d.Name, Report: r, Err: err}
				rep.Docs[i] = dr
				if set.onDoc != nil {
					progressMu.Lock()
					set.onDoc(i, dr)
					progressMu.Unlock()
				}
			}
		}()
	}
	for i := range docs {
		if ctx.Err() != nil {
			break
		}
		idx <- i
	}
	close(idx)
	wg.Wait()

	for i := range rep.Docs {
		dr := &rep.Docs[i]
		if dr.Report == nil && dr.Err == nil {
			// Never fed (cancelled before dispatch).
			dr.Name, dr.Err = docs[i].Name, ctx.Err()
		}
		if dr.Err != nil {
			rep.Failed++
			continue
		}
		rep.Checked++
		rep.Claims += len(dr.Report.Result.Claims)
		rep.Erroneous += len(dr.Report.ErroneousClaims())
	}
	rep.TotalTime = time.Since(start)
	rep.Stats = diffStats(before, c.Engine.Stats.Snapshot())
	rep.Cache = cacheStatsOf(c.Engine)
	return rep, ctx.Err()
}

// Audit checks a corpus against a named database; see Checker.Audit.
func (s *Service) Audit(ctx context.Context, name string, docs []AuditDoc, opts ...AuditOption) (*AuditReport, error) {
	ck, err := s.Checker(ctx, name)
	if err != nil {
		return nil, err
	}
	return ck.Audit(ctx, docs, opts...)
}
