package core

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"aggchecker/internal/corpus"
	"aggchecker/internal/sqlexec"
)

// reportFingerprint reduces a report to the claim-level values sharded
// execution must reproduce exactly: verdicts, posteriors, and every ranked
// candidate's query, probability, and evaluated result (bit patterns, so
// NaN slots compare too — the corpus data is integral, which makes float
// sums associative and the comparison exact).
type rankedPrint struct {
	key        string
	probBits   uint64
	resultBits uint64
	matches    bool
}

func fingerprint(t *testing.T, rep *Report) [][]rankedPrint {
	t.Helper()
	out := make([][]rankedPrint, 0, len(rep.Claims()))
	for _, cr := range rep.Claims() {
		var rs []rankedPrint
		for _, rq := range cr.Ranked {
			rs = append(rs, rankedPrint{
				key:        rq.Query.Key(),
				probBits:   math.Float64bits(rq.Prob),
				resultBits: math.Float64bits(rq.Result),
				matches:    rq.Matches,
			})
		}
		out = append(out, rs)
	}
	return out
}

func diffFingerprints(t *testing.T, label string, want, got [][]rankedPrint, wantRep, gotRep *Report) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: claim count %d, want %d", label, len(got), len(want))
	}
	for i := range want {
		if gotRep.Claims()[i].Erroneous != wantRep.Claims()[i].Erroneous {
			t.Errorf("%s: claim %d verdict differs", label, i)
		}
		if len(want[i]) != len(got[i]) {
			t.Errorf("%s: claim %d ranking length %d, want %d", label, i, len(got[i]), len(want[i]))
			continue
		}
		for j := range want[i] {
			if want[i][j] != got[i][j] {
				t.Errorf("%s: claim %d rank %d: got %+v, want %+v", label, i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestShardedReportsMatchUnsharded checks every evaluation strategy end to
// end: a 3-shard checker must produce bit-for-bit the unsharded report.
func TestShardedReportsMatchUnsharded(t *testing.T) {
	tc := corpus.MustLoad().Cases[0]
	for _, mode := range []EvalMode{EvalCached, EvalMerged, EvalNaive} {
		cfg := quickCfg()
		cfg.Mode = mode
		plain := NewChecker(tc.DB, cfg)
		want, err := plain.Check(context.Background(), tc.Doc)
		if err != nil {
			t.Fatal(err)
		}

		scfg := cfg
		scfg.Shards = 3
		sharded := NewChecker(tc.DB, scfg)
		if sharded.Sharder() == nil {
			t.Fatal("checker did not shard")
		}
		got, err := sharded.Check(context.Background(), tc.Doc)
		if err != nil {
			t.Fatal(err)
		}
		diffFingerprints(t, mode.String(), fingerprint(t, want), fingerprint(t, got), want, got)
		if got.Stats["shard_fanouts"] == 0 || got.Stats["shard_partials"] == 0 {
			t.Errorf("%s: shard counters missing from Report.Stats: %d fanouts, %d partials",
				mode, got.Stats["shard_fanouts"], got.Stats["shard_partials"])
		}
		if want.Stats["shard_fanouts"] != 0 {
			t.Errorf("%s: unsharded report counts %d fanouts", mode, want.Stats["shard_fanouts"])
		}
	}
}

// TestShardedHTTPTransportMatchesUnsharded runs the same end-to-end
// differential with the coordinator talking to its shards over the HTTP
// worker protocol: the partitions are registered as ordinary databases on a
// peer daemon (httptest) and placed by the consistent-hash ring.
func TestShardedHTTPTransportMatchesUnsharded(t *testing.T) {
	tc := corpus.MustLoad().Cases[0]
	cfg := quickCfg()
	plain := NewChecker(tc.DB, cfg)
	want, err := plain.Check(context.Background(), tc.Doc)
	if err != nil {
		t.Fatal(err)
	}

	// Build the sharded checker twice over the same source: the first pass
	// only materializes the partitions so the peer can host them.
	scfg := cfg
	scfg.Shards = 3
	sharded := NewChecker(tc.DB, scfg)
	peer := NewService()
	for _, p := range sharded.Sharder().Partitions() {
		if err := peer.RegisterDatabase(p.Name, p); err != nil {
			t.Fatal(err)
		}
	}
	srv := httptest.NewServer(newShardPeerHandler(t, peer))
	defer srv.Close()

	rcfg := scfg
	rcfg.ShardEndpoints = []string{srv.URL}
	remote := NewChecker(tc.DB, rcfg)
	got, err := remote.Check(context.Background(), tc.Doc)
	if err != nil {
		t.Fatal(err)
	}
	diffFingerprints(t, "http", fingerprint(t, want), fingerprint(t, got), want, got)
	if got.Stats["shard_fanouts"] == 0 {
		t.Error("no fan-outs recorded over HTTP transport")
	}
}

// TestShardedRefreshAbsorbs pins the incremental path: appending to the
// source and refreshing routes the delta into the partitions and the next
// check sees the new rows identically to an unsharded checker.
func TestShardedRefreshAbsorbs(t *testing.T) {
	tc := corpus.MustLoad().Cases[0]
	mkService := func(shards int) *Service {
		svc := NewService(WithDefaultConfig(quickCfg()), WithShards(shards))
		if err := svc.RegisterDatabase("nfl", tc.DB); err != nil {
			t.Fatal(err)
		}
		return svc
	}
	ctx := context.Background()

	svc := mkService(2)
	if _, err := svc.Check(ctx, "nfl", tc.Doc); err != nil {
		t.Fatal(err)
	}
	ck, err := svc.Checker(ctx, "nfl")
	if err != nil {
		t.Fatal(err)
	}
	sh := ck.Sharder()
	if sh == nil {
		t.Fatal("service default did not shard")
	}
	rowsBefore := 0
	for _, n := range sh.Rows() {
		rowsBefore += n
	}

	// Stage rows on the owner database; Refresh commits and absorbs.
	table := tc.DB.Tables()[0].Name
	cols := len(tc.DB.Tables()[0].Columns)
	row := make([]any, cols)
	row[0] = "Extra Player"
	for i := 1; i < cols; i++ {
		row[i] = nil
	}
	if err := tc.DB.Append(table, row); err != nil {
		t.Fatal(err)
	}
	st, err := svc.Refresh(ctx, "nfl")
	if err != nil {
		t.Fatal(err)
	}
	if st.Appended != 1 {
		t.Fatalf("appended = %d, want 1", st.Appended)
	}
	if st.Shard == nil || st.Shard.Shards != 2 {
		t.Fatalf("refresh status missing shard state: %+v", st.Shard)
	}
	rowsAfter := 0
	for _, n := range st.Shard.Rows {
		rowsAfter += n
	}
	if rowsAfter != rowsBefore+1 {
		t.Fatalf("partition rows %d -> %d, want +1 (absorb did not run)", rowsBefore, rowsAfter)
	}

	// The post-refresh check over shards must equal a fresh unsharded
	// checker over the same (now larger) database.
	got, err := svc.Check(ctx, "nfl", tc.Doc)
	if err != nil {
		t.Fatal(err)
	}
	want, err := NewChecker(tc.DB, quickCfg()).Check(ctx, tc.Doc)
	if err != nil {
		t.Fatal(err)
	}
	diffFingerprints(t, "refresh", fingerprint(t, want), fingerprint(t, got), want, got)
}

// TestUnshardedConfigUntouched guards the default path: Shards 0/1 must
// not build shard machinery.
func TestUnshardedConfigUntouched(t *testing.T) {
	tc := corpus.MustLoad().Cases[0]
	for _, k := range []int{0, 1} {
		cfg := quickCfg()
		cfg.Shards = k
		if ck := NewChecker(tc.DB, cfg); ck.Sharder() != nil {
			t.Fatalf("Shards=%d built a sharder", k)
		}
	}
	// Per-database override beats the service default.
	svc := NewService(WithDefaultConfig(quickCfg()), WithShards(4))
	if err := svc.RegisterDatabase("plain", tc.DB, WithDatabaseShards(1, nil)); err != nil {
		t.Fatal(err)
	}
	ck, err := svc.Checker(context.Background(), "plain")
	if err != nil {
		t.Fatal(err)
	}
	if ck.Sharder() != nil {
		t.Fatal("WithDatabaseShards(1) did not override the sharded default")
	}
}

// newShardPeerHandler adapts a Service to the shard worker protocol the way
// httpapi's shard endpoints do; the in-package core test cannot import
// httpapi (cycle), so the routing is reimplemented here.
func newShardPeerHandler(t *testing.T, svc *Service) http.Handler {
	t.Helper()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rest := strings.TrimPrefix(r.URL.Path, "/v1/shard/databases/")
		cut := strings.LastIndex(rest, "/")
		if cut < 0 {
			http.NotFound(w, r)
			return
		}
		name, kind := rest[:cut], rest[cut+1:]
		ck, err := svc.Checker(r.Context(), name)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		var out any
		switch kind {
		case "cube":
			var req sqlexec.CubeRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			out, err = ck.Engine.CubePartialFor(r.Context(), req)
		case "scan":
			var req sqlexec.ScanRequest
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			out, err = ck.Engine.ScanPartialContext(r.Context(), req.Query)
		default:
			http.NotFound(w, r)
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(out); err != nil {
			t.Logf("peer encode: %v", err)
		}
	})
}
