package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"aggchecker/internal/corpus"
	"aggchecker/internal/db"
)

func nflOpener(t *testing.T, builds *atomic.Int32) OpenFunc {
	t.Helper()
	tc := corpus.MustLoad().Cases[0]
	return func(context.Context) (*db.Database, error) {
		if builds != nil {
			builds.Add(1)
		}
		return tc.DB, nil
	}
}

func TestServiceUnknownDatabase(t *testing.T) {
	svc := NewService()
	_, err := svc.Checker(context.Background(), "ghost")
	if !errors.Is(err, ErrUnknownDatabase) {
		t.Fatalf("err = %v, want ErrUnknownDatabase", err)
	}
	tc := corpus.MustLoad().Cases[0]
	if _, err := svc.Check(context.Background(), "ghost", tc.Doc); !errors.Is(err, ErrUnknownDatabase) {
		t.Fatalf("Check err = %v, want ErrUnknownDatabase", err)
	}
}

func TestServiceDuplicateRegistration(t *testing.T) {
	svc := NewService()
	if err := svc.Register("a", nflOpener(t, nil)); err != nil {
		t.Fatal(err)
	}
	if err := svc.Register("a", nflOpener(t, nil)); err == nil {
		t.Fatal("second Register succeeded, want error")
	}
}

func TestServiceLazySingleflightBuild(t *testing.T) {
	var builds atomic.Int32
	svc := NewService(WithDefaultConfig(quickCfg()))
	if err := svc.Register("nfl", nflOpener(t, &builds)); err != nil {
		t.Fatal(err)
	}
	if got := builds.Load(); got != 0 {
		t.Fatalf("Register built eagerly (%d builds)", got)
	}

	const callers = 16
	var wg sync.WaitGroup
	checkers := make([]*Checker, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ck, err := svc.Checker(context.Background(), "nfl")
			if err != nil {
				t.Error(err)
				return
			}
			checkers[i] = ck
		}(i)
	}
	wg.Wait()
	if got := builds.Load(); got != 1 {
		t.Fatalf("concurrent first use ran %d builds, want 1 (singleflight)", got)
	}
	for i := 1; i < callers; i++ {
		if checkers[i] != checkers[0] {
			t.Fatalf("caller %d got a different checker instance", i)
		}
	}
}

func TestServiceLRUEviction(t *testing.T) {
	var builds atomic.Int32
	svc := NewService(WithDefaultConfig(quickCfg()), WithMaxResident(2))
	for _, name := range []string{"a", "b", "c"} {
		if err := svc.Register(name, nflOpener(t, &builds)); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	for _, name := range []string{"a", "b"} {
		if _, err := svc.Checker(ctx, name); err != nil {
			t.Fatal(err)
		}
	}
	// Touch "a" so "b" is the LRU victim when "c" arrives.
	if _, err := svc.Checker(ctx, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Checker(ctx, "c"); err != nil {
		t.Fatal(err)
	}
	res := svc.Resident()
	if len(res) != 2 || res[0] != "c" || res[1] != "a" {
		t.Fatalf("Resident() = %v, want [c a]", res)
	}
	if got := builds.Load(); got != 3 {
		t.Fatalf("builds = %d, want 3", got)
	}
	// "b" was evicted but stays registered: next use rebuilds.
	if _, err := svc.Checker(ctx, "b"); err != nil {
		t.Fatal(err)
	}
	if got := builds.Load(); got != 4 {
		t.Fatalf("builds after rebuild = %d, want 4", got)
	}
}

func TestServiceOpenErrorIsNotCached(t *testing.T) {
	fail := true
	tc := corpus.MustLoad().Cases[0]
	svc := NewService(WithDefaultConfig(quickCfg()))
	err := svc.Register("flaky", func(context.Context) (*db.Database, error) {
		if fail {
			return nil, fmt.Errorf("source offline")
		}
		return tc.DB, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Checker(context.Background(), "flaky"); err == nil {
		t.Fatal("first use succeeded, want open error")
	}
	fail = false
	if _, err := svc.Checker(context.Background(), "flaky"); err != nil {
		t.Fatalf("retry after open error failed: %v", err)
	}
}

func TestServiceCheckEndToEnd(t *testing.T) {
	tc := corpus.MustLoad().Cases[0]
	svc := NewService(WithDefaultConfig(quickCfg()))
	if err := svc.RegisterDatabase("nfl", tc.DB); err != nil {
		t.Fatal(err)
	}
	rep, err := svc.Check(context.Background(), "nfl", tc.Doc, WithTopK(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Claims()) != len(tc.Doc.Claims) {
		t.Fatalf("claims = %d, want %d", len(rep.Claims()), len(tc.Doc.Claims))
	}
	for i, cr := range rep.Claims() {
		if len(cr.Ranked) > 2 {
			t.Fatalf("claim %d: %d ranked queries, want ≤ 2", i, len(cr.Ranked))
		}
	}
	names := svc.Names()
	if len(names) != 1 || names[0] != "nfl" {
		t.Fatalf("Names() = %v", names)
	}
}

func TestServicePerDatabaseConfig(t *testing.T) {
	tc := corpus.MustLoad().Cases[0]
	naive := quickCfg()
	naive.Mode = EvalNaive
	svc := NewService(WithDefaultConfig(quickCfg()))
	if err := svc.RegisterDatabase("nfl", tc.DB, WithDatabaseConfig(naive)); err != nil {
		t.Fatal(err)
	}
	ck, err := svc.Checker(context.Background(), "nfl")
	if err != nil {
		t.Fatal(err)
	}
	if ck.Config.Mode != EvalNaive {
		t.Fatalf("checker mode = %v, want naive (per-database config)", ck.Config.Mode)
	}
}
