package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"aggchecker/internal/db"
	"aggchecker/internal/document"
)

// deadSource always fails: a service that still answers after its source
// died proves the checker was restored from the block store alone.
type deadSource struct{}

func (deadSource) Open(context.Context) (*db.Database, error) {
	return nil, errors.New("source is gone")
}

const persistCSV = "player,team,amount\n" +
	"Alice,reds,100\nBob,reds,200\nCara,blues,300\nDrew,blues,400\n" +
	"Evan,reds,500\nFay,blues,600\nGus,reds,700\nHope,blues,800\n"

// reportsIdentical asserts two reports agree claim by claim, bit for bit:
// same verdicts, same posterior mass, same ranked translations with
// identical probabilities and evaluated results.
func reportsIdentical(t *testing.T, want, got *Report) {
	t.Helper()
	if len(want.Claims()) != len(got.Claims()) {
		t.Fatalf("claims = %d, want %d", len(got.Claims()), len(want.Claims()))
	}
	for i := range want.Claims() {
		w, g := want.Claims()[i], got.Claims()[i]
		if w.Erroneous != g.Erroneous {
			t.Errorf("claim %d: verdict %v, want %v", i, g.Erroneous, w.Erroneous)
		}
		if math.Float64bits(w.PCorrect) != math.Float64bits(g.PCorrect) {
			t.Errorf("claim %d: PCorrect %v, want %v (bit-for-bit)", i, g.PCorrect, w.PCorrect)
		}
		if len(w.Ranked) != len(g.Ranked) {
			t.Errorf("claim %d: ranked %d, want %d", i, len(g.Ranked), len(w.Ranked))
			continue
		}
		for j := range w.Ranked {
			wq, gq := w.Ranked[j], g.Ranked[j]
			if wq.Query.Key() != gq.Query.Key() {
				t.Errorf("claim %d rank %d: query %s, want %s", i, j, gq.Query.Key(), wq.Query.Key())
			}
			if math.Float64bits(wq.Prob) != math.Float64bits(gq.Prob) ||
				math.Float64bits(wq.Result) != math.Float64bits(gq.Result) ||
				wq.Matches != gq.Matches {
				t.Errorf("claim %d rank %d: (prob=%v result=%v match=%v), want (%v %v %v)",
					i, j, gq.Prob, gq.Result, gq.Matches, wq.Prob, wq.Result, wq.Matches)
			}
		}
	}
}

// TestServicePersistentRestart is the crash-recovery acceptance check at
// the service layer: a database checked under a DataDir leaves a durable
// store behind, and a brand-new service whose source has died entirely
// restores the checker from that store and serves a bit-for-bit identical
// report without touching the source.
func TestServicePersistentRestart(t *testing.T) {
	dir := t.TempDir()
	path := writeCSV(t, dir, "fines.csv", persistCSV)
	cfg := quickCfg()
	cfg.DataDir = filepath.Join(dir, "blocks")
	doc := document.ParseText("There are 8 players. The average fine is 450 dollars.")
	ctx := context.Background()

	svc1 := NewService(WithDefaultConfig(cfg))
	if err := svc1.RegisterSource("fines", db.NewCSVSource("fines", path)); err != nil {
		t.Fatal(err)
	}
	rep1, err := svc1.Check(ctx, "fines", doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep1.Claims()) == 0 {
		t.Fatal("no claims detected")
	}
	st1, err := svc1.Status("fines")
	if err != nil {
		t.Fatal(err)
	}
	if st1.Store == nil {
		t.Fatal("resident status has no store section under DataDir")
	}
	if st1.Store.Version != st1.Version || st1.Store.DataBytes == 0 || st1.Store.ManifestBytes == 0 {
		t.Fatalf("store status = %+v, want durable version %d with data", st1.Store, st1.Version)
	}

	// "Restart": a fresh service over the same DataDir, source dead. The
	// checker must build purely from the store.
	svc2 := NewService(WithDefaultConfig(cfg))
	if err := svc2.RegisterSource("fines", deadSource{}); err != nil {
		t.Fatal(err)
	}
	st2, err := svc2.Status("fines")
	if err != nil || st2.Resident {
		t.Fatalf("pre-restore status = %+v (%v)", st2, err)
	}
	rep2, err := svc2.Check(ctx, "fines", doc)
	if err != nil {
		t.Fatalf("check after restart (dead source): %v", err)
	}
	reportsIdentical(t, rep1, rep2)
	st2, err = svc2.Status("fines")
	if err != nil || st2.Store == nil {
		t.Fatalf("post-restore status = %+v (%v)", st2, err)
	}
	if st2.Version != st1.Version || st2.Store.Version != st1.Store.Version {
		t.Fatalf("restored version %d/%d, want %d", st2.Version, st2.Store.Version, st1.Version)
	}
	if st2.TotalRows != st1.TotalRows {
		t.Fatalf("restored rows %d, want %d", st2.TotalRows, st1.TotalRows)
	}
}

// TestServicePersistentRefreshAndCompaction drives the full persistent
// lifecycle: refreshes append durable blocks, a compaction threshold kicks
// off a background reseal, and a dead-source restart restores the
// compacted state.
func TestServicePersistentRefreshAndCompaction(t *testing.T) {
	dir := t.TempDir()
	path := writeCSV(t, dir, "fines.csv", persistCSV)
	cfg := quickCfg()
	cfg.DataDir = filepath.Join(dir, "blocks")
	cfg.CompactAfter = 3
	ctx := context.Background()

	svc := NewService(WithDefaultConfig(cfg))
	if err := svc.RegisterSource("fines", db.NewCSVSource("fines", path)); err != nil {
		t.Fatal(err)
	}
	ck, err := svc.Checker(ctx, "fines")
	if err != nil {
		t.Fatal(err)
	}
	if ck.Store() == nil {
		t.Fatal("checker under DataDir has no store")
	}

	// Each refresh appends one sealed block; the third crosses the
	// CompactAfter threshold and triggers a background reseal.
	for i := 0; i < 3; i++ {
		f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fmt.Fprintf(f, "New%d,reds,%d\n", i, 50+i); err != nil {
			t.Fatal(err)
		}
		f.Close()
		if _, err := svc.Refresh(ctx, "fines"); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		blocks := len(ck.DB.Snapshot().Tables()[0].Blocks())
		if blocks == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background compaction never resealed (still %d blocks)", blocks)
		}
		time.Sleep(10 * time.Millisecond)
	}
	st, err := svc.Status("fines")
	if err != nil || st.Store == nil {
		t.Fatalf("status = %+v (%v)", st, err)
	}
	if st.Store.Resets < 2 {
		t.Errorf("store resets = %d, want ≥ 2 (bootstrap + compaction reseal)", st.Store.Resets)
	}
	if st.TotalRows != 11 {
		t.Errorf("rows = %d, want 11", st.TotalRows)
	}

	// Restart over the compacted store with a dead source.
	svc2 := NewService(WithDefaultConfig(cfg))
	if err := svc2.RegisterSource("fines", deadSource{}); err != nil {
		t.Fatal(err)
	}
	ck2, err := svc2.Checker(ctx, "fines")
	if err != nil {
		t.Fatal(err)
	}
	snap := ck2.DB.Snapshot()
	if got := snap.Tables()[0].NumRows(); got != 11 {
		t.Fatalf("restored rows = %d, want 11", got)
	}
	if got := len(snap.Tables()[0].Blocks()); got != 1 {
		t.Fatalf("restored blocks = %d, want 1 (compacted layout persists)", got)
	}
}

// TestServicePersistentCorruptStoreFallsBack proves an unreadable store
// directory cannot block a database: it is moved aside to <dir>.bad and
// the source bootstraps a fresh store.
func TestServicePersistentCorruptStoreFallsBack(t *testing.T) {
	dir := t.TempDir()
	path := writeCSV(t, dir, "fines.csv", persistCSV)
	cfg := quickCfg()
	cfg.DataDir = filepath.Join(dir, "blocks")
	storeDir := filepath.Join(cfg.DataDir, "fines")
	// A MANIFEST that is a directory defeats any recovery parse.
	if err := os.MkdirAll(filepath.Join(storeDir, "MANIFEST"), 0o755); err != nil {
		t.Fatal(err)
	}

	svc := NewService(WithDefaultConfig(cfg))
	if err := svc.RegisterSource("fines", db.NewCSVSource("fines", path)); err != nil {
		t.Fatal(err)
	}
	ck, err := svc.Checker(context.Background(), "fines")
	if err != nil {
		t.Fatal(err)
	}
	if ck.Store() == nil {
		t.Fatal("fallback bootstrap did not attach a store")
	}
	if _, err := os.Stat(storeDir + ".bad"); err != nil {
		t.Errorf("corrupt store was not quarantined: %v", err)
	}
	if _, err := os.Stat(filepath.Join(storeDir, "MANIFEST")); err != nil {
		t.Errorf("fresh store has no manifest: %v", err)
	}
}

// TestServiceEvictionDetachesStore: evicting a persistent checker releases
// the store's file handles (Detach) so a later rebuild can reopen the same
// directory, restoring — not re-parsing — the published state.
func TestServiceEvictionDetachesStore(t *testing.T) {
	dir := t.TempDir()
	path := writeCSV(t, dir, "fines.csv", persistCSV)
	cfg := quickCfg()
	cfg.DataDir = filepath.Join(dir, "blocks")
	ctx := context.Background()

	svc := NewService(WithDefaultConfig(cfg), WithMaxResident(1))
	if err := svc.RegisterSource("fines", db.NewCSVSource("fines", path)); err != nil {
		t.Fatal(err)
	}
	if err := svc.RegisterSource("other", db.NewCSVSource("other", writeCSV(t, dir, "other.csv", "v\n1\n"))); err != nil {
		t.Fatal(err)
	}
	ck1, err := svc.Checker(ctx, "fines")
	if err != nil {
		t.Fatal(err)
	}
	v1 := ck1.DB.Snapshot().Version()
	// Loading "other" evicts "fines" (max resident 1) and detaches its store.
	if _, err := svc.Checker(ctx, "other"); err != nil {
		t.Fatal(err)
	}
	if res := svc.Resident(); len(res) != 1 || res[0] != "other" {
		t.Fatalf("Resident() = %v, want [other]", res)
	}
	// Rebuild "fines": the store directory reopens cleanly at the same
	// version even though the evicted checker still exists.
	ck2, err := svc.Checker(ctx, "fines")
	if err != nil {
		t.Fatal(err)
	}
	if ck2 == ck1 {
		t.Fatal("expected a rebuilt checker after eviction")
	}
	if got := ck2.DB.Snapshot().Version(); got != v1 {
		t.Fatalf("reopened version = %d, want %d", got, v1)
	}
}
