// Package core wires the AggChecker pipeline end to end (Figure 1 of the
// paper): fragment extraction and indexing, document parsing and claim
// detection, keyword matching, the expectation-maximization probabilistic
// model, and massive-scale candidate evaluation. The root aggchecker
// package re-exports the public surface.
package core

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"aggchecker/internal/colstore"
	"aggchecker/internal/db"
	"aggchecker/internal/document"
	"aggchecker/internal/evaluate"
	"aggchecker/internal/fragments"
	"aggchecker/internal/keywords"
	"aggchecker/internal/model"
	"aggchecker/internal/shard"
	"aggchecker/internal/sqlexec"
)

// EvalMode selects the query evaluation strategy (the rows of Table 6).
type EvalMode int

const (
	// EvalCached merges candidates into cube queries and caches cube
	// results across claims and EM iterations (the paper's full system).
	EvalCached EvalMode = iota
	// EvalMerged merges candidates into cube queries but never reuses
	// results across requests.
	EvalMerged
	// EvalNaive evaluates every candidate query with its own scan.
	EvalNaive
)

func (m EvalMode) String() string {
	switch m {
	case EvalCached:
		return "merged+cached"
	case EvalMerged:
		return "merged"
	case EvalNaive:
		return "naive"
	}
	return "unknown"
}

// ParseEvalMode parses a user-supplied evaluation mode name. It accepts the
// String() forms plus common aliases ("cached", "merged+cached", "merged",
// "naive"), case-insensitively.
func ParseEvalMode(s string) (EvalMode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "cached", "merged+cached", "merged-cached":
		return EvalCached, nil
	case "merged":
		return EvalMerged, nil
	case "naive":
		return EvalNaive, nil
	}
	return EvalCached, fmt.Errorf("unknown eval mode %q (want cached, merged, or naive)", s)
}

// Config aggregates the tunables of every pipeline stage.
type Config struct {
	Fragments fragments.Options
	Context   keywords.ContextConfig
	Model     model.Config
	Mode      EvalMode
	// Workers bounds the engine-side worker pool that executes the merged
	// cube passes of each document-level batch; ≤ 0 uses GOMAXPROCS.
	Workers int
	// Exec configures every engine this config builds (the checker's cached
	// engine and the fresh per-request engines of merged/naive modes):
	// scan-worker bounds, zone maps, kernel selection, and — installed by
	// core.WithScheduler at the service layer — the process-wide shared
	// morsel scheduler. See sqlexec's ExecOption.
	Exec []sqlexec.ExecOption
	// Shards > 1 partitions the database's fact tables into that many
	// independent snapshot-versioned partitions at checker build time and
	// answers every candidate query by scatter-gather over per-shard
	// workers (package shard). Results are identical to unsharded
	// execution; 0 or 1 runs unsharded.
	Shards int
	// ShardKeys maps fact-table name to the column rows are hash-placed by
	// (co-locating equal keys on one shard). Tables without an entry fall
	// back to round-robin placement; dimension tables are replicated.
	ShardKeys map[string]string
	// ShardEndpoints switches shard workers from in-process engines to
	// remote peers speaking the shard HTTP protocol (aggcheckd's
	// /v1/shard/databases/{name}/cube and /scan): each partition is placed
	// on an endpoint by consistent hashing and served under the partition
	// database's name. Remote workers pin their own partition snapshots per
	// request, so cross-shard version consistency is per-fan-out rather
	// than per-check. Empty runs shards in process.
	ShardEndpoints []string
	// DataDir, when non-empty, backs each service-hosted database with a
	// persistent columnar block store under DataDir/<name>: every Commit is
	// made durable, and a restart reopens the store at the last published
	// version without touching the source files. Empty runs memory-only.
	DataDir string
	// CompactAfter > 0 triggers a background compaction when a refresh
	// leaves any table with at least that many sealed blocks: blocks are
	// resealed into one per table with adaptively re-chunked zone maps and
	// republished under a new structural epoch. 0 never compacts.
	CompactAfter int
}

// DefaultConfig is the paper's main configuration.
func DefaultConfig() Config {
	return Config{
		Fragments: fragments.DefaultOptions(),
		Context:   keywords.DefaultContext(),
		Model:     model.DefaultConfig(),
		Mode:      EvalCached,
	}
}

// Checker verifies text documents against one relational database. Create
// it once per database; Check may be called for many documents.
type Checker struct {
	DB      *db.Database
	Catalog *fragments.Catalog
	Engine  *sqlexec.Engine
	Config  Config

	// shards and coord are set when Config.Shards > 1: the hash-partitioned
	// storage and the cached-mode coordinator whose partition engines keep
	// their cube caches across documents (merged/naive modes build fresh
	// partition engines per request, mirroring the unsharded strategy
	// isolation).
	shards *db.Sharder
	coord  *shard.Coordinator

	// store is the persistent block store behind DB when Config.DataDir is
	// set (service-built checkers only); compacting serializes background
	// compactions.
	store      *colstore.Store
	compacting atomic.Bool
}

// NewChecker builds the fragment catalog and indexes for the database
// (the per-dataset preprocessing of §4.2). With cfg.Shards > 1 it also
// partitions the fact tables and stands up the shard coordinator.
func NewChecker(d *db.Database, cfg Config) *Checker {
	c := &Checker{
		DB:      d,
		Catalog: fragments.BuildCatalog(d, cfg.Fragments),
		Engine:  sqlexec.NewEngine(d, cfg.Exec...),
		Config:  cfg,
	}
	if cfg.Shards > 1 {
		if sh, err := db.NewSharder(d, cfg.Shards, db.ShardOptions{Keys: cfg.ShardKeys}); err == nil {
			c.shards = sh
			c.coord = shard.NewCoordinator(c.buildShardWorkers(cfg, false), &c.Engine.Stats)
		}
	}
	return c
}

// buildShardWorkers wraps each partition in a worker: an in-process engine
// built with the config's Exec options (so partitions share the service's
// morsel scheduler when one is installed), or — with ShardEndpoints — an
// HTTP client against the consistent-hash-placed peer serving the
// partition's database. Remote workers manage their own caching, so
// noCache only applies in process.
func (c *Checker) buildShardWorkers(cfg Config, noCache bool) []shard.Worker {
	workers := make([]shard.Worker, 0, c.shards.NumShards())
	if len(cfg.ShardEndpoints) > 0 {
		ring := shard.NewRing(cfg.ShardEndpoints)
		for i, p := range c.shards.Partitions() {
			workers = append(workers, &shard.Client{Base: ring.NodeForShard(i), Database: p.Name})
		}
		return workers
	}
	for _, p := range c.shards.Partitions() {
		e := sqlexec.NewEngine(p, cfg.Exec...)
		if noCache {
			e.Tune(sqlexec.WithCaching(false))
		}
		workers = append(workers, &shard.LocalWorker{Engine: e})
	}
	return workers
}

// Sharder exposes the checker's partitioned storage, or nil when the
// checker runs unsharded.
func (c *Checker) Sharder() *db.Sharder { return c.shards }

// Store exposes the checker's persistent block store, or nil when the
// checker runs memory-only.
func (c *Checker) Store() *colstore.Store { return c.store }

// Compact reseals the database's small sealed blocks into one block per
// table with adaptively re-chunked zone maps, republishing under a new
// structural epoch. In-flight checks keep their pinned snapshots; the next
// check pays one counted full cube rebuild (Stats.EpochRebuilds) against
// the resealed layout. With a store attached the reseal is recorded
// durably before Compact returns.
func (c *Checker) Compact() error {
	_, err := c.DB.Compact()
	return err
}

// maybeCompactAsync starts a background compaction if any table has
// reached the sealed-block threshold and no compaction is already running.
func (c *Checker) maybeCompactAsync(after int) {
	if after <= 0 || c.DB.MaxBlocks() < after {
		return
	}
	if !c.compacting.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer c.compacting.Store(false)
		// A failed compaction surfaces through Database.PersistError on the
		// next commit; there is no caller to report to here.
		_ = c.Compact()
	}()
}

// detachStore releases the store's file handles while keeping its column
// mappings valid for snapshot readers still draining. Called on eviction.
func (c *Checker) detachStore() {
	if c.store != nil {
		c.store.Detach()
	}
}

// AbsorbShards routes rows committed to the source database since the last
// absorption into the partitions (sealing per-shard delta blocks), and
// reports how many rows moved. It is a no-op returning 0 when unsharded.
func (c *Checker) AbsorbShards() (int, error) {
	if c.shards == nil {
		return 0, nil
	}
	return c.shards.Absorb()
}

// Report is the outcome of checking one document.
type Report struct {
	Document *document.Document
	Result   *model.Result

	// TotalTime covers the whole pipeline; QueryTime only the model's
	// candidate evaluation phase (the "Query" column of Table 6).
	TotalTime time.Duration
	QueryTime time.Duration
	Stats     map[string]int64
}

// Claims returns the per-claim verification results.
func (r *Report) Claims() []model.ClaimResult { return r.Result.Claims }

// ErroneousClaims returns the claims tentatively marked wrong.
func (r *Report) ErroneousClaims() []model.ClaimResult {
	var out []model.ClaimResult
	for _, c := range r.Result.Claims {
		if c.Erroneous {
			out = append(out, c)
		}
	}
	return out
}

// Check runs the full verification pipeline on a parsed document. The
// request is abandoned — promptly, mid-EM if necessary — once ctx is
// cancelled or a WithDeadline option expires, returning ctx's error.
// Per-request options override the checker's Config without mutating it,
// so concurrent Check calls with different options are safe.
func (c *Checker) Check(ctx context.Context, doc *document.Document, opts ...CheckOption) (*Report, error) {
	return c.check(ctx, doc, newCheckSettings(c.Config, opts))
}

// CheckDocument verifies a parsed document without cancellation support.
//
// Deprecated: use Check with a context.
func (c *Checker) CheckDocument(doc *document.Document) *Report {
	rep, _ := c.Check(context.Background(), doc)
	return rep
}

// CheckHTML parses HTML-lite markup and verifies it without cancellation
// support.
//
// Deprecated: use document.ParseHTML (aggchecker.ParseHTML) plus Check
// with a context.
func (c *Checker) CheckHTML(src string) *Report {
	return c.CheckDocument(document.ParseHTML(src))
}

// CheckText parses plain text (markdown-lite headings) and verifies it
// without cancellation support.
//
// Deprecated: use document.ParseText (aggchecker.ParseText) plus Check
// with a context.
func (c *Checker) CheckText(src string) *Report {
	return c.CheckDocument(document.ParseText(src))
}

// check is the shared pipeline behind Check and Stream.
func (c *Checker) check(ctx context.Context, doc *document.Document, set checkSettings) (*Report, error) {
	if set.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, set.deadline)
		defer cancel()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	scores := keywords.MatchAll(c.Catalog, doc, set.cfg.Context, set.cfg.Model.TopKHits)

	ev, engine := c.evaluatorFor(set.cfg, set.runner)
	// Pin one storage snapshot for the whole request: every cube pass and
	// direct scan of this check observes a single version, so a Refresh
	// committing mid-check cannot mix row sets between EM iterations. A
	// sharded checker additionally pins every partition snapshot, so shard
	// workers stay version-consistent across the fan-outs of one check even
	// while AbsorbShards commits partition deltas concurrently.
	ctx = sqlexec.WithSnapshot(ctx, engine.DB.Snapshot())
	if c.shards != nil {
		for _, p := range c.shards.Partitions() {
			ctx = sqlexec.WithSnapshot(ctx, p.Snapshot())
		}
	}
	// Per-request execution overrides (WithScanWorkers, WithZoneMaps) ride
	// the context: the shared engine is never retuned for one request.
	if len(set.exec) > 0 {
		ctx = sqlexec.ContextWithOptions(ctx, set.exec...)
	}
	// Diff the engine counters around the run so Report.Stats is
	// per-document even in cached mode, where the checker-lifetime engine
	// is shared across calls. Snapshot reads are atomic loads, so taking
	// one while other checks or streams are in flight is race-free (the
	// diff then also includes their interleaved work — the counters are
	// engine-wide by design).
	before := engine.Stats.Snapshot()
	queryStart := time.Now()
	res, err := model.Run(ctx, c.Catalog, doc, scores, ev, set.cfg.Model, set.observer)
	if err != nil {
		return nil, err
	}
	queryTime := time.Since(queryStart)

	return &Report{
		Document:  doc,
		Result:    res,
		TotalTime: time.Since(start),
		QueryTime: queryTime,
		Stats:     diffStats(before, engine.Stats.Snapshot()),
	}, nil
}

// diffStats subtracts the before-snapshot from the after-snapshot, keeping
// every counter of after (counters are monotonic).
func diffStats(before, after map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(after))
	for k, v := range after {
		out[k] = v - before[k]
	}
	return out
}

// evaluatorFor instantiates the evaluation strategy of the effective
// per-request config. Merged and naive modes get a fresh engine so cached
// state cannot leak between strategy comparisons; cached mode reuses the
// checker's engine so cube results persist across documents of the same
// database.
func (c *Checker) evaluatorFor(cfg Config, runner evaluate.BatchRunner) (model.Evaluator, *sqlexec.Engine) {
	if c.shards != nil {
		return c.shardEvaluatorFor(cfg)
	}
	switch cfg.Mode {
	case EvalNaive:
		e := sqlexec.NewEngine(c.DB, cfg.Exec...)
		return &evaluate.NaiveEvaluator{Engine: e, Workers: cfg.Workers}, e
	case EvalMerged:
		e := sqlexec.NewEngine(c.DB, cfg.Exec...)
		e.Tune(sqlexec.WithCaching(false))
		ev := evaluate.NewCubeEvaluator(e)
		ev.Workers = cfg.Workers
		return ev, e
	default:
		ev := evaluate.NewCubeEvaluator(c.Engine)
		ev.Workers = cfg.Workers
		// A pooling runner (Audit's cross-document window) applies only
		// here: merged/naive isolate per-request engines on purpose, and
		// sharded execution already fans batches out per partition.
		ev.Runner = runner
		return ev, c.Engine
	}
}

// shardEvaluatorFor is evaluatorFor's sharded counterpart: every strategy
// fans out to shard workers, with the same cache-isolation rules as
// unsharded execution — merged and naive modes get fresh front and
// partition engines so cached state cannot leak between strategy
// comparisons, cached mode reuses the checker-lifetime coordinator whose
// partition engines delta-advance their cube caches across documents.
func (c *Checker) shardEvaluatorFor(cfg Config) (model.Evaluator, *sqlexec.Engine) {
	switch cfg.Mode {
	case EvalNaive:
		e := sqlexec.NewEngine(c.DB, cfg.Exec...)
		ev := shard.NewEvaluator(shard.NewCoordinator(c.buildShardWorkers(cfg, false), &e.Stats), e.DefaultTable())
		ev.Workers = cfg.Workers
		ev.Naive = true
		return ev, e
	case EvalMerged:
		e := sqlexec.NewEngine(c.DB, cfg.Exec...)
		e.Tune(sqlexec.WithCaching(false))
		ev := shard.NewEvaluator(shard.NewCoordinator(c.buildShardWorkers(cfg, true), &e.Stats), e.DefaultTable())
		ev.Workers = cfg.Workers
		ev.MergeSmall = false
		return ev, e
	default:
		ev := shard.NewEvaluator(c.coord, c.Engine.DefaultTable())
		ev.Workers = cfg.Workers
		return ev, c.Engine
	}
}

// GroundTruth is the hand-built translation of one claim: the matching
// query plus whether the claimed value is correct (Definition 1), used for
// the accuracy metrics of §7 and Appendix C.
type GroundTruth struct {
	Query   sqlexec.Query
	Correct bool
}

// RankOf returns the 0-based rank of the ground-truth query in a claim's
// posterior ranking, or -1 when absent.
func RankOf(cr model.ClaimResult, truth sqlexec.Query) int {
	key := truth.Key()
	for i, rq := range cr.Ranked {
		if rq.Query.Key() == key {
			return i
		}
	}
	return -1
}
