package core

import (
	"strings"
	"testing"

	"aggchecker/internal/corpus"
	"aggchecker/internal/sqlexec"
)

func quickCfg() Config {
	cfg := DefaultConfig()
	cfg.Model.EvalBudget = 400
	cfg.Model.MaxEMIters = 3
	return cfg
}

func TestCheckNFLEndToEnd(t *testing.T) {
	tc := corpus.MustLoad().Cases[0]
	checker := NewChecker(tc.DB, quickCfg())
	report := checker.CheckDocument(tc.Doc)
	if len(report.Claims()) != len(tc.Truth) {
		t.Fatalf("claims = %d, want %d", len(report.Claims()), len(tc.Truth))
	}
	// The unambiguous claims must resolve at top-1: the average fine, the
	// distinct team count, and the substance-abuse count.
	for _, idx := range []int{0, 1, 5} {
		if r := RankOf(report.Claims()[idx], tc.Truth[idx].Query); r != 0 {
			t.Errorf("claim %d: ground truth rank = %d, want 0", idx, r)
		}
	}
	if report.TotalTime <= 0 || report.QueryTime <= 0 {
		t.Error("timings not recorded")
	}
	if report.Stats["rows_scanned"] == 0 {
		t.Error("engine statistics not recorded")
	}
}

func TestEvalModesAgreeOnVerdicts(t *testing.T) {
	tc := corpus.MustLoad().Cases[0]
	var verdicts [][]bool
	for _, mode := range []EvalMode{EvalCached, EvalMerged, EvalNaive} {
		cfg := quickCfg()
		cfg.Mode = mode
		checker := NewChecker(tc.DB, cfg)
		report := checker.CheckDocument(tc.Doc)
		var v []bool
		for _, cr := range report.Claims() {
			v = append(v, cr.Erroneous)
		}
		verdicts = append(verdicts, v)
	}
	for i := 1; i < len(verdicts); i++ {
		for j := range verdicts[0] {
			if verdicts[i][j] != verdicts[0][j] {
				t.Errorf("mode %d claim %d verdict differs from cached mode", i, j)
			}
		}
	}
}

func TestCheckHTMLAndText(t *testing.T) {
	tc := corpus.MustLoad().Cases[0]
	checker := NewChecker(tc.DB, quickCfg())
	r1 := checker.CheckHTML(tc.HTML)
	if len(r1.Claims()) != len(tc.Truth) {
		t.Errorf("CheckHTML claims = %d", len(r1.Claims()))
	}
	r2 := checker.CheckText("There were 9 suspensions for substance abuse.")
	if len(r2.Claims()) != 1 {
		t.Fatalf("CheckText claims = %d", len(r2.Claims()))
	}
	if r2.Claims()[0].Erroneous {
		t.Error("correct claim flagged")
	}
}

func TestRenderText(t *testing.T) {
	tc := corpus.MustLoad().Cases[0]
	checker := NewChecker(tc.DB, quickCfg())
	report := checker.CheckDocument(tc.Doc)
	out := report.RenderText(RenderOptions{Color: false, TopQueries: 2})
	if !strings.Contains(out, "claims") || !strings.Contains(out, "OK") {
		t.Errorf("render missing summary: %q", out[:120])
	}
	colored := report.RenderText(RenderOptions{Color: true})
	if !strings.Contains(colored, "\x1b[") {
		t.Error("color rendering missing ANSI codes")
	}
}

func TestMarkup(t *testing.T) {
	tc := corpus.MustLoad().Cases[0]
	checker := NewChecker(tc.DB, quickCfg())
	report := checker.CheckDocument(tc.Doc)
	markup := report.Markup()
	if !strings.Contains(markup, "[OK]") && !strings.Contains(markup, "[WRONG") {
		t.Errorf("markup has no annotations: %q", markup)
	}
}

func TestErroneousClaims(t *testing.T) {
	tc := corpus.MustLoad().Cases[0]
	checker := NewChecker(tc.DB, quickCfg())
	report := checker.CheckDocument(tc.Doc)
	errs := report.ErroneousClaims()
	for _, cr := range errs {
		if !cr.Erroneous {
			t.Error("ErroneousClaims returned a passing claim")
		}
	}
}

func TestRankOf(t *testing.T) {
	tc := corpus.MustLoad().Cases[0]
	checker := NewChecker(tc.DB, quickCfg())
	report := checker.CheckDocument(tc.Doc)
	cr := report.Claims()[1]
	if r := RankOf(cr, tc.Truth[1].Query); r != 0 {
		t.Errorf("rank = %d", r)
	}
	missing := sqlexec.Query{Agg: sqlexec.Count, Preds: []sqlexec.Predicate{
		{Col: sqlexec.ColumnRef{Table: "nflsuspensions", Column: "team"}, Value: "nonexistent"}}}
	if r := RankOf(cr, missing); r != -1 {
		t.Errorf("missing query rank = %d, want -1", r)
	}
}

func TestEvalModeString(t *testing.T) {
	if EvalCached.String() != "merged+cached" || EvalNaive.String() != "naive" || EvalMerged.String() != "merged" {
		t.Error("EvalMode strings wrong")
	}
}
