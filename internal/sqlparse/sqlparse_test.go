package sqlparse

import (
	"strings"
	"testing"

	"aggchecker/internal/corpus"
	"aggchecker/internal/db"
	"aggchecker/internal/sqlexec"
)

func testDB(t *testing.T) *db.Database {
	t.Helper()
	tbl, err := db.LoadCSV(strings.NewReader(
		"games,category,year,fine\nindef,gambling,1983,100\n4,substance abuse,1995,50\n"),
		"nflsuspensions")
	if err != nil {
		t.Fatal(err)
	}
	d := db.NewDatabase("nfl")
	d.MustAddTable(tbl)
	return d
}

func TestParseCountStar(t *testing.T) {
	d := testDB(t)
	q, err := Parse("SELECT Count(*) FROM nflsuspensions WHERE games = 'indef'", d)
	if err != nil {
		t.Fatal(err)
	}
	if q.Agg != sqlexec.Count || !q.AggCol.IsStar() {
		t.Errorf("query = %+v", q)
	}
	if len(q.Preds) != 1 || q.Preds[0].Value != "indef" || q.Preds[0].Col.Table != "nflsuspensions" {
		t.Errorf("preds = %+v", q.Preds)
	}
}

func TestParseMultiPredicate(t *testing.T) {
	d := testDB(t)
	q, err := Parse(
		"SELECT Count(*) FROM nflsuspensions WHERE games = 'indef' AND category = 'substance abuse'", d)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Preds) != 2 {
		t.Fatalf("preds = %+v", q.Preds)
	}
	if q.Preds[1].Value != "substance abuse" {
		t.Errorf("multi-word literal lost: %q", q.Preds[1].Value)
	}
}

func TestParseAggFunctions(t *testing.T) {
	d := testDB(t)
	cases := map[string]sqlexec.AggFunc{
		"SELECT Sum(fine) FROM nflsuspensions":                           sqlexec.Sum,
		"SELECT AVG(fine) FROM nflsuspensions":                           sqlexec.Avg,
		"select min(year) from nflsuspensions":                           sqlexec.Min,
		"SELECT Max(year) FROM nflsuspensions":                           sqlexec.Max,
		"SELECT CountDistinct(category) FROM nflsuspensions":             sqlexec.CountDistinct,
		"SELECT Count(DISTINCT category) FROM nflsuspensions":            sqlexec.CountDistinct,
		"SELECT Percentage(*) FROM nflsuspensions WHERE games = 'indef'": sqlexec.Percentage,
	}
	for input, want := range cases {
		q, err := Parse(input, d)
		if err != nil {
			t.Errorf("Parse(%q): %v", input, err)
			continue
		}
		if want == sqlexec.CountDistinct && q.Agg == sqlexec.Count {
			// COUNT(DISTINCT c) must become CountDistinct.
			t.Errorf("Parse(%q): got plain Count", input)
			continue
		}
		if q.Agg != want && !(want == sqlexec.CountDistinct && q.Agg == sqlexec.CountDistinct) {
			t.Errorf("Parse(%q) agg = %v, want %v", input, q.Agg, want)
		}
	}
}

func TestParseCountDistinctSugar(t *testing.T) {
	d := testDB(t)
	q, err := Parse("SELECT Count(DISTINCT category) FROM nflsuspensions", d)
	if err != nil {
		t.Fatal(err)
	}
	// Count(DISTINCT c) parses as Count with the distinct flag folded into
	// the column position; semantically we map it to CountDistinct.
	if q.AggCol.Column != "category" {
		t.Errorf("agg col = %v", q.AggCol)
	}
}

func TestParseQualifiedColumns(t *testing.T) {
	d := testDB(t)
	q, err := Parse("SELECT Count(*) FROM nflsuspensions WHERE nflsuspensions.games = 'indef'", d)
	if err != nil {
		t.Fatal(err)
	}
	if q.Preds[0].Col.Table != "nflsuspensions" {
		t.Errorf("qualified column lost table: %+v", q.Preds[0])
	}
}

func TestParseEscapedQuote(t *testing.T) {
	tbl, _ := db.LoadCSV(strings.NewReader("education\ni'm self-taught\n"), "survey")
	d := db.NewDatabase("s")
	d.MustAddTable(tbl)
	q, err := Parse("SELECT Percentage(*) FROM survey WHERE education = 'i''m self-taught'", d)
	if err != nil {
		t.Fatal(err)
	}
	if q.Preds[0].Value != "i'm self-taught" {
		t.Errorf("escaped literal = %q", q.Preds[0].Value)
	}
}

func TestParseErrors(t *testing.T) {
	d := testDB(t)
	bad := []string{
		"",
		"SELECT",
		"SELECT Frobnicate(*) FROM nflsuspensions",
		"SELECT Count(*) WHERE games = 'indef'",
		"SELECT Count(*) FROM nflsuspensions WHERE games = ",
		"SELECT Count(*) FROM nflsuspensions WHERE nope = 'x'",
		"SELECT Count(*) FROM nosuchtable WHERE games = 'indef'",
		"SELECT Count(*) FROM nflsuspensions WHERE games = 'unterminated",
		"SELECT Count(*) FROM nflsuspensions trailing junk",
	}
	for _, input := range bad {
		if _, err := Parse(input, d); err == nil {
			t.Errorf("Parse(%q) should fail", input)
		}
	}
}

func TestParseRoundTripsCorpusGroundTruth(t *testing.T) {
	// Every ground-truth query rendered by Query.SQL must parse back to an
	// equal query — the contract between corpusgen output and this parser.
	c := corpus.MustLoad()
	for _, tc := range c.Cases[:10] {
		defaultTable := tc.DB.Tables()[0].Name
		for i, truth := range tc.Truth {
			sql := truth.Query.SQL(defaultTable)
			got, err := Parse(sql, tc.DB)
			if err != nil {
				t.Fatalf("%s claim %d: Parse(%q): %v", tc.Name, i, sql, err)
			}
			if got.Key() != truth.Query.Key() {
				t.Errorf("%s claim %d: round trip %q != %q", tc.Name, i, got.Key(), truth.Query.Key())
			}
		}
	}
}

func TestParsedQueryEvaluates(t *testing.T) {
	d := testDB(t)
	q, err := Parse("SELECT Count(*) FROM nflsuspensions WHERE games = 'indef'", d)
	if err != nil {
		t.Fatal(err)
	}
	v, err := sqlexec.NewEngine(d).Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Errorf("evaluated to %v, want 1", v)
	}
}
