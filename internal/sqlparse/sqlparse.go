// Package sqlparse parses the SQL dialect of Simple Aggregate Queries
// (Definition 2 of the paper):
//
//	SELECT Fct(Agg) FROM T1 [E-JOIN T2 ...] [WHERE C1 = 'V1' [AND C2 = 'V2' ...]]
//
// It exists for three consumers: the aggcheck CLI's manual verification
// mode (the "SQL + User" condition of the user study), reading ground-truth
// files written by corpusgen back into queries, and tests that want to
// state queries compactly. The dialect is deliberately exactly the paper's
// query model — no expressions, no OR, no inequalities.
package sqlparse

import (
	"fmt"
	"strings"

	"aggchecker/internal/db"
	"aggchecker/internal/sqlexec"
)

// Parse parses a Simple Aggregate Query. The database resolves unqualified
// column names to their tables; ambiguous or unknown names are errors.
func Parse(input string, d *db.Database) (sqlexec.Query, error) {
	var q sqlexec.Query
	toks, err := lex(input)
	if err != nil {
		return q, err
	}
	p := &parser{toks: toks, db: d}

	if err := p.expectKeyword("select"); err != nil {
		return q, err
	}
	fn, err := p.parseFunction()
	if err != nil {
		return q, err
	}
	q.Agg = fn
	if err := p.expect("("); err != nil {
		return q, err
	}
	col, distinct, err := p.parseAggColumn()
	if err != nil {
		return q, err
	}
	q.AggCol = col
	if distinct && q.Agg == sqlexec.Count {
		q.Agg = sqlexec.CountDistinct // COUNT(DISTINCT c) sugar
	}
	if err := p.expect(")"); err != nil {
		return q, err
	}

	if err := p.expectKeyword("from"); err != nil {
		return q, err
	}
	if err := p.parseTables(); err != nil {
		return q, err
	}

	if p.peekKeyword("where") {
		p.next()
		for {
			pred, err := p.parsePredicate()
			if err != nil {
				return q, err
			}
			q.Preds = append(q.Preds, pred)
			if !p.peekKeyword("and") {
				break
			}
			p.next()
		}
	}
	if !p.done() {
		return q, fmt.Errorf("sqlparse: unexpected trailing input %q", p.peek())
	}
	// Resolve unqualified column references against the FROM tables.
	if !q.AggCol.IsStar() && q.AggCol.Table == "" {
		ref, err := p.resolve(q.AggCol.Column)
		if err != nil {
			return q, err
		}
		q.AggCol = ref
	}
	for i := range q.Preds {
		if q.Preds[i].Col.Table == "" {
			ref, err := p.resolve(q.Preds[i].Col.Column)
			if err != nil {
				return q, err
			}
			q.Preds[i].Col = ref
		}
	}
	return q, nil
}

// --- lexer ---

type token struct {
	text string
	str  bool // quoted string literal
}

func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(input) {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(' || c == ')' || c == ',' || c == '*' || c == '=':
			toks = append(toks, token{text: string(c)})
			i++
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			for j < len(input) {
				if input[j] == '\'' {
					if j+1 < len(input) && input[j+1] == '\'' { // escaped ''
						sb.WriteByte('\'')
						j += 2
						continue
					}
					break
				}
				sb.WriteByte(input[j])
				j++
			}
			if j >= len(input) {
				return nil, fmt.Errorf("sqlparse: unterminated string literal")
			}
			toks = append(toks, token{text: sb.String(), str: true})
			i = j + 1
		default:
			j := i
			for j < len(input) && !strings.ContainsRune(" \t\n\r(),*='", rune(input[j])) {
				j++
			}
			if j == i {
				return nil, fmt.Errorf("sqlparse: unexpected character %q", c)
			}
			toks = append(toks, token{text: input[i:j]})
			i = j
		}
	}
	return toks, nil
}

// --- parser ---

type parser struct {
	toks   []token
	pos    int
	db     *db.Database
	tables []string
}

func (p *parser) done() bool { return p.pos >= len(p.toks) }

func (p *parser) peek() string {
	if p.done() {
		return ""
	}
	return p.toks[p.pos].text
}

func (p *parser) next() token {
	t := p.toks[p.pos]
	p.pos++
	return t
}

func (p *parser) peekKeyword(kw string) bool {
	return !p.done() && !p.toks[p.pos].str && strings.EqualFold(p.toks[p.pos].text, kw)
}

func (p *parser) expectKeyword(kw string) error {
	if !p.peekKeyword(kw) {
		return fmt.Errorf("sqlparse: expected %s, found %q", strings.ToUpper(kw), p.peek())
	}
	p.next()
	return nil
}

func (p *parser) expect(sym string) error {
	if p.done() || p.toks[p.pos].text != sym {
		return fmt.Errorf("sqlparse: expected %q, found %q", sym, p.peek())
	}
	p.next()
	return nil
}

// functionNames maps accepted spellings to functions.
var functionNames = map[string]sqlexec.AggFunc{
	"count":                  sqlexec.Count,
	"countdistinct":          sqlexec.CountDistinct,
	"count_distinct":         sqlexec.CountDistinct,
	"sum":                    sqlexec.Sum,
	"avg":                    sqlexec.Avg,
	"average":                sqlexec.Avg,
	"min":                    sqlexec.Min,
	"max":                    sqlexec.Max,
	"percentage":             sqlexec.Percentage,
	"conditionalprobability": sqlexec.ConditionalProbability,
}

func (p *parser) parseFunction() (sqlexec.AggFunc, error) {
	if p.done() {
		return 0, fmt.Errorf("sqlparse: expected aggregation function")
	}
	name := strings.ToLower(p.next().text)
	fn, ok := functionNames[name]
	if !ok {
		return 0, fmt.Errorf("sqlparse: unknown aggregation function %q", name)
	}
	return fn, nil
}

func (p *parser) parseAggColumn() (sqlexec.ColumnRef, bool, error) {
	if p.peek() == "*" {
		p.next()
		return sqlexec.ColumnRef{}, false, nil
	}
	// COUNT(DISTINCT col) sugar.
	distinct := false
	if p.peekKeyword("distinct") {
		p.next()
		distinct = true
	}
	ref, err := p.parseColumnRef()
	return ref, distinct, err
}

func (p *parser) parseColumnRef() (sqlexec.ColumnRef, error) {
	if p.done() {
		return sqlexec.ColumnRef{}, fmt.Errorf("sqlparse: expected column name")
	}
	name := p.next().text
	if tbl, col, ok := strings.Cut(name, "."); ok {
		return sqlexec.ColumnRef{Table: tbl, Column: col}, nil
	}
	// Unqualified: resolved after FROM is known.
	return sqlexec.ColumnRef{Column: name}, nil
}

func (p *parser) parseTables() error {
	for {
		if p.done() {
			return fmt.Errorf("sqlparse: expected table name")
		}
		p.tables = append(p.tables, p.next().text)
		// "E-JOIN t2" or "JOIN t2" continues the list.
		if p.peekKeyword("e-join") || p.peekKeyword("join") {
			p.next()
			continue
		}
		return nil
	}
}

func (p *parser) parsePredicate() (sqlexec.Predicate, error) {
	col, err := p.parseColumnRef()
	if err != nil {
		return sqlexec.Predicate{}, err
	}
	if err := p.expect("="); err != nil {
		return sqlexec.Predicate{}, err
	}
	if p.done() {
		return sqlexec.Predicate{}, fmt.Errorf("sqlparse: expected literal after =")
	}
	val := p.next()
	return sqlexec.Predicate{Col: col, Value: val.text}, nil
}

// resolve finds the unique FROM table containing the column.
func (p *parser) resolve(column string) (sqlexec.ColumnRef, error) {
	var found []sqlexec.ColumnRef
	for _, tname := range p.tables {
		t := p.db.Table(tname)
		if t == nil {
			return sqlexec.ColumnRef{}, fmt.Errorf("sqlparse: unknown table %q", tname)
		}
		if t.Column(column) != nil {
			found = append(found, sqlexec.ColumnRef{Table: tname, Column: column})
		}
	}
	switch len(found) {
	case 0:
		return sqlexec.ColumnRef{}, fmt.Errorf("sqlparse: column %q not found in FROM tables %v", column, p.tables)
	case 1:
		return found[0], nil
	default:
		return sqlexec.ColumnRef{}, fmt.Errorf("sqlparse: column %q is ambiguous across %v", column, p.tables)
	}
}
