package document

import (
	"aggchecker/internal/nlp"
)

// DetectClaims scans body sentences for check-worthy numeric mentions and
// populates doc.Claims. The paper identifies candidate passages "via simple
// heuristics" and delegates residual false positives to user feedback
// (§3); our heuristics:
//
//   - digit tokens and spelled-out number words are candidates;
//   - four-digit calendar years are skipped (they are almost always row
//     values or dates, not aggregates);
//   - ordinals ("first", "22nd") are skipped;
//   - "one of …" is skipped (pronoun use);
//   - "<number> <magnitude>" pairs ("1.5 million") merge into one claim;
//   - "<number> percent" is marked as a percentage claim.
//
// Headlines are not scanned: a headline number lacks the sentence context
// the translation pipeline needs and is restated in the body in our corpus,
// as in the paper's test cases.
func DetectClaims(doc *Document) {
	doc.Claims = nil
	for _, sent := range doc.Sentences {
		toks := sent.Tokens
		for i := 0; i < len(toks); i++ {
			t := toks[i]
			var pn nlp.ParsedNumber
			span := 1
			switch t.Kind {
			case nlp.Number:
				var ok bool
				pn, ok = nlp.ParseNumericToken(t.Text)
				if !ok {
					continue
				}
				if nlp.LooksLikeYear(pn.Value, t.Text) {
					continue
				}
				// "22nd": ordinal suffix follows the digits.
				if i+1 < len(toks) && toks[i+1].Kind == nlp.Word && nlp.IsOrdinalSuffix(toks[i+1].Lower) {
					continue
				}
			case nlp.Word:
				v, ok := nlp.NumberWordValue(t.Lower)
				if !ok || nlp.IsOrdinalWord(t.Lower) {
					continue
				}
				// "one of the…" is a pronoun, not a claim.
				if t.Lower == "one" && i+1 < len(toks) && toks[i+1].Lower == "of" {
					continue
				}
				pn = nlp.ParsedNumber{Value: v, Text: t.Text}
			default:
				continue
			}
			// Magnitude suffix: "1.5 million", "two thousand".
			if i+1 < len(toks) && toks[i+1].Kind == nlp.Word {
				if mult, ok := nlp.MagnitudeWord(toks[i+1].Lower); ok {
					pn.Value *= mult
					pn.Text = pn.Text + " " + toks[i+1].Text
					span = 2
				}
			}
			// "41 percent" / "41 percentage points".
			if i+span < len(toks) && toks[i+span].Kind == nlp.Word {
				switch toks[i+span].Lower {
				case "percent", "percentage", "pct":
					pn.IsPercent = true
				}
			}
			doc.Claims = append(doc.Claims, &Claim{
				ID:         len(doc.Claims),
				Sentence:   sent,
				TokenIndex: i,
				TokenSpan:  span,
				Claimed:    pn,
			})
			i += span - 1
		}
	}
}
