package document

import (
	"strings"
	"testing"
)

const nflHTML = `<title>The NFL's Uneven History Of Punishing Domestic Violence</title>
<h1>The NFL's Uneven History Of Punishing Domestic Violence</h1>
<h2>Lifetime bans</h2>
<p>There were only four previous lifetime bans in my database.
Three were for repeated substance abuse, one was for gambling.</p>
<p>The most recent ban was handed out in 2014.</p>
<h2>Shorter suspensions</h2>
<p>The average suspension lasted 4 games.</p>`

func TestParseHTMLStructure(t *testing.T) {
	doc := ParseHTML(nflHTML)
	if doc.Title != "The NFL's Uneven History Of Punishing Domestic Violence" {
		t.Errorf("title = %q", doc.Title)
	}
	if len(doc.Root.Children) != 1 {
		t.Fatalf("root children = %d, want 1 (the h1)", len(doc.Root.Children))
	}
	h1 := doc.Root.Children[0]
	if len(h1.Children) != 2 {
		t.Fatalf("h1 children = %d, want 2 (the h2 sections)", len(h1.Children))
	}
	sec := h1.Children[0]
	if sec.Headline != "Lifetime bans" {
		t.Errorf("headline = %q", sec.Headline)
	}
	if len(sec.Paragraphs) != 2 {
		t.Fatalf("paragraphs = %d, want 2", len(sec.Paragraphs))
	}
	if len(sec.Paragraphs[0].Sentences) != 2 {
		t.Errorf("first paragraph sentences = %d, want 2", len(sec.Paragraphs[0].Sentences))
	}
}

func TestParseHTMLAncestors(t *testing.T) {
	doc := ParseHTML(nflHTML)
	sec := doc.Root.Children[0].Children[0]
	anc := sec.Ancestors()
	if len(anc) != 3 {
		t.Fatalf("ancestors = %d, want 3 (h2, h1, root)", len(anc))
	}
	if anc[0] != sec || anc[2] != doc.Root {
		t.Error("ancestor order wrong")
	}
}

func TestDetectClaimsPaperExample(t *testing.T) {
	doc := ParseHTML(nflHTML)
	// Expected claims: four, Three, one, 4 (games). 2014 is a year; skipped.
	if len(doc.Claims) != 4 {
		var texts []string
		for _, c := range doc.Claims {
			texts = append(texts, c.Text())
		}
		t.Fatalf("claims = %d (%v), want 4", len(doc.Claims), texts)
	}
	vals := []float64{4, 3, 1, 4}
	for i, c := range doc.Claims {
		if c.Claimed.Value != vals[i] {
			t.Errorf("claim %d value = %v, want %v", i, c.Claimed.Value, vals[i])
		}
	}
	// Claims 1 and 2 share a sentence (multi-claim sentence).
	if doc.Claims[1].Sentence != doc.Claims[2].Sentence {
		t.Error("claims 'three' and 'one' should share a sentence")
	}
}

func TestDetectClaimsSkipsPronounOne(t *testing.T) {
	doc := ParseText("One of the players was banned. Two were fined 50 dollars.")
	// "One of" skipped; "Two" and "50" detected.
	if len(doc.Claims) != 2 {
		var texts []string
		for _, c := range doc.Claims {
			texts = append(texts, c.Text())
		}
		t.Fatalf("claims = %v, want [Two 50]", texts)
	}
}

func TestDetectClaimsOrdinals(t *testing.T) {
	doc := ParseText("He finished in 3rd place on May 22nd. The first try failed. There were 7 games.")
	if len(doc.Claims) != 1 || doc.Claims[0].Claimed.Value != 7 {
		t.Fatalf("claims = %+v, want only the 7", doc.Claims)
	}
}

func TestDetectClaimsMagnitude(t *testing.T) {
	doc := ParseText("The league earned 1.5 million dollars last season.")
	if len(doc.Claims) != 1 {
		t.Fatalf("claims = %d, want 1", len(doc.Claims))
	}
	c := doc.Claims[0]
	if c.Claimed.Value != 1.5e6 || c.TokenSpan != 2 {
		t.Errorf("claim = %+v", c.Claimed)
	}
}

func TestDetectClaimsPercent(t *testing.T) {
	doc := ParseText("About 41 percent of fliers agree. Another 13% disagree.")
	if len(doc.Claims) != 2 {
		t.Fatalf("claims = %d, want 2", len(doc.Claims))
	}
	if !doc.Claims[0].Claimed.IsPercent || !doc.Claims[1].Claimed.IsPercent {
		t.Errorf("percent flags = %v %v", doc.Claims[0].Claimed, doc.Claims[1].Claimed)
	}
}

func TestSentenceNavigation(t *testing.T) {
	doc := ParseText("First sentence here. Second sentence with 5 games. Third one trails.")
	if len(doc.Sentences) != 3 {
		t.Fatalf("sentences = %d", len(doc.Sentences))
	}
	s2 := doc.Sentences[1]
	if s2.Prev() != doc.Sentences[0] {
		t.Error("Prev wrong")
	}
	if s2.First() != doc.Sentences[0] {
		t.Error("First wrong")
	}
	if doc.Sentences[0].Prev() != nil {
		t.Error("first sentence Prev should be nil")
	}
}

func TestParseTextHeadings(t *testing.T) {
	doc := ParseText("# Title Line\n\nBody with 3 values.\n\n## Sub\n\nMore text, 4 here.")
	if doc.Title != "Title Line" {
		t.Errorf("title = %q", doc.Title)
	}
	if len(doc.Root.Children) != 1 || len(doc.Root.Children[0].Children) != 1 {
		t.Error("heading nesting wrong")
	}
	if len(doc.Claims) != 2 {
		t.Errorf("claims = %d, want 2", len(doc.Claims))
	}
}

func TestParseHTMLEntities(t *testing.T) {
	doc := ParseHTML("<p>Research &amp; Development spent 7 dollars.</p>")
	if !strings.Contains(doc.Sentences[0].Text, "Research & Development") {
		t.Errorf("entities not decoded: %q", doc.Sentences[0].Text)
	}
}

func TestParseHTMLMalformed(t *testing.T) {
	// Unclosed tags and stray '<' must not panic or lose the tail text.
	doc := ParseHTML("<p>Count was 9 <unclosed")
	if len(doc.Claims) != 1 || doc.Claims[0].Claimed.Value != 9 {
		t.Errorf("claims = %+v", doc.Claims)
	}
}

func TestHeadlineNumbersNotClaims(t *testing.T) {
	doc := ParseHTML("<h2>Top 10 moments</h2><p>He scored 3 times.</p>")
	if len(doc.Claims) != 1 || doc.Claims[0].Claimed.Value != 3 {
		t.Fatalf("headline number leaked into claims: %+v", doc.Claims)
	}
}
