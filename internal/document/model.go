// Package document models the semi-structured input text of AggChecker: a
// hierarchy of sections with headlines, containing paragraphs of sentences
// (§2 of the paper, Figure 4). It parses HTML-lite markup, tokenizes
// sentences, and detects check-worthy claims — numbers that plausibly state
// an aggregate query result.
package document

import (
	"aggchecker/internal/nlp"
)

// Document is a parsed input text.
type Document struct {
	Title     string
	Root      *Section    // the section tree root (level 0, no headline)
	Sentences []*Sentence // all sentences in reading order
	Claims    []*Claim    // detected check-worthy claims, in reading order
}

// Section is a node of the document hierarchy. The root section has no
// headline; subsections correspond to h1…h6 (or nested heading levels).
type Section struct {
	Headline   string
	Level      int
	Parent     *Section
	Children   []*Section
	Paragraphs []*Paragraph

	headlineTokens []nlp.Token
}

// HeadlineTokens returns the tokenized headline (cached).
func (s *Section) HeadlineTokens() []nlp.Token {
	if s.headlineTokens == nil && s.Headline != "" {
		s.headlineTokens = nlp.Tokenize(s.Headline)
	}
	return s.headlineTokens
}

// Ancestors returns the chain of enclosing sections from the immediate
// parent to the root, including the receiver itself first (Algorithm 2
// walks this chain to collect headline keywords).
func (s *Section) Ancestors() []*Section {
	var out []*Section
	for cur := s; cur != nil; cur = cur.Parent {
		out = append(out, cur)
	}
	return out
}

// Paragraph is a sequence of sentences within one section.
type Paragraph struct {
	Section   *Section
	Sentences []*Sentence
}

// Sentence is a tokenized sentence with its heuristic phrase tree.
type Sentence struct {
	Text        string
	Tokens      []nlp.Token
	Paragraph   *Paragraph
	IndexInPara int
	GlobalIndex int

	tree *nlp.PhraseTree
}

// Tree returns the phrase tree of the sentence (built lazily).
func (s *Sentence) Tree() *nlp.PhraseTree {
	if s.tree == nil {
		s.tree = nlp.BuildPhraseTree(s.Tokens)
	}
	return s.tree
}

// Prev returns the preceding sentence in the same paragraph, or nil.
func (s *Sentence) Prev() *Sentence {
	if s.IndexInPara == 0 {
		return nil
	}
	return s.Paragraph.Sentences[s.IndexInPara-1]
}

// First returns the first sentence of the paragraph.
func (s *Sentence) First() *Sentence { return s.Paragraph.Sentences[0] }

// Claim is a detected check-worthy numeric mention (Definition 1): the
// claimed result of some aggregate query on the associated database.
type Claim struct {
	ID         int
	Sentence   *Sentence
	TokenIndex int // index of the number token within the sentence
	// TokenSpan is the number of tokens the numeric mention covers (2 for
	// "1.5 million"-style magnitude pairs, otherwise 1).
	TokenSpan int
	Claimed   nlp.ParsedNumber
}

// Text returns the surface form of the claimed value.
func (c *Claim) Text() string { return c.Claimed.Text }
