package document

import (
	"strings"

	"aggchecker/internal/nlp"
)

// ParseHTML parses HTML-lite markup into a Document: <h1>…<h6> open
// (sub)sections, <p>…</p> delimit paragraphs, <title> sets the document
// title, all other tags are stripped. This covers the corpus format; the
// paper likewise consumes "HTML markup highlighting the text structure".
// Claims are detected afterwards via DetectClaims.
func ParseHTML(src string) *Document {
	doc := &Document{Root: &Section{Level: 0}}
	cur := doc.Root

	var paraBuf strings.Builder
	flushPara := func() {
		text := strings.TrimSpace(paraBuf.String())
		paraBuf.Reset()
		if text == "" {
			return
		}
		addParagraph(doc, cur, text)
	}

	i := 0
	for i < len(src) {
		lt := strings.IndexByte(src[i:], '<')
		if lt < 0 {
			paraBuf.WriteString(src[i:])
			break
		}
		paraBuf.WriteString(src[i : i+lt])
		i += lt
		gt := strings.IndexByte(src[i:], '>')
		if gt < 0 {
			// Malformed trailing '<': treat as text.
			paraBuf.WriteString(src[i:])
			break
		}
		tag := strings.ToLower(strings.TrimSpace(src[i+1 : i+gt]))
		body := src[i+gt+1:]
		switch {
		case tag == "title":
			end := strings.Index(strings.ToLower(body), "</title>")
			if end >= 0 {
				doc.Title = decodeEntities(strings.TrimSpace(body[:end]))
				i += gt + 1 + end + len("</title>")
				continue
			}
		case len(tag) == 2 && tag[0] == 'h' && tag[1] >= '1' && tag[1] <= '6':
			flushPara()
			level := int(tag[1] - '0')
			closeTag := "</" + tag + ">"
			end := strings.Index(strings.ToLower(body), closeTag)
			headline := body
			consumed := len(body)
			if end >= 0 {
				headline = body[:end]
				consumed = end + len(closeTag)
			}
			cur = openSection(doc, cur, level, decodeEntities(strings.TrimSpace(stripTags(headline))))
			i += gt + 1 + consumed
			continue
		case tag == "p":
			flushPara()
		case tag == "/p":
			flushPara()
		default:
			// Unknown tag (including </h*> leftovers): strip. Block-level
			// separators still flush the paragraph.
			if tag == "br" || tag == "br/" || tag == "hr" || strings.HasPrefix(tag, "/h") {
				flushPara()
			}
		}
		i += gt + 1
	}
	flushPara()
	DetectClaims(doc)
	return doc
}

// ParseText parses plain text with markdown-lite structure: lines starting
// with "#", "##", … are headlines; blank lines separate paragraphs.
func ParseText(src string) *Document {
	doc := &Document{Root: &Section{Level: 0}}
	cur := doc.Root
	var para []string
	flush := func() {
		if len(para) == 0 {
			return
		}
		addParagraph(doc, cur, strings.Join(para, " "))
		para = para[:0]
	}
	for _, line := range strings.Split(src, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			flush()
			continue
		}
		if strings.HasPrefix(trimmed, "#") {
			flush()
			level := 0
			for level < len(trimmed) && trimmed[level] == '#' {
				level++
			}
			headline := strings.TrimSpace(trimmed[level:])
			if doc.Title == "" && level == 1 {
				doc.Title = headline
			}
			cur = openSection(doc, cur, level, headline)
			continue
		}
		para = append(para, trimmed)
	}
	flush()
	DetectClaims(doc)
	return doc
}

// openSection attaches a new section of the given level below the correct
// ancestor of cur and returns it.
func openSection(doc *Document, cur *Section, level int, headline string) *Section {
	parent := cur
	for parent.Level >= level && parent.Parent != nil {
		parent = parent.Parent
	}
	sec := &Section{Headline: headline, Level: level, Parent: parent}
	parent.Children = append(parent.Children, sec)
	return sec
}

// addParagraph splits text into sentences and appends the paragraph.
func addParagraph(doc *Document, sec *Section, text string) {
	text = decodeEntities(text)
	para := &Paragraph{Section: sec}
	for _, st := range nlp.SplitSentences(text) {
		s := &Sentence{
			Text:        st,
			Tokens:      nlp.Tokenize(st),
			Paragraph:   para,
			IndexInPara: len(para.Sentences),
			GlobalIndex: len(doc.Sentences),
		}
		para.Sentences = append(para.Sentences, s)
		doc.Sentences = append(doc.Sentences, s)
	}
	if len(para.Sentences) > 0 {
		sec.Paragraphs = append(sec.Paragraphs, para)
	}
}

func stripTags(s string) string {
	var sb strings.Builder
	in := false
	for _, r := range s {
		switch {
		case r == '<':
			in = true
		case r == '>':
			in = false
		case !in:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

var entityReplacer = strings.NewReplacer(
	"&amp;", "&", "&lt;", "<", "&gt;", ">", "&quot;", `"`,
	"&#39;", "'", "&apos;", "'", "&nbsp;", " ",
)

func decodeEntities(s string) string { return entityReplacer.Replace(s) }
