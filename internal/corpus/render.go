package corpus

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"aggchecker/internal/sqlexec"
)

// numberWords spells small claimed values; mixing spelled and digit forms
// mirrors the paper's test cases ("four previous lifetime bans").
var numberWords = []string{
	"zero", "one", "two", "three", "four", "five", "six", "seven",
	"eight", "nine", "ten", "eleven", "twelve",
}

// spellOrDigits renders a non-negative integer claim value.
func spellOrDigits(rng *rand.Rand, v float64) string {
	n := int64(v)
	if n >= 1 && n < int64(len(numberWords)) && rng.Intn(2) == 0 {
		return numberWords[n]
	}
	return strconv.FormatInt(n, 10)
}

// formatValue renders a claimed value for a given function.
func formatValue(rng *rand.Rand, fn sqlexec.AggFunc, v float64) string {
	switch fn {
	case sqlexec.Count, sqlexec.CountDistinct, sqlexec.Min, sqlexec.Max:
		if v == float64(int64(v)) {
			return spellOrDigits(rng, v)
		}
		return trimFloat(v)
	case sqlexec.Percentage, sqlexec.ConditionalProbability:
		if rng.Intn(2) == 0 {
			return trimFloat(v) + "%"
		}
		return trimFloat(v) + " percent"
	default: // Sum, Avg
		if v >= 1e6 {
			return trimFloat(v/1e6) + " million"
		}
		if v == float64(int64(v)) {
			return strconv.FormatInt(int64(v), 10)
		}
		return trimFloat(v)
	}
}

func trimFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// claim sentence templates; {V} = value, {P} = predicate phrase(s), {N} =
// row noun, {A} = aggregation column phrase, {U} = unit. Roughly 30% of the
// Count templates state no aggregation keyword, matching the paper's
// observation that 30% of claims leave the function implicit.
var countTemplates = []string{
	"There were {V} {N} {P}.",
	"There were only {V} {N} {P}.",
	"The data lists {V} {N} {P}.",
	"A total of {V} {N} {P} appear in the records.",
	"{N_title} {P} numbered {V}.",
	"Researchers counted {V} {N} {P}.",
}

var countContextTemplates = []string{
	"Only {V} such {N} appear in the data.",
	"There were just {V} of them.",
	"The records show {V} such cases.",
	"{V_title} such {N} made the list.",
}

var percentTemplates = []string{
	"{V} of {N} were {P}.",
	"About {V} of all {N} were {P}.",
	"Roughly {V} of the {N} fell {P}.",
	"{V} of {N} in the data were {P}.",
}

var percentContextTemplates = []string{
	"They made up {V} of all {N}.",
	"That group accounts for {V} of the total.",
}

var sumTemplates = []string{
	"The combined {A} {P} reached {V} {U}.",
	"{N_title} {P} totaled {V} {U} in {A}.",
	"Altogether, {A} {P} added up to {V} {U}.",
}

var avgTemplates = []string{
	"The average {A} {P} was {V} {U}.",
	"On average, {N} {P} showed a {A} of {V} {U}.",
	"A typical entry {P} had a {A} of {V} {U}.",
}

var minTemplates = []string{
	"The lowest {A} {P} was {V} {U}.",
	"At the bottom, {A} {P} dipped to {V} {U}.",
}

var maxTemplates = []string{
	"The highest {A} {P} was {V} {U}.",
	"The largest {A} {P} reached {V} {U}.",
	"At its peak, {A} {P} hit {V} {U}.",
}

var countDistinctTemplates = []string{
	"{N_title} {P} involved {V} different {A}.",
	"There were {V} distinct {A} among {N} {P}.",
	"{N_title} {P} came from {V} separate {A}.",
}

var condProbTemplates = []string{
	"Given {N} {P0}, the odds of being {P1} stood at {V}.",
	"Among {N} {P0}, the probability of being {P1} was {V}.",
}

// fillerSentences pad paragraphs; they must not contain digits or spelled
// numbers, so claim detection stays aligned with the generated truth.
var fillerSentences = []string{
	"The pattern is hard to miss.",
	"That gap has widened steadily in recent years.",
	"Analysts disagree about what drives the trend.",
	"The records tell a consistent story here.",
	"Context matters when reading these figures.",
	"The picture changes once you look closer.",
	"Officials declined to comment on the data.",
	"The trend holds across the rest of the data as well.",
}

// fillTemplate substitutes the placeholders of a claim template.
func fillTemplate(tpl string, repl map[string]string) string {
	out := tpl
	for key, val := range repl {
		out = strings.ReplaceAll(out, "{"+key+"}", val)
	}
	// Collapse doubled spaces from empty predicate phrases and fix
	// space-before-period artifacts.
	out = strings.Join(strings.Fields(out), " ")
	out = strings.ReplaceAll(out, " .", ".")
	out = strings.ReplaceAll(out, " ,", ",")
	return out
}

// titleCase upper-cases the first rune (for sentence-initial slots).
func titleCase(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

// renderSentence builds the claim sentence for one planned claim.
func renderSentence(rng *rand.Rand, fn sqlexec.AggFunc, valueText string, predPhrases []string, noun, aggPhrase, unit string, contextMode bool) string {
	pick := func(tpls []string) string { return tpls[rng.Intn(len(tpls))] }
	pred := strings.Join(predPhrases, " ")
	repl := map[string]string{
		"V":       valueText,
		"V_title": titleCase(valueText),
		"P":       pred,
		"N":       noun,
		"N_title": titleCase(noun),
		"A":       aggPhrase,
		"U":       unit,
	}
	var tpl string
	switch fn {
	case sqlexec.Count:
		if contextMode && pred == "" {
			tpl = pick(countContextTemplates)
		} else {
			tpl = pick(countTemplates)
		}
	case sqlexec.Percentage:
		if contextMode && pred == "" {
			tpl = pick(percentContextTemplates)
		} else {
			tpl = pick(percentTemplates)
		}
	case sqlexec.Sum:
		tpl = pick(sumTemplates)
	case sqlexec.Avg:
		tpl = pick(avgTemplates)
	case sqlexec.Min:
		tpl = pick(minTemplates)
	case sqlexec.Max:
		tpl = pick(maxTemplates)
	case sqlexec.CountDistinct:
		tpl = pick(countDistinctTemplates)
	case sqlexec.ConditionalProbability:
		repl["P0"] = ""
		repl["P1"] = ""
		if len(predPhrases) > 0 {
			repl["P0"] = predPhrases[0]
		}
		if len(predPhrases) > 1 {
			repl["P1"] = predPhrases[1]
		}
		tpl = pick(condProbTemplates)
	default:
		tpl = pick(countTemplates)
	}
	return fillTemplate(tpl, repl)
}

// joinClaimSentences merges two rendered count claims into one multi-claim
// sentence (29% of the paper's claim sentences hold several claims).
func joinClaimSentences(first, secondValue string, secondPred string) string {
	trimmed := strings.TrimSuffix(first, ".")
	return fmt.Sprintf("%s, while %s were %s.", trimmed, secondValue, secondPred)
}
