package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"aggchecker/internal/sqlexec"
)

// assembleHTML renders the planned claims into an HTML-lite article and
// returns the document plus the plans reordered into reading order (which
// is the order claim detection will report them in).
func assembleHTML(spec domainSpec, rng *rand.Rand, themeCol string, sections []string, plans []*planned) (string, []*planned) {
	noun := spec.noun

	// Render each claim sentence.
	for _, p := range plans {
		var phrases []string
		for _, pp := range p.preds {
			if pp.phrase != "" {
				phrases = append(phrases, pp.phrase)
			}
		}
		aggPhrase := strings.ReplaceAll(p.aggCol, "_", " ")
		p.sentence = renderSentence(rng, p.fn, p.text, phrases, noun, aggPhrase, p.unit, p.contextOnly)
	}

	// Partition into intro and sections, preserving plan order within each.
	intro := make([]*planned, 0)
	bySection := make([][]*planned, len(sections))
	for _, p := range plans {
		if p.section < 0 {
			intro = append(intro, p)
		} else {
			bySection[p.section] = append(bySection[p.section], p)
		}
	}

	var ordered []*planned
	var sb strings.Builder
	title := spec.titles[rng.Intn(len(spec.titles))]
	fmt.Fprintf(&sb, "<title>%s</title>\n<h1>%s</h1>\n", title, title)

	// Intro paragraph: an opener plus the whole-table and off-theme claims.
	sb.WriteString("<p>")
	fmt.Fprintf(&sb, "Our look at the %s data reveals clear patterns. ", noun)
	for _, p := range intro {
		sb.WriteString(p.sentence)
		sb.WriteString(" ")
		ordered = append(ordered, p)
	}
	sb.WriteString(fillerSentences[rng.Intn(len(fillerSentences))])
	sb.WriteString("</p>\n")

	for si, lit := range sections {
		fmt.Fprintf(&sb, "<h2>%s %s</h2>\n", titleCase(lit), noun)
		claims := bySection[si]
		if len(claims) == 0 {
			fmt.Fprintf(&sb, "<p>%s</p>\n", fillerSentences[rng.Intn(len(fillerSentences))])
			continue
		}
		// Merge some adjacent count claims into multi-claim sentences
		// (~29% of claim sentences in the paper contain several claims).
		var sentences []string
		var sentencePlans [][]*planned
		i := 0
		for i < len(claims) {
			p := claims[i]
			if i+1 < len(claims) && canPair(p, claims[i+1]) && rng.Float64() < 0.45 {
				q := claims[i+1]
				sentences = append(sentences, joinClaimSentences(p.sentence, q.text, q.lastPhrase()))
				sentencePlans = append(sentencePlans, []*planned{p, q})
				i += 2
				continue
			}
			sentences = append(sentences, p.sentence)
			sentencePlans = append(sentencePlans, []*planned{p})
			i++
		}
		// Chunk into paragraphs of 1–3 sentences with occasional filler.
		j := 0
		for j < len(sentences) {
			n := 1 + rng.Intn(3)
			if j+n > len(sentences) {
				n = len(sentences) - j
			}
			sb.WriteString("<p>")
			for k := j; k < j+n; k++ {
				sb.WriteString(sentences[k])
				sb.WriteString(" ")
				ordered = append(ordered, sentencePlans[k]...)
			}
			if rng.Float64() < 0.5 {
				sb.WriteString(fillerSentences[rng.Intn(len(fillerSentences))])
			}
			sb.WriteString("</p>\n")
			j += n
		}
	}
	return sb.String(), ordered
}

// canPair reports whether two claims can merge into one sentence: both
// counts, and the second one has exactly one rendered predicate phrase
// (the "three were for X, one was for Y" pattern).
func canPair(a, b *planned) bool {
	if a.fn != sqlexec.Count || b.fn != sqlexec.Count {
		return false
	}
	return b.lastPhrase() != ""
}

// lastPhrase returns the last rendered predicate phrase of the claim.
func (p *planned) lastPhrase() string {
	for i := len(p.preds) - 1; i >= 0; i-- {
		if p.preds[i].phrase != "" {
			return p.preds[i].phrase
		}
	}
	return ""
}
