// Package corpus provides the test-case corpus of the reproduction: one
// hand-built case transcribing the paper's running example plus 52
// deterministically generated articles over five domains. The generator
// reproduces the published corpus statistics — 53 articles, 392 claims, 12%
// erroneous, 17 articles with at least one error, the predicate-count split
// of Figure 9c, the theme concentration of Figure 9b, context-dependent and
// paraphrased predicates — because those are the properties §7 measures.
// The original articles are not redistributable (dead links, per-article
// licensing); DESIGN.md documents the substitution.
package corpus

import (
	"fmt"
	"sync"
)

// TotalClaims is the corpus-wide claim count, matching the paper.
const TotalClaims = 392

// TotalErroneous is the corpus-wide erroneous-claim count (12% of 392).
const TotalErroneous = 47

// ArticlesWithErrors matches the paper's "17 out of 53 test cases contain
// at least one erroneous claim".
const ArticlesWithErrors = 17

// Corpus is the full set of test cases.
type Corpus struct {
	Cases []*TestCase
}

var (
	loadOnce sync.Once
	loaded   *Corpus
	loadErr  error
)

// Load builds (once) and returns the deterministic 53-article corpus.
func Load() (*Corpus, error) {
	loadOnce.Do(func() {
		loaded, loadErr = build()
	})
	return loaded, loadErr
}

// MustLoad is Load for mains and benchmarks.
func MustLoad() *Corpus {
	c, err := Load()
	if err != nil {
		panic(err)
	}
	return c
}

// build assembles the corpus:
//
//   - case 0: the embedded NFL example (6 claims, 2 erroneous — Table 9);
//   - cases 1–2: the two long user-study articles (17 and 16 claims);
//   - cases 3–52: regular articles of 7–8 claims.
//
// Claim counts total exactly 392 and errors exactly 47 spread over 17
// articles. Study articles are cases 0, 1, 2, 10, 20, 30 (two long, four
// short, diverse sources, as in §7.2).
func build() (*Corpus, error) {
	corpus := &Corpus{}
	nfl, err := nflCase()
	if err != nil {
		return nil, err
	}
	corpus.Cases = append(corpus.Cases, nfl)

	claimCounts := generatedClaimCounts()
	errorCounts := generatedErrorCounts(len(claimCounts))
	studySet := map[int]bool{1: true, 2: true, 10: true, 20: true, 30: true}

	for i, n := range claimCounts {
		caseIdx := i + 1 // corpus index (0 is NFL)
		spec := domains[i%len(domains)]
		name := fmt.Sprintf("%s-%02d", spec.name, caseIdx)
		tc, err := generateCase(spec, int64(1000+caseIdx*37), name, n, errorCounts[i])
		if err != nil {
			return nil, err
		}
		tc.Study = studySet[caseIdx]
		corpus.Cases = append(corpus.Cases, tc)
	}
	return corpus, nil
}

// generatedClaimCounts fixes the per-article claim counts of the 52
// generated cases: 17 + 16 (long study articles) + 47×7 + 3×8 = 386, which
// with the NFL case's 6 claims totals 392.
func generatedClaimCounts() []int {
	counts := []int{17, 16}
	for i := 0; i < 50; i++ {
		if i < 3 {
			counts = append(counts, 8)
		} else {
			counts = append(counts, 7)
		}
	}
	return counts
}

// generatedErrorCounts places 45 errors (47 minus the NFL case's 2) on 16
// generated articles — 13 articles with 3 errors and 3 with 2 — spread
// every third article, yielding 17 error-bearing articles overall.
func generatedErrorCounts(n int) []int {
	counts := make([]int, n)
	placed, threes, twos := 0, 0, 0
	for i := 0; i < n && placed < 45; i += 3 {
		if threes < 13 {
			counts[i] = 3
			threes++
			placed += 3
		} else if twos < 3 {
			counts[i] = 2
			twos++
			placed += 2
		}
	}
	return counts
}

// Stats summarizes corpus-wide ground truth (Figure 9 feeds from this).
type Stats struct {
	Articles          int
	Claims            int
	Erroneous         int
	ArticlesWithError int
	// PredCounts histograms claims by number of predicates (index = count).
	PredCounts [4]int
	// ClaimsPerArticle lists per-article claim totals in corpus order.
	ClaimsPerArticle []int
	// ErrorsPerArticle lists per-article erroneous-claim totals.
	ErrorsPerArticle []int
}

// ComputeStats scans the corpus ground truth.
func (c *Corpus) ComputeStats() Stats {
	var s Stats
	s.Articles = len(c.Cases)
	for _, tc := range c.Cases {
		errs := 0
		for _, t := range tc.Truth {
			s.Claims++
			np := len(t.Query.Preds)
			if np > 3 {
				np = 3
			}
			s.PredCounts[np]++
			if !t.Correct {
				s.Erroneous++
				errs++
			}
		}
		if errs > 0 {
			s.ArticlesWithError++
		}
		s.ClaimsPerArticle = append(s.ClaimsPerArticle, len(tc.Truth))
		s.ErrorsPerArticle = append(s.ErrorsPerArticle, errs)
	}
	return s
}

// StudyCases returns the six user-study articles.
func (c *Corpus) StudyCases() []*TestCase {
	var out []*TestCase
	for _, tc := range c.Cases {
		if tc.Study {
			out = append(out, tc)
		}
	}
	return out
}
