package corpus

import (
	"math"
	"math/rand"
	"testing"

	"aggchecker/internal/model"
	"aggchecker/internal/sqlexec"
)

func TestLoadCorpus(t *testing.T) {
	c, err := Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(c.Cases) != 53 {
		t.Fatalf("cases = %d, want 53", len(c.Cases))
	}
}

func TestCorpusStatsMatchPaper(t *testing.T) {
	c := MustLoad()
	s := c.ComputeStats()
	if s.Claims != TotalClaims {
		t.Errorf("claims = %d, want %d", s.Claims, TotalClaims)
	}
	if s.Erroneous != TotalErroneous {
		t.Errorf("erroneous = %d, want %d", s.Erroneous, TotalErroneous)
	}
	if s.ArticlesWithError != ArticlesWithErrors {
		t.Errorf("articles with errors = %d, want %d", s.ArticlesWithError, ArticlesWithErrors)
	}
	// Predicate-count split should track Figure 9c (17% / 61% / 23%);
	// allow slack for rounding across articles.
	frac := func(n int) float64 { return float64(n) / float64(s.Claims) }
	if f := frac(s.PredCounts[0]); f < 0.10 || f > 0.24 {
		t.Errorf("zero-predicate fraction = %.2f, want ≈ 0.17", f)
	}
	if f := frac(s.PredCounts[1]); f < 0.50 || f > 0.72 {
		t.Errorf("one-predicate fraction = %.2f, want ≈ 0.61", f)
	}
	if f := frac(s.PredCounts[2]); f < 0.15 || f > 0.32 {
		t.Errorf("two-predicate fraction = %.2f, want ≈ 0.23", f)
	}
}

func TestGroundTruthConsistency(t *testing.T) {
	// Every ground-truth query must evaluate to its recorded correct value,
	// and the claimed value must (mis)match per the Correct flag.
	c := MustLoad()
	for _, tc := range c.Cases {
		eng := sqlexec.NewEngine(tc.DB)
		for i, truth := range tc.Truth {
			v, err := eng.Evaluate(truth.Query)
			if err != nil {
				t.Fatalf("%s claim %d: evaluate: %v", tc.Name, i, err)
			}
			if math.Abs(v-truth.CorrectValue) > math.Abs(v)*1e-9+1e-9 {
				t.Errorf("%s claim %d: query evaluates to %v, truth records %v",
					tc.Name, i, v, truth.CorrectValue)
			}
			if got := model.Matches(v, truth.ClaimedValue); got != truth.Correct {
				t.Errorf("%s claim %d: Matches(%v, %v) = %v, Correct flag = %v",
					tc.Name, i, v, truth.ClaimedValue, got, truth.Correct)
			}
		}
	}
}

func TestClaimAlignment(t *testing.T) {
	c := MustLoad()
	for _, tc := range c.Cases {
		if len(tc.Doc.Claims) != len(tc.Truth) {
			t.Errorf("%s: %d detected claims, %d truths", tc.Name, len(tc.Doc.Claims), len(tc.Truth))
			continue
		}
		for i, claim := range tc.Doc.Claims {
			if math.Abs(claim.Claimed.Value-tc.Truth[i].ClaimedValue) > 1e-9*math.Abs(claim.Claimed.Value)+1e-9 {
				t.Errorf("%s claim %d: detected value %v, truth %v",
					tc.Name, i, claim.Claimed.Value, tc.Truth[i].ClaimedValue)
			}
		}
	}
}

func TestStudyCases(t *testing.T) {
	c := MustLoad()
	study := c.StudyCases()
	if len(study) != 6 {
		t.Fatalf("study cases = %d, want 6", len(study))
	}
	long := 0
	for _, tc := range study {
		if len(tc.Truth) > 15 {
			long++
		}
	}
	if long != 2 {
		t.Errorf("long study articles = %d, want 2", long)
	}
}

func TestCorpusDeterminism(t *testing.T) {
	// Regenerating a case with the same seed yields identical HTML.
	spec := domains[0]
	a, err := generateCase(spec, 4242, "det-a", 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := generateCase(spec, 4242, "det-b", 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.HTML != b.HTML {
		t.Error("same seed produced different articles")
	}
	c, err := generateCase(spec, 4243, "det-c", 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.HTML == c.HTML {
		t.Error("different seeds produced identical articles")
	}
}

func TestCorpusDomainSpread(t *testing.T) {
	c := MustLoad()
	bySource := map[string]int{}
	for _, tc := range c.Cases {
		bySource[tc.Source]++
	}
	if len(bySource) < 5 {
		t.Errorf("sources = %v, want at least 5 distinct", bySource)
	}
}

func TestNFLCaseMatchesPaper(t *testing.T) {
	c := MustLoad()
	nfl := c.Cases[0]
	if nfl.Name != "nfl-suspensions" {
		t.Fatalf("case 0 = %s", nfl.Name)
	}
	// Claims "four" and "three" are the documented errors of Table 9.
	if nfl.Truth[2].Correct || nfl.Truth[3].Correct {
		t.Error("the lifetime-ban claims should be erroneous")
	}
	if nfl.Truth[2].CorrectValue != 5 || nfl.Truth[3].CorrectValue != 4 {
		t.Errorf("correct values = %v, %v; want 5, 4",
			nfl.Truth[2].CorrectValue, nfl.Truth[3].CorrectValue)
	}
	if !nfl.Truth[4].Correct {
		t.Error("the gambling claim should be correct")
	}
}

func TestGeneratedErrorCountsSum(t *testing.T) {
	counts := generatedErrorCounts(52)
	total, withErr := 0, 0
	for _, c := range counts {
		total += c
		if c > 0 {
			withErr++
		}
	}
	if total != 45 {
		t.Errorf("generated errors = %d, want 45", total)
	}
	if withErr != 16 {
		t.Errorf("generated articles with errors = %d, want 16", withErr)
	}
}

func TestPerturbNeverMatches(t *testing.T) {
	// Property: perturbed values never satisfy Definition 1.
	rngVals := []float64{1, 2, 3, 4, 7, 12, 48, 120, 1999, 40.8, 13.6, 98000}
	fns := []sqlexec.AggFunc{sqlexec.Count, sqlexec.Percentage, sqlexec.Avg, sqlexec.Sum}
	rng := newTestRand()
	for _, v := range rngVals {
		for _, fn := range fns {
			if fn == sqlexec.Percentage && v > 100 {
				continue
			}
			wrong, ok := perturb(rng, fn, v)
			if !ok {
				t.Fatalf("perturb(%v, %v) failed", fn, v)
			}
			if model.Matches(v, wrong) {
				t.Errorf("perturb(%v, %v) = %v still matches", fn, v, wrong)
			}
		}
	}
}

func newTestRand() *rand.Rand { return rand.New(rand.NewSource(11)) }
