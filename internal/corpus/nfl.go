package corpus

import (
	"fmt"
	"strings"

	"aggchecker/internal/db"
	"aggchecker/internal/document"
	"aggchecker/internal/sqlexec"
)

// nflCSV transcribes the shape of the paper's running example (Figure 2, a
// FiveThirtyEight data set of league suspensions, ~230 rows in the
// original): 64 suspensions with five lifetime bans, of which four were for
// repeated substance abuse and one for gambling. The article text below
// claims "four" and "three" — the exact error documented in Table 9 of the
// paper (the data was updated after the article's publication). The rows
// beyond the documented cases are synthetic filler keeping the same shape.
const nflCSV = `name,team,games,category,year,fine
Art Schlichter,colts,indef,gambling,1983,100000
Josh Gordon,browns,indef,repeated substance abuse,2014,250000
Stanley Wilson,bengals,indef,repeated substance abuse,1989,50000
Dexter Manley,redskins,indef,repeated substance abuse,1991,75000
Roy Lewis,seahawks,indef,repeated substance abuse,2012,120000
Leon Lett,cowboys,4,substance abuse,1995,180000
Dave Meggett,patriots,4,substance abuse,1997,90000
Bam Morris,ravens,8,substance abuse,1996,60000
Tanard Jackson,buccaneers,16,substance abuse,2012,200000
Aaron Berry,lions,3,substance abuse,2012,110000
Justin Blackmon,jaguars,4,substance abuse,2013,85000
LaRon Landry,colts,4,substance abuse,2015,95000
Daryl Washington,cardinals,16,substance abuse,2014,130000
Fred Davis,redskins,4,substance abuse,2011,140000
Ray Rice,ravens,2,personal conduct,2014,150000
Adam Jones,bengals,1,personal conduct,2007,87000
Jalen Hollis,raiders,4,personal conduct,1997,81000
Jalen Whitaker,falcons,1,personal conduct,1990,57000
Malik Calloway,packers,4,personal conduct,2012,342000
Isaiah Calloway,panthers,6,personal conduct,2015,13000
Chris Renfro,texans,6,personal conduct,1994,120000
Kevin Mabry,giants,10,personal conduct,1993,193000
Lamar Ferguson,bears,16,personal conduct,2007,73000
Victor Whitaker,dolphins,8,personal conduct,2008,108000
Tyrell Granger,chargers,6,personal conduct,1992,129000
Jalen Oakley,raiders,16,personal conduct,2010,196000
Chris Varner,titans,4,personal conduct,2011,146000
Tyrell Delaney,chargers,3,personal conduct,2004,204000
Trent Calloway,texans,1,personal conduct,1997,26000
Kevin Oakley,raiders,2,personal conduct,1996,300000
Kevin Pruitt,vikings,10,personal conduct,2010,244000
Andre Ferguson,eagles,4,personal conduct,2013,297000
Trent Renfro,saints,8,personal conduct,1997,80000
Brandon Whitaker,bears,2,personal conduct,1994,331000
Tyrell Oakley,saints,16,performance enhancing drugs,2006,138000
Marcus Mabry,raiders,8,performance enhancing drugs,1993,160000
Isaiah Delaney,panthers,1,performance enhancing drugs,2013,378000
Trent Delaney,jets,6,performance enhancing drugs,2016,337000
Malik Stokes,titans,3,performance enhancing drugs,2007,281000
Marcus Sexton,vikings,1,performance enhancing drugs,1993,195000
Darius Calloway,bears,4,performance enhancing drugs,2008,50000
Tyrell Quarles,giants,3,performance enhancing drugs,1994,347000
Brandon Delaney,raiders,10,performance enhancing drugs,1996,286000
Malik Braddock,saints,8,performance enhancing drugs,2004,274000
Terrell Mabry,chargers,4,performance enhancing drugs,1992,183000
Marcus Calloway,chargers,1,performance enhancing drugs,1992,372000
Devin Calloway,giants,1,performance enhancing drugs,2000,46000
Jordan Ferguson,vikings,4,performance enhancing drugs,2007,77000
Brandon Calloway,vikings,10,performance enhancing drugs,1996,58000
Jalen Renfro,titans,10,performance enhancing drugs,2003,249000
Devin Mabry,bears,10,on field misconduct,2013,183000
Jalen Calloway,broncos,4,on field misconduct,2007,239000
Andre Renfro,steelers,6,on field misconduct,2004,137000
Tyrell Lattimore,jets,1,on field misconduct,2010,286000
Marcus Whitaker,chargers,3,on field misconduct,2003,258000
Brandon Pruitt,saints,1,on field misconduct,1995,204000
Marcus Oakley,raiders,16,on field misconduct,1999,226000
Brandon Stokes,broncos,6,on field misconduct,1996,39000
Devin Sexton,bears,1,on field misconduct,2008,254000
Chris Granger,giants,3,on field misconduct,1992,314000
Tyrell Calloway,saints,2,on field misconduct,2008,136000
Devin Whitaker,falcons,8,on field misconduct,1998,114000
Kevin Calloway,raiders,10,on field misconduct,1994,353000
Darius Lattimore,texans,2,on field misconduct,1990,244000
`

const nflHTML = `<title>The League's Uneven History of Punishing Domestic Violence</title>
<h1>The League's Uneven History of Punishing Domestic Violence</h1>
<p>Our look at the suspensions data reveals clear patterns.
The average fine came to roughly 180,000 dollars.
The suspensions in my database span 28 different teams.</p>
<h2>Lifetime bans</h2>
<p>There were only four previous lifetime bans in my database.
Three were for repeated substance abuse, one was for gambling.</p>
<h2>Substance abuse suspensions</h2>
<p>Nine suspensions were handed out for substance abuse.
The trend holds across the rest of the data as well.</p>`

// nflDataDictionary demonstrates the optional data dictionary input (§4.2).
var nflDataDictionary = map[string]string{
	"games":    "number of games suspended, indef denotes an indefinite lifetime ban",
	"category": "reason for the suspension",
	"fine":     "fine amount in dollars",
}

// nflCase builds the embedded test case.
func nflCase() (*TestCase, error) {
	tbl, err := db.LoadCSV(strings.NewReader(nflCSV), "nflsuspensions")
	if err != nil {
		return nil, err
	}
	database := db.NewDatabase("nfl")
	database.MustAddTable(tbl)
	database.ApplyDataDictionary(nflDataDictionary)

	doc := document.ParseHTML(nflHTML)
	ref := func(col string) sqlexec.ColumnRef {
		return sqlexec.ColumnRef{Table: "nflsuspensions", Column: col}
	}
	pred := func(col, val string) sqlexec.Predicate {
		return sqlexec.Predicate{Col: ref(col), Value: val}
	}
	truth := []ClaimTruth{
		{ // "average fine came to roughly 180,000 dollars" — 11,280,000/64
			Query:        sqlexec.Query{Agg: sqlexec.Avg, AggCol: ref("fine")},
			Correct:      true,
			CorrectValue: 176250,
			ClaimedValue: 180000,
			ClaimedText:  "180,000",
		},
		{ // "span 28 different teams"
			Query:        sqlexec.Query{Agg: sqlexec.CountDistinct, AggCol: ref("team")},
			Correct:      true,
			CorrectValue: 28,
			ClaimedValue: 28,
			ClaimedText:  "28",
		},
		{ // "four previous lifetime bans" — WRONG, there are five (Table 9)
			Query:        sqlexec.Query{Agg: sqlexec.Count, Preds: []sqlexec.Predicate{pred("games", "indef")}},
			Correct:      false,
			CorrectValue: 5,
			ClaimedValue: 4,
			ClaimedText:  "four",
		},
		{ // "three were for repeated substance abuse" — WRONG, four
			Query: sqlexec.Query{Agg: sqlexec.Count, Preds: []sqlexec.Predicate{
				pred("games", "indef"), pred("category", "repeated substance abuse")}},
			Correct:      false,
			CorrectValue: 4,
			ClaimedValue: 3,
			ClaimedText:  "Three",
		},
		{ // "one was for gambling"
			Query: sqlexec.Query{Agg: sqlexec.Count, Preds: []sqlexec.Predicate{
				pred("games", "indef"), pred("category", "gambling")}},
			Correct:      true,
			CorrectValue: 1,
			ClaimedValue: 1,
			ClaimedText:  "one",
		},
		{ // "Nine suspensions were handed out for substance abuse"
			Query:        sqlexec.Query{Agg: sqlexec.Count, Preds: []sqlexec.Predicate{pred("category", "substance abuse")}},
			Correct:      true,
			CorrectValue: 9,
			ClaimedValue: 9,
			ClaimedText:  "Nine",
		},
	}
	if len(doc.Claims) != len(truth) {
		return nil, fmt.Errorf("corpus: nfl case claim alignment: detected %d, expected %d", len(doc.Claims), len(truth))
	}
	for i, c := range doc.Claims {
		if c.Claimed.Value != truth[i].ClaimedValue {
			return nil, fmt.Errorf("corpus: nfl claim %d: detected %v, expected %v", i, c.Claimed.Value, truth[i].ClaimedValue)
		}
	}
	return &TestCase{
		Name:   "nfl-suspensions",
		Source: "538",
		DB:     database,
		HTML:   nflHTML,
		Doc:    doc,
		Truth:  truth,
		Study:  true,
	}, nil
}
