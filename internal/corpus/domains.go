package corpus

// domainSpec describes one article domain: the schema of its data set, the
// vocabulary of its prose, and the paraphrase/oblique phrase tables that
// create the hard translation cases of the paper (claims whose predicate is
// only recoverable through context, synonyms, or evaluation results).
type domainSpec struct {
	name      string
	source    string // publication style: "538", "nyt", "stackoverflow", "vox", "wikipedia"
	tableName string
	noun      string // what a row is, plural ("suspensions", "donations")

	catCols []catColumn
	numCols []numColumn

	titles []string

	// themeCols are the categorical columns eligible as the document theme
	// (sections restrict on their literals).
	themeCols []string
	// secondCols are categorical columns eligible as secondary predicates.
	secondCols []string
}

// catColumn is a categorical column with its value vocabulary. Values must
// not contain standalone digit tokens (the claim detector would pick them
// up and break ground-truth alignment; years are exempt because detection
// skips them).
type catColumn struct {
	name   string
	values []string
	// phrases renders a predicate on a value explicitly; %s is the value.
	phrase string
	// oblique maps a value to phrasings that share no keywords with the
	// fragment (the paper's "lifetime bans" → Games='indef' dynamic): only
	// priors and evaluation results can recover these.
	oblique map[string][]string
}

// numColumn is a numeric measure column.
type numColumn struct {
	name     string
	min, max int
	unit     string // spoken unit ("dollars", "games")
	yearLike bool   // values are calendar years
}

var domains = []domainSpec{
	{
		name:      "sports",
		source:    "538",
		tableName: "leaguediscipline",
		noun:      "suspensions",
		catCols: []catColumn{
			{
				name:   "player",
				values: nil, // generated names
				phrase: "handed to %s",
			},
			{
				name: "team",
				values: []string{
					"rockets", "comets", "pioneers", "wolves", "ravens",
					"chiefs", "stallions", "mariners", "blazers", "spartans",
				},
				phrase: "involving the %s",
			},
			{
				name: "duration",
				values: []string{
					"lifetime", "season", "half season", "quarter season", "brief",
				},
				phrase: "of %s length",
				oblique: map[string][]string{
					"lifetime": {"that ended careers for good", "of the harshest kind"},
					"brief":    {"that barely registered", "of the mildest kind"},
				},
			},
			{
				name: "reason",
				values: []string{
					"gambling", "substance abuse", "repeated substance abuse",
					"violent conduct", "equipment tampering", "contract dispute",
				},
				phrase: "for %s",
				oblique: map[string][]string{
					"gambling":        {"tied to wagers on games"},
					"substance abuse": {"linked to failed tests"},
				},
			},
		},
		numCols: []numColumn{
			{name: "fine", min: 5000, max: 900000, unit: "dollars"},
			{name: "missed_games", min: 1, max: 82, unit: "games"},
			{name: "year", min: 1988, max: 2017, yearLike: true},
		},
		titles: []string{
			"The League's Uneven History of Punishing Players",
			"How Discipline Really Works in the League",
			"A Decade of Player Suspensions, Charted",
		},
		themeCols:  []string{"duration", "reason"},
		secondCols: []string{"team", "reason", "duration"},
	},
	{
		name:      "politics",
		source:    "nyt",
		tableName: "campaigndonations",
		noun:      "donations",
		catCols: []catColumn{
			{
				name:   "recipient",
				values: nil, // generated names
				phrase: "to %s",
			},
			{
				name:   "party",
				values: []string{"republican", "democratic", "independent", "libertarian"},
				phrase: "to %s candidates",
				oblique: map[string][]string{
					"republican": {"to the red column"},
					"democratic": {"to the blue column"},
				},
			},
			{
				name: "state",
				values: []string{
					"california", "texas", "ohio", "florida", "virginia",
					"colorado", "oregon", "georgia", "nevada", "iowa",
				},
				phrase: "from %s",
			},
			{
				name:   "donor_type",
				values: []string{"individual", "committee", "corporate", "union"},
				phrase: "by %s donors",
			},
		},
		numCols: []numColumn{
			{name: "amount", min: 50, max: 10800, unit: "dollars"},
			{name: "year", min: 2006, max: 2016, yearLike: true},
		},
		titles: []string{
			"Following the Money in This Year's Primaries",
			"Who Gives, and to Whom: a Donations Ledger",
			"The Donor Class, by the Numbers",
		},
		themeCols:  []string{"party", "donor_type"},
		secondCols: []string{"state", "party", "donor_type"},
	},
	{
		name:      "survey",
		source:    "stackoverflow",
		tableName: "developersurvey",
		noun:      "respondents",
		catCols: []catColumn{
			{
				name: "education",
				values: []string{
					"self taught", "bootcamp", "bachelors degree",
					"masters degree", "doctorate", "some college",
				},
				phrase: "who are %s",
				oblique: map[string][]string{
					"self taught": {"who never saw a classroom"},
				},
			},
			{
				name: "occupation",
				values: []string{
					"backend developer", "frontend developer", "data scientist",
					"devops specialist", "mobile developer", "embedded developer",
					"qa engineer", "architect",
				},
				phrase: "working as a %s",
			},
			{
				name: "country",
				values: []string{
					"united states", "india", "germany", "united kingdom",
					"canada", "france", "brazil", "poland", "australia", "japan",
				},
				phrase: "from %s",
			},
			{
				name:   "remote_status",
				values: []string{"fully remote", "hybrid", "office based"},
				phrase: "who work %s",
			},
			{
				name:   "language",
				values: []string{"javascript", "python", "java", "go", "rust", "csharp", "ruby"},
				phrase: "who mainly write %s",
			},
		},
		numCols: []numColumn{
			{name: "salary", min: 18000, max: 210000, unit: "dollars"},
			{name: "experience_years", min: 1, max: 35, unit: "years"},
			{name: "hours_per_week", min: 20, max: 70, unit: "hours"},
			{name: "year", min: 2015, max: 2017, yearLike: true},
		},
		titles: []string{
			"Developer Survey Results, Annotated",
			"What Our Annual Survey Says About Developers",
			"The State of the Developer Nation",
		},
		themeCols:  []string{"education", "occupation", "remote_status"},
		secondCols: []string{"country", "language", "remote_status", "education"},
	},
	{
		name:      "economy",
		source:    "vox",
		tableName: "retailsales",
		noun:      "stores",
		catCols: []catColumn{
			{
				name:   "sector",
				values: []string{"groceries", "electronics", "apparel", "furniture", "pharmacy"},
				phrase: "selling %s",
			},
			{
				name:   "region",
				values: []string{"northeast", "midwest", "south", "west coast", "mountain"},
				phrase: "in the %s",
				oblique: map[string][]string{
					"west coast": {"along the pacific"},
					"south":      {"below the mason dixon line"},
				},
			},
			{
				name:   "size_class",
				values: []string{"flagship", "standard", "compact", "kiosk"},
				phrase: "of %s format",
			},
			{
				name:   "ownership",
				values: []string{"franchise", "corporate", "cooperative"},
				phrase: "under %s ownership",
			},
		},
		numCols: []numColumn{
			{name: "revenue", min: 120000, max: 9500000, unit: "dollars"},
			{name: "employees", min: 3, max: 420, unit: "employees"},
			{name: "opened_year", min: 1975, max: 2016, yearLike: true},
		},
		titles: []string{
			"The Retail Recession, Explained with Data",
			"Where Shops Thrive and Where They Close",
			"Retail's Uneven Geography",
		},
		themeCols:  []string{"region", "sector"},
		secondCols: []string{"size_class", "ownership", "sector", "region"},
	},
	{
		name:      "reference",
		source:    "wikipedia",
		tableName: "worldcountries",
		noun:      "countries",
		catCols: []catColumn{
			{
				name:   "continent",
				values: []string{"africa", "asia", "europe", "americas", "oceania"},
				phrase: "in %s",
			},
			{
				name:   "government",
				values: []string{"republic", "monarchy", "federation", "city state"},
				phrase: "governed as a %s",
			},
			{
				name:   "coastline",
				values: []string{"coastal", "landlocked", "island"},
				phrase: "that are %s",
				oblique: map[string][]string{
					"landlocked": {"without access to the sea"},
					"island":     {"surrounded entirely by water"},
				},
			},
			{
				name:   "income_group",
				values: []string{"high income", "upper middle", "lower middle", "low income"},
				phrase: "of %s classification",
			},
		},
		numCols: []numColumn{
			{name: "population", min: 1000000, max: 1300000000, unit: "people"},
			{name: "area_km", min: 1000, max: 9900000, unit: "square kilometers"},
			{name: "hdi_rank", min: 1, max: 188, unit: ""},
		},
		titles: []string{
			"List of Countries by Key Indicators",
			"Comparing the World's Nations",
			"A Statistical Portrait of the World",
		},
		themeCols:  []string{"continent", "coastline"},
		secondCols: []string{"government", "income_group", "coastline", "continent"},
	},
}

// name fragments for generated person/recipient names.
var (
	firstNames = []string{
		"Jordan", "Casey", "Morgan", "Avery", "Riley", "Quinn", "Hayden",
		"Parker", "Rowan", "Skyler", "Emerson", "Finley", "Dakota", "Reese",
	}
	lastNames = []string{
		"Whitfield", "Okafor", "Lindqvist", "Marchetti", "Delgado",
		"Petrov", "Nakamura", "Haugen", "Kowalski", "Abernathy",
		"Castellanos", "Virtanen", "Oyelaran", "Brandt",
	}
)
