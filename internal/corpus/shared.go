package corpus

import (
	"fmt"
	"math/rand"

	"aggchecker/internal/db"
	"aggchecker/internal/sqlexec"
)

// SharedCorpus is N generated articles over ONE shared dataset — the
// corpus-audit fixture. Every document targets the same tables, so
// cross-document shared-pass planning and cube-cache reuse apply; each
// TestCase's DB field points at the shared database.
type SharedCorpus struct {
	DB   *db.Database
	Docs []*TestCase
}

// GenerateSharedCorpus deterministically builds nDocs articles over one
// dataset of the named domain ("" or unknown names fall back to the first
// domain). Each document carries claimsPerDoc claims, errorsPerDoc of
// which are erroneous. Documents get their own themes, sections, and
// claim mixes, so the corpus exercises both overlapping and disjoint
// predicate scopes against the shared tables.
func GenerateSharedCorpus(domain string, seed int64, nDocs, claimsPerDoc, errorsPerDoc int) (*SharedCorpus, error) {
	return GenerateSharedCorpusRows(domain, seed, nDocs, claimsPerDoc, errorsPerDoc, 0)
}

// GenerateSharedCorpusRows is GenerateSharedCorpus with an explicit
// dataset row count (0 keeps the small randomized default). Benchmark
// corpora use it to scale the shared tables to realistic volumes, so a
// cube pass costs what it does in production and cross-document pass
// sharing is measured against real scan work.
func GenerateSharedCorpusRows(domain string, seed int64, nDocs, claimsPerDoc, errorsPerDoc, rows int) (*SharedCorpus, error) {
	spec := domainByName(domain)
	rng := rand.New(rand.NewSource(seed))
	var database *db.Database
	var table *db.Table
	if rows > 0 {
		database, table = buildDatasetN(spec, rng, rows)
	} else {
		database, table = buildDataset(spec, rng)
	}
	engine := sqlexec.NewEngine(database)
	sc := &SharedCorpus{DB: database}
	for i := 0; i < nDocs; i++ {
		name := fmt.Sprintf("%s-shared-%03d", spec.name, i)
		var tc *TestCase
		var lastErr error
		// Per-document retry mirrors generateCase: a fresh sub-seed per
		// attempt, but always against the one shared dataset. The budget is
		// deliberately generous — a large fixed dataset rejects more claim
		// drafts than the small randomized default, and a benchmark corpus
		// must come out the same size every run.
		for attempt := 0; attempt < 48; attempt++ {
			docRng := rand.New(rand.NewSource(seed + 1 + int64(i*101+attempt)*7919))
			tc, lastErr = generateDoc(spec, docRng, database, table, engine, name, claimsPerDoc, errorsPerDoc)
			if lastErr == nil {
				break
			}
		}
		if lastErr != nil {
			return nil, fmt.Errorf("corpus: shared doc %s: %w", name, lastErr)
		}
		sc.Docs = append(sc.Docs, tc)
	}
	return sc, nil
}

func domainByName(name string) domainSpec {
	for _, d := range domains {
		if d.name == name {
			return d
		}
	}
	return domains[0]
}
