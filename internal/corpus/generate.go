package corpus

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"aggchecker/internal/db"
	"aggchecker/internal/document"
	"aggchecker/internal/model"
	"aggchecker/internal/sqlexec"
)

// ClaimTruth is the hand-checked (here: generator-known) translation of one
// claim: the matching query, the correct query result, and whether the
// claimed value is correct under Definition 1.
type ClaimTruth struct {
	Query        sqlexec.Query
	Correct      bool
	CorrectValue float64
	ClaimedValue float64
	ClaimedText  string
}

// TestCase is one article plus its data set and ground truth; Truth[i]
// corresponds to Doc.Claims[i].
type TestCase struct {
	Name   string
	Source string
	DB     *db.Database
	HTML   string
	Doc    *document.Document
	Truth  []ClaimTruth
	// Study marks the six user-study articles (§7.2).
	Study bool
}

// planned is one claim before rendering.
type planned struct {
	query     sqlexec.Query
	fn        sqlexec.AggFunc
	section   int // -1 = intro
	preds     []plannedPred
	aggCol    string // "" for star
	unit      string
	correct   float64
	claimed   float64
	text      string
	erroneous bool
	// contextOnly: the section predicate is omitted from the sentence and
	// recoverable only through the headline (medium difficulty).
	contextOnly bool
	sentence    string
}

type plannedPred struct {
	col     string
	value   string
	phrase  string // rendered phrase; "" when omitted (context mode)
	oblique bool
}

// generateCase builds one synthetic article for the domain with exactly
// nClaims claims, nErrors of which are erroneous.
func generateCase(spec domainSpec, seed int64, name string, nClaims, nErrors int) (*TestCase, error) {
	var lastErr error
	for attempt := 0; attempt < 4; attempt++ {
		tc, err := tryGenerate(spec, seed+int64(attempt)*7919, name, nClaims, nErrors)
		if err == nil {
			return tc, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("corpus: case %s: %w", name, lastErr)
}

func tryGenerate(spec domainSpec, seed int64, name string, nClaims, nErrors int) (*TestCase, error) {
	rng := rand.New(rand.NewSource(seed))
	database, table := buildDataset(spec, rng)
	engine := sqlexec.NewEngine(database)
	return generateDoc(spec, rng, database, table, engine, name, nClaims, nErrors)
}

// generateDoc builds one article over an existing dataset. Split from
// tryGenerate so corpus-audit fixtures can generate many documents against
// ONE shared database (GenerateSharedCorpus) — the shape cross-document
// shared-pass planning exploits.
func generateDoc(spec domainSpec, rng *rand.Rand, database *db.Database, table *db.Table, engine *sqlexec.Engine, name string, nClaims, nErrors int) (*TestCase, error) {
	// Document theme: one categorical theme column whose literals become
	// sections, a function mix, and a preferred numeric column.
	themeCol := spec.themeCols[rng.Intn(len(spec.themeCols))]
	sections := sectionLiterals(table, themeCol, 2+rng.Intn(2))
	if len(sections) < 2 {
		return nil, fmt.Errorf("theme column %s has too few literals", themeCol)
	}
	themeNum := pickNumericCol(spec, rng)

	plans, err := planClaims(spec, rng, engine, table, themeCol, themeNum, sections, nClaims)
	if err != nil {
		return nil, err
	}
	markErroneous(rng, plans, nErrors)
	for _, p := range plans {
		if err := presentClaim(rng, p); err != nil {
			return nil, err
		}
	}
	html, ordered := assembleHTML(spec, rng, themeCol, sections, plans)
	plans = ordered
	doc := document.ParseHTML(html)

	// Alignment: detected claims must match the generated truth 1:1.
	if len(doc.Claims) != len(plans) {
		return nil, fmt.Errorf("claim alignment: detected %d, generated %d", len(doc.Claims), len(plans))
	}
	truth := make([]ClaimTruth, len(plans))
	for i, p := range plans {
		if math.Abs(doc.Claims[i].Claimed.Value-p.claimed) > math.Abs(p.claimed)*1e-9+1e-9 {
			return nil, fmt.Errorf("claim %d alignment: detected %v, generated %v (%q)",
				i, doc.Claims[i].Claimed.Value, p.claimed, doc.Claims[i].Sentence.Text)
		}
		truth[i] = ClaimTruth{
			Query:        p.query,
			Correct:      !p.erroneous,
			CorrectValue: p.correct,
			ClaimedValue: p.claimed,
			ClaimedText:  p.text,
		}
	}
	return &TestCase{
		Name:   name,
		Source: spec.source,
		DB:     database,
		HTML:   html,
		Doc:    doc,
		Truth:  truth,
	}, nil
}

// buildDataset materializes the domain's table with 250–1200 rows.
func buildDataset(spec domainSpec, rng *rand.Rand) (*db.Database, *db.Table) {
	return buildDatasetN(spec, rng, 250+rng.Intn(950))
}

// buildDatasetN builds the domain dataset at an explicit row count —
// benchmark corpora scale the data volume so cube passes cost what they
// do on real tables, while test corpora keep the small randomized default.
func buildDatasetN(spec domainSpec, rng *rand.Rand, rows int) (*db.Database, *db.Table) {
	var cols []*db.Column
	for _, cc := range spec.catCols {
		values := cc.values
		if values == nil {
			values = generateNames(rng, 30+rng.Intn(30))
		}
		col := db.NewStringColumn(cc.name)
		weights := zipfWeights(len(values))
		for r := 0; r < rows; r++ {
			col.AppendString(values[sampleIndex(rng, weights)])
		}
		cols = append(cols, col)
	}
	for _, nc := range spec.numCols {
		col := db.NewFloatColumn(nc.name)
		for r := 0; r < rows; r++ {
			col.AppendFloat(float64(nc.min + rng.Intn(nc.max-nc.min+1)))
		}
		cols = append(cols, col)
	}
	table := db.MustNewTable(spec.tableName, cols...)
	database := db.NewDatabase(spec.name)
	database.MustAddTable(table)
	return database, table
}

func generateNames(rng *rand.Rand, n int) []string {
	seen := map[string]bool{}
	var out []string
	for len(out) < n {
		name := firstNames[rng.Intn(len(firstNames))] + " " + lastNames[rng.Intn(len(lastNames))]
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	return out
}

func zipfWeights(n int) []float64 {
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / math.Pow(float64(i)+1.2, 1.1)
	}
	return w
}

func sampleIndex(rng *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	x := rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x <= 0 {
			return i
		}
	}
	return len(weights) - 1
}

// sectionLiterals picks the n most frequent literals of the theme column.
func sectionLiterals(table *db.Table, themeCol string, n int) []string {
	col := table.Column(themeCol)
	counts := make(map[string]int)
	for i := 0; i < col.Len(); i++ {
		if !col.IsNull(i) {
			counts[col.StringAt(i)]++
		}
	}
	lits := col.Dictionary()
	sorted := append([]string(nil), lits...)
	for i := 0; i < len(sorted); i++ {
		for j := i + 1; j < len(sorted); j++ {
			if counts[sorted[j]] > counts[sorted[i]] {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	if n > len(sorted) {
		n = len(sorted)
	}
	return sorted[:n]
}

func pickNumericCol(spec domainSpec, rng *rand.Rand) numColumn {
	var cands []numColumn
	for _, nc := range spec.numCols {
		if !nc.yearLike {
			cands = append(cands, nc)
		}
	}
	return cands[rng.Intn(len(cands))]
}

func catColSpec(spec domainSpec, name string) *catColumn {
	for i := range spec.catCols {
		if spec.catCols[i].name == name {
			return &spec.catCols[i]
		}
	}
	return nil
}

// fn mixes per predicate count, mirroring Figure 9's distributions.
var zeroPredFns = []weightedFn{
	{sqlexec.Count, 0.35}, {sqlexec.Avg, 0.2}, {sqlexec.Sum, 0.15},
	{sqlexec.Max, 0.12}, {sqlexec.Min, 0.08}, {sqlexec.CountDistinct, 0.1},
}
var onePredFns = []weightedFn{
	{sqlexec.Count, 0.55}, {sqlexec.Percentage, 0.2}, {sqlexec.Avg, 0.1},
	{sqlexec.Sum, 0.05}, {sqlexec.Max, 0.05}, {sqlexec.CountDistinct, 0.05},
}
var twoPredFns = []weightedFn{
	{sqlexec.Count, 0.6}, {sqlexec.Percentage, 0.2},
	{sqlexec.ConditionalProbability, 0.08}, {sqlexec.Avg, 0.12},
}

type weightedFn struct {
	fn sqlexec.AggFunc
	w  float64
}

func sampleFn(rng *rand.Rand, mix []weightedFn) sqlexec.AggFunc {
	var total float64
	for _, m := range mix {
		total += m.w
	}
	x := rng.Float64() * total
	for _, m := range mix {
		x -= m.w
		if x <= 0 {
			return m.fn
		}
	}
	return mix[len(mix)-1].fn
}

// planClaims builds the claim plans: predicate-count split 17/61/23
// (Figure 9c), theme concentration (Figure 9b), and a difficulty mix of
// explicit, context-only and oblique predicate renderings.
func planClaims(spec domainSpec, rng *rand.Rand, engine *sqlexec.Engine, table *db.Table, themeCol string, themeNum numColumn, sections []string, nClaims int) ([]*planned, error) {
	nZero := int(math.Round(0.17 * float64(nClaims)))
	nTwo := int(math.Round(0.23 * float64(nClaims)))
	nOne := nClaims - nZero - nTwo
	if nOne < 0 {
		nOne, nTwo = 0, nClaims-nZero
	}

	var plans []*planned
	tref := func(col string) sqlexec.ColumnRef {
		return sqlexec.ColumnRef{Table: spec.tableName, Column: col}
	}

	finish := func(p *planned) error {
		var err error
		for tries := 0; tries < 25; tries++ {
			p.correct, err = engine.Evaluate(p.query)
			if err != nil {
				return err
			}
			if acceptableResult(p.fn, p.correct) {
				return nil
			}
			// Resample the last predicate literal and retry.
			if len(p.query.Preds) == 0 {
				return fmt.Errorf("degenerate zero-predicate result %v for %s", p.correct, p.query.Key())
			}
			last := &p.query.Preds[len(p.query.Preds)-1]
			lit, ok := sampleLiteral(rng, table, last.Col.Column)
			if !ok {
				return fmt.Errorf("no literals for column %s", last.Col.Column)
			}
			last.Value = lit
			p.preds[len(p.preds)-1].value = lit
		}
		return fmt.Errorf("no acceptable result for %s", p.query.Key())
	}

	// Zero-predicate claims (intro).
	for i := 0; i < nZero; i++ {
		fn := sampleFn(rng, zeroPredFns)
		p := &planned{fn: fn, section: -1}
		p.query = sqlexec.Query{Agg: fn}
		applyAggCol(spec, rng, p, themeNum, tref)
		if err := finish(p); err != nil {
			return nil, err
		}
		plans = append(plans, p)
	}

	// One-predicate claims: mostly on the theme column (section literals),
	// some off-theme (intro), matching the paper's ~90% top-3 coverage.
	for i := 0; i < nOne; i++ {
		fn := sampleFn(rng, onePredFns)
		p := &planned{fn: fn}
		if rng.Float64() < 0.8 {
			sec := rng.Intn(len(sections))
			p.section = sec
			addPred(spec, rng, p, themeCol, sections[sec], tref, true)
		} else {
			p.section = -1
			col := spec.secondCols[rng.Intn(len(spec.secondCols))]
			lit, ok := sampleLiteral(rng, table, col)
			if !ok {
				return nil, fmt.Errorf("no literals for %s", col)
			}
			addPred(spec, rng, p, col, lit, tref, false)
		}
		applyAggCol(spec, rng, p, themeNum, tref)
		if err := finish(p); err != nil {
			return nil, err
		}
		plans = append(plans, p)
	}

	// Two-predicate claims: theme section literal plus a secondary.
	for i := 0; i < nTwo; i++ {
		fn := sampleFn(rng, twoPredFns)
		p := &planned{fn: fn}
		sec := rng.Intn(len(sections))
		p.section = sec
		addPred(spec, rng, p, themeCol, sections[sec], tref, true)
		// Secondary predicate on a different column.
		var col string
		for tries := 0; tries < 10; tries++ {
			col = spec.secondCols[rng.Intn(len(spec.secondCols))]
			if col != themeCol {
				break
			}
		}
		if col == themeCol {
			col = spec.catCols[0].name
		}
		lit, ok := sampleLiteral(rng, table, col)
		if !ok {
			return nil, fmt.Errorf("no literals for %s", col)
		}
		addPred(spec, rng, p, col, lit, tref, false)
		applyAggCol(spec, rng, p, themeNum, tref)
		if err := finish(p); err != nil {
			return nil, err
		}
		plans = append(plans, p)
	}
	return plans, nil
}

// addPred attaches a predicate with its rendering mode. Theme predicates
// may be context-only (omitted from the sentence; the headline carries
// them); all predicates may be oblique when the domain provides phrases.
func addPred(spec domainSpec, rng *rand.Rand, p *planned, col, lit string, tref func(string) sqlexec.ColumnRef, isTheme bool) {
	cc := catColSpec(spec, col)
	pp := plannedPred{col: col, value: lit}
	mode := rng.Float64()
	switch {
	case isTheme && p.fn != sqlexec.ConditionalProbability && mode < 0.4:
		p.contextOnly = true // phrase stays empty
	case cc != nil && len(cc.oblique[lit]) > 0 && mode < 0.55:
		pp.phrase = cc.oblique[lit][rng.Intn(len(cc.oblique[lit]))]
		pp.oblique = true
	case cc != nil:
		pp.phrase = fmt.Sprintf(cc.phrase, lit)
	default:
		pp.phrase = "in " + lit
	}
	p.preds = append(p.preds, pp)
	p.query.Preds = append(p.query.Preds, sqlexec.Predicate{Col: tref(col), Value: lit})
}

// applyAggCol sets the aggregation column for numeric functions and
// CountDistinct.
func applyAggCol(spec domainSpec, rng *rand.Rand, p *planned, themeNum numColumn, tref func(string) sqlexec.ColumnRef) {
	switch p.fn {
	case sqlexec.Sum, sqlexec.Avg, sqlexec.Min, sqlexec.Max:
		nc := themeNum
		if rng.Float64() < 0.15 {
			nc = pickNumericCol(spec, rng)
		}
		p.aggCol = nc.name
		p.unit = nc.unit
		p.query.AggCol = tref(nc.name)
	case sqlexec.CountDistinct:
		// Count distinct over a categorical column not used in predicates.
		used := map[string]bool{}
		for _, pr := range p.preds {
			used[pr.col] = true
		}
		var cands []string
		for _, cc := range spec.catCols {
			if !used[cc.name] {
				cands = append(cands, cc.name)
			}
		}
		col := cands[rng.Intn(len(cands))]
		p.aggCol = col
		p.query.AggCol = tref(col)
	}
}

// sampleLiteral draws a literal present in the column (frequency-weighted
// by drawing a random row).
func sampleLiteral(rng *rand.Rand, table *db.Table, col string) (string, bool) {
	c := table.Column(col)
	if c == nil || c.Len() == 0 {
		return "", false
	}
	for tries := 0; tries < 20; tries++ {
		i := rng.Intn(c.Len())
		if !c.IsNull(i) {
			return c.StringAt(i), true
		}
	}
	return "", false
}

// acceptableResult filters degenerate query results that would make
// implausible claims.
func acceptableResult(fn sqlexec.AggFunc, v float64) bool {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return false
	}
	switch fn {
	case sqlexec.Count, sqlexec.CountDistinct:
		return v >= 1
	case sqlexec.Percentage, sqlexec.ConditionalProbability:
		return v >= 0.5 && v <= 100
	default:
		return v > 0
	}
}

// markErroneous flips nErrors claims to wrong values.
func markErroneous(rng *rand.Rand, plans []*planned, nErrors int) {
	if nErrors > len(plans) {
		nErrors = len(plans)
	}
	perm := rng.Perm(len(plans))
	for i := 0; i < nErrors; i++ {
		plans[perm[i]].erroneous = true
	}
}

// presentClaim renders the claimed value (text and numeric form), applying
// the error perturbation for erroneous claims and verifying Definition 1
// either way.
func presentClaim(rng *rand.Rand, p *planned) error {
	claimed := roundedPresentation(rng, p.fn, p.correct)
	if p.erroneous {
		var ok bool
		claimed, ok = perturb(rng, p.fn, p.correct)
		if !ok {
			return fmt.Errorf("could not perturb %v", p.correct)
		}
	} else if !model.Matches(p.correct, claimed) {
		return fmt.Errorf("presentation %v does not match correct value %v", claimed, p.correct)
	}
	p.claimed = claimed
	p.text = formatClaimText(rng, p.fn, claimed)
	if strings.Contains(p.text, "million") {
		p.unit = ""
	}
	return nil
}

// roundedPresentation chooses the value as the author would state it.
func roundedPresentation(rng *rand.Rand, fn sqlexec.AggFunc, v float64) float64 {
	switch fn {
	case sqlexec.Count, sqlexec.CountDistinct, sqlexec.Min, sqlexec.Max:
		return v
	case sqlexec.Percentage, sqlexec.ConditionalProbability:
		return model.RoundSig(v, 2)
	default:
		k := 2 + rng.Intn(2)
		return model.RoundSig(v, k)
	}
}

// perturb produces a wrong claimed value that no admissible rounding of the
// correct value reaches.
func perturb(rng *rand.Rand, fn sqlexec.AggFunc, correct float64) (float64, bool) {
	var candidates []float64
	switch fn {
	case sqlexec.Count, sqlexec.CountDistinct, sqlexec.Min, sqlexec.Max:
		for _, d := range []float64{1, -1, 2, -2, 3, 4} {
			candidates = append(candidates, correct+d)
		}
	case sqlexec.Percentage, sqlexec.ConditionalProbability:
		base := model.RoundSig(correct, 2)
		for _, d := range []float64{3, -3, 5, -5, 7, 2, -2} {
			candidates = append(candidates, base+d)
		}
	default:
		for _, f := range []float64{1.25, 0.8, 1.5, 0.65} {
			candidates = append(candidates, model.RoundSig(correct*f, 2))
		}
	}
	// Deterministic shuffle for variety.
	rng.Shuffle(len(candidates), func(i, j int) { candidates[i], candidates[j] = candidates[j], candidates[i] })
	for _, c := range candidates {
		if c > 0 && !model.Matches(correct, c) {
			if fn == sqlexec.Percentage || fn == sqlexec.ConditionalProbability {
				if c > 100 {
					continue
				}
			}
			return c, true
		}
	}
	return 0, false
}

// formatClaimText renders the claimed value, guarding against year-like
// presentations that the claim detector would skip.
func formatClaimText(rng *rand.Rand, fn sqlexec.AggFunc, claimed float64) string {
	text := formatValue(rng, fn, claimed)
	if looksYearLike(text) {
		// Insert a thousands separator: "1,998" parses to the same value
		// but is no longer mistaken for a calendar year.
		text = text[:1] + "," + text[1:]
	}
	return text
}

func looksYearLike(text string) bool {
	if len(text) != 4 {
		return false
	}
	v, err := strconv.Atoi(text)
	if err != nil {
		return false
	}
	return v >= 1800 && v <= 2100
}
