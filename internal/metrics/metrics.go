// Package metrics implements the evaluation measures of §7: precision and
// recall over erroneous claims (Definitions 4 and 5), F1, and top-k
// coverage of ground-truth queries (Definition 6).
package metrics

// Confusion tallies verdicts against ground truth for the "erroneous claim"
// detection task: positives are claims flagged erroneous.
type Confusion struct {
	TP int // flagged erroneous, truly erroneous
	FP int // flagged erroneous, actually correct
	FN int // passed as correct, truly erroneous
	TN int // passed as correct, actually correct
}

// Add records one claim outcome.
func (c *Confusion) Add(flagged, trulyErroneous bool) {
	switch {
	case flagged && trulyErroneous:
		c.TP++
	case flagged && !trulyErroneous:
		c.FP++
	case !flagged && trulyErroneous:
		c.FN++
	default:
		c.TN++
	}
}

// Precision is the fraction of flagged claims that are truly erroneous
// (Definition 4).
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall is the fraction of truly erroneous claims that were flagged
// (Definition 5).
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 is the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Total returns the number of recorded claims.
func (c Confusion) Total() int { return c.TP + c.FP + c.FN + c.TN }

// TopKCoverage computes Definition 6 over ground-truth ranks: ranks[i] is
// the 0-based position of claim i's matching query in the system's ranked
// list, or -1 when absent. The result is the percentage of claims whose
// rank is < k.
func TopKCoverage(ranks []int, k int) float64 {
	if len(ranks) == 0 {
		return 0
	}
	hit := 0
	for _, r := range ranks {
		if r >= 0 && r < k {
			hit++
		}
	}
	return 100 * float64(hit) / float64(len(ranks))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var t float64
	for _, x := range xs {
		t += x
	}
	return t / float64(len(xs))
}
