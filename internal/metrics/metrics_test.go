package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConfusionBasics(t *testing.T) {
	var c Confusion
	c.Add(true, true)   // TP
	c.Add(true, false)  // FP
	c.Add(false, true)  // FN
	c.Add(false, false) // TN
	if c.TP != 1 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	if c.Precision() != 0.5 || c.Recall() != 0.5 || c.F1() != 0.5 {
		t.Errorf("P=%v R=%v F1=%v, want 0.5 each", c.Precision(), c.Recall(), c.F1())
	}
	if c.Total() != 4 {
		t.Errorf("total = %d", c.Total())
	}
}

func TestConfusionEdgeCases(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 {
		t.Error("empty confusion should have zero metrics")
	}
	c.Add(false, false)
	if c.Precision() != 0 || c.Recall() != 0 {
		t.Error("no positives: metrics zero")
	}
}

func TestF1IsHarmonicMean(t *testing.T) {
	c := Confusion{TP: 30, FP: 10, FN: 20}
	p, r := c.Precision(), c.Recall()
	want := 2 * p * r / (p + r)
	if math.Abs(c.F1()-want) > 1e-12 {
		t.Errorf("F1 = %v, want %v", c.F1(), want)
	}
}

func TestTopKCoverage(t *testing.T) {
	ranks := []int{0, 0, 3, 9, -1, 25}
	cases := []struct {
		k    int
		want float64
	}{
		{1, 100.0 * 2 / 6},
		{5, 100.0 * 3 / 6},
		{10, 100.0 * 4 / 6},
		{100, 100.0 * 5 / 6},
	}
	for _, c := range cases {
		if got := TopKCoverage(ranks, c.k); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("TopKCoverage(%d) = %v, want %v", c.k, got, c.want)
		}
	}
	if TopKCoverage(nil, 5) != 0 {
		t.Error("empty ranks should give 0")
	}
}

func TestTopKCoverageMonotoneInK(t *testing.T) {
	f := func(ranks []int, k1, k2 uint8) bool {
		a, b := int(k1%30)+1, int(k2%30)+1
		if a > b {
			a, b = b, a
		}
		return TopKCoverage(ranks, a) <= TopKCoverage(ranks, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("mean of empty should be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v", got)
	}
}
