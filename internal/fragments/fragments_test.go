package fragments

import (
	"strings"
	"testing"

	"aggchecker/internal/db"
	"aggchecker/internal/ir"
	"aggchecker/internal/nlp"
	"aggchecker/internal/sqlexec"
)

func nflDB(t *testing.T) *db.Database {
	t.Helper()
	csvData := `name,team,games,category,year
Art Schlichter,IND,indef,gambling,1983
Josh Gordon,CLE,indef,substance abuse repeated offense,2014
Stanley Wilson,CIN,indef,substance abuse repeated offense,1989
Leon Lett,DAL,4,substance abuse,1995
Ray Rice,BAL,2,personal conduct,2014
`
	tbl, err := db.LoadCSV(strings.NewReader(csvData), "nflsuspensions")
	if err != nil {
		t.Fatal(err)
	}
	d := db.NewDatabase("nfl")
	d.MustAddTable(tbl)
	return d
}

func TestBuildCatalogCounts(t *testing.T) {
	c := BuildCatalog(nflDB(t), DefaultOptions())
	if len(c.Funcs) != 8 {
		t.Errorf("functions = %d, want 8", len(c.Funcs))
	}
	// Columns: star + 5 table columns.
	if len(c.Columns) != 6 {
		t.Errorf("columns = %d, want 6", len(c.Columns))
	}
	// Predicate columns: name, team, games, category (strings) + year
	// (integral, low distinct count).
	if len(c.PredColumns) != 5 {
		t.Errorf("predicate columns = %d (%v), want 5", len(c.PredColumns), c.PredColumns)
	}
}

func TestPredicateFragmentsPerColumn(t *testing.T) {
	c := BuildCatalog(nflDB(t), DefaultOptions())
	gi := c.PredColumnIndex(sqlexec.ColumnRef{Table: "nflsuspensions", Column: "games"})
	if gi < 0 {
		t.Fatal("games not a predicate column")
	}
	preds := c.PredsForColumn(gi)
	if len(preds) != 3 { // indef, 4, 2
		t.Errorf("games literals = %d, want 3", len(preds))
	}
	found := false
	for _, p := range preds {
		if p.Value == "indef" {
			found = true
		}
	}
	if !found {
		t.Error("games = indef fragment missing")
	}
}

func TestPredicateRetrievalByValueKeyword(t *testing.T) {
	c := BuildCatalog(nflDB(t), DefaultOptions())
	hits := c.PredIndex.Search([]ir.WeightedTerm{{Term: nlp.Stem("gambling"), Weight: 1}}, 5)
	if len(hits) == 0 {
		t.Fatal("no hits for gambling")
	}
	f := c.Fragment(hits[0].ID)
	if f.Kind != FragPredicate || f.Value != "gambling" {
		t.Errorf("top hit = %+v, want category=gambling", f)
	}
}

func TestPredicateRetrievalViaSynonym(t *testing.T) {
	// "lifetime bans" should reach games='indef' through the synonym group
	// {lifetime, permanent, indefinite, indef} and table-name keywords.
	c := BuildCatalog(nflDB(t), DefaultOptions())
	hits := c.PredIndex.Search([]ir.WeightedTerm{
		{Term: nlp.Stem("lifetime"), Weight: 1},
		{Term: nlp.Stem("bans"), Weight: 1},
	}, 5)
	if len(hits) == 0 {
		t.Fatal("no hits for lifetime bans")
	}
	found := false
	for _, h := range hits {
		f := c.Fragment(h.ID)
		if f.Value == "indef" {
			found = true
		}
	}
	if !found {
		t.Errorf("games=indef not retrieved for 'lifetime bans'")
	}
}

func TestSynonymsToggle(t *testing.T) {
	opts := DefaultOptions()
	opts.UseSynonyms = false
	c := BuildCatalog(nflDB(t), opts)
	hits := c.PredIndex.Search([]ir.WeightedTerm{{Term: nlp.Stem("lifetime"), Weight: 1}}, 5)
	for _, h := range hits {
		if c.Fragment(h.ID).Value == "indef" {
			t.Error("without synonyms, 'lifetime' should not retrieve games=indef")
		}
	}
}

func TestStarColumnKeywords(t *testing.T) {
	c := BuildCatalog(nflDB(t), DefaultOptions())
	// The star fragment carries table-name derived keywords: "suspensions"
	// (and via synonyms "bans").
	hits := c.ColIndex.Search([]ir.WeightedTerm{{Term: nlp.Stem("bans"), Weight: 1}}, 3)
	if len(hits) == 0 {
		t.Fatal("no column hits for 'bans'")
	}
	f := c.Fragment(hits[0].ID)
	if !f.Col.IsStar() {
		t.Errorf("top column hit = %v, want star", f.Col)
	}
}

func TestFunctionFragments(t *testing.T) {
	c := BuildCatalog(nflDB(t), DefaultOptions())
	hits := c.FuncIndex.Search([]ir.WeightedTerm{{Term: nlp.Stem("average"), Weight: 1}}, 1)
	if len(hits) != 1 || c.Fragment(hits[0].ID).Fn != sqlexec.Avg {
		t.Errorf("average should retrieve Avg, got %v", hits)
	}
	hits = c.FuncIndex.Search([]ir.WeightedTerm{{Term: nlp.Stem("percent"), Weight: 1}}, 1)
	if len(hits) != 1 || c.Fragment(hits[0].ID).Fn != sqlexec.Percentage {
		t.Errorf("percent should retrieve Percentage, got %v", hits)
	}
}

func TestNumericPredicateColumnGate(t *testing.T) {
	// A high-cardinality numeric column must not become a predicate column.
	vals := db.NewFloatColumn("measure")
	cat := db.NewStringColumn("cat")
	for i := 0; i < 100; i++ {
		vals.AppendFloat(float64(i) + 0.5)
		cat.AppendString("x")
	}
	d := db.NewDatabase("t")
	d.MustAddTable(db.MustNewTable("t", vals, cat))
	c := BuildCatalog(d, DefaultOptions())
	if got := len(c.PredColumns); got != 1 {
		t.Errorf("predicate columns = %d (%v), want 1 (only cat)", got, c.PredColumns)
	}
}

func TestDataDictionaryKeywords(t *testing.T) {
	d := nflDB(t)
	d.ApplyDataDictionary(map[string]string{
		"games": "duration of the punishment measured in matches",
	})
	c := BuildCatalog(d, DefaultOptions())
	hits := c.ColIndex.Search([]ir.WeightedTerm{{Term: nlp.Stem("punishment"), Weight: 1}}, 10)
	found := false
	for _, h := range hits {
		if c.Fragment(h.ID).Col.Column == "games" {
			found = true
		}
	}
	if !found {
		t.Error("data dictionary description keywords not indexed on the column fragment")
	}
	// Description words must NOT discriminate between literals of the
	// column: no predicate fragment carries them. Probe with "duration",
	// which occurs only in the description ("punishment" would also match
	// through table-name synonyms).
	predHits := c.PredIndex.Search([]ir.WeightedTerm{{Term: nlp.Stem("duration"), Weight: 1}}, 10)
	for _, h := range predHits {
		if c.Fragment(h.ID).Col.Column == "games" {
			t.Error("data dictionary description leaked into predicate keywords")
		}
	}
}

func TestCandidateSpaceLog10(t *testing.T) {
	c := BuildCatalog(nflDB(t), DefaultOptions())
	got := c.CandidateSpaceLog10()
	// 5 predicate columns with 6,5,3,3,3 literals → product of (1+n) =
	// 7*6*4*4*4 = 2688 predicate combinations; times columns per function.
	if got < 3 || got > 8 {
		t.Errorf("CandidateSpaceLog10 = %v, want within [3, 8]", got)
	}
}

func TestFragmentIDsConsistent(t *testing.T) {
	c := BuildCatalog(nflDB(t), DefaultOptions())
	for i, f := range c.Fragments {
		if f.ID != i {
			t.Fatalf("fragment %d has ID %d", i, f.ID)
		}
	}
	// Every categorized fragment appears in the global slice.
	if len(c.Fragments) != len(c.Funcs)+len(c.Columns)+len(c.Preds) {
		t.Errorf("fragment partition sizes inconsistent")
	}
}

func predKey(f *Fragment) string { return f.Col.String() + "=" + f.Value }

func TestExtendNoChangeReturnsSameCatalog(t *testing.T) {
	c := BuildCatalog(nflDB(t), DefaultOptions())
	ext, added := c.Extend()
	if ext != c || added != 0 {
		t.Fatalf("Extend with no new values = (%p, %d), want (%p, 0)", ext, added, c)
	}
}

func TestExtendMatchesFreshBuild(t *testing.T) {
	d := nflDB(t)
	c := BuildCatalog(d, DefaultOptions())
	nPreds, nFrags := len(c.Preds), len(c.Fragments)

	// New string values, a repeated value, and a new integral year.
	err := d.Append("nflsuspensions",
		[]any{"Tom Example", "SEA", "8", "gambling", 2001.0},
		[]any{"Ann Sample", "CLE", "indef", "doping violation", 2014.0},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Commit(); err != nil {
		t.Fatal(err)
	}

	ext, added := c.Extend()
	if added <= 0 {
		t.Fatalf("Extend added = %d, want > 0", added)
	}
	if ext == c {
		t.Fatal("Extend must return a new catalog when values were added")
	}
	// Copy-on-write: the old catalog is untouched, cheap parts are shared.
	if len(c.Preds) != nPreds || len(c.Fragments) != nFrags {
		t.Fatal("Extend mutated the source catalog")
	}
	if ext.FuncIndex != c.FuncIndex || ext.ColIndex != c.ColIndex {
		t.Fatal("Extend must share the function and column indexes")
	}
	// Existing predicate columns keep their positions (prior parameters are
	// indexed against PredColumns).
	for i, ref := range c.PredColumns {
		if ext.PredColumns[i] != ref {
			t.Fatalf("predicate column %d moved: %v -> %v", i, ref, ext.PredColumns[i])
		}
	}

	// Membership matches a fresh build exactly.
	fresh := BuildCatalog(d, DefaultOptions())
	want := make(map[string]*Fragment, len(fresh.Preds))
	for _, f := range fresh.Preds {
		want[predKey(f)] = f
	}
	got := make(map[string]*Fragment, len(ext.Preds))
	for _, f := range ext.Preds {
		got[predKey(f)] = f
	}
	if len(got) != len(want) {
		t.Fatalf("extended catalog has %d predicates, fresh build has %d", len(got), len(want))
	}
	for k, wf := range want {
		gf, ok := got[k]
		if !ok {
			t.Fatalf("extended catalog missing predicate %s", k)
		}
		if len(gf.Keywords) != len(wf.Keywords) {
			t.Fatalf("predicate %s keywords = %d, want %d", k, len(gf.Keywords), len(wf.Keywords))
		}
		for i := range wf.Keywords {
			if gf.Keywords[i] != wf.Keywords[i] {
				t.Fatalf("predicate %s keyword %d = %+v, want %+v", k, i, gf.Keywords[i], wf.Keywords[i])
			}
		}
	}

	// The rebuilt predicate index serves the new literals.
	res := ext.PredIndex.Search([]ir.WeightedTerm{{Term: nlp.Stem("doping"), Weight: 1}}, 3)
	foundNew := false
	for _, r := range res {
		if ext.Fragment(r.ID).Value == "doping violation" {
			foundNew = true
		}
	}
	if !foundNew {
		t.Fatal("new literal not searchable through the extended predicate index")
	}

	// Extending again with nothing new is a no-op on the extended catalog.
	again, n := ext.Extend()
	if again != ext || n != 0 {
		t.Fatalf("second Extend = (%p, %d), want (%p, 0)", again, n, ext)
	}
}

func TestExtendFallsBackOnThresholdCross(t *testing.T) {
	d := nflDB(t)
	opts := DefaultOptions()
	opts.NumericPredicateMaxDistinct = 5
	c := BuildCatalog(d, opts)
	yi := c.PredColumnIndex(sqlexec.ColumnRef{Table: "nflsuspensions", Column: "year"})
	if yi < 0 {
		t.Fatal("year should be a predicate column below the threshold")
	}
	// Push the year column past the distinct threshold.
	for i := 0; i < 8; i++ {
		if err := d.Append("nflsuspensions", []any{"P", "T", "1", "c", float64(2020 + i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	ext, added := c.Extend()
	if added != -1 {
		t.Fatalf("Extend across the distinct threshold added = %d, want -1 (full rebuild)", added)
	}
	if ext.PredColumnIndex(sqlexec.ColumnRef{Table: "nflsuspensions", Column: "year"}) >= 0 {
		t.Fatal("rebuilt catalog must drop the over-threshold numeric column")
	}
}
