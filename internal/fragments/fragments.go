// Package fragments implements §4.2 of the paper: when a database is
// loaded, AggChecker forms all potentially relevant query fragments —
// aggregation functions, aggregation columns, and unary equality predicates
// — associates each with a weighted keyword set (identifier decomposition,
// WordNet synonyms, data-dictionary descriptions), and indexes the keyword
// sets in an information-retrieval engine, one index per fragment category.
package fragments

import (
	"math"
	"strconv"

	"aggchecker/internal/db"
	"aggchecker/internal/ir"
	"aggchecker/internal/nlp"
	"aggchecker/internal/sqlexec"
	"aggchecker/internal/wordnet"
)

// Kind classifies a query fragment.
type Kind int

const (
	// FragFunc is an aggregation function fragment.
	FragFunc Kind = iota
	// FragColumn is an aggregation column fragment (including "*").
	FragColumn
	// FragPredicate is a unary equality predicate fragment.
	FragPredicate
)

// Fragment is one candidate query part with its searchable keyword set.
type Fragment struct {
	ID   int
	Kind Kind

	Fn    sqlexec.AggFunc   // FragFunc
	Col   sqlexec.ColumnRef // FragColumn (zero = "*") and FragPredicate
	Value string            // FragPredicate literal (canonical string)

	// DistinctOnly marks column fragments usable only under CountDistinct
	// (text columns: they cannot be summed or averaged).
	DistinctOnly bool

	Keywords []ir.WeightedTerm // stemmed, weighted
}

// Options tunes catalog construction. The zero value is not useful; call
// DefaultOptions.
type Options struct {
	// MaxLiteralsPerColumn caps predicate fragments per column (0 = all).
	MaxLiteralsPerColumn int
	// NumericPredicateMaxDistinct: integral numeric columns with at most
	// this many distinct values also yield predicate fragments (years,
	// small codes); high-cardinality measures do not.
	NumericPredicateMaxDistinct int
	// UseSynonyms widens fragment keywords with WordNet synonyms.
	UseSynonyms bool
	// Weights of keyword sources.
	ValueWeight, ColumnWeight, TableWeight, SynonymFactor, DictWeight float64
}

// DefaultOptions mirrors the paper's configuration.
func DefaultOptions() Options {
	return Options{
		MaxLiteralsPerColumn:        5000,
		NumericPredicateMaxDistinct: 40,
		UseSynonyms:                 true,
		ValueWeight:                 1.0,
		ColumnWeight:                0.6,
		TableWeight:                 0.3,
		SynonymFactor:               0.5,
		DictWeight:                  0.5,
	}
}

// Catalog holds the fragments of a database plus the per-category IR
// indexes used by keyword matching (Algorithm 1's IndexFragments).
type Catalog struct {
	DB   *db.Database
	Opts Options

	Fragments []*Fragment // all, ID-indexed
	Funcs     []*Fragment
	Columns   []*Fragment
	Preds     []*Fragment

	FuncIndex *ir.Index
	ColIndex  *ir.Index
	PredIndex *ir.Index

	// PredColumns are the distinct predicate columns in a stable order;
	// prior parameters p_ri are indexed against this slice.
	PredColumns []sqlexec.ColumnRef
	// predsByColumn groups predicate fragments per column position.
	predsByColumn [][]*Fragment
}

// BuildCatalog scans the database and constructs all fragments and indexes.
func BuildCatalog(d *db.Database, opts Options) *Catalog {
	c := &Catalog{DB: d, Opts: opts}
	c.buildFunctions()
	c.buildColumns()
	c.buildPredicates()
	c.FuncIndex = buildIndex(c.Funcs)
	c.ColIndex = buildIndex(c.Columns)
	c.PredIndex = buildIndex(c.Preds)
	return c
}

func buildIndex(frags []*Fragment) *ir.Index {
	ix := ir.NewIndex()
	for _, f := range frags {
		ix.Add(f.ID, f.Keywords)
	}
	ix.Build()
	return ix
}

// Fragment returns the fragment with the given id.
func (c *Catalog) Fragment(id int) *Fragment { return c.Fragments[id] }

// PredsForColumn returns the predicate fragments of the i-th predicate
// column.
func (c *Catalog) PredsForColumn(i int) []*Fragment { return c.predsByColumn[i] }

// PredColumnIndex returns the position of col in PredColumns, or -1.
func (c *Catalog) PredColumnIndex(col sqlexec.ColumnRef) int {
	for i, pc := range c.PredColumns {
		if pc == col {
			return i
		}
	}
	return -1
}

func (c *Catalog) add(f *Fragment) *Fragment {
	f.ID = len(c.Fragments)
	c.Fragments = append(c.Fragments, f)
	return f
}

// functionKeywords are the fixed keyword sets of the standard SQL
// aggregation functions plus the paper's Percentage and
// ConditionalProbability extensions.
var functionKeywords = map[sqlexec.AggFunc][]string{
	sqlexec.Count:                  {"count", "number", "total", "many", "times", "instances", "entries"},
	sqlexec.CountDistinct:          {"distinct", "unique", "different", "count", "number", "separate", "individual", "various"},
	sqlexec.Sum:                    {"sum", "total", "combined", "overall", "altogether", "cumulative", "together"},
	sqlexec.Avg:                    {"average", "mean", "typical", "typically", "usual", "usually"},
	sqlexec.Min:                    {"minimum", "least", "lowest", "fewest", "smallest", "shortest", "cheapest", "earliest", "worst"},
	sqlexec.Max:                    {"maximum", "most", "highest", "largest", "biggest", "longest", "top", "greatest", "best", "record", "latest"},
	sqlexec.Percentage:             {"percent", "percentage", "share", "proportion", "fraction", "rate", "ratio"},
	sqlexec.ConditionalProbability: {"probability", "chance", "likelihood", "odds", "given", "conditional"},
}

func (c *Catalog) buildFunctions() {
	for _, fn := range sqlexec.AggFuncs() {
		kw := newKeywordSet()
		for _, w := range functionKeywords[fn] {
			kw.add(w, 1.0)
		}
		f := c.add(&Fragment{Kind: FragFunc, Fn: fn, Keywords: kw.terms()})
		c.Funcs = append(c.Funcs, f)
	}
}

func (c *Catalog) buildColumns() {
	// The all-column "*": its keywords are the table-name words of every
	// table, so that a claim like "four previous lifetime bans" can match
	// Count(*) through the table name "nflsuspensions".
	star := newKeywordSet()
	for _, t := range c.DB.Tables() {
		c.addIdentifierKeywords(star, t.Name, 1.0)
	}
	f := c.add(&Fragment{Kind: FragColumn, Col: sqlexec.ColumnRef{}, Keywords: star.terms()})
	c.Columns = append(c.Columns, f)

	for _, t := range c.DB.Tables() {
		for _, col := range t.Columns {
			kw := newKeywordSet()
			c.addIdentifierKeywords(kw, col.Name, c.Opts.ValueWeight)
			c.addIdentifierKeywords(kw, t.Name, c.Opts.TableWeight)
			if col.Description != "" {
				c.addDescriptionKeywords(kw, col.Description)
			}
			frag := &Fragment{
				Kind:         FragColumn,
				Col:          sqlexec.ColumnRef{Table: t.Name, Column: col.Name},
				DistinctOnly: col.Kind == db.KindString,
				Keywords:     kw.terms(),
			}
			c.Columns = append(c.Columns, c.add(frag))
		}
	}
}

func (c *Catalog) buildPredicates() {
	for _, t := range c.DB.Tables() {
		for _, col := range t.Columns {
			ref := sqlexec.ColumnRef{Table: t.Name, Column: col.Name}
			var literals []string
			switch col.Kind {
			case db.KindString:
				literals = col.Dictionary()
			case db.KindFloat:
				if !col.Integral {
					continue
				}
				distinct := col.DistinctFloats()
				if len(distinct) == 0 || len(distinct) > c.Opts.NumericPredicateMaxDistinct {
					continue
				}
				for _, v := range distinct {
					literals = append(literals, strconv.FormatInt(int64(v), 10))
				}
			}
			if c.Opts.MaxLiteralsPerColumn > 0 && len(literals) > c.Opts.MaxLiteralsPerColumn {
				literals = literals[:c.Opts.MaxLiteralsPerColumn]
			}
			if len(literals) == 0 {
				continue
			}
			colIdx := len(c.PredColumns)
			c.PredColumns = append(c.PredColumns, ref)
			c.predsByColumn = append(c.predsByColumn, nil)
			for _, lit := range literals {
				// Predicate keywords derive from the value name and the
				// containing column/table names (§4.2). Data-dictionary
				// descriptions deliberately stay on the column fragment
				// only: attaching them to every literal would make all of a
				// column's values look alike to keyword matching.
				kw := newKeywordSet()
				c.addLiteralKeywords(kw, lit)
				c.addIdentifierKeywords(kw, col.Name, c.Opts.ColumnWeight)
				c.addIdentifierKeywords(kw, t.Name, c.Opts.TableWeight)
				frag := c.add(&Fragment{Kind: FragPredicate, Col: ref, Value: lit, Keywords: kw.terms()})
				c.Preds = append(c.Preds, frag)
				c.predsByColumn[colIdx] = append(c.predsByColumn[colIdx], frag)
			}
		}
	}
}

// Extend returns a catalog covering the database's current contents by
// extending c with predicate fragments for values that appeared since c
// was built, instead of rebuilding everything: function and column
// fragments (and their IR indexes) are shared with c, predicate lists are
// copied copy-on-write, and only the predicate index is rebuilt. String
// dictionaries are append-only in first-seen order, so a column's new
// literals are exactly the dictionary suffix past its existing fragments;
// sorted numeric distinct sets interleave, so those take a set diff. New
// predicate columns are appended after the existing ones, keeping prior
// parameters indexed against PredColumns stable. c itself is never
// mutated.
//
// Returns (c, 0) when nothing changed. Returns a freshly built catalog
// and -1 when the change cannot be expressed incrementally: a schema
// change, or an integral column crossing NumericPredicateMaxDistinct
// (a fresh build would drop its fragments entirely).
func (c *Catalog) Extend() (*Catalog, int) {
	cols := 0
	for _, t := range c.DB.Tables() {
		cols += len(t.Columns)
	}
	if len(c.Columns) != 1+cols {
		return BuildCatalog(c.DB, c.Opts), -1
	}
	n := &Catalog{
		DB:            c.DB,
		Opts:          c.Opts,
		Fragments:     c.Fragments,
		Funcs:         c.Funcs,
		Columns:       c.Columns,
		Preds:         c.Preds,
		FuncIndex:     c.FuncIndex,
		ColIndex:      c.ColIndex,
		PredIndex:     c.PredIndex,
		PredColumns:   c.PredColumns,
		predsByColumn: c.predsByColumn,
	}
	cow := false // clone the shared slices once, on first change
	added := 0
	addLits := func(t *db.Table, col *db.Column, ref sqlexec.ColumnRef, lits []string) {
		if !cow {
			cow = true
			n.Fragments = append([]*Fragment(nil), c.Fragments...)
			n.Preds = append([]*Fragment(nil), c.Preds...)
			n.PredColumns = append([]sqlexec.ColumnRef(nil), c.PredColumns...)
			n.predsByColumn = append([][]*Fragment(nil), c.predsByColumn...)
		}
		idx := n.PredColumnIndex(ref)
		if idx < 0 {
			idx = len(n.PredColumns)
			n.PredColumns = append(n.PredColumns, ref)
			n.predsByColumn = append(n.predsByColumn, nil)
		} else {
			n.predsByColumn[idx] = append([]*Fragment(nil), n.predsByColumn[idx]...)
		}
		for _, lit := range lits {
			kw := newKeywordSet()
			n.addLiteralKeywords(kw, lit)
			n.addIdentifierKeywords(kw, col.Name, n.Opts.ColumnWeight)
			n.addIdentifierKeywords(kw, t.Name, n.Opts.TableWeight)
			frag := n.add(&Fragment{Kind: FragPredicate, Col: ref, Value: lit, Keywords: kw.terms()})
			n.Preds = append(n.Preds, frag)
			n.predsByColumn[idx] = append(n.predsByColumn[idx], frag)
			added++
		}
	}
	for _, t := range c.DB.Tables() {
		for _, col := range t.Columns {
			ref := sqlexec.ColumnRef{Table: t.Name, Column: col.Name}
			idx := n.PredColumnIndex(ref)
			prev := 0
			if idx >= 0 {
				prev = len(n.predsByColumn[idx])
			}
			switch col.Kind {
			case db.KindString:
				lits := col.Dictionary()
				if m := c.Opts.MaxLiteralsPerColumn; m > 0 && len(lits) > m {
					lits = lits[:m]
				}
				if len(lits) > prev {
					addLits(t, col, ref, lits[prev:])
				}
			case db.KindFloat:
				if !col.Integral {
					continue
				}
				distinct := col.DistinctFloats()
				if len(distinct) == 0 {
					continue
				}
				if len(distinct) > c.Opts.NumericPredicateMaxDistinct {
					if prev > 0 {
						// The column crossed the distinct threshold: a fresh
						// build would not form predicates over it at all.
						return BuildCatalog(c.DB, c.Opts), -1
					}
					continue
				}
				seen := make(map[string]bool, prev)
				if idx >= 0 {
					for _, f := range n.predsByColumn[idx] {
						seen[f.Value] = true
					}
				}
				var fresh []string
				for _, v := range distinct {
					lit := strconv.FormatInt(int64(v), 10)
					if !seen[lit] {
						fresh = append(fresh, lit)
					}
				}
				if m := c.Opts.MaxLiteralsPerColumn; m > 0 && prev+len(fresh) > m {
					if prev >= m {
						fresh = nil
					} else {
						fresh = fresh[:m-prev]
					}
				}
				if len(fresh) > 0 {
					addLits(t, col, ref, fresh)
				}
			}
		}
	}
	if added == 0 {
		return c, 0
	}
	n.PredIndex = buildIndex(n.Preds)
	return n, added
}

// addIdentifierKeywords decomposes an identifier and adds each unit (plus
// synonyms) at the given weight.
func (c *Catalog) addIdentifierKeywords(kw *keywordSet, ident string, weight float64) {
	for _, word := range wordnet.DecomposeIdentifier(ident) {
		if nlp.IsStopword(word) {
			continue
		}
		kw.add(word, weight)
		if c.Opts.UseSynonyms {
			for _, syn := range wordnet.Synonyms(word) {
				kw.add(syn, weight*c.Opts.SynonymFactor)
			}
		}
	}
}

// addLiteralKeywords tokenizes a literal value and adds its words (plus
// synonyms) at full value weight; numbers inside values are indexed
// verbatim ("week 4").
func (c *Catalog) addLiteralKeywords(kw *keywordSet, lit string) {
	for _, tok := range nlp.Tokenize(lit) {
		switch tok.Kind {
		case nlp.Word:
			if nlp.IsStopword(tok.Lower) {
				continue
			}
			kw.add(tok.Lower, c.Opts.ValueWeight)
			if c.Opts.UseSynonyms {
				for _, syn := range wordnet.Synonyms(tok.Lower) {
					kw.add(syn, c.Opts.ValueWeight*c.Opts.SynonymFactor)
				}
			}
		case nlp.Number:
			kw.addVerbatim(tok.Lower, c.Opts.ValueWeight)
		}
	}
}

// addDescriptionKeywords indexes the data-dictionary description words.
func (c *Catalog) addDescriptionKeywords(kw *keywordSet, desc string) {
	for _, w := range nlp.ContentWords(desc) {
		kw.add(w, c.Opts.DictWeight)
	}
}

// keywordSet accumulates stem → max weight (duplicates keep the highest
// weight rather than summing, so synonym expansion cannot dominate a
// fragment's own name).
type keywordSet struct {
	weights map[string]float64
	order   []string
}

func newKeywordSet() *keywordSet {
	return &keywordSet{weights: make(map[string]float64)}
}

func (k *keywordSet) add(word string, weight float64) {
	k.addVerbatim(nlp.Stem(word), weight)
}

func (k *keywordSet) addVerbatim(term string, weight float64) {
	if term == "" || weight <= 0 {
		return
	}
	if old, ok := k.weights[term]; ok {
		if weight > old {
			k.weights[term] = weight
		}
		return
	}
	k.weights[term] = weight
	k.order = append(k.order, term)
}

func (k *keywordSet) terms() []ir.WeightedTerm {
	out := make([]ir.WeightedTerm, 0, len(k.order))
	for _, term := range k.order {
		out = append(out, ir.WeightedTerm{Term: term, Weight: k.weights[term]})
	}
	return out
}

// CandidateSpaceLog10 returns log10 of the number of Simple Aggregate
// Queries expressible over the catalog (Figure 8 of the paper): for every
// aggregation function, the number of valid aggregation columns, times the
// product over predicate columns of (1 + number of literals).
func (c *Catalog) CandidateSpaceLog10() float64 {
	var logPreds float64
	for i := range c.PredColumns {
		logPreds += math.Log10(1 + float64(len(c.predsByColumn[i])))
	}
	var total float64 // plain sum over functions of 10^(log cols + logPreds)
	for _, fn := range sqlexec.AggFuncs() {
		cols := 0
		for _, cf := range c.Columns {
			if validAggColumn(fn, cf) {
				cols++
			}
		}
		if cols == 0 {
			continue
		}
		total += math.Pow(10, math.Log10(float64(cols))+logPreds)
	}
	if total == 0 {
		return 0
	}
	return math.Log10(total)
}

// validAggColumn reports whether a column fragment can serve as the
// aggregation column of fn (mirrors the candidate model of package model).
func validAggColumn(fn sqlexec.AggFunc, col *Fragment) bool {
	if fn.StarOnly() {
		return col.Col.IsStar()
	}
	if col.Col.IsStar() {
		return false
	}
	if fn == sqlexec.CountDistinct {
		return true
	}
	return !col.DistinctOnly
}
