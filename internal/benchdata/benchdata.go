// Package benchdata builds the benchmark database and case matrix shared
// by the in-repo cube kernel benchmarks (internal/sqlexec) and
// cmd/benchcube, so BenchmarkCubeKernel and the committed BENCH_cube.json
// perf record always measure the same workload. Any schema or case tweak
// lands in both consumers by construction.
package benchdata

import (
	"math"
	"math/rand"
	"strconv"

	"aggchecker/internal/db"
	"aggchecker/internal/sqlexec"
)

// scanBands is the number of clustered bands the fact table's z column
// splits into: z literals occur in ~1/scanBands of the zone maps, so
// equality predicates on z measure zone pruning.
const scanBands = 12

// BuildDB constructs the benchmark database: a fact table with string
// dimension columns (a: 4 values, b: 3, c: 6), small-domain numeric
// dimension columns (d1: 6 values, d2: 4, d3: 5), numeric measures x and y
// with ~5% NULLs, clustered columns z (one string band per rows/scanBands
// run) and t (monotone numeric, a synthetic event time) that give zone
// maps something to prune, and a foreign key into an 8-row dims table
// whose string column g drives the joined cases. Deterministic (fixed
// seed).
func BuildDB(rows int) *db.Database {
	rng := rand.New(rand.NewSource(17))
	a := db.NewStringColumn("a")
	b := db.NewStringColumn("b")
	c := db.NewStringColumn("c")
	d1 := db.NewFloatColumn("d1")
	d2 := db.NewFloatColumn("d2")
	d3 := db.NewFloatColumn("d3")
	x := db.NewFloatColumn("x")
	y := db.NewFloatColumn("y")
	z := db.NewStringColumn("z")
	tc := db.NewFloatColumn("t")
	k := db.NewStringColumn("k")
	avals := []string{"p", "q", "r", "s"}
	bvals := []string{"u", "v", "w"}
	cvals := []string{"c0", "c1", "c2", "c3", "c4", "c5"}
	kvals := []string{"k0", "k1", "k2", "k3", "k4", "k5", "k6", "k7"}
	band := rows / scanBands
	if band == 0 {
		band = 1
	}
	for i := 0; i < rows; i++ {
		if rng.Intn(20) == 0 {
			a.AppendString("")
		} else {
			a.AppendString(avals[rng.Intn(len(avals))])
		}
		b.AppendString(bvals[rng.Intn(len(bvals))])
		c.AppendString(cvals[rng.Intn(len(cvals))])
		d1.AppendFloat(float64(rng.Intn(6)))
		d2.AppendFloat(float64(rng.Intn(4)))
		d3.AppendFloat(float64(rng.Intn(5)))
		if rng.Intn(20) == 0 {
			x.AppendFloat(math.NaN())
		} else {
			x.AppendFloat(float64(rng.Intn(1000)))
		}
		y.AppendFloat(rng.Float64() * 100)
		z.AppendString("z" + strconv.Itoa(i/band))
		tc.AppendFloat(float64(i))
		k.AppendString(kvals[rng.Intn(len(kvals))])
	}
	fact := db.MustNewTable("fact", a, b, c, d1, d2, d3, x, y, z, tc, k)
	d := db.NewDatabase("bench")
	d.MustAddTable(fact)
	dk := db.NewStringColumn("k")
	g := db.NewStringColumn("g")
	for i, kv := range kvals {
		dk.AppendString(kv)
		g.AppendString([]string{"red", "green", "blue", "gold"}[i%4])
	}
	dim := db.MustNewTable("dims", dk, g)
	dim.PrimaryKey = "k"
	d.MustAddTable(dim)
	d.MustAddForeignKey(db.ForeignKey{FromTable: "fact", FromColumn: "k", ToTable: "dims", ToColumn: "k"})
	return d
}

// AppendFactRows stages and commits n rows into the fact table, drawn from
// the same distributions as BuildDB, as one sealed block — the unit of the
// append-heavy incremental-maintenance workload (cmd/benchcube -delta).
func AppendFactRows(d *db.Database, n int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	avals := []string{"p", "q", "r", "s"}
	bvals := []string{"u", "v", "w"}
	cvals := []string{"c0", "c1", "c2", "c3", "c4", "c5"}
	kvals := []string{"k0", "k1", "k2", "k3", "k4", "k5", "k6", "k7"}
	rows := make([][]any, n)
	for i := range rows {
		var a any = avals[rng.Intn(len(avals))]
		if rng.Intn(20) == 0 {
			a = nil
		}
		var x any = float64(rng.Intn(1000))
		if rng.Intn(20) == 0 {
			x = nil
		}
		rows[i] = []any{
			a,
			bvals[rng.Intn(len(bvals))],
			cvals[rng.Intn(len(cvals))],
			float64(rng.Intn(6)),
			float64(rng.Intn(4)),
			float64(rng.Intn(5)),
			x,
			rng.Float64() * 100,
			// Appended rows continue the clustered columns with values the
			// seed rows never carry, so zone maps can prune the sealed
			// prefix for append-band queries (and vice versa).
			"zapp",
			float64(1 << 30),
			kvals[rng.Intn(len(kvals))],
		}
	}
	if err := d.Append("fact", rows...); err != nil {
		return err
	}
	_, err := d.Commit()
	return err
}

// ScanCase is one direct-scan benchmark configuration: a single query
// evaluated with a dedicated scan, the workload of Table 6's naive row and
// the planner's small-group fallback.
type ScanCase struct {
	Name  string
	Query sqlexec.Query
	// Prunable marks cases whose literals cluster in few zones: the
	// zone-mapped pipeline must record pruned blocks on them (benchcube
	// -scan hard-fails otherwise).
	Prunable bool
}

// ScanCases returns the direct-scan matrix: hot predicates zone maps
// cannot prune (isolating the vectorized-selection-vector win over the
// retired closure matchers), clustered string and numeric predicates
// (isolating the zone-pruning win), and a pruned ratio query whose
// denominator still covers every row. Prunable is asserted only at table
// sizes where a clustered literal is guaranteed to miss at least one
// whole zone (bands shorter than a zone can straddle every zone boundary
// of a tiny table, making the cold cases legitimately unprunable).
func ScanCases(rows int) []ScanCase {
	fc := func(c string) sqlexec.ColumnRef { return sqlexec.ColumnRef{Table: "fact", Column: c} }
	band := rows / scanBands
	if band == 0 {
		band = 1
	}
	// A mid-table band touches at most band/ZoneRows+2 zones; some zone is
	// provably band-free once the table holds a few more zones than that.
	bandPrunable := rows/db.ZoneRows > band/db.ZoneRows+2
	// A single point value touches one zone; any second zone can prune.
	pointPrunable := rows > 2*db.ZoneRows
	midT := strconv.Itoa(band*(scanBands/2) + band/2) // one t value, mid-table
	return []ScanCase{
		{
			Name: "count-2pred-hot",
			Query: sqlexec.Query{Agg: sqlexec.Count, Preds: []sqlexec.Predicate{
				{Col: fc("a"), Value: "p"}, {Col: fc("b"), Value: "u"},
			}},
		},
		{
			Name: "sum-1pred-hot",
			Query: sqlexec.Query{Agg: sqlexec.Sum, AggCol: fc("x"), Preds: []sqlexec.Predicate{
				{Col: fc("a"), Value: "p"},
			}},
		},
		{
			Name: "count-band-cold",
			Query: sqlexec.Query{Agg: sqlexec.Count, Preds: []sqlexec.Predicate{
				{Col: fc("z"), Value: "z" + strconv.Itoa(scanBands/2)},
			}},
			Prunable: bandPrunable,
		},
		{
			Name: "sum-band-cold",
			Query: sqlexec.Query{Agg: sqlexec.Sum, AggCol: fc("x"), Preds: []sqlexec.Predicate{
				{Col: fc("z"), Value: "z" + strconv.Itoa(scanBands/2)},
			}},
			Prunable: bandPrunable,
		},
		{
			Name: "count-time-point",
			Query: sqlexec.Query{Agg: sqlexec.Count, Preds: []sqlexec.Predicate{
				{Col: fc("t"), Value: midT},
			}},
			Prunable: pointPrunable,
		},
		{
			Name: "pct-band-cold",
			Query: sqlexec.Query{Agg: sqlexec.Percentage, Preds: []sqlexec.Predicate{
				{Col: fc("z"), Value: "z" + strconv.Itoa(scanBands/2)},
			}},
			Prunable: bandPrunable,
		},
	}
}

// Case is one cube-pass benchmark configuration.
type Case struct {
	Name   string
	Tables []string
	Dims   []sqlexec.DimSpec
	Reqs   []sqlexec.AggRequest
}

// Cases returns the vectorized-vs-scalar comparison matrix: dimension
// count, dimension type, view shape, and distinct counting.
func Cases() []Case {
	fc := func(c string) sqlexec.ColumnRef { return sqlexec.ColumnRef{Table: "fact", Column: c} }
	gc := sqlexec.ColumnRef{Table: "dims", Column: "g"}
	sumX := sqlexec.AggRequest{Fn: sqlexec.Sum, Col: fc("x")}
	avgY := sqlexec.AggRequest{Fn: sqlexec.Avg, Col: fc("y")}
	single := []string{"fact"}
	joined := []string{"fact", "dims"}
	return []Case{
		{
			Name:   "1dim-string-single",
			Tables: single,
			Dims:   []sqlexec.DimSpec{{Col: fc("a"), Literals: []string{"p", "q", "r"}}},
			Reqs:   []sqlexec.AggRequest{sumX},
		},
		{
			Name:   "3dim-string-single",
			Tables: single,
			Dims: []sqlexec.DimSpec{
				{Col: fc("a"), Literals: []string{"p", "q", "r"}},
				{Col: fc("b"), Literals: []string{"u", "v"}},
				{Col: fc("c"), Literals: []string{"c0", "c1", "c2", "c3"}},
			},
			Reqs: []sqlexec.AggRequest{sumX, avgY},
		},
		{
			Name:   "3dim-numeric-single",
			Tables: single,
			Dims: []sqlexec.DimSpec{
				{Col: fc("d1"), Literals: []string{"0", "1", "2"}},
				{Col: fc("d2"), Literals: []string{"0", "1"}},
				{Col: fc("d3"), Literals: []string{"2", "3", "4"}},
			},
			Reqs: []sqlexec.AggRequest{sumX, avgY},
		},
		{
			Name:   "3dim-joined",
			Tables: joined,
			Dims: []sqlexec.DimSpec{
				{Col: fc("a"), Literals: []string{"p", "q", "r"}},
				{Col: fc("b"), Literals: []string{"u", "v"}},
				{Col: gc, Literals: []string{"red", "green", "blue"}},
			},
			Reqs: []sqlexec.AggRequest{sumX, avgY},
		},
		{
			Name:   "3dim-joined-distinct",
			Tables: joined,
			Dims: []sqlexec.DimSpec{
				{Col: fc("a"), Literals: []string{"p", "q", "r"}},
				{Col: fc("b"), Literals: []string{"u", "v"}},
				{Col: gc, Literals: []string{"red", "green", "blue"}},
			},
			Reqs: []sqlexec.AggRequest{
				sumX,
				{Fn: sqlexec.CountDistinct, Col: fc("c")},
				{Fn: sqlexec.CountDistinct, Col: fc("x")},
			},
		},
	}
}
