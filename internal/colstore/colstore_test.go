package colstore_test

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"aggchecker/internal/colstore"
	"aggchecker/internal/db"
)

// buildDB returns a two-table database (fact + dimension, FK-joined) with
// a string column containing NULLs and repeats and an integral float
// column, committed once.
func buildDB(t *testing.T, rows int) *db.Database {
	t.Helper()
	d := db.NewDatabase("store_test")
	dim := db.MustNewTable("dim", db.NewStringColumn("name"))
	dim.PrimaryKey = "name"
	d.MustAddTable(dim)
	d.MustAddTable(db.MustNewTable("fact", db.NewStringColumn("cat"), db.NewFloatColumn("val")))
	d.MustAddForeignKey(db.ForeignKey{FromTable: "fact", FromColumn: "cat", ToTable: "dim", ToColumn: "name"})
	for _, n := range []string{"a", "b", "c", "d"} {
		if err := d.Append("dim", []any{n}); err != nil {
			t.Fatal(err)
		}
	}
	appendFactRows(t, d, 0, rows)
	if _, err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	return d
}

func appendFactRows(t *testing.T, d *db.Database, from, n int) {
	t.Helper()
	cats := []string{"a", "b", "c", "d"}
	for i := from; i < from+n; i++ {
		var row []any
		if i%17 == 0 {
			row = []any{nil, nil}
		} else {
			row = []any{cats[i%len(cats)], float64(i % 250)}
		}
		if err := d.Append("fact", row); err != nil {
			t.Fatal(err)
		}
	}
}

// openRestore reopens the store at dir and rebuilds a live database from
// it, reattaching the store as its persister.
func openRestore(t *testing.T, dir string) (*db.Database, *colstore.Store) {
	t.Helper()
	st, pdb, err := colstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if pdb == nil {
		st.Close()
		t.Fatal("reopened store is empty")
	}
	rd, err := db.RestoreDatabase(pdb)
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	if err := rd.SetPersister(st); err != nil {
		st.Close()
		t.Fatal(err)
	}
	return rd, st
}

// assertSameSnapshot compares two snapshots bit-for-bit: versions, block
// layout, zone maps, dictionaries, and raw column data.
func assertSameSnapshot(t *testing.T, want, got *db.Snapshot) {
	t.Helper()
	if want.Version() != got.Version() || want.Epoch() != got.Epoch() {
		t.Fatalf("version/epoch = %d/%d, want %d/%d", got.Version(), got.Epoch(), want.Version(), want.Epoch())
	}
	if want.DatabaseName() != got.DatabaseName() {
		t.Fatalf("name = %q, want %q", got.DatabaseName(), want.DatabaseName())
	}
	wfks, gfks := want.ForeignKeys(), got.ForeignKeys()
	if len(wfks) != len(gfks) {
		t.Fatalf("fks = %d, want %d", len(gfks), len(wfks))
	}
	for i := range wfks {
		if wfks[i] != gfks[i] {
			t.Fatalf("fk %d = %+v, want %+v", i, gfks[i], wfks[i])
		}
	}
	wts, gts := want.Tables(), got.Tables()
	if len(wts) != len(gts) {
		t.Fatalf("tables = %d, want %d", len(gts), len(wts))
	}
	for ti, wt := range wts {
		gt := gts[ti]
		if wt.Name != gt.Name || wt.PrimaryKey != gt.PrimaryKey {
			t.Fatalf("table %d = %s/%s, want %s/%s", ti, gt.Name, gt.PrimaryKey, wt.Name, wt.PrimaryKey)
		}
		if wt.NumRows() != gt.NumRows() {
			t.Fatalf("table %s rows = %d, want %d", wt.Name, gt.NumRows(), wt.NumRows())
		}
		if wt.ZoneGranularity() != gt.ZoneGranularity() {
			t.Fatalf("table %s zone granularity = %d, want %d", wt.Name, gt.ZoneGranularity(), wt.ZoneGranularity())
		}
		wbs, gbs := wt.Blocks(), gt.Blocks()
		if len(wbs) != len(gbs) {
			t.Fatalf("table %s blocks = %d, want %d", wt.Name, len(gbs), len(wbs))
		}
		for i := range wbs {
			if wbs[i] != gbs[i] {
				t.Fatalf("table %s block %d = %+v, want %+v", wt.Name, i, gbs[i], wbs[i])
			}
		}
		wcs, gcs := wt.Columns(), gt.Columns()
		if len(wcs) != len(gcs) {
			t.Fatalf("table %s cols = %d, want %d", wt.Name, len(gcs), len(wcs))
		}
		for ci, wc := range wcs {
			gc := gcs[ci]
			if wc.Name != gc.Name || wc.Kind != gc.Kind || wc.Integral != gc.Integral {
				t.Fatalf("table %s col %d mismatch: %s/%v vs %s/%v", wt.Name, ci, gc.Name, gc.Kind, wc.Name, wc.Kind)
			}
			if wc.NullCount() != gc.NullCount() {
				t.Fatalf("col %s.%s nulls = %d, want %d", wt.Name, wc.Name, gc.NullCount(), wc.NullCount())
			}
			if wc.Kind == db.KindString {
				wd, gd := wc.Dictionary(), gc.Dictionary()
				if len(wd) != len(gd) {
					t.Fatalf("col %s.%s dict = %d, want %d", wt.Name, wc.Name, len(gd), len(wd))
				}
				for i := range wd {
					if wd[i] != gd[i] {
						t.Fatalf("col %s.%s dict[%d] = %q, want %q", wt.Name, wc.Name, i, gd[i], wd[i])
					}
				}
				wcodes, gcodes := wc.Codes(), gc.Codes()
				for i := range wcodes {
					if wcodes[i] != gcodes[i] {
						t.Fatalf("col %s.%s code[%d] = %d, want %d", wt.Name, wc.Name, i, gcodes[i], wcodes[i])
					}
				}
			} else {
				wf, gf := wc.Floats(), gc.Floats()
				for i := range wf {
					if math.Float64bits(wf[i]) != math.Float64bits(gf[i]) {
						t.Fatalf("col %s.%s float[%d] = %v, want %v", wt.Name, wc.Name, i, gf[i], wf[i])
					}
				}
			}
			wzs, gzs := wc.Zones(), gc.Zones()
			if len(wzs) != len(gzs) {
				t.Fatalf("col %s.%s zones = %d, want %d", wt.Name, wc.Name, len(gzs), len(wzs))
			}
			for i := range wzs {
				wz, gz := &wzs[i], &gzs[i]
				if wz.Start != gz.Start || wz.End != gz.End || wz.NullCount != gz.NullCount {
					t.Fatalf("col %s.%s zone %d layout mismatch", wt.Name, wc.Name, i)
				}
				if math.Float64bits(wz.Min) != math.Float64bits(gz.Min) || math.Float64bits(wz.Max) != math.Float64bits(gz.Max) {
					t.Fatalf("col %s.%s zone %d bounds = [%v,%v], want [%v,%v]", wt.Name, wc.Name, i, gz.Min, gz.Max, wz.Min, wz.Max)
				}
				wdom, whas := wz.Domain()
				gdom, ghas := gz.Domain()
				if whas != ghas || len(wdom) != len(gdom) {
					t.Fatalf("col %s.%s zone %d domain shape mismatch", wt.Name, wc.Name, i)
				}
				for j := range wdom {
					if wdom[j] != gdom[j] {
						t.Fatalf("col %s.%s zone %d domain word %d mismatch", wt.Name, wc.Name, i, j)
					}
				}
			}
		}
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := buildDB(t, 10000)
	st, pdb, err := colstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if pdb != nil {
		t.Fatal("fresh store must reopen empty")
	}
	if err := d.SetPersister(st); err != nil {
		t.Fatal(err)
	}
	// Two more commits extend the store incrementally.
	appendFactRows(t, d, 10000, 5000)
	if _, err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	appendFactRows(t, d, 15000, 2500)
	if _, err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	want := d.Snapshot()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	rd, st2 := openRestore(t, dir)
	defer st2.Close()
	assertSameSnapshot(t, want, rd.Snapshot())

	// The restored database keeps persisting: append, commit, reopen again.
	appendFactRows(t, rd, 17500, 1000)
	if _, err := rd.Commit(); err != nil {
		t.Fatal(err)
	}
	want2 := rd.Snapshot()
	st2.Close()

	rd2, st3 := openRestore(t, dir)
	defer st3.Close()
	assertSameSnapshot(t, want2, rd2.Snapshot())
}

func TestCompactionPersistsReseal(t *testing.T) {
	dir := t.TempDir()
	d := buildDB(t, 6000)
	st, _, err := colstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SetPersister(st); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		appendFactRows(t, d, 6000+i*3000, 3000)
		if _, err := d.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if d.MaxBlocks() < 5 {
		t.Fatalf("expected >= 5 sealed blocks, got %d", d.MaxBlocks())
	}
	if _, err := d.Compact(); err != nil {
		t.Fatal(err)
	}
	want := d.Snapshot()
	if got := len(want.Table("fact").Blocks()); got != 1 {
		t.Fatalf("blocks after compact = %d, want 1", got)
	}
	stats := st.Stats()
	if stats.Resets < 2 { // initial bootstrap + compaction reseal
		t.Fatalf("resets = %d, want >= 2", stats.Resets)
	}
	st.Close()

	rd, st2 := openRestore(t, dir)
	defer st2.Close()
	assertSameSnapshot(t, want, rd.Snapshot())
}

func TestPublishIdempotent(t *testing.T) {
	dir := t.TempDir()
	d := buildDB(t, 1000)
	st, _, err := colstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := d.SetPersister(st); err != nil {
		t.Fatal(err)
	}
	before := st.Stats().ManifestBytes
	// Re-offering the already-persisted snapshot must not grow the store.
	if err := st.Publish(d.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if after := st.Stats().ManifestBytes; after != before {
		t.Fatalf("idempotent publish grew manifest from %d to %d bytes", before, after)
	}
}

func TestDetachKeepsMappings(t *testing.T) {
	dir := t.TempDir()
	d := buildDB(t, 5000)
	st, _, err := colstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SetPersister(st); err != nil {
		t.Fatal(err)
	}
	st.Close()

	rd, st2 := openRestore(t, dir)
	snap := rd.Snapshot()
	if err := st2.Detach(); err != nil {
		t.Fatal(err)
	}
	// Snapshot readers still alias the mappings after Detach.
	sum := 0.0
	for _, v := range snap.Table("fact").Column("val").Floats() {
		if v == v {
			sum += v
		}
	}
	if sum <= 0 {
		t.Fatalf("sum over detached mapping = %v, want > 0", sum)
	}
	// But the store takes no further publications.
	appendFactRows(t, rd, 5000, 10)
	if _, err := rd.Commit(); err == nil {
		t.Fatal("commit after Detach must surface the persist error")
	}
	st2.Close()
}

func TestStoreStats(t *testing.T) {
	dir := t.TempDir()
	d := buildDB(t, 3000)
	st, _, err := colstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := d.SetPersister(st); err != nil {
		t.Fatal(err)
	}
	s := st.Stats()
	if s.Tables != 2 || s.DataBytes <= 0 || s.ManifestBytes <= 0 {
		t.Fatalf("implausible stats: %+v", s)
	}
	if s.Version != d.Version() {
		t.Fatalf("stats version = %d, want %d", s.Version, d.Version())
	}
	// fact: 3000 rows * (4 code bytes + 8 float bytes) plus dim and dicts.
	if s.DataBytes < 3000*12 {
		t.Fatalf("data bytes = %d, want >= %d", s.DataBytes, 3000*12)
	}
}

func TestOpenRejectsUnknownDir(t *testing.T) {
	// Opening a path whose parent is a file must fail, not panic.
	dir := t.TempDir()
	file := filepath.Join(dir, "plain")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := colstore.Open(filepath.Join(file, "sub")); err == nil {
		t.Fatal("expected error opening store under a regular file")
	}
}

func TestManifestGrowsPerCommit(t *testing.T) {
	dir := t.TempDir()
	d := buildDB(t, 100)
	st, _, err := colstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := d.SetPersister(st); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		before := st.Stats()
		appendFactRows(t, d, 100+i*10, 10)
		if _, err := d.Commit(); err != nil {
			t.Fatal(err)
		}
		after := st.Stats()
		if after.Publishes != before.Publishes+1 {
			t.Fatalf("publishes = %d, want %d", after.Publishes, before.Publishes+1)
		}
		if after.ManifestBytes <= before.ManifestBytes {
			t.Fatal("commit did not append a manifest record")
		}
	}
	raw, err := os.ReadFile(filepath.Join(dir, "MANIFEST"))
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) == 0 || raw[len(raw)-1] != '\n' {
		t.Fatal("manifest must end with a complete record line")
	}
}
