package colstore

import (
	"bytes"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"aggchecker/internal/db"
)

// The manifest is a JSONL stream of publication records, appended and
// fsynced after the column bytes each record references are durable. Two
// kinds: a reset re-states the whole store (schema, block layout, zone
// maps, foreign keys) and starts a structural epoch; a publish is an
// append-only delta within the current epoch. Recovery folds the stream
// front to back and stops at the first record that is torn, malformed, or
// not covered by the column files on disk — everything before it is the
// reopened state, everything after it is truncated away.

const (
	recReset   = "reset"
	recPublish = "publish"
)

type manifestRecord struct {
	Kind    string        `json:"kind"`
	Name    string        `json:"name,omitempty"` // database name (reset only)
	Version uint64        `json:"version"`
	Epoch   uint64        `json:"epoch"`
	Tables  []tableRecord `json:"tables,omitempty"`
	FKs     []fkRecord    `json:"fks,omitempty"` // reset only
}

type fkRecord struct {
	FromTable  string `json:"ft"`
	FromColumn string `json:"fc"`
	ToTable    string `json:"tt"`
	ToColumn   string `json:"tc"`
}

type tableRecord struct {
	Name     string        `json:"name"`
	PK       string        `json:"pk,omitempty"`     // reset only
	ZoneRows int           `json:"zr,omitempty"`     // zone granularity (reset only)
	Rows     int           `json:"rows"`             // total rows after this record
	Blocks   []blockRecord `json:"blocks,omitempty"` // reset: all; publish: appended
	Cols     []colRecord   `json:"cols"`
}

type blockRecord struct {
	Seq   int `json:"q"`
	Start int `json:"s"`
	End   int `json:"e"`
}

type colRecord struct {
	ColName  string `json:"name,omitempty"` // reset only
	Desc     string `json:"desc,omitempty"` // reset only
	Kind     int    `json:"kind,omitempty"` // reset only (db.Kind; zero = string)
	Integral bool   `json:"int,omitempty"`  // reset only

	Dict      int          `json:"dict,omitempty"`  // total dictionary entries
	DictBytes int64        `json:"dictb,omitempty"` // total dictionary bytes
	Nulls     int          `json:"nulls,omitempty"` // total NULL rows
	Zones     []zoneRecord `json:"zones,omitempty"` // reset: all; publish: appended
}

// zoneRecord carries one db.ZoneEntry. Min/Max travel as float64 bit
// patterns: JSON has no NaN or ±Inf (the all-NULL zone's bounds), and Go's
// encoder round-trips uint64 exactly. The domain bitset travels as base64
// little-endian words; HasD distinguishes an empty-but-built bitset (all
// rows NULL — refutes every code) from an absent one (claims nothing).
type zoneRecord struct {
	S    int    `json:"s"`
	E    int    `json:"e"`
	N    int    `json:"n,omitempty"`
	MinB uint64 `json:"minb,omitempty"`
	MaxB uint64 `json:"maxb,omitempty"`
	Dom  string `json:"d,omitempty"`
	HasD bool   `json:"hd,omitempty"`
}

func encodeRecord(rec *manifestRecord) ([]byte, error) {
	b, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("colstore: encode manifest record: %w", err)
	}
	return append(b, '\n'), nil
}

func encodeZones(zs []db.ZoneEntry) []zoneRecord {
	out := make([]zoneRecord, len(zs))
	for i := range zs {
		z := &zs[i]
		zr := zoneRecord{
			S:    z.Start,
			E:    z.End,
			N:    z.NullCount,
			MinB: math.Float64bits(z.Min),
			MaxB: math.Float64bits(z.Max),
		}
		if dom, has := z.Domain(); has {
			zr.HasD = true
			if len(dom) > 0 {
				raw := make([]byte, len(dom)*8)
				for j, w := range dom {
					binary.LittleEndian.PutUint64(raw[j*8:], w)
				}
				zr.Dom = base64.StdEncoding.EncodeToString(raw)
			}
		}
		out[i] = zr
	}
	return out
}

func decodeZones(zrs []zoneRecord) ([]db.ZoneEntry, error) {
	out := make([]db.ZoneEntry, len(zrs))
	for i := range zrs {
		zr := &zrs[i]
		var dom []uint64
		if zr.Dom != "" {
			raw, err := base64.StdEncoding.DecodeString(zr.Dom)
			if err != nil || len(raw)%8 != 0 {
				return nil, fmt.Errorf("corrupt zone domain at entry %d", i)
			}
			dom = make([]uint64, len(raw)/8)
			for j := range dom {
				dom[j] = binary.LittleEndian.Uint64(raw[j*8:])
			}
		}
		out[i] = db.MakeZoneEntry(zr.S, zr.E, zr.N,
			math.Float64frombits(zr.MinB), math.Float64frombits(zr.MaxB),
			dom, zr.HasD)
	}
	return out, nil
}

// Fold state: the store as described by the manifest prefix applied so
// far.
type foldDB struct {
	name           string
	version, epoch uint64
	tables         []*foldTable
	byName         map[string]*foldTable
	fks            []fkRecord
}

type foldTable struct {
	name, pk string
	zoneRows int
	rows     int
	blocks   []blockRecord
	cols     []foldCol
}

type foldCol struct {
	name, desc string
	kind       db.Kind
	integral   bool
	dictN      int
	dictBytes  int64
	nulls      int
	zones      []zoneRecord
}

// foldManifest folds the raw manifest bytes and returns the reopened state
// (nil when no valid record exists) plus the byte offset of the end of the
// last accepted record. A record is accepted only if it parses, is
// consistent with the state so far, and every column length it claims fits
// the column files on disk — the fsync ordering guarantees that for
// records that were durably appended, so a failure here means the record
// (or the data flush it describes) was torn by a crash.
func foldManifest(dir string, raw []byte) (*foldDB, int64, error) {
	var f *foldDB
	sizes := make(map[string]int64) // stat cache, path -> size
	var goodOff int64
	rest := raw
	for len(rest) > 0 {
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			break // torn final line: no trailing newline
		}
		line := rest[:nl]
		var rec manifestRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			break
		}
		nf, ok := applyRecord(dir, f, &rec, sizes)
		if !ok {
			break
		}
		f = nf
		goodOff += int64(nl + 1)
		rest = rest[nl+1:]
	}
	return f, goodOff, nil
}

// applyRecord validates rec against the folded state and the on-disk file
// sizes, then applies it. Returns ok=false to stop folding.
func applyRecord(dir string, f *foldDB, rec *manifestRecord, sizes map[string]int64) (*foldDB, bool) {
	switch rec.Kind {
	case recReset:
		nf := &foldDB{
			name:    rec.Name,
			version: rec.Version,
			epoch:   rec.Epoch,
			byName:  make(map[string]*foldTable, len(rec.Tables)),
			fks:     rec.FKs,
		}
		for ti := range rec.Tables {
			tr := &rec.Tables[ti]
			if tr.Rows < 0 || nf.byName[tr.Name] != nil {
				return f, false
			}
			ft := &foldTable{name: tr.Name, pk: tr.PK, zoneRows: tr.ZoneRows, rows: tr.Rows, blocks: tr.Blocks}
			for ci := range tr.Cols {
				cr := &tr.Cols[ci]
				fc := foldCol{
					name:      cr.ColName,
					desc:      cr.Desc,
					kind:      db.Kind(cr.Kind),
					integral:  cr.Integral,
					dictN:     cr.Dict,
					dictBytes: cr.DictBytes,
					nulls:     cr.Nulls,
					zones:     cr.Zones,
				}
				if !columnCovered(dir, sizes, ti, ci, fc.kind, tr.Rows, fc.dictBytes) {
					return f, false
				}
				ft.cols = append(ft.cols, fc)
			}
			nf.tables = append(nf.tables, ft)
			nf.byName[ft.name] = ft
		}
		// Table slots are append-only: a reset may add tables at the end
		// but never reorder existing ones (slot index = file name).
		if f != nil {
			if len(nf.tables) < len(f.tables) {
				return f, false
			}
			for ti := range f.tables {
				if nf.tables[ti].name != f.tables[ti].name {
					return f, false
				}
			}
		}
		return nf, true

	case recPublish:
		if f == nil || rec.Epoch != f.epoch || rec.Version <= f.version {
			return f, false
		}
		// Validate everything before mutating, so a rejected record leaves
		// the previous state intact.
		type patch struct {
			ft *foldTable
			ti int
			tr *tableRecord
		}
		var patches []patch
		for ti := range rec.Tables {
			tr := &rec.Tables[ti]
			ft := f.byName[tr.Name]
			if ft == nil || tr.Rows < ft.rows || len(tr.Cols) != len(ft.cols) {
				return f, false
			}
			slot := -1
			for i, t := range f.tables {
				if t == ft {
					slot = i
					break
				}
			}
			for ci := range tr.Cols {
				cr := &tr.Cols[ci]
				fc := &ft.cols[ci]
				dictN, dictBytes := fc.dictN, fc.dictBytes
				if fc.kind == db.KindString {
					if cr.Dict < dictN || cr.DictBytes < dictBytes {
						return f, false
					}
					dictBytes = cr.DictBytes
				}
				if !columnCovered(dir, sizes, slot, ci, fc.kind, tr.Rows, dictBytes) {
					return f, false
				}
			}
			patches = append(patches, patch{ft: ft, ti: slot, tr: tr})
		}
		for _, p := range patches {
			p.ft.rows = p.tr.Rows
			p.ft.blocks = append(p.ft.blocks, p.tr.Blocks...)
			for ci := range p.tr.Cols {
				cr := &p.tr.Cols[ci]
				fc := &p.ft.cols[ci]
				if fc.kind == db.KindString {
					fc.dictN = cr.Dict
					fc.dictBytes = cr.DictBytes
				}
				fc.nulls = cr.Nulls
				fc.zones = append(fc.zones, cr.Zones...)
			}
		}
		f.version = rec.Version
		return f, true
	}
	return f, false
}

// columnCovered reports whether the column files on disk hold at least the
// bytes a record claims for one column.
func columnCovered(dir string, sizes map[string]int64, ti, ci int, kind db.Kind, rows int, dictBytes int64) bool {
	width := int64(8)
	ext := "f64"
	if kind == db.KindString {
		width, ext = 4, "i32"
	}
	need := int64(rows) * width
	if fileSize(sizes, filepath.Join(dir, fmt.Sprintf("t%d_c%d.%s", ti, ci, ext))) < need {
		return false
	}
	if kind == db.KindString && fileSize(sizes, filepath.Join(dir, fmt.Sprintf("t%d_c%d.dict", ti, ci))) < dictBytes {
		return false
	}
	return true
}

func fileSize(sizes map[string]int64, path string) int64 {
	if n, ok := sizes[path]; ok {
		return n
	}
	var n int64
	if fi, err := os.Stat(path); err == nil {
		n = fi.Size()
	}
	sizes[path] = n
	return n
}
