//go:build linux

package colstore

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"
	"unsafe"
)

// residentBytes sums the Rss of the store's column-page mappings from
// /proc/self/smaps. Rss counts only pages this process has actually
// faulted into its page tables — unlike mincore, which reports page-cache
// residency and would claim everything "read" right after the store wrote
// it. This is what makes "zone-pruned blocks are never paged in"
// measurable in-process.
func residentBytes(maps []mappedBytes) int64 {
	if len(maps) == 0 {
		return 0
	}
	want := make(map[string]bool, len(maps))
	for _, m := range maps {
		if len(m) > 0 {
			want[fmt.Sprintf("%x", uintptr(unsafe.Pointer(&m[0])))] = true
		}
	}
	f, err := os.Open("/proc/self/smaps")
	if err != nil {
		return -1
	}
	defer f.Close()
	var total int64
	inWanted := false
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if dash := strings.IndexByte(line, '-'); dash > 0 && !strings.Contains(line[:dash], ":") {
			// VMA header line: "start-end perms offset dev inode path".
			inWanted = want[line[:dash]]
			continue
		}
		if inWanted && strings.HasPrefix(line, "Rss:") {
			fields := strings.Fields(line)
			if len(fields) >= 2 {
				if kb, err := strconv.ParseInt(fields[1], 10, 64); err == nil {
					total += kb * 1024
				}
			}
			inWanted = false
		}
	}
	if sc.Err() != nil {
		return -1
	}
	return total
}
