package colstore_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"aggchecker/internal/colstore"
)

// commitVersions builds a store with three published versions and returns
// them oldest-first along with the store dir.
func commitVersions(t *testing.T) (string, []uint64) {
	t.Helper()
	dir := t.TempDir()
	d := buildDB(t, 5000)
	st, _, err := colstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SetPersister(st); err != nil {
		t.Fatal(err)
	}
	versions := []uint64{d.Version()}
	for i := 0; i < 2; i++ {
		appendFactRows(t, d, 5000+i*1000, 1000)
		if _, err := d.Commit(); err != nil {
			t.Fatal(err)
		}
		versions = append(versions, d.Version())
	}
	st.Close()
	return dir, versions
}

func reopenedVersion(t *testing.T, dir string) uint64 {
	t.Helper()
	st, pdb, err := colstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if pdb == nil {
		return 0
	}
	return pdb.Version
}

func TestRecoveryTornManifestTail(t *testing.T) {
	dir, versions := commitVersions(t)
	mpath := filepath.Join(dir, "MANIFEST")
	raw, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the final record: drop its trailing newline and a few bytes, as
	// a crash mid-append would.
	cut := bytes.LastIndexByte(raw[:len(raw)-1], '\n') + 1
	torn := raw[:cut+(len(raw)-cut)/2]
	if err := os.WriteFile(mpath, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	if got := reopenedVersion(t, dir); got != versions[len(versions)-2] {
		t.Fatalf("reopened version = %d, want %d (previous durable)", got, versions[len(versions)-2])
	}
	// Recovery truncated the torn tail: the next open sees a clean stream
	// and lands on the same version.
	if got := reopenedVersion(t, dir); got != versions[len(versions)-2] {
		t.Fatalf("second reopen version = %d, want %d", got, versions[len(versions)-2])
	}
}

func TestRecoveryGarbageManifestTail(t *testing.T) {
	dir, versions := commitVersions(t)
	mpath := filepath.Join(dir, "MANIFEST")
	f, err := os.OpenFile(mpath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("{not json\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if got := reopenedVersion(t, dir); got != versions[len(versions)-1] {
		t.Fatalf("reopened version = %d, want %d", got, versions[len(versions)-1])
	}
}

func TestRecoveryTornDataFile(t *testing.T) {
	dir, versions := commitVersions(t)
	// Clip the fact table's float column (t1_c1.f64) below what the final
	// record requires: the fold must stop at the last record the file still
	// covers. (Normally impossible — data is fsynced before the manifest —
	// but recovery must still degrade safely, not serve garbage.)
	fpath := filepath.Join(dir, "t1_c1.f64")
	fi, err := os.Stat(fpath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(fpath, fi.Size()-512*8); err != nil {
		t.Fatal(err)
	}
	got := reopenedVersion(t, dir)
	if got >= versions[len(versions)-1] {
		t.Fatalf("reopened version = %d, want < %d", got, versions[len(versions)-1])
	}
	if got != versions[len(versions)-2] {
		t.Fatalf("reopened version = %d, want %d", got, versions[len(versions)-2])
	}
}

func TestRecoveryEmptyManifest(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	st, pdb, err := colstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if pdb != nil {
		t.Fatal("empty manifest must reopen as an empty store")
	}
}

func TestRecoveryFirstRecordTorn(t *testing.T) {
	dir, _ := commitVersions(t)
	mpath := filepath.Join(dir, "MANIFEST")
	raw, err := os.ReadFile(mpath)
	if err != nil {
		t.Fatal(err)
	}
	// Tear inside the very first record: nothing durable survives, so the
	// store reopens empty and a fresh bootstrap overwrites it.
	if err := os.WriteFile(mpath, raw[:10], 0o644); err != nil {
		t.Fatal(err)
	}
	st, pdb, err := colstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if pdb != nil {
		t.Fatal("store with no complete record must reopen empty")
	}
}
