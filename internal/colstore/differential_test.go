package colstore_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"aggchecker/internal/colstore"
	"aggchecker/internal/sqlexec"
)

// TestDifferentialDiskVsMemory drives a disk-backed database and an
// identical memory-only mirror through randomized schedules of appends,
// commits, compactions, and full store reopens, asserting after every
// publication that engine results over the disk-backed snapshot are
// bit-for-bit identical to the memory mirror, and that the snapshots
// themselves match field for field.
func TestDifferentialDiskVsMemory(t *testing.T) {
	queries := []sqlexec.Query{
		{Agg: sqlexec.Count, AggCol: sqlexec.ColumnRef{Table: "fact"}},
		{Agg: sqlexec.Sum, AggCol: sqlexec.ColumnRef{Table: "fact", Column: "val"}},
		{Agg: sqlexec.Avg, AggCol: sqlexec.ColumnRef{Table: "fact", Column: "val"},
			Preds: []sqlexec.Predicate{{Col: sqlexec.ColumnRef{Table: "fact", Column: "cat"}, Value: "b"}}},
		{Agg: sqlexec.Percentage, AggCol: sqlexec.ColumnRef{Table: "fact"},
			Preds: []sqlexec.Predicate{{Col: sqlexec.ColumnRef{Table: "fact", Column: "cat"}, Value: "c"}}},
		{Agg: sqlexec.Max, AggCol: sqlexec.ColumnRef{Table: "fact", Column: "val"},
			Preds: []sqlexec.Predicate{{Col: sqlexec.ColumnRef{Table: "fact", Column: "cat"}, Value: "a"}}},
	}
	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			dir := t.TempDir()

			disk := buildDB(t, 4000)
			mem := buildDB(t, 4000)
			st, _, err := colstore.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if err := disk.SetPersister(st); err != nil {
				t.Fatal(err)
			}
			rows := 4000

			check := func(step string) {
				t.Helper()
				assertSameSnapshot(t, mem.Snapshot(), disk.Snapshot())
				de := sqlexec.NewEngine(disk)
				me := sqlexec.NewEngine(mem)
				for qi, q := range queries {
					dv, derr := de.Evaluate(q)
					mv, merr := me.Evaluate(q)
					if (derr == nil) != (merr == nil) {
						t.Fatalf("%s query %d: disk err %v, mem err %v", step, qi, derr, merr)
					}
					if derr == nil && math.Float64bits(dv) != math.Float64bits(mv) {
						t.Fatalf("%s query %d: disk %v != mem %v", step, qi, dv, mv)
					}
				}
			}

			check("initial")
			for step := 0; step < 12; step++ {
				switch op := rng.Intn(10); {
				case op < 5: // append + commit
					n := 500 + rng.Intn(2000)
					appendFactRows(t, disk, rows, n)
					appendFactRows(t, mem, rows, n)
					rows += n
					if _, err := disk.Commit(); err != nil {
						t.Fatal(err)
					}
					if _, err := mem.Commit(); err != nil {
						t.Fatal(err)
					}
					check(fmt.Sprintf("step %d commit", step))
				case op < 7: // compact both (adaptive granularity is deterministic)
					if _, err := disk.Compact(); err != nil {
						t.Fatal(err)
					}
					if _, err := mem.Compact(); err != nil {
						t.Fatal(err)
					}
					check(fmt.Sprintf("step %d compact", step))
				default: // close the store and reopen the disk database from it
					want := disk.Snapshot()
					st.Close()
					disk, st = openRestore(t, dir)
					assertSameSnapshot(t, want, disk.Snapshot())
					check(fmt.Sprintf("step %d reopen", step))
				}
			}
			st.Close()
		})
	}
}
