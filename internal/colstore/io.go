package colstore

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"unsafe"
)

// mappedBytes is one live column-page mapping (or heap buffer on platforms
// without mmap; those are never unmapped).
type mappedBytes = []byte

// hostLittleEndian gates the zero-copy typed views: the on-disk format is
// little-endian, so only a little-endian host may alias file pages
// directly. Big-endian hosts decode into heap slices instead.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// writeFloatRows writes rows [from, len(vals)) at their fixed offsets
// (8 bytes per row, little-endian float64 bit patterns).
func writeFloatRows(f *os.File, vals []float64, from int) error {
	n := len(vals) - from
	if n <= 0 {
		return nil
	}
	buf := make([]byte, n*8)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(vals[from+i]))
	}
	_, err := f.WriteAt(buf, int64(from)*8)
	return err
}

// writeCodeRows writes rows [from, len(codes)) at their fixed offsets
// (4 bytes per row, little-endian int32 dictionary codes; -1 = NULL).
func writeCodeRows(f *os.File, codes []int32, from int) error {
	n := len(codes) - from
	if n <= 0 {
		return nil
	}
	buf := make([]byte, n*4)
	for i := 0; i < n; i++ {
		binary.LittleEndian.PutUint32(buf[i*4:], uint32(codes[from+i]))
	}
	_, err := f.WriteAt(buf, int64(from)*4)
	return err
}

// appendDictEntries appends dictionary entries at off — each uvarint
// length-prefixed, in code order — and returns the new end offset.
func appendDictEntries(f *os.File, off int64, entries []string) (int64, error) {
	if len(entries) == 0 {
		return off, nil
	}
	var buf []byte
	var tmp [binary.MaxVarintLen64]byte
	for _, s := range entries {
		n := binary.PutUvarint(tmp[:], uint64(len(s)))
		buf = append(buf, tmp[:n]...)
		buf = append(buf, s...)
	}
	if _, err := f.WriteAt(buf, off); err != nil {
		return off, err
	}
	return off + int64(len(buf)), nil
}

// readDictEntries decodes exactly n entries from the first size bytes of
// the dictionary page file.
func readDictEntries(f *os.File, size int64, n int) ([]string, error) {
	if n == 0 {
		return nil, nil
	}
	raw := make([]byte, size)
	if _, err := f.ReadAt(raw, 0); err != nil {
		return nil, fmt.Errorf("dictionary read: %w", err)
	}
	out := make([]string, 0, n)
	off := 0
	for i := 0; i < n; i++ {
		l, w := binary.Uvarint(raw[off:])
		if w <= 0 || off+w+int(l) > len(raw) {
			return nil, fmt.Errorf("corrupt dictionary entry %d", i)
		}
		out = append(out, string(raw[off+w:off+w+int(l)]))
		off += w + int(l)
	}
	if off != len(raw) {
		return nil, fmt.Errorf("dictionary has %d trailing bytes", len(raw)-off)
	}
	return out, nil
}

// viewFloats interprets a column page as float64 rows: a zero-copy alias
// on little-endian hosts (mmap'd pages are paged in only when touched), a
// decoded heap copy otherwise.
func viewFloats(b []byte, rows int) []float64 {
	if rows == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), rows)
	}
	out := make([]float64, rows)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

// viewCodes interprets a column page as int32 dictionary codes; same
// aliasing rules as viewFloats.
func viewCodes(b []byte, rows int) []int32 {
	if rows == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), rows)
	}
	out := make([]int32, rows)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}
