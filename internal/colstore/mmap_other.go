//go:build !unix

package colstore

import "os"

// openColumnBytes on platforms without mmap reads the column into the
// heap: correct but eager — every page costs memory at open. Reported
// false as mapped so Close skips munmap and residency reports unknown.
func openColumnBytes(f *os.File, size int64) ([]byte, bool, error) {
	b := make([]byte, size)
	if _, err := f.ReadAt(b, 0); err != nil {
		return nil, false, err
	}
	return b, false, nil
}

func unmapBytes(b []byte) {}
