// Package colstore is the durable half of the snapshot-versioned column
// store: a compact on-disk block format (raw little-endian column pages,
// uvarint-framed dictionary pages, and a JSONL manifest carrying null
// counts, zone maps, sealed-block layout, and the published version
// lineage) written incrementally at every Commit and read back on restart
// without re-deriving anything from source files.
//
// A Store implements db.Persister: same-epoch publications append only the
// rows, dictionary entries, and zone entries sealed since the previous
// one; an epoch change (AddTable, AddForeignKey, Compact) re-records the
// schema, block layout, and zone maps wholesale in a reset record while
// leaving the column pages in place — compaction is metadata-only, because
// column storage is contiguous and data never moves.
//
// On reopen the manifest is folded record by record (a torn trailing line
// — the crash case — is discarded, and the manifest truncated back to the
// last durable record), column files are clipped to the recorded lengths,
// and the column pages are memory-mapped read-only. The resulting
// db.PersistedDB feeds db.RestoreDatabase, which pre-publishes a snapshot
// from the manifest metadata alone: zone-refuted blocks are never paged
// in, even across a restart. See FORMAT.md for the byte-level spec.
package colstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"aggchecker/internal/db"
)

const manifestName = "MANIFEST"

// Store is a durable columnar store rooted at one directory. It is safe
// for concurrent use; Publish is additionally serialized by the owning
// database's mutation lock.
type Store struct {
	dir string

	mu           sync.Mutex
	manifest     *os.File
	manifestSize int64
	closed       bool
	detached     bool

	haveSchema bool
	name       string
	version    uint64
	epoch      uint64
	tables     []*storeTable
	byName     map[string]*storeTable

	// maps holds every live memory mapping (column pages handed to the
	// restored database). Unmapped only by Close; Detach leaves them valid
	// for snapshot readers that still alias them.
	maps []mappedBytes

	publishes atomic.Int64
	resets    atomic.Int64
}

// storeTable tracks the durable watermarks of one table: rows and zone
// entries already recorded, in schema order (table index = file name).
type storeTable struct {
	name  string
	rows  int
	zones int // zone entries recorded per column
	cols  []*storeCol
}

type storeCol struct {
	kind    db.Kind
	data    *os.File // .f64 (floats) or .i32 (dictionary codes)
	dict    *os.File // .dict, strings only
	dictN   int
	dictOff int64
}

func (sc *storeCol) rowWidth() int64 {
	if sc.kind == db.KindString {
		return 4
	}
	return 8
}

// Open opens (or creates) the store rooted at dir and returns the reopened
// state, nil when the store is empty. Recovery is part of opening: the
// manifest is folded up to the last record that is both well-formed and
// covered by the column files on disk, everything after it is truncated
// away, and column files are clipped to the recorded lengths so a torn
// final flush can never leak into a reopened snapshot.
func Open(dir string) (*Store, *db.PersistedDB, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("colstore: %w", err)
	}
	st := &Store{dir: dir, byName: make(map[string]*storeTable)}
	mpath := filepath.Join(dir, manifestName)
	raw, err := os.ReadFile(mpath)
	if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("colstore: %w", err)
	}
	fold, goodOff, err := foldManifest(dir, raw)
	if err != nil {
		return nil, nil, err
	}
	if int64(len(raw)) > goodOff {
		// Torn or invalid tail: drop it so future appends extend a clean
		// record stream.
		if err := os.Truncate(mpath, goodOff); err != nil {
			return nil, nil, fmt.Errorf("colstore: truncate manifest: %w", err)
		}
	}
	mf, err := os.OpenFile(mpath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("colstore: %w", err)
	}
	st.manifest = mf
	st.manifestSize = goodOff
	if fold == nil {
		syncDir(dir)
		return st, nil, nil
	}
	pdb, err := st.attach(fold)
	if err != nil {
		st.Close()
		return nil, nil, err
	}
	syncDir(dir)
	return st, pdb, nil
}

// attach materializes the folded manifest state: column files are opened,
// clipped to the recorded lengths, and mapped; dictionaries are decoded;
// zone maps and null counts come straight from the manifest.
func (st *Store) attach(f *foldDB) (*db.PersistedDB, error) {
	st.haveSchema = true
	st.name = f.name
	st.version, st.epoch = f.version, f.epoch
	pdb := &db.PersistedDB{Name: f.name, Version: f.version, Epoch: f.epoch}
	for _, fk := range f.fks {
		pdb.FKs = append(pdb.FKs, db.ForeignKey{FromTable: fk.FromTable, FromColumn: fk.FromColumn, ToTable: fk.ToTable, ToColumn: fk.ToColumn})
	}
	for ti, ft := range f.tables {
		stb := &storeTable{name: ft.name, rows: ft.rows}
		pt := db.PersistedTable{Name: ft.name, PrimaryKey: ft.pk, ZoneRows: ft.zoneRows}
		for _, b := range ft.blocks {
			pt.Blocks = append(pt.Blocks, db.Block{Seq: b.Seq, Start: b.Start, End: b.End})
		}
		for ci := range ft.cols {
			fc := &ft.cols[ci]
			sc := &storeCol{kind: fc.kind, dictN: fc.dictN, dictOff: fc.dictBytes}
			pc := db.PersistedColumn{
				Name:        fc.name,
				Description: fc.desc,
				Kind:        fc.kind,
				Integral:    fc.integral,
				NullCount:   fc.nulls,
			}
			zones, err := decodeZones(fc.zones)
			if err != nil {
				return nil, fmt.Errorf("colstore: table %s column %s: %w", ft.name, fc.name, err)
			}
			pc.Zones = zones
			dataBytes := int64(ft.rows) * sc.rowWidth()
			dataF, pages, err := st.openColumn(st.dataPath(ti, ci, fc.kind), dataBytes)
			if err != nil {
				return nil, err
			}
			sc.data = dataF
			if fc.kind == db.KindString {
				pc.Codes = viewCodes(pages, ft.rows)
				dictF, err := os.OpenFile(st.dictPath(ti, ci), os.O_RDWR|os.O_CREATE, 0o644)
				if err != nil {
					return nil, fmt.Errorf("colstore: %w", err)
				}
				if err := dictF.Truncate(fc.dictBytes); err != nil {
					dictF.Close()
					return nil, fmt.Errorf("colstore: %w", err)
				}
				sc.dict = dictF
				dict, err := readDictEntries(dictF, fc.dictBytes, fc.dictN)
				if err != nil {
					return nil, fmt.Errorf("colstore: table %s column %s: %w", ft.name, fc.name, err)
				}
				pc.Dict = dict
			} else {
				pc.Floats = viewFloats(pages, ft.rows)
			}
			stb.cols = append(stb.cols, sc)
			if ci == 0 {
				stb.zones = len(fc.zones)
			}
			pt.Cols = append(pt.Cols, pc)
		}
		st.tables = append(st.tables, stb)
		st.byName[stb.name] = stb
		pdb.Tables = append(pdb.Tables, pt)
	}
	return pdb, nil
}

// openColumn opens a column data file read-write, clips it to the recorded
// byte length, and maps its pages (nil pages for an empty column).
func (st *Store) openColumn(path string, size int64) (*os.File, []byte, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("colstore: %w", err)
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("colstore: %w", err)
	}
	if size == 0 {
		return f, nil, nil
	}
	pages, mapped, err := openColumnBytes(f, size)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("colstore: map %s: %w", filepath.Base(path), err)
	}
	if mapped {
		st.maps = append(st.maps, mappedBytes(pages))
	}
	return f, pages, nil
}

func (st *Store) dataPath(ti, ci int, kind db.Kind) string {
	ext := "f64"
	if kind == db.KindString {
		ext = "i32"
	}
	return filepath.Join(st.dir, fmt.Sprintf("t%d_c%d.%s", ti, ci, ext))
}

func (st *Store) dictPath(ti, ci int) string {
	return filepath.Join(st.dir, fmt.Sprintf("t%d_c%d.dict", ti, ci))
}

// Publish implements db.Persister: same-epoch snapshots append the sealed
// suffix; an epoch change (or the first publication) re-records the store
// wholesale. Column pages are written and fsynced before the manifest
// record that covers them, so a crash between the two leaves only
// unreferenced bytes that the next open clips away.
func (st *Store) Publish(s *db.Snapshot) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed || st.detached {
		return fmt.Errorf("colstore: store is closed")
	}
	if st.haveSchema && s.Epoch() == st.epoch && s.Version() <= st.version {
		return nil // already durable at this version (idempotent re-offer)
	}
	if !st.haveSchema || s.Epoch() != st.epoch {
		return st.resetLocked(s)
	}
	return st.appendLocked(s)
}

// appendLocked records a same-epoch publication as a delta.
func (st *Store) appendLocked(s *db.Snapshot) error {
	rec := manifestRecord{Kind: recPublish, Version: s.Version(), Epoch: s.Epoch()}
	var touched []*os.File
	for _, tv := range s.Tables() {
		stb := st.byName[tv.Name]
		if stb == nil {
			return fmt.Errorf("colstore: table %s appeared without an epoch change", tv.Name)
		}
		tr, files, err := st.writeTableLocked(stb, tv, false)
		if err != nil {
			return err
		}
		touched = append(touched, files...)
		if tr != nil {
			rec.Tables = append(rec.Tables, *tr)
		}
	}
	if err := syncFiles(touched); err != nil {
		return err
	}
	if err := st.appendRecordLocked(&rec); err != nil {
		return err
	}
	st.version = s.Version()
	st.publishes.Add(1)
	return nil
}

// resetLocked re-records the store wholesale: schema, block layout, zone
// maps, and foreign keys, plus any column bytes not yet on disk. Data
// already persisted is left in place — a compaction reseal changes only
// metadata.
func (st *Store) resetLocked(s *db.Snapshot) error {
	tvs := s.Tables()
	if len(tvs) < len(st.tables) {
		return fmt.Errorf("colstore: snapshot dropped tables (have %d, got %d)", len(st.tables), len(tvs))
	}
	for ti, tv := range tvs {
		if ti < len(st.tables) {
			if st.tables[ti].name != tv.Name {
				return fmt.Errorf("colstore: table order changed: slot %d was %s, got %s", ti, st.tables[ti].name, tv.Name)
			}
			continue
		}
		stb := &storeTable{name: tv.Name}
		for ci, cv := range tv.Columns() {
			sc := &storeCol{kind: cv.Kind}
			// O_TRUNC: a brand-new table must not inherit bytes from a
			// previous incarnation of this directory.
			f, err := os.OpenFile(st.dataPath(ti, ci, cv.Kind), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
			if err != nil {
				return fmt.Errorf("colstore: %w", err)
			}
			sc.data = f
			if cv.Kind == db.KindString {
				df, err := os.OpenFile(st.dictPath(ti, ci), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
				if err != nil {
					return fmt.Errorf("colstore: %w", err)
				}
				sc.dict = df
			}
			stb.cols = append(stb.cols, sc)
		}
		st.tables = append(st.tables, stb)
		st.byName[stb.name] = stb
	}
	rec := manifestRecord{Kind: recReset, Name: s.DatabaseName(), Version: s.Version(), Epoch: s.Epoch()}
	for _, fk := range s.ForeignKeys() {
		rec.FKs = append(rec.FKs, fkRecord{FromTable: fk.FromTable, FromColumn: fk.FromColumn, ToTable: fk.ToTable, ToColumn: fk.ToColumn})
	}
	var touched []*os.File
	for ti, tv := range tvs {
		stb := st.tables[ti]
		tr, files, err := st.writeTableLocked(stb, tv, true)
		if err != nil {
			return err
		}
		touched = append(touched, files...)
		rec.Tables = append(rec.Tables, *tr)
	}
	if err := syncFiles(touched); err != nil {
		return err
	}
	syncDir(st.dir) // new column files must survive the crash too
	if err := st.appendRecordLocked(&rec); err != nil {
		return err
	}
	st.haveSchema = true
	st.name = s.DatabaseName()
	st.version = s.Version()
	st.epoch = s.Epoch()
	st.resets.Add(1)
	return nil
}

// writeTableLocked writes the column bytes a snapshot added beyond the
// table's durable watermarks and builds its manifest record: the full
// layout when full (reset records), the sealed suffix otherwise. Returns a
// nil record when a delta publication left the table untouched.
func (st *Store) writeTableLocked(stb *storeTable, tv *db.TableView, full bool) (*tableRecord, []*os.File, error) {
	newRows := tv.NumRows()
	if newRows < stb.rows {
		return nil, nil, fmt.Errorf("colstore: table %s shrank from %d to %d rows", stb.name, stb.rows, newRows)
	}
	cols := tv.Columns()
	if len(cols) != len(stb.cols) {
		return nil, nil, fmt.Errorf("colstore: table %s column count changed from %d to %d", stb.name, len(stb.cols), len(cols))
	}
	newZones := len(tv.ZoneSpans())
	if !full && newRows == stb.rows && newZones == stb.zones {
		return nil, nil, nil
	}
	if !full && newZones < stb.zones {
		return nil, nil, fmt.Errorf("colstore: table %s zone map shrank without an epoch change", stb.name)
	}
	tr := &tableRecord{Name: stb.name, Rows: newRows}
	if full {
		tr.PK = tv.PrimaryKey
		tr.ZoneRows = tv.ZoneGranularity()
	}
	for _, b := range tv.Blocks() {
		if full || b.Start >= stb.rows {
			tr.Blocks = append(tr.Blocks, blockRecord{Seq: b.Seq, Start: b.Start, End: b.End})
		}
	}
	var touched []*os.File
	for ci, cv := range cols {
		sc := stb.cols[ci]
		if cv.Kind != sc.kind {
			return nil, nil, fmt.Errorf("colstore: table %s column %s changed kind", stb.name, cv.Name)
		}
		cr := colRecord{Nulls: cv.NullCount()}
		if full {
			cr.ColName = cv.Name
			cr.Desc = cv.Description
			cr.Kind = int(cv.Kind)
			cr.Integral = cv.Integral
		}
		wroteData := false
		if cv.Kind == db.KindString {
			if err := writeCodeRows(sc.data, cv.Codes(), stb.rows); err != nil {
				return nil, nil, fmt.Errorf("colstore: table %s column %s: %w", stb.name, cv.Name, err)
			}
			wroteData = newRows > stb.rows
			dict := cv.Dictionary()
			if len(dict) < sc.dictN {
				return nil, nil, fmt.Errorf("colstore: table %s column %s dictionary shrank", stb.name, cv.Name)
			}
			newOff, err := appendDictEntries(sc.dict, sc.dictOff, dict[sc.dictN:])
			if err != nil {
				return nil, nil, fmt.Errorf("colstore: table %s column %s: %w", stb.name, cv.Name, err)
			}
			if newOff != sc.dictOff {
				touched = append(touched, sc.dict)
			}
			sc.dictN, sc.dictOff = len(dict), newOff
			cr.Dict = sc.dictN
			cr.DictBytes = sc.dictOff
		} else {
			if err := writeFloatRows(sc.data, cv.Floats(), stb.rows); err != nil {
				return nil, nil, fmt.Errorf("colstore: table %s column %s: %w", stb.name, cv.Name, err)
			}
			wroteData = newRows > stb.rows
		}
		if wroteData {
			touched = append(touched, sc.data)
		}
		zs := cv.Zones()
		if full {
			cr.Zones = encodeZones(zs)
		} else {
			if len(zs) != newZones {
				return nil, nil, fmt.Errorf("colstore: table %s column %s has %d zones, want %d", stb.name, cv.Name, len(zs), newZones)
			}
			cr.Zones = encodeZones(zs[stb.zones:])
		}
		tr.Cols = append(tr.Cols, cr)
	}
	stb.rows = newRows
	stb.zones = newZones
	return tr, touched, nil
}

func (st *Store) appendRecordLocked(rec *manifestRecord) error {
	b, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	if _, err := st.manifest.Write(b); err != nil {
		return fmt.Errorf("colstore: manifest append: %w", err)
	}
	if err := st.manifest.Sync(); err != nil {
		return fmt.Errorf("colstore: manifest sync: %w", err)
	}
	st.manifestSize += int64(len(b))
	return nil
}

// Close releases everything: file handles and the column-page mappings.
// Only safe once no snapshot that aliases the mappings is reachable
// (tests, benchmarks, process shutdown).
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.closeFilesLocked()
	for _, m := range st.maps {
		unmapBytes(m)
	}
	st.maps = nil
	st.closed = true
	return nil
}

// Detach closes the file handles but keeps the column-page mappings
// valid, because live snapshots may still alias them. Used when a service
// evicts a checker whose readers may still be draining.
func (st *Store) Detach() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.closeFilesLocked()
	st.detached = true
	return nil
}

func (st *Store) closeFilesLocked() {
	if st.manifest != nil {
		st.manifest.Close()
		st.manifest = nil
	}
	for _, t := range st.tables {
		for _, c := range t.cols {
			if c.data != nil {
				c.data.Close()
				c.data = nil
			}
			if c.dict != nil {
				c.dict.Close()
				c.dict = nil
			}
		}
	}
}

// Stats is a point-in-time summary of the store for status endpoints and
// benchmarks.
type Stats struct {
	Dir            string
	Version, Epoch uint64
	Tables         int
	Publishes      int64 // delta records written by this process
	Resets         int64 // reset records written by this process
	DataBytes      int64 // column + dictionary bytes recorded durable
	ManifestBytes  int64
	MappedBytes    int64 // column pages currently memory-mapped
	ResidentBytes  int64 // mapped pages actually faulted in (-1 if unknown)
}

// Stats returns the store's current counters. ResidentBytes distinguishes
// mapped from touched: a zone-pruned scan leaves refuted pages unmapped in
// the page table, and that is visible here.
func (st *Store) Stats() Stats {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := Stats{
		Dir:           st.dir,
		Version:       st.version,
		Epoch:         st.epoch,
		Tables:        len(st.tables),
		Publishes:     st.publishes.Load(),
		Resets:        st.resets.Load(),
		ManifestBytes: st.manifestSize,
	}
	for _, t := range st.tables {
		for _, c := range t.cols {
			s.DataBytes += int64(t.rows) * c.rowWidth()
			s.DataBytes += c.dictOff
		}
	}
	for _, m := range st.maps {
		s.MappedBytes += int64(len(m))
	}
	s.ResidentBytes = residentBytes(st.maps)
	return s
}

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.dir }

func syncFiles(files []*os.File) error {
	seen := make(map[*os.File]bool, len(files))
	for _, f := range files {
		if f == nil || seen[f] {
			continue
		}
		seen[f] = true
		if err := f.Sync(); err != nil {
			return fmt.Errorf("colstore: sync: %w", err)
		}
	}
	return nil
}

// syncDir fsyncs a directory so freshly created files survive a crash.
// Best-effort: some platforms cannot sync directories.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
