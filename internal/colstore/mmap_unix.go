//go:build unix

package colstore

import (
	"os"
	"syscall"
)

// openColumnBytes maps a column file's pages read-only and shared: bytes
// are paged in lazily on first touch, so columns a scan never reads (zone
// refuted, or simply unused) cost no memory and no I/O. Reported true as
// mapped so Close knows to munmap.
func openColumnBytes(f *os.File, size int64) ([]byte, bool, error) {
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, err
	}
	return b, true, nil
}

func unmapBytes(b []byte) {
	if len(b) > 0 {
		syscall.Munmap(b)
	}
}
