//go:build !linux

package colstore

// residentBytes is unknowable without /proc/self/smaps.
func residentBytes(maps []mappedBytes) int64 { return -1 }
