package db

import (
	"fmt"
	"math"
	"sync"
)

// This file implements horizontal partitioning of a database's fact tables.
// A Sharder owns K independent partition Databases that together hold every
// row of a source database: fact tables are split row-wise across the
// partitions (hash placement on a configurable shard-key column, round-robin
// otherwise), while dimension tables — any table on the PK side of a foreign
// key — are replicated to every partition so N:1 join scopes stay local to a
// shard. Each partition is a full snapshot-versioned Database of its own: it
// seals its own blocks, builds its own zone maps, and publishes its own
// versions, so appends absorbed from the source delta-advance per shard
// exactly like single-node incremental maintenance.

// ShardOptions configures row placement.
type ShardOptions struct {
	// Keys maps a table name to the column whose value hashes to the
	// owning partition. Tables without an entry — or whose named column
	// does not exist — use round-robin placement; rows whose key value is
	// NULL also fall back to round-robin. Hash placement is by value, so
	// every row with the same key lands on the same partition across all
	// absorb batches.
	Keys map[string]string
}

// Sharder splits one source database into K partition databases and keeps
// them in sync as the source commits new rows. All partitions share the
// source's schema (tables, primary keys, foreign keys); none of them alias
// the source's column storage — rows are re-appended, so each partition
// seals independent blocks and zone maps.
type Sharder struct {
	src   *Database
	parts []*Database
	keys  map[string]string

	mu         sync.Mutex
	replicated map[string]bool // PK-side tables copied to every partition
	consumed   map[string]int  // source rows already routed, per table
	rr         map[string]int  // round-robin cursor, per table
}

// NewSharder partitions d into k databases and routes every currently
// committed row. The source keeps working as the mutable head: append and
// commit to d as usual, then call Absorb to route the new rows into the
// partitions (each partition commits one block per touched table).
func NewSharder(d *Database, k int, opts ShardOptions) (*Sharder, error) {
	if k <= 0 {
		return nil, fmt.Errorf("db: shard count must be positive, got %d", k)
	}
	s := &Sharder{
		src:        d,
		keys:       make(map[string]string, len(opts.Keys)),
		replicated: make(map[string]bool),
		consumed:   make(map[string]int),
		rr:         make(map[string]int),
	}
	for t, c := range opts.Keys {
		s.keys[t] = c
	}
	for i := 0; i < k; i++ {
		s.parts = append(s.parts, NewDatabase(fmt.Sprintf("%s/shard%d", d.Name, i)))
	}
	if _, err := s.Absorb(); err != nil {
		return nil, err
	}
	return s, nil
}

// NumShards returns the partition count K.
func (s *Sharder) NumShards() int { return len(s.parts) }

// Partitions returns the K partition databases in shard order. The slice
// must not be modified.
func (s *Sharder) Partitions() []*Database { return s.parts }

// Replicated reports whether the table is copied whole to every partition
// (dimension tables on the PK side of a foreign key) rather than split.
func (s *Sharder) Replicated(table string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replicated[table]
}

// Rows returns the visible row count of each partition, in shard order.
func (s *Sharder) Rows() []int {
	out := make([]int, len(s.parts))
	for i, p := range s.parts {
		out[i] = p.Snapshot().TotalRows()
	}
	return out
}

// Absorb routes every source row committed since the last call into the
// partitions and commits them (one sealed block per touched table per
// partition, so per-shard snapshots delta-advance). It returns the number
// of source rows routed. Replicated tables count once regardless of K.
func (s *Sharder) Absorb() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := s.src.Snapshot()
	if err := s.syncSchemaLocked(snap); err != nil {
		return 0, err
	}
	moved := 0
	for _, tv := range snap.Tables() {
		lo, hi := s.consumed[tv.Name], tv.NumRows()
		if hi <= lo {
			continue
		}
		if err := s.routeLocked(tv, lo, hi); err != nil {
			return moved, err
		}
		moved += hi - lo
		s.consumed[tv.Name] = hi
	}
	for _, p := range s.parts {
		if _, err := p.Commit(); err != nil {
			return moved, err
		}
	}
	return moved, nil
}

// syncSchemaLocked mirrors tables and foreign keys the source gained since
// construction into every partition. A table that is the PK target of any
// foreign key is classified replicated. Callers hold s.mu.
func (s *Sharder) syncSchemaLocked(snap *Snapshot) error {
	for _, fk := range snap.ForeignKeys() {
		s.replicated[fk.ToTable] = true
	}
	for _, tv := range snap.Tables() {
		if s.parts[0].Table(tv.Name) != nil {
			continue
		}
		for _, p := range s.parts {
			cols := make([]*Column, 0, len(tv.Columns()))
			for _, cv := range tv.Columns() {
				var c *Column
				if cv.Kind == KindString {
					c = NewStringColumn(cv.Name)
				} else {
					c = NewFloatColumn(cv.Name)
				}
				c.Description = cv.Description
				cols = append(cols, c)
			}
			t, err := NewTable(tv.Name, cols...)
			if err != nil {
				return err
			}
			t.PrimaryKey = tv.PrimaryKey
			if err := p.AddTable(t); err != nil {
				return err
			}
		}
	}
	have := make(map[ForeignKey]bool, len(s.parts[0].ForeignKeys()))
	for _, fk := range s.parts[0].ForeignKeys() {
		have[fk] = true
	}
	for _, fk := range snap.ForeignKeys() {
		if have[fk] {
			continue
		}
		for _, p := range s.parts {
			if err := p.AddForeignKey(fk); err != nil {
				return err
			}
		}
	}
	return nil
}

// routeLocked stages source rows [lo, hi) of one table into the partitions.
// Callers hold s.mu; the staged rows are committed by Absorb.
func (s *Sharder) routeLocked(tv *TableView, lo, hi int) error {
	cols := tv.Columns()
	var keyCol *ColView
	if name := s.keys[tv.Name]; name != "" && !s.replicated[tv.Name] {
		keyCol = tv.Column(name)
	}
	k := len(s.parts)
	buckets := make([][][]any, k)
	for r := lo; r < hi; r++ {
		row := make([]any, len(cols))
		for j, cv := range cols {
			if cv.Kind == KindFloat {
				if v := cv.Float(r); !math.IsNaN(v) {
					row[j] = v
				}
			} else if code := cv.Code(r); code >= 0 {
				row[j] = cv.Dictionary()[code]
			}
		}
		if s.replicated[tv.Name] {
			for i := range buckets {
				buckets[i] = append(buckets[i], row)
			}
			continue
		}
		target := -1
		if keyCol != nil && !keyCol.IsNull(r) {
			target = int(shardHash(keyCol, r) % uint64(k))
		}
		if target < 0 {
			target = s.rr[tv.Name] % k
			s.rr[tv.Name]++
		}
		buckets[target] = append(buckets[target], row)
	}
	for i, rows := range buckets {
		if len(rows) == 0 {
			continue
		}
		if err := s.parts[i].Append(tv.Name, rows...); err != nil {
			return err
		}
	}
	return nil
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// shardHash hashes the key value at row r by value (FNV-1a over the string
// bytes, or over the IEEE-754 bits of a numeric), so placement is stable
// across absorb batches and independent of dictionary code assignment.
func shardHash(cv *ColView, r int) uint64 {
	h := uint64(fnvOffset64)
	if cv.Kind == KindString {
		v := cv.Dictionary()[cv.Code(r)]
		for i := 0; i < len(v); i++ {
			h ^= uint64(v[i])
			h *= fnvPrime64
		}
		return h
	}
	bits := math.Float64bits(cv.Float(r))
	for i := 0; i < 8; i++ {
		h ^= bits >> (8 * i) & 0xff
		h *= fnvPrime64
	}
	return h
}
