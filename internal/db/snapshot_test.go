package db

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func snapTestDB(t *testing.T) *Database {
	t.Helper()
	s := NewStringColumn("s")
	n := NewFloatColumn("n")
	for i, v := range []string{"a", "b", "a"} {
		s.AppendString(v)
		n.AppendFloat(float64(i + 1))
	}
	d := NewDatabase("snap")
	d.MustAddTable(MustNewTable("t", s, n))
	return d
}

func TestSnapshotVersioningAndBlocks(t *testing.T) {
	d := snapTestDB(t)
	s1 := d.Snapshot()
	if s1.Version() != 1 {
		t.Fatalf("initial version = %d, want 1", s1.Version())
	}
	if d.Snapshot() != s1 {
		t.Fatal("repeated Snapshot without mutation must return the same snapshot")
	}
	if got := s1.NumRows("t"); got != 3 {
		t.Fatalf("snapshot rows = %d, want 3", got)
	}
	bs := s1.Table("t").Blocks()
	if len(bs) != 1 || bs[0].Start != 0 || bs[0].End != 3 {
		t.Fatalf("initial blocks = %v, want one [0,3)", bs)
	}

	if err := d.Append("t", []any{"c", 4.0}, []any{nil, nil}); err != nil {
		t.Fatal(err)
	}
	if d.Pending("t") != 2 {
		t.Fatalf("pending = %d, want 2", d.Pending("t"))
	}
	// Staged rows are invisible until Commit.
	if d.Snapshot() != s1 {
		t.Fatal("Append must not publish a new snapshot")
	}
	s2, err := d.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if s2.Version() != 2 || s2.NumRows("t") != 5 {
		t.Fatalf("after commit: version=%d rows=%d, want 2/5", s2.Version(), s2.NumRows("t"))
	}
	if got := len(s2.Table("t").Blocks()); got != 2 {
		t.Fatalf("blocks after commit = %d, want 2", got)
	}
	since := s2.BlocksSince("t", 3)
	if len(since) != 1 || since[0].Start != 3 || since[0].End != 5 {
		t.Fatalf("BlocksSince(3) = %v, want one [3,5)", since)
	}

	// The old snapshot still sees exactly its own rows (copy-on-write).
	if s1.NumRows("t") != 3 || s1.Table("t").Column("s").Len() != 3 {
		t.Fatal("old snapshot leaked appended rows")
	}
	sv := s2.Table("t").Column("s")
	nv := s2.Table("t").Column("n")
	if sv.StringAt(3) != "c" || !sv.IsNull(4) {
		t.Errorf("appended string rows wrong: %q null=%v", sv.StringAt(3), sv.IsNull(4))
	}
	if nv.Float(3) != 4 || !math.IsNaN(nv.Float(4)) {
		t.Errorf("appended numeric rows wrong: %v %v", nv.Float(3), nv.Float(4))
	}
	if nv.NullCount() != 1 || sv.NullCount() != 1 {
		t.Errorf("incremental null counts = %d/%d, want 1/1", nv.NullCount(), sv.NullCount())
	}
	// New dictionary value resolves in the new snapshot only.
	if sv.CodeOf("c") < 0 {
		t.Error("new snapshot misses appended dictionary value")
	}
	if s1.Table("t").Column("s").CodeOf("c") >= 0 {
		t.Error("old snapshot sees appended dictionary value")
	}

	// Empty commit publishes no new version.
	s3, err := d.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if s3.Version() != s2.Version() {
		t.Errorf("empty commit bumped version %d -> %d", s2.Version(), s3.Version())
	}
}

func TestSnapshotEpochBumpsOnStructuralChange(t *testing.T) {
	d := snapTestDB(t)
	s1 := d.Snapshot()
	extra := NewFloatColumn("z")
	d.MustAddTable(MustNewTable("u", extra))
	s2 := d.Snapshot()
	if s2.Version() <= s1.Version() {
		t.Errorf("AddTable did not advance version: %d -> %d", s1.Version(), s2.Version())
	}
	if s2.Epoch() == s1.Epoch() {
		t.Error("AddTable did not advance epoch")
	}
	if s2.Table("u") == nil {
		t.Error("new table missing from snapshot")
	}
}

func TestAppendValidation(t *testing.T) {
	d := snapTestDB(t)
	if err := d.Append("nope", []any{"x"}); err == nil {
		t.Error("append to unknown table should fail")
	}
	if err := d.Append("t", []any{"only-one"}); err == nil {
		t.Error("short row should fail")
	}
	if err := d.Append("t", []any{"ok", "notanumber"}); err == nil {
		t.Error("non-numeric string into float column should fail")
	}
	if err := d.Append("t", []any{"ok", "1,234"}); err != nil {
		t.Errorf("numeric string should parse: %v", err)
	}
	if err := d.Append("t", []any{3, 7}); err != nil {
		t.Errorf("int into string column should format: %v", err)
	}
	snap, err := d.Commit()
	if err != nil {
		t.Fatal(err)
	}
	sv := snap.Table("t").Column("s")
	nv := snap.Table("t").Column("n")
	if sv.StringAt(4) != "3" || nv.Float(3) != 1234 {
		t.Errorf("converted cells = %q %v", sv.StringAt(4), nv.Float(3))
	}
}

func TestSnapshotViewConsistentAcrossAppend(t *testing.T) {
	d := snapTestDB(t)
	view, err := BuildSnapshotView(d.Snapshot(), []string{"t"})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Append("t", []any{"zzz", 99.0}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	if view.NumRows() != 3 {
		t.Fatalf("pre-append view rows = %d, want 3", view.NumRows())
	}
	acc, err := view.Accessor("t", "n")
	if err != nil {
		t.Fatal(err)
	}
	vals, direct := acc.FloatBlock(0, view.NumRows(), nil)
	if !direct || len(vals) != 3 {
		t.Fatalf("FloatBlock over old view: direct=%v len=%d", direct, len(vals))
	}
	// A fresh view over the new snapshot sees the appended row.
	view2, err := BuildSnapshotView(d.Snapshot(), []string{"t"})
	if err != nil {
		t.Fatal(err)
	}
	if view2.NumRows() != 4 {
		t.Fatalf("post-append view rows = %d, want 4", view2.NumRows())
	}
}

func TestCSVSourceOpenAndRefresh(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sales.csv")
	if err := os.WriteFile(path, []byte("region,amount\neast,10\nwest,20\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := NewCSVSource("salesdb", path)
	d, err := src.Open(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	s1 := d.Snapshot()
	if s1.NumRows("sales") != 2 {
		t.Fatalf("rows = %d, want 2", s1.NumRows("sales"))
	}

	// Appending to the file and refreshing seals exactly the new rows.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("north,30\nsouth,40\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	appended, err := src.Refresh(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	if appended != 2 {
		t.Fatalf("appended = %d, want 2", appended)
	}
	s2 := d.Snapshot()
	if s2.Version() != s1.Version()+1 || s2.NumRows("sales") != 4 {
		t.Fatalf("after refresh: version=%d rows=%d", s2.Version(), s2.NumRows("sales"))
	}
	blocks := s2.Table("sales").Blocks()
	if len(blocks) != 2 || blocks[1].Rows() != 2 {
		t.Fatalf("blocks = %v, want initial + one 2-row delta", blocks)
	}
	amount := s2.Table("sales").Column("amount")
	if amount.Kind != KindFloat || amount.Float(3) != 40 {
		t.Errorf("appended amount = %v (kind %v)", amount.Float(3), amount.Kind)
	}

	// Unchanged file: refresh is a no-op and publishes nothing.
	appended, err = src.Refresh(context.Background(), d)
	if err != nil || appended != 0 {
		t.Fatalf("no-op refresh = (%d, %v)", appended, err)
	}
	if d.Snapshot().Version() != s2.Version() {
		t.Error("no-op refresh bumped the version")
	}

	// A shrunken file cannot be expressed as an append.
	if err := os.WriteFile(path, []byte("region,amount\neast,10\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Refresh(context.Background(), d); err == nil {
		t.Error("refresh over a shrunken file should fail")
	}
}

func TestCSVSourceRefreshIgnoresTornFinalLine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	if err := os.WriteFile(path, []byte("region,amount\neast,10\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := NewCSVSource("t", path)
	d, err := src.Open(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// A non-atomic writer flushed half a row: the fragment must not be
	// ingested (a later completed line would never raise the row count
	// again, making the torn row permanent).
	if err := os.WriteFile(path, []byte("region,amount\neast,10\nwest,"), 0o644); err != nil {
		t.Fatal(err)
	}
	if n, err := src.Refresh(context.Background(), d); err != nil || n != 0 {
		t.Fatalf("torn refresh = (%d, %v), want (0, nil)", n, err)
	}
	// The write completes; the whole line is appended on the next poll.
	if err := os.WriteFile(path, []byte("region,amount\neast,10\nwest,20\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := src.Refresh(context.Background(), d)
	if err != nil || n != 1 {
		t.Fatalf("completed refresh = (%d, %v), want (1, nil)", n, err)
	}
	s := d.Snapshot()
	if got := s.Table("t").Column("amount").Float(1); got != 20 {
		t.Errorf("completed row amount = %v, want 20", got)
	}
}

func TestCSVDirSource(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.csv"), []byte("x\n1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "b.csv"), []byte("y\nq\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := NewCSVDirSource("dirdb", dir).Open(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if d.Table("a") == nil || d.Table("b") == nil {
		t.Fatalf("tables = %v", d.Tables())
	}
}

func TestJSONLSourceOpenAndRefresh(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.jsonl")
	data := `{"kind":"click","count":3}
{"kind":"view","count":7,"extra":true}
`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	src := NewJSONLSource("events", path)
	d, err := src.Open(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tbl := d.Snapshot().Table("events")
	if tbl == nil || tbl.NumRows() != 2 {
		t.Fatalf("events table missing or wrong rows: %+v", tbl)
	}
	if c := tbl.Column("count"); c == nil || c.Kind != KindFloat || c.Float(1) != 7 {
		t.Fatalf("count column wrong: %+v", c)
	}
	if c := tbl.Column("extra"); c == nil || c.Kind != KindString || !c.IsNull(0) || c.StringAt(1) != "true" {
		t.Fatalf("extra column wrong: %+v", c)
	}

	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"kind":"click","count":null}` + "\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	appended, err := src.Refresh(context.Background(), d)
	if err != nil || appended != 1 {
		t.Fatalf("jsonl refresh = (%d, %v)", appended, err)
	}
	s := d.Snapshot()
	if s.NumRows("events") != 3 || !s.Table("events").Column("count").IsNull(2) {
		t.Fatalf("appended jsonl row wrong: rows=%d", s.NumRows("events"))
	}
}

func TestMemSourceRefreshCommitsStagedRows(t *testing.T) {
	d := snapTestDB(t)
	src := NewMemSource(d)
	got, err := src.Open(context.Background())
	if err != nil || got != d {
		t.Fatalf("mem open = (%v, %v)", got, err)
	}
	v1 := d.Snapshot().Version()
	if err := d.Append("t", []any{"m", 9.0}); err != nil {
		t.Fatal(err)
	}
	appended, err := src.Refresh(context.Background(), d)
	if err != nil || appended != 1 {
		t.Fatalf("mem refresh = (%d, %v)", appended, err)
	}
	if d.Snapshot().Version() != v1+1 {
		t.Error("mem refresh did not publish a new version")
	}
}

func TestLoadCSVOptionsEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		csv     string
		opts    CSVOptions
		col     string
		kind    Kind
		nulls   []int    // rows expected NULL
		vals    []string // expected StringAt per row (after nulls applied)
		numVals []float64
	}{
		{
			name: "quoted delimiter stays one field",
			csv:  "name,team\n\"Smith, John\",NYC\nPlain,LA\n",
			col:  "name", kind: KindString,
			vals: []string{"Smith, John", "Plain"},
		},
		{
			name: "quoted embedded newline",
			csv:  "note,v\n\"line one\nline two\",1\nplain,2\n",
			col:  "note", kind: KindString,
			vals: []string{"line one\nline two", "plain"},
		},
		{
			name: "NA tokens keep numeric columns numeric",
			csv:  "score\n10\nNA\nnull\n30\n",
			opts: CSVOptions{NullTokens: []string{"NA", "null"}},
			col:  "score", kind: KindFloat,
			nulls:   []int{1, 2},
			numVals: []float64{10, math.NaN(), math.NaN(), 30},
		},
		{
			name: "without NULL tokens the same column degrades to text",
			csv:  "score\n10\nNA\nnull\n30\n",
			col:  "score", kind: KindString,
			vals: []string{"10", "NA", "null", "30"},
		},
		{
			name: "late string flips numeric-looking column to text",
			csv:  "v\n1\n2\n3\n4\nfive\n",
			col:  "v", kind: KindString,
			vals: []string{"1", "2", "3", "4", "five"},
		},
		{
			name: "late numbers after NULL-token prefix stay numeric",
			csv:  "v\nNA\nNA\nNA\n7\n8\n",
			opts: CSVOptions{NullTokens: []string{"na"}},
			col:  "v", kind: KindFloat,
			nulls:   []int{0, 1, 2},
			numVals: []float64{math.NaN(), math.NaN(), math.NaN(), 7, 8},
		},
		{
			name: "custom delimiter",
			csv:  "a;b\n1;x\n2;y\n",
			opts: CSVOptions{Comma: ';'},
			col:  "a", kind: KindFloat,
			numVals: []float64{1, 2},
		},
		{
			name: "null token matching is case-insensitive",
			csv:  "v\nn/a\nN/A\n5\n",
			opts: CSVOptions{NullTokens: []string{"N/A"}},
			col:  "v", kind: KindFloat,
			nulls:   []int{0, 1},
			numVals: []float64{math.NaN(), math.NaN(), 5},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tbl, err := LoadCSVOptions(strings.NewReader(tc.csv), "t", tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			c := tbl.Column(tc.col)
			if c == nil {
				t.Fatalf("column %q missing", tc.col)
			}
			if c.Kind != tc.kind {
				t.Fatalf("kind = %v, want %v", c.Kind, tc.kind)
			}
			for _, r := range tc.nulls {
				if !c.IsNull(r) {
					t.Errorf("row %d should be NULL", r)
				}
			}
			for r, want := range tc.vals {
				if got := c.StringAt(r); got != want {
					t.Errorf("row %d = %q, want %q", r, got, want)
				}
			}
			for r, want := range tc.numVals {
				got := c.Float(r)
				if math.IsNaN(want) != math.IsNaN(got) || (!math.IsNaN(want) && got != want) {
					t.Errorf("row %d = %v, want %v", r, got, want)
				}
			}
		})
	}
}
