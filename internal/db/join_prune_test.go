package db

import "testing"

// joinPruneDB builds a 3-zone fact table whose middle zone holds only
// dangling foreign keys, joined to a 2-row dimension table.
func joinPruneDB(t *testing.T, numericKey bool) *Database {
	t.Helper()
	var k *Column
	if numericKey {
		k = NewFloatColumn("k")
	} else {
		k = NewStringColumn("k")
	}
	x := NewFloatColumn("x")
	total := 3 * ZoneRows
	for i := 0; i < total; i++ {
		switch i / ZoneRows {
		case 0:
			if numericKey {
				k.AppendFloat(1)
			} else {
				k.AppendString("k1")
			}
		case 1:
			// Dangling: no dims row carries this key.
			if numericKey {
				k.AppendFloat(999)
			} else {
				k.AppendString("gone")
			}
		default:
			if numericKey {
				k.AppendFloat(2)
			} else {
				k.AppendString("k2")
			}
		}
		x.AppendFloat(float64(i))
	}
	fact := MustNewTable("fact", k, x)
	var dk *Column
	if numericKey {
		dk = NewFloatColumn("k")
		dk.AppendFloat(1)
		dk.AppendFloat(2)
	} else {
		dk = NewStringColumn("k")
		dk.AppendString("k1")
		dk.AppendString("k2")
	}
	g := NewStringColumn("g")
	g.AppendString("red")
	g.AppendString("blue")
	dim := MustNewTable("dims", dk, g)
	dim.PrimaryKey = "k"
	d := NewDatabase("prune")
	d.MustAddTable(fact)
	d.MustAddTable(dim)
	d.MustAddForeignKey(ForeignKey{FromTable: "fact", FromColumn: "k", ToTable: "dims", ToColumn: "k"})
	return d
}

func TestJoinKeyZonePruning(t *testing.T) {
	for _, numeric := range []bool{false, true} {
		name := "string-key"
		if numeric {
			name = "numeric-key"
		}
		t.Run(name, func(t *testing.T) {
			d := joinPruneDB(t, numeric)
			v, err := BuildJoinView(d, []string{"fact", "dims"})
			if err != nil {
				t.Fatal(err)
			}
			// The middle zone is all-dangling: the inner join drops its rows
			// either way, and pruning must skip the zone whole.
			if got, want := v.NumRows(), 2*ZoneRows; got != want {
				t.Fatalf("joined rows = %d, want %d", got, want)
			}
			if v.PrunedZones() == 0 {
				t.Fatal("dangling-key zone was scanned, not pruned")
			}
			// Surviving rows are exactly zones 0 and 2, in order, with the
			// right dimension values attached.
			xs, err := v.Accessor("fact", "x")
			if err != nil {
				t.Fatal(err)
			}
			gs, err := v.Accessor("dims", "g")
			if err != nil {
				t.Fatal(err)
			}
			for r := 0; r < v.NumRows(); r++ {
				wantX, wantG := float64(r), "red"
				if r >= ZoneRows {
					wantX, wantG = float64(r+ZoneRows), "blue"
				}
				if xs.Float(r) != wantX {
					t.Fatalf("row %d: x = %v, want %v", r, xs.Float(r), wantX)
				}
				if got := gs.Column().Dictionary()[gs.Code(r)]; got != wantG {
					t.Fatalf("row %d: g = %q, want %q", r, got, wantG)
				}
			}
		})
	}
}

// TestJoinPruneSkipsShuffledSides pins the safety condition: pruning only
// applies while the have side is still in storage order, so a second join
// step (row maps shuffled by the first) must scan everything and still be
// correct. The two-step path here is teams -> players -> teams' city table
// equivalent: reuse the existing two-table fixture backward, where the
// have side is the 1-side expanded through a row map.
func TestJoinPruneSkipsShuffledSides(t *testing.T) {
	d := twoTableDB(t)
	v, err := BuildJoinView(d, []string{"teams", "players"})
	if err != nil {
		t.Fatal(err)
	}
	if v.NumRows() != 3 {
		t.Fatalf("joined rows = %d, want 3", v.NumRows())
	}
}
