package db

import (
	"bytes"
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// sourceFileState fingerprints the consumed prefix of one backing file:
// its byte length and a hash of those bytes. Refresh verifies both before
// appending, so a file that shrank, or was rewritten in place to the same
// or a larger size, surfaces the non-append-only error instead of silently
// appending garbage rows diffed from a stale offset.
type sourceFileState struct {
	size int64
	sum  [sha256.Size]byte
}

func fingerprint(data []byte) sourceFileState {
	return sourceFileState{size: int64(len(data)), sum: sha256.Sum256(data)}
}

// verifyAppendOnly checks the current file contents against the fingerprint
// of the previously consumed prefix.
func (st sourceFileState) verifyAppendOnly(data []byte, source, table string) error {
	if int64(len(data)) < st.size {
		return fmt.Errorf("db: %s source: table %s shrank from %d to %d bytes; refresh requires append-only files",
			source, table, st.size, len(data))
	}
	if sha256.Sum256(data[:st.size]) != st.sum {
		return fmt.Errorf("db: %s source: table %s was rewritten in place; refresh requires append-only files",
			source, table)
	}
	return nil
}

// Source materializes a database on demand — the pluggable opener side of
// the storage contract. A Source is registered with a service once and
// opened lazily; the resulting Database publishes immutable, versioned
// Snapshots that the execution engine reads.
type Source interface {
	// Open loads the data and returns the mutable database head. Open may
	// be called again after the returned database was discarded (e.g. an
	// evicted service catalog); each call must produce a fresh, fully
	// loaded database reflecting the source's current contents.
	Open(ctx context.Context) (*Database, error)
}

// Refresher is implemented by sources that can bring an already-open
// database up to date incrementally. Refresh appends rows that appeared in
// the backing store since the database was opened (or last refreshed),
// commits them — publishing snapshot version N+1 — and reports how many
// rows were appended. Sources whose backing data changed in a non-append
// way (rows removed or rewritten) must return an error; callers then fall
// back to a full re-open.
type Refresher interface {
	Refresh(ctx context.Context, d *Database) (appended int, err error)
}

// SourceFunc adapts a plain open function into a Source.
type SourceFunc func(ctx context.Context) (*Database, error)

// Open implements Source.
func (f SourceFunc) Open(ctx context.Context) (*Database, error) { return f(ctx) }

// CSVSource opens a database from a set of CSV files (or a directory of
// them), one table per file, and supports incremental refresh: re-reading
// a grown file appends only the new rows as a fresh block.
type CSVSource struct {
	// Name is the database name.
	Name string
	// Files lists the CSV files to load, one table each (table name = file
	// base name without extension).
	Files []string
	// Dir, when non-empty, is globbed for *.csv at Open time in addition
	// to Files. Files appearing in the directory after Open are ignored by
	// Refresh (adding a table is structural; re-register the source).
	Dir string
	// Options tunes CSV parsing (NULL tokens, delimiter).
	Options CSVOptions

	// mu guards seen: per-file fingerprints of the consumed prefix, used by
	// Refresh to detect truncated or rewritten-in-place files.
	mu   sync.Mutex
	seen map[string]sourceFileState
}

// NewCSVSource returns a source over an explicit CSV file list.
func NewCSVSource(name string, files ...string) *CSVSource {
	return &CSVSource{Name: name, Files: files}
}

// NewCSVDirSource returns a source over every *.csv file in a directory.
func NewCSVDirSource(name, dir string) *CSVSource {
	return &CSVSource{Name: name, Dir: dir}
}

// resolveFiles expands Dir into the effective file list.
func (s *CSVSource) resolveFiles() ([]string, error) {
	files := append([]string(nil), s.Files...)
	if s.Dir != "" {
		matches, err := filepath.Glob(filepath.Join(s.Dir, "*.csv"))
		if err != nil {
			return nil, fmt.Errorf("db: csv source %s: %w", s.Name, err)
		}
		files = append(files, matches...)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("db: csv source %s: no files", s.Name)
	}
	return files, nil
}

// readCompleteLines reads a file but withholds any torn final line (no
// trailing newline): a writer appending non-atomically may have flushed
// half a row, and ingesting the fragment would be permanent — refresh
// diffs by row count, so the later-completed line would never be re-read.
// The withheld tail is picked up whole by the next Open or Refresh. Torn
// quoted multi-line fields remain the writer's problem — append atomically
// or whole-lines-at-a-time.
func readCompleteLines(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if n := len(data); n > 0 && data[n-1] != '\n' {
		cut := strings.LastIndexByte(string(data), '\n')
		if cut < 0 {
			return nil, nil
		}
		data = data[:cut+1]
	}
	return data, nil
}

// Open implements Source: every file becomes one table.
func (s *CSVSource) Open(ctx context.Context) (*Database, error) {
	files, err := s.resolveFiles()
	if err != nil {
		return nil, err
	}
	d := NewDatabase(s.Name)
	fresh := make(map[string]sourceFileState, len(files))
	for _, f := range files {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		path := strings.TrimSpace(f)
		data, err := readCompleteLines(path)
		if err != nil {
			return nil, err
		}
		tbl, err := LoadCSVOptions(strings.NewReader(string(data)), tableNameFromPath(path), s.Options)
		if err != nil {
			return nil, err
		}
		if err := d.AddTable(tbl); err != nil {
			return nil, err
		}
		fresh[path] = fingerprint(data)
	}
	s.mu.Lock()
	s.seen = fresh
	s.mu.Unlock()
	return d, nil
}

// Refresh implements Refresher: each backing file is re-read and any rows
// beyond the table's current count are appended and committed as one new
// block per table. A file that shrank (or whose table vanished) fails the
// refresh, since the change cannot be expressed as an append.
func (s *CSVSource) Refresh(ctx context.Context, d *Database) (int, error) {
	files, err := s.resolveFiles()
	if err != nil {
		return 0, err
	}
	appended := 0
	// Commit whatever was successfully staged even when a later file
	// fails, so one broken file cannot withhold other files' valid rows
	// indefinitely (refreshTable stages a table only after all of its new
	// rows converted cleanly, so partial tables are never committed).
	commitStaged := func() error {
		if appended == 0 {
			return nil
		}
		_, err := d.Commit()
		return err
	}
	for _, path := range files {
		if err := ctx.Err(); err != nil {
			return appended, errors.Join(err, commitStaged())
		}
		path = strings.TrimSpace(path)
		name := tableNameFromPath(path)
		t := d.Table(name)
		if t == nil {
			continue // new file since Open: adding tables needs a re-open
		}
		n, err := s.refreshTable(d, t, path)
		if err != nil {
			return appended, errors.Join(err, commitStaged())
		}
		appended += n
	}
	return appended, commitStaged()
}

func (s *CSVSource) refreshTable(d *Database, t *Table, path string) (int, error) {
	data, err := readCompleteLines(path)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	prev, tracked := s.seen[path]
	s.mu.Unlock()
	if tracked {
		if err := prev.verifyAppendOnly(data, "csv "+s.Name, t.Name); err != nil {
			return 0, err
		}
	}
	if len(data) == 0 {
		return 0, nil
	}
	records, err := readCSVRecords(strings.NewReader(string(data)), t.Name, s.Options)
	if err != nil {
		return 0, err
	}
	rows := records[1:]
	have := t.NumRows() + d.Pending(t.Name)
	if len(rows) < have {
		return 0, fmt.Errorf("db: csv source %s: table %s shrank from %d to %d rows; refresh requires append-only files",
			s.Name, t.Name, have, len(rows))
	}
	nulls := s.Options.nullSet()
	var out [][]any
	for _, rec := range rows[have:] {
		row := make([]any, len(t.Columns))
		for j, c := range t.Columns {
			var cell string
			if j < len(rec) {
				cell = strings.TrimSpace(rec[j])
			}
			if nulls[strings.ToLower(cell)] {
				row[j] = nil
				continue
			}
			if c.Kind == KindFloat {
				v, perr := parseNumericCell(cell)
				if perr != nil {
					return 0, fmt.Errorf("db: csv source %s: table %s column %s: appended cell %q is not numeric (column types are fixed after load)",
						s.Name, t.Name, c.Name, cell)
				}
				row[j] = v
				continue
			}
			row[j] = cell
		}
		out = append(out, row)
	}
	if len(out) > 0 {
		if err := d.Append(t.Name, out...); err != nil {
			return 0, err
		}
	}
	// Only bytes that parsed and staged cleanly become the new consumed
	// prefix; a failed refresh re-verifies from the old fingerprint.
	s.mu.Lock()
	if s.seen == nil {
		s.seen = make(map[string]sourceFileState)
	}
	s.seen[path] = fingerprint(data)
	s.mu.Unlock()
	return len(out), nil
}

// JSONLSource opens a database from JSON-lines files, one table per file,
// with the same incremental append-only Refresh contract as CSVSource.
type JSONLSource struct {
	Name  string
	Files []string

	// mu guards seen: per-file fingerprints of the consumed prefix, used by
	// Refresh to detect truncated or rewritten-in-place files.
	mu   sync.Mutex
	seen map[string]sourceFileState
}

// NewJSONLSource returns a source over an explicit JSONL file list.
func NewJSONLSource(name string, files ...string) *JSONLSource {
	return &JSONLSource{Name: name, Files: files}
}

// Open implements Source.
func (s *JSONLSource) Open(ctx context.Context) (*Database, error) {
	if len(s.Files) == 0 {
		return nil, fmt.Errorf("db: jsonl source %s: no files", s.Name)
	}
	d := NewDatabase(s.Name)
	fresh := make(map[string]sourceFileState, len(s.Files))
	for _, f := range s.Files {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		path := strings.TrimSpace(f)
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		tbl, err := LoadJSONL(bytes.NewReader(data), tableNameFromPath(path))
		if err != nil {
			return nil, err
		}
		if err := d.AddTable(tbl); err != nil {
			return nil, err
		}
		fresh[path] = fingerprint(data)
	}
	s.mu.Lock()
	s.seen = fresh
	s.mu.Unlock()
	return d, nil
}

// Refresh implements Refresher for append-only JSONL files. As with
// CSVSource, rows staged from earlier files are committed even when a
// later file fails.
func (s *JSONLSource) Refresh(ctx context.Context, d *Database) (int, error) {
	appended := 0
	commitStaged := func() error {
		if appended == 0 {
			return nil
		}
		_, err := d.Commit()
		return err
	}
	for _, path := range s.Files {
		if err := ctx.Err(); err != nil {
			return appended, errors.Join(err, commitStaged())
		}
		n, err := s.refreshFile(d, strings.TrimSpace(path))
		if err != nil {
			return appended, errors.Join(err, commitStaged())
		}
		appended += n
	}
	return appended, commitStaged()
}

// refreshFile stages one JSONL file's appended rows (the table is staged
// only after every new row converted cleanly, so partial tables are never
// committed).
func (s *JSONLSource) refreshFile(d *Database, path string) (int, error) {
	name := tableNameFromPath(path)
	t := d.Table(name)
	if t == nil {
		return 0, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	s.mu.Lock()
	prev, tracked := s.seen[path]
	s.mu.Unlock()
	if tracked {
		if err := prev.verifyAppendOnly(data, "jsonl "+s.Name, name); err != nil {
			return 0, err
		}
	}
	objs, _, err := readJSONLObjects(bytes.NewReader(data), name)
	if err != nil {
		return 0, err
	}
	have := t.NumRows() + d.Pending(name)
	if len(objs) < have {
		return 0, fmt.Errorf("db: jsonl source %s: table %s shrank from %d to %d rows; refresh requires append-only files",
			s.Name, name, have, len(objs))
	}
	// Keys first appearing in appended lines are skipped (adding a column
	// is structural; re-register the source), mirroring how new files are
	// skipped by Refresh.
	var out [][]any
	for _, obj := range objs[have:] {
		row := make([]any, len(t.Columns))
		for j, c := range t.Columns {
			v, ok := obj[c.Name]
			if c.Kind == KindFloat {
				switch {
				case !ok || v == nil:
					row[j] = nil
				default:
					f64, isNum := v.(float64)
					if !isNum {
						return 0, fmt.Errorf("db: jsonl source %s: table %s column %s: appended value %v is not a number (column types are fixed after load)",
							s.Name, name, c.Name, v)
					}
					row[j] = f64
				}
				continue
			}
			row[j] = jsonCellString(v, ok)
		}
		out = append(out, row)
	}
	if len(out) > 0 {
		if err := d.Append(name, out...); err != nil {
			return 0, err
		}
	}
	s.mu.Lock()
	if s.seen == nil {
		s.seen = make(map[string]sourceFileState)
	}
	s.seen[path] = fingerprint(data)
	s.mu.Unlock()
	return len(out), nil
}

// MemSource wraps an already-built in-memory database (the builder opener):
// Open hands out the same head, and Refresh commits any rows the owner has
// staged with Append since the last snapshot.
type MemSource struct {
	DB *Database
}

// NewMemSource returns a source over an in-memory database.
func NewMemSource(d *Database) *MemSource { return &MemSource{DB: d} }

// Open implements Source.
func (s *MemSource) Open(context.Context) (*Database, error) {
	if s.DB == nil {
		return nil, fmt.Errorf("db: mem source has no database")
	}
	return s.DB, nil
}

// Refresh implements Refresher: it seals whatever the owner staged.
func (s *MemSource) Refresh(context.Context, *Database) (int, error) {
	before := s.DB.Snapshot().TotalRows()
	snap, err := s.DB.Commit()
	if err != nil {
		return 0, err
	}
	return snap.TotalRows() - before, nil
}
