package db

import "fmt"

// RestoreDatabase rebuilds a database from a reopened durable store and
// pre-publishes its latest snapshot from the persisted metadata alone: null
// counts, zone maps, block layout, and version lineage all come from the
// store, so reopening touches no column data pages (the point of the
// exercise when the slices are mmap-backed — zone-refuted blocks are never
// paged in, even across a restart). Subsequent Appends, Commits, and
// Compacts behave exactly as on a freshly loaded database; reattach a
// Persister to keep the store advancing.
func RestoreDatabase(p *PersistedDB) (*Database, error) {
	if p == nil {
		return nil, fmt.Errorf("db: restore: nil persisted state")
	}
	d := NewDatabase(p.Name)
	maxSeq := -1
	for ti := range p.Tables {
		pt := &p.Tables[ti]
		if _, dup := d.byName[pt.Name]; dup {
			return nil, fmt.Errorf("db: restore: duplicate table %s", pt.Name)
		}
		rows, err := persistedRows(pt)
		if err != nil {
			return nil, err
		}
		cols := make([]*Column, len(pt.Cols))
		for ci := range pt.Cols {
			pc := &pt.Cols[ci]
			c := &Column{
				Name:        pc.Name,
				Description: pc.Description,
				Kind:        pc.Kind,
				Integral:    pc.Integral,
			}
			if pc.Kind == KindString {
				if len(pc.Codes) != rows {
					return nil, fmt.Errorf("db: restore: table %s column %s has %d codes, want %d", pt.Name, pc.Name, len(pc.Codes), rows)
				}
				c.codes = pc.Codes
				c.dict = pc.Dict
				c.dictID = make(map[string]int32, len(pc.Dict))
				for i, s := range pc.Dict {
					c.dictID[s] = int32(i)
				}
			} else {
				if len(pc.Floats) != rows {
					return nil, fmt.Errorf("db: restore: table %s column %s has %d floats, want %d", pt.Name, pc.Name, len(pc.Floats), rows)
				}
				c.floats = pc.Floats
			}
			cols[ci] = c
		}
		t, err := NewTable(pt.Name, cols...)
		if err != nil {
			return nil, fmt.Errorf("db: restore: %w", err)
		}
		t.PrimaryKey = pt.PrimaryKey
		t.zoneRows = pt.ZoneRows
		d.tables = append(d.tables, t)
		d.byName[t.Name] = t
		d.blocks[t.Name] = append([]Block(nil), pt.Blocks...)
		for _, b := range pt.Blocks {
			if b.Seq > maxSeq {
				maxSeq = b.Seq
			}
		}
	}
	for _, fk := range p.FKs {
		if d.byName[fk.FromTable] == nil || d.byName[fk.ToTable] == nil {
			return nil, fmt.Errorf("db: restore: foreign key references unknown table %s or %s", fk.FromTable, fk.ToTable)
		}
	}
	d.fks = append([]ForeignKey(nil), p.FKs...)
	d.version = p.Version
	d.epoch = p.Epoch
	d.blockSeq = maxSeq + 1

	s, err := restoredSnapshot(d, p)
	if err != nil {
		return nil, err
	}
	d.lastSnap = s
	d.snap.Store(s)
	return d, nil
}

// persistedRows validates a persisted table's block layout (contiguous from
// row 0) and returns its row count.
func persistedRows(pt *PersistedTable) (int, error) {
	rows := 0
	for _, b := range pt.Blocks {
		if b.Start != rows || b.End < b.Start {
			return 0, fmt.Errorf("db: restore: table %s has a non-contiguous block layout at row %d", pt.Name, b.Start)
		}
		rows = b.End
	}
	return rows, nil
}

// restoredSnapshot assembles the pre-published snapshot directly from
// persisted metadata — the restore-path twin of buildSnapshotLocked, minus
// every data scan.
func restoredSnapshot(d *Database, p *PersistedDB) (*Snapshot, error) {
	s := &Snapshot{
		db:      d,
		name:    d.Name,
		version: p.Version,
		epoch:   p.Epoch,
		byName:  make(map[string]*TableView, len(d.tables)),
		fks:     append([]ForeignKey(nil), d.fks...),
	}
	for ti, t := range d.tables {
		pt := &p.Tables[ti]
		tv := &TableView{
			Name:       t.Name,
			PrimaryKey: t.PrimaryKey,
			rows:       t.NumRows(),
			blocks:     append([]Block(nil), pt.Blocks...),
			byName:     make(map[string]*ColView, len(t.Columns)),
			zoneRows:   t.ZoneGranularity(),
		}
		tv.spans = zoneSpansFor(tv.blocks, 0, nil, tv.zoneRows)
		for ci, c := range t.Columns {
			pc := &pt.Cols[ci]
			if len(pc.Zones) != len(tv.spans) {
				return nil, fmt.Errorf("db: restore: table %s column %s has %d zones, want %d", t.Name, c.Name, len(pc.Zones), len(tv.spans))
			}
			cv := &ColView{
				Name:        c.Name,
				Description: c.Description,
				Kind:        c.Kind,
				Integral:    c.Integral,
				floats:      c.floats,
				codes:       c.codes,
				dict:        c.dict,
				nullCnt:     pc.NullCount,
				zones:       pc.Zones,
			}
			tv.cols = append(tv.cols, cv)
			tv.byName[c.Name] = cv
		}
		s.tables = append(s.tables, tv)
		s.byName[t.Name] = tv
	}
	return s, nil
}
