package db

import (
	"math"
	"math/bits"

	"aggchecker/internal/vec"
)

// This file implements per-block zone maps: small immutable summaries of
// fixed-size row runs inside each sealed storage block, computed once at
// snapshot publication and exposed through the block-access contract. Scan
// kernels consult them to skip row runs that provably cannot contain a
// predicate literal (equality on dictionary codes via a per-zone domain
// bitset, numeric equality via a min/max range test) and to hoist NULL
// branches out of runs whose null count is zero. Zones never span a sealed
// block, so append-only commits extend the zone list without touching
// sealed entries — the property that lets delta scans prune too.

// ZoneRows is the default zone-map granularity: the maximum number of rows
// one zone summarizes. It matches the execution kernel's block size so each
// kernel block of a zero-copy scan maps to exactly one zone. Tables keep
// this granularity until the compactor reseals them, when a sampled prune
// estimate may pick ZoneRowsFine or ZoneRowsCoarse instead.
const ZoneRows = 4096

// ZoneRowsFine and ZoneRowsCoarse are the alternative granularities the
// compactor chooses between: fine zones pay for themselves on clustered
// columns where most zones refute most literals; coarse zones cut summary
// overhead on columns whose zones almost never prune.
const (
	ZoneRowsFine   = 1024
	ZoneRowsCoarse = 16384
)

// maxZoneDomainDict caps the dictionary size for which per-zone domain
// bitsets are built. Beyond it the bitsets would rival the column storage
// itself (one bit per dictionary entry per zone), so high-cardinality
// string columns carry min/max-less zones that never prune; equality
// pruning on them would rarely pay for the memory anyway.
const maxZoneDomainDict = 1 << 15

// ZoneSpan is one zone-map row range of a table. All columns of a table
// share the same spans (they are derived from the sealed block layout
// alone), so scan pipelines can segment a table once and index every
// column's ZoneEntry list by the same position.
type ZoneSpan struct {
	Start, End int
}

// Rows returns the number of rows the span covers.
func (z ZoneSpan) Rows() int { return z.End - z.Start }

// ZoneEntry summarizes rows [Start, End) of one column.
type ZoneEntry struct {
	Start, End int
	// NullCount is the number of NULL rows in the zone.
	NullCount int
	// Min and Max bound the non-NULL values of a numeric column
	// (Min=+Inf, Max=-Inf when every row is NULL); unused for strings.
	Min, Max float64
	// domain is the dictionary-code presence bitset of a string column:
	// bit c is set when code c occurs in the zone. hasDomain distinguishes
	// "no codes present" from "bitset not built" (dictionary too large).
	domain    []uint64
	hasDomain bool
}

// Rows returns the number of rows the zone covers.
func (z *ZoneEntry) Rows() int { return z.End - z.Start }

// AllNull reports whether every row of the zone is NULL.
func (z *ZoneEntry) AllNull() bool { return z.NullCount == z.Rows() }

// MayContainFloat reports whether a numeric equality predicate on v could
// match inside the zone. NaN never matches (NULL semantics).
func (z *ZoneEntry) MayContainFloat(v float64) bool {
	return v >= z.Min && v <= z.Max
}

// MayContainCode reports whether dictionary code c could occur in the
// zone. Codes minted after the zone was sealed cannot appear in it, so a
// built bitset answers exactly; without a bitset the zone claims nothing.
func (z *ZoneEntry) MayContainCode(c int32) bool {
	if c < 0 {
		return false
	}
	if !z.hasDomain {
		return true
	}
	w := int(c >> 6)
	if w >= len(z.domain) {
		return false
	}
	return z.domain[w]&(1<<(uint(c)&63)) != 0
}

// Domain returns the dictionary-code presence bitset of a string-column
// zone and whether one was built (large dictionaries skip the bitset). The
// returned slice is immutable. It exists so persistent stores can serialize
// zones and hand them back through MakeZoneEntry on restore.
func (z *ZoneEntry) Domain() ([]uint64, bool) { return z.domain, z.hasDomain }

// MakeZoneEntry reconstructs a zone entry from persisted fields. hasDomain
// distinguishes an empty-but-built bitset (all rows NULL: refutes every
// code) from an absent one (claims nothing).
func MakeZoneEntry(start, end, nullCount int, min, max float64, domain []uint64, hasDomain bool) ZoneEntry {
	return ZoneEntry{Start: start, End: end, NullCount: nullCount, Min: min, Max: max, domain: domain, hasDomain: hasDomain}
}

// zoneSpansFor chunks the sealed blocks into zone spans of at most zoneRows
// rows, reusing the prev spans covering [0, from) (always a block boundary:
// commits seal whole blocks).
func zoneSpansFor(blocks []Block, from int, prev []ZoneSpan, zoneRows int) []ZoneSpan {
	if zoneRows <= 0 {
		zoneRows = ZoneRows
	}
	spans := prev
	for _, b := range blocks {
		if b.End <= from {
			continue
		}
		for lo := b.Start; lo < b.End; lo += zoneRows {
			hi := lo + zoneRows
			if hi > b.End {
				hi = b.End
			}
			spans = append(spans, ZoneSpan{Start: lo, End: hi})
		}
	}
	return spans
}

// chooseZoneRows picks the zone granularity for a table about to be
// resealed by sampling how refutable its current zones are: the probability
// that a zone refutes a uniformly drawn equality literal, estimated per
// column from the existing summaries and maximized over columns (one
// well-clustered column is enough to make fine zones pay). High estimates
// choose ZoneRowsFine, middling ones keep the default, near-zero ones fall
// back to ZoneRowsCoarse.
func chooseZoneRows(tv *TableView) int {
	best := 0.0
	for _, c := range tv.cols {
		if p := colPruneEstimate(c); p > best {
			best = p
		}
	}
	switch {
	case best >= 0.75:
		return ZoneRowsFine
	case best >= 0.25:
		return ZoneRows
	default:
		return ZoneRowsCoarse
	}
}

// colPruneEstimate estimates the chance one zone of the column refutes a
// uniformly drawn equality literal: for dictionary columns, one minus the
// mean fraction of the dictionary present per zone; for numeric columns,
// one minus the mean fraction of the column's global value range a zone's
// min/max covers. Zones that are entirely NULL refute everything and score
// 1. Columns without usable summaries score 0 (never force fine zones).
func colPruneEstimate(c *ColView) float64 {
	if len(c.zones) == 0 {
		return 0
	}
	if c.Kind == KindString {
		dictLen := len(c.dict)
		if dictLen == 0 {
			return 0
		}
		sum, n := 0.0, 0
		for i := range c.zones {
			z := &c.zones[i]
			if !z.hasDomain {
				continue
			}
			n++
			if z.AllNull() {
				sum += 1
				continue
			}
			pop := 0
			for _, w := range z.domain {
				pop += bits.OnesCount64(w)
			}
			sum += 1 - float64(pop)/float64(dictLen)
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	gmin, gmax := math.Inf(1), math.Inf(-1)
	for i := range c.zones {
		z := &c.zones[i]
		if z.AllNull() {
			continue
		}
		gmin = math.Min(gmin, z.Min)
		gmax = math.Max(gmax, z.Max)
	}
	if !(gmax > gmin) {
		return 0 // constant, empty, or all-NULL column: range tests never prune
	}
	sum := 0.0
	for i := range c.zones {
		z := &c.zones[i]
		if z.AllNull() {
			sum += 1
			continue
		}
		sum += 1 - (z.Max-z.Min)/(gmax-gmin)
	}
	return sum / float64(len(c.zones))
}

// floatZones summarizes vals over the given spans starting at span index
// first, appending to prev.
func floatZones(vals []float64, spans []ZoneSpan, first int, prev []ZoneEntry) []ZoneEntry {
	zones := prev
	for _, sp := range spans[first:] {
		z := ZoneEntry{Start: sp.Start, End: sp.End}
		run := vals[sp.Start:sp.End]
		// Min/Max via the dispatched NaN-skipping fold (±0 sign latitude is
		// harmless here: MayContainFloat's range test treats ±0 as equal),
		// then one branch-free pass for the null count.
		z.Min, z.Max = vec.MinMaxF64(run)
		for _, v := range run {
			if v != v {
				z.NullCount++
			}
		}
		zones = append(zones, z)
	}
	return zones
}

// codeZones summarizes dictionary codes over the given spans starting at
// span index first, appending to prev. dictLen is the dictionary size at
// publication time; codes in sealed rows are always below it.
func codeZones(codes []int32, dictLen int, spans []ZoneSpan, first int, prev []ZoneEntry) []ZoneEntry {
	zones := prev
	buildDomain := dictLen <= maxZoneDomainDict
	words := (dictLen + 63) / 64
	for _, sp := range spans[first:] {
		z := ZoneEntry{Start: sp.Start, End: sp.End, Min: math.Inf(1), Max: math.Inf(-1)}
		run := codes[sp.Start:sp.End]
		if buildDomain {
			z.domain = make([]uint64, words)
			z.hasDomain = true
			for _, c := range run {
				if c < 0 {
					z.NullCount++
					continue
				}
				z.domain[c>>6] |= 1 << (uint(c) & 63)
			}
		} else {
			// Without a domain bitset the loop only counts NULLs; the
			// dispatched sign-bit popcount does that 8 codes at a time.
			z.NullCount = len(run) - vec.CountNonNegI32(run)
		}
		zones = append(zones, z)
	}
	return zones
}
