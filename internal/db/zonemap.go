package db

import (
	"math"

	"aggchecker/internal/vec"
)

// This file implements per-block zone maps: small immutable summaries of
// fixed-size row runs inside each sealed storage block, computed once at
// snapshot publication and exposed through the block-access contract. Scan
// kernels consult them to skip row runs that provably cannot contain a
// predicate literal (equality on dictionary codes via a per-zone domain
// bitset, numeric equality via a min/max range test) and to hoist NULL
// branches out of runs whose null count is zero. Zones never span a sealed
// block, so append-only commits extend the zone list without touching
// sealed entries — the property that lets delta scans prune too.

// ZoneRows is the zone-map granularity: the maximum number of rows one
// zone summarizes. It matches the execution kernel's block size so each
// kernel block of a zero-copy scan maps to exactly one zone.
const ZoneRows = 4096

// maxZoneDomainDict caps the dictionary size for which per-zone domain
// bitsets are built. Beyond it the bitsets would rival the column storage
// itself (one bit per dictionary entry per zone), so high-cardinality
// string columns carry min/max-less zones that never prune; equality
// pruning on them would rarely pay for the memory anyway.
const maxZoneDomainDict = 1 << 15

// ZoneSpan is one zone-map row range of a table. All columns of a table
// share the same spans (they are derived from the sealed block layout
// alone), so scan pipelines can segment a table once and index every
// column's ZoneEntry list by the same position.
type ZoneSpan struct {
	Start, End int
}

// Rows returns the number of rows the span covers.
func (z ZoneSpan) Rows() int { return z.End - z.Start }

// ZoneEntry summarizes rows [Start, End) of one column.
type ZoneEntry struct {
	Start, End int
	// NullCount is the number of NULL rows in the zone.
	NullCount int
	// Min and Max bound the non-NULL values of a numeric column
	// (Min=+Inf, Max=-Inf when every row is NULL); unused for strings.
	Min, Max float64
	// domain is the dictionary-code presence bitset of a string column:
	// bit c is set when code c occurs in the zone. hasDomain distinguishes
	// "no codes present" from "bitset not built" (dictionary too large).
	domain    []uint64
	hasDomain bool
}

// Rows returns the number of rows the zone covers.
func (z *ZoneEntry) Rows() int { return z.End - z.Start }

// AllNull reports whether every row of the zone is NULL.
func (z *ZoneEntry) AllNull() bool { return z.NullCount == z.Rows() }

// MayContainFloat reports whether a numeric equality predicate on v could
// match inside the zone. NaN never matches (NULL semantics).
func (z *ZoneEntry) MayContainFloat(v float64) bool {
	return v >= z.Min && v <= z.Max
}

// MayContainCode reports whether dictionary code c could occur in the
// zone. Codes minted after the zone was sealed cannot appear in it, so a
// built bitset answers exactly; without a bitset the zone claims nothing.
func (z *ZoneEntry) MayContainCode(c int32) bool {
	if c < 0 {
		return false
	}
	if !z.hasDomain {
		return true
	}
	w := int(c >> 6)
	if w >= len(z.domain) {
		return false
	}
	return z.domain[w]&(1<<(uint(c)&63)) != 0
}

// zoneSpansFor chunks the sealed blocks into zone spans, reusing the prev
// spans covering [0, from) (always a block boundary: commits seal whole
// blocks).
func zoneSpansFor(blocks []Block, from int, prev []ZoneSpan) []ZoneSpan {
	spans := prev
	for _, b := range blocks {
		if b.End <= from {
			continue
		}
		for lo := b.Start; lo < b.End; lo += ZoneRows {
			hi := lo + ZoneRows
			if hi > b.End {
				hi = b.End
			}
			spans = append(spans, ZoneSpan{Start: lo, End: hi})
		}
	}
	return spans
}

// floatZones summarizes vals over the given spans starting at span index
// first, appending to prev.
func floatZones(vals []float64, spans []ZoneSpan, first int, prev []ZoneEntry) []ZoneEntry {
	zones := prev
	for _, sp := range spans[first:] {
		z := ZoneEntry{Start: sp.Start, End: sp.End}
		run := vals[sp.Start:sp.End]
		// Min/Max via the dispatched NaN-skipping fold (±0 sign latitude is
		// harmless here: MayContainFloat's range test treats ±0 as equal),
		// then one branch-free pass for the null count.
		z.Min, z.Max = vec.MinMaxF64(run)
		for _, v := range run {
			if v != v {
				z.NullCount++
			}
		}
		zones = append(zones, z)
	}
	return zones
}

// codeZones summarizes dictionary codes over the given spans starting at
// span index first, appending to prev. dictLen is the dictionary size at
// publication time; codes in sealed rows are always below it.
func codeZones(codes []int32, dictLen int, spans []ZoneSpan, first int, prev []ZoneEntry) []ZoneEntry {
	zones := prev
	buildDomain := dictLen <= maxZoneDomainDict
	words := (dictLen + 63) / 64
	for _, sp := range spans[first:] {
		z := ZoneEntry{Start: sp.Start, End: sp.End, Min: math.Inf(1), Max: math.Inf(-1)}
		run := codes[sp.Start:sp.End]
		if buildDomain {
			z.domain = make([]uint64, words)
			z.hasDomain = true
			for _, c := range run {
				if c < 0 {
					z.NullCount++
					continue
				}
				z.domain[c>>6] |= 1 << (uint(c) & 63)
			}
		} else {
			// Without a domain bitset the loop only counts NULLs; the
			// dispatched sign-bit popcount does that 8 codes at a time.
			z.NullCount = len(run) - vec.CountNonNegI32(run)
		}
		zones = append(zones, z)
	}
	return zones
}
