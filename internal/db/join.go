package db

import (
	"fmt"
	"math"
	"strconv"

	"aggchecker/internal/vec"
)

// JoinView is a materialized equi-join of one or more tables along PK-FK
// paths, evaluated over one immutable Snapshot: the view's row set is frozen
// at the snapshot's version, so a scan mid-flight is never affected by
// concurrent appends. It exposes, for each participating table, the mapping
// from joined row number to that table's row number, which the executor
// uses to read aggregation and predicate columns without copying data. A
// nil row map encodes the identity mapping: single-table views (the common
// case) carry no per-row state at all, and their accessors read snapshot
// column storage directly (the zero-copy fast path of the block-access
// contract).
type JoinView struct {
	snap    *Snapshot
	tables  []string
	rowMaps map[string][]int32 // nil slice = identity (zero-copy fast path)
	n       int
	pruned  int // zones skipped whole by join-key zone pruning
}

// BuildJoinView joins the given tables over the database's latest snapshot.
// It is the convenience form of BuildSnapshotView.
func BuildJoinView(d *Database, tables []string) (*JoinView, error) {
	return BuildSnapshotView(d.Snapshot(), tables)
}

// BuildSnapshotView joins the given tables over one snapshot. Single-table
// views cost O(1): the identity row map is never materialized and accessors
// read columns directly. Inner-join semantics: rows with NULL or dangling
// foreign keys are dropped.
func BuildSnapshotView(s *Snapshot, tables []string) (*JoinView, error) {
	if len(tables) == 0 {
		return nil, fmt.Errorf("db: join over zero tables")
	}
	base := s.Table(tables[0])
	if base == nil {
		return nil, fmt.Errorf("db: unknown table %s", tables[0])
	}
	v := &JoinView{snap: s, tables: []string{tables[0]}, rowMaps: make(map[string][]int32), n: base.NumRows()}
	v.rowMaps[tables[0]] = nil // identity

	steps, err := s.JoinPath(tables)
	if err != nil {
		return nil, err
	}
	if len(steps) > 0 {
		// Multi-table views materialize the base identity once so join
		// steps can extend it; single-table views skip the O(n) allocation.
		ident := make([]int32, base.NumRows())
		for i := range ident {
			ident[i] = int32(i)
		}
		v.rowMaps[tables[0]] = ident
	}
	for _, step := range steps {
		if err := v.apply(step); err != nil {
			return nil, err
		}
	}
	return v, nil
}

// joinKey canonicalizes a join-column value at a row; ok is false for NULL.
func joinKey(c *ColView, row int32) (string, bool) {
	if c.IsNull(int(row)) {
		return "", false
	}
	if c.Kind == KindString {
		return c.dict[c.codes[row]], true
	}
	return strconv.FormatFloat(c.floats[row], 'g', -1, 64), true
}

// keyIndex builds value -> row ids for a column view.
func keyIndex(c *ColView) map[string][]int32 {
	idx := make(map[string][]int32)
	for i := 0; i < c.Len(); i++ {
		if k, ok := joinKey(c, int32(i)); ok {
			idx[k] = append(idx[k], int32(i))
		}
	}
	return idx
}

func (v *JoinView) apply(step JoinStep) error {
	var (
		haveTable, haveCol string // side already in the view
		addCol             string // join column of the table being added
	)
	if step.Forward {
		haveTable, haveCol = step.FK.FromTable, step.FK.FromColumn
		addCol = step.FK.ToColumn
	} else {
		haveTable, haveCol = step.FK.ToTable, step.FK.ToColumn
		addCol = step.FK.FromColumn
	}
	have := v.snap.Table(haveTable)
	add := v.snap.Table(step.Add)
	if have == nil || add == nil {
		return fmt.Errorf("db: join step references unknown table")
	}
	haveMap, ok := v.rowMaps[haveTable]
	if !ok {
		return fmt.Errorf("db: join step from table %s not yet in view", haveTable)
	}
	hc := have.Column(haveCol)
	ac := add.Column(addCol)
	if hc == nil || ac == nil {
		return fmt.Errorf("db: join column missing (%s.%s or %s.%s)", haveTable, haveCol, step.Add, addCol)
	}
	idx := keyIndex(ac)

	newMaps := make(map[string][]int32, len(v.rowMaps)+1)
	for t := range v.rowMaps {
		newMaps[t] = nil
	}
	newMaps[step.Add] = nil
	newN := 0
	join := func(lo, hi int) {
		for r := lo; r < hi; r++ {
			k, ok := joinKey(hc, haveMap[r])
			if !ok {
				continue // NULL join key: inner join drops the row
			}
			matches := idx[k]
			for _, m := range matches {
				for t, rm := range v.rowMaps {
					newMaps[t] = append(newMaps[t], rm[r])
				}
				newMaps[step.Add] = append(newMaps[step.Add], m)
				newN++
			}
		}
	}
	// Join-key zone pruning: on the first step the have side is still in
	// storage order, so the join column's zone maps align with view rows and
	// a zone refuting every add-side key holds only NULL or dangling foreign
	// keys — rows the inner join drops anyway. Skip those zones whole.
	if keep := danglingKeyZones(hc, idx, len(v.tables) == 1 && haveTable == v.tables[0]); keep != nil {
		covered := 0
		for zi, z := range hc.zones {
			if keep[zi] {
				join(z.Start, z.End)
			} else {
				v.pruned++
			}
			covered = z.End
		}
		join(covered, v.n) // rows past the last zone (none today; belt and braces)
	} else {
		join(0, v.n)
	}
	v.rowMaps = newMaps
	v.n = newN
	v.tables = append(v.tables, step.Add)
	return nil
}

// maxPruneKeys caps the add-side key count for which build-time zone
// pruning is attempted: beyond it the per-zone refutation test would cost
// more than the row scan it saves (dimension tables the FK graph points at
// are orders of magnitude smaller).
const maxPruneKeys = 4096

// danglingKeyZones returns, when pruning applies, one keep flag per zone of
// the have-side join column: false means no add-side key can occur in the
// zone. Returns nil (scan everything) when the have side is not in storage
// order, the column has no zones, or the key set is too large.
func danglingKeyZones(hc *ColView, idx map[string][]int32, identity bool) []bool {
	if !identity || len(hc.zones) == 0 || len(idx) > maxPruneKeys {
		return nil
	}
	var codes []int32
	var floats []float64
	switch hc.Kind {
	case KindString:
		for k := range idx {
			if c := hc.CodeOf(k); c >= 0 {
				codes = append(codes, c)
			}
		}
	case KindFloat:
		for k := range idx {
			if f, err := strconv.ParseFloat(k, 64); err == nil {
				floats = append(floats, f)
			}
		}
	default:
		return nil
	}
	keep := make([]bool, len(hc.zones))
	for zi := range hc.zones {
		z := &hc.zones[zi]
		if z.AllNull() {
			continue
		}
		for _, c := range codes {
			if z.MayContainCode(c) {
				keep[zi] = true
				break
			}
		}
		if !keep[zi] {
			for _, f := range floats {
				if z.MayContainFloat(f) {
					keep[zi] = true
					break
				}
			}
		}
	}
	return keep
}

// PrunedZones reports how many whole zones join-key pruning skipped while
// materializing the view (0 for single-table views).
func (v *JoinView) PrunedZones() int { return v.pruned }

// NumRows returns the joined row count.
func (v *JoinView) NumRows() int { return v.n }

// ZoneSpans returns the shared zone-map segmentation of the view's rows on
// the zero-copy path: for single-table views, joined row numbers equal
// table row numbers, so the base table's spans segment the scan and every
// direct accessor's Zones() list aligns with them. Materialized joins
// return nil — their row maps shuffle storage order, voiding zone
// locality.
func (v *JoinView) ZoneSpans() []ZoneSpan {
	if len(v.tables) != 1 || v.rowMaps[v.tables[0]] != nil {
		return nil
	}
	return v.snap.Table(v.tables[0]).ZoneSpans()
}

// Tables returns the joined tables in join order.
func (v *JoinView) Tables() []string { return v.tables }

// Snapshot returns the snapshot the view was built over.
func (v *JoinView) Snapshot() *Snapshot { return v.snap }

// ColumnAccessor resolves a (table, column) pair into direct accessors over
// joined rows. A nil rowMap means the accessor is direct: joined row numbers
// equal table row numbers and block reads alias snapshot column storage.
type ColumnAccessor struct {
	col    *ColView
	rowMap []int32
}

// Accessor returns an accessor for table.column, or an error if either is
// not part of the view.
func (v *JoinView) Accessor(table, column string) (ColumnAccessor, error) {
	rm, ok := v.rowMaps[table]
	if !ok {
		return ColumnAccessor{}, fmt.Errorf("db: table %s not in join view", table)
	}
	t := v.snap.Table(table)
	c := t.Column(column)
	if c == nil {
		return ColumnAccessor{}, fmt.Errorf("db: column %s.%s not found", table, column)
	}
	return ColumnAccessor{col: c, rowMap: rm}, nil
}

// Column returns the underlying snapshot column view.
func (a ColumnAccessor) Column() *ColView { return a.col }

// Direct reports whether the accessor reads column storage without a row-map
// indirection (single-table views). Direct accessors serve zero-copy blocks.
func (a ColumnAccessor) Direct() bool { return a.rowMap == nil }

// Zones returns the column's zone-map entries when the accessor is direct
// (aligned with the view's ZoneSpans), or nil when reads gather through a
// row map and zone pruning does not apply.
func (a ColumnAccessor) Zones() []ZoneEntry {
	if a.rowMap != nil {
		return nil
	}
	return a.col.zones
}

// IsNull reports NULL at joined row r.
func (a ColumnAccessor) IsNull(r int) bool {
	if a.rowMap != nil {
		r = int(a.rowMap[r])
	}
	return a.col.IsNull(r)
}

// Float returns the numeric value at joined row r (NaN when NULL).
func (a ColumnAccessor) Float(r int) float64 {
	if a.col.Kind != KindFloat {
		return math.NaN()
	}
	if a.rowMap != nil {
		r = int(a.rowMap[r])
	}
	return a.col.floats[r]
}

// Code returns the dictionary code at joined row r (-1 when NULL).
func (a ColumnAccessor) Code(r int) int32 {
	if a.rowMap != nil {
		r = int(a.rowMap[r])
	}
	return a.col.Code(r)
}

// FloatBlock returns the numeric values at joined rows [start, start+n).
// On the zero-copy fast path (direct accessor) the returned slice aliases
// snapshot column storage and direct is true; otherwise the values are
// gathered through the row map into buf (which must have length >= n) and
// direct is false. NaN encodes NULL, mirroring Float. The returned slice
// must not be modified. Non-numeric columns yield all-NaN blocks, mirroring
// Float's permissive kind handling.
func (a ColumnAccessor) FloatBlock(start, n int, buf []float64) (vals []float64, direct bool) {
	if a.col.Kind != KindFloat {
		// Callers on the zero-copy path legitimately pass no buffer.
		if len(buf) < n {
			buf = make([]float64, n)
		}
		buf = buf[:n]
		for i := range buf {
			buf[i] = math.NaN()
		}
		return buf, false
	}
	if a.rowMap == nil {
		return a.col.floats[start : start+n], true
	}
	buf = buf[:n]
	vec.GatherF64(buf, a.col.floats, a.rowMap[start:start+n])
	return buf, false
}

// CodeBlock returns the dictionary codes at joined rows [start, start+n),
// with the same zero-copy / gather split as FloatBlock. -1 encodes NULL.
// The returned slice must not be modified. Non-string columns yield all -1,
// mirroring Code.
func (a ColumnAccessor) CodeBlock(start, n int, buf []int32) (vals []int32, direct bool) {
	if a.col.Kind != KindString {
		// Callers on the zero-copy path legitimately pass no buffer.
		if len(buf) < n {
			buf = make([]int32, n)
		}
		buf = buf[:n]
		for i := range buf {
			buf[i] = -1
		}
		return buf, false
	}
	if a.rowMap == nil {
		return a.col.codes[start : start+n], true
	}
	buf = buf[:n]
	vec.GatherI32(buf, a.col.codes, a.rowMap[start:start+n])
	return buf, false
}
