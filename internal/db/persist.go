package db

// This file defines the seam between the in-memory snapshot-versioned store
// and a durable columnar store (package colstore implements one). The
// database pushes every publication through a Persister; on restart the
// store hands back a PersistedDB — column data (typically mmap-backed),
// sealed-block layout, zone maps, and version lineage — and
// RestoreDatabase rebuilds the database plus a fully formed first snapshot
// around it without scanning a single data page.

// Persister receives every snapshot a Database publishes, in version order,
// under the database's mutation lock (implementations must not call back
// into the database). A publication within the same structural epoch is an
// append-only delta over the previous one; an epoch change (AddTable,
// AddForeignKey, Compact) means block layout and zone maps were rebuilt
// and must be re-recorded wholesale. Publish must be idempotent for a
// version it has already persisted, and must make the publication durable
// before returning: once it returns nil, a crash-restarted store reopens at
// this version or a later one.
type Persister interface {
	Publish(s *Snapshot) error
}

// PersistedDB is the reopened state of a durable store: everything needed
// to reconstruct a Database and its latest published Snapshot without
// re-deriving anything from column data. Data slices may alias mmap'd
// file pages; they are handed to the database as-is (len == cap, so a
// later append reallocates to the heap instead of writing file pages).
type PersistedDB struct {
	Name           string
	Version, Epoch uint64
	Tables         []PersistedTable
	FKs            []ForeignKey
}

// PersistedTable is one table's reopened state.
type PersistedTable struct {
	Name       string
	PrimaryKey string
	// ZoneRows is the zone granularity the persisted zones were chunked
	// with (0 = package default).
	ZoneRows int
	Blocks   []Block
	Cols     []PersistedColumn
}

// PersistedColumn is one column's reopened state. Exactly one of Floats or
// Codes is populated, per Kind.
type PersistedColumn struct {
	Name        string
	Description string
	Kind        Kind
	Integral    bool

	Floats []float64
	Codes  []int32
	Dict   []string

	// NullCount and Zones reproduce the snapshot-side summaries so the
	// restored snapshot is complete without reading the data slices.
	NullCount int
	Zones     []ZoneEntry
}
