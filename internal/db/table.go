package db

import (
	"fmt"
)

// Table is a named collection of equal-length columns, optionally with a
// primary-key column (required only when the table participates in joins).
type Table struct {
	Name       string
	Columns    []*Column
	PrimaryKey string // name of the PK column, "" if none

	byName map[string]*Column

	// zoneRows is the table's zone-map granularity in rows (0 = the package
	// default ZoneRows). It changes only when the compactor reseals the
	// table's blocks, which republishes every zone under a fresh structural
	// epoch, so all zones of one snapshot share a single granularity.
	zoneRows int
}

// ZoneGranularity returns the table's zone-map chunking in rows.
func (t *Table) ZoneGranularity() int {
	if t.zoneRows <= 0 {
		return ZoneRows
	}
	return t.zoneRows
}

// NewTable creates a table from columns. All columns must have equal length.
func NewTable(name string, cols ...*Column) (*Table, error) {
	t := &Table{Name: name, Columns: cols, byName: make(map[string]*Column, len(cols))}
	n := -1
	for _, c := range cols {
		if _, dup := t.byName[c.Name]; dup {
			return nil, fmt.Errorf("db: table %s: duplicate column %s", name, c.Name)
		}
		t.byName[c.Name] = c
		if n == -1 {
			n = c.Len()
		} else if c.Len() != n {
			return nil, fmt.Errorf("db: table %s: column %s has %d rows, want %d", name, c.Name, c.Len(), n)
		}
	}
	return t, nil
}

// MustNewTable is NewTable that panics on error; for tests and embedded data.
func MustNewTable(name string, cols ...*Column) *Table {
	t, err := NewTable(name, cols...)
	if err != nil {
		panic(err)
	}
	return t
}

// NumRows returns the row count.
func (t *Table) NumRows() int {
	if len(t.Columns) == 0 {
		return 0
	}
	return t.Columns[0].Len()
}

// Column returns the named column, or nil.
func (t *Table) Column(name string) *Column { return t.byName[name] }

// NumericColumns returns the columns usable as aggregation columns.
func (t *Table) NumericColumns() []*Column {
	var out []*Column
	for _, c := range t.Columns {
		if c.Kind == KindFloat {
			out = append(out, c)
		}
	}
	return out
}

// StringColumns returns the dictionary-encoded text columns.
func (t *Table) StringColumns() []*Column {
	var out []*Column
	for _, c := range t.Columns {
		if c.Kind == KindString {
			out = append(out, c)
		}
	}
	return out
}
