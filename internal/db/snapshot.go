package db

import (
	"fmt"
	"math"
	"strconv"
	"sync"
)

// This file implements the snapshot side of the storage contract. A Database
// is the mutable head: rows are staged with Append and sealed into immutable
// Blocks by Commit, which publishes a new Snapshot under a monotonically
// increasing version. A Snapshot is a frozen, consistent view — per-column
// slice headers captured at publication time — so readers that hold one are
// never affected by later appends (copy-on-write at the slice-header level:
// committed storage is append-only and sealed prefixes are never rewritten).
// Query execution (join views, cube kernels) runs entirely over Snapshots;
// the engine keys its caches by snapshot version and delta-scans only the
// blocks sealed since the version it has cached.

// Block is one sealed, immutable run of rows of a table. Every Commit seals
// exactly one block per table that received staged rows; the initial load
// is sealed as one block per table when the first snapshot is published.
// Blocks are the granularity of incremental cube maintenance: a cached cube
// at version N is brought to version N+1 by scanning only the blocks with
// Start at or beyond the rows it already covers.
type Block struct {
	// Seq is the database-wide sequence number of the block (monotonic
	// across tables, in seal order).
	Seq int
	// Start and End delimit the row range [Start, End) in table order.
	Start, End int
}

// Rows returns the number of rows the block holds.
func (b Block) Rows() int { return b.End - b.Start }

// ColView is the immutable view of one column at a snapshot version. The
// exported fields mirror Column's metadata; the data accessors are bounded
// by the snapshot's row count via captured slice headers, so they are safe
// to use concurrently with Append/Commit on the owning database.
type ColView struct {
	Name        string
	Description string
	Kind        Kind
	Integral    bool

	floats  []float64
	codes   []int32
	dict    []string
	nullCnt int
	zones   []ZoneEntry

	// codeOf is built lazily over the captured dictionary so CodeOf never
	// touches the live column's mutable dictionary index.
	codeOnce sync.Once
	codeOf   map[string]int32
}

// Len returns the number of rows visible in this snapshot.
func (c *ColView) Len() int {
	if c.Kind == KindString {
		return len(c.codes)
	}
	return len(c.floats)
}

// IsNull reports whether row i holds NULL.
func (c *ColView) IsNull(i int) bool {
	if c.Kind == KindString {
		return c.codes[i] < 0
	}
	return math.IsNaN(c.floats[i])
}

// Float returns the numeric value at row i (NaN when NULL or non-numeric).
func (c *ColView) Float(i int) float64 {
	if c.Kind == KindFloat {
		return c.floats[i]
	}
	return math.NaN()
}

// Code returns the dictionary code at row i (-1 when NULL or numeric).
func (c *ColView) Code(i int) int32 {
	if c.Kind == KindString {
		return c.codes[i]
	}
	return -1
}

// Floats returns the raw numeric storage of the snapshot (NaN encodes NULL),
// or nil for string columns. The slice must not be modified.
func (c *ColView) Floats() []float64 {
	if c.Kind != KindFloat {
		return nil
	}
	return c.floats
}

// Codes returns the raw dictionary codes of the snapshot (-1 encodes NULL),
// or nil for numeric columns. The slice must not be modified.
func (c *ColView) Codes() []int32 {
	if c.Kind != KindString {
		return nil
	}
	return c.codes
}

// Dictionary returns the distinct non-null string values visible in this
// snapshot, in first-seen order. The returned slice must not be modified.
func (c *ColView) Dictionary() []string {
	if c.Kind != KindString {
		return nil
	}
	return c.dict
}

// CodeOf returns the dictionary code of value v, or -1 if v does not occur
// in this snapshot. The lookup index is built lazily over the captured
// dictionary, so it never races with appends on the live column.
func (c *ColView) CodeOf(v string) int32 {
	if c.Kind != KindString {
		return -1
	}
	c.codeOnce.Do(func() {
		m := make(map[string]int32, len(c.dict))
		for i, s := range c.dict {
			m[s] = int32(i)
		}
		c.codeOf = m
	})
	if id, ok := c.codeOf[v]; ok {
		return id
	}
	return -1
}

// NullCount returns the number of NULL rows visible in this snapshot.
func (c *ColView) NullCount() int { return c.nullCnt }

// Zones returns the column's zone-map entries, aligned positionally with
// the owning TableView's ZoneSpans. The returned slice is immutable.
func (c *ColView) Zones() []ZoneEntry { return c.zones }

// HasNulls reports whether any visible row holds NULL. Scan kernels use it
// to hoist the per-row NULL branch out of columns that cannot produce one.
func (c *ColView) HasNulls() bool { return c.nullCnt > 0 }

// StringAt formats the value at row i for display.
func (c *ColView) StringAt(i int) string {
	if c.IsNull(i) {
		return ""
	}
	if c.Kind == KindString {
		return c.dict[c.codes[i]]
	}
	if c.Integral {
		return strconv.FormatInt(int64(c.floats[i]), 10)
	}
	return strconv.FormatFloat(c.floats[i], 'g', -1, 64)
}

// TableView is the immutable view of one table at a snapshot version.
type TableView struct {
	Name       string
	PrimaryKey string

	cols     []*ColView
	byName   map[string]*ColView
	rows     int
	blocks   []Block
	spans    []ZoneSpan
	zoneRows int
}

// NumRows returns the row count visible in this snapshot.
func (t *TableView) NumRows() int { return t.rows }

// Columns returns the column views in declaration order.
func (t *TableView) Columns() []*ColView { return t.cols }

// Column returns the named column view, or nil.
func (t *TableView) Column(name string) *ColView { return t.byName[name] }

// Blocks returns the sealed blocks covering the snapshot's rows, in seal
// order. The returned slice must not be modified.
func (t *TableView) Blocks() []Block { return t.blocks }

// ZoneSpans returns the table's zone-map segmentation: consecutive row
// ranges of at most ZoneGranularity rows that never cross a sealed block.
// Every column's Zones() list is positionally aligned with these spans. The
// returned slice is immutable.
func (t *TableView) ZoneSpans() []ZoneSpan { return t.spans }

// ZoneGranularity returns the zone chunking (rows per zone) this view was
// built with — the package default until the compactor reseals the table
// with an adaptively sampled granularity.
func (t *TableView) ZoneGranularity() int {
	if t.zoneRows <= 0 {
		return ZoneRows
	}
	return t.zoneRows
}

// Snapshot is an immutable, versioned view of a whole database. Snapshots
// are cheap (per-column slice headers, no data copies) and safe to read
// concurrently with Append/Commit on the owning Database.
type Snapshot struct {
	db      *Database // identity only; data reads go through the views
	name    string
	version uint64
	epoch   uint64
	tables  []*TableView
	byName  map[string]*TableView
	fks     []ForeignKey
}

// Of reports whether the snapshot was published by the given database.
// Consumers pinning snapshots across API layers use it to reject a
// snapshot that belongs to a different store.
func (s *Snapshot) Of(d *Database) bool { return s.db == d }

// Version returns the snapshot's monotonically increasing version. Every
// Commit that seals rows bumps it, as does any structural change (AddTable,
// AddForeignKey) followed by a snapshot rebuild.
func (s *Snapshot) Version() uint64 { return s.version }

// Epoch identifies the structural generation of the schema: it bumps on
// AddTable/AddForeignKey but not on row appends. Incremental cube
// maintenance requires the cached and current snapshots to share an epoch —
// across epochs the same version delta may not be a pure row append.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// DatabaseName returns the owning database's name.
func (s *Snapshot) DatabaseName() string { return s.name }

// Tables returns the table views in registration order.
func (s *Snapshot) Tables() []*TableView { return s.tables }

// Table returns the named table view, or nil.
func (s *Snapshot) Table(name string) *TableView { return s.byName[name] }

// NumRows returns the visible row count of a table (0 when unknown).
func (s *Snapshot) NumRows(table string) int {
	if t := s.byName[table]; t != nil {
		return t.rows
	}
	return 0
}

// TotalRows returns the visible row count summed over all tables.
func (s *Snapshot) TotalRows() int {
	n := 0
	for _, t := range s.tables {
		n += t.rows
	}
	return n
}

// BlocksSince returns the table's blocks whose rows start at or beyond row
// fromRow — exactly the blocks sealed after a snapshot that covered fromRow
// rows, because commits seal whole blocks at row-count boundaries.
func (s *Snapshot) BlocksSince(table string, fromRow int) []Block {
	t := s.byName[table]
	if t == nil {
		return nil
	}
	for i, b := range t.blocks {
		if b.Start >= fromRow {
			return t.blocks[i:]
		}
	}
	return nil
}

// ForeignKeys returns the PK-FK edges captured by the snapshot.
func (s *Snapshot) ForeignKeys() []ForeignKey { return s.fks }

// JoinPath returns the FK steps connecting the given tables within this
// snapshot; see Database.JoinPath.
func (s *Snapshot) JoinPath(tables []string) ([]JoinStep, error) {
	return joinPathOver(s.fks, func(t string) bool { return s.byName[t] != nil }, tables)
}

// buildSnapshotLocked captures the current sealed state of the database as
// an immutable snapshot. prev, when non-nil and still structurally
// compatible, donates unchanged table views and incremental null counts so
// publication cost is proportional to the appended rows, not the table size.
// Callers hold d.mu.
func buildSnapshotLocked(d *Database, prev *Snapshot, version, epoch uint64) *Snapshot {
	s := &Snapshot{
		db:      d,
		name:    d.Name,
		version: version,
		epoch:   epoch,
		byName:  make(map[string]*TableView, len(d.tables)),
		fks:     append([]ForeignKey(nil), d.fks...),
	}
	for _, t := range d.tables {
		var pt *TableView
		if prev != nil && prev.epoch == epoch {
			pt = prev.byName[t.Name]
		}
		tv := buildTableView(t, d.blocks[t.Name], pt)
		s.tables = append(s.tables, tv)
		s.byName[t.Name] = tv
	}
	return s
}

func buildTableView(t *Table, blocks []Block, prev *TableView) *TableView {
	rows := t.NumRows()
	if prev != nil && prev.rows == rows && len(prev.blocks) == len(blocks) && len(prev.cols) == len(t.Columns) {
		// Nothing appended to this table since the previous snapshot: the
		// captured headers are still exact, so the view is reused wholesale.
		return prev
	}
	tv := &TableView{
		Name:       t.Name,
		PrimaryKey: t.PrimaryKey,
		rows:       rows,
		blocks:     append([]Block(nil), blocks...),
		byName:     make(map[string]*ColView, len(t.Columns)),
		zoneRows:   t.ZoneGranularity(),
	}
	// Zone spans extend the previous snapshot's: sealed blocks are
	// append-only and commits seal at block boundaries, so the prefix of
	// spans covering the previously visible rows is still exact. (The
	// granularity can only change at compaction, which bumps the epoch and
	// rebuilds without a prev view, so extending never mixes granularities.)
	prevRows := 0
	var prevSpans []ZoneSpan
	if prev != nil {
		prevRows = prev.rows
		prevSpans = prev.spans
	}
	tv.spans = zoneSpansFor(blocks, prevRows, prevSpans, tv.zoneRows)
	for i, c := range t.Columns {
		var pc *ColView
		if prev != nil && i < len(prev.cols) && prev.cols[i].Name == c.Name && prev.cols[i].Kind == c.Kind {
			pc = prev.cols[i]
		}
		cv := buildColView(c, pc, tv.spans)
		tv.cols = append(tv.cols, cv)
		tv.byName[c.Name] = cv
	}
	return tv
}

func buildColView(c *Column, prev *ColView, spans []ZoneSpan) *ColView {
	cv := &ColView{
		Name:        c.Name,
		Description: c.Description,
		Kind:        c.Kind,
		Integral:    c.Integral,
		floats:      c.floats,
		codes:       c.codes,
		dict:        c.dict,
	}
	// Null counting and zone maps are incremental: reuse the previous
	// snapshot's count and zone entries and scan only the appended suffix.
	// Sealed storage is append-only, so neither can change for the prefix.
	lo := 0
	var prevZones []ZoneEntry
	if prev != nil && prev.Len() <= cv.Len() {
		cv.nullCnt = prev.nullCnt
		lo = prev.Len()
		prevZones = prev.zones
	}
	if c.Kind == KindString {
		for _, code := range c.codes[lo:] {
			if code < 0 {
				cv.nullCnt++
			}
		}
		cv.zones = codeZones(cv.codes, len(cv.dict), spans, len(prevZones), prevZones)
	} else {
		for _, v := range c.floats[lo:] {
			if math.IsNaN(v) {
				cv.nullCnt++
			}
		}
		cv.zones = floatZones(cv.floats, spans, len(prevZones), prevZones)
	}
	return cv
}

// normalizeCell converts a staged cell value to the column's storage
// representation: a float64 (NaN = NULL) for numeric columns, a string
// ("" = NULL) for string columns.
func normalizeCell(c *Column, v any) (fv float64, sv string, err error) {
	if c.Kind == KindFloat {
		switch x := v.(type) {
		case nil:
			return math.NaN(), "", nil
		case float64:
			return x, "", nil
		case float32:
			return float64(x), "", nil
		case int:
			return float64(x), "", nil
		case int64:
			return float64(x), "", nil
		case string:
			if x == "" {
				return math.NaN(), "", nil
			}
			f, perr := parseNumericCell(x)
			if perr != nil {
				return 0, "", fmt.Errorf("db: column %s: cannot parse %q as number", c.Name, x)
			}
			return f, "", nil
		default:
			return 0, "", fmt.Errorf("db: column %s: unsupported value type %T", c.Name, v)
		}
	}
	switch x := v.(type) {
	case nil:
		return 0, "", nil
	case string:
		return 0, x, nil
	case float64:
		return 0, strconv.FormatFloat(x, 'g', -1, 64), nil
	case int:
		return 0, strconv.Itoa(x), nil
	case int64:
		return 0, strconv.FormatInt(x, 10), nil
	default:
		return 0, "", fmt.Errorf("db: column %s: unsupported value type %T", c.Name, v)
	}
}
