package db

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// ForeignKey declares that FromTable.FromColumn references ToTable's
// primary-key column ToColumn (an N:1 edge in the schema graph).
type ForeignKey struct {
	FromTable, FromColumn string
	ToTable, ToColumn     string
}

// Database is a set of tables connected by PK-FK constraints. The paper
// assumes an acyclic schema (§6.3); AddForeignKey enforces it.
//
// The database is the mutable head of a snapshot-versioned store: Append
// stages rows, Commit seals them into immutable blocks and publishes the
// next Snapshot, and Snapshot returns the latest published view. All
// structural and row mutations are serialized by an internal lock; any
// number of readers may hold Snapshots concurrently with mutation. After
// the first Snapshot has been published, column data must only be mutated
// through Append/Commit — direct Column appends bypass versioning.
type Database struct {
	Name   string
	tables []*Table
	byName map[string]*Table
	fks    []ForeignKey

	// mu serializes mutation (Append/Commit/AddTable/AddForeignKey) and
	// snapshot publication; snap is the latest published snapshot (nil
	// until first use or after a structural change, rebuilt lazily).
	mu       sync.Mutex
	snap     atomic.Pointer[Snapshot]
	lastSnap *Snapshot // previous publication, for incremental rebuilds
	staged   map[string][]stagedRow
	blocks   map[string][]Block
	version  uint64
	epoch    uint64
	blockSeq int

	// persister, when set, receives every published snapshot so sealed
	// blocks and zone maps reach durable storage. A persist failure detaches
	// the persister and is remembered in persistErr (surfaced by Commit and
	// PersistError); the in-memory database keeps working.
	persister  Persister
	persistErr error
}

// stagedRow is one appended row, already normalized to storage values.
type stagedRow struct {
	floats  []float64
	strings []string
}

// NewDatabase creates an empty database.
func NewDatabase(name string) *Database {
	return &Database{
		Name:   name,
		byName: make(map[string]*Table),
		staged: make(map[string][]stagedRow),
		blocks: make(map[string][]Block),
	}
}

// AddTable registers a table; names must be unique. Adding a table is a
// structural change: it bumps the schema epoch and the next Snapshot call
// publishes a fresh version.
func (d *Database) AddTable(t *Table) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.byName[t.Name]; dup {
		return fmt.Errorf("db: duplicate table %s", t.Name)
	}
	d.tables = append(d.tables, t)
	d.byName[t.Name] = t
	d.invalidateLocked()
	return nil
}

// MustAddTable is AddTable that panics on error.
func (d *Database) MustAddTable(t *Table) {
	if err := d.AddTable(t); err != nil {
		panic(err)
	}
}

// AddForeignKey registers a PK-FK edge, validating both endpoints and
// rejecting edges that would introduce a cycle in the (undirected) schema
// graph, as the join-path logic assumes acyclicity. Like AddTable, this is
// a structural change and bumps the schema epoch.
func (d *Database) AddForeignKey(fk ForeignKey) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	from := d.byName[fk.FromTable]
	to := d.byName[fk.ToTable]
	if from == nil || to == nil {
		return fmt.Errorf("db: foreign key references unknown table %s or %s", fk.FromTable, fk.ToTable)
	}
	if from.Column(fk.FromColumn) == nil {
		return fmt.Errorf("db: table %s has no column %s", fk.FromTable, fk.FromColumn)
	}
	if to.Column(fk.ToColumn) == nil {
		return fmt.Errorf("db: table %s has no column %s", fk.ToTable, fk.ToColumn)
	}
	if to.PrimaryKey != fk.ToColumn {
		return fmt.Errorf("db: foreign key target %s.%s is not the primary key", fk.ToTable, fk.ToColumn)
	}
	if d.connectedLocked(fk.FromTable, fk.ToTable) {
		return fmt.Errorf("db: foreign key %s->%s would create a cycle", fk.FromTable, fk.ToTable)
	}
	d.fks = append(d.fks, fk)
	d.invalidateLocked()
	return nil
}

// MustAddForeignKey is AddForeignKey that panics on error.
func (d *Database) MustAddForeignKey(fk ForeignKey) {
	if err := d.AddForeignKey(fk); err != nil {
		panic(err)
	}
}

// invalidateLocked drops the published snapshot after a structural change;
// the next Snapshot call rebuilds it under a fresh version and epoch.
// Callers hold d.mu.
func (d *Database) invalidateLocked() {
	d.epoch++
	d.snap.Store(nil)
}

// Snapshot returns the latest published snapshot, building and publishing
// one (sealing any pre-existing unsealed rows as initial blocks) on first
// use or after a structural change. Snapshots are immutable and cheap; hold
// one for the duration of a consistent read.
func (d *Database) Snapshot() *Snapshot {
	if s := d.snap.Load(); s != nil {
		return s
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.publishLocked()
}

// Version returns the version the next Snapshot call will observe (the
// latest published version, or the pending one after an invalidation).
func (d *Database) Version() uint64 {
	return d.Snapshot().Version()
}

// publishLocked seals initial blocks for tables with unsealed rows, builds
// the snapshot, and publishes it. Callers hold d.mu.
func (d *Database) publishLocked() *Snapshot {
	if s := d.snap.Load(); s != nil {
		return s
	}
	for _, t := range d.tables {
		sealed := 0
		if bs := d.blocks[t.Name]; len(bs) > 0 {
			sealed = bs[len(bs)-1].End
		}
		if rows := t.NumRows(); rows > sealed {
			d.blocks[t.Name] = append(d.blocks[t.Name], Block{Seq: d.blockSeq, Start: sealed, End: rows})
			d.blockSeq++
		}
	}
	d.version++
	s := buildSnapshotLocked(d, d.lastSnap, d.version, d.epoch)
	d.lastSnap = s
	d.persistLocked(s)
	d.snap.Store(s)
	return s
}

// persistLocked hands a freshly built snapshot to the persister. A failure
// detaches the persister — retrying against a store that just failed a
// durable write risks interleaving torn records — and is remembered for
// Commit/PersistError to surface. Callers hold d.mu.
func (d *Database) persistLocked(s *Snapshot) {
	if d.persister == nil {
		return
	}
	if err := d.persister.Publish(s); err != nil {
		d.persistErr = fmt.Errorf("db: persist version %d: %w", s.Version(), err)
		d.persister = nil
	}
}

// SetPersister attaches (or, with nil, detaches) the durable store backing
// this database. The current state is published and persisted immediately,
// so a freshly loaded database is durable as soon as the persister is
// attached; persisters must tolerate a Publish for an already-persisted
// version (SetPersister after a publication re-offers the same snapshot).
func (d *Database) SetPersister(p Persister) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.persister = p
	d.persistErr = nil
	if p == nil {
		return nil
	}
	s := d.publishLocked()
	// publishLocked persists only when it built a fresh snapshot; re-offer
	// the current one in case the state was already published before the
	// persister was attached.
	if d.persister != nil {
		d.persistLocked(s)
	}
	return d.persistErr
}

// PersistError returns the sticky error of a failed persist, or nil. Once a
// durable write fails the persister is detached: the database keeps serving
// from memory, and the owner decides whether to rebuild against the store.
func (d *Database) PersistError() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.persistErr
}

// Append stages rows for a table; each row lists one value per table column
// in declaration order. Numeric columns accept float64/float32/int/int64,
// numeric strings, or nil/NaN for NULL; string columns accept strings
// (empty = NULL), nil, or numbers (formatted). Staged rows become visible
// only when Commit seals them into a block and publishes the next snapshot.
func (d *Database) Append(table string, rows ...[]any) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	t := d.byName[table]
	if t == nil {
		return fmt.Errorf("db: append to unknown table %s", table)
	}
	staged := make([]stagedRow, 0, len(rows))
	for _, row := range rows {
		if len(row) != len(t.Columns) {
			return fmt.Errorf("db: append to %s: row has %d values, want %d", table, len(row), len(t.Columns))
		}
		sr := stagedRow{floats: make([]float64, len(row)), strings: make([]string, len(row))}
		for j, c := range t.Columns {
			fv, sv, err := normalizeCell(c, row[j])
			if err != nil {
				return fmt.Errorf("db: append to %s: %w", table, err)
			}
			sr.floats[j], sr.strings[j] = fv, sv
		}
		staged = append(staged, sr)
	}
	d.staged[table] = append(d.staged[table], staged...)
	return nil
}

// Pending returns the number of staged (uncommitted) rows for a table.
func (d *Database) Pending(table string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.staged[table])
}

// Commit seals all staged rows into one new block per touched table and
// publishes the next snapshot (version N+1). Readers holding version N keep
// a fully consistent view: sealed storage is append-only and snapshots
// capture bounded slice headers. With nothing staged, Commit publishes no
// new version and returns the current snapshot.
func (d *Database) Commit() (*Snapshot, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	// Make sure the pre-commit state is published first: initial-load rows
	// get their own sealed blocks and version, so the commit below is a
	// clean N -> N+1 append even when nobody snapshotted the database yet.
	d.publishLocked()
	touched := false
	names := make([]string, 0, len(d.staged))
	for name, rows := range d.staged {
		if len(rows) > 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		t := d.byName[name]
		if t == nil {
			return nil, fmt.Errorf("db: staged rows for unknown table %s", name)
		}
		start := t.NumRows()
		for _, sr := range d.staged[name] {
			for j, c := range t.Columns {
				if c.Kind == KindFloat {
					c.AppendFloat(sr.floats[j])
				} else {
					c.AppendString(sr.strings[j])
				}
			}
		}
		d.blocks[name] = append(d.blocks[name], Block{Seq: d.blockSeq, Start: start, End: t.NumRows()})
		d.blockSeq++
		touched = true
	}
	d.staged = make(map[string][]stagedRow)
	if !touched {
		return d.publishLocked(), d.persistErr
	}
	d.snap.Store(nil)
	return d.publishLocked(), d.persistErr
}

// Compact reseals every multi-block table's metadata into one block
// covering all committed rows and re-chunks its zone maps under a
// granularity sampled from the pre-compaction zones (chooseZoneRows). It is
// a structural change: the epoch bumps and the next snapshot publishes
// under a fresh version, so engines' delta-tracked cubes take one counted
// full rebuild while in-flight readers keep their pinned snapshots. Row
// data never moves — column storage is contiguous — so compaction is pure
// metadata plus a zone recomputation, and attached persisters record it as
// a manifest reset without rewriting data pages. Staged rows stay staged.
func (d *Database) Compact() (*Snapshot, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	prev := d.publishLocked()
	changed := false
	for _, t := range d.tables {
		bs := d.blocks[t.Name]
		if len(bs) == 0 {
			continue
		}
		zr := t.ZoneGranularity()
		if tv := prev.byName[t.Name]; tv != nil {
			zr = chooseZoneRows(tv)
		}
		if len(bs) == 1 && zr == t.ZoneGranularity() {
			continue
		}
		d.blocks[t.Name] = []Block{{Seq: d.blockSeq, Start: 0, End: bs[len(bs)-1].End}}
		d.blockSeq++
		t.zoneRows = zr
		changed = true
	}
	if !changed {
		return prev, d.persistErr
	}
	d.epoch++
	d.snap.Store(nil)
	return d.publishLocked(), d.persistErr
}

// MaxBlocks returns the largest sealed-block count across tables — the
// signal compaction policies threshold on.
func (d *Database) MaxBlocks() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	max := 0
	for _, bs := range d.blocks {
		if len(bs) > max {
			max = len(bs)
		}
	}
	return max
}

// Tables returns all tables in registration order.
func (d *Database) Tables() []*Table { return d.tables }

// Table returns the named table, or nil.
func (d *Database) Table(name string) *Table { return d.byName[name] }

// ForeignKeys returns the registered PK-FK edges.
func (d *Database) ForeignKeys() []ForeignKey { return d.fks }

// connectedLocked reports whether two tables are already linked through FK
// edges. Callers hold d.mu.
func (d *Database) connectedLocked(a, b string) bool {
	if a == b {
		return true
	}
	adj := adjacencyOf(d.fks)
	seen := map[string]bool{a: true}
	queue := []string{a}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range adj[cur] {
			if nb.other == b {
				return true
			}
			if !seen[nb.other] {
				seen[nb.other] = true
				queue = append(queue, nb.other)
			}
		}
	}
	return false
}

type edge struct {
	other string
	fk    ForeignKey
	// forward is true when traversing from FK side to PK side (N:1).
	forward bool
}

func adjacencyOf(fks []ForeignKey) map[string][]edge {
	adj := make(map[string][]edge)
	for _, fk := range fks {
		adj[fk.FromTable] = append(adj[fk.FromTable], edge{other: fk.ToTable, fk: fk, forward: true})
		adj[fk.ToTable] = append(adj[fk.ToTable], edge{other: fk.FromTable, fk: fk, forward: false})
	}
	return adj
}

// JoinStep is one hop of a join path.
type JoinStep struct {
	FK      ForeignKey
	Forward bool   // true: current rows are on the FK (N) side, join adds the PK (1) side
	Add     string // table added by this step
}

// JoinPath returns the tables and FK steps needed to connect the given
// tables via PK-FK equi-joins (the paper's FROM-clause inference, §4.4). The
// result starts from tables[0]. An error is returned when the tables cannot
// be connected.
func (d *Database) JoinPath(tables []string) ([]JoinStep, error) {
	return joinPathOver(d.fks, func(t string) bool { return d.byName[t] != nil }, tables)
}

// joinPathOver is the join-path BFS shared by Database and Snapshot.
func joinPathOver(fks []ForeignKey, known func(string) bool, tables []string) (steps []JoinStep, err error) {
	if len(tables) <= 1 {
		return nil, nil
	}
	need := make(map[string]bool)
	for _, t := range tables {
		if !known(t) {
			return nil, fmt.Errorf("db: unknown table %s", t)
		}
		need[t] = true
	}
	adj := adjacencyOf(fks)
	// BFS tree from tables[0]; because the schema is acyclic the discovered
	// paths are unique.
	parent := map[string]edge{}
	seen := map[string]bool{tables[0]: true}
	queue := []string{tables[0]}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range adj[cur] {
			if seen[e.other] {
				continue
			}
			seen[e.other] = true
			parent[e.other] = edge{other: cur, fk: e.fk, forward: e.forward}
			queue = append(queue, e.other)
		}
	}
	// Collect the union of path nodes from each needed table back to root.
	inTree := map[string]bool{tables[0]: true}
	for t := range need {
		cur := t
		for cur != tables[0] {
			p, ok := parent[cur]
			if !ok {
				return nil, fmt.Errorf("db: tables %s and %s are not connected", tables[0], t)
			}
			inTree[cur] = true
			cur = p.other
		}
	}
	// Emit steps in BFS order from the root so each step attaches to an
	// already-joined table.
	var order []string
	for t := range inTree {
		if t != tables[0] {
			order = append(order, t)
		}
	}
	sort.Slice(order, func(i, j int) bool { return depth(parent, order[i]) < depth(parent, order[j]) })
	for _, t := range order {
		// p.forward records the traversal direction from the BFS parent to t:
		// true means the parent is on the FK (N) side and t contributes the
		// PK (1) side, which is exactly JoinStep.Forward.
		p := parent[t]
		steps = append(steps, JoinStep{FK: p.fk, Forward: p.forward, Add: t})
	}
	return steps, nil
}

func depth(parent map[string]edge, t string) int {
	d := 0
	for {
		p, ok := parent[t]
		if !ok {
			return d
		}
		t = p.other
		d++
	}
}
