package db

import (
	"fmt"
	"sort"
)

// ForeignKey declares that FromTable.FromColumn references ToTable's
// primary-key column ToColumn (an N:1 edge in the schema graph).
type ForeignKey struct {
	FromTable, FromColumn string
	ToTable, ToColumn     string
}

// Database is a set of tables connected by PK-FK constraints. The paper
// assumes an acyclic schema (§6.3); AddForeignKey enforces it.
type Database struct {
	Name   string
	tables []*Table
	byName map[string]*Table
	fks    []ForeignKey
}

// NewDatabase creates an empty database.
func NewDatabase(name string) *Database {
	return &Database{Name: name, byName: make(map[string]*Table)}
}

// AddTable registers a table; names must be unique.
func (d *Database) AddTable(t *Table) error {
	if _, dup := d.byName[t.Name]; dup {
		return fmt.Errorf("db: duplicate table %s", t.Name)
	}
	d.tables = append(d.tables, t)
	d.byName[t.Name] = t
	return nil
}

// MustAddTable is AddTable that panics on error.
func (d *Database) MustAddTable(t *Table) {
	if err := d.AddTable(t); err != nil {
		panic(err)
	}
}

// AddForeignKey registers a PK-FK edge, validating both endpoints and
// rejecting edges that would introduce a cycle in the (undirected) schema
// graph, as the join-path logic assumes acyclicity.
func (d *Database) AddForeignKey(fk ForeignKey) error {
	from := d.byName[fk.FromTable]
	to := d.byName[fk.ToTable]
	if from == nil || to == nil {
		return fmt.Errorf("db: foreign key references unknown table %s or %s", fk.FromTable, fk.ToTable)
	}
	if from.Column(fk.FromColumn) == nil {
		return fmt.Errorf("db: table %s has no column %s", fk.FromTable, fk.FromColumn)
	}
	if to.Column(fk.ToColumn) == nil {
		return fmt.Errorf("db: table %s has no column %s", fk.ToTable, fk.ToColumn)
	}
	if to.PrimaryKey != fk.ToColumn {
		return fmt.Errorf("db: foreign key target %s.%s is not the primary key", fk.ToTable, fk.ToColumn)
	}
	if d.connected(fk.FromTable, fk.ToTable) {
		return fmt.Errorf("db: foreign key %s->%s would create a cycle", fk.FromTable, fk.ToTable)
	}
	d.fks = append(d.fks, fk)
	return nil
}

// MustAddForeignKey is AddForeignKey that panics on error.
func (d *Database) MustAddForeignKey(fk ForeignKey) {
	if err := d.AddForeignKey(fk); err != nil {
		panic(err)
	}
}

// Tables returns all tables in registration order.
func (d *Database) Tables() []*Table { return d.tables }

// Table returns the named table, or nil.
func (d *Database) Table(name string) *Table { return d.byName[name] }

// ForeignKeys returns the registered PK-FK edges.
func (d *Database) ForeignKeys() []ForeignKey { return d.fks }

// connected reports whether two tables are already linked through FK edges.
func (d *Database) connected(a, b string) bool {
	if a == b {
		return true
	}
	adj := d.adjacency()
	seen := map[string]bool{a: true}
	queue := []string{a}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range adj[cur] {
			if nb.other == b {
				return true
			}
			if !seen[nb.other] {
				seen[nb.other] = true
				queue = append(queue, nb.other)
			}
		}
	}
	return false
}

type edge struct {
	other string
	fk    ForeignKey
	// forward is true when traversing from FK side to PK side (N:1).
	forward bool
}

func (d *Database) adjacency() map[string][]edge {
	adj := make(map[string][]edge)
	for _, fk := range d.fks {
		adj[fk.FromTable] = append(adj[fk.FromTable], edge{other: fk.ToTable, fk: fk, forward: true})
		adj[fk.ToTable] = append(adj[fk.ToTable], edge{other: fk.FromTable, fk: fk, forward: false})
	}
	return adj
}

// JoinStep is one hop of a join path.
type JoinStep struct {
	FK      ForeignKey
	Forward bool   // true: current rows are on the FK (N) side, join adds the PK (1) side
	Add     string // table added by this step
}

// JoinPath returns the tables and FK steps needed to connect the given
// tables via PK-FK equi-joins (the paper's FROM-clause inference, §4.4). The
// result starts from tables[0]. An error is returned when the tables cannot
// be connected.
func (d *Database) JoinPath(tables []string) (steps []JoinStep, err error) {
	if len(tables) <= 1 {
		return nil, nil
	}
	need := make(map[string]bool)
	for _, t := range tables {
		if d.byName[t] == nil {
			return nil, fmt.Errorf("db: unknown table %s", t)
		}
		need[t] = true
	}
	adj := d.adjacency()
	// BFS tree from tables[0]; because the schema is acyclic the discovered
	// paths are unique.
	parent := map[string]edge{}
	seen := map[string]bool{tables[0]: true}
	queue := []string{tables[0]}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range adj[cur] {
			if seen[e.other] {
				continue
			}
			seen[e.other] = true
			parent[e.other] = edge{other: cur, fk: e.fk, forward: e.forward}
			queue = append(queue, e.other)
		}
	}
	// Collect the union of path nodes from each needed table back to root.
	inTree := map[string]bool{tables[0]: true}
	for t := range need {
		cur := t
		for cur != tables[0] {
			p, ok := parent[cur]
			if !ok {
				return nil, fmt.Errorf("db: tables %s and %s are not connected", tables[0], t)
			}
			inTree[cur] = true
			cur = p.other
		}
	}
	// Emit steps in BFS order from the root so each step attaches to an
	// already-joined table.
	var order []string
	for t := range inTree {
		if t != tables[0] {
			order = append(order, t)
		}
	}
	sort.Slice(order, func(i, j int) bool { return depth(parent, order[i]) < depth(parent, order[j]) })
	for _, t := range order {
		// p.forward records the traversal direction from the BFS parent to t:
		// true means the parent is on the FK (N) side and t contributes the
		// PK (1) side, which is exactly JoinStep.Forward.
		p := parent[t]
		steps = append(steps, JoinStep{FK: p.fk, Forward: p.forward, Add: t})
	}
	return steps, nil
}

func depth(parent map[string]edge, t string) int {
	d := 0
	for {
		p, ok := parent[t]
		if !ok {
			return d
		}
		t = p.other
		d++
	}
}
