package db

import (
	"math"
	"testing"
)

// zoneTestDB builds a database whose single table has one numeric and one
// string column with values chosen so zones carry distinguishable
// summaries (values grow with the row index).
func zoneTestDB(t *testing.T, rows int) *Database {
	t.Helper()
	n := NewFloatColumn("n")
	s := NewStringColumn("s")
	for i := 0; i < rows; i++ {
		if i%7 == 3 {
			n.AppendFloat(math.NaN())
		} else {
			n.AppendFloat(float64(i))
		}
		// One string value per ZoneRows band: band literals cluster.
		s.AppendString("band" + string(rune('A'+i/ZoneRows)))
	}
	d := NewDatabase("zones")
	d.MustAddTable(MustNewTable("t", n, s))
	return d
}

func TestZoneSpansAlignWithBlocks(t *testing.T) {
	d := zoneTestDB(t, 2*ZoneRows+100)
	snap := d.Snapshot()
	tv := snap.Table("t")
	spans := tv.ZoneSpans()
	if len(spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(spans))
	}
	covered := 0
	for i, sp := range spans {
		if sp.Rows() <= 0 || sp.Rows() > ZoneRows {
			t.Errorf("span %d covers %d rows", i, sp.Rows())
		}
		if sp.Start != covered {
			t.Errorf("span %d starts at %d, want %d (contiguous)", i, sp.Start, covered)
		}
		covered = sp.End
	}
	if covered != tv.NumRows() {
		t.Errorf("spans cover %d rows, want %d", covered, tv.NumRows())
	}
	for _, name := range []string{"n", "s"} {
		if zones := tv.Column(name).Zones(); len(zones) != len(spans) {
			t.Errorf("column %s has %d zones, want %d", name, len(zones), len(spans))
		}
	}
}

func TestZoneEntryNumericBounds(t *testing.T) {
	d := zoneTestDB(t, 2*ZoneRows+100)
	nz := d.Snapshot().Table("t").Column("n").Zones()
	for i, z := range nz {
		if z.Min < float64(z.Start) || z.Max > float64(z.End-1) {
			t.Errorf("zone %d bounds [%v,%v] escape rows [%d,%d)", i, z.Min, z.Max, z.Start, z.End)
		}
		if z.NullCount == 0 || z.AllNull() {
			t.Errorf("zone %d null count = %d of %d rows", i, z.NullCount, z.Rows())
		}
		// Values from other zones are provably absent.
		if i > 0 && z.MayContainFloat(0) {
			t.Errorf("zone %d claims it may contain 0", i)
		}
		if !z.MayContainFloat(float64(z.Start)) && z.Start%7 != 3 {
			t.Errorf("zone %d denies its own first value", i)
		}
		if z.MayContainFloat(math.NaN()) {
			t.Errorf("zone %d claims it may contain NaN", i)
		}
	}
}

func TestZoneEntryDomainBitsets(t *testing.T) {
	d := zoneTestDB(t, 2*ZoneRows+100)
	col := d.Snapshot().Table("t").Column("s")
	sz := col.Zones()
	for i, z := range sz {
		own := col.CodeOf("band" + string(rune('A'+i)))
		if own < 0 || !z.MayContainCode(own) {
			t.Errorf("zone %d denies its own band code %d", i, own)
		}
		for j := range sz {
			if j == i {
				continue
			}
			other := col.CodeOf("band" + string(rune('A'+j)))
			if z.MayContainCode(other) {
				t.Errorf("zone %d claims foreign band %d", i, j)
			}
		}
		if z.MayContainCode(-1) {
			t.Errorf("zone %d claims NULL code", i)
		}
		if z.MayContainCode(int32(len(col.Dictionary()))) {
			t.Errorf("zone %d claims a code beyond the dictionary", i)
		}
	}
}

// TestZoneMapsIncrementalOnCommit asserts appends extend the zone list
// without touching sealed entries, and that new dictionary codes minted by
// appends are provably absent from old zones.
func TestZoneMapsIncrementalOnCommit(t *testing.T) {
	d := zoneTestDB(t, 500)
	before := d.Snapshot().Table("t")
	if err := d.Append("t", []any{9999.0, "fresh"}, []any{nil, "fresh"}); err != nil {
		t.Fatal(err)
	}
	snap, err := d.Commit()
	if err != nil {
		t.Fatal(err)
	}
	after := snap.Table("t")
	if len(after.ZoneSpans()) != len(before.ZoneSpans())+1 {
		t.Fatalf("spans %d -> %d, want one appended zone", len(before.ZoneSpans()), len(after.ZoneSpans()))
	}
	for i := range before.ZoneSpans() {
		if after.ZoneSpans()[i] != before.ZoneSpans()[i] {
			t.Errorf("sealed span %d changed", i)
		}
	}
	sCol := after.Column("s")
	fresh := sCol.CodeOf("fresh")
	if fresh < 0 {
		t.Fatal("appended literal missing from dictionary")
	}
	zones := sCol.Zones()
	last := zones[len(zones)-1]
	if !last.MayContainCode(fresh) || last.NullCount != 0 {
		t.Errorf("appended zone: contains=%v nulls=%d", last.MayContainCode(fresh), last.NullCount)
	}
	for i := 0; i < len(zones)-1; i++ {
		if zones[i].MayContainCode(fresh) {
			t.Errorf("sealed zone %d claims the freshly minted code", i)
		}
	}
	nz := after.Column("n").Zones()
	nLast := nz[len(nz)-1]
	if nLast.Min != 9999 || nLast.Max != 9999 || nLast.NullCount != 1 {
		t.Errorf("appended numeric zone = %+v", nLast)
	}
}

// TestZoneDomainCapHighCardinality pins the memory guard: a dictionary
// larger than maxZoneDomainDict gets no bitsets, and the zones answer
// MayContainCode conservatively.
func TestZoneDomainCapHighCardinality(t *testing.T) {
	s := NewStringColumn("id")
	for i := 0; i < maxZoneDomainDict+10; i++ {
		s.AppendString("v" + itoa(i))
	}
	d := NewDatabase("wide")
	d.MustAddTable(MustNewTable("w", s))
	zones := d.Snapshot().Table("w").Column("id").Zones()
	if len(zones) == 0 {
		t.Fatal("no zones built")
	}
	for _, z := range zones {
		if z.hasDomain {
			t.Fatal("domain bitset built past the dictionary cap")
		}
		if !z.MayContainCode(0) {
			t.Fatal("capped zone must answer conservatively")
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [12]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

func TestAllNullZone(t *testing.T) {
	n := NewFloatColumn("n")
	s := NewStringColumn("s")
	for i := 0; i < 10; i++ {
		n.AppendFloat(math.NaN())
		s.AppendString("")
	}
	d := NewDatabase("nulls")
	d.MustAddTable(MustNewTable("t", n, s))
	tv := d.Snapshot().Table("t")
	nz := tv.Column("n").Zones()[0]
	if !nz.AllNull() || nz.MayContainFloat(0) {
		t.Errorf("all-NULL numeric zone = %+v", nz)
	}
	sz := tv.Column("s").Zones()[0]
	if !sz.AllNull() {
		t.Errorf("all-NULL string zone = %+v", sz)
	}
}

// TestAccessorZones pins the accessor contract: direct accessors expose
// zones aligned with the view's spans, gathered accessors expose none.
func TestAccessorZones(t *testing.T) {
	d := zoneTestDB(t, 300)
	view, err := BuildJoinView(d, []string{"t"})
	if err != nil {
		t.Fatal(err)
	}
	if view.ZoneSpans() == nil {
		t.Fatal("single-table view has no zone spans")
	}
	acc, err := view.Accessor("t", "n")
	if err != nil {
		t.Fatal(err)
	}
	if got := acc.Zones(); len(got) != len(view.ZoneSpans()) {
		t.Errorf("accessor zones = %d, want %d", len(got), len(view.ZoneSpans()))
	}

	// A joined view materializes row maps for every table: no zones.
	fk := NewStringColumn("k")
	for i := 0; i < 20; i++ {
		fk.AppendString("a")
	}
	v2 := NewFloatColumn("v2")
	for i := 0; i < 20; i++ {
		v2.AppendFloat(1)
	}
	dk := NewStringColumn("k")
	dk.AppendString("a")
	g := NewFloatColumn("g")
	g.AppendFloat(7)
	d2 := NewDatabase("j")
	d2.MustAddTable(MustNewTable("f", fk, v2))
	dim := MustNewTable("dim", dk, g)
	dim.PrimaryKey = "k"
	d2.MustAddTable(dim)
	d2.MustAddForeignKey(ForeignKey{FromTable: "f", FromColumn: "k", ToTable: "dim", ToColumn: "k"})
	jv, err := BuildJoinView(d2, []string{"f", "dim"})
	if err != nil {
		t.Fatal(err)
	}
	if jv.ZoneSpans() != nil {
		t.Error("joined view must not expose zone spans")
	}
	jacc, err := jv.Accessor("f", "v2")
	if err != nil {
		t.Fatal(err)
	}
	if jacc.Zones() != nil {
		t.Error("gathered accessor must not expose zones")
	}
}
