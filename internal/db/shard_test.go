package db

import (
	"fmt"
	"testing"
)

// shardTestDB builds a fact table with a string shard key plus a dimension
// table referenced by an N:1 foreign key.
func shardTestDB(t *testing.T, factRows int) *Database {
	t.Helper()
	users := []string{"ann", "bob", "cat", "dan", "eve"}
	key := NewStringColumn("user")
	val := NewFloatColumn("v")
	fkc := NewStringColumn("g")
	for i := 0; i < factRows; i++ {
		key.AppendString(users[i%len(users)])
		val.AppendFloat(float64(i))
		fkc.AppendString(fmt.Sprintf("g%d", i%3))
	}
	gk := NewStringColumn("g")
	gl := NewStringColumn("label")
	for i := 0; i < 3; i++ {
		gk.AppendString(fmt.Sprintf("g%d", i))
		gl.AppendString(fmt.Sprintf("label%d", i))
	}
	d := NewDatabase("sharded")
	d.MustAddTable(MustNewTable("fact", key, val, fkc))
	dims := MustNewTable("dims", gk, gl)
	dims.PrimaryKey = "g"
	d.MustAddTable(dims)
	d.MustAddForeignKey(ForeignKey{FromTable: "fact", FromColumn: "g", ToTable: "dims", ToColumn: "g"})
	return d
}

func TestSharderPartitionsAndReplication(t *testing.T) {
	d := shardTestDB(t, 100)
	s, err := NewSharder(d, 4, ShardOptions{Keys: map[string]string{"fact": "user"}})
	if err != nil {
		t.Fatal(err)
	}
	if s.NumShards() != 4 || len(s.Partitions()) != 4 {
		t.Fatalf("shards = %d, want 4", s.NumShards())
	}
	if !s.Replicated("dims") || s.Replicated("fact") {
		t.Fatal("dims must be replicated, fact partitioned")
	}
	total := 0
	for i, p := range s.Partitions() {
		snap := p.Snapshot()
		if got := snap.NumRows("dims"); got != 3 {
			t.Fatalf("shard %d dims rows = %d, want replicated 3", i, got)
		}
		if snap.Table("fact").PrimaryKey != "" || snap.Table("dims").PrimaryKey != "g" {
			t.Fatalf("shard %d lost primary keys", i)
		}
		if _, err := snap.JoinPath([]string{"fact", "dims"}); err != nil {
			t.Fatalf("shard %d join path: %v", i, err)
		}
		// Hash placement on the key column: each user's rows are all on
		// one shard, so every shard-local user has its full row set.
		key := snap.Table("fact").Column("user")
		vals := map[string]int{}
		for r := 0; r < key.Len(); r++ {
			vals[key.StringAt(r)]++
		}
		for u, n := range vals {
			if n != 20 {
				t.Fatalf("shard %d holds %d rows of user %s, want all 20 or none", i, n, u)
			}
		}
		total += snap.NumRows("fact")
	}
	if total != 100 {
		t.Fatalf("partitioned fact rows sum to %d, want 100", total)
	}
}

func TestSharderRoundRobinFallback(t *testing.T) {
	d := shardTestDB(t, 90)
	// No key configured: round-robin must spread rows exactly evenly.
	s, err := NewSharder(d, 3, ShardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range s.Partitions() {
		if got := p.Snapshot().NumRows("fact"); got != 30 {
			t.Fatalf("shard %d rows = %d, want 30", i, got)
		}
	}
}

func TestSharderAbsorbDeltas(t *testing.T) {
	d := shardTestDB(t, 50)
	s, err := NewSharder(d, 2, ShardOptions{Keys: map[string]string{"fact": "user"}})
	if err != nil {
		t.Fatal(err)
	}
	before := make([]uint64, 2)
	for i, p := range s.Partitions() {
		before[i] = p.Snapshot().Version()
	}
	// Appending to the source must not move partitions until Absorb.
	for i := 0; i < 20; i++ {
		user := []string{"ann", "eve", ""}[i%3] // every third key NULL
		if err := d.Append("fact", []any{user, float64(1000 + i), "g1"}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	moved, err := s.Absorb()
	if err != nil {
		t.Fatal(err)
	}
	if moved != 20 {
		t.Fatalf("absorbed %d rows, want 20", moved)
	}
	total, blocks := 0, 0
	for i, p := range s.Partitions() {
		snap := p.Snapshot()
		total += snap.NumRows("fact")
		if v := snap.Version(); v <= before[i] {
			t.Fatalf("shard %d version did not advance (%d -> %d)", i, before[i], v)
		}
		// The delta sealed its own block, keeping per-shard incremental
		// maintenance possible.
		blocks += len(snap.BlocksSince("fact", snap.NumRows("fact")-20))
	}
	if total != 70 {
		t.Fatalf("fact rows after absorb = %d, want 70", total)
	}
	if blocks == 0 {
		t.Fatal("absorb sealed no delta blocks")
	}
	// Idempotent: nothing new to route.
	if moved, err := s.Absorb(); err != nil || moved != 0 {
		t.Fatalf("second absorb = %d, %v, want 0 rows", moved, err)
	}
}

func TestSharderHashStableAcrossBatches(t *testing.T) {
	d := shardTestDB(t, 40)
	s, err := NewSharder(d, 3, ShardOptions{Keys: map[string]string{"fact": "user"}})
	if err != nil {
		t.Fatal(err)
	}
	owner := func(user string) int {
		hit := -1
		for i, p := range s.Partitions() {
			key := p.Snapshot().Table("fact").Column("user")
			for r := 0; r < key.Len(); r++ {
				if key.StringAt(r) == user {
					if hit >= 0 && hit != i {
						t.Fatalf("user %s on shards %d and %d", user, hit, i)
					}
					hit = i
				}
			}
		}
		return hit
	}
	first := owner("cat")
	if err := d.Append("fact", []any{"cat", 9.0, "g0"}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Absorb(); err != nil {
		t.Fatal(err)
	}
	if got := owner("cat"); got != first {
		t.Fatalf("user cat moved from shard %d to %d across batches", first, got)
	}
}

func TestSharderRejectsBadShardCount(t *testing.T) {
	if _, err := NewSharder(shardTestDB(t, 10), 0, ShardOptions{}); err == nil {
		t.Fatal("k=0 must be rejected")
	}
}
