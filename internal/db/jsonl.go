package db

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// LoadJSONL reads a table from JSON-lines data: one JSON object per line,
// keys become columns (union over all lines, in first-seen order). A column
// is numeric when every present, non-null value is a JSON number; booleans
// and strings make it text. Missing keys and JSON nulls are NULL.
func LoadJSONL(r io.Reader, tableName string) (*Table, error) {
	objs, keys, err := readJSONLObjects(r, tableName)
	if err != nil {
		return nil, err
	}
	return buildJSONLTable(tableName, keys, objs)
}

// LoadJSONLFile loads a table from a .jsonl file; the table name defaults
// to the file's base name without extension.
func LoadJSONLFile(path, tableName string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if tableName == "" {
		tableName = tableNameFromPath(path)
	}
	return LoadJSONL(f, tableName)
}

// readJSONLObjects decodes every non-blank line and collects the key union
// in first-seen order.
func readJSONLObjects(r io.Reader, tableName string) ([]map[string]any, []string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	var objs []map[string]any
	var keys []string
	seen := make(map[string]bool)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var obj map[string]any
		if err := json.Unmarshal([]byte(text), &obj); err != nil {
			return nil, nil, fmt.Errorf("db: jsonl for %s: line %d: %w", tableName, line, err)
		}
		objs = append(objs, obj)
		// Per-line key order is lost by map decoding; sort new keys so the
		// column order is deterministic.
		var fresh []string
		for k := range obj {
			if !seen[k] {
				seen[k] = true
				fresh = append(fresh, k)
			}
		}
		if len(fresh) > 1 {
			sort.Strings(fresh)
		}
		keys = append(keys, fresh...)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("db: jsonl for %s: %w", tableName, err)
	}
	if len(objs) == 0 {
		return nil, nil, fmt.Errorf("db: jsonl for %s is empty", tableName)
	}
	return objs, keys, nil
}

func buildJSONLTable(tableName string, keys []string, objs []map[string]any) (*Table, error) {
	numeric := make([]bool, len(keys))
	for j, k := range keys {
		numeric[j] = true
		nonNull := 0
		for _, obj := range objs {
			v, ok := obj[k]
			if !ok || v == nil {
				continue
			}
			nonNull++
			if _, isNum := v.(float64); !isNum {
				numeric[j] = false
				break
			}
		}
		if nonNull == 0 {
			numeric[j] = false
		}
	}
	cols := make([]*Column, len(keys))
	for j, k := range keys {
		if numeric[j] {
			cols[j] = NewFloatColumn(k)
		} else {
			cols[j] = NewStringColumn(k)
		}
	}
	for _, obj := range objs {
		for j, k := range keys {
			v, ok := obj[k]
			if numeric[j] {
				if f, isNum := v.(float64); ok && isNum {
					cols[j].AppendFloat(f)
				} else {
					cols[j].AppendFloat(math.NaN())
				}
				continue
			}
			cols[j].AppendString(jsonCellString(v, ok))
		}
	}
	return NewTable(tableName, cols...)
}

// jsonCellString formats a decoded JSON value for a text column ("" = NULL).
func jsonCellString(v any, present bool) string {
	if !present || v == nil {
		return ""
	}
	switch x := v.(type) {
	case string:
		return x
	case bool:
		return strconv.FormatBool(x)
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	default:
		data, err := json.Marshal(x)
		if err != nil {
			return ""
		}
		return string(data)
	}
}
