package db

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// LoadCSV reads a table from CSV data. The first record is the header. Type
// inference mirrors the paper's setup (raw .csv files loaded untouched): a
// column is numeric when every non-empty cell parses as a float (thousands
// separators tolerated), otherwise it is text; empty cells are NULL either
// way.
func LoadCSV(r io.Reader, tableName string) (*Table, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("db: reading csv for %s: %w", tableName, err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("db: csv for %s is empty", tableName)
	}
	header := records[0]
	rows := records[1:]
	ncols := len(header)

	numeric := make([]bool, ncols)
	for j := 0; j < ncols; j++ {
		numeric[j] = true
		nonEmpty := 0
		for _, rec := range rows {
			if j >= len(rec) {
				continue
			}
			cell := strings.TrimSpace(rec[j])
			if cell == "" {
				continue
			}
			nonEmpty++
			if _, err := parseNumericCell(cell); err != nil {
				numeric[j] = false
				break
			}
		}
		if nonEmpty == 0 {
			numeric[j] = false // all-empty columns default to text
		}
	}

	cols := make([]*Column, ncols)
	for j := 0; j < ncols; j++ {
		name := strings.TrimSpace(header[j])
		if name == "" {
			name = fmt.Sprintf("col%d", j+1)
		}
		if numeric[j] {
			cols[j] = NewFloatColumn(name)
		} else {
			cols[j] = NewStringColumn(name)
		}
	}
	for _, rec := range rows {
		for j := 0; j < ncols; j++ {
			var cell string
			if j < len(rec) {
				cell = strings.TrimSpace(rec[j])
			}
			if numeric[j] {
				if cell == "" {
					cols[j].AppendFloat(math.NaN())
				} else {
					v, _ := parseNumericCell(cell)
					cols[j].AppendFloat(v)
				}
			} else {
				cols[j].AppendString(cell)
			}
		}
	}
	return NewTable(tableName, cols...)
}

// LoadCSVFile loads a table from a CSV file; the table name defaults to the
// file's base name without extension.
func LoadCSVFile(path, tableName string) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if tableName == "" {
		base := path
		if i := strings.LastIndexByte(base, '/'); i >= 0 {
			base = base[i+1:]
		}
		if i := strings.LastIndexByte(base, '.'); i > 0 {
			base = base[:i]
		}
		tableName = base
	}
	return LoadCSV(f, tableName)
}

func parseNumericCell(cell string) (float64, error) {
	s := strings.ReplaceAll(cell, ",", "")
	s = strings.TrimSuffix(s, "%")
	s = strings.TrimPrefix(s, "$")
	return strconv.ParseFloat(s, 64)
}
