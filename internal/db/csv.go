package db

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"
)

// CSVOptions tunes CSV parsing and type inference.
type CSVOptions struct {
	// NullTokens lists cell values (compared after whitespace trimming,
	// case-insensitively) treated as NULL in addition to the empty string.
	// Typical sets include "NA", "N/A", "null", and "-". NULL cells never
	// influence type inference, so a numeric column speckled with "NA"
	// markers stays numeric instead of degrading to text.
	NullTokens []string
	// Comma is the field delimiter; 0 means ','.
	Comma rune
}

// nullSet compiles the NULL-token list for case-insensitive lookup. The
// empty string is always NULL.
func (o CSVOptions) nullSet() map[string]bool {
	set := map[string]bool{"": true}
	for _, tok := range o.NullTokens {
		set[strings.ToLower(strings.TrimSpace(tok))] = true
	}
	return set
}

// LoadCSV reads a table from CSV data with default options. The first
// record is the header. Type inference mirrors the paper's setup (raw .csv
// files loaded untouched): a column is numeric when every non-NULL cell
// parses as a float (thousands separators tolerated), otherwise it is text;
// NULL cells (empty by default, plus any configured NULL tokens) are NULL
// either way. Quoted fields may contain the delimiter and newlines
// (encoding/csv semantics). Inference is two-pass over the whole file, so a
// column whose cells only reveal their true type late — e.g. a numeric-
// looking prefix followed by text, or a NULL-token prefix followed by
// numbers — is typed from all of its rows, not its first few.
func LoadCSV(r io.Reader, tableName string) (*Table, error) {
	return LoadCSVOptions(r, tableName, CSVOptions{})
}

// LoadCSVOptions is LoadCSV with explicit parsing options.
func LoadCSVOptions(r io.Reader, tableName string, opts CSVOptions) (*Table, error) {
	records, err := readCSVRecords(r, tableName, opts)
	if err != nil {
		return nil, err
	}
	header := records[0]
	rows := records[1:]
	return buildCSVTable(tableName, header, rows, opts)
}

// readCSVRecords parses raw CSV records (header included).
func readCSVRecords(r io.Reader, tableName string, opts CSVOptions) ([][]string, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	cr.FieldsPerRecord = -1
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("db: reading csv for %s: %w", tableName, err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("db: csv for %s is empty", tableName)
	}
	return records, nil
}

// buildCSVTable infers column types over all rows and materializes the
// table. NULL cells are excluded from inference and stored as NULL under
// either inferred kind.
func buildCSVTable(tableName string, header []string, rows [][]string, opts CSVOptions) (*Table, error) {
	ncols := len(header)
	nulls := opts.nullSet()
	isNull := func(cell string) bool { return nulls[strings.ToLower(cell)] }

	numeric := make([]bool, ncols)
	for j := 0; j < ncols; j++ {
		numeric[j] = true
		nonNull := 0
		for _, rec := range rows {
			if j >= len(rec) {
				continue
			}
			cell := strings.TrimSpace(rec[j])
			if isNull(cell) {
				continue
			}
			nonNull++
			if _, err := parseNumericCell(cell); err != nil {
				numeric[j] = false
				break
			}
		}
		if nonNull == 0 {
			numeric[j] = false // all-NULL columns default to text
		}
	}

	cols := make([]*Column, ncols)
	for j := 0; j < ncols; j++ {
		name := strings.TrimSpace(header[j])
		if name == "" {
			name = fmt.Sprintf("col%d", j+1)
		}
		if numeric[j] {
			cols[j] = NewFloatColumn(name)
		} else {
			cols[j] = NewStringColumn(name)
		}
	}
	for _, rec := range rows {
		for j := 0; j < ncols; j++ {
			var cell string
			if j < len(rec) {
				cell = strings.TrimSpace(rec[j])
			}
			null := isNull(cell)
			if numeric[j] {
				if null {
					cols[j].AppendFloat(math.NaN())
				} else {
					v, _ := parseNumericCell(cell)
					cols[j].AppendFloat(v)
				}
			} else if null {
				cols[j].AppendString("")
			} else {
				cols[j].AppendString(cell)
			}
		}
	}
	return NewTable(tableName, cols...)
}

// LoadCSVFile loads a table from a CSV file; the table name defaults to the
// file's base name without extension.
func LoadCSVFile(path, tableName string) (*Table, error) {
	return LoadCSVFileOptions(path, tableName, CSVOptions{})
}

// LoadCSVFileOptions is LoadCSVFile with explicit parsing options.
func LoadCSVFileOptions(path, tableName string, opts CSVOptions) (*Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if tableName == "" {
		tableName = tableNameFromPath(path)
	}
	return LoadCSVOptions(f, tableName, opts)
}

// tableNameFromPath derives a table name from a file path: the base name
// without extension.
func tableNameFromPath(path string) string {
	base := path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	if i := strings.LastIndexByte(base, '.'); i > 0 {
		base = base[:i]
	}
	return base
}

func parseNumericCell(cell string) (float64, error) {
	s := strings.ReplaceAll(cell, ",", "")
	s = strings.TrimSuffix(s, "%")
	s = strings.TrimPrefix(s, "$")
	return strconv.ParseFloat(s, 64)
}
