package db

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func nflTable(t *testing.T) *Table {
	t.Helper()
	csvData := `name,team,games,category,year
Art Schlichter,IND,indef,gambling,1983
Josh Gordon,CLE,indef,substance abuse repeated offense,2014
Stanley Wilson,CIN,indef,substance abuse repeated offense,1989
Dexter Manley,WAS,indef,substance abuse repeated offense,1991
Leon Lett,DAL,4,substance abuse,1995
Ray Rice,BAL,2,personal conduct,2014
`
	tbl, err := LoadCSV(strings.NewReader(csvData), "nflsuspensions")
	if err != nil {
		t.Fatalf("LoadCSV: %v", err)
	}
	return tbl
}

func TestLoadCSVTypeInference(t *testing.T) {
	tbl := nflTable(t)
	if tbl.NumRows() != 6 {
		t.Fatalf("NumRows = %d, want 6", tbl.NumRows())
	}
	if got := tbl.Column("games").Kind; got != KindString {
		t.Errorf("games kind = %v, want string (mixed 'indef' and numbers)", got)
	}
	if got := tbl.Column("year").Kind; got != KindFloat {
		t.Errorf("year kind = %v, want float", got)
	}
	if !tbl.Column("year").Integral {
		t.Error("year should be integral")
	}
	if got := tbl.Column("name").Kind; got != KindString {
		t.Errorf("name kind = %v, want string", got)
	}
}

func TestLoadCSVNulls(t *testing.T) {
	tbl, err := LoadCSV(strings.NewReader("a,b\n1,x\n,y\n3,\n"), "t")
	if err != nil {
		t.Fatal(err)
	}
	a, b := tbl.Column("a"), tbl.Column("b")
	if !a.IsNull(1) || a.IsNull(0) || a.IsNull(2) {
		t.Error("numeric null detection wrong")
	}
	if !b.IsNull(2) || b.IsNull(0) {
		t.Error("string null detection wrong")
	}
}

func TestLoadCSVNumericFormats(t *testing.T) {
	tbl, err := LoadCSV(strings.NewReader("v\n\"1,234\"\n$5\n12%\n"), "t")
	if err != nil {
		t.Fatal(err)
	}
	c := tbl.Column("v")
	if c.Kind != KindFloat {
		t.Fatalf("kind = %v, want float", c.Kind)
	}
	if c.Float(0) != 1234 || c.Float(1) != 5 || c.Float(2) != 12 {
		t.Errorf("values = %v %v %v", c.Float(0), c.Float(1), c.Float(2))
	}
}

func TestColumnDictionary(t *testing.T) {
	tbl := nflTable(t)
	cat := tbl.Column("category")
	if got := cat.DistinctCount(); got != 4 {
		t.Errorf("DistinctCount = %d, want 4", got)
	}
	code := cat.CodeOf("gambling")
	if code < 0 {
		t.Fatal("gambling not in dictionary")
	}
	rows := cat.RowsWithCode(code)
	if len(rows) != 1 || rows[0] != 0 {
		t.Errorf("RowsWithCode(gambling) = %v", rows)
	}
	if cat.CodeOf("nonexistent") != -1 {
		t.Error("CodeOf should return -1 for unknown values")
	}
}

func TestDistinctFloats(t *testing.T) {
	c := NewFloatColumn("x")
	for _, v := range []float64{3, 1, 3, 2, math.NaN(), 1} {
		c.AppendFloat(v)
	}
	got := c.DistinctFloats()
	want := []float64{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("DistinctFloats = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("DistinctFloats[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if c.Integral {
		t.Log("NaN does not affect integrality")
	}
}

func TestStringAtFormatting(t *testing.T) {
	c := NewFloatColumn("x")
	c.AppendFloat(4)
	if got := c.StringAt(0); got != "4" {
		t.Errorf("integral StringAt = %q, want 4", got)
	}
	c2 := NewFloatColumn("y")
	c2.AppendFloat(4.5)
	if got := c2.StringAt(0); got != "4.5" {
		t.Errorf("StringAt = %q, want 4.5", got)
	}
}

func TestNewTableValidation(t *testing.T) {
	a := NewFloatColumn("a")
	a.AppendFloat(1)
	b := NewFloatColumn("b")
	if _, err := NewTable("t", a, b); err == nil {
		t.Error("ragged columns should fail")
	}
	c := NewFloatColumn("a")
	if _, err := NewTable("t", a, c); err == nil {
		t.Error("duplicate column names should fail")
	}
}

func twoTableDB(t *testing.T) *Database {
	t.Helper()
	players, err := LoadCSV(strings.NewReader(
		"player_id,name,team_id\n1,Alice,10\n2,Bob,10\n3,Cara,20\n4,Dan,30\n"), "players")
	if err != nil {
		t.Fatal(err)
	}
	players.PrimaryKey = "player_id"
	teams, err := LoadCSV(strings.NewReader(
		"team_id,team_name,city\n10,Hawks,Atlanta\n20,Bulls,Chicago\n"), "teams")
	if err != nil {
		t.Fatal(err)
	}
	teams.PrimaryKey = "team_id"
	d := NewDatabase("league")
	d.MustAddTable(players)
	d.MustAddTable(teams)
	d.MustAddForeignKey(ForeignKey{FromTable: "players", FromColumn: "team_id", ToTable: "teams", ToColumn: "team_id"})
	return d
}

func TestForeignKeyValidation(t *testing.T) {
	d := twoTableDB(t)
	if err := d.AddForeignKey(ForeignKey{FromTable: "players", FromColumn: "x", ToTable: "teams", ToColumn: "team_id"}); err == nil {
		t.Error("unknown FK column should fail")
	}
	if err := d.AddForeignKey(ForeignKey{FromTable: "teams", FromColumn: "team_id", ToTable: "players", ToColumn: "player_id"}); err == nil {
		t.Error("cycle-inducing FK should fail")
	}
}

func TestJoinPathSingle(t *testing.T) {
	d := twoTableDB(t)
	steps, err := d.JoinPath([]string{"players"})
	if err != nil || len(steps) != 0 {
		t.Errorf("single-table join path: %v %v", steps, err)
	}
}

func TestJoinViewForward(t *testing.T) {
	// players (N) joined with teams (1): Dan has a dangling FK and drops.
	d := twoTableDB(t)
	v, err := BuildJoinView(d, []string{"players", "teams"})
	if err != nil {
		t.Fatal(err)
	}
	if v.NumRows() != 3 {
		t.Fatalf("joined rows = %d, want 3 (dangling FK dropped)", v.NumRows())
	}
	name, err := v.Accessor("players", "name")
	if err != nil {
		t.Fatal(err)
	}
	city, err := v.Accessor("teams", "city")
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for r := 0; r < v.NumRows(); r++ {
		n := name.Column().Dictionary()[name.Code(r)]
		ct := city.Column().Dictionary()[city.Code(r)]
		got[n] = ct
	}
	want := map[string]string{"Alice": "Atlanta", "Bob": "Atlanta", "Cara": "Chicago"}
	for k, wv := range want {
		if got[k] != wv {
			t.Errorf("join result for %s = %q, want %q", k, got[k], wv)
		}
	}
}

func TestJoinViewBackward(t *testing.T) {
	// Starting from teams (1-side) and expanding to players (N-side).
	d := twoTableDB(t)
	v, err := BuildJoinView(d, []string{"teams", "players"})
	if err != nil {
		t.Fatal(err)
	}
	if v.NumRows() != 3 {
		t.Fatalf("joined rows = %d, want 3", v.NumRows())
	}
}

func TestJoinViewUnknownColumn(t *testing.T) {
	d := twoTableDB(t)
	v, err := BuildJoinView(d, []string{"players"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.Accessor("players", "nope"); err == nil {
		t.Error("unknown column should error")
	}
	if _, err := v.Accessor("teams", "city"); err == nil {
		t.Error("table not in view should error")
	}
}

func TestSingleTableViewIsDirect(t *testing.T) {
	// Single-table views must skip the identity row map entirely: every
	// accessor is direct and blocks alias column storage (zero-copy).
	d := twoTableDB(t)
	v, err := BuildJoinView(d, []string{"players"})
	if err != nil {
		t.Fatal(err)
	}
	name, err := v.Accessor("players", "name")
	if err != nil {
		t.Fatal(err)
	}
	if !name.Direct() {
		t.Error("single-table accessor should be direct")
	}
	codes, direct := name.CodeBlock(1, 2, nil)
	if !direct {
		t.Error("single-table CodeBlock should be zero-copy")
	}
	col := d.Table("players").Column("name")
	if len(codes) != 2 || codes[0] != col.Code(1) || codes[1] != col.Code(2) {
		t.Errorf("CodeBlock = %v, want codes of rows 1..2", codes)
	}
	id, err := v.Accessor("players", "player_id")
	if err != nil {
		t.Fatal(err)
	}
	vals, direct := id.FloatBlock(0, v.NumRows(), nil)
	if !direct {
		t.Error("single-table FloatBlock should be zero-copy")
	}
	for r, want := range []float64{1, 2, 3, 4} {
		if vals[r] != want {
			t.Errorf("FloatBlock[%d] = %v, want %v", r, vals[r], want)
		}
	}
}

func TestJoinedViewBlockGather(t *testing.T) {
	// Joined views gather blocks through the row maps; values must agree
	// with the per-row accessors.
	d := twoTableDB(t)
	v, err := BuildJoinView(d, []string{"players", "teams"})
	if err != nil {
		t.Fatal(err)
	}
	city, err := v.Accessor("teams", "city")
	if err != nil {
		t.Fatal(err)
	}
	if city.Direct() {
		t.Error("joined accessor should not be direct")
	}
	n := v.NumRows()
	buf := make([]int32, n)
	codes, direct := city.CodeBlock(0, n, buf)
	if direct {
		t.Error("joined CodeBlock should gather, not alias")
	}
	for r := 0; r < n; r++ {
		if codes[r] != city.Code(r) {
			t.Errorf("row %d: block code %d != accessor code %d", r, codes[r], city.Code(r))
		}
	}
	// Kind-mismatched block reads mirror Float/Code permissiveness — and
	// must allocate when the caller passed no buffer (zero-copy callers do).
	fbuf := make([]float64, n)
	fvals, _ := city.FloatBlock(0, n, fbuf)
	for r, fv := range fvals {
		if !math.IsNaN(fv) {
			t.Errorf("FloatBlock over string column row %d = %v, want NaN", r, fv)
		}
	}
	if fvals, _ := city.FloatBlock(0, n, nil); len(fvals) != n || !math.IsNaN(fvals[0]) {
		t.Errorf("nil-buf FloatBlock over string column = %v, want %d NaNs", fvals, n)
	}
	year, err := v.Accessor("players", "player_id")
	if err != nil {
		t.Fatal(err)
	}
	if cvals, _ := year.CodeBlock(0, n, nil); len(cvals) != n || cvals[0] != -1 {
		t.Errorf("nil-buf CodeBlock over numeric column = %v, want %d x -1", cvals, n)
	}
}

func TestColumnNullBitmap(t *testing.T) {
	c := NewFloatColumn("x")
	nulls := map[int]bool{}
	for i := 0; i < 130; i++ {
		if i%7 == 3 {
			c.AppendFloat(math.NaN())
			nulls[i] = true
		} else {
			c.AppendFloat(float64(i))
		}
	}
	bm := c.Nulls()
	if len(bm) != 3 {
		t.Fatalf("bitmap words = %d, want 3", len(bm))
	}
	for i := 0; i < 130; i++ {
		got := bm[i/64]&(1<<(uint(i)%64)) != 0
		if got != nulls[i] {
			t.Errorf("bit %d = %v, want %v", i, got, nulls[i])
		}
	}
	if !c.HasNulls() || c.NullCount() != len(nulls) {
		t.Errorf("HasNulls=%v NullCount=%d, want true %d", c.HasNulls(), c.NullCount(), len(nulls))
	}
	s := NewStringColumn("s")
	s.AppendString("a")
	s.AppendString("b")
	if s.HasNulls() {
		t.Error("string column without empty values should have no nulls")
	}
	s2 := NewStringColumn("s2")
	s2.AppendString("")
	if !s2.HasNulls() || s2.Nulls()[0]&1 == 0 {
		t.Error("empty string is NULL and must appear in the bitmap")
	}
}

func TestDataDictionary(t *testing.T) {
	dict, err := ParseDataDictionary(strings.NewReader(`
# comment
games: Number of games suspended, or indef for lifetime bans
players.name: Player full name
`))
	if err != nil {
		t.Fatal(err)
	}
	if len(dict) != 2 {
		t.Fatalf("dict = %v", dict)
	}
	d := twoTableDB(t)
	d.ApplyDataDictionary(dict)
	if got := d.Table("players").Column("name").Description; got != "Player full name" {
		t.Errorf("qualified dictionary entry not applied: %q", got)
	}
}

func TestDataDictionaryErrors(t *testing.T) {
	if _, err := ParseDataDictionary(strings.NewReader("no separator here\n")); err == nil {
		t.Error("missing ':' should fail")
	}
	if _, err := ParseDataDictionary(strings.NewReader(": desc\n")); err == nil {
		t.Error("empty name should fail")
	}
}

func TestColumnRoundTripProperty(t *testing.T) {
	// Appending any sequence of strings and reading back preserves values,
	// and codes of equal strings are equal.
	f := func(vals []string) bool {
		c := NewStringColumn("s")
		for _, v := range vals {
			c.AppendString(v)
		}
		if c.Len() != len(vals) {
			return false
		}
		for i, v := range vals {
			if v == "" {
				if !c.IsNull(i) {
					return false
				}
				continue
			}
			if c.StringAt(i) != v {
				return false
			}
			if c.Code(i) != c.CodeOf(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
