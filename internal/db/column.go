// Package db implements the in-memory relational engine that substitutes
// for PostgreSQL in the paper's architecture. It provides typed,
// column-oriented tables loaded from CSV, primary/foreign-key metadata,
// join-path discovery over an acyclic schema, and per-column value indexes.
// Query evaluation (filters, aggregates, the CUBE operator) lives in package
// sqlexec and operates on the row views exposed here.
package db

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
)

// Kind is the storage type of a column. Integer data is stored as Float with
// the Integral flag set; this matches the paper's query model, where every
// aggregate evaluates to a real number.
type Kind int

const (
	// KindString is dictionary-encoded text.
	KindString Kind = iota
	// KindFloat is numeric (integers included).
	KindFloat
)

func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindFloat:
		return "float"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Column is a typed column of a table. String columns are dictionary
// encoded: Codes[i] indexes into the dictionary, -1 meaning NULL. Float
// columns store NaN for NULL.
type Column struct {
	Name        string
	Description string // from the data dictionary, if any
	Kind        Kind
	Integral    bool // float column whose values are all integers

	floats []float64
	codes  []int32
	dict   []string
	dictID map[string]int32

	mu          sync.Mutex
	valIndex    map[int32][]int32 // string code -> row ids (built lazily)
	valIndexLen int               // rows covered by valIndex
	nullBits    []uint64          // null bitmap (built lazily by Nulls)
	nullCnt     int
	nullsLen    int // rows covered by nullBits; rebuilt when the column grew
}

// NewStringColumn returns an empty string column.
func NewStringColumn(name string) *Column {
	return &Column{Name: name, Kind: KindString, dictID: make(map[string]int32)}
}

// NewFloatColumn returns an empty numeric column.
func NewFloatColumn(name string) *Column {
	return &Column{Name: name, Kind: KindFloat, Integral: true}
}

// Len returns the number of rows stored.
func (c *Column) Len() int {
	if c.Kind == KindString {
		return len(c.codes)
	}
	return len(c.floats)
}

// AppendString appends a string value; the empty string is NULL.
func (c *Column) AppendString(v string) {
	if c.Kind != KindString {
		panic("db: AppendString on non-string column " + c.Name)
	}
	if v == "" {
		c.codes = append(c.codes, -1)
		return
	}
	id, ok := c.dictID[v]
	if !ok {
		id = int32(len(c.dict))
		c.dict = append(c.dict, v)
		c.dictID[v] = id
	}
	c.codes = append(c.codes, id)
}

// AppendFloat appends a numeric value; NaN is NULL.
func (c *Column) AppendFloat(v float64) {
	if c.Kind != KindFloat {
		panic("db: AppendFloat on non-float column " + c.Name)
	}
	if !math.IsNaN(v) && v != math.Trunc(v) {
		c.Integral = false
	}
	c.floats = append(c.floats, v)
}

// IsNull reports whether row i holds NULL.
func (c *Column) IsNull(i int) bool {
	if c.Kind == KindString {
		return c.codes[i] < 0
	}
	return math.IsNaN(c.floats[i])
}

// Float returns the numeric value at row i (NaN when NULL or non-numeric).
func (c *Column) Float(i int) float64 {
	if c.Kind == KindFloat {
		return c.floats[i]
	}
	return math.NaN()
}

// Code returns the dictionary code at row i (-1 when NULL or numeric).
func (c *Column) Code(i int) int32 {
	if c.Kind == KindString {
		return c.codes[i]
	}
	return -1
}

// Floats returns the raw backing values of a numeric column (NaN encodes
// NULL), or nil for string columns. The slice aliases column storage and
// must not be modified. Together with Codes and Nulls it forms the
// block-access contract consumed by the vectorized execution kernel.
func (c *Column) Floats() []float64 {
	if c.Kind != KindFloat {
		return nil
	}
	return c.floats
}

// Codes returns the raw dictionary codes of a string column (-1 encodes
// NULL), or nil for numeric columns. The slice aliases column storage and
// must not be modified.
func (c *Column) Codes() []int32 {
	if c.Kind != KindString {
		return nil
	}
	return c.codes
}

// Nulls returns the column's null bitmap: bit i%64 of word i/64 is set when
// row i holds NULL. The bitmap is built lazily on first use and shared
// afterwards; it must not be modified.
func (c *Column) Nulls() []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buildNullsLocked()
	return c.nullBits
}

// NullCount returns the number of NULL rows.
func (c *Column) NullCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buildNullsLocked()
	return c.nullCnt
}

// HasNulls reports whether any row holds NULL. Scan kernels use it to hoist
// the per-row NULL branch out of columns that cannot produce one.
func (c *Column) HasNulls() bool { return c.NullCount() > 0 }

func (c *Column) buildNullsLocked() {
	n := c.Len()
	if c.nullBits != nil && c.nullsLen == n {
		return
	}
	bm := make([]uint64, (n+63)/64)
	cnt := 0
	for i := 0; i < n; i++ {
		if c.IsNull(i) {
			bm[i/64] |= 1 << (uint(i) % 64)
			cnt++
		}
	}
	c.nullBits = bm
	c.nullCnt = cnt
	c.nullsLen = n
}

// CodeOf returns the dictionary code of value v, or -1 if v never occurs.
func (c *Column) CodeOf(v string) int32 {
	if c.Kind != KindString {
		return -1
	}
	if id, ok := c.dictID[v]; ok {
		return id
	}
	return -1
}

// StringAt formats the value at row i for display.
func (c *Column) StringAt(i int) string {
	if c.IsNull(i) {
		return ""
	}
	if c.Kind == KindString {
		return c.dict[c.codes[i]]
	}
	if c.Integral {
		return strconv.FormatInt(int64(c.floats[i]), 10)
	}
	return strconv.FormatFloat(c.floats[i], 'g', -1, 64)
}

// Dictionary returns the distinct non-null string values, in first-seen
// order. The returned slice must not be modified.
func (c *Column) Dictionary() []string {
	if c.Kind != KindString {
		return nil
	}
	return c.dict
}

// DistinctCount returns the number of distinct non-null values.
func (c *Column) DistinctCount() int {
	if c.Kind == KindString {
		return len(c.dict)
	}
	seen := make(map[float64]struct{})
	for _, v := range c.floats {
		if !math.IsNaN(v) {
			seen[v] = struct{}{}
		}
	}
	return len(seen)
}

// DistinctFloats returns the sorted distinct non-null numeric values.
func (c *Column) DistinctFloats() []float64 {
	if c.Kind != KindFloat {
		return nil
	}
	seen := make(map[float64]struct{})
	for _, v := range c.floats {
		if !math.IsNaN(v) {
			seen[v] = struct{}{}
		}
	}
	out := make([]float64, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Float64s(out)
	return out
}

// RowsWithCode returns the row ids whose value has the given dictionary
// code, using a lazily built index. The returned slice must not be modified.
func (c *Column) RowsWithCode(code int32) []int32 {
	if c.Kind != KindString || code < 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.valIndex == nil || c.valIndexLen != len(c.codes) {
		c.valIndex = make(map[int32][]int32)
		for i, cd := range c.codes {
			if cd >= 0 {
				c.valIndex[cd] = append(c.valIndex[cd], int32(i))
			}
		}
		c.valIndexLen = len(c.codes)
	}
	return c.valIndex[code]
}
