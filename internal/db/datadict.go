package db

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ParseDataDictionary reads a data dictionary (§4.2: optional mapping from
// column names to free-text descriptions) in the common "column: description"
// line format, with '#' comments. Returns name → description.
func ParseDataDictionary(r io.Reader) (map[string]string, error) {
	dict := make(map[string]string)
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		name, desc, ok := strings.Cut(text, ":")
		if !ok {
			return nil, fmt.Errorf("db: data dictionary line %d: missing ':'", line)
		}
		name = strings.TrimSpace(name)
		desc = strings.TrimSpace(desc)
		if name == "" {
			return nil, fmt.Errorf("db: data dictionary line %d: empty column name", line)
		}
		dict[name] = desc
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return dict, nil
}

// ApplyDataDictionary sets column descriptions from a parsed dictionary.
// Entries may be plain column names (applied to every table that has the
// column) or qualified "table.column" names. Unknown entries are ignored, as
// dictionaries often describe columns that were dropped from the CSV.
func (d *Database) ApplyDataDictionary(dict map[string]string) {
	for key, desc := range dict {
		if tbl, col, ok := strings.Cut(key, "."); ok {
			if t := d.Table(tbl); t != nil {
				if c := t.Column(col); c != nil {
					c.Description = desc
				}
			}
			continue
		}
		for _, t := range d.tables {
			if c := t.Column(key); c != nil {
				c.Description = desc
			}
		}
	}
}
