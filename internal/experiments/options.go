package experiments

import (
	"aggchecker/internal/core"
	"aggchecker/internal/corpus"
)

// Options selects the corpus slice and budget for an experiment run. Quick
// mode (used by tests and benchmarks) restricts the corpus and lowers the
// evaluation budget; full mode reproduces the paper-scale run.
type Options struct {
	Cases []*corpus.TestCase
	Quick bool
	Seed  int64
}

// NewOptions loads the corpus and picks the experiment scale.
func NewOptions(quick bool) Options {
	c := corpus.MustLoad()
	cases := c.Cases
	if quick {
		cases = cases[:12]
	}
	return Options{Cases: cases, Quick: quick, Seed: 7}
}

// BaseConfig returns the checker configuration for this scale.
func (o Options) BaseConfig() core.Config {
	cfg := core.DefaultConfig()
	if o.Quick {
		cfg.Model.EvalBudget = 400
		cfg.Model.MaxEMIters = 3
	}
	return cfg
}

// Corpus returns the full corpus regardless of the case subset (used by
// corpus-statistics figures).
func (o Options) Corpus() *corpus.Corpus { return corpus.MustLoad() }
