package experiments

import (
	"fmt"
	"io"

	"aggchecker/internal/core"
)

// RunDesignAblations measures the impact of the reproduction's own design
// choices (the deviations documented in DESIGN.md §4), beyond the paper's
// ablations: the Bernoulli restriction prior versus the paper-literal
// formula, hard versus soft expectation maximization, and the
// distinct-evidence gate's cousin knobs (score scaling and smoothing).
func RunDesignAblations(o Options) []AccuracyRow {
	type variant struct {
		name  string
		apply func(*core.Config)
	}
	variants := []variant{
		{"Current configuration", func(c *core.Config) {}},
		{"Paper-literal restriction priors", func(c *core.Config) {
			c.Model.PaperLiteralPriors = true
		}},
		{"Soft EM (posterior marginals)", func(c *core.Config) {
			c.Model.SoftEM = true
		}},
		{"No score scaling (flat keyword evidence)", func(c *core.Config) {
			c.Model.ScoreScale = 1
		}},
		{"Double smoothing (0.04)", func(c *core.Config) {
			c.Model.Smoothing = 0.04
		}},
		{"Fragment synonyms off", func(c *core.Config) {
			c.Fragments.UseSynonyms = false
		}},
	}
	var rows []AccuracyRow
	for _, v := range variants {
		cfg := o.BaseConfig()
		v.apply(&cfg)
		rows = append(rows, AccuracyRow{Name: v.name, Result: RunAutomated(o.Cases, cfg)})
	}
	return rows
}

// PrintDesignAblations renders the ablation table.
func PrintDesignAblations(w io.Writer, rows []AccuracyRow) {
	fmt.Fprintf(w, "Design ablations (reproduction-specific choices, DESIGN.md §4).\n")
	fmt.Fprintf(w, "%-44s %8s %8s %8s %8s\n", "Variant", "Top-1", "Top-5", "Recall", "Prec")
	for _, r := range rows {
		fmt.Fprintf(w, "%-44s %7.1f%% %7.1f%% %7.1f%% %7.1f%%\n",
			r.Name, r.Result.TopK(1), r.Result.TopK(5),
			100*r.Result.Confusion.Recall(), 100*r.Result.Confusion.Precision())
	}
}
