package experiments

import (
	"bytes"
	"testing"

	"aggchecker/internal/baselines"
)

// smallOptions keeps experiment tests fast: 8 cases, reduced budgets.
func smallOptions() Options {
	o := NewOptions(true)
	o.Cases = o.Cases[:8]
	return o
}

func TestRunAutomatedShape(t *testing.T) {
	o := smallOptions()
	res := RunAutomated(o.Cases, o.BaseConfig())
	wantClaims := 0
	for _, tc := range o.Cases {
		wantClaims += len(tc.Truth)
	}
	if len(res.Outcomes) != wantClaims {
		t.Fatalf("outcomes = %d, want %d", len(res.Outcomes), wantClaims)
	}
	// Paper-shape assertions: top-5 coverage well above half, F1 clearly
	// positive, correct claims covered better than incorrect ones.
	if res.TopK(5) < 55 {
		t.Errorf("top-5 coverage = %.1f%%, want > 55%%", res.TopK(5))
	}
	if res.TopK(1) > res.TopK(5) {
		t.Error("coverage must be monotone in k")
	}
	if res.TopKWhere(5, true) <= res.TopKWhere(5, false) {
		t.Errorf("correct claims should have higher coverage (%.1f vs %.1f)",
			res.TopKWhere(5, true), res.TopKWhere(5, false))
	}
	if res.Confusion.F1() < 0.4 {
		t.Errorf("F1 = %.2f, want > 0.4", res.Confusion.F1())
	}
	if res.EvaluatedQueries < 1000 {
		t.Errorf("evaluated only %d candidate queries", res.EvaluatedQueries)
	}
}

func TestModelAblationOrdering(t *testing.T) {
	o := smallOptions()
	rows := RunModelAblation(o)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Table 10's shape: evaluation results lift top-1 coverage massively
	// over keyword scores alone; priors add more (allow small slack for
	// the reduced corpus).
	scores, eval, priors := rows[0].Result.TopK(1), rows[1].Result.TopK(1), rows[2].Result.TopK(1)
	if eval <= scores {
		t.Errorf("evaluation results should lift top-1: %.1f -> %.1f", scores, eval)
	}
	if priors < eval-5 {
		t.Errorf("priors should not hurt top-1 materially: %.1f -> %.1f", eval, priors)
	}
}

func TestContextAblationOrdering(t *testing.T) {
	o := smallOptions()
	rows := RunContextAblation(o)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	first, last := rows[0].Result, rows[len(rows)-1].Result
	if last.TopK(5) < first.TopK(5) {
		t.Errorf("full context should not reduce top-5 coverage: %.1f -> %.1f",
			first.TopK(5), last.TopK(5))
	}
}

func TestBaselinesUnderperform(t *testing.T) {
	o := smallOptions()
	main := RunAutomated(o.Cases, o.BaseConfig())
	fm := RunClaimBusterFM(o, baselines.MaxSimilarity)
	kb := RunClaimBusterKB(o)
	if fm.Confusion.F1() >= main.Confusion.F1() {
		t.Errorf("ClaimBuster-FM F1 %.2f should trail AggChecker %.2f",
			fm.Confusion.F1(), main.Confusion.F1())
	}
	if kb.Confusion.F1() >= main.Confusion.F1() {
		t.Errorf("ClaimBuster-KB F1 %.2f should trail AggChecker %.2f",
			kb.Confusion.F1(), main.Confusion.F1())
	}
	// The KB pipeline's bottleneck: recall far below AggChecker's.
	if kb.Confusion.Recall() >= main.Confusion.Recall() {
		t.Errorf("NaLIR recall %.2f should trail AggChecker %.2f",
			kb.Confusion.Recall(), main.Confusion.Recall())
	}
}

func TestTable6SpeedupShape(t *testing.T) {
	o := smallOptions()
	rows := RunTable6(o)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	naive, merged, cached := rows[0], rows[1], rows[2]
	// Query merging's structural effect is scan volume: one cube pass
	// answers hundreds of candidates. (The paper's 62× time speedup also
	// reflects Postgres per-query overhead that an embedded engine does not
	// pay, so the wall-clock ratio compresses here — see EXPERIMENTS.md.)
	if merged.Rows*5 >= naive.Rows {
		t.Errorf("merging should cut scanned rows >5x: naive %d, merged %d", naive.Rows, merged.Rows)
	}
	if cached.Rows >= merged.Rows {
		t.Errorf("caching should cut scanned rows further: merged %d, cached %d", merged.Rows, cached.Rows)
	}
	// Since direct scans run through the same vectorized block pipeline as
	// cube passes (with zone-map pruning), the naive baseline is no longer
	// slow per query at smoke scale — the tables are tiny, so per-query
	// wall clock converges across strategies and only the scanned-row
	// volume above separates them structurally. Keep a generous slack so
	// a cached-mode pathology still fails the test.
	if cached.Query > naive.Query*3/2 {
		t.Errorf("cached mode much slower than naive: %v vs %v", naive.Query, cached.Query)
	}
	var buf bytes.Buffer
	PrintTable6(&buf, rows)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestFigure8Monotonicity(t *testing.T) {
	o := smallOptions()
	rows := RunFigure8(o)
	if len(rows) != 53 {
		t.Fatalf("rows = %d, want 53", len(rows))
	}
	for _, r := range rows {
		if r.Log10 < 3 {
			t.Errorf("%s: candidate space 10^%.1f implausibly small", r.Case, r.Log10)
		}
	}
}

func TestFigure9Stats(t *testing.T) {
	o := smallOptions()
	d := RunFigure9(o)
	if len(d.ClaimsPerArticle) != 53 {
		t.Fatalf("articles = %d", len(d.ClaimsPerArticle))
	}
	sum := d.PredBreakdown[0] + d.PredBreakdown[1] + d.PredBreakdown[2]
	if sum < 99.9 || sum > 100.1 {
		t.Errorf("predicate breakdown sums to %.1f", sum)
	}
	// Figure 9b: coverage grows with N and is high by N=3 (paper: ~90%).
	if d.TopNCoverage[2] < 70 {
		t.Errorf("top-3 characteristic coverage = %.1f%%, want > 70%%", d.TopNCoverage[2])
	}
	if d.TopNCoverage[9] < d.TopNCoverage[2] {
		t.Error("coverage must be monotone in N")
	}
}

func TestFigure12Tradeoff(t *testing.T) {
	o := smallOptions()
	rows := RunFigure12(o, []float64{0.5, 0.999})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Lower pT makes the system more suspicious: recall at pT=0.5 must be
	// at least that at pT=0.999, precision at most.
	if rows[0].Recall < rows[1].Recall {
		t.Errorf("recall should not grow with pT: %.2f (0.5) vs %.2f (0.999)",
			rows[0].Recall, rows[1].Recall)
	}
	if rows[0].Precision > rows[1].Precision+1e-9 {
		t.Errorf("precision should not shrink with pT: %.2f vs %.2f",
			rows[0].Precision, rows[1].Precision)
	}
}

func TestTable9ListsErrors(t *testing.T) {
	o := smallOptions()
	entries := RunTable9(o, 5)
	if len(entries) == 0 {
		t.Fatal("no erroneous claims listed")
	}
	var buf bytes.Buffer
	PrintTable9(&buf, entries)
	if buf.Len() == 0 {
		t.Error("empty render")
	}
}

func TestPrintersProduceOutput(t *testing.T) {
	o := smallOptions()
	var buf bytes.Buffer
	PrintFigure8(&buf, RunFigure8(o)[:5])
	PrintFigure9(&buf, RunFigure9(o))
	rows := RunModelAblation(o)
	PrintTable10(&buf, rows)
	PrintFigure11(&buf, rows)
	if buf.Len() < 200 {
		t.Errorf("renders too small: %d bytes", buf.Len())
	}
}
