package experiments

import (
	"fmt"
	"io"

	"aggchecker/internal/study"
)

// StudyBundle caches the simulated on-site study so Tables 3/4/8 and
// Figures 6/7 share one run, as in the paper.
type StudyBundle struct {
	Inputs []*study.CaseInput
	Result *study.OnsiteResult
}

// RunStudy prepares checker outputs for the six study articles and
// simulates the eight-user on-site study.
func RunStudy(o Options) *StudyBundle {
	cases := o.Corpus().StudyCases()
	inputs := study.PrepareInputs(cases, o.BaseConfig())
	return &StudyBundle{
		Inputs: inputs,
		Result: study.RunOnsiteStudy(inputs, 8, o.Seed),
	}
}

// PrintTable3 renders the interface-feature shares.
func PrintTable3(w io.Writer, b *StudyBundle) {
	shares := b.Result.FeatureShares()
	fmt.Fprintf(w, "Table 3: Verification by used AggChecker features.\n")
	fmt.Fprintf(w, "%-10s %-10s %-10s %-10s\n", "Top-1", "Top-5", "Top-10", "Custom")
	fmt.Fprintf(w, "%-10s %-10s %-10s %-10s\n",
		Pct(shares[study.ActionTop1]), Pct(shares[study.ActionTop5]),
		Pct(shares[study.ActionTop10]), Pct(shares[study.ActionCustom]))
}

// PrintTable4 renders the on-site study quality comparison.
func PrintTable4(w io.Writer, b *StudyBundle) {
	agg, sql := b.Result.ToolConfusions()
	fmt.Fprintf(w, "Table 4: Results of on-site user study.\n")
	fmt.Fprintf(w, "%-20s %8s %10s %8s\n", "Tool", "Recall", "Precision", "F1")
	fmt.Fprintf(w, "%-20s %7.1f%% %9.1f%% %7.1f%%\n", "AggChecker + User",
		100*agg.Recall(), 100*agg.Precision(), 100*agg.F1())
	fmt.Fprintf(w, "%-20s %7.1f%% %9.1f%% %7.1f%%\n", "SQL + User",
		100*sql.Recall(), 100*sql.Precision(), 100*sql.F1())
	fmt.Fprintf(w, "Mean AggChecker speedup: %.1fx (paper: ~6x)\n", b.Result.Speedup())
}

// PrintTable8 renders the user survey counts.
func PrintTable8(w io.Writer, b *StudyBundle) {
	counts := b.Result.SurveyCounts()
	fmt.Fprintf(w, "Table 8: Results of user survey.\n")
	fmt.Fprintf(w, "%-18s %6s %6s %8s %5s %6s\n", "Criterion", "SQL++", "SQL+", "SQL≈AC", "AC+", "AC++")
	for _, crit := range []string{"Overall", "Learning", "Correct Claims", "Incorrect Claims"} {
		row := counts[crit]
		fmt.Fprintf(w, "%-18s %6d %6d %8d %5d %6d\n", crit, row[0], row[1], row[2], row[3], row[4])
	}
}

// PrintTable11 renders the crowd-worker study.
func PrintTable11(w io.Writer, o Options, b *StudyBundle) {
	var doc, para *study.CaseInput
	for _, in := range b.Inputs {
		if len(in.Case.Truth) > 15 && doc == nil {
			doc = in
		}
		if in.Case.Name == "nfl-suspensions" {
			para = in
		}
	}
	if para == nil {
		para = b.Inputs[0]
	}
	rows := study.RunAMTStudy(doc, para, o.Seed)
	fmt.Fprintf(w, "Table 11: Amazon Mechanical Turk results.\n")
	fmt.Fprintf(w, "%-12s %-10s %8s %8s %10s %8s\n", "Tool", "Scope", "Workers", "Recall", "Precision", "F1")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %-10s %8d %7.1f%% %9.1f%% %7.1f%%\n",
			r.Tool, r.Scope, r.Workers,
			100*r.Confusion.Recall(), 100*r.Confusion.Precision(), 100*r.Confusion.F1())
	}
}

// PrintFigure6 renders the cumulative verified-claims curves.
func PrintFigure6(w io.Writer, b *StudyBundle) {
	fmt.Fprintf(w, "Figure 6: correctly verified claims over time (avg across users).\n")
	for a, in := range b.Inputs {
		budget := study.BudgetFor(in.Case)
		agg := b.Result.VerifiedSeries(a, "aggchecker", 10)
		sql := b.Result.VerifiedSeries(a, "sql", 10)
		fmt.Fprintf(w, "%s (budget %.0fs, %d claims)\n", in.Case.Name, budget, len(in.Case.Truth))
		fmt.Fprintf(w, "  t(s):      ")
		for i := range agg {
			fmt.Fprintf(w, "%6.0f", budget*float64(i)/float64(len(agg)-1))
		}
		fmt.Fprintf(w, "\n  AggChecker:")
		for _, v := range agg {
			fmt.Fprintf(w, "%6.1f", v)
		}
		fmt.Fprintf(w, "\n  SQL:       ")
		for _, v := range sql {
			fmt.Fprintf(w, "%6.1f", v)
		}
		fmt.Fprintln(w)
	}
}

// PrintFigure7 renders verification throughput by user and article.
func PrintFigure7(w io.Writer, b *StudyBundle) {
	fmt.Fprintf(w, "Figure 7: claims verified per minute.\n")
	fmt.Fprintf(w, "By user:    %-14s %s\n", "AggChecker", "SQL")
	for u, p := range b.Result.UserThroughputs() {
		fmt.Fprintf(w, "  user %d:   %-14s %s\n", u,
			fmt.Sprintf("%.2f", p[0]), fmt.Sprintf("%.2f", p[1]))
	}
	fmt.Fprintf(w, "By article: %-14s %s\n", "AggChecker", "SQL")
	for a, p := range b.Result.ArticleThroughputs() {
		name := b.Inputs[a].Case.Name
		fmt.Fprintf(w, "  %-24s %-8.2f %.2f\n", ellipsize(name, 24), p[0], p[1])
	}
}

func ellipsize(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
