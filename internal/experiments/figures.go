package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"aggchecker/internal/corpus"
	"aggchecker/internal/fragments"
)

// Figure8Row is one data set's candidate-space size.
type Figure8Row struct {
	Case  string
	Log10 float64
}

// RunFigure8 counts the Simple Aggregate Queries expressible over every
// corpus data set (log scale, as in the paper where counts reach 10^12).
func RunFigure8(o Options) []Figure8Row {
	var rows []Figure8Row
	for _, tc := range o.Corpus().Cases {
		cat := fragments.BuildCatalog(tc.DB, fragments.DefaultOptions())
		rows = append(rows, Figure8Row{Case: tc.Name, Log10: cat.CandidateSpaceLog10()})
	}
	return rows
}

// PrintFigure8 renders an ASCII log-scale chart.
func PrintFigure8(w io.Writer, rows []Figure8Row) {
	fmt.Fprintf(w, "Figure 8: Number of possible query candidates per data set (log10).\n")
	for _, r := range rows {
		bar := strings.Repeat("#", int(r.Log10))
		fmt.Fprintf(w, "%-18s 10^%5.1f %s\n", r.Case, r.Log10, bar)
	}
}

// Figure9Data reproduces the test-case analysis of Figure 9.
type Figure9Data struct {
	ClaimsPerArticle []int
	ErrorsPerArticle []int
	// TopNCoverage[n-1] is the mean per-document percentage of claims whose
	// characteristics (function, column, predicate column set) are covered
	// by the n most frequent instances in that document (Figure 9b).
	TopNCoverage []float64
	// PredBreakdown is the percentage of claims with 0, 1, 2+ predicates.
	PredBreakdown [3]float64
}

// RunFigure9 computes the corpus ground-truth statistics.
func RunFigure9(o Options) Figure9Data {
	c := o.Corpus()
	stats := c.ComputeStats()
	data := Figure9Data{
		ClaimsPerArticle: stats.ClaimsPerArticle,
		ErrorsPerArticle: stats.ErrorsPerArticle,
	}
	total := float64(stats.Claims)
	data.PredBreakdown = [3]float64{
		100 * float64(stats.PredCounts[0]) / total,
		100 * float64(stats.PredCounts[1]) / total,
		100 * float64(stats.PredCounts[2]+stats.PredCounts[3]) / total,
	}
	// Figure 9b: per-document characteristic concentration.
	maxN := 20
	data.TopNCoverage = make([]float64, maxN)
	for n := 1; n <= maxN; n++ {
		var perDoc []float64
		for _, tc := range c.Cases {
			perDoc = append(perDoc, characteristicCoverage(tc, n))
		}
		var sum float64
		for _, v := range perDoc {
			sum += v
		}
		data.TopNCoverage[n-1] = sum / float64(len(perDoc))
	}
	return data
}

// characteristicCoverage computes, for one document, the percentage of
// claims whose aggregation function, aggregation column AND predicate
// column set are all within the document's n most frequent instances of
// each characteristic (Figure 9b's definition).
func characteristicCoverage(tc *corpus.TestCase, n int) float64 {
	if len(tc.Truth) == 0 {
		return 0
	}
	fnCount := map[string]int{}
	colCount := map[string]int{}
	predSetCount := map[string]int{}
	keyOf := func(t corpus.ClaimTruth) (string, string, string) {
		cols := make([]string, 0, len(t.Query.Preds))
		for _, p := range t.Query.Preds {
			cols = append(cols, p.Col.String())
		}
		sort.Strings(cols)
		return t.Query.Agg.String(), t.Query.AggCol.String(), strings.Join(cols, "|")
	}
	for _, t := range tc.Truth {
		f, c, p := keyOf(t)
		fnCount[f]++
		colCount[c]++
		predSetCount[p]++
	}
	topSet := func(counts map[string]int) map[string]bool {
		type kv struct {
			k string
			v int
		}
		var items []kv
		for k, v := range counts {
			items = append(items, kv{k, v})
		}
		sort.Slice(items, func(i, j int) bool {
			if items[i].v != items[j].v {
				return items[i].v > items[j].v
			}
			return items[i].k < items[j].k
		})
		out := map[string]bool{}
		for i := 0; i < n && i < len(items); i++ {
			out[items[i].k] = true
		}
		return out
	}
	topFn, topCol, topPred := topSet(fnCount), topSet(colCount), topSet(predSetCount)
	covered := 0
	for _, t := range tc.Truth {
		f, c, p := keyOf(t)
		if topFn[f] && topCol[c] && topPred[p] {
			covered++
		}
	}
	return 100 * float64(covered) / float64(len(tc.Truth))
}

// PrintFigure9 renders all three panels.
func PrintFigure9(w io.Writer, d Figure9Data) {
	fmt.Fprintf(w, "Figure 9a: claims per article (errors in parentheses)\n")
	for i, c := range d.ClaimsPerArticle {
		fmt.Fprintf(w, "%3d", c)
		if d.ErrorsPerArticle[i] > 0 {
			fmt.Fprintf(w, "(%d)", d.ErrorsPerArticle[i])
		}
		if (i+1)%10 == 0 {
			fmt.Fprintln(w)
		}
	}
	fmt.Fprintf(w, "\nFigure 9b: mean per-document coverage by top-N characteristics\n")
	for n, v := range d.TopNCoverage {
		fmt.Fprintf(w, "  top-%-2d %6.1f%%\n", n+1, v)
	}
	fmt.Fprintf(w, "Figure 9c: predicates per claim: zero %.0f%%, one %.0f%%, two+ %.0f%%\n",
		d.PredBreakdown[0], d.PredBreakdown[1], d.PredBreakdown[2])
}

// Figure10Data holds coverage curves for total/correct/incorrect claims.
type Figure10Data struct {
	Ks        []int
	Total     []float64
	Correct   []float64
	Incorrect []float64
}

// RunFigure10 computes top-k coverage curves from a main-configuration run.
func RunFigure10(o Options) Figure10Data {
	res := RunAutomated(o.Cases, o.BaseConfig())
	var d Figure10Data
	for k := 1; k <= 20; k++ {
		d.Ks = append(d.Ks, k)
		d.Total = append(d.Total, res.TopK(k))
		d.Correct = append(d.Correct, res.TopKWhere(k, true))
		d.Incorrect = append(d.Incorrect, res.TopKWhere(k, false))
	}
	return d
}

// PrintFigure10 renders the coverage curves.
func PrintFigure10(w io.Writer, d Figure10Data) {
	fmt.Fprintf(w, "Figure 10: top-k coverage (%%).\n%4s %8s %8s %10s\n", "k", "Total", "Correct", "Incorrect")
	for i, k := range d.Ks {
		fmt.Fprintf(w, "%4d %7.1f%% %7.1f%% %9.1f%%\n", k, d.Total[i], d.Correct[i], d.Incorrect[i])
	}
}

// PrintFigure11 renders the keyword-context coverage ablation.
func PrintFigure11(w io.Writer, rows []AccuracyRow) {
	fmt.Fprintf(w, "Figure 11: top-k coverage by keyword context.\n")
	fmt.Fprintf(w, "%-34s %8s %8s %8s\n", "Context", "Top-1", "Top-5", "Top-10")
	for _, r := range rows {
		fmt.Fprintf(w, "%-34s %7.1f%% %7.1f%% %7.1f%%\n",
			r.Name, r.Result.TopK(1), r.Result.TopK(5), r.Result.TopK(10))
	}
}

// Figure12Row is one pT setting's outcome.
type Figure12Row struct {
	PT                    float64
	Recall, Precision, F1 float64
}

// RunFigure12 sweeps the true-claim prior pT.
func RunFigure12(o Options, pts []float64) []Figure12Row {
	var rows []Figure12Row
	for _, pt := range pts {
		cfg := o.BaseConfig()
		cfg.Model.PT = pt
		res := RunAutomated(o.Cases, cfg)
		rows = append(rows, Figure12Row{
			PT:     pt,
			Recall: res.Confusion.Recall(), Precision: res.Confusion.Precision(),
			F1: res.Confusion.F1(),
		})
	}
	return rows
}

// PrintFigure12 renders the sweep.
func PrintFigure12(w io.Writer, rows []Figure12Row) {
	fmt.Fprintf(w, "Figure 12: parameter pT versus recall and precision.\n")
	fmt.Fprintf(w, "%8s %8s %10s %8s\n", "pT", "Recall", "Precision", "F1")
	for _, r := range rows {
		fmt.Fprintf(w, "%8.4f %7.1f%% %9.1f%% %7.1f%%\n",
			r.PT, 100*r.Recall, 100*r.Precision, 100*r.F1)
	}
}

// PrintFigure13 renders the processing-budget sweeps.
func PrintFigure13(w io.Writer, hits, aggs []AccuracyRow) {
	fmt.Fprintf(w, "Figure 13: top-k coverage versus processing overheads.\n")
	fmt.Fprintf(w, "%-22s %10s %8s %8s\n", "Budget", "Time", "Top-1", "Top-10")
	for _, r := range hits {
		fmt.Fprintf(w, "%-22s %9.1fs %7.1f%% %7.1f%%\n",
			r.Name, r.Result.TotalTime.Seconds(), r.Result.TopK(1), r.Result.TopK(10))
	}
	for _, r := range aggs {
		fmt.Fprintf(w, "%-22s %9.1fs %7.1f%% %7.1f%%\n",
			r.Name, r.Result.TotalTime.Seconds(), r.Result.TopK(1), r.Result.TopK(10))
	}
}
