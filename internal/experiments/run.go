// Package experiments regenerates every table and figure of the paper's
// evaluation (§7 and appendices) over the reproduction corpus. Each
// experiment has a Run function returning structured results plus a
// renderer that prints rows in the paper's format; cmd/experiments and the
// repository benchmarks share these entry points.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"aggchecker/internal/core"
	"aggchecker/internal/corpus"
	"aggchecker/internal/metrics"
	"aggchecker/internal/model"
)

// ClaimOutcome pairs one claim's ground truth with the checker's output.
type ClaimOutcome struct {
	Case      *corpus.TestCase
	ClaimIdx  int
	Truth     corpus.ClaimTruth
	Rank      int // rank of the ground-truth query in the posterior, -1 absent
	Flagged   bool
	Claimed   float64
	BestQuery string
}

// AccuracyResult aggregates a full automated-checking run.
type AccuracyResult struct {
	Outcomes  []ClaimOutcome
	Confusion metrics.Confusion
	TotalTime time.Duration
	QueryTime time.Duration
	// EvaluatedQueries counts candidate queries sent to evaluators.
	EvaluatedQueries int
	// RowsScanned totals the engine's scan volume across cases.
	RowsScanned int64
	// Stats sums every engine counter (sqlexec.Stats.Snapshot keys: cube
	// passes, cache hits/misses, singleflight dedups, lock waits, ...)
	// across cases; Table 6 regeneration reads the execution profile here.
	Stats map[string]int64
}

// TopK returns the percentage of claims whose ground-truth query ranked in
// the top k.
func (r *AccuracyResult) TopK(k int) float64 {
	ranks := make([]int, len(r.Outcomes))
	for i, o := range r.Outcomes {
		ranks[i] = o.Rank
	}
	return metrics.TopKCoverage(ranks, k)
}

// TopKWhere filters claims by correctness before computing coverage
// (Figure 10 separates correct and incorrect claims).
func (r *AccuracyResult) TopKWhere(k int, correct bool) float64 {
	var ranks []int
	for _, o := range r.Outcomes {
		if o.Truth.Correct == correct {
			ranks = append(ranks, o.Rank)
		}
	}
	return metrics.TopKCoverage(ranks, k)
}

// RunAutomated checks every case with the given configuration and collects
// accuracy metrics. Cases run in parallel (each has its own database and
// checker); per-case results are merged in corpus order so output is
// deterministic.
func RunAutomated(cases []*corpus.TestCase, cfg core.Config) *AccuracyResult {
	type caseResult struct {
		outcomes  []ClaimOutcome
		totalTime time.Duration
		queryTime time.Duration
		evaluated int
		rows      int64
		stats     map[string]int64
	}
	results := make([]caseResult, len(cases))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, tc := range cases {
		wg.Add(1)
		go func(i int, tc *corpus.TestCase) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			checker := core.NewChecker(tc.DB, cfg)
			report, err := checker.Check(context.Background(), tc.Doc)
			if err != nil {
				// Unreachable with a background context; guard anyway.
				panic(err)
			}
			cr := caseResult{
				totalTime: report.TotalTime,
				queryTime: report.QueryTime,
				evaluated: report.Result.EvaluatedQueries,
				rows:      report.Stats["rows_scanned"],
				stats:     report.Stats,
			}
			for ci, claimRes := range report.Claims() {
				truth := tc.Truth[ci]
				best := ""
				if b := claimRes.Best(); b != nil {
					best = b.Query.SQL(tc.DB.Tables()[0].Name)
				}
				cr.outcomes = append(cr.outcomes, ClaimOutcome{
					Case:      tc,
					ClaimIdx:  ci,
					Truth:     truth,
					Rank:      core.RankOf(claimRes, truth.Query),
					Flagged:   claimRes.Erroneous,
					Claimed:   truth.ClaimedValue,
					BestQuery: best,
				})
			}
			results[i] = cr
		}(i, tc)
	}
	wg.Wait()

	agg := &AccuracyResult{Stats: make(map[string]int64)}
	for _, cr := range results {
		agg.Outcomes = append(agg.Outcomes, cr.outcomes...)
		agg.TotalTime += cr.totalTime
		agg.QueryTime += cr.queryTime
		agg.EvaluatedQueries += cr.evaluated
		agg.RowsScanned += cr.rows
		for k, v := range cr.stats {
			agg.Stats[k] += v
		}
	}
	for _, o := range agg.Outcomes {
		agg.Confusion.Add(o.Flagged, !o.Truth.Correct)
	}
	return agg
}

// Pct formats a ratio as a percentage string.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// DefaultCorpus loads the full 53-article corpus.
func DefaultCorpus() *corpus.Corpus { return corpus.MustLoad() }

// ModelVariant tweaks the model config for ablation rows.
type ModelVariant struct {
	Name  string
	Apply func(*core.Config)
}

// quickConfig lowers budgets for fast smoke runs (tests).
func quickConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Model.EvalBudget = 400
	cfg.Model.MaxEMIters = 3
	return cfg
}

var _ = model.DefaultConfig // keep the import for variants defined later
