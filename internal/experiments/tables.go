package experiments

import (
	"fmt"
	"io"
	"time"

	"aggchecker/internal/baselines"
	"aggchecker/internal/core"
	"aggchecker/internal/corpus"
	"aggchecker/internal/metrics"
)

// AccuracyRow is one row of Table 5 (and of the ablation figures that share
// its runs).
type AccuracyRow struct {
	Name   string
	Result *AccuracyResult
}

// Confusion shortcuts.
func (r AccuracyRow) Recall() float64    { return r.Result.Confusion.Recall() }
func (r AccuracyRow) Precision() float64 { return r.Result.Confusion.Precision() }
func (r AccuracyRow) F1() float64        { return r.Result.Confusion.F1() }

// RunContextAblation reproduces the keyword-context block of Table 5 and
// Figure 11: context sources are enabled cumulatively.
func RunContextAblation(o Options) []AccuracyRow {
	type variant struct {
		name  string
		apply func(*core.Config)
	}
	variants := []variant{
		{"Claim sentence", func(c *core.Config) {
			c.Context.UsePrevSentence = false
			c.Context.UseParagraphStart = false
			c.Context.UseSynonyms = false
			c.Context.UseHeadlines = false
		}},
		{"+ Previous sentence", func(c *core.Config) {
			c.Context.UseParagraphStart = false
			c.Context.UseSynonyms = false
			c.Context.UseHeadlines = false
		}},
		{"+ Paragraph Start", func(c *core.Config) {
			c.Context.UseSynonyms = false
			c.Context.UseHeadlines = false
		}},
		{"+ Synonyms", func(c *core.Config) {
			c.Context.UseHeadlines = false
		}},
		{"+ Headlines (current version)", func(c *core.Config) {}},
	}
	var rows []AccuracyRow
	for _, v := range variants {
		cfg := o.BaseConfig()
		v.apply(&cfg)
		rows = append(rows, AccuracyRow{Name: v.name, Result: RunAutomated(o.Cases, cfg)})
	}
	return rows
}

// RunModelAblation reproduces the probabilistic-model block of Table 5 and
// Table 10: relevance scores only, plus evaluation results, plus priors.
func RunModelAblation(o Options) []AccuracyRow {
	type variant struct {
		name  string
		apply func(*core.Config)
	}
	variants := []variant{
		{"Relevance scores Sc", func(c *core.Config) {
			c.Model.UseEvalResults = false
			c.Model.UsePriors = false
		}},
		{"+ Evaluation results Ec", func(c *core.Config) {
			c.Model.UsePriors = false
		}},
		{"+ Learning priors Θ (current version)", func(c *core.Config) {}},
	}
	var rows []AccuracyRow
	for _, v := range variants {
		cfg := o.BaseConfig()
		v.apply(&cfg)
		rows = append(rows, AccuracyRow{Name: v.name, Result: RunAutomated(o.Cases, cfg)})
	}
	return rows
}

// RunHitsSweep reproduces the "# Hits" block of Table 5 and the left panel
// of Figure 13.
func RunHitsSweep(o Options, hits []int) []AccuracyRow {
	var rows []AccuracyRow
	for _, h := range hits {
		cfg := o.BaseConfig()
		cfg.Model.TopKHits = h
		name := fmt.Sprintf("# Hits = %d", h)
		if h == 20 {
			name += " (current version)"
		}
		rows = append(rows, AccuracyRow{Name: name, Result: RunAutomated(o.Cases, cfg)})
	}
	return rows
}

// RunAggColsSweep reproduces the right panel of Figure 13 (# aggregation
// columns considered during evaluation).
func RunAggColsSweep(o Options, cols []int) []AccuracyRow {
	var rows []AccuracyRow
	for _, n := range cols {
		cfg := o.BaseConfig()
		cfg.Model.MaxAggCols = n
		rows = append(rows, AccuracyRow{
			Name:   fmt.Sprintf("# Aggregates = %d", n),
			Result: RunAutomated(o.Cases, cfg),
		})
	}
	return rows
}

// BaselineRow is one baseline comparison row.
type BaselineRow struct {
	Name      string
	Confusion metrics.Confusion
	Time      time.Duration
}

// RunClaimBusterFM evaluates ClaimBuster-FM over the corpus with
// leave-one-article-out fact repositories built from the other articles'
// claims — the paper's repository covers previously fact-checked popular
// statements, never the article under test.
func RunClaimBusterFM(o Options, agg baselines.Aggregation) BaselineRow {
	start := time.Now()
	var conf metrics.Confusion
	for _, tc := range o.Cases {
		repo := factRepositoryExcluding(o.Cases, tc)
		for ci, claim := range tc.Doc.Claims {
			v := repo.CheckFM(claim.Sentence.Text, agg)
			conf.Add(v.Flagged, !tc.Truth[ci].Correct)
		}
	}
	name := "ClaimBuster-FM (Max)"
	if agg == baselines.MajorityVote {
		name = "ClaimBuster-FM (MV)"
	}
	return BaselineRow{Name: name, Confusion: conf, Time: time.Since(start)}
}

func factRepositoryExcluding(cases []*corpus.TestCase, exclude *corpus.TestCase) *baselines.FactRepository {
	// Fact-check repositories over-represent debunked statements (that is
	// what fact checkers publish), so every erroneous claim enters the
	// repository while only a third of the correct ones do.
	var facts []baselines.Fact
	kept := 0
	for _, tc := range cases {
		if tc == exclude {
			continue
		}
		for ci, claim := range tc.Doc.Claims {
			correct := tc.Truth[ci].Correct
			if correct {
				kept++
				if kept%3 != 0 {
					continue
				}
			}
			facts = append(facts, baselines.Fact{
				Statement: claim.Sentence.Text,
				True:      correct,
			})
		}
	}
	return baselines.NewFactRepository(facts)
}

// RunClaimBusterKB evaluates ClaimBuster-KB backed by the NaLIR-style
// natural-language interface over each article's own database.
func RunClaimBusterKB(o Options) BaselineRow {
	start := time.Now()
	var conf metrics.Confusion
	for _, tc := range o.Cases {
		nalir := baselines.NewNaLIR(tc.DB)
		for ci, claim := range tc.Doc.Claims {
			v := nalir.CheckKB(claim)
			conf.Add(v.Flagged, !tc.Truth[ci].Correct)
		}
	}
	return BaselineRow{Name: "ClaimBuster-KB + NaLIR", Confusion: conf, Time: time.Since(start)}
}

// Table6Row is one execution-strategy row of Table 6.
type Table6Row struct {
	Name      string
	Total     time.Duration
	Query     time.Duration
	Evaluated int
	Rows      int64 // rows scanned by the engine
	Stats     map[string]int64
}

// RunTable6 checks the corpus under the three evaluation strategies. The
// evaluation budget is kept at paper scale even in quick mode: the benefit
// of query merging (Table 6) only manifests when each claim contributes a
// large candidate batch, exactly as the paper's tens of thousands of
// evaluations per document.
func RunTable6(o Options) []Table6Row {
	modes := []struct {
		name string
		mode core.EvalMode
	}{
		{"Naive", core.EvalNaive},
		{"+ Query Merging", core.EvalMerged},
		{"+ Caching", core.EvalCached},
	}
	var rows []Table6Row
	for _, m := range modes {
		cfg := o.BaseConfig()
		cfg.Mode = m.mode
		if cfg.Model.EvalBudget < 2000 {
			cfg.Model.EvalBudget = 2000
		}
		res := RunAutomated(o.Cases, cfg)
		rows = append(rows, Table6Row{
			Name:      m.name,
			Total:     res.TotalTime,
			Query:     res.QueryTime,
			Evaluated: res.EvaluatedQueries,
			Rows:      res.RowsScanned,
			Stats:     res.Stats,
		})
	}
	return rows
}

// PrintTable5 renders the full comparison table in the paper's layout.
func PrintTable5(w io.Writer, context, modelRows, hits []AccuracyRow, fm1, fm2, kb BaselineRow, main AccuracyRow) {
	fmt.Fprintf(w, "Table 5: Comparison of AggChecker with baselines.\n")
	fmt.Fprintf(w, "%-42s %8s %10s %8s %8s\n", "Tool", "Recall", "Precision", "F1", "Time")
	section := func(title string) { fmt.Fprintf(w, "-- %s --\n", title) }
	row := func(name string, c metrics.Confusion, d time.Duration) {
		t := "-"
		if d > 0 {
			t = fmt.Sprintf("%.0fs", d.Seconds())
		}
		fmt.Fprintf(w, "%-42s %7.1f%% %9.1f%% %7.1f%% %8s\n",
			name, 100*c.Recall(), 100*c.Precision(), 100*c.F1(), t)
	}
	section("AggChecker - Keyword Context (Figure 11)")
	for _, r := range context {
		row(r.Name, r.Result.Confusion, 0)
	}
	section("AggChecker - Probabilistic Model (Table 10)")
	for _, r := range modelRows {
		row(r.Name, r.Result.Confusion, 0)
	}
	section("AggChecker - Time Budget by IR Hits (Figure 13)")
	for _, r := range hits {
		row(r.Name, r.Result.Confusion, r.Result.TotalTime)
	}
	section("Baselines")
	row(fm1.Name, fm1.Confusion, fm1.Time)
	row(fm2.Name, fm2.Confusion, fm2.Time)
	row(kb.Name, kb.Confusion, kb.Time)
	row("AggChecker Automatic", main.Result.Confusion, main.Result.TotalTime)
}

// PrintTable6 renders the execution-strategy comparison. Speedups are
// reported both on query time and on scanned-row volume: the paper's naive
// baseline pays Postgres per-query overheads that an embedded engine does
// not, so the row-volume ratio is the comparable work measure while the
// time ratio compresses (EXPERIMENTS.md discusses this).
func PrintTable6(w io.Writer, rows []Table6Row) {
	fmt.Fprintf(w, "Table 6: Run time for all test cases.\n")
	fmt.Fprintf(w, "%-18s %10s %10s %10s %14s %10s %12s %8s %8s %8s %8s %8s %8s %8s %8s %8s %8s %8s %8s %8s %8s %8s %8s %8s %9s %8s\n",
		"Version", "Total", "Query", "Speedup", "RowsScanned", "RowSpdup", "#Queries",
		"Cubes", "CacheHit", "HitRate", "SavedMs", "SavedMB", "Dedup", "LockWait", "Blocks", "Pruned", "Gather%", "Partial", "DirScan", "SelReuse",
		"Morsels", "QWait", "Steal", "Fanout", "MergeMs", "Straggl")
	var prevQuery time.Duration
	var prevRows int64
	for i, r := range rows {
		speed, rspeed := "-", "-"
		if i > 0 && r.Query > 0 {
			speed = fmt.Sprintf("x%.1f", float64(prevQuery)/float64(r.Query))
		}
		if i > 0 && r.Rows > 0 {
			rspeed = fmt.Sprintf("x%.1f", float64(prevRows)/float64(r.Rows))
		}
		// Dedup counts coalesced concurrent duplicates, cube and join-view
		// alike: within one document's batch the planner already dedups
		// cube signatures, so view coalescing inside the worker pool is
		// the common case and cube coalescing appears when several
		// documents share one engine.
		//
		// Blocks/Pruned/Gather%/Partial profile the shared scan pipeline:
		// blocks scanned (cube passes and vectorized direct scans alike),
		// blocks skipped by zone maps, the share of per-column block reads
		// that gathered through join-view row maps (vs zero-copy column
		// slices), and row-range partials merged inside cube passes.
		// DirScan counts direct queries run through the vectorized
		// pipeline (the Naive row's scans, plus planner fallbacks in the
		// merged modes); SelReuse the segments that filtered through a
		// reused selection-vector buffer.
		//
		// Morsels/QWait/Steal profile the shared scan scheduler: morsels
		// dispatched across all scans, submissions that found no idle
		// worker, and morsels helper workers stole from other requests'
		// queues. All zero when scans run on private pools (no scheduler
		// installed) or below the parallel threshold.
		//
		// Fanout/MergeMs/Straggl profile sharded scatter-gather: fan-outs
		// issued to shard workers, cumulative partial-merge time, and
		// workers lagging far behind a fan-out's median. All zero when the
		// checker runs unsharded (Config.Shards <= 1).
		gatherPct := "-"
		if tot := r.Stats["direct_block_reads"] + r.Stats["gather_block_reads"]; tot > 0 {
			gatherPct = fmt.Sprintf("%.0f%%", 100*float64(r.Stats["gather_block_reads"])/float64(tot))
		}
		// HitRate/SavedMs/SavedMB surface the cost-aware cube cache's
		// economics: the share of cube lookups served without a pass, and
		// the cumulative build time / result bytes those hits avoided
		// re-spending (the cache's earnings, also reported by corpus audits
		// and the /status endpoint).
		hitRate := "-"
		if tot := r.Stats["cache_hits"] + r.Stats["cache_misses"]; tot > 0 {
			hitRate = fmt.Sprintf("%.0f%%", 100*float64(r.Stats["cache_hits"])/float64(tot))
		}
		fmt.Fprintf(w, "%-18s %9.1fs %9.1fs %10s %14d %10s %12d %8d %8d %8s %8.0f %8.1f %8d %8d %8d %8d %8s %8d %8d %8d %8d %8d %8d %8d %9.1f %8d\n",
			r.Name, r.Total.Seconds(), r.Query.Seconds(), speed, r.Rows, rspeed, r.Evaluated,
			r.Stats["cube_passes"], r.Stats["cache_hits"], hitRate,
			float64(r.Stats["cube_cache_ns_saved"])/1e6, float64(r.Stats["cube_cache_bytes_saved"])/(1<<20),
			r.Stats["cube_dedups"]+r.Stats["view_dedups"], r.Stats["lock_waits"],
			r.Stats["blocks_scanned"], r.Stats["blocks_pruned"], gatherPct, r.Stats["partials_merged"],
			r.Stats["direct_vector_scans"], r.Stats["selvec_reuses"],
			r.Stats["morsels_dispatched"], r.Stats["queue_waits"], r.Stats["steal_count"],
			r.Stats["shard_fanouts"], float64(r.Stats["shard_merge_ns"])/1e6, r.Stats["shard_stragglers"])
		prevQuery, prevRows = r.Query, r.Rows
	}
}

// PrintTable10 renders the top-k coverage model ablation.
func PrintTable10(w io.Writer, rows []AccuracyRow) {
	fmt.Fprintf(w, "Table 10: Top-k coverage versus probabilistic model.\n")
	fmt.Fprintf(w, "%-42s %8s %8s %8s\n", "Version", "Top-1", "Top-5", "Top-10")
	for _, r := range rows {
		fmt.Fprintf(w, "%-42s %7.1f%% %7.1f%% %7.1f%%\n",
			r.Name, r.Result.TopK(1), r.Result.TopK(5), r.Result.TopK(10))
	}
}

// Table9Entry is one discovered erroneous claim (the paper's Table 9).
type Table9Entry struct {
	Case     string
	Sentence string
	Claimed  string
	SQL      string
	Correct  float64
	Detected bool
}

// RunTable9 lists ground-truth erroneous claims with the checker's verdict.
func RunTable9(o Options, limit int) []Table9Entry {
	cfg := o.BaseConfig()
	res := RunAutomated(o.Cases, cfg)
	var out []Table9Entry
	for _, oc := range res.Outcomes {
		if oc.Truth.Correct {
			continue
		}
		claim := oc.Case.Doc.Claims[oc.ClaimIdx]
		out = append(out, Table9Entry{
			Case:     oc.Case.Name,
			Sentence: claim.Sentence.Text,
			Claimed:  claim.Text(),
			SQL:      oc.Truth.Query.SQL(oc.Case.DB.Tables()[0].Name),
			Correct:  oc.Truth.CorrectValue,
			Detected: oc.Flagged,
		})
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// PrintTable9 renders discovered erroneous claims.
func PrintTable9(w io.Writer, entries []Table9Entry) {
	fmt.Fprintf(w, "Table 9: Examples of erroneous claims.\n")
	for _, e := range entries {
		mark := "MISSED"
		if e.Detected {
			mark = "DETECTED"
		}
		fmt.Fprintf(w, "[%s] %s: claimed %q, correct %.6g\n  sentence: %s\n  query: %s\n",
			mark, e.Case, e.Claimed, e.Correct, e.Sentence, e.SQL)
	}
}
