// Package wordnet is a compact, embedded substitute for the WordNet lexical
// database. AggChecker uses WordNet for one purpose (§4.2 of the paper):
// widening the keyword sets of query fragments with synonyms of column,
// table and value names. A full WordNet distribution is large and not
// redistributable here; instead we embed synonym groups covering the
// vocabulary of aggregation semantics (count/number/total, average/mean, …)
// and the five corpus domains (sports, politics, economy, surveys,
// reference). Lookups are stem-normalized so inflected forms resolve to the
// same group.
package wordnet

import (
	"aggchecker/internal/nlp"
)

// groups are synonym sets; membership is symmetric within a group. A word
// may appear in multiple groups, in which case lookups return the union.
var groups = [][]string{
	// --- aggregation & statistics vocabulary ---
	{"count", "number", "total", "tally", "quantity", "amount"},
	{"average", "mean", "typical", "expected"},
	{"median", "middle", "midpoint"},
	{"percent", "percentage", "share", "fraction", "proportion", "ratio", "rate"},
	{"maximum", "max", "most", "highest", "top", "largest", "biggest", "greatest", "peak", "record"},
	{"minimum", "min", "least", "lowest", "fewest", "smallest", "bottom"},
	{"sum", "total", "combined", "overall", "aggregate", "cumulative"},
	{"distinct", "unique", "different", "separate", "individual"},
	{"probability", "chance", "likelihood", "odds"},
	{"increase", "rise", "growth", "gain", "jump", "surge"},
	{"decrease", "decline", "drop", "fall", "reduction", "dip"},
	{"majority", "most", "bulk"},
	{"minority", "few", "handful"},

	// --- sports ---
	{"player", "athlete", "sportsman", "professional"},
	{"team", "club", "franchise", "squad", "side"},
	{"game", "match", "fixture", "contest"},
	{"season", "campaign", "year"},
	{"suspension", "ban", "punishment", "sanction", "penalty", "discipline"},
	{"lifetime", "permanent", "indefinite", "indef"},
	{"league", "division", "conference"},
	{"coach", "manager", "trainer"},
	{"goal", "score", "point"},
	{"win", "victory", "triumph"},
	{"loss", "defeat"},
	{"substance", "drug", "doping", "peds"},
	{"violence", "abuse", "assault", "battery"},
	{"gambling", "betting", "wagering"},
	{"injury", "wound", "hurt"},
	{"tournament", "championship", "cup", "competition"},
	{"stadium", "arena", "venue", "ground"},
	{"transfer", "trade", "move"},
	{"attendance", "crowd", "spectators", "turnout"},

	// --- politics & civic data ---
	{"candidate", "contender", "nominee", "hopeful", "challenger"},
	{"election", "race", "contest", "primary", "vote", "ballot"},
	{"donation", "contribution", "gift", "funding"},
	{"donor", "contributor", "backer", "supporter", "funder"},
	{"committee", "pac", "campaign"},
	{"senator", "lawmaker", "legislator", "representative", "congressman", "politician"},
	{"district", "constituency", "seat", "precinct"},
	{"party", "affiliation", "faction"},
	{"republican", "gop", "conservative"},
	{"democrat", "democratic", "liberal"},
	{"president", "incumbent", "executive"},
	{"appearance", "visit", "showing", "spot"},
	{"speech", "address", "remarks", "commencement", "talk"},
	{"bill", "law", "legislation", "act", "statute"},
	{"poll", "survey", "questionnaire"},
	{"voter", "elector", "constituent"},
	{"spending", "expenditure", "outlay", "disbursement"},
	{"recipient", "beneficiary", "receiver"},

	// --- economy & business ---
	{"salary", "pay", "wage", "earnings", "income", "compensation", "remuneration"},
	{"price", "cost", "fee", "charge"},
	{"revenue", "sales", "turnover", "receipts", "proceeds"},
	{"profit", "margin", "earnings", "surplus"},
	{"company", "firm", "business", "corporation", "enterprise", "employer"},
	{"employee", "worker", "staff", "personnel", "laborer"},
	{"industry", "sector", "field", "trade"},
	{"market", "exchange", "marketplace"},
	{"budget", "allocation", "appropriation"},
	{"tax", "levy", "duty"},
	{"loan", "credit", "mortgage", "debt"},
	{"customer", "client", "buyer", "consumer", "purchaser"},
	{"product", "item", "good", "merchandise"},
	{"export", "shipment", "shipping"},
	{"unemployment", "joblessness"},
	{"gdp", "output", "production"},
	{"investment", "funding", "capital"},
	{"region", "area", "zone", "territory", "district"},
	{"store", "shop", "outlet", "branch"},

	// --- surveys & development ---
	{"respondent", "participant", "answerer", "subject"},
	{"developer", "programmer", "coder", "engineer"},
	{"education", "schooling", "training", "degree"},
	{"self-taught", "autodidact"},
	{"experience", "tenure", "seniority"},
	{"language", "tongue"},
	{"occupation", "job", "role", "position", "profession", "title"},
	{"remote", "distributed", "telecommute"},
	{"gender", "sex"},
	{"age", "years"},
	{"satisfaction", "happiness", "contentment"},
	{"skill", "ability", "competence", "proficiency"},
	{"technology", "tech", "tool", "stack"},
	{"framework", "library", "platform"},
	{"question", "item", "prompt"},
	{"answer", "response", "reply"},

	// --- reference / encyclopedic ---
	{"country", "nation", "state", "land"},
	{"city", "town", "municipality", "metropolis"},
	{"population", "inhabitants", "residents", "people"},
	{"capital", "seat"},
	{"river", "waterway", "stream"},
	{"mountain", "peak", "summit"},
	{"continent", "landmass"},
	{"area", "size", "extent", "expanse"},
	{"currency", "money", "tender"},
	{"border", "boundary", "frontier"},
	{"flier", "passenger", "traveler", "flyer"},
	{"flight", "trip", "journey", "route"},
	{"airline", "carrier"},
	{"seat", "chair", "recliner"},
	{"rude", "impolite", "discourteous", "inconsiderate"},
	{"etiquette", "manners", "courtesy"},
	{"movie", "film", "picture"},
	{"song", "track", "tune", "lyric"},
	{"artist", "musician", "performer", "rapper"},
	{"album", "record", "release"},
	{"mention", "reference", "namecheck", "shoutout"},
	{"author", "writer", "journalist"},
	{"article", "story", "piece", "report"},
	{"database", "data", "dataset", "table", "records"},
	{"column", "field", "attribute", "variable"},
	{"row", "record", "entry", "tuple"},
	{"value", "entry", "figure"},
	{"category", "type", "kind", "class", "group", "classification"},
	{"name", "identifier", "label", "title"},
	{"date", "day", "time"},
	{"month", "period"},
	{"week", "period"},
	{"show", "program", "broadcast", "episode"},
	{"network", "channel", "station"},
	{"guest", "visitor", "invitee"},
	{"host", "presenter", "anchor"},
	{"viewer", "audience", "watcher"},
	{"school", "college", "university", "academy", "institution"},
	{"student", "pupil", "learner"},
	{"teacher", "instructor", "professor", "educator"},
	{"hospital", "clinic", "infirmary"},
	{"patient", "case"},
	{"doctor", "physician", "clinician"},
	{"crime", "offense", "felony", "violation", "incident"},
	{"arrest", "apprehension", "detention"},
	{"officer", "policeman", "cop", "constable"},
	{"weather", "climate", "conditions"},
	{"temperature", "heat", "degrees"},
	{"rainfall", "precipitation", "rain"},
	{"vehicle", "car", "automobile", "auto"},
	{"accident", "crash", "collision", "wreck"},
	{"road", "highway", "street", "route"},
	{"driver", "motorist", "operator"},
}

// index maps a stem to the set of group ids containing it.
var index map[string][]int

func init() {
	index = make(map[string][]int)
	for gid, g := range groups {
		for _, w := range g {
			s := nlp.Stem(w)
			index[s] = appendUnique(index[s], gid)
		}
	}
}

func appendUnique(ids []int, id int) []int {
	for _, x := range ids {
		if x == id {
			return ids
		}
	}
	return append(ids, id)
}

// Synonyms returns the synonyms of word (lowercase), excluding the word
// itself, or nil when the word is not in the dictionary. Lookup is
// stem-normalized, so "suspensions" finds the "suspension" group.
func Synonyms(word string) []string {
	stem := nlp.Stem(word)
	gids := index[stem]
	if len(gids) == 0 {
		return nil
	}
	seen := map[string]bool{word: true, stem: true}
	var out []string
	for _, gid := range gids {
		for _, w := range groups[gid] {
			if !seen[w] && nlp.Stem(w) != stem {
				seen[w] = true
				out = append(out, w)
			}
		}
	}
	return out
}

// ShareGroup reports whether two words belong to a common synonym group.
func ShareGroup(a, b string) bool {
	sa, sb := nlp.Stem(a), nlp.Stem(b)
	if sa == sb {
		return true
	}
	ga, gb := index[sa], index[sb]
	for _, x := range ga {
		for _, y := range gb {
			if x == y {
				return true
			}
		}
	}
	return false
}
