package wordnet

import (
	"testing"
)

func TestSynonymsBasic(t *testing.T) {
	syns := Synonyms("ban")
	found := false
	for _, s := range syns {
		if s == "suspension" {
			found = true
		}
	}
	if !found {
		t.Errorf("Synonyms(ban) = %v, want to contain suspension", syns)
	}
}

func TestSynonymsStemNormalized(t *testing.T) {
	a := Synonyms("suspension")
	b := Synonyms("suspensions")
	if len(a) == 0 || len(b) == 0 {
		t.Fatalf("empty synonyms: %v %v", a, b)
	}
	if len(a) != len(b) {
		t.Errorf("inflection changed synonym set: %v vs %v", a, b)
	}
}

func TestSynonymsExcludesSelf(t *testing.T) {
	for _, s := range Synonyms("count") {
		if s == "count" {
			t.Error("Synonyms returned the word itself")
		}
	}
}

func TestSynonymsUnknown(t *testing.T) {
	if got := Synonyms("zzzxqwert"); got != nil {
		t.Errorf("unknown word returned %v", got)
	}
}

func TestShareGroup(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"ban", "suspension", true},
		{"bans", "suspensions", true},
		{"average", "mean", true},
		{"lifetime", "indef", true},
		{"ban", "average", false},
		{"gambling", "betting", true},
		{"count", "count", true},
	}
	for _, c := range cases {
		if got := ShareGroup(c.a, c.b); got != c.want {
			t.Errorf("ShareGroup(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDecomposeIdentifier(t *testing.T) {
	cases := map[string][]string{
		"nflsuspensions": {"nfl", "suspensions"},
		"player_name":    {"player", "name"},
		"TeamName":       {"team", "name"},
		"donationAmount": {"donation", "amount"},
		"avg_salary_usd": {"avg", "salary", "usd"},
		"Games":          {"games"},
		"votecount":      {"vote", "count"},
		"HTTPServer":     {"http", "server"},
		"salary2016":     {"salary", "2016"},
	}
	for in, want := range cases {
		got := DecomposeIdentifier(in)
		if len(got) != len(want) {
			t.Errorf("DecomposeIdentifier(%q) = %v, want %v", in, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("DecomposeIdentifier(%q)[%d] = %q, want %q", in, i, got[i], want[i])
			}
		}
	}
}

func TestDecomposeLosesNoLetters(t *testing.T) {
	inputs := []string{"nflsuspensions", "zzqxunknownword", "abcdefgh", "recipientname"}
	for _, in := range inputs {
		parts := DecomposeIdentifier(in)
		joined := ""
		for _, p := range parts {
			joined += p
		}
		if joined != in {
			t.Errorf("DecomposeIdentifier(%q) lost characters: %v", in, parts)
		}
	}
}

func TestIsDictionaryWord(t *testing.T) {
	for _, w := range []string{"suspension", "suspensions", "nfl", "salary", "count"} {
		if !IsDictionaryWord(w) {
			t.Errorf("IsDictionaryWord(%q) = false", w)
		}
	}
	for _, w := range []string{"zzqx", "x", ""} {
		if IsDictionaryWord(w) {
			t.Errorf("IsDictionaryWord(%q) = true", w)
		}
	}
}
