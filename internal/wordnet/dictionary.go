package wordnet

import (
	"strings"

	"aggchecker/internal/nlp"
)

// extraDictionary lists common English words that appear inside concatenated
// column identifiers but are not members of any synonym group. Together with
// the synonym vocabulary they form the dictionary used to decompose column
// names such as "nflsuspensions" → ["nfl", "suspensions"] (§4.2).
var extraDictionary = []string{
	"nfl", "nba", "mlb", "nhl", "fifa", "id", "key", "code", "status",
	"start", "end", "begin", "finish", "first", "last", "full", "short",
	"long", "new", "old", "high", "low", "big", "small", "home", "away",
	"east", "west", "north", "south", "per", "capita", "gross", "net",
	"raw", "adjusted", "real", "nominal", "annual", "monthly", "weekly",
	"daily", "hourly", "index", "level", "grade", "rank", "order", "desc",
	"description", "info", "detail", "note", "comment", "source", "target",
	"owner", "user", "admin", "type", "sub", "super", "main", "primary",
	"secondary", "active", "inactive", "open", "closed", "public",
	"private", "local", "global", "state", "county", "zip", "postal",
	"phone", "email", "address", "web", "site", "url", "page", "view",
	"click", "visit", "session", "duration", "length", "width", "height",
	"weight", "depth", "speed", "distance", "miles", "km", "meters",
	"feet", "pounds", "kg", "tons", "dollars", "euros", "usd", "amount",
	"balance", "limit", "cap", "floor", "ceiling", "quota", "goal",
	"target", "actual", "estimate", "forecast", "projection", "history",
	"current", "previous", "next", "future", "past", "recent", "latest",
	"men", "women", "male", "female", "adult", "child", "children",
	"senior", "junior", "youth", "group", "band", "club", "org",
	"organization", "dept", "department", "division", "unit", "branch",
	"office", "agency", "bureau", "ministry", "board", "council",
	"commission", "authority", "service", "system", "program", "project",
	"plan", "scheme", "fund", "grant", "award", "prize", "bonus",
	"penalty", "fine", "fee", "toll", "fare", "rent", "lease",
}

var dictionary map[string]bool

func init() {
	dictionary = make(map[string]bool)
	for _, g := range groups {
		for _, w := range g {
			dictionary[w] = true
		}
	}
	for _, w := range extraDictionary {
		dictionary[w] = true
	}
}

// IsDictionaryWord reports whether w (lowercase) is a known English word or
// domain abbreviation usable as a unit when decomposing identifiers. Stemmed
// membership also counts, so plural forms resolve.
func IsDictionaryWord(w string) bool {
	if len(w) < 2 {
		return false
	}
	if dictionary[w] {
		return true
	}
	// Accept inflected forms whose stem has a dictionary entry with the same
	// stem (e.g. "suspensions").
	stem := nlp.Stem(w)
	if stem != w {
		if _, ok := index[stem]; ok {
			return true
		}
	}
	return false
}

// DecomposeIdentifier splits a database identifier into lowercase word
// units. It first splits on explicit separators (underscore, hyphen, space,
// digit boundaries) and camelCase humps; any remaining run that is not a
// dictionary word is segmented greedily against the dictionary, longest
// match first, as the paper prescribes for concatenated column names.
func DecomposeIdentifier(ident string) []string {
	var parts []string
	for _, chunk := range splitSeparators(ident) {
		chunk = strings.ToLower(chunk)
		if chunk == "" {
			continue
		}
		if IsDictionaryWord(chunk) || len(chunk) <= 3 {
			parts = append(parts, chunk)
			continue
		}
		parts = append(parts, segment(chunk)...)
	}
	return parts
}

// splitSeparators splits on _ - . space and camelCase boundaries.
func splitSeparators(s string) []string {
	var chunks []string
	var cur []rune
	flush := func() {
		if len(cur) > 0 {
			chunks = append(chunks, string(cur))
			cur = cur[:0]
		}
	}
	runes := []rune(s)
	for i, r := range runes {
		switch {
		case r == '_' || r == '-' || r == '.' || r == ' ' || r == '/':
			flush()
		case r >= 'A' && r <= 'Z':
			// camelCase hump: split before an uppercase rune following a
			// lowercase rune, or before the last uppercase of an acronym run
			// followed by lowercase (e.g. "HTTPServer" → HTTP|Server).
			if i > 0 {
				prev := runes[i-1]
				nextLower := i+1 < len(runes) && runes[i+1] >= 'a' && runes[i+1] <= 'z'
				if (prev >= 'a' && prev <= 'z') || (prev >= 'A' && prev <= 'Z' && nextLower) {
					flush()
				}
			}
			cur = append(cur, r)
		case r >= '0' && r <= '9':
			// digits separate words but are kept as their own chunk
			if len(cur) > 0 && !(cur[len(cur)-1] >= '0' && cur[len(cur)-1] <= '9') {
				flush()
			}
			cur = append(cur, r)
		default:
			if len(cur) > 0 && cur[len(cur)-1] >= '0' && cur[len(cur)-1] <= '9' {
				flush()
			}
			cur = append(cur, r)
		}
	}
	flush()
	return chunks
}

// segment greedily splits a lowercase letter run into dictionary words,
// longest match first. Unmatched prefixes are emitted as single chunks up to
// the next match so no characters are lost.
func segment(s string) []string {
	var out []string
	i := 0
	for i < len(s) {
		matched := ""
		for j := len(s); j > i+1; j-- {
			if IsDictionaryWord(s[i:j]) {
				matched = s[i:j]
				break
			}
		}
		if matched == "" {
			// No word starts here: scan forward for the next position where
			// a dictionary word starts, emit the gap verbatim.
			j := i + 1
			for j < len(s) && !startsWord(s, j) {
				j++
			}
			out = append(out, s[i:j])
			i = j
			continue
		}
		out = append(out, matched)
		i += len(matched)
	}
	return out
}

func startsWord(s string, i int) bool {
	for j := len(s); j > i+1; j-- {
		if IsDictionaryWord(s[i:j]) {
			return true
		}
	}
	return false
}
