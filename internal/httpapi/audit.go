package httpapi

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"aggchecker/internal/core"
)

// wireAuditRequest is the bulk-audit request body: the corpus as a JSON
// document list. Each document is parsed like a check body (HTML-lite when
// it contains markup, markdown-lite plain text otherwise).
type wireAuditRequest struct {
	Documents []wireAuditDoc `json:"documents"`
}

type wireAuditDoc struct {
	Name string `json:"name"`
	Text string `json:"text"`
}

// wireAuditDocEvent is one NDJSON progress line: a document finished
// checking (emitted in completion order, not input order).
type wireAuditDocEvent struct {
	Event  string      `json:"event"` // "doc"
	Index  int         `json:"index"`
	Name   string      `json:"name"`
	Report *wireReport `json:"report,omitempty"`
	Error  string      `json:"error,omitempty"`
}

// wireAuditSummary is the final NDJSON line: corpus totals plus the run's
// shared-pass and cube-cache economics.
type wireAuditSummary struct {
	Event        string           `json:"event"` // "done"
	Documents    int              `json:"documents"`
	Checked      int              `json:"checked"`
	Failed       int              `json:"failed"`
	Claims       int              `json:"claims"`
	Erroneous    int              `json:"erroneous"`
	TotalMillis  float64          `json:"total_ms"`
	SharedPasses int64            `json:"shared_passes"`
	CacheHitRate float64          `json:"cache_hit_rate"`
	Stats        map[string]int64 `json:"stats"`
	Cache        *core.CacheStats `json:"cache,omitempty"`
	Error        string           `json:"error,omitempty"`
}

// maxAuditConcurrencyParam bounds the concurrency query parameter — a
// request may tune how many documents are in flight but not spawn
// unbounded goroutines server-side.
const maxAuditConcurrencyParam = 64

// handleAudit streams a corpus of documents through one checker with
// cross-document shared-pass planning (POST /v1/databases/{name}/audit).
// The body is a JSON document list; the response is NDJSON: one "doc" line
// per finished document (completion order) and a final "done" summary with
// shared-pass counts and cache economics. The whole audit occupies one
// verification slot. Check query parameters (mode, topk, workers,
// scan_workers, zone_maps, timeout) apply to every member document;
// concurrency (1..64) bounds documents in flight.
func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")

	body, err := io.ReadAll(io.LimitReader(r.Body, s.opts.MaxBodyBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if int64(len(body)) > s.opts.MaxBodyBytes {
		httpError(w, http.StatusRequestEntityTooLarge, "corpus exceeds %d bytes", s.opts.MaxBodyBytes)
		return
	}
	var req wireAuditRequest
	if err := json.Unmarshal(body, &req); err != nil {
		httpError(w, http.StatusBadRequest, "bad audit request: %v", err)
		return
	}
	if len(req.Documents) == 0 {
		httpError(w, http.StatusBadRequest, "no documents")
		return
	}
	docs := make([]core.AuditDoc, len(req.Documents))
	for i, d := range req.Documents {
		if strings.TrimSpace(d.Text) == "" {
			httpError(w, http.StatusBadRequest, "document %d is empty", i)
			return
		}
		nm := d.Name
		if nm == "" {
			nm = fmt.Sprintf("doc-%d", i)
		}
		docs[i] = core.AuditDoc{Name: nm, Doc: parseDoc(d.Text)}
	}

	checkOpts, timeout, ok := s.parseCheckParams(w, r)
	if !ok {
		return
	}
	var auditOpts []core.AuditOption
	if len(checkOpts) > 0 {
		auditOpts = append(auditOpts, core.WithAuditCheckOptions(checkOpts...))
	}
	if v := r.URL.Query().Get("concurrency"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > maxAuditConcurrencyParam {
			httpError(w, http.StatusBadRequest, "bad concurrency %q (want 1..%d)", v, maxAuditConcurrencyParam)
			return
		}
		auditOpts = append(auditOpts, core.WithAuditConcurrency(n))
	}

	ctx, cancel := r.Context(), context.CancelFunc(func() {})
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	if err := s.acquire(ctx); err != nil {
		s.writeCheckError(w, name, err)
		return
	}
	defer s.release()

	// Resolve the checker up front so unknown databases fail with a proper
	// status code instead of mid-stream.
	ck, err := s.svc.Checker(ctx, name)
	if err != nil {
		s.writeCheckError(w, name, err)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	defTable := defaultTableOf(ck)

	// Progress callbacks are serialized by Audit, so encoding here is safe.
	// A write failure means the client went away: cancel the audit and let
	// it drain.
	auditOpts = append(auditOpts, core.WithAuditProgress(func(i int, dr core.DocReport) {
		ev := wireAuditDocEvent{Event: "doc", Index: i, Name: dr.Name}
		if dr.Err != nil {
			ev.Error = dr.Err.Error()
		} else {
			ev.Report = toWireReport(name, dr.Report, defTable)
		}
		if err := enc.Encode(ev); err != nil {
			cancel()
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}))

	rep, auditErr := ck.Audit(ctx, docs, auditOpts...)
	sum := wireAuditSummary{
		Event:        "done",
		Documents:    len(rep.Docs),
		Checked:      rep.Checked,
		Failed:       rep.Failed,
		Claims:       rep.Claims,
		Erroneous:    rep.Erroneous,
		TotalMillis:  float64(rep.TotalTime.Microseconds()) / 1e3,
		SharedPasses: rep.SharedPasses(),
		CacheHitRate: rep.CacheHitRate(),
		Stats:        rep.Stats,
		Cache:        rep.Cache,
	}
	if auditErr != nil {
		sum.Error = auditErr.Error()
	}
	_ = enc.Encode(sum)
	if flusher != nil {
		flusher.Flush()
	}
}
