package httpapi

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"aggchecker/internal/core"
	"aggchecker/internal/corpus"
	"aggchecker/internal/db"
)

// newTestServer serves the embedded NFL case as database "nfl".
func newTestServer(t *testing.T, opts Options) (*httptest.Server, *corpus.TestCase) {
	t.Helper()
	tc := corpus.MustLoad().Cases[0]
	svc := core.NewService()
	if err := svc.Register("nfl", func(context.Context) (*db.Database, error) { return tc.DB, nil }); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(svc, opts))
	t.Cleanup(ts.Close)
	return ts, tc
}

func postDoc(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "text/html", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestCheckEndpoint(t *testing.T) {
	ts, tc := newTestServer(t, Options{})
	resp := postDoc(t, ts.URL+"/v1/databases/nfl/check", tc.HTML)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var rep wireReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Claims) != len(tc.Doc.Claims) {
		t.Fatalf("claims = %d, want %d", len(rep.Claims), len(tc.Doc.Claims))
	}
	if rep.Iterations == 0 || rep.EvaluatedQueries == 0 {
		t.Errorf("iterations = %d evaluated = %d", rep.Iterations, rep.EvaluatedQueries)
	}
	for _, c := range rep.Claims {
		if len(c.Queries) == 0 {
			t.Errorf("claim %d: no ranked queries", c.Index)
		}
		if c.Sentence == "" {
			t.Errorf("claim %d: empty sentence", c.Index)
		}
	}
	if rep.Stats["batch_queries"] == 0 {
		t.Error("per-request stats missing batch_queries")
	}
}

func TestCheckTopKParam(t *testing.T) {
	ts, tc := newTestServer(t, Options{})
	resp := postDoc(t, ts.URL+"/v1/databases/nfl/check?topk=2&mode=naive", tc.HTML)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var rep wireReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Claims {
		if len(c.Queries) > 2 {
			t.Fatalf("claim %d: topk=2 but %d queries", c.Index, len(c.Queries))
		}
	}
}

func TestErrorStatuses(t *testing.T) {
	// MaxConcurrent engages the semaphore so the timeout cases also cover
	// the acquire path (an expired ctx must deterministically yield 504,
	// not a racy 503).
	ts, tc := newTestServer(t, Options{MaxConcurrent: 2})
	cases := []struct {
		path, body string
		want       int
	}{
		{"/v1/databases/nope/check", tc.HTML, http.StatusNotFound},
		{"/v1/databases/nfl/check?mode=warp", tc.HTML, http.StatusBadRequest},
		{"/v1/databases/nfl/check?timeout=bogus", tc.HTML, http.StatusBadRequest},
		{"/v1/databases/nfl/check", "   ", http.StatusBadRequest},
		{"/v1/databases/nfl/check?timeout=1ns", tc.HTML, http.StatusGatewayTimeout},
	}
	for _, c := range cases {
		resp := postDoc(t, ts.URL+c.path, c.body)
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("POST %s: status = %d, want %d", c.path, resp.StatusCode, c.want)
		}
	}
}

func TestListAndHealth(t *testing.T) {
	ts, _ := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/v1/databases")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Databases []string `json:"databases"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Databases) != 1 || list.Databases[0] != "nfl" {
		t.Fatalf("databases = %v", list.Databases)
	}
	h, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h.Body.Close()
	if h.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", h.StatusCode)
	}
}

func TestStreamEndpoint(t *testing.T) {
	ts, tc := newTestServer(t, Options{})
	resp := postDoc(t, ts.URL+"/v1/databases/nfl/check/stream", tc.HTML)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content-type = %q", ct)
	}
	var events []wireEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev wireEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	iterations, updates := 0, 0
	for _, ev := range events {
		switch ev.Event {
		case "iteration":
			iterations++
		case "claim_update":
			updates++
			if ev.Claim == nil {
				t.Fatal("claim_update without claim payload")
			}
		}
	}
	if iterations == 0 {
		t.Fatal("no iteration events")
	}
	// Every iteration carries one update per claim.
	if want := iterations * len(tc.Doc.Claims); updates != want {
		t.Fatalf("claim updates = %d, want %d (%d iterations × %d claims)", updates, want, iterations, len(tc.Doc.Claims))
	}
	last := events[len(events)-1]
	if last.Event != "done" || last.Error != "" || last.Report == nil {
		t.Fatalf("last event = %+v, want done with report", last)
	}
	if len(last.Report.Claims) != len(tc.Doc.Claims) {
		t.Fatalf("final report claims = %d", len(last.Report.Claims))
	}
}

func TestStreamTimeoutEndsWithError(t *testing.T) {
	ts, tc := newTestServer(t, Options{RequestTimeout: time.Nanosecond})
	resp := postDoc(t, ts.URL+"/v1/databases/nfl/check/stream", tc.HTML)
	defer resp.Body.Close()
	// The deadline may trip before or after headers are committed; both
	// surfaces must be clean: an HTTP error, or a done event with an error.
	if resp.StatusCode != http.StatusOK {
		return
	}
	sc := bufio.NewScanner(resp.Body)
	var last wireEvent
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad line: %v", err)
		}
	}
	if last.Event != "done" || last.Error == "" {
		t.Fatalf("expected done-with-error, got %+v", last)
	}
}
