package httpapi

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
)

func postAudit(t *testing.T, url string, req wireAuditRequest) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestAuditEndpoint(t *testing.T) {
	ts, tc := newTestServer(t, Options{})
	req := wireAuditRequest{Documents: []wireAuditDoc{
		{Name: "a.html", Text: tc.HTML},
		{Name: "b.html", Text: tc.HTML},
		{Name: "c.html", Text: tc.HTML},
	}}
	resp := postAudit(t, ts.URL+"/v1/databases/nfl/audit", req)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content-type = %q", ct)
	}

	var docLines []wireAuditDocEvent
	var summary *wireAuditSummary
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var probe struct {
			Event string `json:"event"`
		}
		if err := json.Unmarshal(sc.Bytes(), &probe); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch probe.Event {
		case "doc":
			var ev wireAuditDocEvent
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				t.Fatal(err)
			}
			docLines = append(docLines, ev)
		case "done":
			summary = new(wireAuditSummary)
			if err := json.Unmarshal(sc.Bytes(), summary); err != nil {
				t.Fatal(err)
			}
		default:
			t.Fatalf("unknown event %q", probe.Event)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	if len(docLines) != 3 {
		t.Fatalf("doc lines = %d, want 3", len(docLines))
	}
	seen := map[int]bool{}
	for _, ev := range docLines {
		if ev.Error != "" {
			t.Errorf("doc %s: %s", ev.Name, ev.Error)
		}
		if ev.Report == nil || len(ev.Report.Claims) != len(tc.Doc.Claims) {
			t.Errorf("doc %s: bad report", ev.Name)
		}
		seen[ev.Index] = true
	}
	if len(seen) != 3 {
		t.Errorf("indexes not distinct: %v", seen)
	}
	if summary == nil {
		t.Fatal("no done line")
	}
	if summary.Documents != 3 || summary.Checked != 3 || summary.Failed != 0 {
		t.Errorf("summary counts %d/%d/%d", summary.Documents, summary.Checked, summary.Failed)
	}
	if summary.Claims != 3*len(tc.Doc.Claims) {
		t.Errorf("summary claims = %d, want %d", summary.Claims, 3*len(tc.Doc.Claims))
	}
	// Three identical documents about the same tables: the window must have
	// merged passes across them and the cache snapshot must be populated.
	if summary.SharedPasses == 0 {
		t.Error("no shared passes for identical concurrent documents")
	}
	if summary.Cache == nil || summary.Cache.Entries == 0 {
		t.Errorf("cache stats missing: %+v", summary.Cache)
	}
	if summary.Stats["window_flushes"] == 0 {
		t.Error("stats missing window_flushes")
	}
}

func TestAuditEndpointBadRequests(t *testing.T) {
	ts, tc := newTestServer(t, Options{})
	for _, tt := range []struct {
		name, url, body string
		want            int
	}{
		{"empty body", ts.URL + "/v1/databases/nfl/audit", `{}`, http.StatusBadRequest},
		{"empty doc", ts.URL + "/v1/databases/nfl/audit", `{"documents":[{"name":"x","text":"  "}]}`, http.StatusBadRequest},
		{"bad json", ts.URL + "/v1/databases/nfl/audit", `{`, http.StatusBadRequest},
		{"bad concurrency", ts.URL + "/v1/databases/nfl/audit?concurrency=0",
			`{"documents":[{"name":"x","text":"hello 42 claims"}]}`, http.StatusBadRequest},
		{"unknown db", ts.URL + "/v1/databases/nope/audit",
			`{"documents":[{"name":"x","text":"` + "hello 42" + `"}]}`, http.StatusNotFound},
	} {
		resp, err := http.Post(tt.url, "application/json", bytes.NewReader([]byte(tt.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tt.want {
			t.Errorf("%s: status = %d, want %d", tt.name, resp.StatusCode, tt.want)
		}
	}
	_ = tc
}
