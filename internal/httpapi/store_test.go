package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"aggchecker/internal/core"
	"aggchecker/internal/db"
)

// TestStatusStoreSection pins the wire shape of the persistent-store slice
// of the status endpoint: a database hosted under a DataDir reports its
// durable version lineage and byte-level accounting, and the JSON keys the
// dashboard reads stay stable.
func TestStatusStoreSection(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fines.csv")
	if err := os.WriteFile(path, []byte("player,amount\nAlice,100\nBob,200\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.DataDir = filepath.Join(dir, "blocks")
	svc := core.NewService(core.WithDefaultConfig(cfg))
	if err := svc.RegisterSource("fines", db.NewCSVSource("fines", path)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(svc, Options{}))
	t.Cleanup(ts.Close)

	resp := postDoc(t, ts.URL+"/v1/databases/fines/check", "There are 2 players.")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("check status = %d", resp.StatusCode)
	}

	code, st := getStatus(t, ts.URL+"/v1/databases/fines/status")
	if code != http.StatusOK || !st.Resident {
		t.Fatalf("status = %d %+v", code, st)
	}
	if st.Store == nil {
		t.Fatal("status carries no store section for a DataDir-backed database")
	}
	if st.Store.Version != st.Version || st.Store.DataBytes <= 0 || st.Store.ManifestBytes <= 0 {
		t.Fatalf("store section = %+v, want durable version %d with bytes", st.Store, st.Version)
	}
	if st.Store.Dir != filepath.Join(cfg.DataDir, "fines") {
		t.Errorf("store dir = %q", st.Store.Dir)
	}

	// Pin the raw JSON keys: these are read by dashboards, not Go clients.
	r2, err := http.Get(ts.URL + "/v1/databases/fines/status")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	var raw struct {
		Store map[string]any `json:"store"`
	}
	if err := json.NewDecoder(r2.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"dir", "version", "epoch", "publishes", "resets",
		"data_bytes", "manifest_bytes", "mapped_bytes", "resident_bytes"} {
		if _, ok := raw.Store[key]; !ok {
			t.Errorf("store JSON missing key %q (got %v)", key, raw.Store)
		}
	}
}
