// Package httpapi exposes a Service over HTTP: blocking JSON verification
// and NDJSON streaming of per-EM-iteration events. cmd/aggcheckd wires it
// to a net listener; keeping the handlers here makes them testable with
// httptest against an in-process Service.
package httpapi

import (
	"math"

	"aggchecker/internal/core"
	"aggchecker/internal/document"
	"aggchecker/internal/model"
)

// wireReport is the JSON shape of a verification report. Float results use
// pointers so NaN (undefined result) serializes as null instead of breaking
// encoding/json.
type wireReport struct {
	Database         string           `json:"database"`
	Claims           []wireClaim      `json:"claims"`
	Erroneous        int              `json:"erroneous"`
	Iterations       int              `json:"iterations"`
	EvaluatedQueries int              `json:"evaluated_queries"`
	TotalMillis      float64          `json:"total_ms"`
	QueryMillis      float64          `json:"query_ms"`
	Stats            map[string]int64 `json:"stats"`
}

type wireClaim struct {
	Index     int         `json:"index"`
	Text      string      `json:"text"`
	Sentence  string      `json:"sentence"`
	Claimed   float64     `json:"claimed"`
	PCorrect  float64     `json:"p_correct"`
	Erroneous bool        `json:"erroneous"`
	Queries   []wireQuery `json:"queries"`
}

type wireQuery struct {
	SQL     string   `json:"sql"`
	Prob    float64  `json:"prob"`
	Result  *float64 `json:"result"`
	Matches bool     `json:"matches"`
}

// wireEvent is one NDJSON line of a streamed verification; Event
// discriminates which optional fields are set.
type wireEvent struct {
	Event            string      `json:"event"`
	Iteration        int         `json:"iteration,omitempty"`
	Final            bool        `json:"final,omitempty"`
	Delta            float64     `json:"delta,omitempty"`
	EvaluatedQueries int         `json:"evaluated_queries,omitempty"`
	Claims           int         `json:"claims,omitempty"`
	Claim            *wireClaim  `json:"claim,omitempty"`
	Report           *wireReport `json:"report,omitempty"`
	Error            string      `json:"error,omitempty"`
}

func floatPtr(v float64) *float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return &v
}

func toWireClaim(index int, claim *document.Claim, res model.ClaimResult, defaultTable string) wireClaim {
	wc := wireClaim{
		Index:     index,
		Text:      claim.Text(),
		Claimed:   claim.Claimed.Value,
		PCorrect:  res.PCorrect,
		Erroneous: res.Erroneous,
	}
	if claim.Sentence != nil {
		wc.Sentence = claim.Sentence.Text
	}
	for _, rq := range res.Ranked {
		wc.Queries = append(wc.Queries, wireQuery{
			SQL:     rq.Query.SQL(defaultTable),
			Prob:    rq.Prob,
			Result:  floatPtr(rq.Result),
			Matches: rq.Matches,
		})
	}
	return wc
}

func toWireReport(name string, rep *core.Report, defaultTable string) *wireReport {
	out := &wireReport{
		Database:         name,
		Iterations:       rep.Result.Iterations,
		EvaluatedQueries: rep.Result.EvaluatedQueries,
		TotalMillis:      float64(rep.TotalTime.Microseconds()) / 1e3,
		QueryMillis:      float64(rep.QueryTime.Microseconds()) / 1e3,
		Stats:            rep.Stats,
	}
	for i, cr := range rep.Result.Claims {
		out.Claims = append(out.Claims, toWireClaim(i, rep.Document.Claims[i], cr, defaultTable))
		if cr.Erroneous {
			out.Erroneous++
		}
	}
	return out
}

func toWireEvent(name string, ev core.Event, defaultTable string) wireEvent {
	switch e := ev.(type) {
	case core.EventIteration:
		return wireEvent{
			Event:            e.Kind(),
			Iteration:        e.Iteration,
			Final:            e.Final,
			Delta:            e.Delta,
			EvaluatedQueries: e.EvaluatedQueries,
			Claims:           e.Claims,
		}
	case core.EventClaimUpdate:
		wc := toWireClaim(e.ClaimIndex, e.Claim, e.Result, defaultTable)
		return wireEvent{Event: e.Kind(), Iteration: e.Iteration, Claim: &wc}
	case core.EventDone:
		we := wireEvent{Event: e.Kind()}
		if e.Err != nil {
			we.Error = e.Err.Error()
		} else if e.Report != nil {
			we.Report = toWireReport(name, e.Report, defaultTable)
		}
		return we
	}
	return wireEvent{Event: ev.Kind()}
}
