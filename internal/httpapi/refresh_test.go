package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"aggchecker/internal/core"
	"aggchecker/internal/db"
)

// newCSVTestServer serves one CSV-backed database "fines" whose file the
// test can grow between requests.
func newCSVTestServer(t *testing.T) (*httptest.Server, string) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "fines.csv")
	if err := os.WriteFile(path, []byte("player,amount\nAlice,100\nBob,200\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	svc := core.NewService()
	if err := svc.RegisterSource("fines", db.NewCSVSource("fines", path)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(svc, Options{}))
	t.Cleanup(ts.Close)
	return ts, path
}

func getStatus(t *testing.T, url string) (int, core.Status) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st core.Status
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, st
}

func TestStatusAndRefreshEndpoints(t *testing.T) {
	ts, path := newCSVTestServer(t)

	if code, _ := getStatus(t, ts.URL+"/v1/databases/ghost/status"); code != http.StatusNotFound {
		t.Errorf("unknown status code = %d, want 404", code)
	}

	code, st := getStatus(t, ts.URL+"/v1/databases/fines/status")
	if code != http.StatusOK || st.Resident {
		t.Fatalf("pre-load status = %d %+v", code, st)
	}

	// Force the catalog resident with one check, then status reports the
	// snapshot version and row counts.
	resp := postDoc(t, ts.URL+"/v1/databases/fines/check", "There are 2 players.")
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("check status = %d", resp.StatusCode)
	}
	code, st = getStatus(t, ts.URL+"/v1/databases/fines/status")
	if code != http.StatusOK || !st.Resident || st.Version != 1 || st.Rows["fines"] != 2 {
		t.Fatalf("resident status = %d %+v", code, st)
	}
	// A resident database surfaces its scan-pipeline counters, so watch
	// operators can read pruning effectiveness off the status endpoint.
	if st.Scan == nil {
		t.Fatal("resident status carries no scan stats")
	}
	if st.Scan.BlocksScanned == 0 {
		t.Errorf("scan stats after a check = %+v, want blocks scanned", st.Scan)
	}
	if st.Scan.PruneRate < 0 || st.Scan.PruneRate > 1 {
		t.Errorf("prune rate = %v, want within [0,1]", st.Scan.PruneRate)
	}

	// Grow the backing file and refresh over HTTP: the response reports the
	// appended rows and new version.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("Zed,300\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	resp = postDoc(t, ts.URL+"/v1/databases/fines/refresh", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("refresh status code = %d", resp.StatusCode)
	}
	var rst core.Status
	if err := json.NewDecoder(resp.Body).Decode(&rst); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rst.Appended != 1 || rst.Version != 2 || rst.Rows["fines"] != 3 {
		t.Fatalf("refresh response = %+v", rst)
	}

	// Unknown database refresh is 404; a shrunken file is a 409 conflict.
	resp = postDoc(t, ts.URL+"/v1/databases/ghost/refresh", "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown refresh code = %d, want 404", resp.StatusCode)
	}
	if err := os.WriteFile(path, []byte("player,amount\nAlice,100\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	resp = postDoc(t, ts.URL+"/v1/databases/fines/refresh", "")
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("shrunken refresh code = %d, want 409", resp.StatusCode)
	}
	var errBody struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&errBody); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errBody.Error, "append-only") {
		t.Errorf("conflict error = %q", errBody.Error)
	}
}
