package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"aggchecker/internal/core"
	"aggchecker/internal/document"
	"aggchecker/internal/sqlexec"
)

// Options tunes the HTTP front end.
type Options struct {
	// RequestTimeout bounds one verification request end to end (0 = no
	// limit). Streaming requests get the same ceiling.
	RequestTimeout time.Duration
	// MaxConcurrent bounds simultaneously running verifications across all
	// databases (0 = unlimited). Excess requests wait in the queue until a
	// slot frees or their context expires — surfacing as 504 when the
	// request deadline fires, or as a client-side cancellation.
	MaxConcurrent int
	// MaxBodyBytes bounds the document payload (default 4 MiB).
	MaxBodyBytes int64
	// Log receives request-level errors; nil discards them.
	Log *log.Logger
}

// Server routes verification requests to a core.Service.
//
//	GET  /healthz                          -> 200 ok
//	GET  /v1/databases                     -> {"databases":[...]}
//	GET  /v1/databases/{name}/status       -> snapshot version + row counts
//	POST /v1/databases/{name}/refresh      -> refresh from source, report status
//	POST /v1/databases/{name}/check        -> JSON report
//	POST /v1/databases/{name}/check/stream -> NDJSON event stream
//	POST /v1/databases/{name}/audit        -> bulk corpus audit, NDJSON progress
//
// The request body is the document itself: HTML-lite when it looks like
// markup, markdown-lite plain text otherwise. Per-request knobs arrive as
// query parameters: mode (cached|merged|naive), topk, workers, timeout
// (Go duration, capped by Options.RequestTimeout), scan_workers (0..256,
// per-scan worker bound on the shared scheduler; 0 = engine default), and
// zone_maps (true|false, zone-map pruning for this request).
type Server struct {
	svc  *core.Service
	opts Options
	sem  chan struct{}
	mux  *http.ServeMux
}

// New builds the handler stack over svc.
func New(svc *core.Service, opts Options) *Server {
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 4 << 20
	}
	s := &Server{svc: svc, opts: opts, mux: http.NewServeMux()}
	if opts.MaxConcurrent > 0 {
		s.sem = make(chan struct{}, opts.MaxConcurrent)
	}
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /v1/databases", s.handleList)
	s.mux.HandleFunc("GET /v1/databases/{name}/status", s.handleStatus)
	s.mux.HandleFunc("POST /v1/databases/{name}/refresh", s.handleRefresh)
	s.mux.HandleFunc("POST /v1/databases/{name}/check", s.handleCheck)
	s.mux.HandleFunc("POST /v1/databases/{name}/check/stream", s.handleStream)
	s.mux.HandleFunc("POST /v1/databases/{name}/audit", s.handleAudit)
	s.mux.HandleFunc("POST /v1/shard/databases/{name}/cube", s.handleShardCube)
	s.mux.HandleFunc("POST /v1/shard/databases/{name}/scan", s.handleShardScan)
	return s
}

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) logf(format string, args ...any) {
	if s.opts.Log != nil {
		s.opts.Log.Printf(format, args...)
	}
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"databases": s.svc.Names()})
}

// handleStatus reports a database's storage state: snapshot version and
// per-table row counts when its catalog is resident.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.svc.Status(r.PathValue("name"))
	if err != nil {
		s.writeCheckError(w, r.PathValue("name"), err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleRefresh brings a database up to date with its source (appending
// new rows as fresh blocks for refreshable sources, evicting the catalog
// otherwise) and reports the resulting status, including how many rows the
// refresh appended.
func (s *Server) handleRefresh(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	st, err := s.svc.Refresh(r.Context(), name)
	if err != nil {
		if errors.Is(err, core.ErrUnknownDatabase) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			s.writeCheckError(w, name, err)
			return
		}
		// Refresh failures (e.g. a source file that shrank) are a client-
		// visible state conflict, not an internal error.
		s.logf("httpapi: refresh %q: %v", name, err)
		httpError(w, http.StatusConflict, "refresh failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// maxScanWorkersParam bounds the scan_workers query parameter: a request
// may narrow its own scans or widen them up to a sane ceiling, but not
// spawn unbounded per-request parallelism.
const maxScanWorkersParam = 256

// acquire claims a verification slot, honoring ctx while queued. An
// already-expired ctx always fails (the select would otherwise pick
// randomly between a free slot and the closed Done channel), and a slot
// acquired just as the ctx expires is handed back, so timeout responses
// are deterministic.
func (s *Server) acquire(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.sem == nil {
		return nil
	}
	select {
	case s.sem <- struct{}{}:
		if err := ctx.Err(); err != nil {
			s.release()
			return err
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) release() {
	if s.sem != nil {
		<-s.sem
	}
}

// requestSetup parses the shared parts of both check endpoints: the
// document body, per-request options, and the effective context. The
// returned cancel must always be called.
func (s *Server) requestSetup(w http.ResponseWriter, r *http.Request) (ctx context.Context, cancel context.CancelFunc, name string, doc *document.Document, opts []core.CheckOption, ok bool) {
	ctx, cancel = r.Context(), func() {}
	name = r.PathValue("name")

	body, err := io.ReadAll(io.LimitReader(r.Body, s.opts.MaxBodyBytes+1))
	if err != nil {
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return ctx, cancel, name, nil, nil, false
	}
	if int64(len(body)) > s.opts.MaxBodyBytes {
		httpError(w, http.StatusRequestEntityTooLarge, "document exceeds %d bytes", s.opts.MaxBodyBytes)
		return ctx, cancel, name, nil, nil, false
	}
	text := string(body)
	if strings.TrimSpace(text) == "" {
		httpError(w, http.StatusBadRequest, "empty document")
		return ctx, cancel, name, nil, nil, false
	}
	doc = parseDoc(text)

	opts, timeout, paramsOK := s.parseCheckParams(w, r)
	if !paramsOK {
		return ctx, cancel, name, nil, nil, false
	}
	// Always derive a cancellable context — handleStream's write-error
	// path relies on cancel() actually aborting the run even when no
	// timeout applies.
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	return ctx, cancel, name, doc, opts, true
}

// parseDoc parses a request-body document: HTML-lite when it looks like
// markup, markdown-lite plain text otherwise.
func parseDoc(text string) *document.Document {
	if strings.Contains(text, "<") {
		return document.ParseHTML(text)
	}
	return document.ParseText(text)
}

// parseCheckParams parses the per-request query parameters shared by the
// check, stream, and audit endpoints. On a bad parameter it writes the 400
// and returns ok=false.
func (s *Server) parseCheckParams(w http.ResponseWriter, r *http.Request) (opts []core.CheckOption, timeout time.Duration, ok bool) {
	q := r.URL.Query()
	if v := q.Get("mode"); v != "" {
		mode, err := core.ParseEvalMode(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return nil, 0, false
		}
		opts = append(opts, core.WithMode(mode))
	}
	for param, opt := range map[string]func(int) core.CheckOption{
		"topk":    core.WithTopK,
		"workers": core.WithWorkers,
	} {
		if v := q.Get(param); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				httpError(w, http.StatusBadRequest, "bad %s %q", param, v)
				return nil, 0, false
			}
			opts = append(opts, opt(n))
		}
	}
	if v := q.Get("scan_workers"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 || n > maxScanWorkersParam {
			httpError(w, http.StatusBadRequest, "bad scan_workers %q (want 0..%d)", v, maxScanWorkersParam)
			return nil, 0, false
		}
		opts = append(opts, core.WithScanWorkers(n))
	}
	if v := q.Get("zone_maps"); v != "" {
		on, err := strconv.ParseBool(v)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad zone_maps %q (want true or false)", v)
			return nil, 0, false
		}
		opts = append(opts, core.WithZoneMaps(on))
	}
	timeout = s.opts.RequestTimeout
	if v := q.Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			httpError(w, http.StatusBadRequest, "bad timeout %q", v)
			return nil, 0, false
		}
		if timeout == 0 || d < timeout {
			timeout = d
		}
	}
	return opts, timeout, true
}

func (s *Server) handleCheck(w http.ResponseWriter, r *http.Request) {
	ctx, cancel, name, doc, opts, ok := s.requestSetup(w, r)
	defer cancel()
	if !ok {
		return
	}
	if err := s.acquire(ctx); err != nil {
		s.writeCheckError(w, name, err)
		return
	}
	defer s.release()

	// Resolve the checker once, up front: the report renderer needs its
	// default table name, and resolving after Check could rebuild an
	// LRU-evicted catalog on the response path.
	ck, err := s.svc.Checker(ctx, name)
	if err != nil {
		s.writeCheckError(w, name, err)
		return
	}
	rep, err := ck.Check(ctx, doc, opts...)
	if err != nil {
		s.writeCheckError(w, name, err)
		return
	}
	writeJSON(w, http.StatusOK, toWireReport(name, rep, defaultTableOf(ck)))
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	ctx, cancel, name, doc, opts, ok := s.requestSetup(w, r)
	defer cancel()
	if !ok {
		return
	}
	if err := s.acquire(ctx); err != nil {
		s.writeCheckError(w, name, err)
		return
	}
	defer s.release()

	// Resolve the checker first so unknown databases still fail with a
	// proper status code instead of mid-stream.
	ck, err := s.svc.Checker(ctx, name)
	if err != nil {
		s.writeCheckError(w, name, err)
		return
	}
	events, err := ck.Stream(ctx, doc, opts...)
	if err != nil {
		s.writeCheckError(w, name, err)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	defTable := defaultTableOf(ck)
	for ev := range events {
		if err := enc.Encode(toWireEvent(name, ev, defTable)); err != nil {
			// Client went away; cancel the run and drain to completion so
			// the stream goroutine can exit.
			cancel()
			for range events {
			}
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// handleShardCube serves one shard worker request (shard.Client's remote
// side): the cube pass runs on the named database's engine and the partial
// comes back in canonical wire form. A coordinator points shard.Clients at
// peers that registered each partition as an ordinary database.
func (s *Server) handleShardCube(w http.ResponseWriter, r *http.Request) {
	var req sqlexec.CubeRequest
	s.serveShard(w, r, func(ctx context.Context, ck *core.Checker) (any, error) {
		return ck.Engine.CubePartialFor(ctx, req)
	}, &req)
}

// handleShardScan serves one direct-scan shard request; see handleShardCube.
func (s *Server) handleShardScan(w http.ResponseWriter, r *http.Request) {
	var req sqlexec.ScanRequest
	s.serveShard(w, r, func(ctx context.Context, ck *core.Checker) (any, error) {
		return ck.Engine.ScanPartialContext(ctx, req.Query)
	}, &req)
}

// serveShard decodes a shard request into dst, resolves the named
// database's checker, and runs the pass.
func (s *Server) serveShard(w http.ResponseWriter, r *http.Request, run func(context.Context, *core.Checker) (any, error), dst any) {
	name := r.PathValue("name")
	body := io.LimitReader(r.Body, s.opts.MaxBodyBytes+1)
	if err := json.NewDecoder(body).Decode(dst); err != nil {
		httpError(w, http.StatusBadRequest, "bad shard request: %v", err)
		return
	}
	ck, err := s.svc.Checker(r.Context(), name)
	if err != nil {
		s.writeCheckError(w, name, err)
		return
	}
	out, err := run(r.Context(), ck)
	if err != nil {
		s.writeCheckError(w, name, err)
		return
	}
	writeJSON(w, http.StatusOK, out)
}

// writeCheckError maps service/pipeline errors to HTTP statuses.
func (s *Server) writeCheckError(w http.ResponseWriter, name string, err error) {
	switch {
	case errors.Is(err, core.ErrUnknownDatabase):
		httpError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, context.DeadlineExceeded):
		httpError(w, http.StatusGatewayTimeout, "verification timed out")
	case errors.Is(err, context.Canceled):
		// Client is gone; nothing useful to send.
		httpError(w, http.StatusServiceUnavailable, "request cancelled")
	default:
		s.logf("httpapi: check %q: %v", name, err)
		httpError(w, http.StatusInternalServerError, "internal error")
	}
}

func defaultTableOf(ck *core.Checker) string {
	if ck == nil || ck.Engine == nil {
		return ""
	}
	return ck.Engine.DefaultTable()
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
