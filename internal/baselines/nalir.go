package baselines

import (
	"math"
	"strings"

	"aggchecker/internal/db"
	"aggchecker/internal/document"
	"aggchecker/internal/model"
	"aggchecker/internal/nlp"
	"aggchecker/internal/sqlexec"
)

// QuestionGenerator turns a claim sentence into verification questions, in
// the spirit of the Heilman & Smith tool ClaimBuster-KB uses: it extracts
// the claimed value and rewrites the sentence around interrogative
// scaffolds. Long multi-claim sentences produce noisy questions — the
// bottleneck the paper reports.
type QuestionGenerator struct{}

// Questions generates question strings for a claim. The Heilman & Smith
// generator produces a wh-question only when its parse identifies the
// claimed number as the determiner of a countable noun phrase in a simple,
// single-clause sentence; over-generated questions are discarded by its
// statistical ranker. We emulate those gates: a "How many …?" rewrite is
// emitted only for single-number, comma-free sentences of moderate length
// where a content noun directly follows the number. The raw sentence is
// always included, as the paper does when querying NaLIR.
func (QuestionGenerator) Questions(c *document.Claim) []string {
	sent := c.Sentence
	qs := []string{sent.Text}

	if strings.Contains(sent.Text, ",") {
		return qs // multi-clause: the generator's parse fails
	}
	numbers := 0
	for _, tok := range sent.Tokens {
		if tok.Kind == nlp.Number {
			numbers++
		}
		if _, isWord := nlp.NumberWordValue(tok.Lower); tok.Kind == nlp.Word && isWord {
			numbers++
		}
	}
	if numbers != 1 || len(sent.Tokens) > 14 {
		return qs // multi-claim or overlong sentences over-generate garbage
	}
	// The number must determine a following content noun ("7 stores …").
	next := c.TokenIndex + c.TokenSpan
	if next >= len(sent.Tokens) {
		return qs
	}
	head := sent.Tokens[next]
	if head.Kind != nlp.Word || head.IsStop() {
		return qs
	}
	var after []string
	for _, tok := range sent.Tokens[next:] {
		if tok.Kind != nlp.Punct {
			after = append(after, tok.Text)
		}
	}
	return append(qs, "How many "+strings.Join(after, " ")+"?")
}

// NaLIR is a syntax-driven natural-language-to-SQL translator in the style
// of Li & Jagadish: it maps parse-tree nodes to query elements by direct
// lexical matching against the schema. It has no document context, no
// synonym expansion beyond exact stems, no probabilistic reasoning, and no
// evaluation feedback — the properties whose absence the paper measures.
// Claims whose sentences do not resemble their query tree (implicit
// aggregation functions, paraphrased predicates, multi-claim sentences)
// fail to translate, mirroring the reported 42% translation ratio.
type NaLIR struct {
	DB     *db.Database
	Engine *sqlexec.Engine
}

// NewNaLIR builds the translator over a database.
func NewNaLIR(d *db.Database) *NaLIR {
	return &NaLIR{DB: d, Engine: sqlexec.NewEngine(d)}
}

// fnKeywords maps explicit command tokens to aggregation functions. NaLIR
// requires an explicit token; implicit counts fail (the paper: 30% of
// claims never state the function).
var fnKeywords = map[string]sqlexec.AggFunc{
	"many":       sqlexec.Count,
	"number":     sqlexec.Count,
	"count":      sqlexec.Count,
	"total":      sqlexec.Sum,
	"sum":        sqlexec.Sum,
	"average":    sqlexec.Avg,
	"mean":       sqlexec.Avg,
	"highest":    sqlexec.Max,
	"largest":    sqlexec.Max,
	"maximum":    sqlexec.Max,
	"lowest":     sqlexec.Min,
	"minimum":    sqlexec.Min,
	"percent":    sqlexec.Percentage,
	"percentage": sqlexec.Percentage,
	"distinct":   sqlexec.CountDistinct,
	"different":  sqlexec.CountDistinct,
}

// Translate attempts to map one question to a query. ok is false when no
// complete mapping exists (failed parse in the paper's terms).
func (n *NaLIR) Translate(question string) (sqlexec.Query, bool) {
	toks := nlp.Tokenize(question)
	words := make([]string, 0, len(toks))
	for _, t := range toks {
		if t.Kind == nlp.Word && !t.IsStop() {
			words = append(words, t.Lower)
		}
	}
	// Command token: the first explicit function keyword.
	var fn sqlexec.AggFunc
	found := false
	for _, w := range words {
		if f, ok := fnKeywords[w]; ok {
			fn, found = f, true
			break
		}
	}
	if !found {
		return sqlexec.Query{}, false
	}
	// Long or clause-rich questions defeat the parse-tree mapping: the
	// paper reports high edit distance between claim parse trees and query
	// trees, and NaLIR targets "relatively concise questions". Multi-clause
	// inputs (commas) and inputs with several numbers (multi-claim
	// sentences, 29% of the corpus) fail outright.
	if len(words) > 10 {
		return sqlexec.Query{}, false
	}
	if strings.Contains(question, ",") {
		return sqlexec.Query{}, false
	}
	numbers := 0
	for _, t := range toks {
		if t.Kind == nlp.Number {
			numbers++
		}
	}
	if numbers > 1 {
		return sqlexec.Query{}, false
	}

	q := sqlexec.Query{Agg: fn}

	// Value nodes: exact full-literal matches of word n-grams against
	// column dictionaries (NaLIR matches data values lexically).
	type litMatch struct {
		col sqlexec.ColumnRef
		val string
	}
	var lits []litMatch
	text := strings.Join(words, " ")
	for _, tbl := range n.DB.Tables() {
		for _, col := range tbl.StringColumns() {
			for _, v := range col.Dictionary() {
				lv := strings.ToLower(v)
				if lv != "" && strings.Contains(text, lv) {
					lits = append(lits, litMatch{
						col: sqlexec.ColumnRef{Table: tbl.Name, Column: col.Name},
						val: v,
					})
				}
			}
		}
	}
	seenCol := map[string]bool{}
	for _, lm := range lits {
		key := lm.col.String()
		if seenCol[key] {
			// Ambiguous: two values of the same column in one question —
			// NaLIR cannot decide, parse fails.
			return sqlexec.Query{}, false
		}
		seenCol[key] = true
		q.Preds = append(q.Preds, sqlexec.Predicate{Col: lm.col, Value: lm.val})
	}
	if len(q.Preds) > 3 {
		return sqlexec.Query{}, false
	}

	// Aggregation column: a column whose decomposed name appears verbatim.
	if fn.NeedsNumericColumn() || fn == sqlexec.CountDistinct {
		var agg sqlexec.ColumnRef
		okCol := false
		for _, tbl := range n.DB.Tables() {
			for _, col := range tbl.Columns {
				name := strings.ToLower(strings.ReplaceAll(col.Name, "_", " "))
				if name != "" && strings.Contains(text, name) {
					if fn.NeedsNumericColumn() && col.Kind != db.KindFloat {
						continue
					}
					agg = sqlexec.ColumnRef{Table: tbl.Name, Column: col.Name}
					okCol = true
				}
			}
		}
		if !okCol {
			return sqlexec.Query{}, false
		}
		q.AggCol = agg
	}
	return q, true
}

// KBVerdict is the ClaimBuster-KB + NaLIR outcome for one claim.
type KBVerdict struct {
	Flagged    bool
	Translated bool // at least one question produced SQL
	Answered   bool // at least one query returned a numeric value
}

// CheckKB runs question generation and NaLIR translation for a claim and
// compares any numeric answers to the claimed value (the paper's protocol:
// "see if there is a match on at least one of the queries").
func (n *NaLIR) CheckKB(c *document.Claim) KBVerdict {
	var verdict KBVerdict
	for _, question := range (QuestionGenerator{}).Questions(c) {
		q, ok := n.Translate(question)
		if !ok {
			continue
		}
		verdict.Translated = true
		// A bare aggregate with no predicate is almost never the claim's
		// query; NaLIR cannot verify against it (it has no notion of the
		// document context that would supply the restriction).
		if len(q.Preds) == 0 {
			continue
		}
		v, err := n.Engine.Evaluate(q)
		if err != nil || math.IsNaN(v) {
			continue
		}
		verdict.Answered = true
		if model.Matches(v, c.Claimed.Value) {
			return KBVerdict{Flagged: false, Translated: true, Answered: true}
		}
	}
	// No query matched: flag when at least one numeric answer disagreed;
	// unanswerable claims pass (the dominant case — the paper reports only
	// 13.6% of translated queries return a single numeric value).
	verdict.Flagged = verdict.Answered
	return verdict
}
