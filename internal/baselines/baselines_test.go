package baselines

import (
	"strings"
	"testing"

	"aggchecker/internal/corpus"
	"aggchecker/internal/document"
)

func TestFactRepositoryMatching(t *testing.T) {
	repo := NewFactRepository([]Fact{
		{Statement: "There were four lifetime bans in the league", True: false},
		{Statement: "The average salary of developers rose sharply", True: true},
		{Statement: "Turnout in the primaries hit a record high", True: true},
	})
	matches := repo.TopMatches("There were only four previous lifetime bans in my database", 3)
	if len(matches) == 0 {
		t.Fatal("no matches")
	}
	if !strings.Contains(matches[0].Fact.Statement, "lifetime bans") {
		t.Errorf("top match = %q", matches[0].Fact.Statement)
	}
	v := repo.CheckFM("There were only four previous lifetime bans in my database", MaxSimilarity)
	if !v.Supported || !v.Flagged {
		t.Errorf("verdict = %+v, want supported and flagged (matched fact is false)", v)
	}
}

func TestFactRepositoryCoverageGap(t *testing.T) {
	repo := NewFactRepository([]Fact{
		{Statement: "Completely unrelated statement about weather patterns", True: true},
	})
	v := repo.CheckFM("Nine suspensions were handed out for substance abuse", MaxSimilarity)
	if v.Supported {
		t.Errorf("out-of-repository claim should be unsupported, got %+v", v)
	}
}

func TestMajorityVote(t *testing.T) {
	// Two of three similar statements are true: majority vote passes the
	// claim while max-similarity follows whichever single fact tops the
	// ranking.
	repo := NewFactRepository([]Fact{
		{Statement: "donations to republican candidates from texas numbered in the dozens", True: true},
		{Statement: "donations to republican candidates rose again", True: true},
		{Statement: "donations to republican candidates from texas doubled overnight and from texas again", True: false},
	})
	claim := "There were 72 donations to republican candidates from texas"
	mv := repo.CheckFM(claim, MajorityVote)
	if !mv.Supported {
		t.Fatal("claim should be supported")
	}
	if mv.Flagged {
		t.Error("majority of similar facts are true; claim should pass")
	}
}

func TestNaLIRTranslatesExplicitQuestion(t *testing.T) {
	c := corpus.MustLoad().Cases[0] // NFL
	n := NewNaLIR(c.DB)
	q, ok := n.Translate("How many suspensions for gambling?")
	if !ok {
		t.Fatal("explicit count question should translate")
	}
	if q.Agg.String() != "Count" || len(q.Preds) != 1 || q.Preds[0].Value != "gambling" {
		t.Errorf("query = %+v", q)
	}
}

func TestNaLIRFailsWithoutFunctionKeyword(t *testing.T) {
	c := corpus.MustLoad().Cases[0]
	n := NewNaLIR(c.DB)
	if _, ok := n.Translate("There were only four previous lifetime bans in my database"); ok {
		t.Error("implicit count should fail translation (no command token)")
	}
}

func TestNaLIRFailsOnLongSentences(t *testing.T) {
	c := corpus.MustLoad().Cases[0]
	n := NewNaLIR(c.DB)
	long := "how many of the many varied suspensions gambling substance outcomes seasons teams players fines reasons decisions appeals rulings verdicts?"
	if _, ok := n.Translate(long); ok {
		t.Error("overlong question should fail the parse mapping")
	}
}

func TestNaLIRCheckKBOnNFL(t *testing.T) {
	c := corpus.MustLoad().Cases[0]
	n := NewNaLIR(c.DB)
	translated, answered := 0, 0
	for _, claim := range c.Doc.Claims {
		v := n.CheckKB(claim)
		if v.Translated {
			translated++
		}
		if v.Answered {
			answered++
		}
	}
	// The pipeline must exhibit the paper's bottleneck: far fewer answers
	// than claims.
	if answered == len(c.Doc.Claims) {
		t.Errorf("NaLIR answered every claim (%d); expected coverage gaps", answered)
	}
	t.Logf("translated %d/%d, answered %d/%d", translated, len(c.Doc.Claims), answered, len(c.Doc.Claims))
}

func TestQuestionGeneration(t *testing.T) {
	// A simple single-clause claim yields the raw sentence plus a
	// "How many" rewrite.
	doc := document.ParseText("There were 7 stores in the northeast.")
	qs := (QuestionGenerator{}).Questions(doc.Claims[0])
	if len(qs) != 2 {
		t.Fatalf("questions = %v", qs)
	}
	if !strings.HasPrefix(qs[1], "How many stores") {
		t.Errorf("rewrite = %q", qs[1])
	}
	// Multi-claim, multi-clause sentences defeat the generator: only the
	// raw sentence is issued.
	doc2 := document.ParseText("Three were for substance abuse, one was for gambling.")
	for _, c := range doc2.Claims {
		if got := (QuestionGenerator{}).Questions(c); len(got) != 1 {
			t.Errorf("multi-clause claim produced %v", got)
		}
	}
}
