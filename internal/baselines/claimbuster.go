// Package baselines implements the comparison systems of §7.3:
// ClaimBuster-FM (fact matching against a repository of verified claims,
// with max-similarity and majority-vote aggregation) and ClaimBuster-KB
// driving a NaLIR-style natural-language-to-SQL interface through generated
// questions. Both fail for the reasons the paper gives — repository
// coverage gaps and parse-tree/query-tree distance — by construction of the
// same mechanisms, not by hard-coding results.
package baselines

import (
	"math"
	"sort"

	"aggchecker/internal/nlp"
)

// Fact is one repository entry of ClaimBuster-FM: a previously fact-checked
// statement with its verdict.
type Fact struct {
	Statement string
	True      bool

	terms map[string]float64
}

// FactRepository holds verified statements and answers similarity queries.
type FactRepository struct {
	facts []Fact
}

// NewFactRepository indexes the statements.
func NewFactRepository(facts []Fact) *FactRepository {
	repo := &FactRepository{facts: facts}
	for i := range repo.facts {
		repo.facts[i].terms = termVector(repo.facts[i].Statement)
	}
	return repo
}

// termVector builds a normalized stemmed bag-of-words vector.
func termVector(text string) map[string]float64 {
	counts := make(map[string]float64)
	for _, s := range nlp.ContentStems(text) {
		counts[s]++
	}
	var norm float64
	for _, c := range counts {
		norm += c * c
	}
	norm = math.Sqrt(norm)
	if norm > 0 {
		for k := range counts {
			counts[k] /= norm
		}
	}
	return counts
}

func cosine(a, b map[string]float64) float64 {
	if len(b) < len(a) {
		a, b = b, a
	}
	var dot float64
	for k, va := range a {
		dot += va * b[k]
	}
	return dot
}

// Match is one repository hit.
type Match struct {
	Fact       *Fact
	Similarity float64
}

// TopMatches returns the k most similar repository statements.
func (r *FactRepository) TopMatches(claim string, k int) []Match {
	qv := termVector(claim)
	matches := make([]Match, 0, len(r.facts))
	for i := range r.facts {
		sim := cosine(qv, r.facts[i].terms)
		if sim > 0 {
			matches = append(matches, Match{Fact: &r.facts[i], Similarity: sim})
		}
	}
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].Similarity != matches[j].Similarity {
			return matches[i].Similarity > matches[j].Similarity
		}
		return matches[i].Fact.Statement < matches[j].Fact.Statement
	})
	if len(matches) > k {
		matches = matches[:k]
	}
	return matches
}

// Aggregation selects how ClaimBuster-FM combines matched verdicts.
type Aggregation int

const (
	// MaxSimilarity uses the verdict of the single most similar statement.
	MaxSimilarity Aggregation = iota
	// MajorityVote weights each match's verdict by its similarity.
	MajorityVote
)

// FMVerdict is ClaimBuster-FM's output for one claim.
type FMVerdict struct {
	// Flagged marks the claim as (probably) false.
	Flagged bool
	// Supported is true when the repository contained any match at all.
	Supported bool
}

// minSimilarity gates matches; below it the claim is out of repository
// coverage and passes unflagged (the paper's "long tail" failure).
const minSimilarity = 0.25

// CheckFM classifies one claim sentence against the repository.
func (r *FactRepository) CheckFM(claim string, agg Aggregation) FMVerdict {
	matches := r.TopMatches(claim, 5)
	if len(matches) == 0 || matches[0].Similarity < minSimilarity {
		return FMVerdict{}
	}
	switch agg {
	case MajorityVote:
		var trueMass, falseMass float64
		for _, m := range matches {
			if m.Similarity < minSimilarity {
				continue
			}
			if m.Fact.True {
				trueMass += m.Similarity
			} else {
				falseMass += m.Similarity
			}
		}
		return FMVerdict{Flagged: falseMass > trueMass, Supported: true}
	default:
		return FMVerdict{Flagged: !matches[0].Fact.True, Supported: true}
	}
}
