package sqlexec_test

// External test package: the benchmark drives the exported engine surface
// so it can share the schema and case matrix with cmd/benchcube through
// internal/benchdata (which imports sqlexec and therefore cannot be used
// from the in-package tests).

import (
	"context"
	"testing"

	"aggchecker/internal/benchdata"
	"aggchecker/internal/db"
	"aggchecker/internal/sqlexec"
)

const kernelBenchRows = 40000

// BenchmarkCubeKernel compares the vectorized kernel against the scalar
// interpreter across the dimension/type/view/distinct matrix of
// benchdata.Cases; rows/s is the comparable throughput measure (one op =
// one full cube pass; caching is off so every request scans).
func BenchmarkCubeKernel(bm *testing.B) {
	ctx := context.Background()
	d := benchdata.BuildDB(kernelBenchRows)
	for _, tc := range benchdata.Cases() {
		view, err := db.BuildJoinView(d, tc.Tables)
		if err != nil {
			bm.Fatal(err)
		}
		run := func(b *testing.B, scalar bool) {
			e := sqlexec.NewEngine(d)
			e.Tune(sqlexec.WithCaching(false))
			e.Tune(sqlexec.WithScanWorkers(1)) // isolate kernel throughput
			e.Tune(sqlexec.WithScalarKernel(scalar))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.CubeForContext(ctx, tc.Tables, tc.Dims, tc.Reqs); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(view.NumRows())*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		}
		bm.Run(tc.Name+"/vectorized", func(b *testing.B) { run(b, false) })
		bm.Run(tc.Name+"/scalar", func(b *testing.B) { run(b, true) })
	}
}

// BenchmarkCubeKernelParallel measures intra-pass partial parallelism on a
// view large enough to split (the single-threaded vectorized kernel is the
// baseline).
func BenchmarkCubeKernelParallel(bm *testing.B) {
	ctx := context.Background()
	d := benchdata.BuildDB(1 << 17)
	tc := benchdata.Cases()[1] // 3dim-string-single
	view, err := db.BuildJoinView(d, tc.Tables)
	if err != nil {
		bm.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		name := map[int]string{1: "workers1", 4: "workers4"}[workers]
		bm.Run(name, func(b *testing.B) {
			e := sqlexec.NewEngine(d)
			e.Tune(sqlexec.WithCaching(false))
			e.Tune(sqlexec.WithScanWorkers(workers))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.CubeForContext(ctx, tc.Tables, tc.Dims, tc.Reqs); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(view.NumRows())*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}
