package sqlexec

import (
	"context"
	"testing"
)

func planRef(col string) ColumnRef { return ColumnRef{Table: "t", Column: col} }

func countQ(cols ...string) Query {
	q := Query{Agg: Count}
	for i := 0; i < len(cols); i += 2 {
		q.Preds = append(q.Preds, Predicate{Col: planRef(cols[i]), Value: cols[i+1]})
	}
	return q
}

func TestPlanCubesSubsetMerge(t *testing.T) {
	batch := []Query{
		countQ("a", "p"),
		countQ("b", "u"),
		countQ("a", "p", "b", "u"),
	}
	plan := PlanCubes(batch, "t", nil, true)
	if len(plan.Cubes) != 1 || len(plan.Direct) != 0 {
		t.Fatalf("plan = %d cubes, %d direct; want 1 cube (subset merging)", len(plan.Cubes), len(plan.Direct))
	}
	if got := len(plan.Cubes[0].Dims); got != 2 {
		t.Errorf("host dims = %d, want 2", got)
	}
	if got := len(plan.Cubes[0].QueryIdx); got != 3 {
		t.Errorf("host covers %d queries, want 3", got)
	}
}

func TestPlanCubesUnionMergesDisjointGroups(t *testing.T) {
	// Three disjoint single-column groups fit one m<=3 cube; a fourth
	// column forces a second cube.
	batch := []Query{
		countQ("a", "p"), countQ("a", "q"), countQ("a", "r"),
		countQ("b", "u"), countQ("b", "v"), countQ("b", "w"),
		countQ("c", "1"), countQ("c", "2"), countQ("c", "3"),
	}
	plan := PlanCubes(batch, "t", nil, true)
	if len(plan.Cubes) != 1 {
		t.Fatalf("plan = %d cubes, want 1 (disjoint groups packed into one m<=3 cube)", len(plan.Cubes))
	}
	if got := len(plan.Cubes[0].Dims); got != maxCubeDims {
		t.Errorf("packed cube has %d dims, want %d", got, maxCubeDims)
	}
	batch = append(batch, countQ("d", "x"), countQ("d", "y"), countQ("d", "z"))
	plan = PlanCubes(batch, "t", nil, true)
	if len(plan.Cubes) != 2 {
		t.Fatalf("plan = %d cubes, want 2 (fourth column exceeds the dimension limit)", len(plan.Cubes))
	}
}

func TestPlanCubesTooManyPredColumnsGoDirect(t *testing.T) {
	wide := countQ("a", "p", "b", "u", "c", "1", "d", "x")
	plan := PlanCubes([]Query{wide, countQ("a", "p")}, "t", nil, true)
	if len(plan.Direct) != 1 || plan.Direct[0] != 0 {
		t.Fatalf("direct = %v, want [0] (four predicate columns exceed maxCubeDims)", plan.Direct)
	}
	if len(plan.Cubes) != 1 {
		t.Fatalf("cubes = %d, want 1 for the narrow query", len(plan.Cubes))
	}
}

func TestPlanCubesSmallGroupsDirectWithoutCache(t *testing.T) {
	plan := PlanCubes([]Query{countQ("a", "p"), countQ("a", "q")}, "t", nil, false)
	if len(plan.Cubes) != 0 || len(plan.Direct) != 2 {
		t.Fatalf("plan = %d cubes, %d direct; want all direct (cost model, no cache)", len(plan.Cubes), len(plan.Direct))
	}
	// The same group is worth a cube once a cache amortizes the pass.
	plan = PlanCubes([]Query{countQ("a", "p"), countQ("a", "q")}, "t", nil, true)
	if len(plan.Cubes) != 1 || len(plan.Direct) != 0 {
		t.Fatalf("plan = %d cubes, %d direct; want 1 cube with caching", len(plan.Cubes), len(plan.Direct))
	}
}

func TestPlanCubesPoolLiteralsIncluded(t *testing.T) {
	pool := map[string][]string{planRef("a").String(): {"p", "q", "r", "s"}}
	plan := PlanCubes([]Query{countQ("a", "p")}, "t", pool, true)
	if len(plan.Cubes) != 1 {
		t.Fatalf("plan = %d cubes, want 1", len(plan.Cubes))
	}
	lits := plan.Cubes[0].Dims[0].Literals
	if len(lits) != 4 {
		t.Errorf("dim literals = %v, want the full document pool", lits)
	}
}

func TestEvaluateBatchDeduplicates(t *testing.T) {
	e := NewEngine(nflDB(t))
	q := Query{Agg: Count, Preds: []Predicate{{Col: ref("games"), Value: "indef"}}}
	batch := []Query{q, q, q, {Agg: Count}}
	got := e.EvaluateBatch(context.Background(), batch, BatchOptions{})
	if got[0] != 4 || got[1] != 4 || got[2] != 4 || got[3] != 7 {
		t.Fatalf("batch results = %v, want [4 4 4 7]", got)
	}
	if bq := e.Stats.BatchQueries.Load(); bq != 4 {
		t.Errorf("batch_queries = %d, want 4", bq)
	}
	// The three duplicates must share one evaluation: at most one cube pass
	// plus one direct scan can have happened.
	work := e.Stats.CubePasses.Load() + e.Stats.DirectQueries.Load()
	if work > 2 {
		t.Errorf("duplicate queries were re-evaluated: %d scans", work)
	}
}

func TestEvaluateBatchEmptyAndSerial(t *testing.T) {
	e := NewEngine(nflDB(t))
	if got := e.EvaluateBatch(context.Background(), nil, BatchOptions{}); len(got) != 0 {
		t.Fatalf("empty batch returned %v", got)
	}
	// Workers=1 must take the serial path and produce identical results.
	batch := []Query{
		{Agg: Count, Preds: []Predicate{{Col: ref("games"), Value: "indef"}}},
		{Agg: Sum, AggCol: ref("fine")},
	}
	got := e.EvaluateBatch(context.Background(), batch, BatchOptions{Workers: 1})
	if got[0] != 4 || got[1] != 560 {
		t.Fatalf("serial batch = %v, want [4 560]", got)
	}
}
