package sqlexec

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"

	"aggchecker/internal/db"
)

// maxCubeDims bounds the number of cube dimensions; the paper expects at
// most three predicates per claim in newspaper articles (§6.3, m = 3).
const maxCubeDims = 3

// DimSpec is one cube dimension: a predicate column together with the
// literals of non-zero marginal probability. All other values are coded to a
// common default by the InOrDefault mapping (§6.2), which keeps the cube
// result small while still answering every related candidate.
type DimSpec struct {
	Col      ColumnRef
	Literals []string
}

// AggRequest names one aggregate to compute in a cube pass.
type AggRequest struct {
	Fn  AggFunc
	Col ColumnRef
}

func (r AggRequest) key() string { return r.Fn.String() + "(" + r.Col.String() + ")" }

// Cell codes: literal index >= 0; cellOther codes "some value outside the
// relevant literal set or NULL"; cellAny means the dimension is not grouped
// (the cube's rolled-up level).
const (
	cellAny   int16 = -1
	cellOther int16 = -2
)

type cellKey [maxCubeDims]int16

// trackedCol is an aggregation column tracked during a cube pass.
type trackedCol struct {
	ref          ColumnRef
	needDistinct bool
}

// CubeResult holds the cells of one cube query: for every combination of
// dimension values (including rolled-up levels) the accumulators of every
// tracked aggregation column plus the star column (index 0).
type CubeResult struct {
	Tables []string
	Dims   []DimSpec

	dimIndex map[string]int     // ColumnRef.String() -> dim position
	litIndex []map[string]int16 // per dim: literal -> code
	cols     []trackedCol       // tracked columns; cols[0] is star
	colIndex map[string]int
	cells    map[cellKey][]*accumulator // parallel to cols

	// filter is the shared predicate of a selection-pushdown pass (nil for
	// ordinary cubes): every cell accumulated only rows matching it, and
	// the cube answers only queries that carry the filter in their
	// conjunction (stripped before the cell lookup). baseRows counts every
	// row of the scanned range, rejected rows included — the Percentage
	// denominator filtered cells can no longer supply.
	filter   *Predicate
	baseRows int64
}

// Filter returns the pushdown predicate the cube was computed under, or nil
// for an ordinary cube.
func (r *CubeResult) Filter() *Predicate { return r.filter }

// BaseRows returns the total rows of the scanned range, including rows the
// pushdown filter rejected (0 for ordinary cubes).
func (r *CubeResult) BaseRows() int64 { return r.baseRows }

// stripFilter maps a query's predicates to the ones the filtered cube's
// dimensions must resolve: the cube's filter predicate is satisfied by
// construction, so exactly one occurrence of it is removed. ok is false
// when the query does not carry the filter — or carries it in a position
// whose ratio-aggregate denominator the filtered cells cannot reproduce:
//
//   - ConditionalProbability: only the conditioning predicate Preds[0] may
//     be absorbed (its matches are then exactly the cube's row set, so the
//     denominator is the rolled-up cell).
//   - Percentage over a non-star column: the denominator needs the
//     column's non-NULL count over ALL rows, which a filtered pass never
//     accumulates.
//
// Unfiltered cubes pass every query through unchanged.
func (r *CubeResult) stripFilter(q Query) ([]Predicate, bool) {
	if r.filter == nil {
		return q.Preds, true
	}
	f := *r.filter
	if q.Agg == ConditionalProbability {
		if len(q.Preds) == 0 || q.Preds[0] != f {
			return nil, false
		}
		return q.Preds[1:], true
	}
	if q.Agg == Percentage && !q.AggCol.IsStar() {
		return nil, false
	}
	for i, p := range q.Preds {
		if p == f {
			out := make([]Predicate, 0, len(q.Preds)-1)
			out = append(out, q.Preds[:i]...)
			return append(out, q.Preds[i+1:]...), true
		}
	}
	return nil, false
}

func newCubeResult(tables []string, dims []DimSpec) *CubeResult {
	r := &CubeResult{
		Tables:   tables,
		Dims:     dims,
		dimIndex: make(map[string]int, len(dims)),
		colIndex: make(map[string]int),
		cells:    make(map[cellKey][]*accumulator),
	}
	for i, d := range dims {
		r.dimIndex[d.Col.String()] = i
		idx := make(map[string]int16, len(d.Literals))
		for j, lit := range d.Literals {
			idx[lit] = int16(j)
		}
		r.litIndex = append(r.litIndex, idx)
	}
	r.cols = []trackedCol{{ref: ColumnRef{}}} // star
	r.colIndex[ColumnRef{}.String()] = 0
	return r
}

// hasColumn reports whether the column is tracked with the needed flags.
func (r *CubeResult) hasColumn(ref ColumnRef, needDistinct bool) bool {
	i, ok := r.colIndex[ref.String()]
	if !ok {
		return false
	}
	return !needDistinct || r.cols[i].needDistinct
}

// CanAnswer reports whether the cube covers query q: all predicates fall on
// cube dimensions with known literals (after absorbing a pushdown filter)
// and the aggregation column is tracked.
func (r *CubeResult) CanAnswer(q Query) bool {
	preds, ok := r.stripFilter(q)
	if !ok {
		return false
	}
	if _, ok := r.cellFor(preds); !ok {
		return false
	}
	if q.AggCol.IsStar() {
		return true
	}
	return r.hasColumn(q.AggCol, q.Agg == CountDistinct)
}

// cellFor maps predicates to the cube cell key.
func (r *CubeResult) cellFor(preds []Predicate) (cellKey, bool) {
	key := cellKey{cellAny, cellAny, cellAny}
	for _, p := range preds {
		di, ok := r.dimIndex[p.Col.String()]
		if !ok {
			return key, false
		}
		li, ok := r.litIndex[di][p.Value]
		if !ok {
			return key, false
		}
		if key[di] != cellAny {
			return key, false // two predicates on the same column
		}
		key[di] = li
	}
	return key, true
}

// acc returns the accumulator of column ci at the cell, or nil when no row
// fell into the cell (semantically an all-zero accumulator).
func (r *CubeResult) acc(key cellKey, ci int) *accumulator {
	cell, ok := r.cells[key]
	if !ok {
		return nil
	}
	return cell[ci]
}

// Value answers query q from the cube. The second return is false when the
// cube does not cover the query.
func (r *CubeResult) Value(q Query) (float64, bool) {
	preds, ok := r.stripFilter(q)
	if !ok {
		return 0, false
	}
	key, ok := r.cellFor(preds)
	if !ok {
		return 0, false
	}
	star := q.AggCol.IsStar()
	ci := 0
	if !star {
		ci, ok = r.colIndex[q.AggCol.String()]
		if !ok {
			return 0, false
		}
		if q.Agg == CountDistinct && !r.cols[ci].needDistinct {
			return 0, false
		}
	}
	a := r.acc(key, ci)
	var base *accumulator
	switch q.Agg {
	case Percentage:
		if r.filter != nil {
			// The denominator covers every scanned row, filter matches or
			// not; the pass counted them in baseRows. stripFilter admits
			// only star aggregates here, and star finalization reads
			// base.rows alone, so a synthesized count-only accumulator is
			// exact.
			base = &accumulator{rows: r.baseRows, nonNull: r.baseRows, min: math.Inf(1), max: math.Inf(-1)}
			break
		}
		baseKey := cellKey{cellAny, cellAny, cellAny}
		base = r.acc(baseKey, ci)
	case ConditionalProbability:
		baseKey := cellKey{cellAny, cellAny, cellAny}
		if r.filter != nil {
			// stripFilter guaranteed the conditioning predicate IS the
			// filter: its matches are exactly the cube's row set, so the
			// denominator is the fully rolled-up cell.
			base = r.acc(baseKey, ci)
			break
		}
		if len(preds) > 0 {
			var ok2 bool
			baseKey, ok2 = r.cellFor(preds[:1])
			if !ok2 {
				return 0, false
			}
		}
		base = r.acc(baseKey, ci)
	}
	if a == nil {
		// Empty cell: counts are zero, other aggregates undefined.
		a = newAccumulator(q.Agg == CountDistinct)
	}
	return a.finalize(q.Agg, star, base), true
}

// signature identifies a cube by join scope and dimension set (the paper's
// cache index granularity is one aggregation function + column + dimension
// set; we key the cell store by scope+dims and track columns inside it,
// which is the same sharing structure with one map level fewer).
// A pushdown filter is part of the identity: a filtered cube holds
// different cell contents than the unfiltered cube over the same scope and
// dims, so the two must never share a cache slot.
func cubeSignature(tables []string, dims []DimSpec, filter *Predicate) string {
	ts := make([]string, len(tables))
	copy(ts, tables)
	sort.Strings(ts)
	ds := make([]string, len(dims))
	for i, d := range dims {
		ds[i] = d.Col.String()
	}
	sort.Strings(ds)
	sig := strings.Join(ts, ",") + "|" + strings.Join(ds, ",")
	if filter != nil {
		sig += "|where " + filter.String()
	}
	return sig
}

// newCubeResultWithCols builds the empty result shell shared by both cube
// kernels: dimension indexes plus the deduplicated tracked columns (star at
// index 0). Kernels fill r.cells.
func newCubeResultWithCols(tables []string, dims []DimSpec, cols []trackedCol) (*CubeResult, error) {
	if len(dims) > maxCubeDims {
		return nil, fmt.Errorf("sqlexec: %d cube dimensions exceeds maximum %d", len(dims), maxCubeDims)
	}
	r := newCubeResult(tables, dims)
	for _, tc := range cols {
		if tc.ref.IsStar() {
			if tc.needDistinct {
				return nil, fmt.Errorf("sqlexec: distinct count over * is not supported")
			}
			continue
		}
		if i, ok := r.colIndex[tc.ref.String()]; ok {
			if tc.needDistinct {
				r.cols[i].needDistinct = true
			}
			continue
		}
		r.colIndex[tc.ref.String()] = len(r.cols)
		r.cols = append(r.cols, tc)
	}
	return r, nil
}

// computeCubeScalar is the legacy row-at-a-time cube interpreter: one scan
// over the joined view, accumulating every tracked column at every cell of
// the cube lattice (2^|dims| hash-map probes and pointer-chased accumulator
// updates per row). It is kept behind Engine.SetScalarKernel as the
// reference implementation for differential testing, and as the fallback
// when literal sets make the vectorized kernel's dense lattice too large
// (see flatLatticeSize in kernel.go).
func computeCubeScalar(ctx context.Context, view *db.JoinView, tables []string, dims []DimSpec, cols []trackedCol) (*CubeResult, error) {
	return computeCubeScalarRange(ctx, view, tables, dims, cols, 0, view.NumRows(), nil)
}

// computeCubeScalarFiltered is the scalar interpreter of a full
// selection-pushdown pass — the differential-testing oracle for the
// vectorized filtered kernel.
func computeCubeScalarFiltered(ctx context.Context, view *db.JoinView, tables []string, dims []DimSpec, cols []trackedCol, filter *Predicate) (*CubeResult, error) {
	return computeCubeScalarRange(ctx, view, tables, dims, cols, 0, view.NumRows(), filter)
}

// computeCubeScalarRange is the scalar interpreter restricted to joined
// rows [lo, hi): the full pass with lo=0, hi=NumRows, or a delta scan over
// appended rows when the literal pool forced the scalar fallback. A non-nil
// filter makes it a selection-pushdown pass: rows failing the filter only
// count into baseRows, in the same per-row scan order the vectorized
// kernel's compacted segments preserve.
func computeCubeScalarRange(ctx context.Context, view *db.JoinView, tables []string, dims []DimSpec, cols []trackedCol, lo, hi int, filter *Predicate) (*CubeResult, error) {
	r, err := newCubeResultWithCols(tables, dims, cols)
	if err != nil {
		return nil, err
	}
	r.filter = filter
	var fmatch func(row int) bool
	if filter != nil {
		pes, err := compilePreds(view, []Predicate{*filter}, false)
		if err != nil {
			return nil, err
		}
		pe := pes[0]
		if pe.isStr {
			fmatch = func(row int) bool { return pe.acc.Code(row) == pe.code }
		} else {
			fmatch = func(row int) bool { return pe.acc.Float(row) == pe.val }
		}
		if pe.never {
			fmatch = func(int) bool { return false }
		}
	}

	// Resolve dimension accessors and per-row literal coders.
	type dimCoder struct {
		acc   db.ColumnAccessor
		isStr bool
		// For string dims: dictionary code -> literal index.
		codeToLit map[int32]int16
		// For numeric dims: value -> literal index.
		floatToLit map[float64]int16
	}
	coders := make([]dimCoder, len(dims))
	for i, d := range dims {
		acc, err := view.Accessor(d.Col.Table, d.Col.Column)
		if err != nil {
			return nil, err
		}
		dc := dimCoder{acc: acc, isStr: acc.Column().Kind == db.KindString}
		if dc.isStr {
			dc.codeToLit = make(map[int32]int16, len(d.Literals))
			for j, lit := range d.Literals {
				if code := acc.Column().CodeOf(lit); code >= 0 {
					dc.codeToLit[code] = int16(j)
				}
			}
		} else {
			dc.floatToLit = make(map[float64]int16, len(d.Literals))
			for j, lit := range d.Literals {
				if v, err := parseLiteralFloat(lit); err == nil {
					dc.floatToLit[v] = int16(j)
				}
			}
		}
		coders[i] = dc
	}

	// Resolve aggregation column accessors (index 0 = star, no accessor).
	type colReader struct {
		acc   db.ColumnAccessor
		isStr bool
	}
	readers := make([]colReader, len(r.cols))
	for i := 1; i < len(r.cols); i++ {
		acc, err := view.Accessor(r.cols[i].ref.Table, r.cols[i].ref.Column)
		if err != nil {
			return nil, err
		}
		readers[i] = colReader{acc: acc, isStr: acc.Column().Kind == db.KindString}
	}

	nsubsets := 1 << len(dims)
	var rowCodes [maxCubeDims]int16
	for row := lo; row < hi; row++ {
		if (row-lo)%ctxCheckRows == 0 && row > lo {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if fmatch != nil {
			r.baseRows++
			if !fmatch(row) {
				continue
			}
		}
		for i := range coders {
			dc := &coders[i]
			code := cellOther
			if dc.isStr {
				if c := dc.acc.Code(row); c >= 0 {
					if li, ok := dc.codeToLit[c]; ok {
						code = li
					}
				}
			} else {
				v := dc.acc.Float(row)
				if !math.IsNaN(v) {
					if li, ok := dc.floatToLit[v]; ok {
						code = li
					}
				}
			}
			rowCodes[i] = code
		}
		for mask := 0; mask < nsubsets; mask++ {
			key := cellKey{cellAny, cellAny, cellAny}
			for i := 0; i < len(dims); i++ {
				if mask&(1<<i) != 0 {
					key[i] = rowCodes[i]
				}
			}
			cell, ok := r.cells[key]
			if !ok {
				cell = make([]*accumulator, len(r.cols))
				for i := range cell {
					cell[i] = newAccumulator(r.cols[i].needDistinct)
				}
				r.cells[key] = cell
			}
			cell[0].addRow(false, math.NaN(), 0) // star: row count only
			for i := 1; i < len(r.cols); i++ {
				rd := readers[i]
				if rd.isStr {
					c := rd.acc.Code(row)
					cell[i].addRow(c < 0, math.NaN(), uint64(uint32(c)))
				} else {
					v := rd.acc.Float(row)
					cell[i].addRow(math.IsNaN(v), v, math.Float64bits(v))
				}
			}
		}
	}
	return r, nil
}

// merged returns a new CubeResult combining r with the tracked columns of
// other (computed over identical scope and dims), used when the cache holds
// a cube lacking some columns. r itself is never modified: published cube
// results are immutable, so goroutines answering queries from an earlier
// snapshot never race with cache extension (copy-on-write).
func (r *CubeResult) merged(other *CubeResult) *CubeResult {
	out := &CubeResult{
		Tables:   r.Tables,
		Dims:     r.Dims,
		dimIndex: r.dimIndex, // immutable after construction, safe to share
		litIndex: r.litIndex,
		cols:     append([]trackedCol(nil), r.cols...),
		colIndex: make(map[string]int, len(r.colIndex)),
		cells:    make(map[cellKey][]*accumulator, len(r.cells)),
		filter:   r.filter,
		baseRows: r.baseRows, // both sides scanned the same rows
	}
	for k, v := range r.colIndex {
		out.colIndex[k] = v
	}
	colMap := make([]int, len(other.cols)) // other col idx -> out col idx (-1 skip)
	for i, tc := range other.cols {
		if i == 0 {
			colMap[i] = -1 // star already tracked
			continue
		}
		if j, ok := out.colIndex[tc.ref.String()]; ok {
			if tc.needDistinct && !out.cols[j].needDistinct {
				// Replace stats for this column with the distinct-capable ones.
				out.cols[j].needDistinct = true
				colMap[i] = j
				continue
			}
			colMap[i] = -1
			continue
		}
		colMap[i] = len(out.cols)
		out.colIndex[tc.ref.String()] = len(out.cols)
		out.cols = append(out.cols, tc)
	}
	width := len(out.cols)
	for key, cell := range r.cells {
		nc := make([]*accumulator, width)
		copy(nc, cell)
		out.cells[key] = nc
	}
	for key, otherCell := range other.cells {
		cell, ok := out.cells[key]
		if !ok {
			cell = make([]*accumulator, width)
			out.cells[key] = cell
		}
		for i, target := range colMap {
			if target < 0 {
				continue
			}
			cell[target] = otherCell[i]
		}
	}
	// Fill holes for cells only one side touched (only possible when the
	// cubes scanned different data; defensive, they share one view).
	for _, cell := range out.cells {
		for i := range cell {
			if cell[i] == nil {
				cell[i] = newAccumulator(out.cols[i].needDistinct)
			}
		}
	}
	return out
}

// memBytes estimates the resident heap size of the cube result: cell map
// storage, accumulators (with their distinct sets), and the dimension
// literal tables. Go's map and allocator overheads are approximated with
// fixed per-entry costs — the estimate only needs to be consistent across
// cubes, which is all the cost-aware cache policy ranks by.
func (r *CubeResult) memBytes() int64 {
	const (
		accBytes      = 64 // accumulator struct + allocator overhead
		cellOverhead  = 48 // map bucket share + key + slice header
		distinctEntry = 16 // one uint64 key + bucket share
		distinctMap   = 48 // non-nil distinct map header
	)
	var n int64
	for _, cell := range r.cells {
		n += cellOverhead + int64(len(cell))*8
		for _, a := range cell {
			if a == nil {
				continue
			}
			n += accBytes
			if a.distinct != nil {
				n += distinctMap + int64(len(a.distinct))*distinctEntry
			}
		}
	}
	for _, d := range r.Dims {
		for _, lit := range d.Literals {
			n += 16 + int64(len(lit))
		}
	}
	return n
}

// trackedCols returns the result's tracked aggregation columns (star
// excluded) in tracking order — the column set a delta scan must cover so
// the merged cube keeps answering everything the cached one did.
func (r *CubeResult) trackedCols() []trackedCol {
	if len(r.cols) <= 1 {
		return nil
	}
	return append([]trackedCol(nil), r.cols[1:]...)
}

// mergeAppend returns a new CubeResult equal to scanning the union of the
// two results' disjoint row ranges: r covers the sealed prefix, delta the
// appended rows (computed with r's own Dims and tracked columns). Neither
// input is modified — published cube results are immutable, so readers
// answering queries from the pre-append snapshot never race with the
// advance (copy-on-write). Cells untouched by the delta share r's
// accumulators outright; merged cells get fresh accumulators, so counts,
// sums, min/max, and distinct sets combine exactly as a from-scratch
// rebuild would produce them (bit-for-bit for integer-valued data, where
// float addition is associative).
func (r *CubeResult) mergeAppend(delta *CubeResult) *CubeResult {
	out := &CubeResult{
		Tables:   r.Tables,
		Dims:     r.Dims,
		dimIndex: r.dimIndex, // immutable after construction, safe to share
		litIndex: r.litIndex,
		cols:     r.cols,
		colIndex: r.colIndex,
		cells:    make(map[cellKey][]*accumulator, len(r.cells)+len(delta.cells)),
		filter:   r.filter,
		baseRows: r.baseRows + delta.baseRows, // disjoint row ranges
	}
	for key, cell := range r.cells {
		dcell, ok := delta.cells[key]
		if !ok {
			out.cells[key] = cell // untouched by the appended rows: share
			continue
		}
		merged := make([]*accumulator, len(cell))
		for i := range cell {
			merged[i] = addAccumulators(cell[i], dcell[i])
		}
		out.cells[key] = merged
	}
	for key, dcell := range delta.cells {
		if _, ok := r.cells[key]; !ok {
			out.cells[key] = dcell // first seen in the appended rows: adopt
		}
	}
	return out
}

// addAccumulators combines two accumulators over disjoint row ranges into a
// fresh one (a first, preserving the scan-order semantics of min/max ties
// and summation order).
func addAccumulators(a, b *accumulator) *accumulator {
	if a == nil && b == nil {
		return nil
	}
	if a == nil {
		a = newAccumulator(b.distinct != nil)
	}
	if b == nil {
		b = newAccumulator(a.distinct != nil)
	}
	out := &accumulator{
		rows:    a.rows + b.rows,
		nonNull: a.nonNull + b.nonNull,
		sum:     a.sum + b.sum,
		min:     a.min,
		max:     a.max,
	}
	if b.min < out.min {
		out.min = b.min
	}
	if b.max > out.max {
		out.max = b.max
	}
	if a.distinct != nil || b.distinct != nil {
		out.distinct = make(map[uint64]struct{}, len(a.distinct)+len(b.distinct))
		for k := range a.distinct {
			out.distinct[k] = struct{}{}
		}
		for k := range b.distinct {
			out.distinct[k] = struct{}{}
		}
	}
	return out
}
