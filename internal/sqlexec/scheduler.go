package sqlexec

import (
	"context"
	"runtime"
	"sync"

	"aggchecker/internal/db"
)

// This file implements the process-wide morsel scheduler: cube passes and
// direct scans decompose into zone-aligned row-range morsels (small enough
// that a heavy pass yields frequently, large enough that per-morsel
// accumulator state stays amortized) and submit them to one shared worker
// pool spanning all concurrent requests. Scheduling is morsel-driven in the
// HyPer sense: workers pull the next morsel from a per-request fair queue
// instead of each pass sizing a private goroutine pool, so fifty light
// checks are never starved behind one heavy document.
//
// Two structural decisions carry the correctness story:
//
//   - Owner participation. The goroutine that submits a job always executes
//     its own job's morsels; the pool's helper goroutines (workers-1 of
//     them) assist whichever job round-robin points at. A scheduler of
//     width 1 therefore has no helpers at all and degenerates to exactly
//     the single-threaded scan, and a light request always makes progress
//     at its submitter's own pace even when every helper is busy — the
//     fairness floor does not depend on queue position.
//
//   - Deterministic merging. The scheduler never merges anything: callers
//     decompose into a fixed morsel list (a pure function of the row range
//     and zone spans) and merge partials in morsel-index order after Run
//     returns. Results are therefore independent of worker count and
//     interleaving; for integer-valued data they are bit-for-bit identical
//     to the single-threaded scan (float sums regroup at morsel
//     boundaries, where addition is not associative).

// Scheduler is a shared morsel-execution pool. One Scheduler serves every
// engine of a process (core.Service installs one per service, daemons one
// per process); it is safe for concurrent use and Run may be called from
// many goroutines at once.
type Scheduler struct {
	workers int

	mu     sync.Mutex
	cond   *sync.Cond
	jobs   []*schedJob
	rr     int // round-robin cursor into jobs
	idle   int // helpers parked in cond.Wait
	closed bool
	wg     sync.WaitGroup
}

// schedJob is one submitted morsel batch. next/active/err are guarded by
// the scheduler mutex; run is immutable after submission.
type schedJob struct {
	ctx     context.Context
	stats   *Stats
	run     func(i int) error
	n       int // total morsels
	next    int // next morsel index to hand out
	active  int // morsels currently executing
	maxConc int // cap on concurrently executing morsels (<=0: pool width)
	err     error
	aborted bool // stop handing out morsels (error or ctx cancelled)
	done    bool // fully drained; finished closed
	finish  chan struct{}
}

// NewScheduler creates a shared pool of the given width. workers <= 0 uses
// runtime.GOMAXPROCS(0). Width counts the submitting goroutines: a pool of
// width w starts w-1 helper goroutines, so NewScheduler(1) runs every job
// inline on its submitter and a daemon on an n-core box wants width n, not
// n+1. Close releases the helpers.
func NewScheduler(workers int) *Scheduler {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s := &Scheduler{workers: workers}
	s.cond = sync.NewCond(&s.mu)
	for i := 0; i < workers-1; i++ {
		s.wg.Add(1)
		go s.helperLoop()
	}
	return s
}

// Workers returns the pool width (helpers + one submitter slot).
func (s *Scheduler) Workers() int { return s.workers }

// Close stops the helper goroutines and waits for them to exit. Jobs
// in flight finish on their submitters (owner participation); jobs
// submitted after Close run entirely inline. Close is idempotent.
func (s *Scheduler) Close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// Run executes morsels 0..n-1 through the pool and returns after all of
// them finished or were skipped. The submitting goroutine participates,
// executing its own job's morsels; idle helpers steal morsels concurrently,
// at most maxConc at a time per job (<=0: no per-job cap beyond the pool
// width). On the first morsel error or context cancellation the remaining
// morsels are skipped, in-flight ones are waited for, and the first error
// (or ctx.Err()) is returned. stats, when non-nil, attributes the morsel
// counters to the submitting engine.
func (s *Scheduler) Run(ctx context.Context, stats *Stats, n int, maxConc int, run func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	job := &schedJob{ctx: ctx, stats: stats, run: run, n: n, maxConc: maxConc, finish: make(chan struct{})}

	s.mu.Lock()
	if !s.closed && s.workers > 1 {
		// A submission that finds no idle helper queues behind the jobs
		// already draining the pool (it still progresses via its owner).
		if s.idle == 0 && stats != nil {
			stats.QueueWaits.Add(1)
		}
		s.jobs = append(s.jobs, job)
		s.cond.Broadcast()
	}
	// Owner participation: chew through this job's own morsels. With the
	// pool closed or width 1 the job was never published and this loop is
	// the entire (single-threaded) execution.
	for {
		for job.maxConc > 0 && job.active >= job.maxConc && !job.aborted && job.next < job.n {
			// Helpers saturated the per-job cap; wait for a completion.
			s.cond.Wait()
		}
		if job.aborted || job.next >= job.n {
			break
		}
		i := job.next
		job.next++
		job.active++
		s.mu.Unlock()
		s.exec(job, i, false)
		s.mu.Lock()
	}
	s.unpublish(job)
	s.mu.Unlock()

	// Helpers may still be executing stolen morsels; their completions
	// close finish once the job is drained.
	<-job.finish
	if job.err != nil {
		return job.err
	}
	return ctx.Err()
}

// helperLoop is one shared pool worker: pick a morsel fairly, execute it,
// repeat.
func (s *Scheduler) helperLoop() {
	defer s.wg.Done()
	s.mu.Lock()
	for {
		if s.closed {
			s.mu.Unlock()
			return
		}
		job, i := s.pickLocked()
		if job == nil {
			s.idle++
			s.cond.Wait()
			s.idle--
			continue
		}
		s.mu.Unlock()
		s.exec(job, i, true)
		s.mu.Lock()
	}
}

// pickLocked selects the next morsel round-robin across active jobs — one
// morsel per pick, so every waiting request advances before any request
// gets a second helper slot. Returns nil when no job has a dispatchable
// morsel. Callers hold s.mu; active is incremented under the same lock.
func (s *Scheduler) pickLocked() (*schedJob, int) {
	nj := len(s.jobs)
	for k := 0; k < nj; k++ {
		j := s.jobs[(s.rr+k)%nj]
		if j.aborted || j.next >= j.n {
			continue
		}
		if j.maxConc > 0 && j.active >= j.maxConc {
			continue
		}
		s.rr = (s.rr + k + 1) % nj
		i := j.next
		j.next++
		j.active++
		return j, i
	}
	return nil, 0
}

// exec runs one morsel and settles the job's bookkeeping. stolen marks
// execution by a shared helper rather than the job's owner.
func (s *Scheduler) exec(job *schedJob, i int, stolen bool) {
	var err error
	if err = job.ctx.Err(); err == nil {
		err = job.run(i)
	}
	if job.stats != nil {
		job.stats.MorselsDispatched.Add(1)
		if stolen {
			job.stats.StealCount.Add(1)
		}
	}
	s.mu.Lock()
	job.active--
	if err != nil {
		if job.err == nil {
			job.err = err
		}
		job.aborted = true
	}
	s.settleLocked(job)
	// Wake owners throttled on the per-job cap (and helpers waiting for
	// work to reappear behind it). Anyone waiting implies a published job.
	if len(s.jobs) > 0 {
		s.cond.Broadcast()
	}
	s.mu.Unlock()
}

// settleLocked closes the job's finish channel once no morsel will ever be
// dispatched again and none is executing. Both conditions are monotone, so
// the close happens exactly once.
func (s *Scheduler) settleLocked(job *schedJob) {
	if !job.done && job.active == 0 && (job.aborted || job.next >= job.n) {
		job.done = true
		close(job.finish)
	}
}

// unpublish removes a job from the fair queue (its owner is done
// dispatching; stolen morsels already handed out keep running). Callers
// hold s.mu.
func (s *Scheduler) unpublish(job *schedJob) {
	for k, j := range s.jobs {
		if j == job {
			s.jobs = append(s.jobs[:k], s.jobs[k+1:]...)
			if s.rr > k {
				s.rr--
			}
			if len(s.jobs) > 0 {
				s.rr %= len(s.jobs)
			} else {
				s.rr = 0
			}
			break
		}
	}
	s.settleLocked(job)
}

// morselTargetRows is the preferred morsel size: a few kernel blocks, so a
// heavy pass yields to the fair queue often while per-morsel accumulator
// state stays amortized over thousands of rows.
const morselTargetRows = 2 * kernelBlockRows

// minMorselsPerJob keeps enough morsels in flight to load-balance the pool
// even for jobs barely past the parallelism threshold.
const minMorselsPerJob = 8

// rowRange is one morsel's row interval [lo, hi).
type rowRange struct{ lo, hi int }

// morselRanges decomposes joined rows [lo, hi) into zone-aligned morsels:
// contiguous runs of scan segments (never splitting one) of about
// morselTargetRows rows, capped so a job never holds more than
// max(2*workers, minMorselsPerJob) partials alive at once. The
// decomposition is a pure function of its inputs — the same range always
// splits the same way, which is what makes merged results deterministic
// across worker counts and interleavings.
func morselRanges(spans []db.ZoneSpan, lo, hi, workers int) []rowRange {
	n := hi - lo
	if n <= 0 {
		return nil
	}
	maxMorsels := 2 * workers
	if maxMorsels < minMorselsPerJob {
		maxMorsels = minMorselsPerJob
	}
	target := morselTargetRows
	if t := (n + maxMorsels - 1) / maxMorsels; t > target {
		target = t
	}
	segs := segmentsOf(spans, lo, hi)
	out := make([]rowRange, 0, (n+target-1)/target)
	curLo, curN := -1, 0
	for _, sg := range segs {
		if curLo < 0 {
			curLo = sg.start
		}
		curN += sg.n
		if curN >= target {
			out = append(out, rowRange{curLo, sg.start + sg.n})
			curLo, curN = -1, 0
		}
	}
	if curLo >= 0 {
		out = append(out, rowRange{curLo, hi})
	}
	return out
}
