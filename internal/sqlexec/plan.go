package sqlexec

import (
	"context"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// This file implements the batch planning layer of §6.2–6.3: a batch of
// candidate queries — typically every unevaluated candidate of every claim
// of a document in one EM iteration — is merged into as few cube passes as
// the m ≤ maxCubeDims limit allows, and the passes are executed by a
// bounded worker pool over the shared engine. Cross-claim deduplication
// happens twice: identical queries collapse before planning, and identical
// concurrent cube requests coalesce inside the engine (singleflight).

// CubePlan is one merged cube pass covering a set of batch queries.
type CubePlan struct {
	Tables []string
	Dims   []DimSpec
	Reqs   []AggRequest
	// QueryIdx indexes the batch queries answered by this cube.
	QueryIdx []int
	// Filter, when non-nil, is an equality predicate shared by every query
	// of the pass: the kernel compacts each scan segment through the
	// predicate's selection vector before dimension coding, and the filter
	// is stripped from the queries when the cube answers them (selection
	// pushdown). Nil plans scan every row as before.
	Filter *Predicate
}

// BatchPlan is the outcome of planning a query batch: merged cube passes
// plus the queries that are cheaper (or only possible) to answer with
// dedicated scans.
type BatchPlan struct {
	Cubes []*CubePlan
	// Direct lists batch indexes answered by per-query scans: queries with
	// more predicate columns than a cube supports, and — when merging is not
	// amortized by a cache — groups too small to pay for a cube pass.
	Direct []int
}

// BatchOptions tunes EvaluateBatch.
type BatchOptions struct {
	// Pool is the document-wide literal pool (ColumnRef.String() → literals
	// of non-zero marginal probability, §6.3). Pooled literals keep cube
	// signatures stable across claims and EM iterations; batch literals are
	// always included as well.
	Pool map[string][]string
	// Workers bounds the worker pool executing cube passes and direct
	// scans; ≤ 0 uses GOMAXPROCS.
	Workers int
}

// PlanOptions tunes cube planning (PlanCubesOpt).
type PlanOptions struct {
	// Pool is the document-wide literal pool, as in BatchOptions.Pool.
	Pool map[string][]string
	// MergeSmall keeps small query groups in cube passes (set when a result
	// cache amortizes them); off, groups of ≤ 2 queries go direct.
	MergeSmall bool
	// Pushdown enables the selection-pushdown pre-pass: queries sharing an
	// equality predicate may merge into one filtered cube pass.
	Pushdown bool
}

// pushdownMinShared is the minimum number of batch queries that must share
// an equality predicate before the planner claims them into a filtered
// cube pass. Below it, the regular merged (unfiltered) cubes are at least
// as good: a filtered pass still scans every block the shared predicate's
// zones admit, so its payoff is the per-row work saved across many
// queries, not the scan itself.
const pushdownMinShared = 3

// PlanCubes merges a query batch into cube passes. Queries are grouped by
// (join scope, predicate column set); a group whose column set is a subset
// of another group's is answered from the larger cube, and remaining groups
// over the same scope are greedily unioned into wider cubes while the
// combined dimension count stays within maxCubeDims (the paper's m ≤ 3
// merging, applied across claims). When mergeSmall is false (no result
// cache to amortize a pass), groups holding ≤ 2 queries are answered with
// direct scans instead — the cost model of §6.1.
func PlanCubes(queries []Query, defaultTable string, pool map[string][]string, mergeSmall bool) *BatchPlan {
	return PlanCubesOpt(queries, defaultTable, PlanOptions{Pool: pool, MergeSmall: mergeSmall})
}

// filterEligible reports whether query q could be answered by a cube pass
// filtered on predicate f. It mirrors CubeResult.stripFilter: the query
// must carry f in a position whose ratio-aggregate denominator the
// filtered cells can reproduce.
func filterEligible(q Query, f Predicate) bool {
	if q.Agg == ConditionalProbability {
		return len(q.Preds) > 0 && q.Preds[0] == f
	}
	if q.Agg == Percentage && !q.AggCol.IsStar() {
		return false
	}
	for _, p := range q.Preds {
		if p == f {
			return true
		}
	}
	return false
}

// strippedCols returns the distinct predicate columns of q after removing
// one occurrence of f — the dimensions a cube filtered on f needs to
// answer q.
func strippedCols(q Query, f Predicate) []ColumnRef {
	stripped := false
	seen := make(map[string]bool, len(q.Preds))
	var refs []ColumnRef
	for _, p := range q.Preds {
		if !stripped && p == f {
			stripped = true
			continue
		}
		if k := p.Col.String(); !seen[k] {
			seen[k] = true
			refs = append(refs, p.Col)
		}
	}
	return refs
}

// queryDimCount is the number of distinct predicate columns of q — the
// dimensions an unfiltered cube hosting q needs.
func queryDimCount(q Query) int {
	seen := make(map[string]bool, len(q.Preds))
	for _, p := range q.Preds {
		seen[p.Col.String()] = true
	}
	return len(seen)
}

// planPushdown runs the selection-pushdown pre-pass: it counts how many
// batch queries share each (join scope, column, literal) equality
// predicate, and greedily claims the most-shared candidates into filtered
// cube passes — each pass scans once, compacting every segment through the
// shared predicate's selection vector, and answers all member queries with
// the predicate stripped. Claimed queries are marked so the regular
// planner skips them; everything left flows through unchanged, so
// pushdown can only remove work, never change an answer.
func planPushdown(plan *BatchPlan, queries []Query, defaultTable string, opt PlanOptions, claimed []bool) {
	type candKey struct {
		tables string
		col    string
		val    string
	}
	type candidate struct {
		key     candKey
		filter  Predicate
		tables  []string
		queries []int
	}
	cands := make(map[candKey]*candidate)
	for i, q := range queries {
		if opt.MergeSmall && len(opt.Pool) > 0 && queryDimCount(q) <= maxCubeDims {
			// Cost rule under caching with a literal pool (a document- or
			// corpus-scale caller, §6.3): this query's own predicate columns
			// fit an unfiltered cube, whose signature is column-set keyed and
			// so stable across batches, documents, and EM iterations — a
			// cache investment every later claim reuses. A filtered pass is
			// keyed by its literal: near-zero reuse across a corpus, one
			// fresh scan per distinct claim value. Pushdown still claims the
			// queries too wide for any unfiltered host (there the shared
			// predicate genuinely frees a dimension slot).
			continue
		}
		tables := q.Tables(defaultTable)
		scope := strings.Join(sortedCopy(tables), ",")
		seen := make(map[Predicate]bool, len(q.Preds))
		for _, p := range q.Preds {
			if seen[p] || !filterEligible(q, p) {
				continue
			}
			seen[p] = true
			// A query too wide even after stripping can never join the pass.
			if len(strippedCols(q, p)) > maxCubeDims {
				continue
			}
			k := candKey{tables: scope, col: p.Col.String(), val: p.Value}
			c, ok := cands[k]
			if !ok {
				c = &candidate{key: k, filter: p, tables: tables}
				cands[k] = c
			}
			c.queries = append(c.queries, i)
		}
	}

	// Deterministic claim order: most-shared predicates first, ties by key.
	clist := make([]*candidate, 0, len(cands))
	for _, c := range cands {
		if len(c.queries) >= pushdownMinShared {
			clist = append(clist, c)
		}
	}
	sort.Slice(clist, func(a, b int) bool {
		ca, cb := clist[a], clist[b]
		if len(ca.queries) != len(cb.queries) {
			return len(ca.queries) > len(cb.queries)
		}
		if ca.key.tables != cb.key.tables {
			return ca.key.tables < cb.key.tables
		}
		if ca.key.col != cb.key.col {
			return ca.key.col < cb.key.col
		}
		return ca.key.val < cb.key.val
	})

	for _, c := range clist {
		// Re-check membership: earlier candidates may have claimed some of
		// these queries already.
		members := c.queries[:0:0]
		for _, i := range c.queries {
			if !claimed[i] {
				members = append(members, i)
			}
		}
		if len(members) < pushdownMinShared {
			continue
		}
		// Cost rule: if every member's full predicate-column set fits one
		// unfiltered cube, the regular planner answers them all in a single
		// merged pass with a batch-stable signature — strictly better than
		// a filtered pass. Pushdown pays off only when the shared predicate
		// frees a dimension slot: the full union exceeds maxCubeDims, so
		// without it the members fragment into several cubes or directs.
		fullUnion := make(map[string]bool)
		for _, i := range members {
			for _, p := range queries[i].Preds {
				fullUnion[p.Col.String()] = true
			}
		}
		if len(fullUnion) <= maxCubeDims {
			continue
		}
		// Greedily pack members into passes whose residual-column union
		// stays within the cube dimension limit (first-fit in batch order,
		// like the unfiltered planner's host folding).
		type bin struct {
			colSet   map[string]bool
			colRefs  []ColumnRef
			queries  []int
			literals map[string]map[string]bool
		}
		var bins []*bin
		for _, i := range members {
			refs := strippedCols(queries[i], c.filter)
			var host *bin
			for _, b := range bins {
				n := len(b.colSet)
				for _, ref := range refs {
					if !b.colSet[ref.String()] {
						n++
					}
				}
				if n <= maxCubeDims {
					host = b
					break
				}
			}
			if host == nil {
				host = &bin{colSet: make(map[string]bool), literals: make(map[string]map[string]bool)}
				bins = append(bins, host)
			}
			host.queries = append(host.queries, i)
			for _, ref := range refs {
				if k := ref.String(); !host.colSet[k] {
					host.colSet[k] = true
					host.colRefs = append(host.colRefs, ref)
				}
			}
			// Residual literals only: the filter value is satisfied by the
			// pass itself and must not widen the dimensions.
			stripped := false
			for _, p := range queries[i].Preds {
				if !stripped && p == c.filter {
					stripped = true
					continue
				}
				k := p.Col.String()
				if host.literals[k] == nil {
					host.literals[k] = make(map[string]bool)
				}
				host.literals[k][p.Value] = true
			}
		}
		for _, b := range bins {
			if len(b.queries) < pushdownMinShared {
				continue // too small to beat the unfiltered planner; leave unclaimed
			}
			refs := append([]ColumnRef(nil), b.colRefs...)
			sort.Slice(refs, func(x, y int) bool { return refs[x].String() < refs[y].String() })
			dims := make([]DimSpec, 0, len(refs))
			for _, ref := range refs {
				dims = append(dims, DimSpec{
					Col:      ref,
					Literals: mergedLiterals(opt.Pool[ref.String()], b.literals[ref.String()]),
				})
			}
			reqs := make([]AggRequest, 0, len(b.queries))
			for _, i := range b.queries {
				reqs = append(reqs, AggRequest{Fn: queries[i].Agg, Col: queries[i].AggCol})
				claimed[i] = true
			}
			f := c.filter
			plan.Cubes = append(plan.Cubes, &CubePlan{
				Tables:   c.tables,
				Dims:     dims,
				Reqs:     reqs,
				QueryIdx: append([]int(nil), b.queries...),
				Filter:   &f,
			})
		}
	}
}

// PlanCubesOpt is PlanCubes with the full option set: when opt.Pushdown is
// set, a pre-pass first claims queries sharing an equality predicate into
// filtered cube passes (selection pushdown); the remainder is merged into
// unfiltered cubes exactly as PlanCubes does.
func PlanCubesOpt(queries []Query, defaultTable string, opt PlanOptions) *BatchPlan {
	plan := &BatchPlan{}
	if len(queries) == 0 {
		return plan
	}
	pool, mergeSmall := opt.Pool, opt.MergeSmall
	claimed := make([]bool, len(queries))
	if opt.Pushdown {
		planPushdown(plan, queries, defaultTable, opt, claimed)
	}

	type groupKey struct {
		tables string
		cols   string
	}
	type group struct {
		sig      string
		tables   []string
		colRefs  []ColumnRef
		colSet   map[string]bool
		queries  []int
		literals map[string]map[string]bool
	}
	groups := make(map[groupKey]*group)
	for i, q := range queries {
		if claimed[i] {
			continue
		}
		tables := q.Tables(defaultTable)
		var colKeys []string
		colSet := make(map[string]bool, len(q.Preds))
		var colRefs []ColumnRef
		for _, p := range q.Preds {
			k := p.Col.String()
			if !colSet[k] {
				colSet[k] = true
				colKeys = append(colKeys, k)
				colRefs = append(colRefs, p.Col)
			}
		}
		if len(colSet) > maxCubeDims {
			plan.Direct = append(plan.Direct, i)
			continue
		}
		sort.Strings(colKeys)
		key := groupKey{tables: strings.Join(sortedCopy(tables), ","), cols: strings.Join(colKeys, "|")}
		g, ok := groups[key]
		if !ok {
			g = &group{
				sig:      key.tables + "#" + key.cols,
				tables:   tables,
				colRefs:  colRefs,
				colSet:   colSet,
				literals: make(map[string]map[string]bool),
			}
			groups[key] = g
		}
		g.queries = append(g.queries, i)
		for _, p := range q.Preds {
			k := p.Col.String()
			if g.literals[k] == nil {
				g.literals[k] = make(map[string]bool)
			}
			g.literals[k][p.Value] = true
		}
	}

	// Deterministic group order: widest column sets first, ties by signature.
	glist := make([]*group, 0, len(groups))
	for _, g := range groups {
		glist = append(glist, g)
	}
	sort.Slice(glist, func(a, b int) bool {
		if len(glist[a].colSet) != len(glist[b].colSet) {
			return len(glist[a].colSet) > len(glist[b].colSet)
		}
		return glist[a].sig < glist[b].sig
	})

	// Fold each group into the first host it fits: same join scope and a
	// column-set union still within the cube dimension limit. Because wide
	// groups come first, subset groups land in their superset's cube and
	// narrow disjoint groups pack into shared wider cubes.
	var hosts []*group
	for _, g := range glist {
		var host *group
		for _, h := range hosts {
			if !sameTables(g.tables, h.tables) {
				continue
			}
			if unionSize(g.colSet, h.colSet) <= maxCubeDims {
				host = h
				break
			}
		}
		if host == nil {
			hosts = append(hosts, g)
			continue
		}
		host.queries = append(host.queries, g.queries...)
		for col, lits := range g.literals {
			if host.literals[col] == nil {
				host.literals[col] = make(map[string]bool)
			}
			for l := range lits {
				host.literals[col][l] = true
			}
		}
		for _, ref := range g.colRefs {
			if !host.colSet[ref.String()] {
				host.colSet[ref.String()] = true
				host.colRefs = append(host.colRefs, ref)
			}
		}
	}

	for _, h := range hosts {
		// Cost model (§6.1): a cube pass costs a scan with 2^dims
		// accumulator updates per row. Without a cache to amortize it, a
		// host holding only a couple of queries is cheaper to answer with
		// direct scans; with caching on, the cube is an investment reused
		// by later claims and EM iterations.
		if !mergeSmall && len(h.queries) <= 2 {
			plan.Direct = append(plan.Direct, h.queries...)
			continue
		}
		refs := append([]ColumnRef(nil), h.colRefs...)
		sort.Slice(refs, func(a, b int) bool { return refs[a].String() < refs[b].String() })
		dims := make([]DimSpec, 0, len(refs))
		for _, ref := range refs {
			dims = append(dims, DimSpec{
				Col:      ref,
				Literals: mergedLiterals(pool[ref.String()], h.literals[ref.String()]),
			})
		}
		sort.Ints(h.queries)
		reqs := make([]AggRequest, 0, len(h.queries))
		for _, i := range h.queries {
			reqs = append(reqs, AggRequest{Fn: queries[i].Agg, Col: queries[i].AggCol})
		}
		plan.Cubes = append(plan.Cubes, &CubePlan{
			Tables:   h.tables,
			Dims:     dims,
			Reqs:     reqs,
			QueryIdx: h.queries,
		})
	}
	sort.Ints(plan.Direct)
	return plan
}

// mergedLiterals unions pooled and batch literals, sorted so cube
// signatures and literal indexes are deterministic.
func mergedLiterals(pool []string, batch map[string]bool) []string {
	set := make(map[string]bool, len(pool)+len(batch))
	for _, l := range pool {
		set[l] = true
	}
	for l := range batch {
		set[l] = true
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

func unionSize(a, b map[string]bool) int {
	n := len(b)
	for k := range a {
		if !b[k] {
			n++
		}
	}
	return n
}

func sameTables(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	return strings.Join(sortedCopy(a), ",") == strings.Join(sortedCopy(b), ",")
}

// EvaluateBatch answers every query of the batch, positionally. Duplicate
// queries (by canonical key) are evaluated once; the remainder is planned
// into merged cube passes executed concurrently by a bounded worker pool.
// Queries a cube pass cannot answer (planner fallback, cube errors) are
// evaluated with direct scans. NaN marks undefined results.
//
// Cancellation is checked before every cube pass and direct scan, and
// periodically inside scans: once ctx is done the remaining work is skipped
// and the corresponding slots are NaN. Callers that need to distinguish
// cancellation from undefined results must check ctx.Err() afterwards.
func (e *Engine) EvaluateBatch(ctx context.Context, queries []Query, opts BatchOptions) []float64 {
	out := make([]float64, len(queries))
	if len(queries) == 0 {
		return out
	}
	e.Stats.BatchQueries.Add(int64(len(queries)))

	// Cross-claim deduplication by canonical query key.
	uniq := make([]Query, 0, len(queries))
	uniqIdx := make(map[string]int, len(queries))
	slot := make([]int, len(queries))
	for i, q := range queries {
		k := q.Key()
		j, ok := uniqIdx[k]
		if !ok {
			j = len(uniq)
			uniqIdx[k] = j
			uniq = append(uniq, q)
		}
		slot[i] = j
	}

	plan := PlanCubesOpt(uniq, e.DefaultTable(), PlanOptions{
		Pool:       opts.Pool,
		MergeSmall: e.CachingEnabled(),
		Pushdown:   e.PushdownEnabled(),
	})
	e.Stats.PlannedCubes.Add(int64(len(plan.Cubes)))
	// Pre-fill with NaN so slots skipped after cancellation read as
	// undefined rather than zero; every answered slot is overwritten.
	res := make([]float64, len(uniq))
	for i := range res {
		res[i] = math.NaN()
	}

	direct := func(i int) {
		v, err := e.EvaluateContext(ctx, uniq[i])
		if err != nil {
			v = math.NaN()
		}
		res[i] = v
	}
	runCubePlan := func(p *CubePlan) {
		var cube *CubeResult
		var err error
		if p.Filter != nil {
			cube, err = e.FilteredCubeForContext(ctx, p.Tables, p.Dims, p.Reqs, p.Filter)
		} else {
			cube, err = e.CubeForContext(ctx, p.Tables, p.Dims, p.Reqs)
		}
		if err != nil {
			if ctx.Err() != nil {
				for _, i := range p.QueryIdx {
					res[i] = math.NaN()
				}
				return
			}
			for _, i := range p.QueryIdx {
				direct(i)
			}
			return
		}
		for _, i := range p.QueryIdx {
			if v, ok := cube.Value(uniq[i]); ok {
				e.Stats.CubeAnswers.Add(1)
				res[i] = v
			} else {
				direct(i)
			}
		}
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	tasks := len(plan.Cubes) + len(plan.Direct)
	if workers > tasks {
		workers = tasks
	}
	if workers <= 1 {
		for _, p := range plan.Cubes {
			if ctx.Err() != nil {
				break
			}
			runCubePlan(p)
		}
		for _, i := range plan.Direct {
			if ctx.Err() != nil {
				break
			}
			direct(i)
		}
	} else {
		// Each task writes disjoint slots of res, so no lock is needed.
		type task struct {
			cube   *CubePlan
			direct int
		}
		ch := make(chan task)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for t := range ch {
					if t.cube != nil {
						runCubePlan(t.cube)
					} else {
						direct(t.direct)
					}
				}
			}()
		}
		// Stop feeding once the request is cancelled; workers drain what
		// was already queued (each task re-checks ctx and is a no-op).
		for _, p := range plan.Cubes {
			if ctx.Err() != nil {
				break
			}
			ch <- task{cube: p}
		}
		for _, i := range plan.Direct {
			if ctx.Err() != nil {
				break
			}
			ch <- task{direct: i}
		}
		close(ch)
		wg.Wait()
	}

	for i := range out {
		out[i] = res[slot[i]]
	}
	return out
}
