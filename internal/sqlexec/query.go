// Package sqlexec implements evaluation of Simple Aggregate Queries
// (Definition 2 of the paper) over the in-memory engine of package db. It
// provides direct single-query evaluation (the naive baseline of Table 6), a
// CUBE operator with InOrDefault literal coding that merges many query
// candidates into one scan (§6.2), and a result cache shared across claims
// and expectation-maximization iterations (§6.3).
package sqlexec

import (
	"fmt"
	"sort"
	"strings"
)

// AggFunc enumerates the aggregation functions the paper supports (§2).
type AggFunc int

const (
	Count AggFunc = iota
	CountDistinct
	Sum
	Avg
	Min
	Max
	Percentage
	ConditionalProbability
	numAggFuncs
)

// AggFuncs lists every supported aggregation function.
func AggFuncs() []AggFunc {
	out := make([]AggFunc, numAggFuncs)
	for i := range out {
		out[i] = AggFunc(i)
	}
	return out
}

func (f AggFunc) String() string {
	switch f {
	case Count:
		return "Count"
	case CountDistinct:
		return "CountDistinct"
	case Sum:
		return "Sum"
	case Avg:
		return "Average"
	case Min:
		return "Min"
	case Max:
		return "Max"
	case Percentage:
		return "Percentage"
	case ConditionalProbability:
		return "ConditionalProbability"
	}
	return fmt.Sprintf("AggFunc(%d)", int(f))
}

// NeedsNumericColumn reports whether the function aggregates numeric values.
func (f AggFunc) NeedsNumericColumn() bool {
	switch f {
	case Sum, Avg, Min, Max:
		return true
	}
	return false
}

// StarOnly reports whether the function is only formed over the all-column *
// in our candidate model (counts and ratios of rows).
func (f AggFunc) StarOnly() bool {
	switch f {
	case Count, Percentage, ConditionalProbability:
		return true
	}
	return false
}

// ColumnRef names a column within a table.
type ColumnRef struct {
	Table  string
	Column string
}

// IsStar reports whether the reference is the all-column "*".
func (c ColumnRef) IsStar() bool { return c.Column == "" || c.Column == "*" }

func (c ColumnRef) String() string {
	if c.IsStar() {
		return "*"
	}
	return c.Table + "." + c.Column
}

// Predicate is a unary equality predicate column = value. Value is the
// literal in canonical string form (for numeric columns, the formatting of
// db.Column.StringAt).
type Predicate struct {
	Col   ColumnRef
	Value string
}

func (p Predicate) String() string {
	return fmt.Sprintf("%s = '%s'", p.Col, p.Value)
}

// Query is a Simple Aggregate Query: one aggregation function applied to an
// aggregation column, over an equi-join of the referenced tables, restricted
// by a conjunction of unary equality predicates. For
// ConditionalProbability, Preds[0] is the conditioning predicate (paper
// footnote 1); for all other functions predicate order is irrelevant.
type Query struct {
	Agg    AggFunc
	AggCol ColumnRef // zero value / "*" for the all-column
	Preds  []Predicate
}

// sortedPreds returns predicates in canonical order.
func (q Query) sortedPreds() []Predicate {
	out := make([]Predicate, len(q.Preds))
	copy(out, q.Preds)
	if q.Agg == ConditionalProbability && len(out) > 1 {
		// Keep the condition first, canonicalize the event part.
		rest := out[1:]
		sort.Slice(rest, func(i, j int) bool { return predLess(rest[i], rest[j]) })
		return out
	}
	sort.Slice(out, func(i, j int) bool { return predLess(out[i], out[j]) })
	return out
}

func predLess(a, b Predicate) bool {
	if a.Col.Table != b.Col.Table {
		return a.Col.Table < b.Col.Table
	}
	if a.Col.Column != b.Col.Column {
		return a.Col.Column < b.Col.Column
	}
	return a.Value < b.Value
}

// Key returns a canonical identity string: two queries with equal keys are
// the same query. Used as a map key throughout the probabilistic model.
func (q Query) Key() string {
	var sb strings.Builder
	sb.WriteString(q.Agg.String())
	sb.WriteByte('(')
	sb.WriteString(q.AggCol.String())
	sb.WriteByte(')')
	for _, p := range q.sortedPreds() {
		sb.WriteByte('|')
		sb.WriteString(p.Col.String())
		sb.WriteByte('=')
		sb.WriteString(p.Value)
	}
	return sb.String()
}

// Equal reports query identity under canonicalization.
func (q Query) Equal(other Query) bool { return q.Key() == other.Key() }

// Tables returns the set of tables referenced by the query (aggregation
// column first if present, then predicate tables), deduplicated in
// first-reference order. The caller supplies a default table used when the
// aggregation column is "*" and there are no predicates.
func (q Query) Tables(defaultTable string) []string {
	var out []string
	seen := map[string]bool{}
	add := func(t string) {
		if t != "" && !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	if !q.AggCol.IsStar() {
		add(q.AggCol.Table)
	}
	for _, p := range q.Preds {
		add(p.Col.Table)
	}
	if len(out) == 0 {
		add(defaultTable)
	}
	return out
}

// SQL renders the query as SQL text (for display and logs).
func (q Query) SQL(defaultTable string) string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	sb.WriteString(q.Agg.String())
	sb.WriteByte('(')
	if q.AggCol.IsStar() {
		sb.WriteByte('*')
	} else {
		sb.WriteString(q.AggCol.Column)
	}
	sb.WriteString(") FROM ")
	sb.WriteString(strings.Join(q.Tables(defaultTable), " E-JOIN "))
	if len(q.Preds) > 0 {
		sb.WriteString(" WHERE ")
		for i, p := range q.sortedPreds() {
			if i > 0 {
				sb.WriteString(" AND ")
			}
			sb.WriteString(p.Col.Column)
			sb.WriteString(" = '")
			sb.WriteString(p.Value)
			sb.WriteString("'")
		}
	}
	return sb.String()
}

// Describe renders a natural-language description of the query, mirroring
// the hover text of the AggChecker UI (Figure 3b).
func (q Query) Describe() string {
	var sb strings.Builder
	switch q.Agg {
	case Count:
		sb.WriteString("the number of rows")
	case CountDistinct:
		fmt.Fprintf(&sb, "the number of distinct values of %s", q.AggCol.Column)
	case Sum:
		fmt.Fprintf(&sb, "the sum of %s", q.AggCol.Column)
	case Avg:
		fmt.Fprintf(&sb, "the average %s", q.AggCol.Column)
	case Min:
		fmt.Fprintf(&sb, "the minimum %s", q.AggCol.Column)
	case Max:
		fmt.Fprintf(&sb, "the maximum %s", q.AggCol.Column)
	case Percentage:
		sb.WriteString("the percentage of rows")
	case ConditionalProbability:
		sb.WriteString("the conditional probability")
	}
	if len(q.Preds) > 0 {
		if q.Agg == ConditionalProbability && len(q.Preds) > 1 {
			fmt.Fprintf(&sb, " of %s", predPhrase(q.Preds[1:]))
			fmt.Fprintf(&sb, " given %s = %s", q.Preds[0].Col.Column, q.Preds[0].Value)
		} else {
			fmt.Fprintf(&sb, " where %s", predPhrase(q.Preds))
		}
	}
	return sb.String()
}

func predPhrase(preds []Predicate) string {
	parts := make([]string, len(preds))
	for i, p := range preds {
		parts[i] = fmt.Sprintf("%s is %s", p.Col.Column, p.Value)
	}
	return strings.Join(parts, " and ")
}
