package sqlexec

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"testing"

	"aggchecker/internal/db"
)

// Differential tests: the vectorized kernel must produce CubeResults
// bit-for-bit identical to the scalar reference interpreter over randomized
// schemas, dimension sets, and literal pools — including NaN/NULL handling,
// empty cells, CountDistinct on string and numeric columns, and joined
// views. Single-threaded passes accumulate in the exact row order of the
// scalar kernel, so even float sums must match to the last bit; parallel
// partial merging is exercised separately with integer-valued data, where
// every association order is exact.

// diffSchema is one randomized database plus the dimension/column pool the
// trials draw from.
type diffSchema struct {
	d       *db.Database
	tables  []string
	dimCols []ColumnRef // candidate dimension columns
	aggCols []ColumnRef // candidate aggregation columns
	// litPool lists, per dimension column key, plausible literals (present
	// values, absent values, and garbage for numeric columns).
	litPool map[string][]string
}

// randomDiffSchema builds a one- or two-table database with string and
// numeric columns, NULLs sprinkled in, and (when joined) dangling foreign
// keys so inner-join row drops are exercised.
func randomDiffSchema(rng *rand.Rand, rows int, joined, integral bool) *diffSchema {
	sVals := [][]string{
		{"p", "q", "r", "s"},
		{"u", "v", "w"},
	}
	s1 := db.NewStringColumn("s1")
	s2 := db.NewStringColumn("s2")
	n1 := db.NewFloatColumn("n1")
	n2 := db.NewFloatColumn("n2")
	fk := db.NewStringColumn("k")
	dimKeys := []string{"k0", "k1", "k2", "k3", "k4"}
	num := func() float64 {
		if integral {
			return float64(rng.Intn(40))
		}
		return rng.NormFloat64() * 100
	}
	for i := 0; i < rows; i++ {
		if rng.Intn(10) == 0 {
			s1.AppendString("") // NULL
		} else {
			s1.AppendString(sVals[0][rng.Intn(len(sVals[0]))])
		}
		s2.AppendString(sVals[1][rng.Intn(len(sVals[1]))])
		if rng.Intn(8) == 0 {
			n1.AppendFloat(math.NaN()) // NULL
		} else {
			n1.AppendFloat(num())
		}
		n2.AppendFloat(float64(rng.Intn(6))) // small numeric domain for dims
		switch rng.Intn(12) {
		case 0:
			fk.AppendString("") // NULL join key: row drops from joins
		case 1:
			fk.AppendString("dangling") // no match: row drops from joins
		default:
			fk.AppendString(dimKeys[rng.Intn(len(dimKeys))])
		}
	}
	fact := db.MustNewTable("f", s1, s2, n1, n2, fk)
	d := db.NewDatabase("diff")
	d.MustAddTable(fact)

	sc := &diffSchema{
		d:      d,
		tables: []string{"f"},
		dimCols: []ColumnRef{
			{Table: "f", Column: "s1"},
			{Table: "f", Column: "s2"},
			{Table: "f", Column: "n2"},
		},
		aggCols: []ColumnRef{
			{Table: "f", Column: "n1"},
			{Table: "f", Column: "n2"},
			{Table: "f", Column: "s1"},
		},
		litPool: map[string][]string{
			"f.s1": {"p", "q", "r", "s", "absent"},
			"f.s2": {"u", "v", "w", "zz"},
			"f.n2": {"0", "1", "2", "3", "4", "5", "9", "notanumber"},
		},
	}
	if joined {
		dk := db.NewStringColumn("k")
		ds := db.NewStringColumn("ds")
		dn := db.NewFloatColumn("dn")
		for i, key := range dimKeys {
			dk.AppendString(key)
			ds.AppendString([]string{"red", "green", "blue"}[i%3])
			dn.AppendFloat(float64(10 * i))
		}
		dim := db.MustNewTable("dim", dk, ds, dn)
		dim.PrimaryKey = "k"
		d.MustAddTable(dim)
		d.MustAddForeignKey(db.ForeignKey{FromTable: "f", FromColumn: "k", ToTable: "dim", ToColumn: "k"})
		sc.tables = []string{"f", "dim"}
		sc.dimCols = append(sc.dimCols, ColumnRef{Table: "dim", Column: "ds"})
		sc.aggCols = append(sc.aggCols, ColumnRef{Table: "dim", Column: "dn"}, ColumnRef{Table: "dim", Column: "ds"})
		sc.litPool["dim.ds"] = []string{"red", "green", "blue", "mauve"}
	}
	return sc
}

// randomCubeSpec draws a dimension set (0..3 distinct columns with random
// literal subsets, some absent from the data) and tracked columns (random
// distinct-count flags) from the schema.
func randomCubeSpec(rng *rand.Rand, sc *diffSchema) ([]DimSpec, []trackedCol) {
	perm := rng.Perm(len(sc.dimCols))
	ndims := rng.Intn(maxCubeDims + 1)
	if ndims > len(perm) {
		ndims = len(perm)
	}
	var dims []DimSpec
	for _, pi := range perm[:ndims] {
		ref := sc.dimCols[pi]
		pool := sc.litPool[ref.String()]
		nlits := 1 + rng.Intn(len(pool))
		litPerm := rng.Perm(len(pool))
		lits := make([]string, 0, nlits)
		for _, li := range litPerm[:nlits] {
			lits = append(lits, pool[li])
		}
		dims = append(dims, DimSpec{Col: ref, Literals: lits})
	}
	var cols []trackedCol
	for _, ref := range sc.aggCols {
		switch rng.Intn(3) {
		case 0:
			// not tracked
		case 1:
			cols = append(cols, trackedCol{ref: ref})
		case 2:
			cols = append(cols, trackedCol{ref: ref, needDistinct: true})
		}
	}
	return dims, cols
}

// requireCubesIdentical asserts two CubeResults are bit-for-bit equal:
// identical tracked columns, identical cell sets, and per-cell accumulators
// whose counts, float bit patterns, and distinct sets all match.
func requireCubesIdentical(t *testing.T, want, got *CubeResult, label string) {
	t.Helper()
	if len(want.cols) != len(got.cols) {
		t.Fatalf("%s: tracked cols %d vs %d", label, len(want.cols), len(got.cols))
	}
	for i := range want.cols {
		if want.cols[i].ref != got.cols[i].ref || want.cols[i].needDistinct != got.cols[i].needDistinct {
			t.Fatalf("%s: col %d differs: %+v vs %+v", label, i, want.cols[i], got.cols[i])
		}
	}
	if len(want.cells) != len(got.cells) {
		t.Fatalf("%s: cell count %d vs %d", label, len(want.cells), len(got.cells))
	}
	feq := func(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }
	for key, wcell := range want.cells {
		gcell, ok := got.cells[key]
		if !ok {
			t.Fatalf("%s: cell %v missing from vectorized result", label, key)
		}
		for ci := range wcell {
			wa, ga := wcell[ci], gcell[ci]
			if wa.rows != ga.rows || wa.nonNull != ga.nonNull {
				t.Fatalf("%s: cell %v col %d: rows/nonNull (%d,%d) vs (%d,%d)",
					label, key, ci, wa.rows, wa.nonNull, ga.rows, ga.nonNull)
			}
			if !feq(wa.sum, ga.sum) || !feq(wa.min, ga.min) || !feq(wa.max, ga.max) {
				t.Fatalf("%s: cell %v col %d: sum/min/max (%v,%v,%v) vs (%v,%v,%v)",
					label, key, ci, wa.sum, wa.min, wa.max, ga.sum, ga.min, ga.max)
			}
			if (wa.distinct == nil) != (ga.distinct == nil) {
				t.Fatalf("%s: cell %v col %d: distinct tracking mismatch", label, key, ci)
			}
			if wa.distinct != nil {
				if len(wa.distinct) != len(ga.distinct) {
					t.Fatalf("%s: cell %v col %d: distinct %d vs %d",
						label, key, ci, len(wa.distinct), len(ga.distinct))
				}
				for k := range wa.distinct {
					if _, ok := ga.distinct[k]; !ok {
						t.Fatalf("%s: cell %v col %d: distinct key %d missing", label, key, ci, k)
					}
				}
			}
		}
	}
	// Cross-check a sample of answers through the public query surface,
	// covering ratio functions (which combine two cells) and empty cells.
	for _, q := range sampleQueries(want) {
		wv, wok := want.Value(q)
		gv, gok := got.Value(q)
		if wok != gok || (wok && !feq(wv, gv) && !(math.IsNaN(wv) && math.IsNaN(gv))) {
			t.Fatalf("%s: query %s: scalar (%v,%v) vs vectorized (%v,%v)", label, q.Key(), wv, wok, gv, gok)
		}
	}
}

// sampleQueries enumerates queries the cube claims to cover: every agg
// function over every tracked column, at the rolled-up cell and at
// single-literal cells of each dimension (first literals, including ones
// absent from the data, so empty cells are asserted too).
func sampleQueries(r *CubeResult) []Query {
	var predSets [][]Predicate
	predSets = append(predSets, nil)
	for _, d := range r.Dims {
		for li, lit := range d.Literals {
			if li > 2 {
				break
			}
			predSets = append(predSets, []Predicate{{Col: d.Col, Value: lit}})
		}
	}
	if len(r.Dims) >= 2 {
		predSets = append(predSets, []Predicate{
			{Col: r.Dims[0].Col, Value: r.Dims[0].Literals[0]},
			{Col: r.Dims[1].Col, Value: r.Dims[1].Literals[0]},
		})
	}
	var qs []Query
	for _, ps := range predSets {
		qs = append(qs, Query{Agg: Count, Preds: ps}, Query{Agg: Percentage, Preds: ps})
		if len(ps) >= 1 {
			qs = append(qs, Query{Agg: ConditionalProbability, Preds: ps})
		}
		for ci := 1; ci < len(r.cols); ci++ {
			ref := r.cols[ci].ref
			qs = append(qs,
				Query{Agg: Count, AggCol: ref, Preds: ps},
				Query{Agg: Sum, AggCol: ref, Preds: ps},
				Query{Agg: Avg, AggCol: ref, Preds: ps},
				Query{Agg: Min, AggCol: ref, Preds: ps},
				Query{Agg: Max, AggCol: ref, Preds: ps},
			)
			if r.cols[ci].needDistinct {
				qs = append(qs, Query{Agg: CountDistinct, AggCol: ref, Preds: ps})
			}
		}
	}
	return qs
}

// TestKernelDifferentialRandomized is the single-threaded property test:
// scalar and vectorized kernels must agree bit-for-bit, float data and all.
func TestKernelDifferentialRandomized(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 15
	}
	ctx := context.Background()
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		joined := rng.Intn(2) == 0
		rows := 50 + rng.Intn(900)
		sc := randomDiffSchema(rng, rows, joined, false)
		view, err := db.BuildJoinView(sc.d, sc.tables)
		if err != nil {
			t.Fatal(err)
		}
		dims, cols := randomCubeSpec(rng, sc)
		label := fmt.Sprintf("trial %d (joined=%v rows=%d dims=%d cols=%d)",
			trial, joined, rows, len(dims), len(cols))
		want, err := computeCubeScalar(ctx, view, sc.tables, dims, cols)
		if err != nil {
			t.Fatalf("%s: scalar: %v", label, err)
		}
		got, err := computeCubeVectorized(ctx, view, sc.tables, dims, cols, passConfig{workers: 1, zones: true})
		if err != nil {
			t.Fatalf("%s: vectorized: %v", label, err)
		}
		requireCubesIdentical(t, want, got, label)
	}
}

// TestKernelDifferentialParallelPartials lowers the parallelism threshold
// so multi-partial scans and their merge path run on small inputs. Data is
// integer-valued, so sums are exact under any partial association order and
// bit-for-bit comparison remains valid.
func TestKernelDifferentialParallelPartials(t *testing.T) {
	defer func(old int) { kernelParallelMinRows = old }(kernelParallelMinRows)
	kernelParallelMinRows = 64

	ctx := context.Background()
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(5000 + trial)))
		joined := rng.Intn(2) == 0
		rows := 2*kernelBlockRows + rng.Intn(4*kernelBlockRows)
		sc := randomDiffSchema(rng, rows, joined, true)
		view, err := db.BuildJoinView(sc.d, sc.tables)
		if err != nil {
			t.Fatal(err)
		}
		dims, cols := randomCubeSpec(rng, sc)
		label := fmt.Sprintf("parallel trial %d (joined=%v rows=%d dims=%d)", trial, joined, rows, len(dims))
		want, err := computeCubeScalar(ctx, view, sc.tables, dims, cols)
		if err != nil {
			t.Fatalf("%s: scalar: %v", label, err)
		}
		got, err := computeCubeVectorized(ctx, view, sc.tables, dims, cols, passConfig{workers: 4, zones: true})
		if err != nil {
			t.Fatalf("%s: vectorized: %v", label, err)
		}
		requireCubesIdentical(t, want, got, label)
	}
}

// TestKernelEmptyView verifies both kernels agree on a zero-row scan (an
// inner join that drops every row): no cells at all.
func TestKernelEmptyView(t *testing.T) {
	s := db.NewStringColumn("s")
	n := db.NewFloatColumn("n")
	// Zero-row table.
	tbl := db.MustNewTable("e", s, n)
	d := db.NewDatabase("empty")
	d.MustAddTable(tbl)
	view, err := db.BuildJoinView(d, []string{"e"})
	if err != nil {
		t.Fatal(err)
	}
	dims := []DimSpec{{Col: ColumnRef{Table: "e", Column: "s"}, Literals: []string{"x"}}}
	cols := []trackedCol{{ref: ColumnRef{Table: "e", Column: "n"}, needDistinct: true}}
	want, err := computeCubeScalar(context.Background(), view, []string{"e"}, dims, cols)
	if err != nil {
		t.Fatal(err)
	}
	got, err := computeCubeVectorized(context.Background(), view, []string{"e"}, dims, cols, passConfig{workers: 4, zones: true})
	if err != nil {
		t.Fatal(err)
	}
	requireCubesIdentical(t, want, got, "empty view")
	if len(got.cells) != 0 {
		t.Errorf("empty view produced %d cells", len(got.cells))
	}
	// Count over an empty cube answers 0, Avg answers NaN.
	q := Query{Agg: Count, Preds: []Predicate{{Col: dims[0].Col, Value: "x"}}}
	if v, ok := got.Value(q); !ok || v != 0 {
		t.Errorf("Count on empty cube = (%v, %v), want (0, true)", v, ok)
	}
	qa := Query{Agg: Avg, AggCol: cols[0].ref, Preds: nil}
	if v, ok := got.Value(qa); !ok || !math.IsNaN(v) {
		t.Errorf("Avg on empty cube = (%v, %v), want (NaN, true)", v, ok)
	}
}

// TestKernelLatticeFallback drives the dispatcher with a literal pool too
// large for the dense lattice: the pass must fall back to the scalar kernel
// (counted in Stats.ScalarPasses) and still be correct.
func TestKernelLatticeFallback(t *testing.T) {
	wide := make([]string, 70)
	for i := range wide {
		wide[i] = "L" + strconv.Itoa(i)
	}
	e := NewEngine(stressDB(t, 500))
	cr := func(c string) ColumnRef { return ColumnRef{Table: "t", Column: c} }
	dims := []DimSpec{
		{Col: cr("a"), Literals: wide},
		{Col: cr("b"), Literals: wide},
		{Col: cr("x"), Literals: wide},
	}
	if flatLatticeSize(dims) != -1 {
		t.Fatalf("72^3 lattice should exceed maxFlatCells")
	}
	cube, err := e.CubeFor([]string{"t"}, dims, []AggRequest{{Fn: Count, Col: ColumnRef{}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Stats.ScalarPasses.Load(); got != 1 {
		t.Errorf("scalar passes = %d, want 1 (lattice fallback)", got)
	}
	q := Query{Agg: Count, Preds: []Predicate{{Col: cr("a"), Value: "L0"}}}
	v, ok := cube.Value(q)
	if !ok {
		t.Fatal("fallback cube cannot answer covered query")
	}
	dv, err := e.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if !eqNaN(v, dv) {
		t.Errorf("fallback cube = %v, direct = %v", v, dv)
	}
}

// TestEngineScalarKernelFlag pins the legacy interpreter behind the engine
// flag: forced scalar passes count in Stats.ScalarPasses and agree with the
// vectorized default.
func TestEngineScalarKernelFlag(t *testing.T) {
	d := stressDB(t, 3000)
	vecE := NewEngine(d)
	sclE := NewEngine(d)
	sclE.Tune(WithScalarKernel(true))
	if !sclE.ScalarKernel() || vecE.ScalarKernel() {
		t.Fatal("scalar-kernel flag not plumbed")
	}
	dims := stressDims()
	reqs := []AggRequest{
		{Fn: Count, Col: ColumnRef{}},
		{Fn: Sum, Col: ColumnRef{Table: "t", Column: "x"}},
		{Fn: CountDistinct, Col: ColumnRef{Table: "t", Column: "x"}},
	}
	vc, err := vecE.CubeFor([]string{"t"}, dims, reqs)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := sclE.CubeFor([]string{"t"}, dims, reqs)
	if err != nil {
		t.Fatal(err)
	}
	requireCubesIdentical(t, sc, vc, "engine flag")
	if sclE.Stats.ScalarPasses.Load() != 1 {
		t.Errorf("scalar engine passes = %d, want 1", sclE.Stats.ScalarPasses.Load())
	}
	if vecE.Stats.ScalarPasses.Load() != 0 {
		t.Errorf("vectorized engine recorded %d scalar passes", vecE.Stats.ScalarPasses.Load())
	}
	if vecE.Stats.BlocksScanned.Load() == 0 {
		t.Error("vectorized pass recorded no blocks")
	}
	if sclE.Stats.BlocksScanned.Load() != 0 {
		t.Error("scalar pass recorded kernel blocks")
	}
}

// TestKernelCancellation verifies the vectorized kernel aborts between
// blocks once the context is cancelled and publishes nothing.
func TestKernelCancellation(t *testing.T) {
	d := stressDB(t, 20000)
	view, err := db.BuildJoinView(d, []string{"t"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = computeCubeVectorized(ctx, view, []string{"t"}, stressDims(), nil, passConfig{workers: 4, zones: true})
	if err != context.Canceled {
		t.Errorf("cancelled vectorized pass returned %v, want context.Canceled", err)
	}
}

// TestKernelStatsCounters checks the block/gather accounting: a joined view
// gathers dimension and aggregation columns through row maps, a single-table
// view reads all blocks zero-copy.
func TestKernelStatsCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sc := randomDiffSchema(rng, 1000, true, true)
	e := NewEngine(sc.d)
	dims := []DimSpec{
		{Col: ColumnRef{Table: "f", Column: "s1"}, Literals: []string{"p", "q"}},
		{Col: ColumnRef{Table: "dim", Column: "ds"}, Literals: []string{"red", "green"}},
	}
	reqs := []AggRequest{{Fn: Sum, Col: ColumnRef{Table: "dim", Column: "dn"}}}
	if _, err := e.CubeFor(sc.tables, dims, reqs); err != nil {
		t.Fatal(err)
	}
	s := e.Stats.Snapshot()
	if s["blocks_scanned"] == 0 {
		t.Error("no blocks counted")
	}
	// Joined views have no identity row maps at all: every read gathers.
	if s["gather_block_reads"] != 3*s["blocks_scanned"] || s["direct_block_reads"] != 0 {
		t.Errorf("joined view reads: gather=%d direct=%d blocks=%d",
			s["gather_block_reads"], s["direct_block_reads"], s["blocks_scanned"])
	}

	e2 := NewEngine(sc.d)
	dims2 := []DimSpec{{Col: ColumnRef{Table: "f", Column: "s1"}, Literals: []string{"p"}}}
	reqs2 := []AggRequest{{Fn: Sum, Col: ColumnRef{Table: "f", Column: "n1"}}}
	if _, err := e2.CubeFor([]string{"f"}, dims2, reqs2); err != nil {
		t.Fatal(err)
	}
	s2 := e2.Stats.Snapshot()
	if s2["direct_block_reads"] != 2*s2["blocks_scanned"] || s2["gather_block_reads"] != 0 {
		t.Errorf("single-table reads: gather=%d direct=%d blocks=%d",
			s2["gather_block_reads"], s2["direct_block_reads"], s2["blocks_scanned"])
	}
}
