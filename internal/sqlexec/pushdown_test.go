package sqlexec

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"aggchecker/internal/db"
)

// Selection-pushdown tests: a cube pass filtered on a shared equality
// predicate must be bit-for-bit identical to the scalar filtered oracle,
// and a batch planned with pushdown must answer every query exactly as the
// same batch planned without it.

// randomFilter draws a filter predicate from the schema's dimension
// columns and literal pools — present values, absent values, and garbage
// numeric literals all included, so never-matching filters are exercised.
func randomFilter(rng *rand.Rand, sc *diffSchema) *Predicate {
	ref := sc.dimCols[rng.Intn(len(sc.dimCols))]
	pool := sc.litPool[ref.String()]
	return &Predicate{Col: ref, Value: pool[rng.Intn(len(pool))]}
}

// TestFilteredKernelDifferentialRandomized is the single-threaded property
// test for selection pushdown: the vectorized kernel compacting each
// segment through the filter's selection vector must match the scalar
// row-loop oracle bit-for-bit — float data, NULLs, joins, and all.
func TestFilteredKernelDifferentialRandomized(t *testing.T) {
	trials := 60
	if testing.Short() {
		trials = 15
	}
	ctx := context.Background()
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(9000 + trial)))
		joined := rng.Intn(2) == 0
		rows := 50 + rng.Intn(900)
		sc := randomDiffSchema(rng, rows, joined, false)
		view, err := db.BuildJoinView(sc.d, sc.tables)
		if err != nil {
			t.Fatal(err)
		}
		dims, cols := randomCubeSpec(rng, sc)
		filter := randomFilter(rng, sc)
		label := fmt.Sprintf("filtered trial %d (joined=%v rows=%d dims=%d filter=%s)",
			trial, joined, rows, len(dims), filter.String())
		want, err := computeCubeScalarFiltered(ctx, view, sc.tables, dims, cols, filter)
		if err != nil {
			t.Fatalf("%s: scalar: %v", label, err)
		}
		got, err := computeCubeVectorized(ctx, view, sc.tables, dims, cols,
			passConfig{workers: 1, zones: true, filter: filter})
		if err != nil {
			t.Fatalf("%s: vectorized: %v", label, err)
		}
		requireCubesIdentical(t, want, got, label)
		if want.BaseRows() != got.BaseRows() {
			t.Fatalf("%s: baseRows %d vs %d", label, want.BaseRows(), got.BaseRows())
		}
		if got.Filter() == nil || *got.Filter() != *filter {
			t.Fatalf("%s: filter not recorded on result", label)
		}
		// baseRows counts every scanned row, matching or not — it is the
		// Percentage denominator and must be independent of the filter.
		if got.BaseRows() != int64(view.NumRows()) {
			t.Fatalf("%s: baseRows %d, want every scanned row %d", label, got.BaseRows(), view.NumRows())
		}
	}
}

// TestFilteredKernelParallelPartials runs the filtered kernel across
// multiple partials (integer data, so merges are exact) and checks the
// merged result — including the summed baseRows — against the oracle.
func TestFilteredKernelParallelPartials(t *testing.T) {
	defer func(old int) { kernelParallelMinRows = old }(kernelParallelMinRows)
	kernelParallelMinRows = 64

	ctx := context.Background()
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(9500 + trial)))
		joined := rng.Intn(2) == 0
		rows := 2*kernelBlockRows + rng.Intn(4*kernelBlockRows)
		sc := randomDiffSchema(rng, rows, joined, true)
		view, err := db.BuildJoinView(sc.d, sc.tables)
		if err != nil {
			t.Fatal(err)
		}
		dims, cols := randomCubeSpec(rng, sc)
		filter := randomFilter(rng, sc)
		label := fmt.Sprintf("filtered parallel trial %d (joined=%v rows=%d filter=%s)",
			trial, joined, rows, filter.String())
		want, err := computeCubeScalarFiltered(ctx, view, sc.tables, dims, cols, filter)
		if err != nil {
			t.Fatalf("%s: scalar: %v", label, err)
		}
		got, err := computeCubeVectorized(ctx, view, sc.tables, dims, cols,
			passConfig{workers: 4, zones: true, filter: filter})
		if err != nil {
			t.Fatalf("%s: vectorized: %v", label, err)
		}
		requireCubesIdentical(t, want, got, label)
		if want.BaseRows() != got.BaseRows() {
			t.Fatalf("%s: baseRows %d vs %d", label, want.BaseRows(), got.BaseRows())
		}
	}
}

// TestStripFilter pins the query-mapping rules of a filtered cube: exactly
// one occurrence of the filter is absorbed, ConditionalProbability only in
// the conditioning position, Percentage only over star.
func TestStripFilter(t *testing.T) {
	ca := ColumnRef{Table: "t", Column: "a"}
	cb := ColumnRef{Table: "t", Column: "b"}
	f := Predicate{Col: ca, Value: "x"}
	other := Predicate{Col: cb, Value: "y"}
	r := &CubeResult{filter: &f}

	cases := []struct {
		name string
		q    Query
		want []Predicate
		ok   bool
	}{
		{"count strips one occurrence", Query{Agg: Count, Preds: []Predicate{other, f}}, []Predicate{other}, true},
		{"count without filter", Query{Agg: Count, Preds: []Predicate{other}}, nil, false},
		{"duplicate filter keeps one", Query{Agg: Count, Preds: []Predicate{f, f}}, []Predicate{f}, true},
		{"cp conditioning position", Query{Agg: ConditionalProbability, Preds: []Predicate{f, other}}, []Predicate{other}, true},
		{"cp wrong position", Query{Agg: ConditionalProbability, Preds: []Predicate{other, f}}, nil, false},
		{"percentage star", Query{Agg: Percentage, Preds: []Predicate{f}}, []Predicate{}, true},
		{"percentage non-star", Query{Agg: Percentage, AggCol: cb, Preds: []Predicate{f}}, nil, false},
	}
	for _, tc := range cases {
		got, ok := r.stripFilter(tc.q)
		if ok != tc.ok {
			t.Errorf("%s: ok=%v want %v", tc.name, ok, tc.ok)
			continue
		}
		if !ok {
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("%s: stripped %v want %v", tc.name, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("%s: stripped %v want %v", tc.name, got, tc.want)
			}
		}
	}

	// An unfiltered cube passes queries through untouched.
	u := &CubeResult{}
	if got, ok := u.stripFilter(Query{Agg: Count, Preds: []Predicate{other}}); !ok || len(got) != 1 {
		t.Errorf("unfiltered stripFilter = (%v, %v)", got, ok)
	}
}

// TestFilterEligible pins the planner-side mirror of stripFilter.
func TestFilterEligible(t *testing.T) {
	ca := ColumnRef{Table: "t", Column: "a"}
	cb := ColumnRef{Table: "t", Column: "b"}
	f := Predicate{Col: ca, Value: "x"}
	other := Predicate{Col: cb, Value: "y"}
	cases := []struct {
		name string
		q    Query
		want bool
	}{
		{"count with filter", Query{Agg: Count, Preds: []Predicate{other, f}}, true},
		{"count without filter", Query{Agg: Count, Preds: []Predicate{other}}, false},
		{"cp conditioning", Query{Agg: ConditionalProbability, Preds: []Predicate{f, other}}, true},
		{"cp wrong position", Query{Agg: ConditionalProbability, Preds: []Predicate{other, f}}, false},
		{"percentage star", Query{Agg: Percentage, Preds: []Predicate{f}}, true},
		{"percentage non-star", Query{Agg: Percentage, AggCol: cb, Preds: []Predicate{f}}, false},
	}
	for _, tc := range cases {
		if got := filterEligible(tc.q, f); got != tc.want {
			t.Errorf("%s: filterEligible = %v want %v", tc.name, got, tc.want)
		}
	}
}

// pdCol names a column of the planner-test scope.
func pdCol(c string) ColumnRef { return ColumnRef{Table: "t", Column: c} }

// TestPlanPushdownClaims drives the pre-pass: queries sharing a predicate
// whose full column union exceeds the cube dimension limit are claimed
// into a filtered pass; groups an unfiltered cube could host stay with the
// regular planner.
func TestPlanPushdownClaims(t *testing.T) {
	f := Predicate{Col: pdCol("f"), Value: "x"}
	wide := []Query{
		{Agg: Count, Preds: []Predicate{f, {Col: pdCol("c1"), Value: "1"}}},
		{Agg: Count, Preds: []Predicate{f, {Col: pdCol("c2"), Value: "2"}}},
		{Agg: Count, Preds: []Predicate{f, {Col: pdCol("c3"), Value: "3"}}},
	}
	opt := PlanOptions{MergeSmall: true, Pushdown: true}

	plan := PlanCubesOpt(wide, "t", opt)
	var filtered, plain int
	for _, p := range plan.Cubes {
		if p.Filter != nil {
			filtered++
			if *p.Filter != f {
				t.Errorf("claimed filter = %v, want %v", *p.Filter, f)
			}
			if len(p.QueryIdx) != 3 {
				t.Errorf("filtered pass claims %d queries, want 3", len(p.QueryIdx))
			}
			if len(p.Dims) != 3 {
				t.Errorf("filtered pass has %d dims, want 3 residual columns", len(p.Dims))
			}
			for _, d := range p.Dims {
				if d.Col == f.Col {
					t.Errorf("filter column %v leaked into dims", d.Col)
				}
			}
		} else {
			plain++
		}
	}
	if filtered != 1 {
		t.Fatalf("filtered passes = %d, want 1 (full union of 4 cols exceeds maxCubeDims)", filtered)
	}
	if plain != 0 {
		t.Errorf("plain passes = %d, want 0 (all queries claimed)", plain)
	}

	// Narrow union: the same queries constrained to 2 residual columns fit
	// one unfiltered cube — pushdown must stand aside.
	narrow := []Query{
		{Agg: Count, Preds: []Predicate{f, {Col: pdCol("c1"), Value: "1"}}},
		{Agg: Count, Preds: []Predicate{f, {Col: pdCol("c1"), Value: "2"}}},
		{Agg: Count, Preds: []Predicate{f, {Col: pdCol("c2"), Value: "3"}}},
	}
	plan = PlanCubesOpt(narrow, "t", opt)
	for _, p := range plan.Cubes {
		if p.Filter != nil {
			t.Errorf("narrow union planned a filtered pass: %+v", p)
		}
	}

	// Below the sharing threshold nothing is claimed either.
	plan = PlanCubesOpt(wide[:2], "t", opt)
	for _, p := range plan.Cubes {
		if p.Filter != nil {
			t.Errorf("2-query group planned a filtered pass: %+v", p)
		}
	}

	// Pushdown off: identical batch, no filtered passes.
	plan = PlanCubesOpt(wide, "t", PlanOptions{MergeSmall: true})
	for _, p := range plan.Cubes {
		if p.Filter != nil {
			t.Errorf("pushdown off planned a filtered pass: %+v", p)
		}
	}
}

// TestPlanPushdownDeterministic re-plans a shuffled-free batch repeatedly:
// claim order and pass contents must be identical every time.
func TestPlanPushdownDeterministic(t *testing.T) {
	f1 := Predicate{Col: pdCol("f"), Value: "x"}
	f2 := Predicate{Col: pdCol("g"), Value: "y"}
	var queries []Query
	for i := 0; i < 4; i++ {
		queries = append(queries,
			Query{Agg: Count, Preds: []Predicate{f1, {Col: pdCol(fmt.Sprintf("c%d", i)), Value: "1"}}},
			Query{Agg: Count, Preds: []Predicate{f2, {Col: pdCol(fmt.Sprintf("d%d", i)), Value: "2"}}},
		)
	}
	opt := PlanOptions{MergeSmall: true, Pushdown: true}
	base := PlanCubesOpt(queries, "t", opt)
	for rep := 0; rep < 5; rep++ {
		p := PlanCubesOpt(queries, "t", opt)
		if len(p.Cubes) != len(base.Cubes) {
			t.Fatalf("rep %d: %d cubes vs %d", rep, len(p.Cubes), len(base.Cubes))
		}
		for i := range p.Cubes {
			a, b := p.Cubes[i], base.Cubes[i]
			if fmt.Sprint(a.QueryIdx) != fmt.Sprint(b.QueryIdx) || (a.Filter == nil) != (b.Filter == nil) {
				t.Fatalf("rep %d cube %d: %+v vs %+v", rep, i, a, b)
			}
		}
	}
}

// pushdownBatch builds a batch over the randomized joined schema whose
// queries mostly share one filter predicate across a 4-column residual
// scope — wide enough that the pre-pass claims them.
func pushdownBatch(rng *rand.Rand, sc *diffSchema, filter Predicate, n int) []Query {
	fns := []AggFunc{Count, Sum, Avg, Min, Max, CountDistinct, Percentage, ConditionalProbability}
	var queries []Query
	for i := 0; i < n; i++ {
		fn := fns[rng.Intn(len(fns))]
		var preds []Predicate
		if fn == ConditionalProbability {
			preds = append(preds, filter) // conditioning position
		}
		// Residual predicates over the other dim columns.
		for _, ref := range sc.dimCols {
			if ref == filter.Col || rng.Intn(2) == 0 {
				continue
			}
			pool := sc.litPool[ref.String()]
			preds = append(preds, Predicate{Col: ref, Value: pool[rng.Intn(len(pool))]})
		}
		if fn != ConditionalProbability && rng.Intn(8) != 0 {
			preds = append(preds, filter) // most queries share the filter
		}
		q := Query{Agg: fn, Preds: preds}
		if fn.NeedsNumericColumn() || fn == CountDistinct {
			q.AggCol = sc.aggCols[rng.Intn(len(sc.aggCols))]
		}
		if fn == Percentage && rng.Intn(4) == 0 {
			q.AggCol = sc.aggCols[0] // non-star Percentage: pushdown-ineligible
		}
		queries = append(queries, q)
	}
	return queries
}

// pdEq is eqNaN extended to infinities (Min/Max over zero non-null rows
// answer ±Inf, where the subtraction-based tolerance breaks down).
func pdEq(a, b float64) bool {
	return a == b || eqNaN(a, b)
}

// TestPushdownEndToEndIdentical evaluates the same batch with pushdown on
// and off, plus a per-query direct-scan oracle: all three must agree.
// The pushdown engine must actually have planned filtered passes, and the
// baseline none.
func TestPushdownEndToEndIdentical(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(77))
	sc := randomDiffSchema(rng, 4000, true, false)
	filter := Predicate{Col: ColumnRef{Table: "f", Column: "s1"}, Value: "p"}
	queries := pushdownBatch(rng, sc, filter, 80)

	serial := NewEngine(sc.d)
	want := make([]float64, len(queries))
	for i, q := range queries {
		v, err := serial.Evaluate(q)
		if err != nil {
			v = math.NaN()
		}
		want[i] = v
	}

	eOn := NewEngine(sc.d)
	eOff := NewEngine(sc.d)
	eOff.Tune(WithSelectionPushdown(false))
	if !eOn.PushdownEnabled() || eOff.PushdownEnabled() {
		t.Fatal("pushdown flag not plumbed")
	}
	gotOn := eOn.EvaluateBatch(ctx, queries, BatchOptions{})
	gotOff := eOff.EvaluateBatch(ctx, queries, BatchOptions{})
	for i := range queries {
		if !pdEq(gotOn[i], want[i]) {
			t.Errorf("pushdown on: query %s = %v, direct oracle %v", queries[i].Key(), gotOn[i], want[i])
		}
		if !pdEq(gotOff[i], want[i]) {
			t.Errorf("pushdown off: query %s = %v, direct oracle %v", queries[i].Key(), gotOff[i], want[i])
		}
	}
	if eOn.Stats.PushdownCubes.Load() == 0 {
		t.Error("pushdown engine planned no filtered passes")
	}
	if eOff.Stats.PushdownCubes.Load() != 0 {
		t.Errorf("baseline engine planned %d filtered passes", eOff.Stats.PushdownCubes.Load())
	}
	if eOn.Stats.PushdownRowsSkipped.Load() == 0 {
		t.Error("filtered passes skipped no rows (filter should be selective)")
	}
}

// TestFilteredCubeCacheDistinct pins cache identity: a filtered cube and
// the unfiltered cube over identical scope/dims occupy different cache
// slots, and the filtered slot is reused on repeat and delta-extended like
// any other cube.
func TestFilteredCubeCacheDistinct(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(101))
	sc := randomDiffSchema(rng, 2000, false, false)
	e := NewEngine(sc.d)
	dims := []DimSpec{
		{Col: ColumnRef{Table: "f", Column: "s2"}, Literals: []string{"u", "v", "w"}},
	}
	reqs := []AggRequest{{Fn: Count, Col: ColumnRef{}}}
	filter := &Predicate{Col: ColumnRef{Table: "f", Column: "s1"}, Value: "q"}

	plain, err := e.CubeForContext(ctx, sc.tables, dims, reqs)
	if err != nil {
		t.Fatal(err)
	}
	filt, err := e.FilteredCubeForContext(ctx, sc.tables, dims, reqs, filter)
	if err != nil {
		t.Fatal(err)
	}
	if passes := e.Stats.CubePasses.Load(); passes != 2 {
		t.Fatalf("cube passes = %d, want 2 (filtered and unfiltered must not share a slot)", passes)
	}
	if plain.Filter() != nil || filt.Filter() == nil {
		t.Fatal("filter field not carried through the cache")
	}

	// Repeat request: served from cache, no third pass.
	if _, err := e.FilteredCubeForContext(ctx, sc.tables, dims, reqs, filter); err != nil {
		t.Fatal(err)
	}
	if passes := e.Stats.CubePasses.Load(); passes != 2 {
		t.Fatalf("cube passes after repeat = %d, want 2", passes)
	}

	// The two cubes answer the same filtered query identically — one from
	// its cells, one by combining the filter dimension — but only when the
	// unfiltered cube also has the filter column as a dimension would it
	// answer at all; here it must decline while the filtered cube answers.
	q := Query{Agg: Count, Preds: []Predicate{*filter, {Col: dims[0].Col, Value: "u"}}}
	if _, ok := plain.Value(q); ok {
		t.Error("unfiltered cube without the filter dim claimed to answer a filtered query")
	}
	fv, ok := filt.Value(q)
	if !ok {
		t.Fatal("filtered cube cannot answer its own query shape")
	}
	dv, err := e.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if !eqNaN(fv, dv) {
		t.Errorf("filtered cube = %v, direct = %v", fv, dv)
	}

	// Delta extension: a new aggregation column on the filtered signature
	// reuses the cached cells instead of a full repass.
	more := []AggRequest{{Fn: Count, Col: ColumnRef{}}, {Fn: Sum, Col: ColumnRef{Table: "f", Column: "n1"}}}
	ext, err := e.FilteredCubeForContext(ctx, sc.tables, dims, reqs, filter)
	if err != nil {
		t.Fatal(err)
	}
	ext2, err := e.FilteredCubeForContext(ctx, sc.tables, dims, more, filter)
	if err != nil {
		t.Fatal(err)
	}
	if ext2.Filter() == nil || ext2.BaseRows() != ext.BaseRows() {
		t.Error("delta-extended filtered cube lost filter or baseRows")
	}
	qs := Query{Agg: Sum, AggCol: ColumnRef{Table: "f", Column: "n1"}, Preds: []Predicate{*filter}}
	sv, ok := ext2.Value(qs)
	if !ok {
		t.Fatal("extended filtered cube cannot answer Sum")
	}
	dsv, err := e.Evaluate(qs)
	if err != nil {
		t.Fatal(err)
	}
	if !eqNaN(sv, dsv) {
		t.Errorf("extended filtered cube Sum = %v, direct = %v", sv, dsv)
	}
}

// TestFilteredCubeRatioAggregates pins the denominator semantics under a
// filter: Percentage-of-star uses every scanned row (baseRows), and
// ConditionalProbability conditions on exactly the filter's matches.
func TestFilteredCubeRatioAggregates(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(202))
	sc := randomDiffSchema(rng, 3000, false, false)
	e := NewEngine(sc.d)
	filter := &Predicate{Col: ColumnRef{Table: "f", Column: "s1"}, Value: "p"}
	dims := []DimSpec{
		{Col: ColumnRef{Table: "f", Column: "s2"}, Literals: []string{"u", "v", "w"}},
	}
	reqs := []AggRequest{{Fn: Count, Col: ColumnRef{}}}
	cube, err := e.FilteredCubeForContext(ctx, sc.tables, dims, reqs, filter)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []Query{
		{Agg: Percentage, Preds: []Predicate{*filter}},
		{Agg: Percentage, Preds: []Predicate{*filter, {Col: dims[0].Col, Value: "v"}}},
		{Agg: ConditionalProbability, Preds: []Predicate{*filter, {Col: dims[0].Col, Value: "w"}}},
	} {
		cv, ok := cube.Value(q)
		if !ok {
			t.Fatalf("filtered cube cannot answer %s", q.Key())
		}
		dv, err := e.Evaluate(q)
		if err != nil {
			t.Fatal(err)
		}
		if !eqNaN(cv, dv) {
			t.Errorf("%s: filtered cube = %v, direct = %v", q.Key(), cv, dv)
		}
	}
	// Percentage over a non-star column must be declined, not misanswered.
	bad := Query{Agg: Percentage, AggCol: ColumnRef{Table: "f", Column: "n1"}, Preds: []Predicate{*filter}}
	if _, ok := cube.Value(bad); ok {
		t.Error("filtered cube answered non-star Percentage (denominator needs unfiltered rows)")
	}
}
