package sqlexec

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"aggchecker/internal/db"
)

// ctxCheckRows is how many rows a scan processes between context checks: a
// balance between cancellation latency and per-row overhead (one atomic load
// per batch of rows).
const ctxCheckRows = 8192

// Stats counts the work performed by an Engine; Table 6 of the paper is
// regenerated from these counters plus wall-clock time. All counters are
// atomic: many claim workers update them concurrently.
type Stats struct {
	RowsScanned   atomic.Int64
	CubePasses    atomic.Int64
	CacheHits     atomic.Int64
	CacheMisses   atomic.Int64
	DirectQueries atomic.Int64
	CubeAnswers   atomic.Int64

	// BatchQueries counts queries received through EvaluateBatch and
	// PlannedCubes the merged cube passes the planner produced for them.
	BatchQueries atomic.Int64
	PlannedCubes atomic.Int64

	// CubeDedups counts cube requests that arrived while an identical cube
	// was being computed by another goroutine and were coalesced onto that
	// computation (singleflight). ViewDedups is the same for join views.
	CubeDedups atomic.Int64
	ViewDedups atomic.Int64

	// LockWaits counts lock acquisitions (shard or per-cube) that could not
	// proceed immediately — a direct measure of cache contention.
	LockWaits atomic.Int64

	// Vectorized-kernel counters. BlocksScanned counts kernel blocks
	// processed by cube passes; DirectBlockReads and GatherBlockReads split
	// per-column block reads into zero-copy column-slice reads versus
	// gathers through join-view row maps; PartialsMerged counts row-range
	// partials merged into cube results beyond the first (0 for
	// single-threaded passes); ScalarPasses counts cube passes served by
	// the legacy scalar kernel (forced via SetScalarKernel, or literal sets
	// too large for the dense lattice).
	BlocksScanned    atomic.Int64
	DirectBlockReads atomic.Int64
	GatherBlockReads atomic.Int64
	PartialsMerged   atomic.Int64
	ScalarPasses     atomic.Int64

	// Scan-pipeline counters. BlocksPruned counts scan segments skipped by
	// zone maps: segments whose per-block summaries (min/max ranges,
	// dictionary-code domain bitsets) refute every tracked dimension
	// literal (cube and delta passes, which then take a batched rolled-up
	// update) or the predicate conjunction (direct scans).
	// DirectVectorScans counts direct queries executed through the shared
	// vectorized scan pipeline; SelvecReuses counts scan segments that
	// filtered through a reused selection-vector buffer instead of
	// allocating a fresh one (every segment after a scan's first).
	BlocksPruned      atomic.Int64
	DirectVectorScans atomic.Int64
	SelvecReuses      atomic.Int64

	// Selection-pushdown counters. PushdownCubes counts cube passes run
	// under a shared filter predicate pushed down by the planner;
	// PushdownRowsSkipped the rows those passes never coded or accumulated
	// because the filter's selection vector rejected them (including whole
	// segments the filter's zone maps refuted).
	PushdownCubes       atomic.Int64
	PushdownRowsSkipped atomic.Int64

	// Morsel-scheduler counters. MorselsDispatched counts morsels executed
	// for this engine's jobs on the shared scheduler (owner and helpers
	// alike); StealCount the subset executed by shared-pool helper workers
	// rather than the submitting goroutine; QueueWaits the job submissions
	// that found no idle helper and queued behind other requests (always 0
	// on a pool of width 1, which has no helpers).
	MorselsDispatched atomic.Int64
	QueueWaits        atomic.Int64
	StealCount        atomic.Int64

	// Shard-coordinator counters, updated by the shard coordinator through
	// the front engine's Stats (the engine itself never touches them).
	// ShardFanouts counts batches fanned out to shard workers; ShardPartials
	// the per-shard partials merged back; ShardMergeNanos the wall time
	// spent merging partials (the scatter-gather overhead the bench bounds);
	// ShardStragglers the workers whose response lagged far behind the
	// fan-out's median.
	ShardFanouts    atomic.Int64
	ShardPartials   atomic.Int64
	ShardMergeNanos atomic.Int64
	ShardStragglers atomic.Int64

	// Cost-aware cube-cache economics. CubeCacheNsSaved accumulates, over
	// every cache hit, the build cost (wall nanoseconds) the hit avoided
	// re-spending; CubeCacheBytesSaved the same for the entry's resident
	// bytes (a rebuild would have re-allocated them). CubeCacheEvictions /
	// CubeCacheEvictedBytes count entries dropped by the byte-budget sweep
	// (score-ordered: cheap-to-rebuild, rarely-hit, large entries first);
	// CubeCacheAdmitRejects counts fresh results returned to their caller
	// but never cached because they alone exceed the configured budget.
	CubeCacheNsSaved      atomic.Int64
	CubeCacheBytesSaved   atomic.Int64
	CubeCacheEvictions    atomic.Int64
	CubeCacheEvictedBytes atomic.Int64
	CubeCacheAdmitRejects atomic.Int64

	// Cross-document window counters, updated by Window (the engine itself
	// never touches them). WindowBatches counts member batch submissions
	// pooled into planning windows; WindowFlushes the merged executions
	// those windows flushed into; SharedPasses the planned cube passes that
	// served queries from more than one document of a flush.
	WindowBatches atomic.Int64
	WindowFlushes atomic.Int64
	SharedPasses  atomic.Int64

	// Incremental-maintenance counters. DeltaScans counts cached cubes
	// brought up to a newer snapshot version by scanning only the appended
	// rows; BlocksDelta the sealed storage blocks those delta scans covered
	// (exactly the blocks committed since the cached version); FullRebuilds
	// the cube passes forced by a snapshot advance the delta path could not
	// express (joined scopes, changed dimensions, structural changes).
	// EpochRebuilds is the subset of FullRebuilds caused by a structural
	// epoch change (AddTable, AddForeignKey, or a compaction resealing the
	// block layout) rather than a scope or shape mismatch.
	DeltaScans    atomic.Int64
	BlocksDelta   atomic.Int64
	FullRebuilds  atomic.Int64
	EpochRebuilds atomic.Int64
}

// Snapshot returns a plain copy of the counters.
func (s *Stats) Snapshot() map[string]int64 {
	return map[string]int64{
		"rows_scanned":   s.RowsScanned.Load(),
		"cube_passes":    s.CubePasses.Load(),
		"cache_hits":     s.CacheHits.Load(),
		"cache_misses":   s.CacheMisses.Load(),
		"direct_queries": s.DirectQueries.Load(),
		"cube_answers":   s.CubeAnswers.Load(),
		"batch_queries":  s.BatchQueries.Load(),
		"planned_cubes":  s.PlannedCubes.Load(),
		"cube_dedups":    s.CubeDedups.Load(),
		"view_dedups":    s.ViewDedups.Load(),
		"lock_waits":     s.LockWaits.Load(),

		"blocks_scanned":     s.BlocksScanned.Load(),
		"direct_block_reads": s.DirectBlockReads.Load(),
		"gather_block_reads": s.GatherBlockReads.Load(),
		"partials_merged":    s.PartialsMerged.Load(),
		"scalar_passes":      s.ScalarPasses.Load(),

		"blocks_pruned":       s.BlocksPruned.Load(),
		"direct_vector_scans": s.DirectVectorScans.Load(),
		"selvec_reuses":       s.SelvecReuses.Load(),

		"pushdown_cubes":        s.PushdownCubes.Load(),
		"pushdown_rows_skipped": s.PushdownRowsSkipped.Load(),

		"morsels_dispatched": s.MorselsDispatched.Load(),
		"queue_waits":        s.QueueWaits.Load(),
		"steal_count":        s.StealCount.Load(),

		"shard_fanouts":    s.ShardFanouts.Load(),
		"shard_partials":   s.ShardPartials.Load(),
		"shard_merge_ns":   s.ShardMergeNanos.Load(),
		"shard_stragglers": s.ShardStragglers.Load(),

		"cube_cache_ns_saved":      s.CubeCacheNsSaved.Load(),
		"cube_cache_bytes_saved":   s.CubeCacheBytesSaved.Load(),
		"cube_cache_evictions":     s.CubeCacheEvictions.Load(),
		"cube_cache_evicted_bytes": s.CubeCacheEvictedBytes.Load(),
		"cube_cache_admit_rejects": s.CubeCacheAdmitRejects.Load(),

		"window_batches": s.WindowBatches.Load(),
		"window_flushes": s.WindowFlushes.Load(),
		"shared_passes":  s.SharedPasses.Load(),

		"delta_scans":    s.DeltaScans.Load(),
		"blocks_delta":   s.BlocksDelta.Load(),
		"full_rebuilds":  s.FullRebuilds.Load(),
		"epoch_rebuilds": s.EpochRebuilds.Load(),
	}
}

// cacheShards stripes the view and cube caches so concurrent claim workers
// rarely touch the same lock. Power of two; the shard index is a hash of the
// cache key.
const cacheShards = 32

func shardOf(key string) uint32 {
	// FNV-1a, inlined to avoid the hash.Hash allocation on every lookup.
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return h & (cacheShards - 1)
}

// viewEntry is a once-initialized join view. The entry is installed in its
// shard before being built, so concurrent requests for the same view block
// on the sync.Once instead of building duplicates.
type viewEntry struct {
	once  sync.Once
	ready atomic.Bool
	view  *db.JoinView
	err   error
}

type viewShard struct {
	mu      sync.Mutex
	entries map[string]*viewEntry
}

// cubeEntry serializes computation, extension, and delta-advance of one
// cube signature. state is replaced, never mutated, so results handed to
// readers stay valid while another goroutine extends or advances the cube
// (copy-on-write) — and a request covered by the published state at the
// current snapshot version is served straight off the atomic load without
// queuing behind in-flight work.
type cubeEntry struct {
	mu        sync.Mutex
	computing atomic.Bool
	state     atomic.Pointer[cubeState]
	// stale holds one result computed for a reader pinned (WithSnapshot)
	// to a version older than the published state — typically the single
	// in-flight check that overlapped a refresh. Without it, every cube
	// request of such a check would rescan from scratch each EM iteration.
	// It never replaces state: newer published results are never regressed.
	stale atomic.Pointer[cubeState]
	// hits counts cache hits served from this entry — the frequency term of
	// the cost×frequency eviction score.
	hits atomic.Int64
}

// cubeState is one published (result, storage version) pair. For
// single-table scopes it also records the row count the result covers, so
// a later snapshot that only appended rows can be absorbed by delta-
// scanning [rows, newRows) and merging, instead of recomputing; rows is -1
// for joined scopes, where appends can rewrite earlier joined rows (a
// previously dangling foreign key may gain a match) and the delta path is
// not sound.
type cubeState struct {
	res     *CubeResult
	version uint64
	epoch   uint64
	table   string
	rows    int

	// buildNanos is the cumulative wall-clock cost of producing res from
	// scratch (initial pass plus extensions and delta advances); bytes its
	// estimated resident size. Both feed the cost-aware cache policy: a hit
	// "saves" buildNanos/bytes, and the eviction sweep ranks entries by
	// buildNanos×(1+hits)/bytes so cheap-to-rebuild giants go first.
	buildNanos int64
	bytes      int64
}

// appendable reports whether snap can be reached from this state by
// scanning appended rows only.
func (st *cubeState) appendable(snap *db.Snapshot) bool {
	return st.rows >= 0 && st.epoch == snap.Epoch() && snap.NumRows(st.table) >= st.rows
}

type cubeShard struct {
	mu      sync.Mutex
	entries map[string]*cubeEntry
}

// Engine evaluates Simple Aggregate Queries over a database. It caches join
// views and cube results; the cube cache persists across claims and EM
// iterations exactly as §6.3 prescribes (results are generated for all
// literals with non-zero marginal probability for any claim of the
// document, so the cache key needs no literal set).
//
// The engine is concurrency-first: both caches are striped across
// cacheShards locks, and duplicate concurrent requests for the same cube or
// view are coalesced onto a single computation (singleflight), so a
// document's claim workers can hammer one shared engine without serializing
// behind a global lock.
type Engine struct {
	DB    *db.Database
	Stats Stats

	caching atomic.Bool
	views   [cacheShards]viewShard
	cubes   [cacheShards]cubeShard

	// scalarKernel forces cube passes onto the legacy row-at-a-time
	// interpreter; the vectorized columnar kernel is the default.
	scalarKernel atomic.Bool
	// pushdown enables selection-vector pushdown: the batch planner may
	// merge queries sharing a predicate into one filtered cube pass whose
	// kernel compacts each segment through the shared predicate's selection
	// vector before accumulating (on by default).
	pushdown atomic.Bool
	// zoneMaps enables zone-map pruning in the scan pipeline (on by
	// default); SetZoneMaps(false) is the operational escape hatch and the
	// benchmark baseline toggle.
	zoneMaps atomic.Bool
	// scanWorkers bounds intra-pass parallelism (morsels in flight on the
	// shared scheduler, or private row-range partials without one); <= 0
	// means the scheduler's pool width, or min(GOMAXPROCS,
	// defaultScanWorkers) when no scheduler is installed.
	scanWorkers atomic.Int64
	// sched, when set, is the shared morsel scheduler cube passes and
	// large direct scans submit to instead of sizing private pools. The
	// engine does not own it (its creator calls Close).
	sched atomic.Pointer[Scheduler]

	// cubeCacheBudget bounds the cube cache's estimated resident bytes
	// (<= 0: unbounded). Publishes over budget trigger an eviction sweep;
	// evicting is the CAS guard that keeps the sweep single-flight.
	cubeCacheBudget atomic.Int64
	evicting        atomic.Bool

	// testHookBeforeCubePass, when non-nil, runs at the start of every cube
	// pass; tests use it to hold a computation open while concurrent
	// requests for the same cube pile up.
	testHookBeforeCubePass func()
}

// NewEngine creates an engine with cube-result caching enabled, then
// applies the given execution options (see options.go; Engine.Tune applies
// more at runtime).
func NewEngine(d *db.Database, opts ...ExecOption) *Engine {
	e := &Engine{DB: d}
	for i := range e.views {
		e.views[i].entries = make(map[string]*viewEntry)
	}
	for i := range e.cubes {
		e.cubes[i].entries = make(map[string]*cubeEntry)
	}
	e.caching.Store(true)
	e.zoneMaps.Store(true)
	e.pushdown.Store(true)
	e.cubeCacheBudget.Store(defaultCubeCacheBudget)
	e.Tune(opts...)
	return e
}

// defaultCubeCacheBudget bounds the cube cache's estimated resident bytes
// when WithCubeCacheBudget was not given: large enough that single-document
// checking never sweeps, small enough that a corpus audit over many scopes
// cannot grow without bound.
const defaultCubeCacheBudget = 256 << 20

// CubeCacheBudget returns the configured cube-cache byte budget (<= 0:
// unbounded).
func (e *Engine) CubeCacheBudget() int64 { return e.cubeCacheBudget.Load() }

// CacheUsage reports the cube cache's resident entry count and estimated
// bytes (published states plus parked stale results). It scans the shard
// maps rather than maintaining a gauge, so concurrent publishes, evictions,
// and ResetCache can never make the accounting drift.
func (e *Engine) CacheUsage() (entries int, bytes int64) {
	for i := range e.cubes {
		sh := &e.cubes[i]
		e.lock(&sh.mu)
		for _, ent := range sh.entries {
			st := ent.state.Load()
			sst := ent.stale.Load()
			if st == nil && sst == nil {
				continue
			}
			entries++
			if st != nil {
				bytes += st.bytes
			}
			if sst != nil {
				bytes += sst.bytes
			}
		}
		sh.mu.Unlock()
	}
	return entries, bytes
}

// PushdownEnabled reports whether the batch planner may merge
// predicate-sharing queries into filtered cube passes.
func (e *Engine) PushdownEnabled() bool { return e.pushdown.Load() }

// SetZoneMaps toggles zone-map pruning in the shared scan pipeline.
//
// Deprecated: use Tune(WithZoneMaps(on)), or pass WithZoneMaps to
// NewEngine.
func (e *Engine) SetZoneMaps(on bool) { e.Tune(WithZoneMaps(on)) }

// ZoneMapsEnabled reports whether zone-map pruning is active.
func (e *Engine) ZoneMapsEnabled() bool { return e.zoneMaps.Load() }

// CachingEnabled reports whether cube results are cached.
func (e *Engine) CachingEnabled() bool { return e.caching.Load() }

// SetCaching toggles the cube-result cache.
//
// Deprecated: use Tune(WithCaching(on)), or pass WithCaching to NewEngine.
func (e *Engine) SetCaching(on bool) { e.Tune(WithCaching(on)) }

// SetScalarKernel routes cube passes to the legacy scalar interpreter.
//
// Deprecated: use Tune(WithScalarKernel(on)), or pass WithScalarKernel to
// NewEngine.
func (e *Engine) SetScalarKernel(on bool) { e.Tune(WithScalarKernel(on)) }

// ScalarKernel reports whether cube passes are forced onto the scalar
// interpreter.
func (e *Engine) ScalarKernel() bool { return e.scalarKernel.Load() }

// SetScanWorkers bounds per-scan parallelism.
//
// Deprecated: use Tune(WithScanWorkers(n)), or pass WithScanWorkers to
// NewEngine; per-request, use ContextWithOptions.
func (e *Engine) SetScanWorkers(n int) { e.Tune(WithScanWorkers(n)) }

// ResetCache drops all cached cube results (join views are kept: they are
// part of the storage layer, not the evaluation strategy).
func (e *Engine) ResetCache() {
	for i := range e.cubes {
		sh := &e.cubes[i]
		e.lock(&sh.mu)
		sh.entries = make(map[string]*cubeEntry)
		sh.mu.Unlock()
	}
}

// lock acquires mu, counting acquisitions that had to wait.
func (e *Engine) lock(mu *sync.Mutex) {
	if mu.TryLock() {
		return
	}
	e.Stats.LockWaits.Add(1)
	mu.Lock()
}

// cacheHit records one cache hit and its economics: the build nanoseconds
// and bytes the hit avoided re-spending, plus the entry's frequency term.
func (e *Engine) cacheHit(ent *cubeEntry, st *cubeState) {
	e.Stats.CacheHits.Add(1)
	e.Stats.CubeCacheNsSaved.Add(st.buildNanos)
	e.Stats.CubeCacheBytesSaved.Add(st.bytes)
	ent.hits.Add(1)
}

// admit decides whether a freshly built state may enter the cache: a result
// that alone exceeds the whole byte budget is returned to its caller but
// never stored (caching it would immediately evict everything else for an
// entry the next sweep drops anyway).
func (e *Engine) admit(st *cubeState) bool {
	if b := e.cubeCacheBudget.Load(); b > 0 && st.bytes > b {
		e.Stats.CubeCacheAdmitRejects.Add(1)
		return false
	}
	return true
}

// maybeEvict sweeps the cube cache back under the configured byte budget.
// Victims are ranked by buildNanos×(1+hits)/bytes ascending — cheap to
// rebuild, rarely hit, and large evicts first — so the bytes freed cost the
// least expected rebuild time. The sweep is CAS-guarded single-flight;
// entries mid-computation (ent.mu held) are skipped rather than waited on,
// leaving the cache briefly over budget instead of stalling publishers.
// Evicted entries stay valid for readers already holding their results
// (published CubeResults are immutable); a publisher racing the sweep at
// worst stores into an orphaned entry that the GC then collects.
func (e *Engine) maybeEvict() {
	budget := e.cubeCacheBudget.Load()
	if budget <= 0 {
		return
	}
	if !e.evicting.CompareAndSwap(false, true) {
		return
	}
	defer e.evicting.Store(false)
	_, used := e.CacheUsage()
	if used <= budget {
		return
	}
	type victim struct {
		shard int
		sig   string
		ent   *cubeEntry
		bytes int64
		score float64
	}
	var victims []victim
	for i := range e.cubes {
		sh := &e.cubes[i]
		e.lock(&sh.mu)
		for sig, ent := range sh.entries {
			var b, cost int64
			if st := ent.state.Load(); st != nil {
				b += st.bytes
				cost += st.buildNanos
			}
			if sst := ent.stale.Load(); sst != nil {
				b += sst.bytes
				cost += sst.buildNanos
			}
			if b == 0 {
				continue
			}
			victims = append(victims, victim{i, sig, ent, b, float64(cost) * float64(1+ent.hits.Load()) / float64(b)})
		}
		sh.mu.Unlock()
	}
	sort.Slice(victims, func(a, b int) bool { return victims[a].score < victims[b].score })
	for _, v := range victims {
		if used <= budget {
			break
		}
		if !v.ent.mu.TryLock() {
			continue // mid-computation; never stall a publisher
		}
		sh := &e.cubes[v.shard]
		e.lock(&sh.mu)
		if sh.entries[v.sig] == v.ent {
			delete(sh.entries, v.sig)
			used -= v.bytes
			e.Stats.CubeCacheEvictions.Add(1)
			e.Stats.CubeCacheEvictedBytes.Add(v.bytes)
		}
		sh.mu.Unlock()
		v.ent.mu.Unlock()
	}
}

// DefaultTable returns the name of the first table, used to anchor queries
// that reference no column (pure Count(*) with no predicates).
func (e *Engine) DefaultTable() string {
	ts := e.DB.Tables()
	if len(ts) == 0 {
		return ""
	}
	return ts[0].Name
}

// snapCtxKey carries a pinned storage snapshot through a request context.
type snapCtxKey struct{}

// WithSnapshot pins a snapshot for every engine read under ctx: all cube
// passes and direct scans of one verification request then observe a
// single storage version even if commits land mid-request. A snapshot
// belonging to a different database is ignored (the engine falls back to
// its own latest snapshot), so pinned contexts are safe to pass across
// multi-database services. Pins accumulate: a context may carry one
// snapshot per database — a sharded check pins the front database and
// every partition — and the newest pin for a given database wins.
func WithSnapshot(ctx context.Context, snap *db.Snapshot) context.Context {
	if snap == nil {
		return ctx
	}
	prev, _ := ctx.Value(snapCtxKey{}).([]*db.Snapshot)
	pinned := make([]*db.Snapshot, 0, len(prev)+1)
	pinned = append(pinned, snap)
	pinned = append(pinned, prev...)
	return context.WithValue(ctx, snapCtxKey{}, pinned)
}

// snapshotFor resolves the snapshot a request reads: the context-pinned
// one when one belongs to this engine's database, the latest published one
// otherwise.
func (e *Engine) snapshotFor(ctx context.Context) *db.Snapshot {
	if pinned, ok := ctx.Value(snapCtxKey{}).([]*db.Snapshot); ok {
		for _, snap := range pinned {
			if snap.Of(e.DB) {
				return snap
			}
		}
	}
	return e.DB.Snapshot()
}

// view returns the (cached) join view over the given tables at the
// database's latest snapshot. Concurrent requests for the same view share
// one build.
func (e *Engine) view(tables []string) (*db.JoinView, error) {
	return e.viewAt(e.DB.Snapshot(), tables)
}

// viewAt returns the (cached) join view over the given tables at one
// snapshot. The cache is keyed by (table set, snapshot version): a commit
// publishes a new version and later requests build fresh views over it,
// while scans holding an older view keep their consistent row set. Stale
// versions of the same scope are dropped from the cache as new ones arrive
// (in-flight readers keep their entries alive through their own pointers).
func (e *Engine) viewAt(snap *db.Snapshot, tables []string) (*db.JoinView, error) {
	base := strings.Join(sortedCopy(tables), ",")
	key := base + "@" + strconv.FormatUint(snap.Version(), 10)
	sh := &e.views[shardOf(base)]
	e.lock(&sh.mu)
	ent, ok := sh.entries[key]
	if !ok {
		// Drop only strictly older versions of this scope: a reader pinned
		// to an old snapshot must not evict the current version's view (or
		// the two would thrash rebuilding each other's joins); newer
		// entries stay until an even newer version arrives.
		for k := range sh.entries {
			if len(k) > len(base) && k[len(base)] == '@' && strings.HasPrefix(k, base) {
				if v, err := strconv.ParseUint(k[len(base)+1:], 10, 64); err == nil && v < snap.Version() {
					delete(sh.entries, k)
				}
			}
		}
		ent = &viewEntry{}
		sh.entries[key] = ent
	}
	sh.mu.Unlock()
	if ok && !ent.ready.Load() {
		e.Stats.ViewDedups.Add(1)
	}
	ent.once.Do(func() {
		ent.view, ent.err = db.BuildSnapshotView(snap, tables)
		if ent.err == nil {
			// Join-key zone pruning at view build counts toward the same
			// pruning budget scan-time zone maps report.
			e.Stats.BlocksPruned.Add(int64(ent.view.PrunedZones()))
		}
		ent.ready.Store(true)
	})
	return ent.view, ent.err
}

func sortedCopy(ss []string) []string {
	out := make([]string, len(ss))
	copy(out, ss)
	sort.Strings(out)
	return out
}

// Evaluate runs a single query with a dedicated scan. It is the
// context-free convenience form of EvaluateContext.
func (e *Engine) Evaluate(q Query) (float64, error) {
	return e.EvaluateContext(context.Background(), q)
}

// EvaluateContext runs a single query with a dedicated scan (the naive
// strategy of Table 6), executed through the shared vectorized scan
// pipeline: predicates compile to storage-level comparisons evaluated into
// per-segment selection vectors, and zone maps prune segments that cannot
// contribute (see pipeline.go, including the ratio-aggregate base
// contract for Percentage and ConditionalProbability denominators). The
// scan checks ctx between segments and aborts with ctx.Err() when the
// request is cancelled.
func (e *Engine) EvaluateContext(ctx context.Context, q Query) (float64, error) {
	if err := ctx.Err(); err != nil {
		return math.NaN(), err
	}
	tables := q.Tables(e.DefaultTable())
	view, err := e.viewAt(e.snapshotFor(ctx), tables)
	if err != nil {
		return math.NaN(), err
	}
	e.Stats.DirectQueries.Add(1)
	return e.evaluateDirect(ctx, view, q)
}

func parseLiteralFloat(lit string) (float64, error) {
	return strconv.ParseFloat(strings.TrimSpace(lit), 64)
}

// CubeFor returns a cube result covering the given dimensions and aggregate
// requests. It is the context-free convenience form of CubeForContext.
func (e *Engine) CubeFor(tables []string, dims []DimSpec, reqs []AggRequest) (*CubeResult, error) {
	return e.CubeForContext(context.Background(), tables, dims, reqs)
}

// CubeForContext returns a cube result covering the given dimensions and
// aggregate requests over the join scope, reusing, extending, or
// incrementally advancing a cached cube when caching is enabled. The
// requests are translated into tracked columns (star is always tracked).
// The cube pass checks ctx periodically and aborts with ctx.Err() when the
// request is cancelled; a cancelled pass publishes nothing, so the cache
// never holds partial results.
//
// The cache is snapshot-versioned: every request resolves the database's
// current snapshot, and a cached cube is served only at the version it was
// computed for. When the snapshot advanced by appends to the cube's
// (single-table) scope, the cached cube is brought up to date by scanning
// only the appended blocks and merging the partial into the published
// result (Stats.DeltaScans / Stats.BlocksDelta); sealed blocks are never
// rescanned. Advances the delta path cannot express — joined scopes,
// changed dimensions, structural changes — recompute from scratch
// (Stats.FullRebuilds).
//
// Concurrent calls with the same signature are coalesced: exactly one
// goroutine runs the cube pass while the others wait and share the result
// (recorded in Stats.CubeDedups). Per-signature work is serialized by the
// cube entry's own lock, so distinct cubes never contend.
func (e *Engine) CubeForContext(ctx context.Context, tables []string, dims []DimSpec, reqs []AggRequest) (*CubeResult, error) {
	return e.cubeForContext(ctx, tables, dims, reqs, nil)
}

// FilteredCubeForContext is CubeForContext for a selection-pushdown pass:
// every cell accumulates only rows matching filter, and the result answers
// only queries carrying the filter in their conjunction (CubeResult.Value
// strips it). Filtered cubes share the cache machinery — signature keyed by
// the filter too, column extension, delta advance — with ordinary cubes.
func (e *Engine) FilteredCubeForContext(ctx context.Context, tables []string, dims []DimSpec, reqs []AggRequest, filter *Predicate) (*CubeResult, error) {
	return e.cubeForContext(ctx, tables, dims, reqs, filter)
}

func (e *Engine) cubeForContext(ctx context.Context, tables []string, dims []DimSpec, reqs []AggRequest, filter *Predicate) (*CubeResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cols := trackedColsFor(reqs)
	snap := e.snapshotFor(ctx)
	if !e.caching.Load() {
		view, err := e.viewAt(snap, tables)
		if err != nil {
			return nil, err
		}
		return e.runCube(ctx, view, tables, dims, cols, filter)
	}

	sig := cubeSignature(tables, dims, filter)
	sh := &e.cubes[shardOf(sig)]
	e.lock(&sh.mu)
	ent, ok := sh.entries[sig]
	if !ok {
		ent = &cubeEntry{}
		ent.computing.Store(true)
		sh.entries[sig] = ent
	}
	sh.mu.Unlock()

	// Fast path: a request fully covered by the published state at the
	// current storage version never queues, even while another goroutine
	// extends or advances the cube.
	if st := ent.state.Load(); st != nil && st.version == snap.Version() && dimsCover(st.res.Dims, dims) && len(missingCols(st.res, cols)) == 0 {
		e.cacheHit(ent, st)
		return st.res, nil
	}
	if sst := ent.stale.Load(); sst != nil && sst.version == snap.Version() && dimsCover(sst.res.Dims, dims) && len(missingCols(sst.res, cols)) == 0 {
		e.cacheHit(ent, sst)
		return sst.res, nil
	}
	if ok && ent.computing.Load() {
		e.Stats.CubeDedups.Add(1)
	}

	// Registered before the entry lock so the sweep runs after it is
	// released: a publish that pushed the cache over budget pays for the
	// eviction pass, and the sweep's TryLock can never see its own entry as
	// held by itself.
	defer e.maybeEvict()
	e.lock(&ent.mu)
	defer func() {
		ent.computing.Store(false)
		ent.mu.Unlock()
	}()

	st := ent.state.Load()
	if st == nil {
		fresh, err := e.freshState(ctx, snap, tables, dims, cols, filter)
		if err != nil {
			return nil, err
		}
		if e.admit(fresh) {
			ent.state.Store(fresh)
		}
		e.Stats.CacheMisses.Add(1)
		return fresh.res, nil
	}

	if st.version != snap.Version() {
		return e.advanceState(ctx, ent, st, snap, tables, dims, cols, filter)
	}

	// Re-check coverage under the lock; extend with the missing columns if
	// the goroutine ahead of us did not already.
	missing := missingCols(st.res, cols)
	if len(missing) == 0 && dimsCover(st.res.Dims, dims) {
		e.cacheHit(ent, st)
		return st.res, nil
	}
	ent.computing.Store(true)
	// Literal sets may lag the request — a window's literal pool grows as a
	// corpus is audited — and a cube cannot encode a literal it was not
	// built with. Rebuild at the union of cached and requested literals (and
	// the union of tracked columns) so the entry converges to a covering
	// shape instead of thrashing between per-batch literal sets: once the
	// pool saturates, every later request is served without a pass.
	if !dimsCover(st.res.Dims, dims) {
		fresh, err := e.freshState(ctx, snap, tables, unionDims(st.res.Dims, dims), unionCols(st.res, cols), filter)
		if err != nil {
			return nil, err
		}
		if e.admit(fresh) {
			ent.state.Store(fresh)
		}
		e.Stats.CacheMisses.Add(1)
		return fresh.res, nil
	}
	view, err := e.viewAt(snap, tables)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	extra, err := e.runCube(ctx, view, tables, st.res.Dims, missing, filter)
	if err != nil {
		return nil, err
	}
	wider := st.res.merged(extra)
	next := &cubeState{res: wider, version: st.version, epoch: st.epoch, table: st.table, rows: st.rows,
		buildNanos: st.buildNanos + time.Since(start).Nanoseconds(), bytes: wider.memBytes()}
	ent.state.Store(next)
	e.cacheHit(ent, st)
	return wider, nil
}

// freshState runs a full cube pass at one snapshot and wraps it with the
// coverage metadata the delta path needs.
func (e *Engine) freshState(ctx context.Context, snap *db.Snapshot, tables []string, dims []DimSpec, cols []trackedCol, filter *Predicate) (*cubeState, error) {
	view, err := e.viewAt(snap, tables)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := e.runCube(ctx, view, tables, dims, cols, filter)
	if err != nil {
		return nil, err
	}
	st := &cubeState{res: res, version: snap.Version(), epoch: snap.Epoch(), rows: -1,
		buildNanos: time.Since(start).Nanoseconds(), bytes: res.memBytes()}
	if len(tables) == 1 {
		st.table = tables[0]
		st.rows = snap.NumRows(tables[0])
	}
	return st, nil
}

// advanceState reconciles a cached cube with a snapshot at a newer storage
// version: republish when the appends missed its scope, delta-scan the
// appended blocks when possible, and fall back to a counted full rebuild
// otherwise. Callers hold ent.mu.
func (e *Engine) advanceState(ctx context.Context, ent *cubeEntry, st *cubeState, snap *db.Snapshot, tables []string, dims []DimSpec, cols []trackedCol, filter *Predicate) (*CubeResult, error) {
	if snap.Version() < st.version {
		// A reader pinned to an older snapshot than the published cube
		// (its request started before a commit another goroutine already
		// absorbed): serve it a consistent result computed at its own
		// version, without regressing the newer published state. The
		// result is parked in the entry's stale slot so the pinned check
		// pays for the pass once, not once per EM iteration.
		if sst := ent.stale.Load(); sst != nil && sst.version == snap.Version() && dimsCover(sst.res.Dims, dims) && len(missingCols(sst.res, cols)) == 0 {
			e.cacheHit(ent, sst)
			return sst.res, nil
		}
		ent.computing.Store(true)
		view, err := e.viewAt(snap, tables)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		res, err := e.runCube(ctx, view, tables, dims, cols, filter)
		if err != nil {
			return nil, err
		}
		ent.stale.Store(&cubeState{res: res, version: snap.Version(), epoch: snap.Epoch(), rows: -1,
			buildNanos: time.Since(start).Nanoseconds(), bytes: res.memBytes()})
		e.Stats.CacheMisses.Add(1)
		return res, nil
	}
	if st.appendable(snap) && dimsCover(st.res.Dims, dims) && len(missingCols(st.res, cols)) == 0 {
		newRows := snap.NumRows(st.table)
		if newRows == st.rows {
			// The commits since st.version touched other tables only: the
			// cached result is still exact, so republish it at the current
			// version without scanning anything.
			ent.state.Store(&cubeState{res: st.res, version: snap.Version(), epoch: snap.Epoch(), table: st.table, rows: st.rows,
				buildNanos: st.buildNanos, bytes: st.bytes})
			e.cacheHit(ent, st)
			return st.res, nil
		}
		ent.computing.Store(true)
		view, err := e.viewAt(snap, tables)
		if err != nil {
			return nil, err
		}
		// Scan only [st.rows, newRows) — the rows of the blocks sealed
		// since the cached version — with the cached cube's own dims and
		// tracked columns, then merge the partial into the published
		// result copy-on-write.
		start := time.Now()
		delta, err := e.runCubeDelta(ctx, view, tables, st.res.Dims, st.res.trackedCols(), st.rows, newRows, filter)
		if err != nil {
			return nil, err
		}
		merged := st.res.mergeAppend(delta)
		ent.state.Store(&cubeState{res: merged, version: snap.Version(), epoch: snap.Epoch(), table: st.table, rows: newRows,
			buildNanos: st.buildNanos + time.Since(start).Nanoseconds(), bytes: merged.memBytes()})
		e.Stats.DeltaScans.Add(1)
		e.Stats.BlocksDelta.Add(int64(len(snap.BlocksSince(st.table, st.rows))))
		e.cacheHit(ent, st)
		return merged, nil
	}

	// Joined scope, changed dims/columns, or a structural change: the
	// advance cannot be expressed as an append-only delta. Rebuild at the
	// union of cached and requested shapes so literal-set churn under
	// appends converges the same way the same-version path does.
	ent.computing.Store(true)
	e.Stats.FullRebuilds.Add(1)
	if st.epoch != snap.Epoch() {
		e.Stats.EpochRebuilds.Add(1)
	}
	fresh, err := e.freshState(ctx, snap, tables, unionDims(st.res.Dims, dims), unionCols(st.res, cols), filter)
	if err != nil {
		return nil, err
	}
	if e.admit(fresh) {
		ent.state.Store(fresh)
	}
	e.Stats.CacheMisses.Add(1)
	return fresh.res, nil
}

// runCubeDelta scans joined rows [lo, hi) into a partial CubeResult using
// the same kernel dispatch as a full pass. Delta ranges are small (the
// appended blocks), so the scan is single-threaded.
func (e *Engine) runCubeDelta(ctx context.Context, view *db.JoinView, tables []string, dims []DimSpec, cols []trackedCol, lo, hi int, filter *Predicate) (*CubeResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e.Stats.RowsScanned.Add(int64(hi - lo))
	pc := passConfig{stats: &e.Stats, workers: 1, scalar: e.scalarKernel.Load(), zones: e.zoneMapsFor(ctx), filter: filter}
	return computeCubeRange(ctx, view, tables, dims, cols, lo, hi, pc)
}

// missingCols returns the requested tracked columns the cube does not cover.
func missingCols(r *CubeResult, cols []trackedCol) []trackedCol {
	var missing []trackedCol
	for _, tc := range cols {
		if tc.ref.IsStar() {
			continue
		}
		if !r.hasColumn(tc.ref, tc.needDistinct) {
			missing = append(missing, tc)
		}
	}
	return missing
}

func (e *Engine) runCube(ctx context.Context, view *db.JoinView, tables []string, dims []DimSpec, cols []trackedCol, filter *Predicate) (*CubeResult, error) {
	if e.testHookBeforeCubePass != nil {
		e.testHookBeforeCubePass()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e.Stats.CubePasses.Add(1)
	e.Stats.RowsScanned.Add(int64(view.NumRows()))
	if filter != nil {
		e.Stats.PushdownCubes.Add(1)
	}
	pc := passConfig{
		stats:   &e.Stats,
		workers: e.resolveScanWorkers(e.rawScanWorkersFor(ctx)),
		scalar:  e.scalarKernel.Load(),
		zones:   e.zoneMapsFor(ctx),
		sched:   e.sched.Load(),
		filter:  filter,
	}
	return computeCube(ctx, view, tables, dims, cols, pc)
}

// defaultScanWorkers caps intra-pass parallelism when SetScanWorkers was
// not called.
const defaultScanWorkers = 4

// trackedColsFor deduplicates aggregate requests into tracked columns.
func trackedColsFor(reqs []AggRequest) []trackedCol {
	byKey := make(map[string]*trackedCol)
	var order []string
	for _, r := range reqs {
		if r.Col.IsStar() {
			continue
		}
		k := r.Col.String()
		tc, ok := byKey[k]
		if !ok {
			tc = &trackedCol{ref: r.Col}
			byKey[k] = tc
			order = append(order, k)
		}
		if r.Fn == CountDistinct {
			tc.needDistinct = true
		}
	}
	out := make([]trackedCol, 0, len(order))
	for _, k := range order {
		out = append(out, *byKey[k])
	}
	return out
}

// dimsCover reports whether a cached cube's dims can encode every request
// dim: the same columns, with each cached literal list containing every
// requested literal. Extra cached literals only carve more values out of the
// InOrDefault bucket — cells for shared literals and the rollup are byte-for
// byte what a narrower build produces — so a covering cube answers the
// request exactly like a freshly built one.
func dimsCover(have, want []DimSpec) bool {
	if len(have) != len(want) {
		return false
	}
	hm := make(map[string]map[string]struct{}, len(have))
	for _, d := range have {
		set, ok := hm[d.Col.String()]
		if !ok {
			set = make(map[string]struct{}, len(d.Literals))
			hm[d.Col.String()] = set
		}
		for _, lit := range d.Literals {
			set[lit] = struct{}{}
		}
	}
	for _, d := range want {
		set, ok := hm[d.Col.String()]
		if !ok {
			return false
		}
		for _, lit := range d.Literals {
			if _, ok := set[lit]; !ok {
				return false
			}
		}
	}
	return true
}

// unionDims widens cached dims with any requested literals they are missing:
// cached literals keep their positions, new ones append in request order, so
// the result is deterministic and still covers everything the cached cube
// answered. Falls back to the request when the column sets diverge (distinct
// signatures — cannot happen for dims reaching one cache entry).
func unionDims(have, want []DimSpec) []DimSpec {
	if len(have) != len(want) {
		return want
	}
	wm := make(map[string][]string, len(want))
	for _, d := range want {
		wm[d.Col.String()] = d.Literals
	}
	out := make([]DimSpec, len(have))
	for i, d := range have {
		if _, ok := wm[d.Col.String()]; !ok {
			return want
		}
		lits := append([]string(nil), d.Literals...)
		seen := make(map[string]struct{}, len(lits))
		for _, l := range lits {
			seen[l] = struct{}{}
		}
		for _, l := range wm[d.Col.String()] {
			if _, ok := seen[l]; !ok {
				lits = append(lits, l)
				seen[l] = struct{}{}
			}
		}
		out[i] = DimSpec{Col: d.Col, Literals: lits}
	}
	return out
}

// unionCols is the cached cube's tracked columns plus the requested ones it
// is missing — the column set a literal-widening rebuild must carry so no
// previously cached aggregate is dropped from the entry.
func unionCols(r *CubeResult, cols []trackedCol) []trackedCol {
	return append(r.trackedCols(), missingCols(r, cols)...)
}

// sameDims reports whether two dimension specs have identical columns and
// literal sets (order-insensitive on columns, order-sensitive on literals
// because literal indexes are positional).
func sameDims(a, b []DimSpec) bool {
	if len(a) != len(b) {
		return false
	}
	am := make(map[string][]string, len(a))
	for _, d := range a {
		am[d.Col.String()] = d.Literals
	}
	for _, d := range b {
		lits, ok := am[d.Col.String()]
		if !ok || len(lits) != len(d.Literals) {
			return false
		}
		for i := range lits {
			if lits[i] != d.Literals[i] {
				return false
			}
		}
	}
	return true
}

// AnswerFromCube evaluates q against a cube, recording the answered-query
// statistic. It returns an error when the cube does not cover q (callers
// are expected to construct covering cubes).
func (e *Engine) AnswerFromCube(r *CubeResult, q Query) (float64, error) {
	v, ok := r.Value(q)
	if !ok {
		return math.NaN(), fmt.Errorf("sqlexec: cube %v does not cover query %s", r.Dims, q.Key())
	}
	e.Stats.CubeAnswers.Add(1)
	return v, nil
}
