package sqlexec

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"aggchecker/internal/db"
)

// ctxCheckRows is how many rows a scan processes between context checks: a
// balance between cancellation latency and per-row overhead (one atomic load
// per batch of rows).
const ctxCheckRows = 8192

// Stats counts the work performed by an Engine; Table 6 of the paper is
// regenerated from these counters plus wall-clock time. All counters are
// atomic: many claim workers update them concurrently.
type Stats struct {
	RowsScanned   atomic.Int64
	CubePasses    atomic.Int64
	CacheHits     atomic.Int64
	CacheMisses   atomic.Int64
	DirectQueries atomic.Int64
	CubeAnswers   atomic.Int64

	// BatchQueries counts queries received through EvaluateBatch and
	// PlannedCubes the merged cube passes the planner produced for them.
	BatchQueries atomic.Int64
	PlannedCubes atomic.Int64

	// CubeDedups counts cube requests that arrived while an identical cube
	// was being computed by another goroutine and were coalesced onto that
	// computation (singleflight). ViewDedups is the same for join views.
	CubeDedups atomic.Int64
	ViewDedups atomic.Int64

	// LockWaits counts lock acquisitions (shard or per-cube) that could not
	// proceed immediately — a direct measure of cache contention.
	LockWaits atomic.Int64

	// Vectorized-kernel counters. BlocksScanned counts kernel blocks
	// processed by cube passes; DirectBlockReads and GatherBlockReads split
	// per-column block reads into zero-copy column-slice reads versus
	// gathers through join-view row maps; PartialsMerged counts row-range
	// partials merged into cube results beyond the first (0 for
	// single-threaded passes); ScalarPasses counts cube passes served by
	// the legacy scalar kernel (forced via SetScalarKernel, or literal sets
	// too large for the dense lattice).
	BlocksScanned    atomic.Int64
	DirectBlockReads atomic.Int64
	GatherBlockReads atomic.Int64
	PartialsMerged   atomic.Int64
	ScalarPasses     atomic.Int64

	// Scan-pipeline counters. BlocksPruned counts scan segments skipped by
	// zone maps: segments whose per-block summaries (min/max ranges,
	// dictionary-code domain bitsets) refute every tracked dimension
	// literal (cube and delta passes, which then take a batched rolled-up
	// update) or the predicate conjunction (direct scans).
	// DirectVectorScans counts direct queries executed through the shared
	// vectorized scan pipeline; SelvecReuses counts scan segments that
	// filtered through a reused selection-vector buffer instead of
	// allocating a fresh one (every segment after a scan's first).
	BlocksPruned      atomic.Int64
	DirectVectorScans atomic.Int64
	SelvecReuses      atomic.Int64

	// Selection-pushdown counters. PushdownCubes counts cube passes run
	// under a shared filter predicate pushed down by the planner;
	// PushdownRowsSkipped the rows those passes never coded or accumulated
	// because the filter's selection vector rejected them (including whole
	// segments the filter's zone maps refuted).
	PushdownCubes       atomic.Int64
	PushdownRowsSkipped atomic.Int64

	// Morsel-scheduler counters. MorselsDispatched counts morsels executed
	// for this engine's jobs on the shared scheduler (owner and helpers
	// alike); StealCount the subset executed by shared-pool helper workers
	// rather than the submitting goroutine; QueueWaits the job submissions
	// that found no idle helper and queued behind other requests (always 0
	// on a pool of width 1, which has no helpers).
	MorselsDispatched atomic.Int64
	QueueWaits        atomic.Int64
	StealCount        atomic.Int64

	// Shard-coordinator counters, updated by the shard coordinator through
	// the front engine's Stats (the engine itself never touches them).
	// ShardFanouts counts batches fanned out to shard workers; ShardPartials
	// the per-shard partials merged back; ShardMergeNanos the wall time
	// spent merging partials (the scatter-gather overhead the bench bounds);
	// ShardStragglers the workers whose response lagged far behind the
	// fan-out's median.
	ShardFanouts    atomic.Int64
	ShardPartials   atomic.Int64
	ShardMergeNanos atomic.Int64
	ShardStragglers atomic.Int64

	// Incremental-maintenance counters. DeltaScans counts cached cubes
	// brought up to a newer snapshot version by scanning only the appended
	// rows; BlocksDelta the sealed storage blocks those delta scans covered
	// (exactly the blocks committed since the cached version); FullRebuilds
	// the cube passes forced by a snapshot advance the delta path could not
	// express (joined scopes, changed dimensions, structural changes).
	// EpochRebuilds is the subset of FullRebuilds caused by a structural
	// epoch change (AddTable, AddForeignKey, or a compaction resealing the
	// block layout) rather than a scope or shape mismatch.
	DeltaScans    atomic.Int64
	BlocksDelta   atomic.Int64
	FullRebuilds  atomic.Int64
	EpochRebuilds atomic.Int64
}

// Snapshot returns a plain copy of the counters.
func (s *Stats) Snapshot() map[string]int64 {
	return map[string]int64{
		"rows_scanned":   s.RowsScanned.Load(),
		"cube_passes":    s.CubePasses.Load(),
		"cache_hits":     s.CacheHits.Load(),
		"cache_misses":   s.CacheMisses.Load(),
		"direct_queries": s.DirectQueries.Load(),
		"cube_answers":   s.CubeAnswers.Load(),
		"batch_queries":  s.BatchQueries.Load(),
		"planned_cubes":  s.PlannedCubes.Load(),
		"cube_dedups":    s.CubeDedups.Load(),
		"view_dedups":    s.ViewDedups.Load(),
		"lock_waits":     s.LockWaits.Load(),

		"blocks_scanned":     s.BlocksScanned.Load(),
		"direct_block_reads": s.DirectBlockReads.Load(),
		"gather_block_reads": s.GatherBlockReads.Load(),
		"partials_merged":    s.PartialsMerged.Load(),
		"scalar_passes":      s.ScalarPasses.Load(),

		"blocks_pruned":       s.BlocksPruned.Load(),
		"direct_vector_scans": s.DirectVectorScans.Load(),
		"selvec_reuses":       s.SelvecReuses.Load(),

		"pushdown_cubes":        s.PushdownCubes.Load(),
		"pushdown_rows_skipped": s.PushdownRowsSkipped.Load(),

		"morsels_dispatched": s.MorselsDispatched.Load(),
		"queue_waits":        s.QueueWaits.Load(),
		"steal_count":        s.StealCount.Load(),

		"shard_fanouts":    s.ShardFanouts.Load(),
		"shard_partials":   s.ShardPartials.Load(),
		"shard_merge_ns":   s.ShardMergeNanos.Load(),
		"shard_stragglers": s.ShardStragglers.Load(),

		"delta_scans":    s.DeltaScans.Load(),
		"blocks_delta":   s.BlocksDelta.Load(),
		"full_rebuilds":  s.FullRebuilds.Load(),
		"epoch_rebuilds": s.EpochRebuilds.Load(),
	}
}

// cacheShards stripes the view and cube caches so concurrent claim workers
// rarely touch the same lock. Power of two; the shard index is a hash of the
// cache key.
const cacheShards = 32

func shardOf(key string) uint32 {
	// FNV-1a, inlined to avoid the hash.Hash allocation on every lookup.
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return h & (cacheShards - 1)
}

// viewEntry is a once-initialized join view. The entry is installed in its
// shard before being built, so concurrent requests for the same view block
// on the sync.Once instead of building duplicates.
type viewEntry struct {
	once  sync.Once
	ready atomic.Bool
	view  *db.JoinView
	err   error
}

type viewShard struct {
	mu      sync.Mutex
	entries map[string]*viewEntry
}

// cubeEntry serializes computation, extension, and delta-advance of one
// cube signature. state is replaced, never mutated, so results handed to
// readers stay valid while another goroutine extends or advances the cube
// (copy-on-write) — and a request covered by the published state at the
// current snapshot version is served straight off the atomic load without
// queuing behind in-flight work.
type cubeEntry struct {
	mu        sync.Mutex
	computing atomic.Bool
	state     atomic.Pointer[cubeState]
	// stale holds one result computed for a reader pinned (WithSnapshot)
	// to a version older than the published state — typically the single
	// in-flight check that overlapped a refresh. Without it, every cube
	// request of such a check would rescan from scratch each EM iteration.
	// It never replaces state: newer published results are never regressed.
	stale atomic.Pointer[cubeState]
}

// cubeState is one published (result, storage version) pair. For
// single-table scopes it also records the row count the result covers, so
// a later snapshot that only appended rows can be absorbed by delta-
// scanning [rows, newRows) and merging, instead of recomputing; rows is -1
// for joined scopes, where appends can rewrite earlier joined rows (a
// previously dangling foreign key may gain a match) and the delta path is
// not sound.
type cubeState struct {
	res     *CubeResult
	version uint64
	epoch   uint64
	table   string
	rows    int
}

// appendable reports whether snap can be reached from this state by
// scanning appended rows only.
func (st *cubeState) appendable(snap *db.Snapshot) bool {
	return st.rows >= 0 && st.epoch == snap.Epoch() && snap.NumRows(st.table) >= st.rows
}

type cubeShard struct {
	mu      sync.Mutex
	entries map[string]*cubeEntry
}

// Engine evaluates Simple Aggregate Queries over a database. It caches join
// views and cube results; the cube cache persists across claims and EM
// iterations exactly as §6.3 prescribes (results are generated for all
// literals with non-zero marginal probability for any claim of the
// document, so the cache key needs no literal set).
//
// The engine is concurrency-first: both caches are striped across
// cacheShards locks, and duplicate concurrent requests for the same cube or
// view are coalesced onto a single computation (singleflight), so a
// document's claim workers can hammer one shared engine without serializing
// behind a global lock.
type Engine struct {
	DB    *db.Database
	Stats Stats

	caching atomic.Bool
	views   [cacheShards]viewShard
	cubes   [cacheShards]cubeShard

	// scalarKernel forces cube passes onto the legacy row-at-a-time
	// interpreter; the vectorized columnar kernel is the default.
	scalarKernel atomic.Bool
	// pushdown enables selection-vector pushdown: the batch planner may
	// merge queries sharing a predicate into one filtered cube pass whose
	// kernel compacts each segment through the shared predicate's selection
	// vector before accumulating (on by default).
	pushdown atomic.Bool
	// zoneMaps enables zone-map pruning in the scan pipeline (on by
	// default); SetZoneMaps(false) is the operational escape hatch and the
	// benchmark baseline toggle.
	zoneMaps atomic.Bool
	// scanWorkers bounds intra-pass parallelism (morsels in flight on the
	// shared scheduler, or private row-range partials without one); <= 0
	// means the scheduler's pool width, or min(GOMAXPROCS,
	// defaultScanWorkers) when no scheduler is installed.
	scanWorkers atomic.Int64
	// sched, when set, is the shared morsel scheduler cube passes and
	// large direct scans submit to instead of sizing private pools. The
	// engine does not own it (its creator calls Close).
	sched atomic.Pointer[Scheduler]

	// testHookBeforeCubePass, when non-nil, runs at the start of every cube
	// pass; tests use it to hold a computation open while concurrent
	// requests for the same cube pile up.
	testHookBeforeCubePass func()
}

// NewEngine creates an engine with cube-result caching enabled, then
// applies the given execution options (see options.go; Engine.Tune applies
// more at runtime).
func NewEngine(d *db.Database, opts ...ExecOption) *Engine {
	e := &Engine{DB: d}
	for i := range e.views {
		e.views[i].entries = make(map[string]*viewEntry)
	}
	for i := range e.cubes {
		e.cubes[i].entries = make(map[string]*cubeEntry)
	}
	e.caching.Store(true)
	e.zoneMaps.Store(true)
	e.pushdown.Store(true)
	e.Tune(opts...)
	return e
}

// PushdownEnabled reports whether the batch planner may merge
// predicate-sharing queries into filtered cube passes.
func (e *Engine) PushdownEnabled() bool { return e.pushdown.Load() }

// SetZoneMaps toggles zone-map pruning in the shared scan pipeline.
//
// Deprecated: use Tune(WithZoneMaps(on)), or pass WithZoneMaps to
// NewEngine.
func (e *Engine) SetZoneMaps(on bool) { e.Tune(WithZoneMaps(on)) }

// ZoneMapsEnabled reports whether zone-map pruning is active.
func (e *Engine) ZoneMapsEnabled() bool { return e.zoneMaps.Load() }

// CachingEnabled reports whether cube results are cached.
func (e *Engine) CachingEnabled() bool { return e.caching.Load() }

// SetCaching toggles the cube-result cache.
//
// Deprecated: use Tune(WithCaching(on)), or pass WithCaching to NewEngine.
func (e *Engine) SetCaching(on bool) { e.Tune(WithCaching(on)) }

// SetScalarKernel routes cube passes to the legacy scalar interpreter.
//
// Deprecated: use Tune(WithScalarKernel(on)), or pass WithScalarKernel to
// NewEngine.
func (e *Engine) SetScalarKernel(on bool) { e.Tune(WithScalarKernel(on)) }

// ScalarKernel reports whether cube passes are forced onto the scalar
// interpreter.
func (e *Engine) ScalarKernel() bool { return e.scalarKernel.Load() }

// SetScanWorkers bounds per-scan parallelism.
//
// Deprecated: use Tune(WithScanWorkers(n)), or pass WithScanWorkers to
// NewEngine; per-request, use ContextWithOptions.
func (e *Engine) SetScanWorkers(n int) { e.Tune(WithScanWorkers(n)) }

// ResetCache drops all cached cube results (join views are kept: they are
// part of the storage layer, not the evaluation strategy).
func (e *Engine) ResetCache() {
	for i := range e.cubes {
		sh := &e.cubes[i]
		e.lock(&sh.mu)
		sh.entries = make(map[string]*cubeEntry)
		sh.mu.Unlock()
	}
}

// lock acquires mu, counting acquisitions that had to wait.
func (e *Engine) lock(mu *sync.Mutex) {
	if mu.TryLock() {
		return
	}
	e.Stats.LockWaits.Add(1)
	mu.Lock()
}

// DefaultTable returns the name of the first table, used to anchor queries
// that reference no column (pure Count(*) with no predicates).
func (e *Engine) DefaultTable() string {
	ts := e.DB.Tables()
	if len(ts) == 0 {
		return ""
	}
	return ts[0].Name
}

// snapCtxKey carries a pinned storage snapshot through a request context.
type snapCtxKey struct{}

// WithSnapshot pins a snapshot for every engine read under ctx: all cube
// passes and direct scans of one verification request then observe a
// single storage version even if commits land mid-request. A snapshot
// belonging to a different database is ignored (the engine falls back to
// its own latest snapshot), so pinned contexts are safe to pass across
// multi-database services. Pins accumulate: a context may carry one
// snapshot per database — a sharded check pins the front database and
// every partition — and the newest pin for a given database wins.
func WithSnapshot(ctx context.Context, snap *db.Snapshot) context.Context {
	if snap == nil {
		return ctx
	}
	prev, _ := ctx.Value(snapCtxKey{}).([]*db.Snapshot)
	pinned := make([]*db.Snapshot, 0, len(prev)+1)
	pinned = append(pinned, snap)
	pinned = append(pinned, prev...)
	return context.WithValue(ctx, snapCtxKey{}, pinned)
}

// snapshotFor resolves the snapshot a request reads: the context-pinned
// one when one belongs to this engine's database, the latest published one
// otherwise.
func (e *Engine) snapshotFor(ctx context.Context) *db.Snapshot {
	if pinned, ok := ctx.Value(snapCtxKey{}).([]*db.Snapshot); ok {
		for _, snap := range pinned {
			if snap.Of(e.DB) {
				return snap
			}
		}
	}
	return e.DB.Snapshot()
}

// view returns the (cached) join view over the given tables at the
// database's latest snapshot. Concurrent requests for the same view share
// one build.
func (e *Engine) view(tables []string) (*db.JoinView, error) {
	return e.viewAt(e.DB.Snapshot(), tables)
}

// viewAt returns the (cached) join view over the given tables at one
// snapshot. The cache is keyed by (table set, snapshot version): a commit
// publishes a new version and later requests build fresh views over it,
// while scans holding an older view keep their consistent row set. Stale
// versions of the same scope are dropped from the cache as new ones arrive
// (in-flight readers keep their entries alive through their own pointers).
func (e *Engine) viewAt(snap *db.Snapshot, tables []string) (*db.JoinView, error) {
	base := strings.Join(sortedCopy(tables), ",")
	key := base + "@" + strconv.FormatUint(snap.Version(), 10)
	sh := &e.views[shardOf(base)]
	e.lock(&sh.mu)
	ent, ok := sh.entries[key]
	if !ok {
		// Drop only strictly older versions of this scope: a reader pinned
		// to an old snapshot must not evict the current version's view (or
		// the two would thrash rebuilding each other's joins); newer
		// entries stay until an even newer version arrives.
		for k := range sh.entries {
			if len(k) > len(base) && k[len(base)] == '@' && strings.HasPrefix(k, base) {
				if v, err := strconv.ParseUint(k[len(base)+1:], 10, 64); err == nil && v < snap.Version() {
					delete(sh.entries, k)
				}
			}
		}
		ent = &viewEntry{}
		sh.entries[key] = ent
	}
	sh.mu.Unlock()
	if ok && !ent.ready.Load() {
		e.Stats.ViewDedups.Add(1)
	}
	ent.once.Do(func() {
		ent.view, ent.err = db.BuildSnapshotView(snap, tables)
		if ent.err == nil {
			// Join-key zone pruning at view build counts toward the same
			// pruning budget scan-time zone maps report.
			e.Stats.BlocksPruned.Add(int64(ent.view.PrunedZones()))
		}
		ent.ready.Store(true)
	})
	return ent.view, ent.err
}

func sortedCopy(ss []string) []string {
	out := make([]string, len(ss))
	copy(out, ss)
	sort.Strings(out)
	return out
}

// Evaluate runs a single query with a dedicated scan. It is the
// context-free convenience form of EvaluateContext.
func (e *Engine) Evaluate(q Query) (float64, error) {
	return e.EvaluateContext(context.Background(), q)
}

// EvaluateContext runs a single query with a dedicated scan (the naive
// strategy of Table 6), executed through the shared vectorized scan
// pipeline: predicates compile to storage-level comparisons evaluated into
// per-segment selection vectors, and zone maps prune segments that cannot
// contribute (see pipeline.go, including the ratio-aggregate base
// contract for Percentage and ConditionalProbability denominators). The
// scan checks ctx between segments and aborts with ctx.Err() when the
// request is cancelled.
func (e *Engine) EvaluateContext(ctx context.Context, q Query) (float64, error) {
	if err := ctx.Err(); err != nil {
		return math.NaN(), err
	}
	tables := q.Tables(e.DefaultTable())
	view, err := e.viewAt(e.snapshotFor(ctx), tables)
	if err != nil {
		return math.NaN(), err
	}
	e.Stats.DirectQueries.Add(1)
	return e.evaluateDirect(ctx, view, q)
}

func parseLiteralFloat(lit string) (float64, error) {
	return strconv.ParseFloat(strings.TrimSpace(lit), 64)
}

// CubeFor returns a cube result covering the given dimensions and aggregate
// requests. It is the context-free convenience form of CubeForContext.
func (e *Engine) CubeFor(tables []string, dims []DimSpec, reqs []AggRequest) (*CubeResult, error) {
	return e.CubeForContext(context.Background(), tables, dims, reqs)
}

// CubeForContext returns a cube result covering the given dimensions and
// aggregate requests over the join scope, reusing, extending, or
// incrementally advancing a cached cube when caching is enabled. The
// requests are translated into tracked columns (star is always tracked).
// The cube pass checks ctx periodically and aborts with ctx.Err() when the
// request is cancelled; a cancelled pass publishes nothing, so the cache
// never holds partial results.
//
// The cache is snapshot-versioned: every request resolves the database's
// current snapshot, and a cached cube is served only at the version it was
// computed for. When the snapshot advanced by appends to the cube's
// (single-table) scope, the cached cube is brought up to date by scanning
// only the appended blocks and merging the partial into the published
// result (Stats.DeltaScans / Stats.BlocksDelta); sealed blocks are never
// rescanned. Advances the delta path cannot express — joined scopes,
// changed dimensions, structural changes — recompute from scratch
// (Stats.FullRebuilds).
//
// Concurrent calls with the same signature are coalesced: exactly one
// goroutine runs the cube pass while the others wait and share the result
// (recorded in Stats.CubeDedups). Per-signature work is serialized by the
// cube entry's own lock, so distinct cubes never contend.
func (e *Engine) CubeForContext(ctx context.Context, tables []string, dims []DimSpec, reqs []AggRequest) (*CubeResult, error) {
	return e.cubeForContext(ctx, tables, dims, reqs, nil)
}

// FilteredCubeForContext is CubeForContext for a selection-pushdown pass:
// every cell accumulates only rows matching filter, and the result answers
// only queries carrying the filter in their conjunction (CubeResult.Value
// strips it). Filtered cubes share the cache machinery — signature keyed by
// the filter too, column extension, delta advance — with ordinary cubes.
func (e *Engine) FilteredCubeForContext(ctx context.Context, tables []string, dims []DimSpec, reqs []AggRequest, filter *Predicate) (*CubeResult, error) {
	return e.cubeForContext(ctx, tables, dims, reqs, filter)
}

func (e *Engine) cubeForContext(ctx context.Context, tables []string, dims []DimSpec, reqs []AggRequest, filter *Predicate) (*CubeResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cols := trackedColsFor(reqs)
	snap := e.snapshotFor(ctx)
	if !e.caching.Load() {
		view, err := e.viewAt(snap, tables)
		if err != nil {
			return nil, err
		}
		return e.runCube(ctx, view, tables, dims, cols, filter)
	}

	sig := cubeSignature(tables, dims, filter)
	sh := &e.cubes[shardOf(sig)]
	e.lock(&sh.mu)
	ent, ok := sh.entries[sig]
	if !ok {
		ent = &cubeEntry{}
		ent.computing.Store(true)
		sh.entries[sig] = ent
	}
	sh.mu.Unlock()

	// Fast path: a request fully covered by the published state at the
	// current storage version never queues, even while another goroutine
	// extends or advances the cube.
	if st := ent.state.Load(); st != nil && st.version == snap.Version() && len(missingCols(st.res, cols)) == 0 {
		e.Stats.CacheHits.Add(1)
		return st.res, nil
	}
	if sst := ent.stale.Load(); sst != nil && sst.version == snap.Version() && sameDims(sst.res.Dims, dims) && len(missingCols(sst.res, cols)) == 0 {
		e.Stats.CacheHits.Add(1)
		return sst.res, nil
	}
	if ok && ent.computing.Load() {
		e.Stats.CubeDedups.Add(1)
	}

	e.lock(&ent.mu)
	defer func() {
		ent.computing.Store(false)
		ent.mu.Unlock()
	}()

	st := ent.state.Load()
	if st == nil {
		fresh, err := e.freshState(ctx, snap, tables, dims, cols, filter)
		if err != nil {
			return nil, err
		}
		ent.state.Store(fresh)
		e.Stats.CacheMisses.Add(1)
		return fresh.res, nil
	}

	if st.version != snap.Version() {
		return e.advanceState(ctx, ent, st, snap, tables, dims, cols, filter)
	}

	// Re-check coverage under the lock; extend with the missing columns if
	// the goroutine ahead of us did not already.
	missing := missingCols(st.res, cols)
	if len(missing) == 0 {
		e.Stats.CacheHits.Add(1)
		return st.res, nil
	}
	ent.computing.Store(true)
	// Literal sets may differ between the cached cube and the request;
	// recompute only when the cached dims cannot encode the request.
	if !sameDims(st.res.Dims, dims) {
		fresh, err := e.freshState(ctx, snap, tables, dims, cols, filter)
		if err != nil {
			return nil, err
		}
		ent.state.Store(fresh)
		e.Stats.CacheMisses.Add(1)
		return fresh.res, nil
	}
	view, err := e.viewAt(snap, tables)
	if err != nil {
		return nil, err
	}
	extra, err := e.runCube(ctx, view, tables, st.res.Dims, missing, filter)
	if err != nil {
		return nil, err
	}
	wider := st.res.merged(extra)
	ent.state.Store(&cubeState{res: wider, version: st.version, epoch: st.epoch, table: st.table, rows: st.rows})
	e.Stats.CacheHits.Add(1)
	return wider, nil
}

// freshState runs a full cube pass at one snapshot and wraps it with the
// coverage metadata the delta path needs.
func (e *Engine) freshState(ctx context.Context, snap *db.Snapshot, tables []string, dims []DimSpec, cols []trackedCol, filter *Predicate) (*cubeState, error) {
	view, err := e.viewAt(snap, tables)
	if err != nil {
		return nil, err
	}
	res, err := e.runCube(ctx, view, tables, dims, cols, filter)
	if err != nil {
		return nil, err
	}
	st := &cubeState{res: res, version: snap.Version(), epoch: snap.Epoch(), rows: -1}
	if len(tables) == 1 {
		st.table = tables[0]
		st.rows = snap.NumRows(tables[0])
	}
	return st, nil
}

// advanceState reconciles a cached cube with a snapshot at a newer storage
// version: republish when the appends missed its scope, delta-scan the
// appended blocks when possible, and fall back to a counted full rebuild
// otherwise. Callers hold ent.mu.
func (e *Engine) advanceState(ctx context.Context, ent *cubeEntry, st *cubeState, snap *db.Snapshot, tables []string, dims []DimSpec, cols []trackedCol, filter *Predicate) (*CubeResult, error) {
	if snap.Version() < st.version {
		// A reader pinned to an older snapshot than the published cube
		// (its request started before a commit another goroutine already
		// absorbed): serve it a consistent result computed at its own
		// version, without regressing the newer published state. The
		// result is parked in the entry's stale slot so the pinned check
		// pays for the pass once, not once per EM iteration.
		if sst := ent.stale.Load(); sst != nil && sst.version == snap.Version() && sameDims(sst.res.Dims, dims) && len(missingCols(sst.res, cols)) == 0 {
			e.Stats.CacheHits.Add(1)
			return sst.res, nil
		}
		ent.computing.Store(true)
		view, err := e.viewAt(snap, tables)
		if err != nil {
			return nil, err
		}
		res, err := e.runCube(ctx, view, tables, dims, cols, filter)
		if err != nil {
			return nil, err
		}
		ent.stale.Store(&cubeState{res: res, version: snap.Version(), epoch: snap.Epoch(), rows: -1})
		e.Stats.CacheMisses.Add(1)
		return res, nil
	}
	if st.appendable(snap) && sameDims(st.res.Dims, dims) && len(missingCols(st.res, cols)) == 0 {
		newRows := snap.NumRows(st.table)
		if newRows == st.rows {
			// The commits since st.version touched other tables only: the
			// cached result is still exact, so republish it at the current
			// version without scanning anything.
			ent.state.Store(&cubeState{res: st.res, version: snap.Version(), epoch: snap.Epoch(), table: st.table, rows: st.rows})
			e.Stats.CacheHits.Add(1)
			return st.res, nil
		}
		ent.computing.Store(true)
		view, err := e.viewAt(snap, tables)
		if err != nil {
			return nil, err
		}
		// Scan only [st.rows, newRows) — the rows of the blocks sealed
		// since the cached version — with the cached cube's own dims and
		// tracked columns, then merge the partial into the published
		// result copy-on-write.
		delta, err := e.runCubeDelta(ctx, view, tables, st.res.Dims, st.res.trackedCols(), st.rows, newRows, filter)
		if err != nil {
			return nil, err
		}
		merged := st.res.mergeAppend(delta)
		ent.state.Store(&cubeState{res: merged, version: snap.Version(), epoch: snap.Epoch(), table: st.table, rows: newRows})
		e.Stats.DeltaScans.Add(1)
		e.Stats.BlocksDelta.Add(int64(len(snap.BlocksSince(st.table, st.rows))))
		e.Stats.CacheHits.Add(1)
		return merged, nil
	}

	// Joined scope, changed dims/columns, or a structural change: the
	// advance cannot be expressed as an append-only delta.
	ent.computing.Store(true)
	e.Stats.FullRebuilds.Add(1)
	if st.epoch != snap.Epoch() {
		e.Stats.EpochRebuilds.Add(1)
	}
	fresh, err := e.freshState(ctx, snap, tables, dims, cols, filter)
	if err != nil {
		return nil, err
	}
	ent.state.Store(fresh)
	e.Stats.CacheMisses.Add(1)
	return fresh.res, nil
}

// runCubeDelta scans joined rows [lo, hi) into a partial CubeResult using
// the same kernel dispatch as a full pass. Delta ranges are small (the
// appended blocks), so the scan is single-threaded.
func (e *Engine) runCubeDelta(ctx context.Context, view *db.JoinView, tables []string, dims []DimSpec, cols []trackedCol, lo, hi int, filter *Predicate) (*CubeResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e.Stats.RowsScanned.Add(int64(hi - lo))
	pc := passConfig{stats: &e.Stats, workers: 1, scalar: e.scalarKernel.Load(), zones: e.zoneMapsFor(ctx), filter: filter}
	return computeCubeRange(ctx, view, tables, dims, cols, lo, hi, pc)
}

// missingCols returns the requested tracked columns the cube does not cover.
func missingCols(r *CubeResult, cols []trackedCol) []trackedCol {
	var missing []trackedCol
	for _, tc := range cols {
		if tc.ref.IsStar() {
			continue
		}
		if !r.hasColumn(tc.ref, tc.needDistinct) {
			missing = append(missing, tc)
		}
	}
	return missing
}

func (e *Engine) runCube(ctx context.Context, view *db.JoinView, tables []string, dims []DimSpec, cols []trackedCol, filter *Predicate) (*CubeResult, error) {
	if e.testHookBeforeCubePass != nil {
		e.testHookBeforeCubePass()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e.Stats.CubePasses.Add(1)
	e.Stats.RowsScanned.Add(int64(view.NumRows()))
	if filter != nil {
		e.Stats.PushdownCubes.Add(1)
	}
	pc := passConfig{
		stats:   &e.Stats,
		workers: e.resolveScanWorkers(e.rawScanWorkersFor(ctx)),
		scalar:  e.scalarKernel.Load(),
		zones:   e.zoneMapsFor(ctx),
		sched:   e.sched.Load(),
		filter:  filter,
	}
	return computeCube(ctx, view, tables, dims, cols, pc)
}

// defaultScanWorkers caps intra-pass parallelism when SetScanWorkers was
// not called.
const defaultScanWorkers = 4

// trackedColsFor deduplicates aggregate requests into tracked columns.
func trackedColsFor(reqs []AggRequest) []trackedCol {
	byKey := make(map[string]*trackedCol)
	var order []string
	for _, r := range reqs {
		if r.Col.IsStar() {
			continue
		}
		k := r.Col.String()
		tc, ok := byKey[k]
		if !ok {
			tc = &trackedCol{ref: r.Col}
			byKey[k] = tc
			order = append(order, k)
		}
		if r.Fn == CountDistinct {
			tc.needDistinct = true
		}
	}
	out := make([]trackedCol, 0, len(order))
	for _, k := range order {
		out = append(out, *byKey[k])
	}
	return out
}

// sameDims reports whether two dimension specs have identical columns and
// literal sets (order-insensitive on columns, order-sensitive on literals
// because literal indexes are positional).
func sameDims(a, b []DimSpec) bool {
	if len(a) != len(b) {
		return false
	}
	am := make(map[string][]string, len(a))
	for _, d := range a {
		am[d.Col.String()] = d.Literals
	}
	for _, d := range b {
		lits, ok := am[d.Col.String()]
		if !ok || len(lits) != len(d.Literals) {
			return false
		}
		for i := range lits {
			if lits[i] != d.Literals[i] {
				return false
			}
		}
	}
	return true
}

// AnswerFromCube evaluates q against a cube, recording the answered-query
// statistic. It returns an error when the cube does not cover q (callers
// are expected to construct covering cubes).
func (e *Engine) AnswerFromCube(r *CubeResult, q Query) (float64, error) {
	v, ok := r.Value(q)
	if !ok {
		return math.NaN(), fmt.Errorf("sqlexec: cube %v does not cover query %s", r.Dims, q.Key())
	}
	e.Stats.CubeAnswers.Add(1)
	return v, nil
}
