package sqlexec

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"aggchecker/internal/db"
)

// ctxCheckRows is how many rows a scan processes between context checks: a
// balance between cancellation latency and per-row overhead (one atomic load
// per batch of rows).
const ctxCheckRows = 8192

// Stats counts the work performed by an Engine; Table 6 of the paper is
// regenerated from these counters plus wall-clock time. All counters are
// atomic: many claim workers update them concurrently.
type Stats struct {
	RowsScanned   atomic.Int64
	CubePasses    atomic.Int64
	CacheHits     atomic.Int64
	CacheMisses   atomic.Int64
	DirectQueries atomic.Int64
	CubeAnswers   atomic.Int64

	// BatchQueries counts queries received through EvaluateBatch and
	// PlannedCubes the merged cube passes the planner produced for them.
	BatchQueries atomic.Int64
	PlannedCubes atomic.Int64

	// CubeDedups counts cube requests that arrived while an identical cube
	// was being computed by another goroutine and were coalesced onto that
	// computation (singleflight). ViewDedups is the same for join views.
	CubeDedups atomic.Int64
	ViewDedups atomic.Int64

	// LockWaits counts lock acquisitions (shard or per-cube) that could not
	// proceed immediately — a direct measure of cache contention.
	LockWaits atomic.Int64

	// Vectorized-kernel counters. BlocksScanned counts kernel blocks
	// processed by cube passes; DirectBlockReads and GatherBlockReads split
	// per-column block reads into zero-copy column-slice reads versus
	// gathers through join-view row maps; PartialsMerged counts row-range
	// partials merged into cube results beyond the first (0 for
	// single-threaded passes); ScalarPasses counts cube passes served by
	// the legacy scalar kernel (forced via SetScalarKernel, or literal sets
	// too large for the dense lattice).
	BlocksScanned    atomic.Int64
	DirectBlockReads atomic.Int64
	GatherBlockReads atomic.Int64
	PartialsMerged   atomic.Int64
	ScalarPasses     atomic.Int64
}

// Snapshot returns a plain copy of the counters.
func (s *Stats) Snapshot() map[string]int64 {
	return map[string]int64{
		"rows_scanned":   s.RowsScanned.Load(),
		"cube_passes":    s.CubePasses.Load(),
		"cache_hits":     s.CacheHits.Load(),
		"cache_misses":   s.CacheMisses.Load(),
		"direct_queries": s.DirectQueries.Load(),
		"cube_answers":   s.CubeAnswers.Load(),
		"batch_queries":  s.BatchQueries.Load(),
		"planned_cubes":  s.PlannedCubes.Load(),
		"cube_dedups":    s.CubeDedups.Load(),
		"view_dedups":    s.ViewDedups.Load(),
		"lock_waits":     s.LockWaits.Load(),

		"blocks_scanned":     s.BlocksScanned.Load(),
		"direct_block_reads": s.DirectBlockReads.Load(),
		"gather_block_reads": s.GatherBlockReads.Load(),
		"partials_merged":    s.PartialsMerged.Load(),
		"scalar_passes":      s.ScalarPasses.Load(),
	}
}

// cacheShards stripes the view and cube caches so concurrent claim workers
// rarely touch the same lock. Power of two; the shard index is a hash of the
// cache key.
const cacheShards = 32

func shardOf(key string) uint32 {
	// FNV-1a, inlined to avoid the hash.Hash allocation on every lookup.
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return h & (cacheShards - 1)
}

// viewEntry is a once-initialized join view. The entry is installed in its
// shard before being built, so concurrent requests for the same view block
// on the sync.Once instead of building duplicates.
type viewEntry struct {
	once  sync.Once
	ready atomic.Bool
	view  *db.JoinView
	err   error
}

type viewShard struct {
	mu      sync.Mutex
	entries map[string]*viewEntry
}

// cubeEntry serializes computation and extension of one cube signature.
// result is replaced, never mutated, so snapshots handed to readers stay
// valid while another goroutine extends the cube (copy-on-write) — and a
// request covered by the current snapshot is served straight off the
// atomic load without queuing behind an in-flight extension.
type cubeEntry struct {
	mu        sync.Mutex
	computing atomic.Bool
	result    atomic.Pointer[CubeResult]
}

type cubeShard struct {
	mu      sync.Mutex
	entries map[string]*cubeEntry
}

// Engine evaluates Simple Aggregate Queries over a database. It caches join
// views and cube results; the cube cache persists across claims and EM
// iterations exactly as §6.3 prescribes (results are generated for all
// literals with non-zero marginal probability for any claim of the
// document, so the cache key needs no literal set).
//
// The engine is concurrency-first: both caches are striped across
// cacheShards locks, and duplicate concurrent requests for the same cube or
// view are coalesced onto a single computation (singleflight), so a
// document's claim workers can hammer one shared engine without serializing
// behind a global lock.
type Engine struct {
	DB    *db.Database
	Stats Stats

	caching atomic.Bool
	views   [cacheShards]viewShard
	cubes   [cacheShards]cubeShard

	// scalarKernel forces cube passes onto the legacy row-at-a-time
	// interpreter; the vectorized columnar kernel is the default.
	scalarKernel atomic.Bool
	// scanWorkers bounds intra-pass parallelism (row-range partials);
	// <= 0 means min(GOMAXPROCS, defaultScanWorkers).
	scanWorkers atomic.Int64

	// testHookBeforeCubePass, when non-nil, runs at the start of every cube
	// pass; tests use it to hold a computation open while concurrent
	// requests for the same cube pile up.
	testHookBeforeCubePass func()
}

// NewEngine creates an engine with cube-result caching enabled.
func NewEngine(d *db.Database) *Engine {
	e := &Engine{DB: d}
	for i := range e.views {
		e.views[i].entries = make(map[string]*viewEntry)
	}
	for i := range e.cubes {
		e.cubes[i].entries = make(map[string]*cubeEntry)
	}
	e.caching.Store(true)
	return e
}

// CachingEnabled reports whether cube results are cached.
func (e *Engine) CachingEnabled() bool { return e.caching.Load() }

// SetCaching toggles the cube-result cache (Table 6's "+ Caching" row turns
// this off to isolate the effect of query merging).
func (e *Engine) SetCaching(on bool) {
	e.caching.Store(on)
	if !on {
		e.ResetCache()
	}
}

// SetScalarKernel routes cube passes to the legacy scalar interpreter
// (row-at-a-time, map-keyed cell store) instead of the vectorized columnar
// kernel. The flag exists for differential testing and as an operational
// escape hatch; both kernels produce identical results.
func (e *Engine) SetScalarKernel(on bool) { e.scalarKernel.Store(on) }

// ScalarKernel reports whether cube passes are forced onto the scalar
// interpreter.
func (e *Engine) ScalarKernel() bool { return e.scalarKernel.Load() }

// SetScanWorkers bounds how many goroutines one cube pass may use to scan
// row-range partials (0 restores the default, min(GOMAXPROCS,
// defaultScanWorkers) — kept small because passes already parallelize
// across the batch worker pool). Views smaller than the internal
// parallelism threshold always scan single-threaded.
func (e *Engine) SetScanWorkers(n int) { e.scanWorkers.Store(int64(n)) }

// ResetCache drops all cached cube results (join views are kept: they are
// part of the storage layer, not the evaluation strategy).
func (e *Engine) ResetCache() {
	for i := range e.cubes {
		sh := &e.cubes[i]
		e.lock(&sh.mu)
		sh.entries = make(map[string]*cubeEntry)
		sh.mu.Unlock()
	}
}

// lock acquires mu, counting acquisitions that had to wait.
func (e *Engine) lock(mu *sync.Mutex) {
	if mu.TryLock() {
		return
	}
	e.Stats.LockWaits.Add(1)
	mu.Lock()
}

// DefaultTable returns the name of the first table, used to anchor queries
// that reference no column (pure Count(*) with no predicates).
func (e *Engine) DefaultTable() string {
	ts := e.DB.Tables()
	if len(ts) == 0 {
		return ""
	}
	return ts[0].Name
}

// view returns the (cached) join view over the given tables. Concurrent
// requests for the same view share one build.
func (e *Engine) view(tables []string) (*db.JoinView, error) {
	key := strings.Join(sortedCopy(tables), ",")
	sh := &e.views[shardOf(key)]
	e.lock(&sh.mu)
	ent, ok := sh.entries[key]
	if !ok {
		ent = &viewEntry{}
		sh.entries[key] = ent
	}
	sh.mu.Unlock()
	if ok && !ent.ready.Load() {
		e.Stats.ViewDedups.Add(1)
	}
	ent.once.Do(func() {
		ent.view, ent.err = db.BuildJoinView(e.DB, tables)
		ent.ready.Store(true)
	})
	return ent.view, ent.err
}

func sortedCopy(ss []string) []string {
	out := make([]string, len(ss))
	copy(out, ss)
	sort.Strings(out)
	return out
}

// Evaluate runs a single query with a dedicated scan. It is the
// context-free convenience form of EvaluateContext.
func (e *Engine) Evaluate(q Query) (float64, error) {
	return e.EvaluateContext(context.Background(), q)
}

// EvaluateContext runs a single query with a dedicated scan (the naive
// strategy of Table 6). Percentage and ConditionalProbability require
// denominator statistics and therefore accumulate two cells in the same
// scan. The scan checks ctx every ctxCheckRows rows and aborts with
// ctx.Err() when the request is cancelled.
func (e *Engine) EvaluateContext(ctx context.Context, q Query) (float64, error) {
	if err := ctx.Err(); err != nil {
		return math.NaN(), err
	}
	tables := q.Tables(e.DefaultTable())
	view, err := e.view(tables)
	if err != nil {
		return math.NaN(), err
	}
	e.Stats.DirectQueries.Add(1)
	e.Stats.RowsScanned.Add(int64(view.NumRows()))

	matchers, err := buildMatchers(view, q.Preds)
	if err != nil {
		return math.NaN(), err
	}
	star := q.AggCol.IsStar()
	var aggAcc db.ColumnAccessor
	aggIsStr := false
	if !star {
		aggAcc, err = view.Accessor(q.AggCol.Table, q.AggCol.Column)
		if err != nil {
			return math.NaN(), err
		}
		aggIsStr = aggAcc.Column().Kind == db.KindString
	}

	main := newAccumulator(q.Agg == CountDistinct)
	var base *accumulator
	needBase := q.Agg == Percentage || q.Agg == ConditionalProbability
	if needBase {
		base = newAccumulator(false)
	}
	n := view.NumRows()
	for row := 0; row < n; row++ {
		if row%ctxCheckRows == 0 && row > 0 {
			if err := ctx.Err(); err != nil {
				return math.NaN(), err
			}
		}
		all := true
		for i := range matchers {
			if !matchers[i](row) {
				all = false
				break
			}
		}
		inBase := false
		if needBase {
			switch q.Agg {
			case Percentage:
				inBase = true
			case ConditionalProbability:
				inBase = len(matchers) == 0 || matchers[0](row)
			}
		}
		if !all && !inBase {
			continue
		}
		var null bool
		var v float64
		var key uint64
		if star {
			null, v = false, math.NaN()
		} else if aggIsStr {
			c := aggAcc.Code(row)
			null, v, key = c < 0, math.NaN(), uint64(uint32(c))
		} else {
			v = aggAcc.Float(row)
			null, key = math.IsNaN(v), math.Float64bits(v)
		}
		if all {
			main.addRow(null, v, key)
		}
		if inBase {
			base.addRow(null, v, key)
		}
	}
	return main.finalize(q.Agg, star, base), nil
}

// buildMatchers compiles predicates into per-row match functions.
func buildMatchers(view *db.JoinView, preds []Predicate) ([]func(int) bool, error) {
	matchers := make([]func(int) bool, 0, len(preds))
	for _, p := range preds {
		acc, err := view.Accessor(p.Col.Table, p.Col.Column)
		if err != nil {
			return nil, err
		}
		if acc.Column().Kind == db.KindString {
			code := acc.Column().CodeOf(p.Value)
			a := acc
			matchers = append(matchers, func(row int) bool { return a.Code(row) == code && code >= 0 })
		} else {
			want, err := parseLiteralFloat(p.Value)
			if err != nil {
				// Non-numeric literal on a numeric column never matches.
				matchers = append(matchers, func(int) bool { return false })
				continue
			}
			a := acc
			matchers = append(matchers, func(row int) bool { return a.Float(row) == want })
		}
	}
	return matchers, nil
}

func parseLiteralFloat(lit string) (float64, error) {
	return strconv.ParseFloat(strings.TrimSpace(lit), 64)
}

// CubeFor returns a cube result covering the given dimensions and aggregate
// requests. It is the context-free convenience form of CubeForContext.
func (e *Engine) CubeFor(tables []string, dims []DimSpec, reqs []AggRequest) (*CubeResult, error) {
	return e.CubeForContext(context.Background(), tables, dims, reqs)
}

// CubeForContext returns a cube result covering the given dimensions and
// aggregate requests over the join scope, reusing or extending a cached cube
// when caching is enabled. The requests are translated into tracked columns
// (star is always tracked). The cube pass checks ctx periodically and aborts
// with ctx.Err() when the request is cancelled; a cancelled pass publishes
// nothing, so the cache never holds partial results.
//
// Concurrent calls with the same signature are coalesced: exactly one
// goroutine runs the cube pass while the others wait and share the result
// (recorded in Stats.CubeDedups). Per-signature work is serialized by the
// cube entry's own lock, so distinct cubes never contend.
func (e *Engine) CubeForContext(ctx context.Context, tables []string, dims []DimSpec, reqs []AggRequest) (*CubeResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	cols := trackedColsFor(reqs)
	if !e.caching.Load() {
		view, err := e.view(tables)
		if err != nil {
			return nil, err
		}
		return e.runCube(ctx, view, tables, dims, cols)
	}

	sig := cubeSignature(tables, dims)
	sh := &e.cubes[shardOf(sig)]
	e.lock(&sh.mu)
	ent, ok := sh.entries[sig]
	if !ok {
		ent = &cubeEntry{}
		ent.computing.Store(true)
		sh.entries[sig] = ent
	}
	sh.mu.Unlock()

	// Fast path: a request fully covered by the published snapshot never
	// queues, even while another goroutine extends or recomputes the cube.
	if cached := ent.result.Load(); cached != nil && len(missingCols(cached, cols)) == 0 {
		e.Stats.CacheHits.Add(1)
		return cached, nil
	}
	if ok && ent.computing.Load() {
		e.Stats.CubeDedups.Add(1)
	}

	e.lock(&ent.mu)
	defer func() {
		ent.computing.Store(false)
		ent.mu.Unlock()
	}()

	cached := ent.result.Load()
	if cached == nil {
		view, err := e.view(tables)
		if err != nil {
			return nil, err
		}
		fresh, err := e.runCube(ctx, view, tables, dims, cols)
		if err != nil {
			return nil, err
		}
		ent.result.Store(fresh)
		e.Stats.CacheMisses.Add(1)
		return fresh, nil
	}

	// Re-check coverage under the lock; extend with the missing columns if
	// the goroutine ahead of us did not already.
	missing := missingCols(cached, cols)
	if len(missing) == 0 {
		e.Stats.CacheHits.Add(1)
		return cached, nil
	}
	ent.computing.Store(true)
	view, err := e.view(tables)
	if err != nil {
		return nil, err
	}
	// Literal sets may differ between the cached cube and the request;
	// recompute only when the cached dims cannot encode the request.
	if !sameDims(cached.Dims, dims) {
		fresh, err := e.runCube(ctx, view, tables, dims, cols)
		if err != nil {
			return nil, err
		}
		ent.result.Store(fresh)
		e.Stats.CacheMisses.Add(1)
		return fresh, nil
	}
	extra, err := e.runCube(ctx, view, tables, dims, missing)
	if err != nil {
		return nil, err
	}
	wider := cached.merged(extra)
	ent.result.Store(wider)
	e.Stats.CacheHits.Add(1)
	return wider, nil
}

// missingCols returns the requested tracked columns the cube does not cover.
func missingCols(r *CubeResult, cols []trackedCol) []trackedCol {
	var missing []trackedCol
	for _, tc := range cols {
		if tc.ref.IsStar() {
			continue
		}
		if !r.hasColumn(tc.ref, tc.needDistinct) {
			missing = append(missing, tc)
		}
	}
	return missing
}

func (e *Engine) runCube(ctx context.Context, view *db.JoinView, tables []string, dims []DimSpec, cols []trackedCol) (*CubeResult, error) {
	if e.testHookBeforeCubePass != nil {
		e.testHookBeforeCubePass()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e.Stats.CubePasses.Add(1)
	e.Stats.RowsScanned.Add(int64(view.NumRows()))
	workers := int(e.scanWorkers.Load())
	if workers <= 0 {
		// Cube passes already run concurrently on the batch worker pool, so
		// the default per-pass split stays small: an unbounded GOMAXPROCS
		// here would multiply goroutines (and per-partial accumulator
		// arrays) quadratically under a saturated pool. SetScanWorkers
		// overrides for dedicated large scans.
		workers = runtime.GOMAXPROCS(0)
		if workers > defaultScanWorkers {
			workers = defaultScanWorkers
		}
	}
	return computeCube(ctx, view, tables, dims, cols, &e.Stats, workers, e.scalarKernel.Load())
}

// defaultScanWorkers caps intra-pass parallelism when SetScanWorkers was
// not called.
const defaultScanWorkers = 4

// trackedColsFor deduplicates aggregate requests into tracked columns.
func trackedColsFor(reqs []AggRequest) []trackedCol {
	byKey := make(map[string]*trackedCol)
	var order []string
	for _, r := range reqs {
		if r.Col.IsStar() {
			continue
		}
		k := r.Col.String()
		tc, ok := byKey[k]
		if !ok {
			tc = &trackedCol{ref: r.Col}
			byKey[k] = tc
			order = append(order, k)
		}
		if r.Fn == CountDistinct {
			tc.needDistinct = true
		}
	}
	out := make([]trackedCol, 0, len(order))
	for _, k := range order {
		out = append(out, *byKey[k])
	}
	return out
}

// sameDims reports whether two dimension specs have identical columns and
// literal sets (order-insensitive on columns, order-sensitive on literals
// because literal indexes are positional).
func sameDims(a, b []DimSpec) bool {
	if len(a) != len(b) {
		return false
	}
	am := make(map[string][]string, len(a))
	for _, d := range a {
		am[d.Col.String()] = d.Literals
	}
	for _, d := range b {
		lits, ok := am[d.Col.String()]
		if !ok || len(lits) != len(d.Literals) {
			return false
		}
		for i := range lits {
			if lits[i] != d.Literals[i] {
				return false
			}
		}
	}
	return true
}

// AnswerFromCube evaluates q against a cube, recording the answered-query
// statistic. It returns an error when the cube does not cover q (callers
// are expected to construct covering cubes).
func (e *Engine) AnswerFromCube(r *CubeResult, q Query) (float64, error) {
	v, ok := r.Value(q)
	if !ok {
		return math.NaN(), fmt.Errorf("sqlexec: cube %v does not cover query %s", r.Dims, q.Key())
	}
	e.Stats.CubeAnswers.Add(1)
	return v, nil
}
