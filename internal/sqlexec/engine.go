package sqlexec

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"aggchecker/internal/db"
)

// Stats counts the work performed by an Engine; Table 6 of the paper is
// regenerated from these counters plus wall-clock time.
type Stats struct {
	RowsScanned   atomic.Int64
	CubePasses    atomic.Int64
	CacheHits     atomic.Int64
	CacheMisses   atomic.Int64
	DirectQueries atomic.Int64
	CubeAnswers   atomic.Int64
}

// Snapshot returns a plain copy of the counters.
func (s *Stats) Snapshot() map[string]int64 {
	return map[string]int64{
		"rows_scanned":   s.RowsScanned.Load(),
		"cube_passes":    s.CubePasses.Load(),
		"cache_hits":     s.CacheHits.Load(),
		"cache_misses":   s.CacheMisses.Load(),
		"direct_queries": s.DirectQueries.Load(),
		"cube_answers":   s.CubeAnswers.Load(),
	}
}

// Engine evaluates Simple Aggregate Queries over a database. It caches join
// views and cube results; the cube cache persists across claims and EM
// iterations exactly as §6.3 prescribes (results are generated for all
// literals with non-zero marginal probability for any claim of the
// document, so the cache key needs no literal set).
type Engine struct {
	DB    *db.Database
	Stats Stats

	mu        sync.Mutex
	views     map[string]*db.JoinView
	cubeCache map[string]*CubeResult
	caching   bool
}

// NewEngine creates an engine with cube-result caching enabled.
func NewEngine(d *db.Database) *Engine {
	return &Engine{
		DB:        d,
		views:     make(map[string]*db.JoinView),
		cubeCache: make(map[string]*CubeResult),
		caching:   true,
	}
}

// CachingEnabled reports whether cube results are cached.
func (e *Engine) CachingEnabled() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.caching
}

// SetCaching toggles the cube-result cache (Table 6's "+ Caching" row turns
// this off to isolate the effect of query merging).
func (e *Engine) SetCaching(on bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.caching = on
	if !on {
		e.cubeCache = make(map[string]*CubeResult)
	}
}

// ResetCache drops all cached cube results (join views are kept: they are
// part of the storage layer, not the evaluation strategy).
func (e *Engine) ResetCache() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cubeCache = make(map[string]*CubeResult)
}

// DefaultTable returns the name of the first table, used to anchor queries
// that reference no column (pure Count(*) with no predicates).
func (e *Engine) DefaultTable() string {
	ts := e.DB.Tables()
	if len(ts) == 0 {
		return ""
	}
	return ts[0].Name
}

// view returns the (cached) join view over the given tables.
func (e *Engine) view(tables []string) (*db.JoinView, error) {
	key := strings.Join(sortedCopy(tables), ",")
	e.mu.Lock()
	v, ok := e.views[key]
	e.mu.Unlock()
	if ok {
		return v, nil
	}
	v, err := db.BuildJoinView(e.DB, tables)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.views[key] = v
	e.mu.Unlock()
	return v, nil
}

func sortedCopy(ss []string) []string {
	out := make([]string, len(ss))
	copy(out, ss)
	sort.Strings(out)
	return out
}

// Evaluate runs a single query with a dedicated scan (the naive strategy of
// Table 6). Percentage and ConditionalProbability require denominator
// statistics and therefore accumulate two cells in the same scan.
func (e *Engine) Evaluate(q Query) (float64, error) {
	tables := q.Tables(e.DefaultTable())
	view, err := e.view(tables)
	if err != nil {
		return math.NaN(), err
	}
	e.Stats.DirectQueries.Add(1)
	e.Stats.RowsScanned.Add(int64(view.NumRows()))

	matchers, err := buildMatchers(view, q.Preds)
	if err != nil {
		return math.NaN(), err
	}
	star := q.AggCol.IsStar()
	var aggAcc db.ColumnAccessor
	aggIsStr := false
	if !star {
		aggAcc, err = view.Accessor(q.AggCol.Table, q.AggCol.Column)
		if err != nil {
			return math.NaN(), err
		}
		aggIsStr = aggAcc.Column().Kind == db.KindString
	}

	main := newAccumulator(q.Agg == CountDistinct)
	var base *accumulator
	needBase := q.Agg == Percentage || q.Agg == ConditionalProbability
	if needBase {
		base = newAccumulator(false)
	}
	n := view.NumRows()
	for row := 0; row < n; row++ {
		all := true
		for i := range matchers {
			if !matchers[i](row) {
				all = false
				break
			}
		}
		inBase := false
		if needBase {
			switch q.Agg {
			case Percentage:
				inBase = true
			case ConditionalProbability:
				inBase = len(matchers) == 0 || matchers[0](row)
			}
		}
		if !all && !inBase {
			continue
		}
		var null bool
		var v float64
		var key uint64
		if star {
			null, v = false, math.NaN()
		} else if aggIsStr {
			c := aggAcc.Code(row)
			null, v, key = c < 0, math.NaN(), uint64(uint32(c))
		} else {
			v = aggAcc.Float(row)
			null, key = math.IsNaN(v), math.Float64bits(v)
		}
		if all {
			main.addRow(null, v, key)
		}
		if inBase {
			base.addRow(null, v, key)
		}
	}
	return main.finalize(q.Agg, star, base), nil
}

// buildMatchers compiles predicates into per-row match functions.
func buildMatchers(view *db.JoinView, preds []Predicate) ([]func(int) bool, error) {
	matchers := make([]func(int) bool, 0, len(preds))
	for _, p := range preds {
		acc, err := view.Accessor(p.Col.Table, p.Col.Column)
		if err != nil {
			return nil, err
		}
		if acc.Column().Kind == db.KindString {
			code := acc.Column().CodeOf(p.Value)
			a := acc
			matchers = append(matchers, func(row int) bool { return a.Code(row) == code && code >= 0 })
		} else {
			want, err := parseLiteralFloat(p.Value)
			if err != nil {
				// Non-numeric literal on a numeric column never matches.
				matchers = append(matchers, func(int) bool { return false })
				continue
			}
			a := acc
			matchers = append(matchers, func(row int) bool { return a.Float(row) == want })
		}
	}
	return matchers, nil
}

func parseLiteralFloat(lit string) (float64, error) {
	return strconv.ParseFloat(strings.TrimSpace(lit), 64)
}

// CubeFor returns a cube result covering the given dimensions and aggregate
// requests over the join scope, reusing or extending a cached cube when
// caching is enabled. The requests are translated into tracked columns
// (star is always tracked).
func (e *Engine) CubeFor(tables []string, dims []DimSpec, reqs []AggRequest) (*CubeResult, error) {
	cols := trackedColsFor(reqs)
	sig := cubeSignature(tables, dims)

	e.mu.Lock()
	cached, ok := e.cubeCache[sig]
	caching := e.caching
	e.mu.Unlock()

	if caching && ok {
		// Check coverage; extend with the missing columns if needed.
		var missing []trackedCol
		for _, tc := range cols {
			if tc.ref.IsStar() {
				continue
			}
			if !cached.hasColumn(tc.ref, tc.needDistinct) {
				missing = append(missing, tc)
			}
		}
		if len(missing) == 0 {
			e.Stats.CacheHits.Add(1)
			return cached, nil
		}
		view, err := e.view(tables)
		if err != nil {
			return nil, err
		}
		// Literal sets may differ between the cached cube and the request;
		// recompute only when the cached dims cannot encode the request.
		if !sameDims(cached.Dims, dims) {
			fresh, err := e.runCube(view, tables, dims, cols)
			if err != nil {
				return nil, err
			}
			e.mu.Lock()
			e.cubeCache[sig] = fresh
			e.mu.Unlock()
			e.Stats.CacheMisses.Add(1)
			return fresh, nil
		}
		extra, err := e.runCube(view, tables, dims, missing)
		if err != nil {
			return nil, err
		}
		e.mu.Lock()
		cached.merge(extra)
		e.mu.Unlock()
		e.Stats.CacheHits.Add(1)
		return cached, nil
	}

	view, err := e.view(tables)
	if err != nil {
		return nil, err
	}
	fresh, err := e.runCube(view, tables, dims, cols)
	if err != nil {
		return nil, err
	}
	if caching {
		e.mu.Lock()
		e.cubeCache[sig] = fresh
		e.mu.Unlock()
		e.Stats.CacheMisses.Add(1)
	}
	return fresh, nil
}

func (e *Engine) runCube(view *db.JoinView, tables []string, dims []DimSpec, cols []trackedCol) (*CubeResult, error) {
	e.Stats.CubePasses.Add(1)
	e.Stats.RowsScanned.Add(int64(view.NumRows()))
	return computeCube(view, tables, dims, cols)
}

// trackedColsFor deduplicates aggregate requests into tracked columns.
func trackedColsFor(reqs []AggRequest) []trackedCol {
	byKey := make(map[string]*trackedCol)
	var order []string
	for _, r := range reqs {
		if r.Col.IsStar() {
			continue
		}
		k := r.Col.String()
		tc, ok := byKey[k]
		if !ok {
			tc = &trackedCol{ref: r.Col}
			byKey[k] = tc
			order = append(order, k)
		}
		if r.Fn == CountDistinct {
			tc.needDistinct = true
		}
	}
	out := make([]trackedCol, 0, len(order))
	for _, k := range order {
		out = append(out, *byKey[k])
	}
	return out
}

// sameDims reports whether two dimension specs have identical columns and
// literal sets (order-insensitive on columns, order-sensitive on literals
// because literal indexes are positional).
func sameDims(a, b []DimSpec) bool {
	if len(a) != len(b) {
		return false
	}
	am := make(map[string][]string, len(a))
	for _, d := range a {
		am[d.Col.String()] = d.Literals
	}
	for _, d := range b {
		lits, ok := am[d.Col.String()]
		if !ok || len(lits) != len(d.Literals) {
			return false
		}
		for i := range lits {
			if lits[i] != d.Literals[i] {
				return false
			}
		}
	}
	return true
}

// AnswerFromCube evaluates q against a cube, recording the answered-query
// statistic. It returns an error when the cube does not cover q (callers
// are expected to construct covering cubes).
func (e *Engine) AnswerFromCube(r *CubeResult, q Query) (float64, error) {
	v, ok := r.Value(q)
	if !ok {
		return math.NaN(), fmt.Errorf("sqlexec: cube %v does not cover query %s", r.Dims, q.Key())
	}
	e.Stats.CubeAnswers.Add(1)
	return v, nil
}
