package sqlexec

import (
	"math"
)

// accumulator collects the base statistics from which every supported
// aggregation function is finalized. Derived functions (Average, Percentage,
// ConditionalProbability) divide statistics of one accumulator by another's.
type accumulator struct {
	rows     int64 // Count(*)
	nonNull  int64 // Count(col)
	sum      float64
	min, max float64
	distinct map[uint64]struct{} // nil unless distinct counting requested
}

func newAccumulator(needDistinct bool) *accumulator {
	a := &accumulator{min: math.Inf(1), max: math.Inf(-1)}
	if needDistinct {
		a.distinct = make(map[uint64]struct{})
	}
	return a
}

// addRow registers a row; null reports whether the aggregation column is
// NULL at the row, v its numeric value and key its distinct-identity (column
// dictionary code for strings, float bits for numerics).
func (a *accumulator) addRow(null bool, v float64, key uint64) {
	a.rows++
	if null {
		return
	}
	a.nonNull++
	if !math.IsNaN(v) {
		a.sum += v
		if v < a.min {
			a.min = v
		}
		if v > a.max {
			a.max = v
		}
	}
	if a.distinct != nil {
		a.distinct[key] = struct{}{}
	}
}

// finalize computes the value of fn from this accumulator (and, for ratio
// functions, the base accumulator holding the denominator cell). star is
// true when the aggregation column is "*". Returns NaN when the function is
// undefined on the cell (e.g. Avg of zero rows).
func (a *accumulator) finalize(fn AggFunc, star bool, base *accumulator) float64 {
	cnt := func(x *accumulator) float64 {
		if x == nil {
			return 0
		}
		if star {
			return float64(x.rows)
		}
		return float64(x.nonNull)
	}
	switch fn {
	case Count:
		return cnt(a)
	case CountDistinct:
		if a.distinct == nil {
			return math.NaN()
		}
		return float64(len(a.distinct))
	case Sum:
		if a.nonNull == 0 {
			return math.NaN()
		}
		return a.sum
	case Avg:
		if a.nonNull == 0 {
			return math.NaN()
		}
		return a.sum / float64(a.nonNull)
	case Min:
		if a.nonNull == 0 {
			return math.NaN()
		}
		return a.min
	case Max:
		if a.nonNull == 0 {
			return math.NaN()
		}
		return a.max
	case Percentage, ConditionalProbability:
		den := cnt(base)
		if den == 0 {
			return math.NaN()
		}
		return 100 * cnt(a) / den
	}
	return math.NaN()
}
