package sqlexec

import (
	"context"
	"math"
	"sync"
	"testing"
	"time"
)

func windowQueries() []Query {
	return []Query{
		{Agg: Count, Preds: []Predicate{{Col: ref("games"), Value: "indef"}}},
		{Agg: Count, Preds: []Predicate{{Col: ref("category"), Value: "personal conduct"}}},
		{Agg: Avg, AggCol: ref("fine"), Preds: []Predicate{{Col: ref("team"), Value: "CIN"}}},
	}
}

func TestWindowSingleParticipantMatchesEngine(t *testing.T) {
	d := nflDB(t)
	want := NewEngine(d).EvaluateBatch(context.Background(), windowQueries(), BatchOptions{})

	e := NewEngine(d)
	w := NewWindow(e, WindowConfig{})
	w.Join()
	defer w.Leave()
	got := w.EvaluateBatch(context.Background(), windowQueries(), BatchOptions{})
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] && !(math.IsNaN(got[i]) && math.IsNaN(want[i])) {
			t.Errorf("q%d = %v, want %v", i, got[i], want[i])
		}
	}
	if e.Stats.WindowBatches.Load() != 1 || e.Stats.WindowFlushes.Load() != 1 {
		t.Errorf("batches/flushes = %d/%d, want 1/1",
			e.Stats.WindowBatches.Load(), e.Stats.WindowFlushes.Load())
	}
}

// TestWindowMergesConcurrentParticipants: two participants submitting
// batches over the same columns get their own correct answers from one
// merged flush, and the overlap is counted as shared passes.
func TestWindowMergesConcurrentParticipants(t *testing.T) {
	d := nflDB(t)
	qa := windowQueries()
	qb := []Query{
		{Agg: Count, Preds: []Predicate{{Col: ref("games"), Value: "4"}}},
		{Agg: Count, Preds: []Predicate{{Col: ref("category"), Value: "gambling"}}},
	}
	base := NewEngine(d)
	wantA := base.EvaluateBatch(context.Background(), qa, BatchOptions{})
	wantB := base.EvaluateBatch(context.Background(), qb, BatchOptions{})

	e := NewEngine(d)
	w := NewWindow(e, WindowConfig{})
	var wg sync.WaitGroup
	var gotA, gotB []float64
	w.Join()
	w.Join()
	wg.Add(2)
	go func() {
		defer wg.Done()
		defer w.Leave()
		gotA = w.EvaluateBatch(context.Background(), qa, BatchOptions{})
	}()
	go func() {
		defer wg.Done()
		defer w.Leave()
		gotB = w.EvaluateBatch(context.Background(), qb, BatchOptions{})
	}()
	wg.Wait()

	for i := range wantA {
		if gotA[i] != wantA[i] && !(math.IsNaN(gotA[i]) && math.IsNaN(wantA[i])) {
			t.Errorf("A q%d = %v, want %v", i, gotA[i], wantA[i])
		}
	}
	for i := range wantB {
		if gotB[i] != wantB[i] && !(math.IsNaN(gotB[i]) && math.IsNaN(wantB[i])) {
			t.Errorf("B q%d = %v, want %v", i, gotB[i], wantB[i])
		}
	}
	if e.Stats.SharedPasses.Load() == 0 {
		t.Error("no shared passes counted for overlapping concurrent batches")
	}
}

// TestWindowTimerFlushesPartialWindow: a parked batch whose co-traveller
// never submits is answered after the flush deadline instead of hanging.
func TestWindowTimerFlushesPartialWindow(t *testing.T) {
	d := nflDB(t)
	want := NewEngine(d).EvaluateBatch(context.Background(), windowQueries(), BatchOptions{})

	e := NewEngine(d)
	w := NewWindow(e, WindowConfig{FlushDelay: 2 * time.Millisecond})
	w.Join()
	w.Join() // second participant parks nothing
	defer w.Leave()
	defer w.Leave()

	start := time.Now()
	got := w.EvaluateBatch(context.Background(), windowQueries(), BatchOptions{})
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("flush took %v", elapsed)
	}
	for i := range want {
		if got[i] != want[i] && !(math.IsNaN(got[i]) && math.IsNaN(want[i])) {
			t.Errorf("q%d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestWindowGroupsBySnapshotVersion: participants pinned before and after
// an append must not share passes — each version group flushes its own
// merged execution and reads its own snapshot's rows.
func TestWindowGroupsBySnapshotVersion(t *testing.T) {
	d := nflDB(t)
	old := d.Snapshot()
	if err := d.Append("nflsuspensions",
		[]any{"New Player", "SEA", "indef", "gambling", 2016.0, 10.0}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	fresh := d.Snapshot()
	if old.Version() == fresh.Version() {
		t.Fatal("commit did not advance the version")
	}

	e := NewEngine(d)
	w := NewWindow(e, WindowConfig{})
	q := []Query{{Agg: Count, Preds: []Predicate{{Col: ref("games"), Value: "indef"}}}}

	var wg sync.WaitGroup
	var gotOld, gotNew []float64
	w.Join()
	w.Join()
	wg.Add(2)
	go func() {
		defer wg.Done()
		defer w.Leave()
		gotOld = w.EvaluateBatch(WithSnapshot(context.Background(), old), q, BatchOptions{})
	}()
	go func() {
		defer wg.Done()
		defer w.Leave()
		gotNew = w.EvaluateBatch(WithSnapshot(context.Background(), fresh), q, BatchOptions{})
	}()
	wg.Wait()

	if gotOld[0] != 4 {
		t.Errorf("old snapshot count = %v, want 4", gotOld[0])
	}
	if gotNew[0] != 5 {
		t.Errorf("fresh snapshot count = %v, want 5", gotNew[0])
	}
}

// TestWindowCancelledMemberGetsNaN: a member whose context dies before the
// flush reads NaN for every slot, and surviving members still get real
// answers.
func TestWindowCancelledMemberGetsNaN(t *testing.T) {
	d := nflDB(t)
	e := NewEngine(d)
	w := NewWindow(e, WindowConfig{FlushDelay: time.Minute})
	q := windowQueries()

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	// Two participants, long flush delay: the dead member parks first and
	// unblocks on its own cancellation (no flush has run yet, so the NaN
	// path is deterministic); the live member's submission then completes
	// the window and flushes both batches inline.
	w.Join()
	w.Join()
	defer w.Leave()
	defer w.Leave()
	gotDead := w.EvaluateBatch(cancelled, q, BatchOptions{})
	gotLive := w.EvaluateBatch(context.Background(), q, BatchOptions{})

	for i, v := range gotDead {
		if !math.IsNaN(v) {
			t.Errorf("cancelled member q%d = %v, want NaN", i, v)
		}
	}
	if math.IsNaN(gotLive[0]) || gotLive[0] != 4 {
		t.Errorf("live member q0 = %v, want 4", gotLive[0])
	}
}
